//! The paper's evaluation scenario end-to-end: the four-node, five-GPU
//! network of Section VI-A cracking a password.
//!
//! 1. tunes every device (the Section III tuning step), printing the
//!    Table VIII throughput columns;
//! 2. runs the discrete-event simulation of a large search and reports
//!    the Table IX aggregate throughput and efficiency;
//! 3. runs a *real* threaded search over a small keyspace through the
//!    same hierarchical dispatch and recovers the planted password.
//!
//! Run with: `cargo run --release --example cluster_crack`

use eks::cluster::{
    paper_network, run_cluster_search, simulate_search, tune_device, AchievedModel, SimParams,
};
use eks::cracker::TargetSet;
use eks::hashes::HashAlgo;
use eks::kernels::Tool;
use eks::keyspace::{Charset, KeySpace, Order};

fn main() {
    let net = paper_network(2e-3);
    println!("network: A(540M) -> B(660, 550Ti), A -> C(8600M) -> D(8800)\n");

    // Tuning step: per-device achieved throughput (Table VIII column).
    println!("{:<24} {:>14} {:>14} {:>8}", "device", "theoretical", "achieved", "eff");
    let mut sum_achieved = 0.0;
    for d in net.all_devices() {
        let t = tune_device(d, Tool::OurApproach, HashAlgo::Md5, AchievedModel::Analytic);
        sum_achieved += t.achieved_mkeys;
        println!(
            "{:<24} {:>10.1} MK/s {:>10.1} MK/s {:>7.1}%",
            d.name,
            t.theoretical_mkeys,
            t.achieved_mkeys,
            t.efficiency() * 100.0
        );
    }
    println!("{:<24} {:>14} {:>10.1} MK/s\n", "sum of devices", "", sum_achieved);

    // Table IX: simulate a long search over the whole network.
    let params = SimParams::default();
    let keys = 5e11; // half a tera-candidate sweep
    let report = simulate_search(&net, Tool::OurApproach, HashAlgo::Md5, keys, params);
    println!(
        "whole network     : {:.1} MKey/s over {:.0e} keys ({:.1} s simulated)",
        report.achieved_mkeys, keys, report.makespan_s
    );
    println!(
        "efficiency        : {:.3} vs theoretical sum (paper Table IX: 0.852)",
        report.table9_efficiency()
    );
    println!(
        "dispatch quality  : {:.3} vs achieved sum (paper: \"roughly the sum\")\n",
        report.parallel_efficiency()
    );

    // A real cracked password through the same dispatch tree.
    let space = KeySpace::new(Charset::lowercase(), 1, 4, Order::FirstCharFastest).unwrap();
    let secret = b"amd";
    let targets = TargetSet::new(HashAlgo::Md5, &[HashAlgo::Md5.hash(secret)]);
    let result = run_cluster_search(&net, &space, &targets, space.interval(), true);
    let (id, key, _) = result.hits.first().expect("planted key is in the space");
    println!("real search       : cracked \"{key}\" (id {id}), {} keys tested", result.tested);
    println!("per-device work   :");
    for (name, tested) in &result.per_device {
        println!("  {name:<28} {tested:>10} keys");
    }
}
