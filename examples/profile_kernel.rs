//! The §V methodology end-to-end: inspect the compiled kernel the way the
//! authors did with `cuobjdump -sass`, then profile it the way they did
//! with the CUDA profiler — all on the simulator.
//!
//! Run with: `cargo run --release --example profile_kernel`

use eks::gpusim::codegen::lower;
use eks::gpusim::device::DeviceCatalog;
use eks::gpusim::sched::{simulate, SimConfig};
use eks::gpusim::{disasm, ProfilerReport};
use eks::hashes::HashAlgo;
use eks::kernels::{Tool, ToolKernel};

fn main() {
    // Pick the two architectures the paper contrasts: Fermi (issue-bound)
    // and Kepler (shift-port-bound).
    for pattern in ["550", "660"] {
        let device = DeviceCatalog::find(pattern).expect("catalog device");
        let tk = ToolKernel::build(Tool::OurApproach, HashAlgo::Md5, device.cc);
        let kernel = lower(&tk.ir, tk.options);

        // The cuobjdump view: first lines + the per-class summary.
        let listing = disasm(&kernel);
        println!("===== {} =====", device.name);
        for line in listing.lines().take(6) {
            println!("{line}");
        }
        println!("  ...");
        for line in listing.lines().filter(|l| l.starts_with("// ") && !l.contains("kernel")) {
            println!("{line}");
        }

        // The profiler view.
        let cfg = SimConfig::for_cc(device.cc);
        let sim = simulate(&kernel, cfg);
        let report = ProfilerReport::new(&kernel, &sim, cfg.warps);
        println!("\nprofile:");
        print!("{}", report.render());
        println!("throughput        : {:.1} MKey/s\n", sim.device_mkeys(&device));
    }
    println!("the contrast the paper draws: Fermi idles a third of its lanes for");
    println!("lack of dual-issue (bottleneck: IssueBandwidth); Kepler saturates its");
    println!("single shift-capable group (bottleneck: ShiftPort) at ~99% efficiency.");
}
