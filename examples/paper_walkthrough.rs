//! Section III, numerically: measure the paper's cost quantities on this
//! host, derive the efficiency claims from them, and run the balancing
//! algebra end-to-end.
//!
//! Run with: `cargo run --release --example paper_walkthrough`

use eks::core::cost::{measure_cost_model, DispatchCosts};
use eks::core::partition::{balance_workloads, parallel_efficiency, NodeRate};
use eks::hashes::HashAlgo;
use eks::keyspace::{Charset, Key, KeySpace, Order};

fn main() {
    let space = KeySpace::new(Charset::alphanumeric(), 1, 8, Order::FirstCharFastest).unwrap();
    let target = HashAlgo::Md5.hash(b"unreach@"); // never found: pure test cost
    let test = move |_id: u128, k: &Key| (HashAlgo::Md5.hash(k.as_bytes()) == target).then_some(());

    // --- III-A: the cost quantities, measured.
    let m = measure_cost_model(&space, &test, 1 << 40, 200_000);
    println!("measured per-candidate costs (ns):");
    println!("  K_f    = {:>8.1}   (generate from identifier, Fig. 1)", m.k_f);
    println!("  K_next = {:>8.1}   (advance in place, Fig. 2)", m.k_next);
    println!("  K_C    = {:>8.1}   (MD5 + compare)", m.k_c);
    assert!(m.k_next < m.k_f, "the asymmetry the pattern exploits");

    // K_search for both enumeration strategies.
    let n = 10_000_000u64;
    println!("\nK_search for n = {n} candidates:");
    println!(
        "  incremental (f once + next): {:>10.1} ms",
        m.k_search_incremental(n) / 1e6
    );
    println!(
        "  regenerating (f every key) : {:>10.1} ms",
        m.k_search_regenerating(n) / 1e6
    );
    println!(
        "  process efficiency          : {:.2}% (asymptote {:.2}%)",
        m.efficiency(n).percent(),
        m.asymptotic_efficiency().percent()
    );

    // --- III: the K_D dispatch bounds for a 3-node example.
    let d = DispatchCosts::new(
        vec![(0.002, 1.20, 0.002), (0.002, 1.18, 0.002), (0.004, 1.22, 0.004)],
        0.001,
    );
    println!("\ndispatch-cost bounds for one round (seconds):");
    println!("  K_D lower bound = {:.4}", d.k_d_lower());
    println!("  K_D upper bound = {:.4}", d.k_d_upper());
    println!("  dominant search = {:.4}  (the slowest node, as §III concludes)", d.dominant_search());

    // --- III: tuning + balancing on heterogeneous rates.
    let rates = vec![
        NodeRate::new(1841.0, 36_500_000), // GTX 660 tuned numbers
        NodeRate::new(654.0, 13_000_000),  // GTX 550 Ti
        NodeRate::new(71.0, 1_500_000),    // 8600M GT
    ];
    let a = balance_workloads(&rates);
    println!("\nbalanced assignment N_j = N_max · X_j / X_max:");
    for (r, nj) in rates.iter().zip(&a.sizes) {
        println!("  X_j = {:>7.0} MK/s  ->  N_j = {nj}", r.throughput);
    }
    println!(
        "  round total {} keys, predicted parallel efficiency {:.4}",
        a.round_total(),
        parallel_efficiency(&a.sizes, &rates)
    );
}
