//! Operating a dynamic cluster (the paper's §III runtime-reconfiguration
//! extension): nodes join, leave and get re-tuned while a long search
//! runs; the master rebalances at every membership change. Offline
//! model-fitting replaces the online tuning pass for the joining node.
//!
//! Run with: `cargo run --release --example dynamic_cluster`

use eks::cluster::model::{calibrate, FittedModel};
use eks::cluster::{
    run_dynamic, tune_device, AchievedModel, DynamicConfig, MembershipEvent, ScheduledEvent,
};
use eks::gpusim::device::Device;
use eks::hashes::HashAlgo;
use eks::kernels::Tool;
use eks::keyspace::Interval;

fn main() {
    // Start with two of the paper's nodes.
    let gtx660 = tune_device(
        &Device::geforce_gtx_660(),
        Tool::OurApproach,
        HashAlgo::Md5,
        AchievedModel::Analytic,
    );
    let gt540m = tune_device(
        &Device::geforce_gt_540m(),
        Tool::OurApproach,
        HashAlgo::Md5,
        AchievedModel::Analytic,
    );
    println!(
        "initial members: GTX660 {:.0} MKey/s, GT540M {:.0} MKey/s",
        gtx660.achieved_mkeys, gt540m.achieved_mkeys
    );

    // A volunteer offers a CPU box; calibrate it offline with the fitted
    // affine model T(n) = overhead + n / rate instead of a live tuning
    // pass (paper: "an approximated model could be built offline").
    let cpu_model: FittedModel = calibrate(&[50_000, 100_000, 200_000], |n| {
        use eks::cracker::{crack_parallel, ParallelConfig, TargetSet};
        use eks::keyspace::{Charset, KeySpace, Order};
        let space = KeySpace::new(Charset::lowercase(), 1, 8, Order::FirstCharFastest).unwrap();
        let t = TargetSet::new(HashAlgo::Md5, &[vec![0u8; 16]]);
        crack_parallel(
            &space,
            &t,
            Interval::new(0, n as u128),
            ParallelConfig { threads: 4, chunk: 1 << 12, first_hit_only: false, ..ParallelConfig::default() },
        )
        .elapsed_s
    })
    .expect("calibration fits");
    println!(
        "volunteer CPU calibrated offline: {:.2} MKey/s, {:.2} ms overhead (R² {:.4})",
        cpu_model.mkeys(),
        cpu_model.overhead_s * 1e3,
        cpu_model.r_squared
    );

    // A day in the life: the CPU joins, the 540M laptop leaves (lid
    // closed), the 660 gets thermally throttled and re-tunes lower.
    let events = vec![
        ScheduledEvent {
            before_round: 5,
            event: MembershipEvent::Join { name: "volunteer-cpu".into(), mkeys: cpu_model.mkeys() },
        },
        ScheduledEvent {
            before_round: 12,
            event: MembershipEvent::Leave { name: "GT540M".into() },
        },
        ScheduledEvent {
            before_round: 20,
            event: MembershipEvent::Retune {
                name: "GTX660".into(),
                mkeys: gtx660.achieved_mkeys * 0.8,
            },
        },
    ];
    let report = run_dynamic(
        &[
            ("GTX660", gtx660.achieved_mkeys),
            ("GT540M", gt540m.achieved_mkeys),
        ],
        Interval::new(0, 60_000_000_000),
        DynamicConfig { round_keys: 2_000_000_000, round_overhead_s: 5e-3 },
        &events,
    );

    println!("\nsearch of 6e10 keys over {} rounds ({} rebalances):", report.rounds, report.rebalances);
    for (name, keys) in &report.per_member {
        println!("  {name:<16} {keys:>16} keys");
    }
    println!(
        "covered {} keys in {:.1} s of virtual time",
        report.covered, report.makespan_s
    );
    assert_eq!(report.covered, 60_000_000_000);
}
