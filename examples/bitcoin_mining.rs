//! The paper's second motivating application (Section I): Bitcoin-style
//! mining as exhaustive search — find a nonce whose double-SHA-256 block
//! hash has enough leading zero bits.
//!
//! Run with: `cargo run --release --example bitcoin_mining`

use eks::cracker::{mine, MiningJob};
use eks::hashes::sha256::leading_zero_bits;
use eks::hashes::to_hex;

fn main() {
    let header = b"eks-demo-block:prev=00ab3f...:merkle=7c11e2...:time=1404691200".to_vec();

    // Increasing difficulty, like the network ratcheting up.
    for difficulty in [8u32, 12, 16, 20] {
        let job = MiningJob { header: header.clone(), difficulty_bits: difficulty };
        let start = std::time::Instant::now();
        match mine(&job, 0..u32::MAX as u64, 8) {
            Some(result) => {
                let elapsed = start.elapsed().as_secs_f64();
                println!(
                    "difficulty {difficulty:>2} bits: nonce {:>10} after {:>9} tests ({:.3} s, {:.2} Mhash/s)",
                    result.nonce,
                    result.tested,
                    elapsed,
                    result.tested as f64 / elapsed / 1e6
                );
                println!("  block hash: {}", to_hex(&result.digest));
                assert!(leading_zero_bits(&result.digest) >= difficulty);
            }
            None => println!("difficulty {difficulty}: nonce space exhausted (unlucky header)"),
        }
    }
    println!("\nExpected work doubles every bit — the same exhaustive-search pattern,");
    println!("a different test function C (leading zeros instead of digest equality).");
}
