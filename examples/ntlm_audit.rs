//! An NTLM audit session end-to-end: the workflow a security team runs
//! against a dumped SAM table, with every layer of this repository in the
//! loop — checkpointed sweep, per-account findings, password statistics,
//! and time-to-crack estimates on the paper's GPUs.
//!
//! Run with: `cargo run --release --example ntlm_audit`

use eks::cluster::{estimate_against_device, StrengthEstimate};
use eks::cracker::{AuditEntry, AuditSession, PasswordStats};
use eks::gpusim::device::Device;
use eks::hashes::{to_hex, HashAlgo};
use eks::keyspace::{Charset, Key, KeySpace, Order};

fn main() {
    // The "dumped table": NTLM hashes (how they'd arrive, we only see
    // digests). The passwords behind them vary in strength.
    let truth: Vec<(&str, &[u8])> = vec![
        ("svc_backup", b"a"),
        ("j.smith", b"dog"),
        ("admin", b"zzz"),
        ("m.jones", b"qwrt"),
        ("ceo", b"Xk9qWz77"), // outside the lowercase sweep: survives
    ];
    let entries: Vec<AuditEntry> = truth
        .iter()
        .map(|(account, pw)| AuditEntry {
            account: account.to_string(),
            digest: HashAlgo::Ntlm.hash(pw),
        })
        .collect();

    println!("NTLM table under audit:");
    for e in &entries {
        println!("  {:<12} {}", e.account, to_hex(&e.digest));
    }

    // Sweep lowercase 1..=4 — the "weak password" band.
    let space = KeySpace::new(Charset::lowercase(), 1, 4, Order::FirstCharFastest).unwrap();
    println!("\nsweeping {} candidates (lowercase, 1..=4 chars)...", space.size());
    let mut session = AuditSession::new(HashAlgo::Ntlm, entries, &space);
    let mut checkpoints = 0u32;
    let report = session.run(&space, |_serialized| checkpoints += 1);
    print!("\n{}", report.render());
    println!("({checkpoints} checkpoints persisted along the way)");

    // Statistics over what fell.
    let cracked: Vec<Key> = report.findings.iter().map(|f| f.password.clone()).collect();
    println!("\npassword statistics:");
    print!("{}", PasswordStats::analyze(&cracked).render());

    // How long each cracked password would survive a GTX 660 sweeping the
    // full alphanumeric space — the remediation priority column.
    let full_space =
        KeySpace::new(Charset::alphanumeric(), 1, 8, Order::FirstCharFastest).unwrap();
    let gpu = Device::geforce_gtx_660();
    println!("\ntime-to-crack on a GTX 660 over alphanumeric 1..=8 (NTLM):");
    for f in &report.findings {
        match estimate_against_device(&f.password, &full_space, HashAlgo::Ntlm, &gpu) {
            Some(e) => println!(
                "  {:<12} {:<10} falls in {}",
                f.account,
                format!("{:?}", f.password.to_string()),
                StrengthEstimate::render_duration(e.time_to_reach_s)
            ),
            None => println!("  {:<12} outside the space", f.account),
        }
    }
    println!("\nsurvivor \"ceo\" used length-8 mixed classes — the audit's point.");
}
