//! The fault-tolerance model the paper sketches (Sections III and VII):
//! when a node goes silent, requeue its outstanding interval and
//! repartition over the survivors — and observe the caveat that a dead
//! *dispatcher* silences its whole subtree.
//!
//! Run with: `cargo run --release --example fault_tolerance`

use eks::cluster::{
    paper_network, simulate_search, simulate_search_with_failure, FailureEvent, SimParams,
};
use eks::hashes::HashAlgo;
use eks::kernels::Tool;

fn main() {
    let net = paper_network(2e-3);
    let params = SimParams::default();
    let keys = 5e11;

    let baseline = simulate_search(&net, Tool::OurApproach, HashAlgo::Md5, keys, params);
    println!(
        "baseline: {:.1} s, {:.1} MKey/s, efficiency {:.3}\n",
        baseline.makespan_s,
        baseline.achieved_mkeys,
        baseline.table9_efficiency()
    );

    for (node, role) in [("D", "leaf (8800 GTS)"), ("B", "leaf with both fast GPUs"), ("C", "dispatcher (takes D down too)")] {
        let failure = FailureEvent {
            node: node.to_string(),
            at_fraction: 0.5,
            detection_timeout_s: 2.0,
        };
        let r = simulate_search_with_failure(
            &net,
            Tool::OurApproach,
            HashAlgo::Md5,
            keys,
            params,
            &failure,
        );
        println!("failure of {node} — {role}:");
        println!(
            "  lost {} device(s), {} survive; {:.2e} keys requeued",
            r.lost_devices, r.surviving_devices, r.requeued_keys
        );
        println!(
            "  completion {:.1} s vs {:.1} s baseline  (slowdown {:.2}x)\n",
            r.makespan_s, r.baseline_makespan_s, r.slowdown
        );
    }

    println!("note: the dispatcher failure (C) matches the paper's warning that");
    println!("\"the inactivity of a dispatching node would block the contribution");
    println!("of all the nodes in the dispatching sub tree\".");
}
