//! The attack families of the paper's introduction, side by side on the
//! same target: plain brute force, a mask ("common password patterns")
//! and a hybrid dictionary + suffix attack — all driven by the same
//! exhaustive-search pattern, because each space is a bijection from
//! `0..size` onto its candidates.
//!
//! Run with: `cargo run --release --example hybrid_attack`

use eks::cracker::{crack_space_parallel, ParallelConfig, TargetSet};
use eks::hashes::HashAlgo;
use eks::keyspace::{Charset, HybridSpace, KeySpace, MaskSpace, Order};

fn main() {
    // The victim chose a classic pattern: capitalized word + two digits.
    let secret = b"Cat42";
    let targets = TargetSet::new(HashAlgo::Md5, &[HashAlgo::Md5.hash(secret)]);
    let cfg = ParallelConfig { threads: 8, chunk: 1 << 12, first_hit_only: true, ..ParallelConfig::default() };
    println!("target: md5(\"Cat42\") — unknown to the attacker\n");

    // 1. Plain brute force: correct but the most expensive option. Run a
    //    calibration slice and extrapolate rather than grinding the full
    //    931M-candidate space on a CPU.
    let brute = KeySpace::new(Charset::alphanumeric(), 1, 5, Order::FirstCharFastest).unwrap();
    let slice = KeySpace::new(Charset::alphanumeric(), 1, 4, Order::FirstCharFastest).unwrap();
    let miss = TargetSet::new(HashAlgo::Md5, &[vec![0u8; 16]]);
    let t0 = std::time::Instant::now();
    let r = crack_space_parallel(&slice, &miss, ParallelConfig { first_hit_only: false, ..cfg });
    let rate = r.tested as f64 / t0.elapsed().as_secs_f64();
    println!(
        "brute force        : {:>12} candidates (1..=5 alphanumeric)",
        brute.size()
    );
    println!(
        "  full sweep would take ≈ {:.0} s at this host's {:.2} MKey/s\n",
        brute.size() as f64 / rate,
        rate / 1e6
    );

    // 2. Mask attack: the attacker bets on the Capitalized+2-digits shape.
    let mask = MaskSpace::parse("?u?l?l?d?d").unwrap();
    println!("mask ?u?l?l?d?d    : {:>12} candidates", mask.size());
    let t0 = std::time::Instant::now();
    let r = crack_space_parallel(&mask, &targets, cfg);
    report("  ", &r, t0.elapsed().as_secs_f64());

    // 3. Hybrid dictionary + digit suffixes: the cheapest when the word
    //    is common.
    let words: Vec<&[u8]> = vec![
        b"Password", b"Winter", b"Dragon", b"Cat", b"Monkey", b"Shadow", b"Master", b"Qwerty",
    ];
    let hybrid = HybridSpace::with_digit_suffixes(&words, 2).unwrap();
    println!("hybrid dict + ?d?d : {:>12} candidates ({} words)", hybrid.size(), hybrid.word_count());
    let t0 = std::time::Instant::now();
    let r = crack_space_parallel(&hybrid, &targets, ParallelConfig { chunk: 32, ..cfg });
    report("  ", &r, t0.elapsed().as_secs_f64());

    println!("\nsame engine, same dispatch pattern — only the bijection f(id) changed.");
}

fn report(indent: &str, r: &eks::cracker::ParallelReport, secs: f64) {
    match r.hits.first() {
        Some((id, key, _)) => println!(
            "{indent}cracked \"{key}\" (id {id}) after {} tests in {:.3} s ({:.2} MKey/s)\n",
            r.tested, secs, r.mkeys_per_s
        ),
        None => println!("{indent}missed\n"),
    }
}
