//! Section V walkthrough: how kernel instruction counts and architecture
//! structure determine throughput.
//!
//! Prints, for MD5: the source-level counts (Table III), the compiled
//! counts per architecture for the naive / reversed / optimized kernels
//! (Tables IV–VI), and per device the theoretical vs cycle-simulated
//! throughput plus the dual-issue rate the CUDA profiler would report.
//!
//! Run with: `cargo run --release --example kernel_analysis`

use eks::gpusim::arch::ComputeCapability;
use eks::gpusim::codegen::{lower, LoweringOptions};
use eks::gpusim::device::DeviceCatalog;
use eks::gpusim::sched::{simulate, SimConfig};
use eks::gpusim::throughput::theoretical_mkeys;
use eks::kernels::counts::our_md5_source_counts;
use eks::kernels::md5::{build_md5, Md5Variant};
use eks::kernels::words_for_key_len;

fn main() {
    // Table III: source-level operation counts.
    let src = our_md5_source_counts();
    println!("MD5 source-level counts (Table III):");
    println!("  ADD {}  AND/OR/XOR {}  NOT {}  shift {}\n", src.add, src.logic, src.not, src.shift);

    // Tables IV-VI: compiled counts per variant and architecture.
    let words = words_for_key_len(4);
    for (label, variant) in [
        ("naive (Table IV)", Md5Variant::Naive),
        ("reversed+early-exit (Table V)", Md5Variant::Optimized),
    ] {
        println!("compiled counts — {label}:");
        for cc in [ComputeCapability::Sm1x, ComputeCapability::Sm21, ComputeCapability::Sm30] {
            let opts = if variant == Md5Variant::Optimized && cc == ComputeCapability::Sm30 {
                LoweringOptions::for_cc(cc) // Table VI: + __byte_perm
            } else {
                LoweringOptions::plain(cc)
            };
            let k = lower(&build_md5(variant, &words).ir, opts);
            println!(
                "  cc {:<4} IADD {:>3}  LOP {:>3}  SHR/SHL {:>3}  IMAD {:>3}  PRMT {:>2}  (R = {:.2})",
                cc.label(),
                k.counts.iadd(),
                k.counts.lop(),
                k.counts.shift(),
                k.counts.imad(),
                k.counts.prmt(),
                k.counts.ratio(),
            );
        }
        println!();
    }

    // Table VIII: theoretical vs simulated achieved per device.
    println!("per-device MD5 throughput (optimized kernel):");
    println!(
        "{:<24} {:>12} {:>12} {:>8} {:>10}",
        "device", "theoretical", "simulated", "eff", "dual-issue"
    );
    for dev in DeviceCatalog::paper_devices() {
        let built = build_md5(Md5Variant::Optimized, &words);
        let k = lower(&built.ir, LoweringOptions::for_cc(dev.cc));
        let theo = theoretical_mkeys(&dev, &k.counts);
        let sim = simulate(&k, SimConfig::for_cc(dev.cc));
        let achieved = sim.device_mkeys(&dev);
        println!(
            "{:<24} {:>8.1} MK/s {:>8.1} MK/s {:>7.1}% {:>9.1}%",
            dev.name,
            theo,
            achieved,
            achieved / theo * 100.0,
            sim.dual_issue_rate() * 100.0
        );
    }
}
