//! Exhaustively model-check the work-stealing scheduler protocol.
//!
//! The tests sample random interleavings; this example closes the gap
//! for a bounded configuration by exploring *every* schedule of two
//! workers popping eight two-key intervals, then demonstrates the
//! negative path: a seeded protocol bug (a steal that drops the stolen
//! lease) is caught with a concrete counterexample schedule.
//!
//! Run with: `cargo run --release --example verify_scheduler`

use eks::verify::{check, standard_checks, CheckOptions, ModelConfig, Mutation};

fn main() {
    let opts = CheckOptions::default();

    // Positive path: the shipped protocol, explored exhaustively across
    // every steal/guided/first-hit/cancel/static shape.
    println!("exhaustive scheduler checks (2 workers, 8 two-key intervals):");
    for named in standard_checks(2, 8) {
        let start = std::time::Instant::now();
        let out = check(named.config.clone(), opts);
        let verdict = if out.clean() { "ok" } else { "VIOLATION" };
        println!(
            "  {:<28} {:>6} states {:>6} transitions {:>5.1} ms  {verdict}  ({})",
            named.name,
            out.states,
            out.transitions,
            start.elapsed().as_secs_f64() * 1e3,
            named.claim,
        );
        assert!(out.clean(), "a shipped configuration must verify");
        assert!(!out.truncated, "bounded exploration must complete");
    }

    // Negative path: seed a bug — steal_into removes the back half from
    // the victim but never hands it to the thief — and watch the
    // checker produce the schedule that loses the lease.
    println!();
    println!("seeding a bug: steals drop the stolen lease...");
    let broken =
        ModelConfig::steal_intervals(2, 4).with_mutation(Mutation::DropStolenLease);
    let out = check(broken, opts);
    let violation = out.violation.expect("the checker must flag the seeded bug");
    print!("{}", violation.render());
    println!("(every `eks verify --mutate` seeded bug dies like this in CI)");
}
