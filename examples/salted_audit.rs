//! A password-audit session (the paper's Section I motivation: "in some
//! working environments it is a standard procedure to make periodic
//! cracking tests, called auditing sessions").
//!
//! Cracks a small table of salted and unsalted hashes in one sweep,
//! demonstrating why salting defeats precomputation (every digest is
//! different) but not brute force (the salt is known, the search space is
//! unchanged).
//!
//! Run with: `cargo run --release --example salted_audit`

use eks::cracker::{crack_parallel, HashTarget, ParallelConfig, TargetSet};
use eks::hashes::{to_hex, HashAlgo};
use eks::keyspace::{Charset, Interval, KeySpace, Order};

fn main() {
    let algo = HashAlgo::Sha1;
    let salt = b"$corp2014$";

    // The "leaked database": user, salted digest. Weak passwords only —
    // that is what audits look for.
    let users: Vec<(&str, &[u8])> = vec![("alice", b"abc"), ("bob", b"kiwi"), ("carol", b"zz9")];
    let table: Vec<(String, HashTarget)> = users
        .iter()
        .map(|(user, pw)| {
            let mut msg = salt.to_vec();
            msg.extend_from_slice(pw);
            let digest = algo.hash_long(&msg);
            (user.to_string(), HashTarget::salted(algo, &digest, salt, b""))
        })
        .collect();

    println!("auditing {} salted SHA-1 hashes (salt {:?}):", table.len(), "corp2014");
    for (user, t) in &table {
        println!("  {user:<8} {}", to_hex(t.digest()));
    }

    // The salt does not enlarge the search space: we still enumerate only
    // the candidate passwords.
    let space = KeySpace::new(Charset::alphanumeric(), 1, 4, Order::FirstCharFastest).unwrap();
    println!("\nsearch space: {} candidates (1..=4 alphanumeric)", space.size());

    // Sweep once per target (salted digests cannot share a TargetSet
    // binary search, since each needs salt concatenation).
    let start = std::time::Instant::now();
    for (user, target) in &table {
        let found = sweep(&space, target);
        match found {
            Some(pw) => println!("  {user:<8} -> \"{pw}\"  (CRACKED — rotate this password)"),
            None => println!("  {user:<8} -> not found in this space"),
        }
    }
    println!("audit finished in {:.2} s", start.elapsed().as_secs_f64());

    // Contrast: unsalted digests crack in a single multi-target sweep.
    let unsalted: Vec<Vec<u8>> =
        users.iter().map(|(_, pw)| algo.hash_long(pw)).collect();
    let set = TargetSet::new(algo, &unsalted);
    let report = crack_parallel(
        &space,
        &set,
        space.interval(),
        ParallelConfig { threads: 8, chunk: 1 << 14, first_hit_only: false, ..ParallelConfig::default() },
    );
    println!(
        "\nunsalted contrast: {} of {} cracked in ONE sweep ({:.2} MKey/s)",
        report.hits.len(),
        users.len(),
        report.mkeys_per_s
    );
}

fn sweep(space: &KeySpace, target: &HashTarget) -> Option<String> {
    // Simple chunked scan; the salted path goes through the streaming
    // hasher, so no reversed-MD5 shortcut applies.
    let mut found = None;
    space.iter(Interval::new(0, space.size())).for_each_key(|_, key| {
        if target.matches(key) {
            found = Some(key.to_string());
            false
        } else {
            true
        }
    });
    found
}
