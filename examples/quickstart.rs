//! Quickstart: crack an MD5-hashed password with the parallel CPU engine.
//!
//! Demonstrates the pieces of the paper's Section IV in order: the
//! bijective enumeration `f(id)` (Fig. 1), the `next` operator (Fig. 2),
//! the keyspace size (Eq. 2), and an actual multi-threaded search.
//!
//! Run with: `cargo run --release --example quickstart`

use eks::cracker::{crack_parallel, ParallelConfig, TargetSet};
use eks::hashes::{to_hex, HashAlgo};
use eks::keyspace::{Charset, KeySpace, Order};

fn main() {
    // The secret only the "victim" knows; we only get its digest.
    let secret = b"gpu";
    let digest = HashAlgo::Md5.hash(secret);
    println!("target MD5 digest : {}", to_hex(&digest));

    // Search space: lowercase letters, lengths 1..=5, enumerated with the
    // first character varying fastest (mapping (4) of the paper — the
    // order the reversed-MD5 kernel requires).
    let charset = Charset::lowercase();
    let space = KeySpace::new(charset, 1, 5, Order::FirstCharFastest).expect("valid space");
    println!("search space size : {} candidates (Eq. 2)", space.size());

    // A peek at the enumeration (Fig. 1) and the next operator (Fig. 2).
    print!("first candidates  : ");
    for id in 0..8 {
        print!("{} ", space.key_at(id));
    }
    println!("... (f(id), first char fastest)");
    let mut k = space.key_at(0);
    space.advance_key(&mut k);
    assert_eq!(k, space.key_at(1), "next(f(0)) == f(1)");

    // Crack it with 8 worker threads.
    let targets = TargetSet::new(HashAlgo::Md5, &[digest]);
    let config = ParallelConfig { threads: 8, chunk: 1 << 14, first_hit_only: true, ..ParallelConfig::default() };
    let report = crack_parallel(&space, &targets, space.interval(), config);

    match report.hits.first() {
        Some((id, key, _)) => {
            println!("cracked           : \"{key}\" (identifier {id})");
            println!(
                "tested            : {} candidates in {:.3} s ({:.2} MKey/s)",
                report.tested, report.elapsed_s, report.mkeys_per_s
            );
            assert_eq!(key.as_bytes(), secret);
        }
        None => unreachable!("the secret is inside the space"),
    }
}
