//! Observability end-to-end: crack a small keyspace on a simulated
//! heterogeneous cluster with telemetry enabled, then render the run
//! report from the exposition artifacts alone — the same pipeline as
//! `eks crack --metrics-out/--trace-out` followed by `eks report`.
//!
//! The cluster mixes a simulated Kepler GPU (GTX 660), a simulated
//! Fermi GPU (GTX 550 Ti) and two real CPU lane workers, so the
//! per-device tuned rates differ by an order of magnitude and the
//! §III proportional scatter actually has something to balance. The
//! report puts the measured network efficiency next to the 85–90%
//! band the paper reports for its four-node network.
//!
//! Run with: `cargo run --release --example telemetry_report`

use eks::cluster::run_cluster_search_observed;
use eks::cracker::TargetSet;
use eks::engine::SchedPolicy;
use eks::gpusim::device::Device;
use eks::hashes::HashAlgo;
use eks::keyspace::{Charset, KeySpace, Order};
use eks::telemetry::report::{render_report, PAPER_EFFICIENCY_RANGE};
use eks::telemetry::{parse_prometheus, parse_trace_jsonl, Telemetry};

fn main() {
    // A heterogeneous node: two simulated GPUs of different
    // generations plus two CPU lane workers.
    let net = eks::cluster::ClusterNode::device_node(
        "box",
        vec![Device::geforce_gtx_660(), Device::geforce_gtx_550_ti()],
        0.0,
    )
    .with_cpu("host-cpu", 2);
    println!("cluster: box(660, 550Ti, cpu:2)\n");

    // The search: all lowercase strings of length 1..=4, exhaustive
    // (no early exit), so every worker's share is real work.
    let space = KeySpace::new(Charset::lowercase(), 1, 4, Order::FirstCharFastest).unwrap();
    let secret = b"gpus";
    let targets = TargetSet::new(HashAlgo::Md5, &[HashAlgo::Md5.hash(secret)]);

    // Run with a live registry + trace sink; the steal scheduler
    // repairs whatever the tuned-rate scatter got wrong.
    let telemetry = Telemetry::enabled();
    let result = run_cluster_search_observed(
        &net,
        &space,
        &targets,
        space.interval(),
        false,
        SchedPolicy::Steal,
        &telemetry,
    );
    let (_, key, _) = result.hits.first().expect("planted key is in the space");
    println!("cracked \"{key}\" — {} keys tested\n", result.tested);

    // Round-trip through the on-disk formats: everything below uses
    // only what `--metrics-out` / `--trace-out` would have written.
    let samples = parse_prometheus(&telemetry.render_prometheus()).expect("valid exposition");
    let trace = parse_trace_jsonl(&telemetry.trace_jsonl()).expect("valid trace JSONL");
    print!("{}", render_report(&samples, &trace));

    let (lo, hi) = PAPER_EFFICIENCY_RANGE;
    println!(
        "\nmeasured parallel efficiency {:.1}% — the paper's whole-network band is {lo:.0}-{hi:.0}%",
        result.parallel_efficiency()
    );
}
