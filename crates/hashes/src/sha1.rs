//! SHA-1 (RFC 3174), implemented from scratch.

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use crate::digest::Digest;
use crate::padding::{pad_sha_block, MAX_SINGLE_BLOCK_MSG};

/// SHA-1 initial state (RFC 3174 §6.1).
pub const IV: [u32; 5] = [
    0x6745_2301,
    0xefcd_ab89,
    0x98ba_dcfe,
    0x1032_5476,
    0xc3d2_e1f0,
];

/// Round constants, one per 20-step quarter.
pub const K: [u32; 4] = [0x5a82_7999, 0x6ed9_eba1, 0x8f1b_bcdc, 0xca62_c1d6];

/// The non-linear function for round `i`.
#[inline]
pub fn round_fn(i: usize, b: u32, c: u32, d: u32) -> u32 {
    match i / 20 {
        0 => (b & c) | (!b & d),        // Ch
        1 => b ^ c ^ d,                 // Parity
        2 => (b & c) | (b & d) | (c & d), // Maj
        _ => b ^ c ^ d,                 // Parity
    }
}

/// Expand a 16-word block into the 80-word message schedule.
pub fn expand_schedule(block: &[u32; 16]) -> [u32; 80] {
    let mut w = [0u32; 80];
    w[..16].copy_from_slice(block);
    for i in 16..80 {
        w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
    }
    w
}

/// One SHA-1 round over the 5-word working state.
#[inline]
pub fn round(i: usize, state: [u32; 5], wi: u32) -> [u32; 5] {
    let [a, b, c, d, e] = state;
    let temp = a
        .rotate_left(5)
        .wrapping_add(round_fn(i, b, c, d))
        .wrapping_add(e)
        .wrapping_add(K[i / 20])
        .wrapping_add(wi);
    [temp, a, b.rotate_left(30), c, d]
}

/// The SHA-1 compression function: 80 rounds plus the chaining addition.
pub fn sha1_compress(state: [u32; 5], block: &[u32; 16]) -> [u32; 5] {
    let w = expand_schedule(block);
    let mut s = state;
    for (i, &wi) in w.iter().enumerate() {
        s = round(i, s, wi);
    }
    [
        s[0].wrapping_add(state[0]),
        s[1].wrapping_add(state[1]),
        s[2].wrapping_add(state[2]),
        s[3].wrapping_add(state[3]),
        s[4].wrapping_add(state[4]),
    ]
}

/// Hash a message that fits one block (≤ 55 bytes) — the kernel fast path.
pub fn sha1_single_block(msg: &[u8]) -> [u8; 20] {
    debug_assert!(msg.len() <= MAX_SINGLE_BLOCK_MSG);
    let w = pad_sha_block(msg);
    state_to_digest(sha1_compress(IV, &w))
}

/// Serialize a SHA-1 state as the big-endian digest bytes.
pub fn state_to_digest(state: [u32; 5]) -> [u8; 20] {
    let mut out = [0u8; 20];
    for (i, word) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// Parse a 20-byte digest back into the five state words.
pub fn digest_to_state(digest: &[u8; 20]) -> [u32; 5] {
    let mut state = [0u32; 5];
    for (i, chunk) in digest.chunks_exact(4).enumerate() {
        state[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
    }
    state
}

/// One-shot SHA-1 of arbitrary-length input.
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize_fixed()
}

/// Streaming SHA-1 hasher.
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buffer: [u8; 64],
    buffered: usize,
    total_len: u64,
}

impl Sha1 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Self { state: IV, buffer: [0; 64], buffered: 0, total_len: 0 }
    }

    /// Finalize into the fixed-size digest.
    pub fn finalize_fixed(mut self) -> [u8; 20] {
        let bitlen = self.total_len.wrapping_mul(8);
        self.update_bytes(&[0x80]);
        while self.buffered != 56 {
            self.update_bytes(&[0]);
        }
        let mut block = self.buffer;
        block[56..64].copy_from_slice(&bitlen.to_be_bytes());
        let w = words_be(&block);
        self.state = sha1_compress(self.state, &w);
        state_to_digest(self.state)
    }

    fn update_bytes(&mut self, data: &[u8]) {
        for &b in data {
            self.buffer[self.buffered] = b;
            self.buffered += 1;
            if self.buffered == 64 {
                let w = words_be(&self.buffer);
                self.state = sha1_compress(self.state, &w);
                self.buffered = 0;
            }
        }
    }
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Digest for Sha1 {
    const OUTPUT_LEN: usize = 20;

    fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        self.update_bytes(data);
    }

    fn finalize(self) -> Vec<u8> {
        self.finalize_fixed().to_vec()
    }

    fn reset(&mut self) {
        *self = Self::new();
    }
}

fn words_be(block: &[u8; 64]) -> [u32; 16] {
    let mut w = [0u32; 16];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::to_hex;

    /// RFC 3174 §7.3 and FIPS 180 test vectors.
    #[test]
    fn rfc3174_vectors() {
        let cases = [
            ("abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
            (
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "84983e441c3bd26ebaae4aa1f95129e5e54670f1",
            ),
            ("", "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
            ("The quick brown fox jumps over the lazy dog", "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"),
        ];
        for (msg, want) in cases {
            assert_eq!(to_hex(&sha1(msg.as_bytes())), want, "sha1({msg:?})");
        }
    }

    #[test]
    fn million_a() {
        // RFC 3174 TEST3: one million repetitions of "a".
        let msg = vec![b'a'; 1_000_000];
        assert_eq!(to_hex(&sha1(&msg)), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn single_block_agrees_with_streaming() {
        for len in 0..=55usize {
            let msg: Vec<u8> = (100..100 + len as u8).collect();
            assert_eq!(sha1_single_block(&msg), sha1(&msg), "len={len}");
        }
    }

    #[test]
    fn streaming_is_chunking_invariant() {
        let msg: Vec<u8> = (0..=255u8).cycle().take(777).collect();
        let whole = sha1(&msg);
        let mut h = Sha1::new();
        for chunk in msg.chunks(13) {
            h.update(chunk);
        }
        assert_eq!(h.finalize_fixed(), whole);
    }

    #[test]
    fn digest_state_round_trip() {
        let d = sha1(b"state");
        assert_eq!(state_to_digest(digest_to_state(&d)), d);
    }

    #[test]
    fn schedule_expansion_is_rotl1_of_xors() {
        let block = pad_sha_block(b"abc");
        let w = expand_schedule(&block);
        for i in 16..80 {
            assert_eq!(w[i], (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1));
        }
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut h = Sha1::new();
        h.update(b"junk");
        h.reset();
        h.update(b"abc");
        assert_eq!(to_hex(&h.finalize()), "a9993e364706816aba3e25717850c26c9cd0d89d");
    }
}
