//! MD4 (RFC 1320) and the NTLM password hash (MD4 over UTF-16LE).
//!
//! An extension beyond the paper's MD5/SHA-1 pair: NTLM is the password
//! hash most audit sessions actually face, and it slots into the same
//! pattern — MD4 is MD5's 48-step predecessor with the same block
//! structure, so everything downstream (single-block fast path, target
//! sets, dispatch) works unchanged.

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use crate::digest::Digest;
use crate::padding::{pad_md5_block, MAX_SINGLE_BLOCK_MSG};

/// MD4 initial state (identical to MD5's).
pub const IV: [u32; 4] = [0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476];

/// Message-word index used by step `i` (RFC 1320 round schedules).
pub const WORD_INDEX: [usize; 48] = [
    0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, // round 1
    0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15, // round 2
    0, 8, 4, 12, 2, 10, 6, 14, 1, 9, 5, 13, 3, 11, 7, 15, // round 3
];

/// Per-step left-rotation amounts.
pub const ROT: [u32; 48] = [
    3, 7, 11, 19, 3, 7, 11, 19, 3, 7, 11, 19, 3, 7, 11, 19, //
    3, 5, 9, 13, 3, 5, 9, 13, 3, 5, 9, 13, 3, 5, 9, 13, //
    3, 9, 11, 15, 3, 9, 11, 15, 3, 9, 11, 15, 3, 9, 11, 15,
];

/// Additive constant of step `i` (0, √2-, √3-derived per round).
pub const fn step_k(i: usize) -> u32 {
    match i / 16 {
        0 => 0,
        1 => 0x5a82_7999,
        _ => 0x6ed9_eba1,
    }
}

/// The non-linear round function of step `i`.
#[inline]
pub fn round_fn(i: usize, b: u32, c: u32, d: u32) -> u32 {
    match i / 16 {
        0 => (b & c) | (!b & d),          // F
        1 => (b & c) | (b & d) | (c & d), // G
        _ => b ^ c ^ d,                   // H
    }
}

/// One forward MD4 step in the rotating-state formulation: returns
/// `[d, new, b, c]` with `new = rotl(a + f(b,c,d) + w[g] + K, s)`.
#[inline]
pub fn step(i: usize, state: [u32; 4], w: &[u32; 16]) -> [u32; 4] {
    let [a, b, c, d] = state;
    let new = a
        .wrapping_add(round_fn(i, b, c, d))
        .wrapping_add(w[WORD_INDEX[i]])
        .wrapping_add(step_k(i))
        .rotate_left(ROT[i]);
    [d, new, b, c]
}

/// Invert one MD4 step (requires the message word of step `i`).
#[inline]
pub fn unstep(i: usize, state: [u32; 4], w: &[u32; 16]) -> [u32; 4] {
    let [a_after, b_after, c_after, d_after] = state;
    let b = c_after;
    let c = d_after;
    let d = a_after;
    let a = b_after
        .rotate_right(ROT[i])
        .wrapping_sub(round_fn(i, b, c, d))
        .wrapping_sub(w[WORD_INDEX[i]])
        .wrapping_sub(step_k(i));
    [a, b, c, d]
}

/// The MD4 compression function over one little-endian 16-word block.
pub fn md4_compress(state: [u32; 4], w: &[u32; 16]) -> [u32; 4] {
    let [mut a, mut b, mut c, mut d] = state;
    let f = |x: u32, y: u32, z: u32| (x & y) | (!x & z);
    let g = |x: u32, y: u32, z: u32| (x & y) | (x & z) | (y & z);
    let h = |x: u32, y: u32, z: u32| x ^ y ^ z;

    // Round 1.
    for chunk in 0..4 {
        let base = chunk * 4;
        a = a.wrapping_add(f(b, c, d)).wrapping_add(w[base]).rotate_left(3);
        d = d.wrapping_add(f(a, b, c)).wrapping_add(w[base + 1]).rotate_left(7);
        c = c.wrapping_add(f(d, a, b)).wrapping_add(w[base + 2]).rotate_left(11);
        b = b.wrapping_add(f(c, d, a)).wrapping_add(w[base + 3]).rotate_left(19);
    }
    // Round 2.
    const K2: u32 = 0x5a82_7999;
    for col in 0..4 {
        a = a.wrapping_add(g(b, c, d)).wrapping_add(w[col]).wrapping_add(K2).rotate_left(3);
        d = d.wrapping_add(g(a, b, c)).wrapping_add(w[col + 4]).wrapping_add(K2).rotate_left(5);
        c = c.wrapping_add(g(d, a, b)).wrapping_add(w[col + 8]).wrapping_add(K2).rotate_left(9);
        b = b.wrapping_add(g(c, d, a)).wrapping_add(w[col + 12]).wrapping_add(K2).rotate_left(13);
    }
    // Round 3 (bit-reversed word order).
    const K3: u32 = 0x6ed9_eba1;
    for &col in &[0usize, 2, 1, 3] {
        a = a.wrapping_add(h(b, c, d)).wrapping_add(w[col]).wrapping_add(K3).rotate_left(3);
        d = d.wrapping_add(h(a, b, c)).wrapping_add(w[col + 8]).wrapping_add(K3).rotate_left(9);
        c = c.wrapping_add(h(d, a, b)).wrapping_add(w[col + 4]).wrapping_add(K3).rotate_left(11);
        b = b.wrapping_add(h(c, d, a)).wrapping_add(w[col + 12]).wrapping_add(K3).rotate_left(15);
    }
    [
        a.wrapping_add(state[0]),
        b.wrapping_add(state[1]),
        c.wrapping_add(state[2]),
        d.wrapping_add(state[3]),
    ]
}

/// Hash a message that fits one block (≤ 55 bytes).
pub fn md4_single_block(msg: &[u8]) -> [u8; 16] {
    debug_assert!(msg.len() <= MAX_SINGLE_BLOCK_MSG);
    let w = pad_md5_block(msg); // identical padding layout to MD5
    state_to_digest(md4_compress(IV, &w))
}

fn state_to_digest(state: [u32; 4]) -> [u8; 16] {
    let mut out = [0u8; 16];
    for (i, word) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// One-shot MD4 of arbitrary-length input.
pub fn md4(data: &[u8]) -> [u8; 16] {
    let mut h = Md4::new();
    h.update(data);
    h.finalize_fixed()
}

/// NTLM: MD4 of the UTF-16LE encoding of the password. ASCII passwords
/// (the brute-force case) simply interleave zero bytes.
pub fn ntlm(password: &[u8]) -> [u8; 16] {
    let mut utf16 = Vec::with_capacity(password.len() * 2);
    for &b in password {
        utf16.push(b);
        utf16.push(0);
    }
    md4(&utf16)
}

/// Streaming MD4 hasher.
#[derive(Debug, Clone)]
pub struct Md4 {
    state: [u32; 4],
    buffer: [u8; 64],
    buffered: usize,
    total_len: u64,
}

impl Md4 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Self { state: IV, buffer: [0; 64], buffered: 0, total_len: 0 }
    }

    /// Finalize into the fixed-size digest.
    pub fn finalize_fixed(mut self) -> [u8; 16] {
        let bitlen = self.total_len.wrapping_mul(8);
        self.update_bytes(&[0x80]);
        while self.buffered != 56 {
            self.update_bytes(&[0]);
        }
        let mut block = self.buffer;
        block[56..64].copy_from_slice(&bitlen.to_le_bytes());
        let w = words_le(&block);
        self.state = md4_compress(self.state, &w);
        state_to_digest(self.state)
    }

    fn update_bytes(&mut self, data: &[u8]) {
        for &b in data {
            self.buffer[self.buffered] = b;
            self.buffered += 1;
            if self.buffered == 64 {
                let w = words_le(&self.buffer);
                self.state = md4_compress(self.state, &w);
                self.buffered = 0;
            }
        }
    }
}

impl Default for Md4 {
    fn default() -> Self {
        Self::new()
    }
}

impl Digest for Md4 {
    const OUTPUT_LEN: usize = 16;

    fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        self.update_bytes(data);
    }

    fn finalize(self) -> Vec<u8> {
        self.finalize_fixed().to_vec()
    }

    fn reset(&mut self) {
        *self = Self::new();
    }
}

fn words_le(block: &[u8; 64]) -> [u32; 16] {
    let mut w = [0u32; 16];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::to_hex;

    /// RFC 1320 appendix A.5 test suite.
    #[test]
    fn rfc1320_vectors() {
        let cases = [
            ("", "31d6cfe0d16ae931b73c59d7e0c089c0"),
            ("a", "bde52cb31de33e46245e05fbdbd6fb24"),
            ("abc", "a448017aaf21d8525fc10ae87aa6729d"),
            ("message digest", "d9130a8164549fe818874806e1c7014b"),
            ("abcdefghijklmnopqrstuvwxyz", "d79e1c308aa5bbcdeea8ed63df412da9"),
            (
                "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "043f8582f241db351ce627e153e7f0e4",
            ),
            (
                "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "e33b4ddc9c38f2199c3e7b164fcc0536",
            ),
        ];
        for (msg, want) in cases {
            assert_eq!(to_hex(&md4(msg.as_bytes())), want, "md4({msg:?})");
        }
    }

    #[test]
    fn ntlm_known_values() {
        // Widely-published NTLM test values.
        assert_eq!(to_hex(&ntlm(b"password")), "8846f7eaee8fb117ad06bdd830b7586c");
        assert_eq!(to_hex(&ntlm(b"")), "31d6cfe0d16ae931b73c59d7e0c089c0");
        assert_eq!(to_hex(&ntlm(b"admin")), "209c6174da490caeb422f3fa5a7ae634");
    }

    #[test]
    fn single_block_agrees_with_streaming() {
        for len in 0..=55usize {
            let msg: Vec<u8> = (0..len as u8).collect();
            assert_eq!(md4_single_block(&msg), md4(&msg), "len={len}");
        }
    }

    #[test]
    fn streaming_is_chunking_invariant() {
        let msg: Vec<u8> = (0..=255u8).cycle().take(700).collect();
        let whole = md4(&msg);
        let mut h = Md4::new();
        for chunk in msg.chunks(11) {
            h.update(chunk);
        }
        assert_eq!(h.finalize_fixed(), whole);
    }

    #[test]
    fn md4_differs_from_md5() {
        assert_ne!(md4(b"abc").to_vec(), crate::md5::md5(b"abc").to_vec());
    }

    #[test]
    fn rotating_step_form_matches_compress() {
        let w = pad_md5_block(b"equivalence");
        let mut s = IV;
        for i in 0..48 {
            s = step(i, s, &w);
        }
        let chained = [
            s[0].wrapping_add(IV[0]),
            s[1].wrapping_add(IV[1]),
            s[2].wrapping_add(IV[2]),
            s[3].wrapping_add(IV[3]),
        ];
        assert_eq!(chained, md4_compress(IV, &w));
    }

    #[test]
    fn unstep_inverts_step() {
        let w = pad_md5_block(b"reversible");
        let mut state = IV;
        let mut history = vec![state];
        for i in 0..48 {
            state = step(i, state, &w);
            history.push(state);
        }
        for i in (0..48).rev() {
            state = unstep(i, state, &w);
            assert_eq!(state, history[i], "unstep({i})");
        }
    }

    #[test]
    fn word_index_last_15_steps_avoid_w0() {
        // The reversal property transfers from MD5: w[0] is used at steps
        // 0, 16 and 32, never in the final 15 steps.
        assert_eq!(WORD_INDEX[0], 0);
        assert_eq!(WORD_INDEX[16], 0);
        assert_eq!(WORD_INDEX[32], 0);
        for i in 33..48 {
            assert_ne!(WORD_INDEX[i], 0, "step {i}");
        }
    }
}
