//! Common digest trait and hex codecs.

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

/// A streaming hash function producing a fixed-size digest.
pub trait Digest {
    /// Digest size in bytes.
    const OUTPUT_LEN: usize;

    /// Feed more message bytes.
    fn update(&mut self, data: &[u8]);

    /// Consume the state and produce the digest.
    fn finalize(self) -> Vec<u8>;

    /// Reset to the initial state.
    fn reset(&mut self);
}

/// Lowercase hex encoding of a byte slice.
pub fn to_hex(bytes: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(HEX[(b >> 4) as usize] as char);
        out.push(HEX[(b & 0xf) as usize] as char);
    }
    out
}

/// Decode a hex string (case-insensitive) into bytes; `None` on odd length
/// or non-hex characters.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    fn nibble(c: u8) -> Option<u8> {
        match c {
            b'0'..=b'9' => Some(c - b'0'),
            b'a'..=b'f' => Some(c - b'a' + 10),
            b'A'..=b'F' => Some(c - b'A' + 10),
            _ => None,
        }
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for pair in bytes.chunks_exact(2) {
        out.push((nibble(pair[0])? << 4) | nibble(pair[1])?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let data = [0x00u8, 0x0f, 0xf0, 0xff, 0x12, 0xab];
        let hex = to_hex(&data);
        assert_eq!(hex, "000ff0ff12ab");
        assert_eq!(from_hex(&hex).unwrap(), data);
    }

    #[test]
    fn from_hex_accepts_uppercase() {
        assert_eq!(from_hex("DEADBEEF").unwrap(), [0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn from_hex_rejects_bad_input() {
        assert_eq!(from_hex("abc"), None, "odd length");
        assert_eq!(from_hex("zz"), None, "non-hex");
    }

    #[test]
    fn empty_round_trip() {
        assert_eq!(to_hex(&[]), "");
        assert_eq!(from_hex("").unwrap(), Vec::<u8>::new());
    }
}
