//! MD5 (RFC 1321), implemented from scratch.
//!
//! Provides a streaming [`Md5`] hasher, a one-shot [`md5`] helper and the
//! raw compression function [`md5_compress`] that kernels and the step
//! reversal build on.

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use crate::digest::Digest;
use crate::padding::{pad_md5_block, MAX_SINGLE_BLOCK_MSG};

/// MD5 initial state (RFC 1321 §3.3).
pub const IV: [u32; 4] = [0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476];

/// Per-step left-rotation amounts (RFC 1321 §3.4).
pub const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// Per-step additive constants `K[i] = floor(2^32 * |sin(i + 1)|)`.
pub const K: [u32; 64] = [
    0xd76a_a478, 0xe8c7_b756, 0x2420_70db, 0xc1bd_ceee, 0xf57c_0faf, 0x4787_c62a, 0xa830_4613,
    0xfd46_9501, 0x6980_98d8, 0x8b44_f7af, 0xffff_5bb1, 0x895c_d7be, 0x6b90_1122, 0xfd98_7193,
    0xa679_438e, 0x49b4_0821, 0xf61e_2562, 0xc040_b340, 0x265e_5a51, 0xe9b6_c7aa, 0xd62f_105d,
    0x0244_1453, 0xd8a1_e681, 0xe7d3_fbc8, 0x21e1_cde6, 0xc337_07d6, 0xf4d5_0d87, 0x455a_14ed,
    0xa9e3_e905, 0xfcef_a3f8, 0x676f_02d9, 0x8d2a_4c8a, 0xfffa_3942, 0x8771_f681, 0x6d9d_6122,
    0xfde5_380c, 0xa4be_ea44, 0x4bde_cfa9, 0xf6bb_4b60, 0xbebf_bc70, 0x289b_7ec6, 0xeaa1_27fa,
    0xd4ef_3085, 0x0488_1d05, 0xd9d4_d039, 0xe6db_99e5, 0x1fa2_7cf8, 0xc4ac_5665, 0xf429_2244,
    0x432a_ff97, 0xab94_23a7, 0xfc93_a039, 0x655b_59c3, 0x8f0c_cc92, 0xffef_f47d, 0x8584_5dd1,
    0x6fa8_7e4f, 0xfe2c_e6e0, 0xa301_4314, 0x4e08_11a1, 0xf753_7e82, 0xbd3a_f235, 0x2ad7_d2bb,
    0xeb86_d391,
];

/// Message word index used by step `i` (RFC 1321 round schedules).
#[inline]
pub const fn word_index(i: usize) -> usize {
    match i / 16 {
        0 => i,
        1 => (5 * i + 1) % 16,
        2 => (3 * i + 5) % 16,
        _ => (7 * i) % 16,
    }
}

/// The non-linear round function of step `i`.
#[inline]
pub fn round_fn(i: usize, b: u32, c: u32, d: u32) -> u32 {
    match i / 16 {
        0 => (b & c) | (!b & d),
        1 => (d & b) | (!d & c),
        2 => b ^ c ^ d,
        _ => c ^ (b | !d),
    }
}

/// One forward MD5 step: returns the rotated state `(a', b', c', d')`.
#[inline]
pub fn step(i: usize, state: [u32; 4], w: &[u32; 16]) -> [u32; 4] {
    let [a, b, c, d] = state;
    let f = round_fn(i, b, c, d);
    let sum = a
        .wrapping_add(f)
        .wrapping_add(K[i])
        .wrapping_add(w[word_index(i)]);
    let nb = b.wrapping_add(sum.rotate_left(S[i]));
    [d, nb, b, c]
}

/// Invert one MD5 step: given the state *after* step `i`, recover the state
/// before it. Requires the message word `w[word_index(i)]`.
#[inline]
pub fn unstep(i: usize, state: [u32; 4], w: &[u32; 16]) -> [u32; 4] {
    let [a_after, b_after, c_after, d_after] = state;
    // Forward: [d, b + rotl(a + f + k + w, s), b, c] — so:
    let b = c_after;
    let c = d_after;
    let d = a_after;
    let f = round_fn(i, b, c, d);
    let a = b_after
        .wrapping_sub(b)
        .rotate_right(S[i])
        .wrapping_sub(f)
        .wrapping_sub(K[i])
        .wrapping_sub(w[word_index(i)]);
    [a, b, c, d]
}

/// The MD5 compression function: run 64 steps over one block and add the
/// chaining value.
pub fn md5_compress(state: [u32; 4], w: &[u32; 16]) -> [u32; 4] {
    let mut s = state;
    for i in 0..64 {
        s = step(i, s, w);
    }
    [
        s[0].wrapping_add(state[0]),
        s[1].wrapping_add(state[1]),
        s[2].wrapping_add(state[2]),
        s[3].wrapping_add(state[3]),
    ]
}

/// Hash a message that fits one block (≤ 55 bytes) — the kernel fast path.
pub fn md5_single_block(msg: &[u8]) -> [u8; 16] {
    debug_assert!(msg.len() <= MAX_SINGLE_BLOCK_MSG);
    let w = pad_md5_block(msg);
    state_to_digest(md5_compress(IV, &w))
}

/// Serialize an MD5 state as the little-endian digest bytes.
pub fn state_to_digest(state: [u32; 4]) -> [u8; 16] {
    let mut out = [0u8; 16];
    for (i, word) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// Parse a 16-byte digest back into the four state words.
pub fn digest_to_state(digest: &[u8; 16]) -> [u32; 4] {
    let mut state = [0u32; 4];
    for (i, chunk) in digest.chunks_exact(4).enumerate() {
        state[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
    }
    state
}

/// One-shot MD5 of arbitrary-length input.
pub fn md5(data: &[u8]) -> [u8; 16] {
    let mut h = Md5::new();
    h.update(data);
    h.finalize_fixed()
}

/// Streaming MD5 hasher.
#[derive(Debug, Clone)]
pub struct Md5 {
    state: [u32; 4],
    buffer: [u8; 64],
    buffered: usize,
    total_len: u64,
}

impl Md5 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Self { state: IV, buffer: [0; 64], buffered: 0, total_len: 0 }
    }

    /// Finalize into the fixed-size digest.
    pub fn finalize_fixed(mut self) -> [u8; 16] {
        let bitlen = self.total_len.wrapping_mul(8);
        // Append 0x80 then zeros until 8 bytes remain in the block.
        self.update_bytes(&[0x80]);
        while self.buffered != 56 {
            self.update_bytes(&[0]);
        }
        let mut block = self.buffer;
        block[56..64].copy_from_slice(&bitlen.to_le_bytes());
        let w = words_le(&block);
        self.state = md5_compress(self.state, &w);
        state_to_digest(self.state)
    }

    fn update_bytes(&mut self, data: &[u8]) {
        for &b in data {
            self.buffer[self.buffered] = b;
            self.buffered += 1;
            if self.buffered == 64 {
                let w = words_le(&self.buffer);
                self.state = md5_compress(self.state, &w);
                self.buffered = 0;
            }
        }
    }
}

impl Default for Md5 {
    fn default() -> Self {
        Self::new()
    }
}

impl Digest for Md5 {
    const OUTPUT_LEN: usize = 16;

    fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        self.update_bytes(data);
    }

    fn finalize(self) -> Vec<u8> {
        self.finalize_fixed().to_vec()
    }

    fn reset(&mut self) {
        *self = Self::new();
    }
}

fn words_le(block: &[u8; 64]) -> [u32; 16] {
    let mut w = [0u32; 16];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::to_hex;

    /// RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_vectors() {
        let cases = [
            ("", "d41d8cd98f00b204e9800998ecf8427e"),
            ("a", "0cc175b9c0f1b6a831c399e269772661"),
            ("abc", "900150983cd24fb0d6963f7d28e17f72"),
            ("message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            ("abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b"),
            (
                "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (msg, want) in cases {
            assert_eq!(to_hex(&md5(msg.as_bytes())), want, "md5({msg:?})");
        }
    }

    #[test]
    fn single_block_agrees_with_streaming() {
        for len in 0..=55usize {
            let msg: Vec<u8> = (0..len as u8).collect();
            assert_eq!(md5_single_block(&msg), md5(&msg), "len={len}");
        }
    }

    #[test]
    fn streaming_is_chunking_invariant() {
        let msg: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let whole = md5(&msg);
        let mut h = Md5::new();
        for chunk in msg.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finalize_fixed(), whole);
    }

    #[test]
    fn multi_block_boundaries() {
        for len in [63usize, 64, 65, 127, 128, 129] {
            let msg = vec![0xabu8; len];
            let mut h = Md5::new();
            h.update(&msg);
            // Compare against a bytewise-fed hasher.
            let mut h2 = Md5::new();
            for b in &msg {
                h2.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize_fixed(), h2.finalize_fixed(), "len={len}");
        }
    }

    #[test]
    fn unstep_inverts_step() {
        let w = pad_md5_block(b"reversible");
        let mut state = IV;
        let mut history = vec![state];
        for i in 0..64 {
            state = step(i, state, &w);
            history.push(state);
        }
        for i in (0..64).rev() {
            state = unstep(i, state, &w);
            assert_eq!(state, history[i], "unstep({i})");
        }
        assert_eq!(state, IV);
    }

    #[test]
    fn digest_state_round_trip() {
        let d = md5(b"state");
        assert_eq!(state_to_digest(digest_to_state(&d)), d);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut h = Md5::new();
        h.update(b"garbage");
        h.reset();
        h.update(b"abc");
        assert_eq!(to_hex(&h.finalize()), "900150983cd24fb0d6963f7d28e17f72");
    }

    #[test]
    fn word_index_last_15_steps_avoid_w0() {
        // The structural fact behind the reversal optimization (Section V-B):
        // w[0] is used by step 0 and step 48, but by none of steps 49..=63.
        assert_eq!(word_index(0), 0);
        assert_eq!(word_index(48), 0);
        for i in 49..64 {
            assert_ne!(word_index(i), 0, "step {i} must not read w[0]");
        }
    }
}
