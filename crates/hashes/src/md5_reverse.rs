//! The MD5 step-reversal optimization (Section V-B, originally from the
//! BarsWF cracker).
//!
//! Testing a candidate can run in two directions: forward (hash the string,
//! compare with the target) or backward (invert MD5 steps starting from the
//! target). MD5's schedule has the property that message word `w[0]` — the
//! first 4 bytes of the (padded) key — is used by step 0 and step 48 but by
//! **none of the last 15 steps** (49..=63). A search that only varies the
//! first 4 bytes can therefore:
//!
//! 1. once per target: subtract the IV from the digest and invert steps
//!    63 down to 49 using the fixed message words, yielding the reference
//!    state after step 48;
//! 2. per candidate: run only the 49 forward steps 0..=48 and compare with
//!    the reference — a ≈ 1.25× speedup (64/49 ≈ 1.31 minus bookkeeping).
//!
//! The comparison early-exits on the first mismatching word, mirroring the
//! paper's "anticipate the checks as soon as each part is computed".
//!
//! This requires enumerating keys in [`FirstCharFastest`] order (the
//! paper's mapping (4)) so consecutive candidates share everything but the
//! first block of 4 bytes.
//!
//! [`FirstCharFastest`]: https://docs.rs/eks-keyspace

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use crate::md5::{digest_to_state, md5_compress, step, unstep, IV};
use crate::padding::pad_md5_block;

/// Number of forward steps executed per candidate (steps `0..=48`).
pub const FORWARD_STEPS: usize = 49;

/// Number of steps reverted once per target (steps `49..=63`).
pub const REVERSED_STEPS: usize = 15;

/// A prepared reversed-MD5 test for candidates that share all message
/// words except `w[0]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Md5PrefixSearch {
    /// The padded message words; `w[0]` is overwritten per candidate.
    template: [u32; 16],
    /// Reference state after step 48, obtained by reversal.
    reference: [u32; 4],
}

impl Md5PrefixSearch {
    /// Prepare a search against `target` for candidates whose padded block
    /// matches `template` in words `1..16`.
    ///
    /// `template` is the padded 16-word block of any candidate of the right
    /// length (e.g. from [`pad_md5_block`]); only its `w[0]` differs
    /// between candidates, as guaranteed by suffix-stable enumeration.
    pub fn new(target: &[u8; 16], template: [u32; 16]) -> Self {
        // Undo the final chaining addition, then invert steps 63..=49.
        let final_state = digest_to_state(target);
        let mut s = [
            final_state[0].wrapping_sub(IV[0]),
            final_state[1].wrapping_sub(IV[1]),
            final_state[2].wrapping_sub(IV[2]),
            final_state[3].wrapping_sub(IV[3]),
        ];
        for i in (64 - REVERSED_STEPS..64).rev() {
            s = unstep(i, s, &template);
        }
        Self { template, reference: s }
    }

    /// Convenience: prepare from a sample key (bytes of a candidate of the
    /// correct length).
    ///
    /// # Panics
    /// Panics when `sample_key` exceeds the single-block limit (55 bytes).
    pub fn from_sample_key(target: &[u8; 16], sample_key: &[u8]) -> Self {
        Self::new(target, pad_md5_block(sample_key))
    }

    /// Test a candidate first word: run the 49 forward steps with
    /// `w[0] = w0` and compare against the reverted reference,
    /// early-exiting on the first mismatch.
    #[inline]
    pub fn matches_w0(&self, w0: u32) -> bool {
        let mut w = self.template;
        w[0] = w0;
        let mut s = IV;
        for i in 0..FORWARD_STEPS {
            s = step(i, s, &w);
        }
        // Early-exit comparison: in the overwhelmingly common case the
        // first word already differs.
        s[0] == self.reference[0]
            && s[1] == self.reference[1]
            && s[2] == self.reference[2]
            && s[3] == self.reference[3]
    }

    /// Test a full candidate key (must share words 1..16 with the
    /// template). Packs the first 4 bytes (zero-padded per MD5's
    /// little-endian layout, including the 0x80 terminator for short keys)
    /// exactly as [`pad_md5_block`] would.
    #[inline]
    pub fn matches_key(&self, key: &[u8]) -> bool {
        let mut first = [0u8; 4];
        let n = key.len().min(4);
        first[..n].copy_from_slice(&key[..n]);
        if n < 4 {
            first[n] = 0x80;
        }
        self.matches_w0(u32::from_le_bytes(first))
    }

    /// Lane-parallel form of [`Md5PrefixSearch::matches_w0`]: test `L`
    /// candidate first words in lockstep (49 forward steps in
    /// structure-of-arrays form, then a branchless per-lane comparison
    /// against the reverted reference). Bit-for-bit equal to calling
    /// `matches_w0` on each word.
    #[inline]
    pub fn matches_w0_lanes<const L: usize>(&self, w0s: &[u32; L]) -> [bool; L] {
        let states = crate::lanes::md5_forward49_lanes(&self.template, w0s);
        let r = self.reference;
        let mut out = [false; L];
        for l in 0..L {
            let s = states[l];
            // `&` instead of `&&`: no per-lane branches, the common
            // all-miss case is one vectorizable compare-and-reduce.
            out[l] = (s[0] == r[0]) & (s[1] == r[1]) & (s[2] == r[2]) & (s[3] == r[3]);
        }
        out
    }

    /// The reference state after step 48 (for tests and the kernel model).
    pub fn reference(&self) -> [u32; 4] {
        self.reference
    }

    /// The message-word template.
    pub fn template(&self) -> &[u32; 16] {
        &self.template
    }
}

/// Check the reversal against a full forward computation: true iff
/// `md5(padded block with w[0]=w0) == target`. Used by tests and as the
/// naive baseline semantics.
pub fn full_forward_matches(target: &[u8; 16], template: &[u32; 16], w0: u32) -> bool {
    let mut w = *template;
    w[0] = w0;
    let state = md5_compress(IV, &w);
    crate::md5::state_to_digest(state) == *target
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::md5::md5;

    #[test]
    fn finds_the_planted_key() {
        let key = b"Zeb4"; // 4 bytes: exactly one message word varies
        let target = md5(key);
        let search = Md5PrefixSearch::from_sample_key(&target, b"AAAA");
        assert!(search.matches_key(key));
        assert!(!search.matches_key(b"Zeb5"));
        assert!(!search.matches_key(b"AAAA"));
    }

    #[test]
    fn agrees_with_full_forward_on_many_words() {
        let target = md5(b"q7Gw");
        let template = pad_md5_block(b"xxxx");
        let search = Md5PrefixSearch::new(&target, template);
        for w0 in 0..10_000u32 {
            assert_eq!(
                search.matches_w0(w0),
                full_forward_matches(&target, &template, w0),
                "w0={w0:#x}"
            );
        }
    }

    #[test]
    fn works_for_keys_longer_than_four_bytes() {
        // Only the first 4 bytes vary; the suffix "pepper01" is fixed.
        let key = b"Mz3qpepper01";
        let target = md5(key);
        let search = Md5PrefixSearch::from_sample_key(&target, b"AAAApepper01");
        assert!(search.matches_key(key));
        assert!(!search.matches_key(b"Mz3rpepper01"));
    }

    #[test]
    fn works_for_keys_shorter_than_four_bytes() {
        let key = b"ab";
        let target = md5(key);
        let search = Md5PrefixSearch::from_sample_key(&target, b"xy");
        assert!(search.matches_key(key));
        assert!(!search.matches_key(b"ac"));
    }

    #[test]
    fn reference_equals_forward_state_after_step_48() {
        let key = b"hunter2!";
        let target = md5(key);
        let w = pad_md5_block(key);
        let search = Md5PrefixSearch::new(&target, w);
        let mut s = IV;
        for i in 0..FORWARD_STEPS {
            s = crate::md5::step(i, s, &w);
        }
        assert_eq!(s, search.reference());
    }

    #[test]
    fn step_counts_match_the_paper() {
        assert_eq!(FORWARD_STEPS + REVERSED_STEPS, 64);
        assert_eq!(FORWARD_STEPS, 49);
        assert_eq!(REVERSED_STEPS, 15);
    }
}
