//! SHA-256 (FIPS 180-4), implemented from scratch.
//!
//! Present because the paper's introduction motivates exhaustive search
//! with Bitcoin mining: the nonce search over double-SHA-256 block headers
//! is the same pattern with a different test function (leading zero bits
//! instead of digest equality). See [`sha256d`].

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use crate::digest::Digest;

/// SHA-256 initial state.
pub const IV: [u32; 8] = [
    0x6a09_e667,
    0xbb67_ae85,
    0x3c6e_f372,
    0xa54f_f53a,
    0x510e_527f,
    0x9b05_688c,
    0x1f83_d9ab,
    0x5be0_cd19,
];

/// Round constants (first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes).
pub const K: [u32; 64] = [
    0x428a_2f98, 0x7137_4491, 0xb5c0_fbcf, 0xe9b5_dba5, 0x3956_c25b, 0x59f1_11f1, 0x923f_82a4,
    0xab1c_5ed5, 0xd807_aa98, 0x1283_5b01, 0x2431_85be, 0x550c_7dc3, 0x72be_5d74, 0x80de_b1fe,
    0x9bdc_06a7, 0xc19b_f174, 0xe49b_69c1, 0xefbe_4786, 0x0fc1_9dc6, 0x240c_a1cc, 0x2de9_2c6f,
    0x4a74_84aa, 0x5cb0_a9dc, 0x76f9_88da, 0x983e_5152, 0xa831_c66d, 0xb003_27c8, 0xbf59_7fc7,
    0xc6e0_0bf3, 0xd5a7_9147, 0x06ca_6351, 0x1429_2967, 0x27b7_0a85, 0x2e1b_2138, 0x4d2c_6dfc,
    0x5338_0d13, 0x650a_7354, 0x766a_0abb, 0x81c2_c92e, 0x9272_2c85, 0xa2bf_e8a1, 0xa81a_664b,
    0xc24b_8b70, 0xc76c_51a3, 0xd192_e819, 0xd699_0624, 0xf40e_3585, 0x106a_a070, 0x19a4_c116,
    0x1e37_6c08, 0x2748_774c, 0x34b0_bcb5, 0x391c_0cb3, 0x4ed8_aa4a, 0x5b9c_ca4f, 0x682e_6ff3,
    0x748f_82ee, 0x78a5_636f, 0x84c8_7814, 0x8cc7_0208, 0x90be_fffa, 0xa450_6ceb, 0xbef9_a3f7,
    0xc671_78f2,
];

/// The SHA-256 compression function over one 16-word big-endian block.
pub fn sha256_compress(state: [u32; 8], block: &[u32; 16]) -> [u32; 8] {
    let mut w = [0u32; 64];
    w[..16].copy_from_slice(block);
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    [
        a.wrapping_add(state[0]),
        b.wrapping_add(state[1]),
        c.wrapping_add(state[2]),
        d.wrapping_add(state[3]),
        e.wrapping_add(state[4]),
        f.wrapping_add(state[5]),
        g.wrapping_add(state[6]),
        h.wrapping_add(state[7]),
    ]
}

/// One-shot SHA-256 of arbitrary-length input.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize_fixed()
}

/// Double SHA-256 (`sha256(sha256(data))`), the Bitcoin block-header hash.
pub fn sha256d(data: &[u8]) -> [u8; 32] {
    sha256(&sha256(data))
}

/// Count leading zero bits of a digest — the Bitcoin-style difficulty test.
pub fn leading_zero_bits(digest: &[u8]) -> u32 {
    let mut bits = 0u32;
    for &b in digest {
        if b == 0 {
            bits += 8;
        } else {
            bits += b.leading_zeros();
            break;
        }
    }
    bits
}

/// Streaming SHA-256 hasher.
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffered: usize,
    total_len: u64,
}

impl Sha256 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Self { state: IV, buffer: [0; 64], buffered: 0, total_len: 0 }
    }

    /// Finalize into the fixed-size digest.
    pub fn finalize_fixed(mut self) -> [u8; 32] {
        let bitlen = self.total_len.wrapping_mul(8);
        self.update_bytes(&[0x80]);
        while self.buffered != 56 {
            self.update_bytes(&[0]);
        }
        let mut block = self.buffer;
        block[56..64].copy_from_slice(&bitlen.to_be_bytes());
        let w = words_be(&block);
        self.state = sha256_compress(self.state, &w);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn update_bytes(&mut self, data: &[u8]) {
        for &b in data {
            self.buffer[self.buffered] = b;
            self.buffered += 1;
            if self.buffered == 64 {
                let w = words_be(&self.buffer);
                self.state = sha256_compress(self.state, &w);
                self.buffered = 0;
            }
        }
    }
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Digest for Sha256 {
    const OUTPUT_LEN: usize = 32;

    fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        self.update_bytes(data);
    }

    fn finalize(self) -> Vec<u8> {
        self.finalize_fixed().to_vec()
    }

    fn reset(&mut self) {
        *self = Self::new();
    }
}

fn words_be(block: &[u8; 64]) -> [u32; 16] {
    let mut w = [0u32; 16];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::to_hex;

    /// FIPS 180-4 test vectors.
    #[test]
    fn fips_vectors() {
        let cases = [
            ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"),
            ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"),
            (
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
            ),
        ];
        for (msg, want) in cases {
            assert_eq!(to_hex(&sha256(msg.as_bytes())), want, "sha256({msg:?})");
        }
    }

    #[test]
    fn double_hash_differs_from_single() {
        let single = sha256(b"block header");
        let double = sha256d(b"block header");
        assert_ne!(single, double);
        assert_eq!(double, sha256(&single));
    }

    #[test]
    fn leading_zero_bits_counts_correctly() {
        assert_eq!(leading_zero_bits(&[0x00, 0x00, 0xff]), 16);
        assert_eq!(leading_zero_bits(&[0x00, 0x0f]), 12);
        assert_eq!(leading_zero_bits(&[0x80]), 0);
        assert_eq!(leading_zero_bits(&[0x01]), 7);
        assert_eq!(leading_zero_bits(&[0x00, 0x00]), 16);
        assert_eq!(leading_zero_bits(&[]), 0);
    }

    #[test]
    fn streaming_is_chunking_invariant() {
        let msg: Vec<u8> = (0..=255u8).cycle().take(500).collect();
        let whole = sha256(&msg);
        let mut h = Sha256::new();
        for chunk in msg.chunks(9) {
            h.update(chunk);
        }
        assert_eq!(h.finalize_fixed(), whole);
    }

    #[test]
    fn million_a() {
        let msg = vec![b'a'; 1_000_000];
        assert_eq!(
            to_hex(&sha256(&msg)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }
}
