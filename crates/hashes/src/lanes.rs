//! Structure-of-arrays lane-parallel compression functions.
//!
//! The paper's Section V argument is that throughput is decided by the
//! instruction mix of a *vectorized* inner loop: a warp evaluates 32 keys
//! in lockstep, one padded block per key, with no per-key control flow.
//! This module is the CPU transliteration of that shape. `L` candidate
//! blocks are transposed into structure-of-arrays form (`[u32; L]` per
//! message word / state register) and every step of the compression
//! function runs an inner `for l in 0..L` loop with **no per-lane
//! branches** — exactly the pattern LLVM's loop auto-vectorizer turns into
//! SIMD: with `L = 8` the lane arrays fill one AVX2 register, with
//! `L = 16` two (or one AVX-512 register), mirroring how 32 CUDA lanes
//! fill a warp.
//!
//! The round structure is fully unrolled in groups of four (MD5/MD4) or
//! five (SHA-1) steps so the state "rotation" is a compile-time renaming
//! of the lane arrays rather than a per-step shuffle, and so the round
//! function and rotation amounts are loop-invariant scalars hoisted out
//! of the lane loop.

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use crate::md4;
use crate::md5::{self, IV as MD5_IV, K as MD5_K, S as MD5_S};
use crate::sha1::{IV as SHA1_IV, K as SHA1_K};

/// A batched hash implementation at lane width `L`: the abstraction the
/// cracker's scan loop is generic over, so the same loop drives the
/// autovectorized cores here ([`AutoVec`]) and the explicit-SIMD
/// kernels in [`crate::simd`] (whose handles implement this trait at
/// their ISA's width).
///
/// Every method must be bit-for-bit equal to the scalar compression
/// functions lane by lane — the property tests enforce this for every
/// implementation.
pub trait LaneHasher<const L: usize>: Copy + Send + Sync {
    /// MD5 final chained state per lane
    /// (= `md5_compress(IV, &blocks[l])`).
    fn md5_batch(&self, blocks: &[[u32; 16]; L]) -> [[u32; 4]; L];

    /// MD4 final chained state per lane (the NTLM core).
    fn md4_batch(&self, blocks: &[[u32; 16]; L]) -> [[u32; 4]; L];

    /// SHA-1 final chained state per lane.
    fn sha1_batch(&self, blocks: &[[u32; 16]; L]) -> [[u32; 5]; L];

    /// SHA-1 `a75` partial value per lane (76 rounds; survivors must be
    /// confirmed with the full compression).
    fn sha1_a75_batch(&self, blocks: &[[u32; 16]; L]) -> [u32; L];

    /// The reversed-MD5 forward half: 49 steps for lanes sharing
    /// `template` in words 1..16, rotating-form state after step 48 per
    /// lane (comparable with [`crate::Md5PrefixSearch::reference`]).
    fn md5_forward49_batch(&self, template: &[u32; 16], w0s: &[u32; L]) -> [[u32; 4]; L];
}

/// The autovectorized lane cores of this module as a [`LaneHasher`] at
/// any width — the portable fallback when no explicit-SIMD ISA is
/// available (and the reference the explicit kernels are tested
/// against).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AutoVec;

impl<const L: usize> LaneHasher<L> for AutoVec {
    #[inline]
    fn md5_batch(&self, blocks: &[[u32; 16]; L]) -> [[u32; 4]; L] {
        md5_lanes(blocks)
    }

    #[inline]
    fn md4_batch(&self, blocks: &[[u32; 16]; L]) -> [[u32; 4]; L] {
        md4_lanes(blocks)
    }

    #[inline]
    fn sha1_batch(&self, blocks: &[[u32; 16]; L]) -> [[u32; 5]; L] {
        sha1_lanes(blocks)
    }

    #[inline]
    fn sha1_a75_batch(&self, blocks: &[[u32; 16]; L]) -> [u32; L] {
        sha1_a75_lanes(blocks)
    }

    #[inline]
    fn md5_forward49_batch(&self, template: &[u32; 16], w0s: &[u32; L]) -> [[u32; 4]; L] {
        md5_forward49_lanes(template, w0s)
    }
}

/// Transpose `L` 16-word blocks from array-of-structures into
/// structure-of-arrays form: `out[w][l] = blocks[l][w]`.
#[inline(always)]
fn transpose_blocks<const L: usize>(blocks: &[[u32; 16]; L]) -> [[u32; L]; 16] {
    let mut m = [[0u32; L]; 16];
    for (l, block) in blocks.iter().enumerate() {
        for (w, lane_row) in m.iter_mut().enumerate() {
            lane_row[l] = block[w];
        }
    }
    m
}

// ---------------------------------------------------------------------------
// MD5
// ---------------------------------------------------------------------------

/// One MD5 F-round step over `L` lanes: `a = b + rotl(a+F(b,c,d)+k+w, s)`.
#[inline(always)]
fn md5_f<const L: usize>(
    a: &mut [u32; L],
    b: &[u32; L],
    c: &[u32; L],
    d: &[u32; L],
    w: &[u32; L],
    k: u32,
    s: u32,
) {
    for l in 0..L {
        let f = (b[l] & c[l]) | (!b[l] & d[l]);
        a[l] = b[l].wrapping_add(
            a[l].wrapping_add(f).wrapping_add(k).wrapping_add(w[l]).rotate_left(s),
        );
    }
}

/// One MD5 G-round step over `L` lanes.
#[inline(always)]
fn md5_g<const L: usize>(
    a: &mut [u32; L],
    b: &[u32; L],
    c: &[u32; L],
    d: &[u32; L],
    w: &[u32; L],
    k: u32,
    s: u32,
) {
    for l in 0..L {
        let g = (d[l] & b[l]) | (!d[l] & c[l]);
        a[l] = b[l].wrapping_add(
            a[l].wrapping_add(g).wrapping_add(k).wrapping_add(w[l]).rotate_left(s),
        );
    }
}

/// One MD5 H-round step over `L` lanes.
#[inline(always)]
fn md5_h<const L: usize>(
    a: &mut [u32; L],
    b: &[u32; L],
    c: &[u32; L],
    d: &[u32; L],
    w: &[u32; L],
    k: u32,
    s: u32,
) {
    for l in 0..L {
        let h = b[l] ^ c[l] ^ d[l];
        a[l] = b[l].wrapping_add(
            a[l].wrapping_add(h).wrapping_add(k).wrapping_add(w[l]).rotate_left(s),
        );
    }
}

/// One MD5 I-round step over `L` lanes.
#[inline(always)]
fn md5_i<const L: usize>(
    a: &mut [u32; L],
    b: &[u32; L],
    c: &[u32; L],
    d: &[u32; L],
    w: &[u32; L],
    k: u32,
    s: u32,
) {
    for l in 0..L {
        let i = c[l] ^ (b[l] | !d[l]);
        a[l] = b[l].wrapping_add(
            a[l].wrapping_add(i).wrapping_add(k).wrapping_add(w[l]).rotate_left(s),
        );
    }
}

/// Run the 64 MD5 steps over `L` transposed lanes starting from the IV.
/// Returns the four working registers *without* the final chaining
/// addition (the reversed search compares the raw step-48 state; the full
/// hash adds the IV afterwards).
#[inline(always)]
fn md5_steps<const L: usize>(
    m: &[[u32; L]; 16],
    steps: usize,
) -> ([u32; L], [u32; L], [u32; L], [u32; L]) {
    let mut a = [MD5_IV[0]; L];
    let mut b = [MD5_IV[1]; L];
    let mut c = [MD5_IV[2]; L];
    let mut d = [MD5_IV[3]; L];

    // Round 1: steps 0..16, word schedule w[i].
    let mut i = 0;
    while i < 16.min(steps) {
        md5_f(&mut a, &b, &c, &d, &m[md5::word_index(i)], MD5_K[i], MD5_S[i]);
        md5_f(&mut d, &a, &b, &c, &m[md5::word_index(i + 1)], MD5_K[i + 1], MD5_S[i + 1]);
        md5_f(&mut c, &d, &a, &b, &m[md5::word_index(i + 2)], MD5_K[i + 2], MD5_S[i + 2]);
        md5_f(&mut b, &c, &d, &a, &m[md5::word_index(i + 3)], MD5_K[i + 3], MD5_S[i + 3]);
        i += 4;
    }
    // Round 2: steps 16..32.
    while i < 32.min(steps) {
        md5_g(&mut a, &b, &c, &d, &m[md5::word_index(i)], MD5_K[i], MD5_S[i]);
        md5_g(&mut d, &a, &b, &c, &m[md5::word_index(i + 1)], MD5_K[i + 1], MD5_S[i + 1]);
        md5_g(&mut c, &d, &a, &b, &m[md5::word_index(i + 2)], MD5_K[i + 2], MD5_S[i + 2]);
        md5_g(&mut b, &c, &d, &a, &m[md5::word_index(i + 3)], MD5_K[i + 3], MD5_S[i + 3]);
        i += 4;
    }
    // Round 3: steps 32..48.
    while i < 48.min(steps) {
        md5_h(&mut a, &b, &c, &d, &m[md5::word_index(i)], MD5_K[i], MD5_S[i]);
        md5_h(&mut d, &a, &b, &c, &m[md5::word_index(i + 1)], MD5_K[i + 1], MD5_S[i + 1]);
        md5_h(&mut c, &d, &a, &b, &m[md5::word_index(i + 2)], MD5_K[i + 2], MD5_S[i + 2]);
        md5_h(&mut b, &c, &d, &a, &m[md5::word_index(i + 3)], MD5_K[i + 3], MD5_S[i + 3]);
        i += 4;
    }
    // Round 4: steps 48..64. The reversed search stops after step 48
    // (steps = FORWARD_STEPS = 49): only the first call of the quad runs.
    while i < steps {
        md5_i(&mut a, &b, &c, &d, &m[md5::word_index(i)], MD5_K[i], MD5_S[i]);
        if i + 1 >= steps {
            break;
        }
        md5_i(&mut d, &a, &b, &c, &m[md5::word_index(i + 1)], MD5_K[i + 1], MD5_S[i + 1]);
        md5_i(&mut c, &d, &a, &b, &m[md5::word_index(i + 2)], MD5_K[i + 2], MD5_S[i + 2]);
        md5_i(&mut b, &c, &d, &a, &m[md5::word_index(i + 3)], MD5_K[i + 3], MD5_S[i + 3]);
        i += 4;
    }
    (a, b, c, d)
}

/// MD5 over `L` pre-padded single-block messages in lockstep.
///
/// `blocks[l]` is the little-endian 16-word padded block of lane `l`
/// (as produced by [`crate::padding::pad_md5_block`]); the result is the
/// final chained state per lane — serialize with
/// [`crate::md5::state_to_digest`] for digest bytes. Equals
/// `md5_compress(IV, &blocks[l])` on every lane.
#[inline(always)]
pub fn md5_lanes<const L: usize>(blocks: &[[u32; 16]; L]) -> [[u32; 4]; L] {
    let m = transpose_blocks(blocks);
    let (a, b, c, d) = md5_steps(&m, 64);
    let mut out = [[0u32; 4]; L];
    for l in 0..L {
        out[l] = [
            a[l].wrapping_add(MD5_IV[0]),
            b[l].wrapping_add(MD5_IV[1]),
            c[l].wrapping_add(MD5_IV[2]),
            d[l].wrapping_add(MD5_IV[3]),
        ];
    }
    out
}

/// The lane-parallel half of the reversed-MD5 search: run the 49 forward
/// steps (0..=48) for `L` lanes that share `template` in words 1..16 and
/// differ only in `w0s`, returning the rotating-form state after step 48
/// per lane (`[s0, s1, s2, s3]`, comparable with
/// [`crate::Md5PrefixSearch::reference`]).
#[inline(always)]
pub fn md5_forward49_lanes<const L: usize>(
    template: &[u32; 16],
    w0s: &[u32; L],
) -> [[u32; 4]; L] {
    // Splat the shared words across lanes; only w[0] is per-lane.
    let mut m = [[0u32; L]; 16];
    m[0] = *w0s;
    for (w, lane_row) in m.iter_mut().enumerate().skip(1) {
        *lane_row = [template[w]; L];
    }
    // 49 = 12 quads + 1: the last executed call writes `a`, giving the
    // rotating-form state [d, a, b, c] after step 48.
    let (a, b, c, d) = md5_steps(&m, crate::md5_reverse::FORWARD_STEPS);
    let mut out = [[0u32; 4]; L];
    for l in 0..L {
        out[l] = [d[l], a[l], b[l], c[l]];
    }
    out
}

// ---------------------------------------------------------------------------
// MD4
// ---------------------------------------------------------------------------

/// One MD4 F-round step over `L` lanes.
#[inline(always)]
fn md4_f<const L: usize>(
    a: &mut [u32; L],
    b: &[u32; L],
    c: &[u32; L],
    d: &[u32; L],
    w: &[u32; L],
    s: u32,
) {
    for l in 0..L {
        let f = (b[l] & c[l]) | (!b[l] & d[l]);
        a[l] = a[l].wrapping_add(f).wrapping_add(w[l]).rotate_left(s);
    }
}

/// One MD4 G-round step over `L` lanes.
#[inline(always)]
fn md4_g<const L: usize>(
    a: &mut [u32; L],
    b: &[u32; L],
    c: &[u32; L],
    d: &[u32; L],
    w: &[u32; L],
    s: u32,
) {
    const K2: u32 = 0x5a82_7999;
    for l in 0..L {
        let g = (b[l] & c[l]) | (b[l] & d[l]) | (c[l] & d[l]);
        a[l] = a[l].wrapping_add(g).wrapping_add(w[l]).wrapping_add(K2).rotate_left(s);
    }
}

/// One MD4 H-round step over `L` lanes.
#[inline(always)]
fn md4_h<const L: usize>(
    a: &mut [u32; L],
    b: &[u32; L],
    c: &[u32; L],
    d: &[u32; L],
    w: &[u32; L],
    s: u32,
) {
    const K3: u32 = 0x6ed9_eba1;
    for l in 0..L {
        let h = b[l] ^ c[l] ^ d[l];
        a[l] = a[l].wrapping_add(h).wrapping_add(w[l]).wrapping_add(K3).rotate_left(s);
    }
}

/// MD4 over `L` pre-padded single-block messages in lockstep (the NTLM
/// batch core). Equals `md4_compress(IV, &blocks[l])` on every lane.
#[inline(always)]
pub fn md4_lanes<const L: usize>(blocks: &[[u32; 16]; L]) -> [[u32; 4]; L] {
    let m = transpose_blocks(blocks);
    let mut a = [md4::IV[0]; L];
    let mut b = [md4::IV[1]; L];
    let mut c = [md4::IV[2]; L];
    let mut d = [md4::IV[3]; L];

    // Round 1: sequential words.
    for chunk in 0..4 {
        let base = chunk * 4;
        md4_f(&mut a, &b, &c, &d, &m[base], 3);
        md4_f(&mut d, &a, &b, &c, &m[base + 1], 7);
        md4_f(&mut c, &d, &a, &b, &m[base + 2], 11);
        md4_f(&mut b, &c, &d, &a, &m[base + 3], 19);
    }
    // Round 2: column-major words.
    for col in 0..4 {
        md4_g(&mut a, &b, &c, &d, &m[col], 3);
        md4_g(&mut d, &a, &b, &c, &m[col + 4], 5);
        md4_g(&mut c, &d, &a, &b, &m[col + 8], 9);
        md4_g(&mut b, &c, &d, &a, &m[col + 12], 13);
    }
    // Round 3: bit-reversed column order.
    for &col in &[0usize, 2, 1, 3] {
        md4_h(&mut a, &b, &c, &d, &m[col], 3);
        md4_h(&mut d, &a, &b, &c, &m[col + 8], 9);
        md4_h(&mut c, &d, &a, &b, &m[col + 4], 11);
        md4_h(&mut b, &c, &d, &a, &m[col + 12], 15);
    }

    let mut out = [[0u32; 4]; L];
    for l in 0..L {
        out[l] = [
            a[l].wrapping_add(md4::IV[0]),
            b[l].wrapping_add(md4::IV[1]),
            c[l].wrapping_add(md4::IV[2]),
            d[l].wrapping_add(md4::IV[3]),
        ];
    }
    out
}

// ---------------------------------------------------------------------------
// SHA-1
// ---------------------------------------------------------------------------

/// One SHA-1 Ch round over `L` lanes:
/// `e += rotl5(a) + Ch(b,c,d) + k + w; b = rotl30(b)`.
#[inline(always)]
fn sha1_ch<const L: usize>(
    a: &[u32; L],
    b: &mut [u32; L],
    c: &[u32; L],
    d: &[u32; L],
    e: &mut [u32; L],
    w: &[u32; L],
    k: u32,
) {
    for l in 0..L {
        let f = (b[l] & c[l]) | (!b[l] & d[l]);
        e[l] = e[l]
            .wrapping_add(a[l].rotate_left(5))
            .wrapping_add(f)
            .wrapping_add(k)
            .wrapping_add(w[l]);
        b[l] = b[l].rotate_left(30);
    }
}

/// One SHA-1 Parity round over `L` lanes.
#[inline(always)]
fn sha1_par<const L: usize>(
    a: &[u32; L],
    b: &mut [u32; L],
    c: &[u32; L],
    d: &[u32; L],
    e: &mut [u32; L],
    w: &[u32; L],
    k: u32,
) {
    for l in 0..L {
        let f = b[l] ^ c[l] ^ d[l];
        e[l] = e[l]
            .wrapping_add(a[l].rotate_left(5))
            .wrapping_add(f)
            .wrapping_add(k)
            .wrapping_add(w[l]);
        b[l] = b[l].rotate_left(30);
    }
}

/// One SHA-1 Maj round over `L` lanes.
#[inline(always)]
fn sha1_maj<const L: usize>(
    a: &[u32; L],
    b: &mut [u32; L],
    c: &[u32; L],
    d: &[u32; L],
    e: &mut [u32; L],
    w: &[u32; L],
    k: u32,
) {
    for l in 0..L {
        let f = (b[l] & c[l]) | (b[l] & d[l]) | (c[l] & d[l]);
        e[l] = e[l]
            .wrapping_add(a[l].rotate_left(5))
            .wrapping_add(f)
            .wrapping_add(k)
            .wrapping_add(w[l]);
        b[l] = b[l].rotate_left(30);
    }
}

/// Expand the message schedule for `L` lanes in SoA form: `w[i][l]` is
/// round `i`'s word for lane `l`. `ROUNDS` is 80 for the full hash or
/// [`crate::sha1_partial::PARTIAL_ROUNDS`] for the early-exit variant.
#[inline(always)]
fn sha1_schedule_lanes<const L: usize, const ROUNDS: usize>(
    blocks: &[[u32; 16]; L],
) -> [[u32; L]; ROUNDS] {
    let mut w = [[0u32; L]; ROUNDS];
    for (l, block) in blocks.iter().enumerate() {
        for (i, &word) in block.iter().enumerate() {
            w[i][l] = word;
        }
    }
    for i in 16..ROUNDS {
        let (prev, cur) = w.split_at_mut(i);
        for (l, out) in cur[0].iter_mut().enumerate() {
            *out = (prev[i - 3][l] ^ prev[i - 8][l] ^ prev[i - 14][l] ^ prev[i - 16][l])
                .rotate_left(1);
        }
    }
    w
}

/// The five SoA state words `(a, b, c, d, e)` of `L` SHA-1 lanes.
type Sha1StateLanes<const L: usize> = ([u32; L], [u32; L], [u32; L], [u32; L], [u32; L]);

/// Run `groups` five-round groups of SHA-1 over the SoA schedule, with
/// the round function selected by the 20-round quarter. The five-fold
/// unroll keeps the register rotation a renaming, like the paper's
/// unrolled kernels.
#[inline(always)]
fn sha1_groups<const L: usize>(w: &[[u32; L]], groups: usize) -> Sha1StateLanes<L> {
    let mut a = [SHA1_IV[0]; L];
    let mut b = [SHA1_IV[1]; L];
    let mut c = [SHA1_IV[2]; L];
    let mut d = [SHA1_IV[3]; L];
    let mut e = [SHA1_IV[4]; L];
    for g in 0..groups {
        let i = g * 5;
        let k = SHA1_K[i / 20];
        match i / 20 {
            0 => {
                sha1_ch(&a, &mut b, &c, &d, &mut e, &w[i], k);
                sha1_ch(&e, &mut a, &b, &c, &mut d, &w[i + 1], k);
                sha1_ch(&d, &mut e, &a, &b, &mut c, &w[i + 2], k);
                sha1_ch(&c, &mut d, &e, &a, &mut b, &w[i + 3], k);
                sha1_ch(&b, &mut c, &d, &e, &mut a, &w[i + 4], k);
            }
            2 => {
                sha1_maj(&a, &mut b, &c, &d, &mut e, &w[i], k);
                sha1_maj(&e, &mut a, &b, &c, &mut d, &w[i + 1], k);
                sha1_maj(&d, &mut e, &a, &b, &mut c, &w[i + 2], k);
                sha1_maj(&c, &mut d, &e, &a, &mut b, &w[i + 3], k);
                sha1_maj(&b, &mut c, &d, &e, &mut a, &w[i + 4], k);
            }
            _ => {
                sha1_par(&a, &mut b, &c, &d, &mut e, &w[i], k);
                sha1_par(&e, &mut a, &b, &c, &mut d, &w[i + 1], k);
                sha1_par(&d, &mut e, &a, &b, &mut c, &w[i + 2], k);
                sha1_par(&c, &mut d, &e, &a, &mut b, &w[i + 3], k);
                sha1_par(&b, &mut c, &d, &e, &mut a, &w[i + 4], k);
            }
        }
    }
    (a, b, c, d, e)
}

/// SHA-1 over `L` pre-padded single-block messages in lockstep.
///
/// `blocks[l]` is the big-endian 16-word padded block of lane `l`; the
/// result equals `sha1_compress(IV, &blocks[l])` on every lane.
#[inline(always)]
pub fn sha1_lanes<const L: usize>(blocks: &[[u32; 16]; L]) -> [[u32; 5]; L] {
    let w = sha1_schedule_lanes::<L, 80>(blocks);
    let (a, b, c, d, e) = sha1_groups(&w, 16);
    let mut out = [[0u32; 5]; L];
    for l in 0..L {
        out[l] = [
            a[l].wrapping_add(SHA1_IV[0]),
            b[l].wrapping_add(SHA1_IV[1]),
            c[l].wrapping_add(SHA1_IV[2]),
            d[l].wrapping_add(SHA1_IV[3]),
            e[l].wrapping_add(SHA1_IV[4]),
        ];
    }
    out
}

/// The lane-parallel SHA-1 partial path: 76 rounds per lane, returning
/// each lane's `a75` — the value [`crate::Sha1PartialSearch`] compares
/// against `rotr30(e_target − IV[4])`. A lane that passes the filter must
/// be confirmed with the full hash (e.g. scalar
/// [`crate::sha1::sha1_compress`]); a lane that fails is rejected four
/// rounds and four schedule expansions early, like the paper's
/// "anticipate the checks" rule.
#[inline(always)]
pub fn sha1_a75_lanes<const L: usize>(blocks: &[[u32; 16]; L]) -> [u32; L] {
    let w = sha1_schedule_lanes::<L, { crate::sha1_partial::PARTIAL_ROUNDS }>(blocks);
    // 75 rounds = 15 aligned groups; round 75 (the 76th) writes `e`,
    // which is a75 in the rotating naming.
    let (a, mut b, c, d, mut e) = sha1_groups(&w, 15);
    sha1_par(&a, &mut b, &c, &d, &mut e, &w[75], SHA1_K[3]);
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::md4::md4_compress;
    use crate::md5::md5_compress;
    use crate::padding::{pad_md5_block, pad_sha_block};
    use crate::sha1::{round as sha1_round, expand_schedule, sha1_compress};

    fn sample_blocks_le<const L: usize>() -> [[u32; 16]; L] {
        let mut blocks = [[0u32; 16]; L];
        for (l, b) in blocks.iter_mut().enumerate() {
            *b = pad_md5_block(format!("lane-{l:02}-payload").as_bytes());
        }
        blocks
    }

    #[test]
    fn md5_lanes_agree_with_scalar() {
        let blocks = sample_blocks_le::<8>();
        let got = md5_lanes(&blocks);
        for l in 0..8 {
            assert_eq!(got[l], md5_compress(MD5_IV, &blocks[l]), "lane {l}");
        }
        let blocks = sample_blocks_le::<16>();
        let got = md5_lanes(&blocks);
        for l in 0..16 {
            assert_eq!(got[l], md5_compress(MD5_IV, &blocks[l]), "lane {l}");
        }
    }

    #[test]
    fn md4_lanes_agree_with_scalar() {
        let blocks = sample_blocks_le::<8>();
        let got = md4_lanes(&blocks);
        for l in 0..8 {
            assert_eq!(got[l], md4_compress(md4::IV, &blocks[l]), "lane {l}");
        }
    }

    #[test]
    fn sha1_lanes_agree_with_scalar() {
        let mut blocks = [[0u32; 16]; 8];
        for (l, b) in blocks.iter_mut().enumerate() {
            *b = pad_sha_block(format!("sha-lane-{l}").as_bytes());
        }
        let got = sha1_lanes(&blocks);
        for l in 0..8 {
            assert_eq!(got[l], sha1_compress(SHA1_IV, &blocks[l]), "lane {l}");
        }
    }

    #[test]
    fn forward49_matches_rotating_scalar_steps() {
        let template = pad_md5_block(b"AAAAsuffix");
        let w0s: [u32; 8] = core::array::from_fn(|l| 0xdead_0000 + l as u32);
        let got = md5_forward49_lanes(&template, &w0s);
        for (l, &w0) in w0s.iter().enumerate() {
            let mut w = template;
            w[0] = w0;
            let mut s = MD5_IV;
            for i in 0..crate::md5_reverse::FORWARD_STEPS {
                s = crate::md5::step(i, s, &w);
            }
            assert_eq!(got[l], s, "lane {l}");
        }
    }

    #[test]
    fn a75_lanes_match_scalar_partial_rounds() {
        let mut blocks = [[0u32; 16]; 8];
        for (l, b) in blocks.iter_mut().enumerate() {
            *b = pad_sha_block(format!("a75-{l}").as_bytes());
        }
        let got = sha1_a75_lanes(&blocks);
        for l in 0..8 {
            let sched = expand_schedule(&blocks[l]);
            let mut s = SHA1_IV;
            for i in 0..crate::sha1_partial::PARTIAL_ROUNDS {
                s = sha1_round(i, s, sched[i]);
            }
            assert_eq!(got[l], s[0], "lane {l}");
        }
    }
}
