//! # eks-hashes — MD5, SHA-1 and SHA-256 from scratch
//!
//! The test functions of the paper's password-cracking application
//! (Section IV): the *Message Digest algorithm 5* (RFC 1321), the *Secure
//! Hash Algorithm 1* (RFC 3174) and SHA-256 (FIPS 180-4, used by the
//! Bitcoin-mining motivation in the paper's introduction).
//!
//! Besides the streaming implementations, this crate provides the
//! single-block fast paths a cracking kernel uses (candidate keys are at
//! most 20 bytes, far below the 55-byte single-block limit) and the two
//! MD5 optimizations of Section V:
//!
//! * [`md5_reverse`]: the BarsWF trick — because message word `w[0]`
//!   (the first 4 key bytes) is used by step 0 and step 48 but **not** by
//!   the last 15 steps, a search that only varies the first 4 bytes can
//!   *reverse* the final 15 steps from the target digest once, then run
//!   only 49 forward steps per candidate;
//! * early-exit comparison: each of the last steps produces one word of
//!   the result, so mismatches are detected before finishing the state
//!   comparison.
//!
//! Batched (multi-candidate) hashing comes in two layers mirroring the
//! paper's Section V per-architecture kernels: [`lanes`] holds portable
//! structure-of-arrays cores the compiler autovectorizes, and [`simd`]
//! holds explicit AVX2/AVX-512/NEON kernels behind runtime CPU-feature
//! detection, both driven through the [`LaneHasher`] trait.

pub mod algo;
pub mod digest;
pub mod lanes;
pub mod md4;
pub mod md5;
pub mod md5_reverse;
pub mod padding;
pub mod sha1;
pub mod sha1_partial;
pub mod sha256;
pub mod simd;

pub use algo::HashAlgo;
pub use digest::{from_hex, to_hex, Digest};
pub use lanes::{
    md4_lanes, md5_forward49_lanes, md5_lanes, sha1_a75_lanes, sha1_lanes, AutoVec, LaneHasher,
};
pub use simd::{cpu_features, SimdHasher, SimdIsa};
pub use md4::{md4, ntlm, Md4};
pub use md5::{md5, Md5};
pub use md5_reverse::Md5PrefixSearch;
pub use sha1::{sha1, Sha1};
pub use sha1_partial::Sha1PartialSearch;
pub use sha256::{sha256, sha256d, Sha256};
