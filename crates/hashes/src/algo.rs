//! Algorithm selector shared by crackers and kernels.

use crate::md4::ntlm;
use crate::md5::md5_single_block;
use crate::sha1::sha1_single_block;
use crate::{md5, sha1};

/// Which hash a search targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HashAlgo {
    /// MD5 (16-byte digests).
    Md5,
    /// SHA-1 (20-byte digests).
    Sha1,
    /// NTLM — MD4 over the UTF-16LE password (16-byte digests).
    Ntlm,
}

impl HashAlgo {
    /// Digest length in bytes.
    pub fn digest_len(self) -> usize {
        match self {
            HashAlgo::Md5 | HashAlgo::Ntlm => 16,
            HashAlgo::Sha1 => 20,
        }
    }

    /// Hash a short key (single-block fast path, ≤ 55 bytes).
    pub fn hash(self, key: &[u8]) -> Vec<u8> {
        match self {
            HashAlgo::Md5 => md5_single_block(key).to_vec(),
            HashAlgo::Sha1 => sha1_single_block(key).to_vec(),
            HashAlgo::Ntlm => ntlm(key).to_vec(),
        }
    }

    /// Hash arbitrary-length input (streaming path).
    pub fn hash_long(self, data: &[u8]) -> Vec<u8> {
        match self {
            HashAlgo::Md5 => md5::md5(data).to_vec(),
            HashAlgo::Sha1 => sha1::sha1(data).to_vec(),
            HashAlgo::Ntlm => ntlm(data).to_vec(),
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            HashAlgo::Md5 => "MD5",
            HashAlgo::Sha1 => "SHA1",
            HashAlgo::Ntlm => "NTLM",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_lengths() {
        assert_eq!(HashAlgo::Md5.digest_len(), 16);
        assert_eq!(HashAlgo::Sha1.digest_len(), 20);
    }

    #[test]
    fn fast_and_streaming_paths_agree() {
        for algo in [HashAlgo::Md5, HashAlgo::Sha1, HashAlgo::Ntlm] {
            assert_eq!(algo.hash(b"abc"), algo.hash_long(b"abc"), "{}", algo.name());
        }
    }

    #[test]
    fn ntlm_algo_matches_known_value() {
        let d = HashAlgo::Ntlm.hash(b"password");
        assert_eq!(crate::to_hex(&d), "8846f7eaee8fb117ad06bdd830b7586c");
    }
}
