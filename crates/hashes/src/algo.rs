//! Algorithm selector shared by crackers and kernels.

use crate::md4::ntlm;
use crate::md5::md5_single_block;
use crate::sha1::sha1_single_block;
use crate::{md5, sha1};

/// Which hash a search targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HashAlgo {
    /// MD5 (16-byte digests).
    Md5,
    /// SHA-1 (20-byte digests).
    Sha1,
    /// NTLM — MD4 over the UTF-16LE password (16-byte digests).
    Ntlm,
    /// Iterated MD5 — a toy KDF whose per-key cost *varies*: the key is
    /// MD5-hashed, then re-hashed `1 + (sum(key bytes) mod iters)` more
    /// times. Variable per-key cost is exactly the shape (salted/
    /// iterated KDFs, RAR-style recovery) that breaks the one-shot §VI
    /// tuning assumption, so this is the workload the closed-loop
    /// retune controller is benchmarked against.
    Md5Iter {
        /// Upper bound on the extra compression count (clamped ≥ 1).
        iters: u16,
    },
}

impl HashAlgo {
    /// The per-key iteration count for `key` under this algorithm:
    /// `1` for the plain hashes, `2 ..= 1 + iters` for [`Md5Iter`]
    /// (data-dependent, so a fleet's effective rate drifts with the
    /// region of keyspace it is scanning).
    ///
    /// [`Md5Iter`]: HashAlgo::Md5Iter
    pub fn rounds_for(self, key: &[u8]) -> u32 {
        match self {
            HashAlgo::Md5 | HashAlgo::Sha1 | HashAlgo::Ntlm => 1,
            HashAlgo::Md5Iter { iters } => {
                let sum: u32 = key.iter().map(|&b| u32::from(b)).sum();
                2 + sum % u32::from(iters.max(1))
            }
        }
    }

    /// The plain hash this algorithm is built on (`self` when not
    /// iterated). Kernel builders and lane crackers that only know the
    /// three base primitives normalize through this.
    pub fn base(self) -> HashAlgo {
        match self {
            HashAlgo::Md5Iter { .. } => HashAlgo::Md5,
            other => other,
        }
    }

    /// The *average* compressions per key relative to the base hash —
    /// the §VI tuning step divides a measured base rate by this to
    /// predict the iterated rate. `1.0` for plain hashes; for
    /// [`Md5Iter`] the modulus is uniform over key-byte sums, so the
    /// mean round count is `2 + (iters - 1) / 2`.
    ///
    /// [`Md5Iter`]: HashAlgo::Md5Iter
    pub fn cost_factor(self) -> f64 {
        match self {
            HashAlgo::Md5 | HashAlgo::Sha1 | HashAlgo::Ntlm => 1.0,
            HashAlgo::Md5Iter { iters } => 2.0 + f64::from(iters.max(1) - 1) / 2.0,
        }
    }

    /// Digest length in bytes.
    pub fn digest_len(self) -> usize {
        match self {
            HashAlgo::Md5 | HashAlgo::Ntlm | HashAlgo::Md5Iter { .. } => 16,
            HashAlgo::Sha1 => 20,
        }
    }

    /// Hash a short key (single-block fast path, ≤ 55 bytes).
    pub fn hash(self, key: &[u8]) -> Vec<u8> {
        match self {
            HashAlgo::Md5 => md5_single_block(key).to_vec(),
            HashAlgo::Sha1 => sha1_single_block(key).to_vec(),
            HashAlgo::Ntlm => ntlm(key).to_vec(),
            HashAlgo::Md5Iter { .. } => {
                let mut digest = md5_single_block(key);
                for _ in 1..self.rounds_for(key) {
                    digest = md5_single_block(&digest);
                }
                digest.to_vec()
            }
        }
    }

    /// Hash arbitrary-length input (streaming path).
    pub fn hash_long(self, data: &[u8]) -> Vec<u8> {
        match self {
            HashAlgo::Md5 => md5::md5(data).to_vec(),
            HashAlgo::Sha1 => sha1::sha1(data).to_vec(),
            HashAlgo::Ntlm => ntlm(data).to_vec(),
            HashAlgo::Md5Iter { .. } => {
                let mut digest = md5::md5(data);
                for _ in 1..self.rounds_for(data) {
                    digest = md5::md5(&digest);
                }
                digest.to_vec()
            }
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            HashAlgo::Md5 => "MD5",
            HashAlgo::Sha1 => "SHA1",
            HashAlgo::Ntlm => "NTLM",
            HashAlgo::Md5Iter { .. } => "MD5-iter",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_lengths() {
        assert_eq!(HashAlgo::Md5.digest_len(), 16);
        assert_eq!(HashAlgo::Sha1.digest_len(), 20);
    }

    #[test]
    fn fast_and_streaming_paths_agree() {
        let algos =
            [HashAlgo::Md5, HashAlgo::Sha1, HashAlgo::Ntlm, HashAlgo::Md5Iter { iters: 7 }];
        for algo in algos {
            assert_eq!(algo.hash(b"abc"), algo.hash_long(b"abc"), "{}", algo.name());
        }
    }

    #[test]
    fn iterated_md5_is_a_chained_md5() {
        let algo = HashAlgo::Md5Iter { iters: 7 };
        // "abc" sums to 294; 2 + 294 % 7 = 2 + 0 = 2 rounds.
        assert_eq!(algo.rounds_for(b"abc"), 2);
        let once = HashAlgo::Md5.hash(b"abc");
        assert_eq!(algo.hash(b"abc"), HashAlgo::Md5.hash(&once));
        // A different key lands on a different round count: the cost
        // really is data-dependent.
        assert_eq!(algo.rounds_for(b"abd"), 3);
        assert_ne!(algo.hash(b"abc"), once);
    }

    #[test]
    fn iterated_md5_normalizers() {
        let algo = HashAlgo::Md5Iter { iters: 9 };
        assert_eq!(algo.base(), HashAlgo::Md5);
        assert_eq!(HashAlgo::Sha1.base(), HashAlgo::Sha1);
        // Mean of 2 + uniform(0..9) extra rounds.
        assert!((algo.cost_factor() - 6.0).abs() < 1e-12);
        assert_eq!(HashAlgo::Ntlm.cost_factor(), 1.0);
        assert_eq!(algo.digest_len(), 16);
        // A zero bound is clamped rather than dividing by zero.
        assert_eq!(HashAlgo::Md5Iter { iters: 0 }.rounds_for(b"abc"), 2);
    }

    #[test]
    fn ntlm_algo_matches_known_value() {
        let d = HashAlgo::Ntlm.hash(b"password");
        assert_eq!(crate::to_hex(&d), "8846f7eaee8fb117ad06bdd830b7586c");
    }
}
