//! x86-64 vector lanes: AVX2 (`U32x8`) and AVX-512F (`U32x16`).
//!
//! All `unsafe` in this file is one of two proven shapes:
//!
//! * a single vendor intrinsic inside an `#[inline(always)]` [`Vec32`]
//!   op — sound because every call path into these ops is nested inside
//!   one of the `#[target_feature]` entry shims below, which are only
//!   reachable through `super` handles whose constructors verified the
//!   feature at runtime (`is_x86_feature_detected!`);
//! * a `transmute` between a `u32` lane array and the register type of
//!   identical size and plain-old-data layout.
//!
//! The entry shims instantiate the generic cores at `X2<_>` pairs —
//! 2 × 8 = 16 keys per AVX2 call, 2 × 16 = 32 per AVX-512 call — so two
//! independent dependency chains are in flight per hash state register
//! (interleaved multi-buffer scheduling).

// This module is the designated home for vendor intrinsics; the
// workspace-wide `unsafe_code = deny` stays in force everywhere else.
#![allow(unsafe_code)]
// Lane-array slicing below is over fixed 8/16-word arrays.
#![allow(clippy::indexing_slicing)]

use core::arch::x86_64::{
    __m256i, __m512i, _mm256_add_epi32, _mm256_and_si256, _mm256_or_si256,
    _mm256_set1_epi32, _mm256_sll_epi32, _mm256_srl_epi32, _mm256_xor_si256, _mm512_add_epi32,
    _mm512_and_si512, _mm512_or_si512, _mm512_rolv_epi32, _mm512_set1_epi32,
    _mm512_ternarylogic_epi32, _mm512_xor_si512, _mm_cvtsi32_si128,
};

use super::cores;
use super::vec::{Vec32, X2};

/// Eight `u32` lanes in one AVX2 register.
#[derive(Debug, Clone, Copy)]
pub(crate) struct U32x8(__m256i);

impl Vec32 for U32x8 {
    const LANES: usize = 8;

    #[inline(always)]
    fn splat(x: u32) -> Self {
        // SAFETY: single AVX intrinsic; reachable only through the
        // `#[target_feature(enable = "avx2")]` shims below, entered via
        // handles that proved AVX2 at runtime.
        unsafe { Self(_mm256_set1_epi32(x as i32)) }
    }

    #[inline(always)]
    fn load(words: &[u32]) -> Self {
        let arr: [u32; 8] = words[..8].try_into().expect("8 lanes");
        // SAFETY: `[u32; 8]` and `__m256i` are both 32-byte
        // plain-old-data with no invalid bit patterns.
        unsafe { Self(core::mem::transmute::<[u32; 8], __m256i>(arr)) }
    }

    #[inline(always)]
    fn store(self, out: &mut [u32]) {
        // SAFETY: same plain-old-data transmute as `load`, in reverse.
        let arr = unsafe { core::mem::transmute::<__m256i, [u32; 8]>(self.0) };
        out[..8].copy_from_slice(&arr);
    }

    #[inline(always)]
    fn add(self, other: Self) -> Self {
        // SAFETY: single AVX2 intrinsic; see `splat` for the
        // feature-availability argument.
        unsafe { Self(_mm256_add_epi32(self.0, other.0)) }
    }

    #[inline(always)]
    fn xor(self, other: Self) -> Self {
        // SAFETY: single AVX2 intrinsic; see `splat`.
        unsafe { Self(_mm256_xor_si256(self.0, other.0)) }
    }

    #[inline(always)]
    fn and(self, other: Self) -> Self {
        // SAFETY: single AVX2 intrinsic; see `splat`.
        unsafe { Self(_mm256_and_si256(self.0, other.0)) }
    }

    #[inline(always)]
    fn or(self, other: Self) -> Self {
        // SAFETY: single AVX2 intrinsic; see `splat`.
        unsafe { Self(_mm256_or_si256(self.0, other.0)) }
    }

    #[inline(always)]
    fn rotl(self, s: u32) -> Self {
        debug_assert!((1..=31).contains(&s));
        // SAFETY: AVX2 shift intrinsics with a uniform runtime count
        // (see `splat` for availability). After the cores unroll, `s` is
        // a constant and LLVM folds these to immediate-form shifts.
        unsafe {
            let left = _mm256_sll_epi32(self.0, _mm_cvtsi32_si128(s as i32));
            let right = _mm256_srl_epi32(self.0, _mm_cvtsi32_si128(32 - s as i32));
            Self(_mm256_or_si256(left, right))
        }
    }
}

/// Sixteen `u32` lanes in one AVX-512 register. Uses the native rotate
/// (`vprolvd`) and folds every boolean step function into one
/// `vpternlogd`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct U32x16(__m512i);

impl Vec32 for U32x16 {
    const LANES: usize = 16;

    #[inline(always)]
    fn splat(x: u32) -> Self {
        // SAFETY: single AVX-512F intrinsic; reachable only through the
        // `#[target_feature(enable = "avx512f")]` shims below, entered
        // via handles that proved AVX-512F at runtime.
        unsafe { Self(_mm512_set1_epi32(x as i32)) }
    }

    #[inline(always)]
    fn load(words: &[u32]) -> Self {
        let arr: [u32; 16] = words[..16].try_into().expect("16 lanes");
        // SAFETY: `[u32; 16]` and `__m512i` are both 64-byte
        // plain-old-data with no invalid bit patterns.
        unsafe { Self(core::mem::transmute::<[u32; 16], __m512i>(arr)) }
    }

    #[inline(always)]
    fn store(self, out: &mut [u32]) {
        // SAFETY: same plain-old-data transmute as `load`, in reverse.
        let arr = unsafe { core::mem::transmute::<__m512i, [u32; 16]>(self.0) };
        out[..16].copy_from_slice(&arr);
    }

    #[inline(always)]
    fn add(self, other: Self) -> Self {
        // SAFETY: single AVX-512F intrinsic; see `splat`.
        unsafe { Self(_mm512_add_epi32(self.0, other.0)) }
    }

    #[inline(always)]
    fn xor(self, other: Self) -> Self {
        // SAFETY: single AVX-512F intrinsic; see `splat`.
        unsafe { Self(_mm512_xor_si512(self.0, other.0)) }
    }

    #[inline(always)]
    fn and(self, other: Self) -> Self {
        // SAFETY: single AVX-512F intrinsic; see `splat`.
        unsafe { Self(_mm512_and_si512(self.0, other.0)) }
    }

    #[inline(always)]
    fn or(self, other: Self) -> Self {
        // SAFETY: single AVX-512F intrinsic; see `splat`.
        unsafe { Self(_mm512_or_si512(self.0, other.0)) }
    }

    #[inline(always)]
    fn rotl(self, s: u32) -> Self {
        debug_assert!((1..=31).contains(&s));
        // SAFETY: AVX-512F variable-rotate with a splatted count; see
        // `splat` for availability.
        unsafe { Self(_mm512_rolv_epi32(self.0, _mm512_set1_epi32(s as i32))) }
    }

    // One vpternlogd per boolean step function: imm8 bit
    // `(a << 2) | (b << 1) | c` gives the truth table over the three
    // operands in argument order.

    #[inline(always)]
    fn sel(self, t: Self, f: Self) -> Self {
        // SAFETY: single AVX-512F intrinsic; see `splat`. 0xCA is the
        // truth table of `(a & b) | (!a & c)`.
        unsafe { Self(_mm512_ternarylogic_epi32::<0xCA>(self.0, t.0, f.0)) }
    }

    #[inline(always)]
    fn maj(self, b: Self, c: Self) -> Self {
        // SAFETY: single AVX-512F intrinsic; see `splat`. 0xE8 is the
        // majority truth table.
        unsafe { Self(_mm512_ternarylogic_epi32::<0xE8>(self.0, b.0, c.0)) }
    }

    #[inline(always)]
    fn xor3(self, b: Self, c: Self) -> Self {
        // SAFETY: single AVX-512F intrinsic; see `splat`. 0x96 is the
        // three-way xor truth table.
        unsafe { Self(_mm512_ternarylogic_epi32::<0x96>(self.0, b.0, c.0)) }
    }

    #[inline(always)]
    fn md5i(self, c: Self, d: Self) -> Self {
        // SAFETY: single AVX-512F intrinsic; see `splat`. 0x39 is the
        // truth table of `b ^ (a | !c)` over operands `(a, b, c)` —
        // MD5's `I` with `a = b-register, b = c-register, c = d-register`.
        unsafe { Self(_mm512_ternarylogic_epi32::<0x39>(self.0, c.0, d.0)) }
    }
}

/// Generate the five `#[target_feature]` entry points for one ISA: the
/// only places the explicit-SIMD kernels are codegenned, and the only
/// functions a handle calls (via `unsafe`, with detection as the proof).
macro_rules! define_shims {
    ($modname:ident, $feature:literal, $vec:ty, $lanes:expr) => {
        pub(crate) mod $modname {
            use super::*;

            #[target_feature(enable = $feature)]
            pub(crate) fn md5(blocks: &[[u32; 16]; $lanes]) -> [[u32; 4]; $lanes] {
                cores::md5_blocks::<$vec, $lanes>(blocks)
            }

            #[target_feature(enable = $feature)]
            pub(crate) fn md4(blocks: &[[u32; 16]; $lanes]) -> [[u32; 4]; $lanes] {
                cores::md4_blocks::<$vec, $lanes>(blocks)
            }

            #[target_feature(enable = $feature)]
            pub(crate) fn sha1(blocks: &[[u32; 16]; $lanes]) -> [[u32; 5]; $lanes] {
                cores::sha1_blocks::<$vec, $lanes>(blocks)
            }

            #[target_feature(enable = $feature)]
            pub(crate) fn sha1_a75(blocks: &[[u32; 16]; $lanes]) -> [u32; $lanes] {
                cores::sha1_a75::<$vec, $lanes>(blocks)
            }

            #[target_feature(enable = $feature)]
            pub(crate) fn md5_forward49(
                template: &[u32; 16],
                w0s: &[u32; $lanes],
            ) -> [[u32; 4]; $lanes] {
                cores::md5_forward49::<$vec, $lanes>(template, w0s)
            }
        }
    };
}

define_shims!(avx2, "avx2", X2<U32x8>, 16);
define_shims!(avx512, "avx512f", X2<U32x16>, 32);
