//! AArch64 NEON vector lanes (`U32x4`).
//!
//! Same structure as the x86 module: every `unsafe` is either one
//! vendor intrinsic inside an `#[inline(always)]` [`Vec32`] op —
//! reachable only through the `#[target_feature(enable = "neon")]`
//! shims, entered via a handle whose constructor verified NEON at
//! runtime — or a plain-old-data `transmute` between a lane array and
//! the register type. The shims instantiate the cores at
//! `X2<U32x4>` = 8 keys per call (interleaved multi-buffer pairs).

// This module is the designated home for vendor intrinsics; the
// workspace-wide `unsafe_code = deny` stays in force everywhere else.
#![allow(unsafe_code)]
// Lane-array slicing below is over fixed 4-word arrays.
#![allow(clippy::indexing_slicing)]

use core::arch::aarch64::{
    uint32x4_t, vaddq_u32, vandq_u32, vdupq_n_s32, vdupq_n_u32, veorq_u32, vorrq_u32,
    vshlq_u32,
};

use super::cores;
use super::vec::{Vec32, X2};

/// Four `u32` lanes in one NEON register.
#[derive(Debug, Clone, Copy)]
pub(crate) struct U32x4(uint32x4_t);

impl Vec32 for U32x4 {
    const LANES: usize = 4;

    #[inline(always)]
    fn splat(x: u32) -> Self {
        // SAFETY: single NEON intrinsic; reachable only through the
        // `#[target_feature(enable = "neon")]` shims below, entered via
        // handles that proved NEON at runtime.
        unsafe { Self(vdupq_n_u32(x)) }
    }

    #[inline(always)]
    fn load(words: &[u32]) -> Self {
        let arr: [u32; 4] = words[..4].try_into().expect("4 lanes");
        // SAFETY: `[u32; 4]` and `uint32x4_t` are both 16-byte
        // plain-old-data with no invalid bit patterns.
        unsafe { Self(core::mem::transmute::<[u32; 4], uint32x4_t>(arr)) }
    }

    #[inline(always)]
    fn store(self, out: &mut [u32]) {
        // SAFETY: same plain-old-data transmute as `load`, in reverse.
        let arr = unsafe { core::mem::transmute::<uint32x4_t, [u32; 4]>(self.0) };
        out[..4].copy_from_slice(&arr);
    }

    #[inline(always)]
    fn add(self, other: Self) -> Self {
        // SAFETY: single NEON intrinsic; see `splat`.
        unsafe { Self(vaddq_u32(self.0, other.0)) }
    }

    #[inline(always)]
    fn xor(self, other: Self) -> Self {
        // SAFETY: single NEON intrinsic; see `splat`.
        unsafe { Self(veorq_u32(self.0, other.0)) }
    }

    #[inline(always)]
    fn and(self, other: Self) -> Self {
        // SAFETY: single NEON intrinsic; see `splat`.
        unsafe { Self(vandq_u32(self.0, other.0)) }
    }

    #[inline(always)]
    fn or(self, other: Self) -> Self {
        // SAFETY: single NEON intrinsic; see `splat`.
        unsafe { Self(vorrq_u32(self.0, other.0)) }
    }

    #[inline(always)]
    fn rotl(self, s: u32) -> Self {
        debug_assert!((1..=31).contains(&s));
        // SAFETY: single NEON intrinsics; see `splat`. `vshl` with a
        // negative per-lane count shifts right, so a left/right pair
        // composes the rotate; counts are in `1..=31`, within VSHL's
        // defined range.
        unsafe {
            let left = vshlq_u32(self.0, vdupq_n_s32(s as i32));
            let right = vshlq_u32(self.0, vdupq_n_s32(s as i32 - 32));
            Self(vorrq_u32(left, right))
        }
    }
}

/// The five `#[target_feature(enable = "neon")]` entry points at
/// `X2<U32x4>` (8 keys per call) — the NEON counterpart of the x86
/// module's `define_shims!` output.
pub(crate) mod neon_shims {
    use super::*;

    #[target_feature(enable = "neon")]
    pub(crate) fn md5(blocks: &[[u32; 16]; 8]) -> [[u32; 4]; 8] {
        cores::md5_blocks::<X2<U32x4>, 8>(blocks)
    }

    #[target_feature(enable = "neon")]
    pub(crate) fn md4(blocks: &[[u32; 16]; 8]) -> [[u32; 4]; 8] {
        cores::md4_blocks::<X2<U32x4>, 8>(blocks)
    }

    #[target_feature(enable = "neon")]
    pub(crate) fn sha1(blocks: &[[u32; 16]; 8]) -> [[u32; 5]; 8] {
        cores::sha1_blocks::<X2<U32x4>, 8>(blocks)
    }

    #[target_feature(enable = "neon")]
    pub(crate) fn sha1_a75(blocks: &[[u32; 16]; 8]) -> [u32; 8] {
        cores::sha1_a75::<X2<U32x4>, 8>(blocks)
    }

    #[target_feature(enable = "neon")]
    pub(crate) fn md5_forward49(template: &[u32; 16], w0s: &[u32; 8]) -> [[u32; 4]; 8] {
        cores::md5_forward49::<X2<U32x4>, 8>(template, w0s)
    }
}
