//! The compression cores, written once against [`Vec32`] and
//! instantiated per ISA by the `#[target_feature]` shims.
//!
//! These mirror the autovectorized SoA cores in [`crate::lanes`] — same
//! round structure, same Section V tricks (49-step reversed MD5, SHA-1
//! `a75` partial rounds) — but with the vector operations *explicit*, so
//! the instruction mix is fixed by construction rather than left to the
//! loop vectorizer. Step counts and round counts are const generics so
//! every instantiation fully unrolls and the state "rotation" is a
//! compile-time renaming, exactly like the paper's unrolled kernels.
//!
//! The functions here contain no `unsafe`: all intrinsic access lives in
//! the one-line `Vec32` op impls, and feature-availability proofs live
//! in the entry shims.

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use super::vec::Vec32;
use crate::md4;
use crate::md5::{self, IV as MD5_IV, K as MD5_K, S as MD5_S};
use crate::sha1::{IV as SHA1_IV, K as SHA1_K};

/// Gather word `w` of every block into one vector (SoA transpose).
#[inline(always)]
fn gather_word<V: Vec32, const L: usize>(blocks: &[[u32; 16]; L], w: usize) -> V {
    debug_assert_eq!(L, V::LANES);
    let mut tmp = [0u32; L];
    for (t, block) in tmp.iter_mut().zip(blocks) {
        *t = block[w];
    }
    V::load(&tmp)
}

/// Transpose `L` 16-word blocks into one vector per message word.
#[inline(always)]
fn load_blocks<V: Vec32, const L: usize>(blocks: &[[u32; 16]; L]) -> [V; 16] {
    core::array::from_fn(|w| gather_word(blocks, w))
}

/// Scatter four state vectors back to per-lane `[a, b, c, d]` arrays.
#[inline(always)]
fn store_state4<V: Vec32, const L: usize>(s: [V; 4]) -> [[u32; 4]; L] {
    debug_assert_eq!(L, V::LANES);
    let mut cols = [[0u32; L]; 4];
    for (col, v) in cols.iter_mut().zip(s) {
        v.store(col);
    }
    core::array::from_fn(|l| [cols[0][l], cols[1][l], cols[2][l], cols[3][l]])
}

// ---------------------------------------------------------------------------
// MD5
// ---------------------------------------------------------------------------

/// One MD5 round-1 step: `a = b + rotl(a + F(b,c,d) + k + w, s)`.
#[inline(always)]
fn md5_f<V: Vec32>(a: V, b: V, c: V, d: V, w: V, k: u32, s: u32) -> V {
    b.add(a.add(b.sel(c, d)).add(V::splat(k)).add(w).rotl(s))
}

/// One MD5 round-2 step (`G(b,c,d) = (d & b) | (!d & c)`).
#[inline(always)]
fn md5_g<V: Vec32>(a: V, b: V, c: V, d: V, w: V, k: u32, s: u32) -> V {
    b.add(a.add(d.sel(b, c)).add(V::splat(k)).add(w).rotl(s))
}

/// One MD5 round-3 step (`H = b ^ c ^ d`).
#[inline(always)]
fn md5_h<V: Vec32>(a: V, b: V, c: V, d: V, w: V, k: u32, s: u32) -> V {
    b.add(a.add(b.xor3(c, d)).add(V::splat(k)).add(w).rotl(s))
}

/// One MD5 round-4 step (`I = c ^ (b | !d)`).
#[inline(always)]
fn md5_i<V: Vec32>(a: V, b: V, c: V, d: V, w: V, k: u32, s: u32) -> V {
    b.add(a.add(b.md5i(c, d)).add(V::splat(k)).add(w).rotl(s))
}

/// Expand one quad of steps `i..i+4` for the given round function,
/// keeping the state rotation a compile-time renaming (the lanes-module
/// structure, with the round function a macro argument instead of four
/// near-identical helpers).
macro_rules! md5_quad {
    ($step:ident, $a:ident, $b:ident, $c:ident, $d:ident, $m:ident, $i:ident) => {
        $a = $step($a, $b, $c, $d, $m[md5::word_index($i)], MD5_K[$i], MD5_S[$i]);
        $d = $step($d, $a, $b, $c, $m[md5::word_index($i + 1)], MD5_K[$i + 1], MD5_S[$i + 1]);
        $c = $step($c, $d, $a, $b, $m[md5::word_index($i + 2)], MD5_K[$i + 2], MD5_S[$i + 2]);
        $b = $step($b, $c, $d, $a, $m[md5::word_index($i + 3)], MD5_K[$i + 3], MD5_S[$i + 3]);
    };
}

/// Run the first `STEPS` MD5 steps from the IV, returning the raw
/// working registers `[a, b, c, d]` (no chaining addition) — `STEPS` is
/// 64 for the full hash, [`crate::md5_reverse::FORWARD_STEPS`] for the
/// reversed search (which stops after the first call of the last quad).
#[inline(always)]
fn md5_steps<V: Vec32, const STEPS: usize>(m: &[V; 16]) -> [V; 4] {
    let mut a = V::splat(MD5_IV[0]);
    let mut b = V::splat(MD5_IV[1]);
    let mut c = V::splat(MD5_IV[2]);
    let mut d = V::splat(MD5_IV[3]);
    let mut i = 0;
    while i < 16.min(STEPS) {
        md5_quad!(md5_f, a, b, c, d, m, i);
        i += 4;
    }
    while i < 32.min(STEPS) {
        md5_quad!(md5_g, a, b, c, d, m, i);
        i += 4;
    }
    while i < 48.min(STEPS) {
        md5_quad!(md5_h, a, b, c, d, m, i);
        i += 4;
    }
    while i < STEPS {
        a = md5_i(a, b, c, d, m[md5::word_index(i)], MD5_K[i], MD5_S[i]);
        if i + 1 >= STEPS {
            break;
        }
        d = md5_i(d, a, b, c, m[md5::word_index(i + 1)], MD5_K[i + 1], MD5_S[i + 1]);
        c = md5_i(c, d, a, b, m[md5::word_index(i + 2)], MD5_K[i + 2], MD5_S[i + 2]);
        b = md5_i(b, c, d, a, m[md5::word_index(i + 3)], MD5_K[i + 3], MD5_S[i + 3]);
        i += 4;
    }
    [a, b, c, d]
}

/// MD5 over `L` pre-padded single-block messages: the explicit-SIMD
/// equivalent of [`crate::lanes::md5_lanes`].
#[inline(always)]
pub(crate) fn md5_blocks<V: Vec32, const L: usize>(blocks: &[[u32; 16]; L]) -> [[u32; 4]; L] {
    let m = load_blocks::<V, L>(blocks);
    let [a, b, c, d] = md5_steps::<V, 64>(&m);
    store_state4([
        a.add(V::splat(MD5_IV[0])),
        b.add(V::splat(MD5_IV[1])),
        c.add(V::splat(MD5_IV[2])),
        d.add(V::splat(MD5_IV[3])),
    ])
}

/// The reversed-MD5 forward half (Section V-B): 49 steps for `L` lanes
/// sharing `template` in words 1..16 and differing only in `w0s`.
/// Returns the rotating-form state after step 48 per lane
/// (`[d, a, b, c]`, comparable with
/// [`crate::Md5PrefixSearch::reference`]) — the explicit-SIMD equivalent
/// of [`crate::lanes::md5_forward49_lanes`].
#[inline(always)]
pub(crate) fn md5_forward49<V: Vec32, const L: usize>(
    template: &[u32; 16],
    w0s: &[u32; L],
) -> [[u32; 4]; L] {
    debug_assert_eq!(L, V::LANES);
    let mut m = [V::splat(0); 16];
    m[0] = V::load(w0s);
    for (w, slot) in m.iter_mut().enumerate().skip(1) {
        *slot = V::splat(template[w]);
    }
    // 49 steps: the last executed step (index 48, i % 4 == 0) writes the
    // register that is `a` in its frame; the rotating-form state after
    // step 48 is therefore [d, a, b, c] of our fixed naming.
    let [a, b, c, d] = md5_steps::<V, { crate::md5_reverse::FORWARD_STEPS }>(&m);
    store_state4([d, a, b, c])
}

// ---------------------------------------------------------------------------
// MD4 (the NTLM core)
// ---------------------------------------------------------------------------

/// One MD4 round-1 step.
#[inline(always)]
fn md4_f<V: Vec32>(a: V, b: V, c: V, d: V, w: V, s: u32) -> V {
    a.add(b.sel(c, d)).add(w).rotl(s)
}

/// One MD4 round-2 step (`G` is majority, constant `K2`).
#[inline(always)]
fn md4_g<V: Vec32>(a: V, b: V, c: V, d: V, w: V, s: u32) -> V {
    const K2: u32 = 0x5a82_7999;
    a.add(b.maj(c, d)).add(w).add(V::splat(K2)).rotl(s)
}

/// One MD4 round-3 step (`H` is xor3, constant `K3`).
#[inline(always)]
fn md4_h<V: Vec32>(a: V, b: V, c: V, d: V, w: V, s: u32) -> V {
    const K3: u32 = 0x6ed9_eba1;
    a.add(b.xor3(c, d)).add(w).add(V::splat(K3)).rotl(s)
}

/// MD4 over `L` pre-padded single-block messages: the explicit-SIMD
/// equivalent of [`crate::lanes::md4_lanes`].
#[inline(always)]
pub(crate) fn md4_blocks<V: Vec32, const L: usize>(blocks: &[[u32; 16]; L]) -> [[u32; 4]; L] {
    let m = load_blocks::<V, L>(blocks);
    let mut a = V::splat(md4::IV[0]);
    let mut b = V::splat(md4::IV[1]);
    let mut c = V::splat(md4::IV[2]);
    let mut d = V::splat(md4::IV[3]);

    // Round 1: sequential words.
    for chunk in 0..4 {
        let base = chunk * 4;
        a = md4_f(a, b, c, d, m[base], 3);
        d = md4_f(d, a, b, c, m[base + 1], 7);
        c = md4_f(c, d, a, b, m[base + 2], 11);
        b = md4_f(b, c, d, a, m[base + 3], 19);
    }
    // Round 2: column-major words.
    for col in 0..4 {
        a = md4_g(a, b, c, d, m[col], 3);
        d = md4_g(d, a, b, c, m[col + 4], 5);
        c = md4_g(c, d, a, b, m[col + 8], 9);
        b = md4_g(b, c, d, a, m[col + 12], 13);
    }
    // Round 3: bit-reversed column order.
    for &col in &[0usize, 2, 1, 3] {
        a = md4_h(a, b, c, d, m[col], 3);
        d = md4_h(d, a, b, c, m[col + 8], 9);
        c = md4_h(c, d, a, b, m[col + 4], 11);
        b = md4_h(b, c, d, a, m[col + 12], 15);
    }

    store_state4([
        a.add(V::splat(md4::IV[0])),
        b.add(V::splat(md4::IV[1])),
        c.add(V::splat(md4::IV[2])),
        d.add(V::splat(md4::IV[3])),
    ])
}

// ---------------------------------------------------------------------------
// SHA-1
// ---------------------------------------------------------------------------

/// Expand schedule word `i` (`i >= 16`) on the 16-slot ring: the
/// `(i mod 16)` slot holds exactly `w[i-16]` and is never read again,
/// so it is overwritten in place.
macro_rules! sha1_expand {
    ($w:ident, $i:expr) => {{
        let x = $w[($i + 13) & 15]
            .xor3($w[($i + 8) & 15], $w[($i + 2) & 15])
            .xor($w[$i & 15])
            .rotl(1);
        $w[$i & 15] = x;
        x
    }};
    // Final expansion of a kernel: no slot will ever read it, so skip
    // the ring store (also silences the dead-store lint honestly).
    ($w:ident, $i:expr, last) => {
        $w[($i + 13) & 15]
            .xor3($w[($i + 8) & 15], $w[($i + 2) & 15])
            .xor($w[$i & 15])
            .rotl(1)
    };
}

/// One SHA-1 round with the rotating renaming spelled out by the
/// caller: `e += rotl5(a) + f + k + wi; b = rotl30(b)` (the caller then
/// shifts which register plays which role).
macro_rules! sha1_round {
    ($f:ident, $a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $wi:expr, $k:ident) => {
        $e = $e.add($a.rotl(5)).add($b.$f($c, $d)).add($k).add($wi);
        $b = $b.rotl(30);
    };
}

/// Five rounds — one full renaming cycle — of a 20-round phase, with
/// schedule expansion when `$i >= 16`.
macro_rules! sha1_group {
    ($f:ident, $a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $w:ident, $i:ident, $k:ident, expand) => {
        sha1_round!($f, $a, $b, $c, $d, $e, sha1_expand!($w, $i), $k);
        sha1_round!($f, $e, $a, $b, $c, $d, sha1_expand!($w, $i + 1), $k);
        sha1_round!($f, $d, $e, $a, $b, $c, sha1_expand!($w, $i + 2), $k);
        sha1_round!($f, $c, $d, $e, $a, $b, sha1_expand!($w, $i + 3), $k);
        sha1_round!($f, $b, $c, $d, $e, $a, sha1_expand!($w, $i + 4), $k);
    };
    ($f:ident, $a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $w:ident, $i:ident, $k:ident, direct) => {
        sha1_round!($f, $a, $b, $c, $d, $e, $w[$i], $k);
        sha1_round!($f, $e, $a, $b, $c, $d, $w[$i + 1], $k);
        sha1_round!($f, $d, $e, $a, $b, $c, $w[$i + 2], $k);
        sha1_round!($f, $c, $d, $e, $a, $b, $w[$i + 3], $k);
        sha1_round!($f, $b, $c, $d, $e, $a, $w[$i + 4], $k);
    };
}

/// Run the first `ROUNDS` SHA-1 rounds from the IV with a rolling
/// 16-entry schedule ring, returning the raw `[a, b, c, d, e]`
/// registers in the frame after the last executed round (the newest
/// value is `a`). `ROUNDS` is 80 for the full hash,
/// [`crate::sha1_partial::PARTIAL_ROUNDS`] (76) for the `a75` early
/// exit; both are multiples of the paper-style 5-round groups minus the
/// final partial group handled by the last loop's bound.
#[inline(always)]
fn sha1_rounds<V: Vec32, const ROUNDS: usize>(m: &[V; 16]) -> [V; 5] {
    let mut w = *m;
    let mut a = V::splat(SHA1_IV[0]);
    let mut b = V::splat(SHA1_IV[1]);
    let mut c = V::splat(SHA1_IV[2]);
    let mut d = V::splat(SHA1_IV[3]);
    let mut e = V::splat(SHA1_IV[4]);

    let k0 = V::splat(SHA1_K[0]);
    let k1 = V::splat(SHA1_K[1]);
    let k2 = V::splat(SHA1_K[2]);
    let k3 = V::splat(SHA1_K[3]);

    let mut i = 0;
    while i < 15 {
        sha1_group!(sel, a, b, c, d, e, w, i, k0, direct);
        i += 5;
    }
    // Rounds 15..20: the first expansion lands mid-group.
    sha1_round!(sel, a, b, c, d, e, w[15], k0);
    sha1_round!(sel, e, a, b, c, d, sha1_expand!(w, 16), k0);
    sha1_round!(sel, d, e, a, b, c, sha1_expand!(w, 17), k0);
    sha1_round!(sel, c, d, e, a, b, sha1_expand!(w, 18), k0);
    sha1_round!(sel, b, c, d, e, a, sha1_expand!(w, 19), k0);
    i = 20;
    while i < 40 {
        sha1_group!(xor3, a, b, c, d, e, w, i, k1, expand);
        i += 5;
    }
    while i < 60 {
        sha1_group!(maj, a, b, c, d, e, w, i, k2, expand);
        i += 5;
    }
    while i < 75.min(ROUNDS) {
        sha1_group!(xor3, a, b, c, d, e, w, i, k3, expand);
        i += 5;
    }
    // Rounds 75..ROUNDS (one round for the a75 path, five for the full
    // hash): after each round the renaming shifts, so the tail is
    // spelled out and the loop above stopped at a group boundary.
    sha1_round!(xor3, a, b, c, d, e, sha1_expand!(w, 75), k3);
    if ROUNDS == 76 {
        // Rotating frame after round 75: the newest value (a75) sits in
        // the register named `e`; `b` was already rotated by the round.
        return [e, a, b, c, d];
    }
    sha1_round!(xor3, e, a, b, c, d, sha1_expand!(w, 76), k3);
    sha1_round!(xor3, d, e, a, b, c, sha1_expand!(w, 77), k3);
    sha1_round!(xor3, c, d, e, a, b, sha1_expand!(w, 78), k3);
    sha1_round!(xor3, b, c, d, e, a, sha1_expand!(w, 79, last), k3);
    [a, b, c, d, e]
}

/// SHA-1 over `L` pre-padded single-block messages: the explicit-SIMD
/// equivalent of [`crate::lanes::sha1_lanes`].
#[inline(always)]
pub(crate) fn sha1_blocks<V: Vec32, const L: usize>(blocks: &[[u32; 16]; L]) -> [[u32; 5]; L] {
    let m = load_blocks::<V, L>(blocks);
    let s = sha1_rounds::<V, 80>(&m);
    let mut cols = [[0u32; L]; 5];
    for (col, (v, iv)) in cols.iter_mut().zip(s.into_iter().zip(SHA1_IV)) {
        v.add(V::splat(iv)).store(col);
    }
    core::array::from_fn(|l| [cols[0][l], cols[1][l], cols[2][l], cols[3][l], cols[4][l]])
}

/// The SHA-1 partial path: 76 rounds per lane, returning each lane's
/// `a75` — the value [`crate::Sha1PartialSearch`] compares. Explicit-
/// SIMD equivalent of [`crate::lanes::sha1_a75_lanes`].
#[inline(always)]
pub(crate) fn sha1_a75<V: Vec32, const L: usize>(blocks: &[[u32; 16]; L]) -> [u32; L] {
    debug_assert_eq!(L, V::LANES);
    let m = load_blocks::<V, L>(blocks);
    // After round 75 (the 76th) the newest value sits in `a` of the
    // rolling naming — that is a75.
    let [a, _, _, _, _] = sha1_rounds::<V, { crate::sha1_partial::PARTIAL_ROUNDS }>(&m);
    let mut out = [0u32; L];
    a.store(&mut out);
    out
}

#[cfg(test)]
mod tests {
    //! The generic cores over scalar (`u32`) and paired-scalar
    //! (`X2<u32>`) lanes vs. the scalar compression functions: proves
    //! the *algorithm structure* before any ISA enters the picture.

    use super::*;
    use crate::md4::md4_compress;
    use crate::md5::md5_compress;
    use crate::padding::{pad_md5_block, pad_sha_block};
    use crate::sha1::{expand_schedule, round as scalar_sha1_round, sha1_compress};
    use crate::simd::vec::X2;

    #[test]
    fn scalar_core_md5_matches_compress() {
        let block = pad_md5_block(b"core-check");
        let got = md5_blocks::<u32, 1>(&[block]);
        assert_eq!(got[0], md5_compress(MD5_IV, &block));
    }

    #[test]
    fn paired_core_md5_matches_compress() {
        let blocks = [pad_md5_block(b"left"), pad_md5_block(b"right")];
        let got = md5_blocks::<X2<u32>, 2>(&blocks);
        for (l, block) in blocks.iter().enumerate() {
            assert_eq!(got[l], md5_compress(MD5_IV, block), "lane {l}");
        }
    }

    #[test]
    fn paired_core_md4_matches_compress() {
        let blocks = [pad_md5_block(b"ntlm-a"), pad_md5_block(b"ntlm-b")];
        let got = md4_blocks::<X2<u32>, 2>(&blocks);
        for (l, block) in blocks.iter().enumerate() {
            assert_eq!(got[l], md4_compress(md4::IV, block), "lane {l}");
        }
    }

    #[test]
    fn paired_core_sha1_matches_compress() {
        let blocks = [pad_sha_block(b"sha-a"), pad_sha_block(b"sha-b")];
        let got = sha1_blocks::<X2<u32>, 2>(&blocks);
        for (l, block) in blocks.iter().enumerate() {
            assert_eq!(got[l], sha1_compress(SHA1_IV, block), "lane {l}");
        }
    }

    #[test]
    fn paired_core_forward49_matches_scalar_steps() {
        let template = pad_md5_block(b"AAAA-tail");
        let w0s = [0x6162_6364u32, 0x7a79_7877];
        let got = md5_forward49::<X2<u32>, 2>(&template, &w0s);
        for (l, &w0) in w0s.iter().enumerate() {
            let mut w = template;
            w[0] = w0;
            let mut s = MD5_IV;
            for i in 0..crate::md5_reverse::FORWARD_STEPS {
                s = crate::md5::step(i, s, &w);
            }
            assert_eq!(got[l], s, "lane {l}");
        }
    }

    #[test]
    fn paired_core_a75_matches_scalar_partial() {
        let blocks = [pad_sha_block(b"a75-x"), pad_sha_block(b"a75-y")];
        let got = sha1_a75::<X2<u32>, 2>(&blocks);
        for (l, block) in blocks.iter().enumerate() {
            let sched = expand_schedule(block);
            let mut s = SHA1_IV;
            for (i, &w) in sched.iter().enumerate().take(crate::sha1_partial::PARTIAL_ROUNDS) {
                s = scalar_sha1_round(i, s, w);
            }
            assert_eq!(got[l], s[0], "lane {l}");
        }
    }
}
