//! The portable vector vocabulary the explicit-SIMD cores are written
//! against.
//!
//! [`Vec32`] is the small set of `u32`-lane operations every compression
//! function in this module needs: splat, lane load/store, wrapping add,
//! the bitwise ring, and a rotate by a uniform (runtime) amount. The
//! boolean step functions of MD4/MD5/SHA-1 — select, majority,
//! three-way xor, and MD5's round-4 `I` — are *derived* operations with
//! default compositions, so an ISA that has a fused form (AVX-512's
//! `vpternlogd`) overrides them with a single instruction while AVX2 and
//! NEON inherit the 3-op composition.
//!
//! Every method is `#[inline(always)]`: the generic cores in
//! [`super::cores`] instantiate to straight-line vector code *inside* the
//! per-ISA `#[target_feature]` entry shims, so LLVM sees the whole hash
//! as one feature-enabled function — the same structure `memchr` and the
//! stdlib use to keep `unsafe` confined to one-line intrinsic wrappers.
//!
//! [`X2`] pairs two vectors into one logical batch of `2 × LANES` keys:
//! the two halves form independent dependency chains, so an out-of-order
//! core overlaps their rotate/add latencies — the paper's Section V
//! observation that the kernel must expose instruction-level parallelism
//! beyond a single hash state (interleaved multi-buffer scheduling).

// Indexing/slicing below is over fixed-size lane arrays whose lengths
// are established by `Self::LANES`; the workspace
// `clippy::indexing_slicing` escalation guards new code, not these
// proven accesses.
#![allow(clippy::indexing_slicing)]

/// A vector of `LANES` `u32` values, one candidate key per lane.
///
/// Implementations: `u32` (scalar reference, `LANES = 1`), the per-ISA
/// register wrappers in `x86`/`neon`, and the [`X2`] pair combinator.
pub(crate) trait Vec32: Copy {
    /// Lanes per vector.
    const LANES: usize;

    /// Broadcast one word to every lane.
    fn splat(x: u32) -> Self;

    /// Load the first `LANES` words of `words` (one per lane).
    ///
    /// # Panics
    /// Panics when `words` holds fewer than `LANES` words.
    fn load(words: &[u32]) -> Self;

    /// Store each lane into the first `LANES` slots of `out`.
    ///
    /// # Panics
    /// Panics when `out` holds fewer than `LANES` slots.
    fn store(self, out: &mut [u32]);

    /// Lane-wise wrapping addition.
    fn add(self, other: Self) -> Self;

    /// Lane-wise exclusive or.
    fn xor(self, other: Self) -> Self;

    /// Lane-wise and.
    fn and(self, other: Self) -> Self;

    /// Lane-wise or.
    fn or(self, other: Self) -> Self;

    /// Lane-wise rotate left by a uniform amount `1..=31`.
    fn rotl(self, s: u32) -> Self;

    /// Bitwise select: `(self & t) | (!self & f)` — MD5/MD4 `F`, MD5 `G`
    /// (with swapped operands) and SHA-1 `Ch`. AVX-512 overrides with
    /// `vpternlogd` imm `0xCA`.
    #[inline(always)]
    fn sel(self, t: Self, f: Self) -> Self {
        // The mux identity f ^ (mask & (t ^ f)): 3 ops, no NOT.
        f.xor(self.and(t.xor(f)))
    }

    /// Bitwise majority of `self, b, c` — MD4 `G` and SHA-1 `Maj`.
    /// AVX-512 overrides with `vpternlogd` imm `0xE8`.
    #[inline(always)]
    fn maj(self, b: Self, c: Self) -> Self {
        // (a & (b ^ c)) ^ (b & c): 3 ops instead of the 5-op or-of-ands.
        self.and(b.xor(c)).xor(b.and(c))
    }

    /// Three-way xor — MD4/MD5 `H` and SHA-1 `Parity`. AVX-512
    /// overrides with `vpternlogd` imm `0x96`.
    #[inline(always)]
    fn xor3(self, b: Self, c: Self) -> Self {
        self.xor(b).xor(c)
    }

    /// MD5 round-4 `I(b, c, d) = c ^ (b | !d)` with `self = b`.
    /// AVX-512 overrides with `vpternlogd` imm `0x39`.
    #[inline(always)]
    fn md5i(self, c: Self, d: Self) -> Self {
        c.xor(self.or(d.xor(Self::splat(!0))))
    }
}

/// Scalar reference lanes: lets the property tests run the *generic
/// cores* (not just the autovectorized `lanes` module) against the
/// scalar compression functions, isolating core bugs from ISA-op bugs.
impl Vec32 for u32 {
    const LANES: usize = 1;

    #[inline(always)]
    fn splat(x: u32) -> Self {
        x
    }

    #[inline(always)]
    fn load(words: &[u32]) -> Self {
        words[0]
    }

    #[inline(always)]
    fn store(self, out: &mut [u32]) {
        out[0] = self;
    }

    #[inline(always)]
    fn add(self, other: Self) -> Self {
        self.wrapping_add(other)
    }

    #[inline(always)]
    fn xor(self, other: Self) -> Self {
        self ^ other
    }

    #[inline(always)]
    fn and(self, other: Self) -> Self {
        self & other
    }

    #[inline(always)]
    fn or(self, other: Self) -> Self {
        self | other
    }

    #[inline(always)]
    fn rotl(self, s: u32) -> Self {
        self.rotate_left(s)
    }
}

/// Two independent vectors treated as one batch of `2 × LANES` keys.
///
/// The halves never mix: every operation applies to both pairwise, so
/// the compiled kernel carries two interleaved dependency chains per
/// hash state register — enough ILP to keep the rotate/add ports busy
/// while one chain waits on its previous step.
#[derive(Debug, Clone, Copy)]
pub(crate) struct X2<V>(pub V, pub V);

impl<V: Vec32> Vec32 for X2<V> {
    const LANES: usize = 2 * V::LANES;

    #[inline(always)]
    fn splat(x: u32) -> Self {
        X2(V::splat(x), V::splat(x))
    }

    #[inline(always)]
    fn load(words: &[u32]) -> Self {
        X2(V::load(&words[..V::LANES]), V::load(&words[V::LANES..]))
    }

    #[inline(always)]
    fn store(self, out: &mut [u32]) {
        self.0.store(&mut out[..V::LANES]);
        self.1.store(&mut out[V::LANES..]);
    }

    #[inline(always)]
    fn add(self, other: Self) -> Self {
        X2(self.0.add(other.0), self.1.add(other.1))
    }

    #[inline(always)]
    fn xor(self, other: Self) -> Self {
        X2(self.0.xor(other.0), self.1.xor(other.1))
    }

    #[inline(always)]
    fn and(self, other: Self) -> Self {
        X2(self.0.and(other.0), self.1.and(other.1))
    }

    #[inline(always)]
    fn or(self, other: Self) -> Self {
        X2(self.0.or(other.0), self.1.or(other.1))
    }

    #[inline(always)]
    fn rotl(self, s: u32) -> Self {
        X2(self.0.rotl(s), self.1.rotl(s))
    }

    // Forward the derived ops so a half's ISA override (e.g. AVX-512
    // ternlog) is used; the trait defaults would re-derive them from the
    // pair's own and/or/xor and lose the fused forms.

    #[inline(always)]
    fn sel(self, t: Self, f: Self) -> Self {
        X2(self.0.sel(t.0, f.0), self.1.sel(t.1, f.1))
    }

    #[inline(always)]
    fn maj(self, b: Self, c: Self) -> Self {
        X2(self.0.maj(b.0, c.0), self.1.maj(b.1, c.1))
    }

    #[inline(always)]
    fn xor3(self, b: Self, c: Self) -> Self {
        X2(self.0.xor3(b.0, c.0), self.1.xor3(b.1, c.1))
    }

    #[inline(always)]
    fn md5i(self, c: Self, d: Self) -> Self {
        X2(self.0.md5i(c.0, d.0), self.1.md5i(c.1, d.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_derived_ops_match_bit_formulas() {
        let cases = [
            (0x0000_0000, 0xffff_ffff, 0x1234_5678),
            (0xdead_beef, 0x0f0f_0f0f, 0x8000_0001),
            (0xffff_ffff, 0x0000_0000, 0xcafe_babe),
        ];
        for (a, b, c) in cases {
            assert_eq!(a.sel(b, c), (a & b) | (!a & c));
            assert_eq!(a.maj(b, c), (a & b) | (a & c) | (b & c));
            assert_eq!(a.xor3(b, c), a ^ b ^ c);
            assert_eq!(a.md5i(b, c), b ^ (a | !c));
        }
    }

    #[test]
    fn x2_pairs_are_independent() {
        let v = X2::<u32>::load(&[7, 11]);
        let w = X2::<u32>::load(&[1, 2]);
        let mut out = [0u32; 2];
        v.add(w).store(&mut out);
        assert_eq!(out, [8, 13]);
        v.rotl(4).store(&mut out);
        assert_eq!(out, [7 << 4, 11 << 4]);
        assert_eq!(X2::<u32>::LANES, 2);
    }
}
