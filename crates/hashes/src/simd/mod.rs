//! Explicit-SIMD hash cores with runtime ISA detection.
//!
//! The paper's Section V answer to throughput is *per-architecture
//! specialization*: a kernel variant per device generation, each tuned
//! to that ISA's register width and instruction mix (the BarsWF
//! lineage). This module is the CPU version of that table: the
//! compression cores are written once against the [`Vec32`] op
//! vocabulary ([`cores`]) and instantiated per ISA —
//!
//! | ISA | register | keys/call (2× interleave) | extras |
//! |---------|----------|---------------------------|-------------------------|
//! | AVX2 | 8×u32 | 16 | — |
//! | AVX-512F| 16×u32 | 32 | `vprolvd`, `vpternlogd` |
//! | NEON | 4×u32 | 8 | — |
//!
//! Every width carries the Section V tricks: the 49-step reversed-MD5
//! forward half, the SHA-1 `a75` partial rounds, and a final state
//! layout the `TargetSet` first-word prefilter consumes directly.
//!
//! Detection is done **once** per process ([`SimdIsa::detect`], cached)
//! and capability is encoded in the type system: an ISA handle such as
//! [`Avx2`] can only be built by its checked constructor, so its hash
//! methods may enter the `#[target_feature]` shims with the handle
//! itself as the safety proof. Under Miri every probe reports
//! unavailable, so intrinsic paths are skipped cleanly by construction.
//!
//! [`Vec32`]: vec::Vec32

// Handle methods enter the `#[target_feature]` shims; the construction
// invariant (runtime detection) is each call's safety proof. Everything
// else in this file is safe code.
#![allow(unsafe_code)]

mod cores;
#[cfg(target_arch = "aarch64")]
mod neon;
mod vec;
#[cfg(target_arch = "x86_64")]
mod x86;

use std::sync::OnceLock;

use crate::lanes::LaneHasher;

/// An instruction-set architecture with an explicit-SIMD kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdIsa {
    /// x86-64 AVX2: 8×u32 registers.
    Avx2,
    /// x86-64 AVX-512F: 16×u32 registers, native rotate and ternary
    /// logic.
    Avx512,
    /// AArch64 NEON: 4×u32 registers.
    Neon,
}

impl SimdIsa {
    /// Every ISA, widest first (the preference order of
    /// [`SimdIsa::detect`]).
    pub const ALL: [SimdIsa; 3] = [SimdIsa::Avx512, SimdIsa::Avx2, SimdIsa::Neon];

    /// Parse a CLI argument (`avx2`, `avx512`, `neon`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "avx2" => Some(SimdIsa::Avx2),
            "avx512" => Some(SimdIsa::Avx512),
            "neon" => Some(SimdIsa::Neon),
            _ => None,
        }
    }

    /// Canonical name (round-trips through [`SimdIsa::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            SimdIsa::Avx2 => "avx2",
            SimdIsa::Avx512 => "avx512",
            SimdIsa::Neon => "neon",
        }
    }

    /// `u32` lanes per vector register.
    pub fn register_lanes(self) -> usize {
        match self {
            SimdIsa::Avx2 => 8,
            SimdIsa::Avx512 => 16,
            SimdIsa::Neon => 4,
        }
    }

    /// Keys tested per kernel call: two interleaved register blocks.
    pub fn batch_width(self) -> usize {
        2 * self.register_lanes()
    }

    /// True when the running CPU supports this ISA.
    ///
    /// Always false under Miri (the interpreter cannot execute vendor
    /// intrinsics), so every explicit-SIMD constructor returns `None`
    /// there and tests skip the intrinsic paths cleanly.
    pub fn is_available(self) -> bool {
        #[cfg(miri)]
        {
            let _ = self;
            false
        }
        #[cfg(not(miri))]
        {
            match self {
                #[cfg(target_arch = "x86_64")]
                SimdIsa::Avx2 => is_x86_feature_detected!("avx2"),
                #[cfg(target_arch = "x86_64")]
                SimdIsa::Avx512 => is_x86_feature_detected!("avx512f"),
                #[cfg(target_arch = "aarch64")]
                SimdIsa::Neon => std::arch::is_aarch64_feature_detected!("neon"),
                _ => false,
            }
        }
    }

    /// The widest ISA the running CPU supports, probed once per process
    /// and cached (the paper's "tune once at startup" rule).
    pub fn detect() -> Option<SimdIsa> {
        static DETECTED: OnceLock<Option<SimdIsa>> = OnceLock::new();
        *DETECTED.get_or_init(|| SimdIsa::ALL.into_iter().find(|isa| isa.is_available()))
    }
}

impl std::fmt::Display for SimdIsa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The CPU-feature probe results relevant to backend selection, for the
/// schema-3 `BENCH_cracker.json` `cpu_features` record and `eks bench`.
pub fn cpu_features() -> Vec<(&'static str, bool)> {
    vec![
        ("avx2", SimdIsa::Avx2.is_available()),
        ("avx512f", SimdIsa::Avx512.is_available()),
        ("neon", SimdIsa::Neon.is_available()),
    ]
}

/// Expand one ISA handle: a unit struct whose only constructor checks
/// runtime availability, plus a [`LaneHasher`] impl whose methods call
/// the `#[target_feature]` shims with the handle as the safety proof.
macro_rules! isa_handle {
    ($(#[$doc:meta])* $name:ident, $isa:expr, $arch:literal, $shims:path, $width:expr) => {
        $(#[$doc])*
        #[cfg(target_arch = $arch)]
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct $name(());

        #[cfg(target_arch = $arch)]
        impl $name {
            /// A handle iff the running CPU supports the ISA (never
            /// under Miri). The handle's existence is the proof each
            /// hash method relies on.
            pub fn new() -> Option<Self> {
                $isa.is_available().then_some(Self(()))
            }
        }

        #[cfg(target_arch = $arch)]
        impl LaneHasher<{ $width }> for $name {
            fn md5_batch(&self, blocks: &[[u32; 16]; $width]) -> [[u32; 4]; $width] {
                use $shims as shims;
                // SAFETY: `self` was constructed by `new`, which proved
                // the ISA is available on this CPU.
                unsafe { shims::md5(blocks) }
            }

            fn md4_batch(&self, blocks: &[[u32; 16]; $width]) -> [[u32; 4]; $width] {
                use $shims as shims;
                // SAFETY: as in `md5_batch` — construction proved the ISA.
                unsafe { shims::md4(blocks) }
            }

            fn sha1_batch(&self, blocks: &[[u32; 16]; $width]) -> [[u32; 5]; $width] {
                use $shims as shims;
                // SAFETY: as in `md5_batch` — construction proved the ISA.
                unsafe { shims::sha1(blocks) }
            }

            fn sha1_a75_batch(&self, blocks: &[[u32; 16]; $width]) -> [u32; $width] {
                use $shims as shims;
                // SAFETY: as in `md5_batch` — construction proved the ISA.
                unsafe { shims::sha1_a75(blocks) }
            }

            fn md5_forward49_batch(
                &self,
                template: &[u32; 16],
                w0s: &[u32; $width],
            ) -> [[u32; 4]; $width] {
                use $shims as shims;
                // SAFETY: as in `md5_batch` — construction proved the ISA.
                unsafe { shims::md5_forward49(template, w0s) }
            }
        }
    };
}

isa_handle!(
    /// Capability handle for the AVX2 kernels (16 keys per call).
    Avx2,
    SimdIsa::Avx2,
    "x86_64",
    crate::simd::x86::avx2,
    16
);
isa_handle!(
    /// Capability handle for the AVX-512F kernels (32 keys per call).
    Avx512,
    SimdIsa::Avx512,
    "x86_64",
    crate::simd::x86::avx512,
    32
);
isa_handle!(
    /// Capability handle for the NEON kernels (8 keys per call).
    Neon,
    SimdIsa::Neon,
    "aarch64",
    crate::simd::neon::neon_shims,
    8
);

/// A detected explicit-SIMD implementation: the dispatch vocabulary the
/// cracker's batched scan loop matches on to pick its lane width. Only
/// constructible when the ISA is actually available, so consumers never
/// need a fallback branch *inside* the hot loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdHasher {
    /// AVX2 kernels, 16 keys per call.
    #[cfg(target_arch = "x86_64")]
    Avx2(Avx2),
    /// AVX-512F kernels, 32 keys per call.
    #[cfg(target_arch = "x86_64")]
    Avx512(Avx512),
    /// NEON kernels, 8 keys per call.
    #[cfg(target_arch = "aarch64")]
    Neon(Neon),
}

impl SimdHasher {
    /// The implementation for `isa`, iff the running CPU supports it.
    pub fn new(isa: SimdIsa) -> Option<Self> {
        match isa {
            #[cfg(target_arch = "x86_64")]
            SimdIsa::Avx2 => Avx2::new().map(SimdHasher::Avx2),
            #[cfg(target_arch = "x86_64")]
            SimdIsa::Avx512 => Avx512::new().map(SimdHasher::Avx512),
            #[cfg(target_arch = "aarch64")]
            SimdIsa::Neon => Neon::new().map(SimdHasher::Neon),
            #[allow(unreachable_patterns)]
            _ => None,
        }
    }

    /// The widest available implementation ([`SimdIsa::detect`]).
    pub fn best() -> Option<Self> {
        SimdIsa::detect().and_then(Self::new)
    }

    /// The ISA this implementation runs on.
    pub fn isa(self) -> SimdIsa {
        match self {
            #[cfg(target_arch = "x86_64")]
            SimdHasher::Avx2(_) => SimdIsa::Avx2,
            #[cfg(target_arch = "x86_64")]
            SimdHasher::Avx512(_) => SimdIsa::Avx512,
            #[cfg(target_arch = "aarch64")]
            SimdHasher::Neon(_) => SimdIsa::Neon,
        }
    }

    /// Keys tested per kernel call.
    pub fn batch_width(self) -> usize {
        self.isa().batch_width()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isa_parse_round_trips() {
        for isa in SimdIsa::ALL {
            assert_eq!(SimdIsa::parse(isa.name()), Some(isa));
        }
        assert_eq!(SimdIsa::parse("sse2"), None);
    }

    #[test]
    fn widths_are_two_register_blocks() {
        assert_eq!(SimdIsa::Avx2.batch_width(), 16);
        assert_eq!(SimdIsa::Avx512.batch_width(), 32);
        assert_eq!(SimdIsa::Neon.batch_width(), 8);
    }

    #[test]
    fn detect_is_stable_and_consistent_with_availability() {
        let first = SimdIsa::detect();
        assert_eq!(first, SimdIsa::detect(), "cached probe is stable");
        if let Some(isa) = first {
            assert!(isa.is_available());
            // detect() promises the *widest*: nothing wider is available.
            for wider in SimdIsa::ALL.iter().take_while(|i| **i != isa) {
                assert!(!wider.is_available(), "{wider} is wider and available");
            }
        } else {
            for isa in SimdIsa::ALL {
                assert!(!isa.is_available());
            }
        }
    }

    #[test]
    fn hasher_construction_mirrors_availability() {
        for isa in SimdIsa::ALL {
            assert_eq!(
                SimdHasher::new(isa).is_some(),
                isa.is_available(),
                "{isa}: handle construction must equal the probe"
            );
            if let Some(h) = SimdHasher::new(isa) {
                assert_eq!(h.isa(), isa);
                assert_eq!(h.batch_width(), isa.batch_width());
            }
        }
    }

    #[test]
    fn cpu_features_reports_every_probe() {
        let feats = cpu_features();
        assert_eq!(feats.len(), 3);
        let avx2 = feats.iter().find(|(n, _)| *n == "avx2").expect("avx2 row");
        assert_eq!(avx2.1, SimdIsa::Avx2.is_available());
    }
}
