//! Merkle–Damgård padding helpers for single-block messages.
//!
//! Candidate keys are at most 20 bytes (Section IV-A), so every candidate
//! fits the 55-byte single-block limit; cracking kernels therefore pad the
//! key once into a 16-word block and only mutate the word(s) that hold the
//! varying characters. The paper notes that for strings shorter than 57
//! characters execution time is independent of the length, and for longer
//! strings the intermediate state of shared leading blocks can be cached.

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

/// Longest message that still fits one 64-byte block after the mandatory
/// `0x80` byte and the 8-byte length field.
pub const MAX_SINGLE_BLOCK_MSG: usize = 55;

/// Pad `msg` into one little-endian 16-word block (MD5 convention).
///
/// # Panics
/// Panics when `msg.len() > MAX_SINGLE_BLOCK_MSG`.
pub fn pad_md5_block(msg: &[u8]) -> [u32; 16] {
    let bytes = pad_bytes(msg);
    let mut w = [0u32; 16];
    for (i, chunk) in bytes.chunks_exact(4).enumerate() {
        w[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
    }
    // MD5 appends the bit length as a 64-bit little-endian integer; the
    // byte-level padding below already wrote zeros, so overwrite words
    // 14 and 15.
    let bitlen = (msg.len() as u64) * 8;
    w[14] = bitlen as u32;
    w[15] = (bitlen >> 32) as u32;
    w
}

/// Pad `msg` into one big-endian 16-word block (SHA-1/SHA-256 convention).
///
/// # Panics
/// Panics when `msg.len() > MAX_SINGLE_BLOCK_MSG`.
pub fn pad_sha_block(msg: &[u8]) -> [u32; 16] {
    let bytes = pad_bytes(msg);
    let mut w = [0u32; 16];
    for (i, chunk) in bytes.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
    }
    let bitlen = (msg.len() as u64) * 8;
    w[14] = (bitlen >> 32) as u32;
    w[15] = bitlen as u32;
    w
}

fn pad_bytes(msg: &[u8]) -> [u8; 64] {
    assert!(
        msg.len() <= MAX_SINGLE_BLOCK_MSG,
        "message of {} bytes does not fit a single block",
        msg.len()
    );
    let mut block = [0u8; 64];
    block[..msg.len()].copy_from_slice(msg);
    block[msg.len()] = 0x80;
    block
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn md5_padding_layout() {
        let w = pad_md5_block(b"abc");
        // "abc" + 0x80 little-endian in word 0.
        assert_eq!(w[0], u32::from_le_bytes([b'a', b'b', b'c', 0x80]));
        assert_eq!(w[1], 0);
        assert_eq!(w[14], 24, "bit length low word");
        assert_eq!(w[15], 0);
    }

    #[test]
    fn sha_padding_layout() {
        let w = pad_sha_block(b"abc");
        assert_eq!(w[0], u32::from_be_bytes([b'a', b'b', b'c', 0x80]));
        assert_eq!(w[15], 24, "bit length low word is last in BE");
        assert_eq!(w[14], 0);
    }

    #[test]
    fn empty_message() {
        let w = pad_md5_block(b"");
        assert_eq!(w[0], 0x80);
        assert_eq!(w[14], 0);
    }

    #[test]
    fn max_length_message() {
        let msg = [b'x'; MAX_SINGLE_BLOCK_MSG];
        let w = pad_md5_block(&msg);
        assert_eq!(w[14], (55 * 8) as u32);
        // 0x80 lands in byte 55, i.e. word 13's last byte.
        assert_eq!(w[13] >> 24, 0x80);
    }

    #[test]
    #[should_panic]
    fn oversize_message_panics() {
        pad_md5_block(&[0u8; 56]);
    }
}
