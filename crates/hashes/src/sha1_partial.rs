//! SHA-1 early-exit testing — the SHA-1 analogue of the MD5 reversal
//! (Section V-B: "The same kind of analysis and optimizations were
//! applied to the implementation of the SHA1 hash function").
//!
//! SHA-1's message schedule blocks a true reversal: every late `W[i]`
//! depends on `W[0]`, so the final rounds cannot be inverted
//! candidate-independently. What *does* transfer is the early exit: the
//! digest's `e` component equals `rotl30(a75) + IV[4]`, so after round 76
//! a candidate can be **rejected** against the precomputed
//! `rotr30(e_target − IV[4])` — skipping rounds 76..=79 and the remaining
//! schedule expansion in the (overwhelming) common case. A candidate that
//! survives the check is confirmed with the full computation.

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use crate::padding::pad_sha_block;
use crate::sha1::{round, sha1_compress, state_to_digest, IV};

/// Rounds executed per candidate in the average case.
pub const PARTIAL_ROUNDS: usize = 76;

/// A prepared early-exit SHA-1 test for a fixed target digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sha1PartialSearch {
    /// The target digest.
    target: [u8; 20],
    /// `rotr30(e_target − IV[4])` — what `a75` must equal.
    a75_expected: u32,
}

impl Sha1PartialSearch {
    /// Prepare a search against `target`.
    pub fn new(target: &[u8; 20]) -> Self {
        let e_target = u32::from_be_bytes(target[16..20].try_into().expect("4 bytes"));
        let a75_expected = e_target.wrapping_sub(IV[4]).rotate_right(30);
        Self { target: *target, a75_expected }
    }

    /// Test a candidate key (≤ 55 bytes): 76 rounds, then the early
    /// check; only a passing candidate pays for the confirmation.
    pub fn matches_key(&self, key: &[u8]) -> bool {
        let block = pad_sha_block(key);
        self.matches_block(&block)
    }

    /// Test a pre-padded block.
    pub fn matches_block(&self, block: &[u32; 16]) -> bool {
        // Rolling schedule: only the first 76 expansions are computed.
        let mut w = [0u32; PARTIAL_ROUNDS];
        w[..16].copy_from_slice(block);
        for i in 16..PARTIAL_ROUNDS {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let mut s = IV;
        for (i, &wi) in w.iter().enumerate() {
            s = round(i, s, wi);
        }
        if s[0] != self.a75_expected {
            return false; // the common case: rejected 4 rounds early
        }
        // Rare survivor: confirm with the full hash (collisions of the
        // single component occur with probability 2^-32).
        state_to_digest(sha1_compress(IV, block)) == self.target
    }

    /// The expected `a75` value (for tests).
    pub fn a75_expected(&self) -> u32 {
        self.a75_expected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha1::{expand_schedule, sha1};

    #[test]
    fn finds_the_planted_key() {
        let key = b"Zeb4";
        let target = sha1(key);
        let search = Sha1PartialSearch::new(&target);
        assert!(search.matches_key(key));
        assert!(!search.matches_key(b"Zeb5"));
        assert!(!search.matches_key(b"AAAA"));
    }

    #[test]
    fn agrees_with_full_sha1_on_many_candidates() {
        let target = sha1(b"q7Gw");
        let search = Sha1PartialSearch::new(&target);
        for i in 0..20_000u32 {
            let key = format!("k{i:05}");
            let full = sha1(key.as_bytes()) == target;
            assert_eq!(search.matches_key(key.as_bytes()), full, "key {key}");
        }
        assert!(search.matches_key(b"q7Gw"));
    }

    #[test]
    fn a75_identity_holds() {
        // e_final = rotl30(a75) + IV[4] for arbitrary inputs.
        for key in [&b"x"[..], b"hello", b"0123456789abcdefghij"] {
            let block = pad_sha_block(key);
            let sched = expand_schedule(&block);
            let mut s = IV;
            for i in 0..76 {
                s = round(i, s, sched[i]);
            }
            let full = sha1_compress(IV, &block);
            assert_eq!(full[4], s[0].rotate_left(30).wrapping_add(IV[4]), "key {key:?}");
        }
    }

    #[test]
    fn works_for_longer_keys() {
        let key = b"correct horse battery";
        // 21 bytes exceeds MAX_KEY_LEN for keyspaces but not the block.
        let target = sha1(key);
        let search = Sha1PartialSearch::new(&target);
        assert!(search.matches_key(key));
    }
}
