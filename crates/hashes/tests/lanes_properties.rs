//! Seeded property tests for the lane-parallel compression cores: every
//! lane of every batched algorithm — forward MD5/MD4/SHA-1, the 49-step
//! reversed-MD5 filter, the 76-round SHA-1 partial — must be bit-for-bit
//! equal to its scalar reference on random single-block messages, at both
//! supported widths (L = 8 and L = 16).

use eks_core::prop::{forall, Rng};
use eks_hashes::lanes::{md4_lanes, md5_forward49_lanes, md5_lanes, sha1_a75_lanes, sha1_lanes};
use eks_hashes::md5_reverse::FORWARD_STEPS;
use eks_hashes::padding::{pad_md5_block, pad_sha_block, MAX_SINGLE_BLOCK_MSG};
use eks_hashes::{md4, md5, sha1, Md5PrefixSearch};

/// A random message of random length (0..=55 bytes, arbitrary bytes).
fn random_msg(rng: &mut Rng) -> Vec<u8> {
    let len = rng.index(MAX_SINGLE_BLOCK_MSG + 1);
    rng.vec(len, |r| r.u32() as u8)
}

/// `L` random pre-padded blocks and the messages they came from.
fn random_blocks<const L: usize>(
    rng: &mut Rng,
    pad: fn(&[u8]) -> [u32; 16],
) -> ([[u32; 16]; L], Vec<Vec<u8>>) {
    let msgs: Vec<Vec<u8>> = (0..L).map(|_| random_msg(rng)).collect();
    let mut blocks = [[0u32; 16]; L];
    for (b, m) in blocks.iter_mut().zip(&msgs) {
        *b = pad(m);
    }
    (blocks, msgs)
}

#[test]
fn every_md5_lane_equals_scalar() {
    forall("every_md5_lane_equals_scalar", 64, |rng| {
        let (blocks, msgs) = random_blocks::<8>(rng, pad_md5_block);
        for (l, state) in md5_lanes(&blocks).iter().enumerate() {
            assert_eq!(*state, md5::md5_compress(md5::IV, &blocks[l]), "lane {l}");
            assert_eq!(md5::state_to_digest(*state), md5::md5_single_block(&msgs[l]));
        }
        let (blocks, msgs) = random_blocks::<16>(rng, pad_md5_block);
        for (l, state) in md5_lanes(&blocks).iter().enumerate() {
            assert_eq!(*state, md5::md5_compress(md5::IV, &blocks[l]), "lane {l}");
            assert_eq!(md5::state_to_digest(*state), md5::md5_single_block(&msgs[l]));
        }
    });
}

#[test]
fn every_md4_lane_equals_scalar() {
    forall("every_md4_lane_equals_scalar", 64, |rng| {
        let (blocks, msgs) = random_blocks::<8>(rng, pad_md5_block);
        for (l, state) in md4_lanes(&blocks).iter().enumerate() {
            assert_eq!(*state, md4::md4_compress(md4::IV, &blocks[l]), "lane {l}");
            assert_eq!(md5::state_to_digest(*state), md4::md4_single_block(&msgs[l]));
        }
        let (blocks, _) = random_blocks::<16>(rng, pad_md5_block);
        for (l, state) in md4_lanes(&blocks).iter().enumerate() {
            assert_eq!(*state, md4::md4_compress(md4::IV, &blocks[l]), "lane {l}");
        }
    });
}

#[test]
fn md4_lanes_reproduce_ntlm_digests() {
    // NTLM = MD4 over the UTF-16LE expansion; the lane path sees the
    // expanded bytes as an ordinary single-block message.
    forall("md4_lanes_reproduce_ntlm_digests", 64, |rng| {
        let passwords: Vec<Vec<u8>> = (0..8)
            .map(|_| {
                let len = rng.index(21); // ≤ 20 chars → ≤ 40 expanded bytes
                rng.vec(len, |r| r.range(0x20, 0x7e) as u8)
            })
            .collect();
        let mut blocks = [[0u32; 16]; 8];
        for (b, p) in blocks.iter_mut().zip(&passwords) {
            let utf16: Vec<u8> = p.iter().flat_map(|&c| [c, 0]).collect();
            *b = pad_md5_block(&utf16);
        }
        for (l, state) in md4_lanes(&blocks).iter().enumerate() {
            assert_eq!(md5::state_to_digest(*state), md4::ntlm(&passwords[l]), "lane {l}");
        }
    });
}

#[test]
fn every_sha1_lane_equals_scalar() {
    forall("every_sha1_lane_equals_scalar", 64, |rng| {
        let (blocks, msgs) = random_blocks::<8>(rng, pad_sha_block);
        for (l, state) in sha1_lanes(&blocks).iter().enumerate() {
            assert_eq!(*state, sha1::sha1_compress(sha1::IV, &blocks[l]), "lane {l}");
            assert_eq!(sha1::state_to_digest(*state), sha1::sha1_single_block(&msgs[l]));
        }
        let (blocks, _) = random_blocks::<16>(rng, pad_sha_block);
        for (l, state) in sha1_lanes(&blocks).iter().enumerate() {
            assert_eq!(*state, sha1::sha1_compress(sha1::IV, &blocks[l]), "lane {l}");
        }
    });
}

#[test]
fn every_forward49_lane_equals_scalar_steps() {
    // The reversed-MD5 forward half: lanes share words 1..16 and differ
    // only in w[0]; each lane must equal 49 scalar steps in rotating form.
    forall("every_forward49_lane_equals_scalar_steps", 64, |rng| {
        let mut template = [0u32; 16];
        for w in template.iter_mut() {
            *w = rng.u32();
        }
        let mut w0s = [0u32; 16];
        for w in w0s.iter_mut() {
            *w = rng.u32();
        }
        let states = md5_forward49_lanes(&template, &w0s);
        for (l, got) in states.iter().enumerate() {
            let mut w = template;
            w[0] = w0s[l];
            let mut s = md5::IV;
            for i in 0..FORWARD_STEPS {
                s = md5::step(i, s, &w);
            }
            assert_eq!(*got, s, "lane {l}");
        }
    });
}

#[test]
fn reversed_filter_lanes_agree_with_scalar_and_accept_the_planted_key() {
    forall("reversed_filter_lanes_agree_with_scalar", 48, |rng| {
        // A real target: some key of a fixed random length; candidates
        // vary only the leading 4 bytes, as in FirstCharFastest order.
        let key_len = rng.range(4, 12) as usize;
        let key = rng.vec(key_len, |r| r.range(0x21, 0x7e) as u8);
        let target = md5::md5_single_block(&key);
        let search = Md5PrefixSearch::from_sample_key(&target, &key);

        let mut w0s = [0u32; 8];
        for w in w0s.iter_mut() {
            *w = rng.u32();
        }
        // Plant the true first word in a random lane.
        let plant = rng.index(8);
        w0s[plant] = u32::from_le_bytes(key[..4].try_into().expect("4 bytes"));

        let got = search.matches_w0_lanes(&w0s);
        for (l, &hit) in got.iter().enumerate() {
            assert_eq!(hit, search.matches_w0(w0s[l]), "lane {l}");
        }
        assert!(got[plant], "the planted key's lane must pass the filter");
    });
}

#[test]
fn every_a75_lane_equals_scalar_partial_rounds() {
    forall("every_a75_lane_equals_scalar_partial_rounds", 64, |rng| {
        let (blocks, msgs) = random_blocks::<8>(rng, pad_sha_block);
        let got = sha1_a75_lanes(&blocks);
        for l in 0..8 {
            // Scalar reference: 76 rounds over the rolling schedule.
            let w = sha1::expand_schedule(&blocks[l]);
            let mut s = sha1::IV;
            for (i, &wi) in w.iter().enumerate().take(76) {
                s = sha1::round(i, s, wi);
            }
            assert_eq!(got[l], s[0], "lane {l}");
            // Cross-check with the search's acceptance rule: the lane's
            // own digest as target must match exactly this value.
            let target = sha1::sha1_single_block(&msgs[l]);
            let search = eks_hashes::Sha1PartialSearch::new(&target);
            assert_eq!(got[l], search.a75_expected(), "lane {l} self-target");
        }
    });
}
