//! Property-based tests for the hash layer: streaming/chunking invariance,
//! single-block agreement, and — the load-bearing one — the reversed-MD5
//! test agreeing with the full forward computation on arbitrary inputs.

use eks_core::prop::{forall, Rng};
use eks_hashes::md5::{md5, md5_single_block};
use eks_hashes::md5_reverse::{full_forward_matches, Md5PrefixSearch};
use eks_hashes::padding::pad_md5_block;
use eks_hashes::sha1::{sha1, sha1_single_block};
use eks_hashes::sha256::{leading_zero_bits, sha256};
use eks_hashes::Digest;

fn arb_bytes(rng: &mut Rng, max_len: usize) -> Vec<u8> {
    let len = rng.index(max_len + 1);
    rng.vec(len, |r| r.u32() as u8)
}

/// Chunked updates produce the same MD5/SHA-1/SHA-256 as a single update.
#[test]
fn chunking_invariant() {
    forall("chunking_invariant", 128, |rng| {
        let msg = arb_bytes(rng, 511);
        let cut = rng.range(1, 63) as usize;

        let mut h = eks_hashes::Md5::new();
        for chunk in msg.chunks(cut) {
            h.update(chunk);
        }
        assert_eq!(h.finalize_fixed(), md5(&msg));

        let mut h = eks_hashes::Sha1::new();
        for chunk in msg.chunks(cut) {
            h.update(chunk);
        }
        assert_eq!(h.finalize_fixed(), sha1(&msg));

        let mut h = eks_hashes::Sha256::new();
        for chunk in msg.chunks(cut) {
            h.update(chunk);
        }
        assert_eq!(h.finalize_fixed(), sha256(&msg));
    });
}

/// The kernel single-block fast paths agree with the general hashers.
#[test]
fn single_block_paths_agree() {
    forall("single_block_paths_agree", 256, |rng| {
        let msg = arb_bytes(rng, 55);
        assert_eq!(md5_single_block(&msg), md5(&msg));
        assert_eq!(sha1_single_block(&msg), sha1(&msg));
    });
}

/// The reversed-MD5 prefix search accepts exactly what a full forward
/// MD5 accepts, for arbitrary targets and candidate first words.
#[test]
fn reversal_agrees_with_forward() {
    forall("reversal_agrees_with_forward", 256, |rng| {
        let suffix_len = rng.index(20);
        let suffix = rng.vec(suffix_len, |r| r.range(0x20, 0x7e) as u8);
        let planted_w0 = rng.u32();
        let probe_w0 = rng.u32();

        // Build a template from a sample key "AAAA" + suffix.
        let mut sample = b"AAAA".to_vec();
        sample.extend_from_slice(&suffix);
        let template = pad_md5_block(&sample);
        // Plant a target produced by planted_w0 on this template.
        let mut w = template;
        w[0] = planted_w0;
        let state = eks_hashes::md5::md5_compress(eks_hashes::md5::IV, &w);
        let target = eks_hashes::md5::state_to_digest(state);

        let search = Md5PrefixSearch::new(&target, template);
        assert!(search.matches_w0(planted_w0), "must accept the planted word");
        assert_eq!(
            search.matches_w0(probe_w0),
            full_forward_matches(&target, &template, probe_w0)
        );
    });
}

/// Digests are deterministic and (practically) collision-free under a
/// single changed byte.
#[test]
fn bit_flip_changes_digest() {
    forall("bit_flip_changes_digest", 128, |rng| {
        let len = rng.range(1, 127) as usize;
        let msg = rng.vec(len, |r| r.u32() as u8);
        let at = rng.index(msg.len());
        let bit = rng.range(0, 7) as u8;
        let mut flipped = msg.clone();
        flipped[at] ^= 1 << bit;
        assert_ne!(md5(&msg), md5(&flipped));
        assert_ne!(sha1(&msg), sha1(&flipped));
        assert_ne!(sha256(&msg), sha256(&flipped));
    });
}

/// leading_zero_bits is the position of the highest set bit.
#[test]
fn leading_zeros_consistent() {
    forall("leading_zeros_consistent", 256, |rng| {
        let len = rng.range(1, 32) as usize;
        let digest = rng.vec(len, |r| r.u32() as u8);
        let bits = leading_zero_bits(&digest);
        let total_bits = digest.len() as u32 * 8;
        assert!(bits <= total_bits);
        if bits < total_bits {
            // The bit at position `bits` is set.
            let byte = (bits / 8) as usize;
            let in_byte = bits % 8;
            assert!(digest[byte] & (0x80 >> in_byte) != 0);
            // All earlier bits are clear.
            for b in 0..byte {
                assert_eq!(digest[b], 0);
            }
        }
    });
}
