//! Property-based tests for the hash layer: streaming/chunking invariance,
//! single-block agreement, and — the load-bearing one — the reversed-MD5
//! test agreeing with the full forward computation on arbitrary inputs.

use eks_hashes::md5::{md5, md5_single_block};
use eks_hashes::md5_reverse::{full_forward_matches, Md5PrefixSearch};
use eks_hashes::padding::pad_md5_block;
use eks_hashes::sha1::{sha1, sha1_single_block};
use eks_hashes::sha256::{leading_zero_bits, sha256};
use eks_hashes::Digest;
use proptest::prelude::*;

proptest! {
    /// Chunked updates produce the same MD5 as a single update.
    #[test]
    fn md5_chunking_invariant(msg in proptest::collection::vec(any::<u8>(), 0..512), cut in 1usize..64) {
        let whole = md5(&msg);
        let mut h = eks_hashes::Md5::new();
        for chunk in msg.chunks(cut) {
            h.update(chunk);
        }
        prop_assert_eq!(h.finalize_fixed(), whole);
    }

    /// Same for SHA-1.
    #[test]
    fn sha1_chunking_invariant(msg in proptest::collection::vec(any::<u8>(), 0..512), cut in 1usize..64) {
        let whole = sha1(&msg);
        let mut h = eks_hashes::Sha1::new();
        for chunk in msg.chunks(cut) {
            h.update(chunk);
        }
        prop_assert_eq!(h.finalize_fixed(), whole);
    }

    /// Same for SHA-256.
    #[test]
    fn sha256_chunking_invariant(msg in proptest::collection::vec(any::<u8>(), 0..512), cut in 1usize..64) {
        let whole = sha256(&msg);
        let mut h = eks_hashes::Sha256::new();
        for chunk in msg.chunks(cut) {
            h.update(chunk);
        }
        prop_assert_eq!(h.finalize_fixed(), whole);
    }

    /// The kernel single-block fast paths agree with the general hashers.
    #[test]
    fn single_block_paths_agree(msg in proptest::collection::vec(any::<u8>(), 0..=55)) {
        prop_assert_eq!(md5_single_block(&msg), md5(&msg));
        prop_assert_eq!(sha1_single_block(&msg), sha1(&msg));
    }

    /// The reversed-MD5 prefix search accepts exactly what a full forward
    /// MD5 accepts, for arbitrary targets and candidate first words.
    #[test]
    fn reversal_agrees_with_forward(
        suffix in proptest::collection::vec(0x20u8..0x7f, 0..20),
        planted_w0 in any::<u32>(),
        probe_w0 in any::<u32>(),
    ) {
        // Build a template from a sample key "AAAA" + suffix.
        let mut sample = b"AAAA".to_vec();
        sample.extend_from_slice(&suffix);
        let template = pad_md5_block(&sample);
        // Plant a target produced by planted_w0 on this template.
        let mut w = template;
        w[0] = planted_w0;
        let state = eks_hashes::md5::md5_compress(eks_hashes::md5::IV, &w);
        let target = eks_hashes::md5::state_to_digest(state);

        let search = Md5PrefixSearch::new(&target, template);
        prop_assert!(search.matches_w0(planted_w0), "must accept the planted word");
        prop_assert_eq!(
            search.matches_w0(probe_w0),
            full_forward_matches(&target, &template, probe_w0)
        );
    }

    /// Digests are deterministic and (practically) collision-free under a
    /// single changed byte.
    #[test]
    fn bit_flip_changes_digest(msg in proptest::collection::vec(any::<u8>(), 1..128), at in 0usize..128, bit in 0u8..8) {
        let at = at % msg.len();
        let mut flipped = msg.clone();
        flipped[at] ^= 1 << bit;
        prop_assert_ne!(md5(&msg), md5(&flipped));
        prop_assert_ne!(sha1(&msg), sha1(&flipped));
        prop_assert_ne!(sha256(&msg), sha256(&flipped));
    }

    /// leading_zero_bits is the position of the highest set bit.
    #[test]
    fn leading_zeros_consistent(digest in proptest::collection::vec(any::<u8>(), 1..33)) {
        let bits = leading_zero_bits(&digest);
        let total_bits = digest.len() as u32 * 8;
        prop_assert!(bits <= total_bits);
        if bits < total_bits {
            // The bit at position `bits` is set.
            let byte = (bits / 8) as usize;
            let in_byte = bits % 8;
            prop_assert!(digest[byte] & (0x80 >> in_byte) != 0);
            // All earlier bits are clear.
            for b in 0..byte {
                prop_assert_eq!(digest[b], 0);
            }
        }
    }
}
