//! Seeded property tests for the explicit-SIMD kernels: on every ISA the
//! running CPU supports, every lane of every batched algorithm — forward
//! MD5/MD4/SHA-1, the 49-step reversed-MD5 forward half, the 76-round
//! SHA-1 `a75` partial — must be bit-for-bit equal to its scalar
//! reference on random single-block messages.
//!
//! The checks are written once, generic over [`LaneHasher`], and
//! instantiated per capability handle (AVX2 = 16 keys, AVX-512 = 32,
//! NEON = 8). A handle constructor returning `None` — an unsupported
//! ISA, or any run under Miri, where vendor intrinsics cannot execute —
//! skips that ISA's instantiation cleanly; the test then proves exactly
//! the set of kernels the host can run.

use eks_core::prop::{forall, Rng};
use eks_hashes::md5_reverse::FORWARD_STEPS;
use eks_hashes::padding::{pad_md5_block, pad_sha_block, MAX_SINGLE_BLOCK_MSG};
use eks_hashes::{md4, md5, sha1, LaneHasher};

/// A random message of random length (0..=55 bytes, arbitrary bytes).
fn random_msg(rng: &mut Rng) -> Vec<u8> {
    let len = rng.index(MAX_SINGLE_BLOCK_MSG + 1);
    rng.vec(len, |r| r.u32() as u8)
}

/// `L` random pre-padded blocks.
fn random_blocks<const L: usize>(rng: &mut Rng, pad: fn(&[u8]) -> [u32; 16]) -> [[u32; 16]; L] {
    let mut blocks = [[0u32; 16]; L];
    for b in blocks.iter_mut() {
        *b = pad(&random_msg(rng));
    }
    blocks
}

/// Every batched kernel of `hasher` against its scalar reference, at the
/// hasher's native width.
fn check_hasher<const L: usize, H: LaneHasher<L>>(name: &'static str, hasher: H) {
    forall(name, 48, |rng| {
        // Forward MD5: each lane equals the scalar compression.
        let blocks = random_blocks::<L>(rng, pad_md5_block);
        for (l, state) in hasher.md5_batch(&blocks).iter().enumerate() {
            let b = blocks.get(l).expect("lane block");
            assert_eq!(*state, md5::md5_compress(md5::IV, b), "{name} md5 lane {l}");
        }

        // Forward MD4 (the NTLM core).
        let blocks = random_blocks::<L>(rng, pad_md5_block);
        for (l, state) in hasher.md4_batch(&blocks).iter().enumerate() {
            let b = blocks.get(l).expect("lane block");
            assert_eq!(*state, md4::md4_compress(md4::IV, b), "{name} md4 lane {l}");
        }

        // Forward SHA-1.
        let blocks = random_blocks::<L>(rng, pad_sha_block);
        for (l, state) in hasher.sha1_batch(&blocks).iter().enumerate() {
            let b = blocks.get(l).expect("lane block");
            assert_eq!(*state, sha1::sha1_compress(sha1::IV, b), "{name} sha1 lane {l}");
        }

        // SHA-1 `a75` partial: 76 scalar rounds, newest register.
        let blocks = random_blocks::<L>(rng, pad_sha_block);
        for (l, &a75) in hasher.sha1_a75_batch(&blocks).iter().enumerate() {
            let b = blocks.get(l).expect("lane block");
            let w = sha1::expand_schedule(b);
            let mut s = sha1::IV;
            for (i, &wi) in w.iter().enumerate().take(76) {
                s = sha1::round(i, s, wi);
            }
            assert_eq!(a75, s[0], "{name} a75 lane {l}");
        }

        // Reversed-MD5 forward half: lanes share words 1..16, differ only
        // in w[0]; each lane equals 49 scalar steps in rotating form.
        let mut template = [0u32; 16];
        for w in template.iter_mut() {
            *w = rng.u32();
        }
        let mut w0s = [0u32; L];
        for w in w0s.iter_mut() {
            *w = rng.u32();
        }
        for (l, got) in hasher.md5_forward49_batch(&template, &w0s).iter().enumerate() {
            let mut w = template;
            w[0] = *w0s.get(l).expect("lane w0");
            let mut s = md5::IV;
            for i in 0..FORWARD_STEPS {
                s = md5::step(i, s, &w);
            }
            assert_eq!(*got, s, "{name} forward49 lane {l}");
        }
    });
}

#[cfg(target_arch = "x86_64")]
#[test]
fn avx2_kernels_equal_scalar_on_supported_hosts() {
    match eks_hashes::simd::Avx2::new() {
        Some(h) => check_hasher::<16, _>("avx2_kernels_equal_scalar", h),
        None => eprintln!("skipped: AVX2 unavailable on this host"),
    }
}

#[cfg(target_arch = "x86_64")]
#[test]
fn avx512_kernels_equal_scalar_on_supported_hosts() {
    match eks_hashes::simd::Avx512::new() {
        Some(h) => check_hasher::<32, _>("avx512_kernels_equal_scalar", h),
        None => eprintln!("skipped: AVX-512F unavailable on this host"),
    }
}

#[cfg(target_arch = "aarch64")]
#[test]
fn neon_kernels_equal_scalar_on_supported_hosts() {
    match eks_hashes::simd::Neon::new() {
        Some(h) => check_hasher::<8, _>("neon_kernels_equal_scalar", h),
        None => eprintln!("skipped: NEON unavailable on this host"),
    }
}

/// The autovectorized fallback satisfies the same trait contract, at
/// both of its supported widths — so `AutoVec` and the explicit handles
/// are interchangeable wherever a [`LaneHasher`] is expected.
#[test]
fn autovec_fallback_satisfies_the_same_contract() {
    check_hasher::<8, _>("autovec8_kernels_equal_scalar", eks_hashes::AutoVec);
    check_hasher::<16, _>("autovec16_kernels_equal_scalar", eks_hashes::AutoVec);
}
