//! Structured tracing: bounded, lock-striped span/event records drained
//! to JSONL.
//!
//! A [`TraceSink`] holds a fixed number of stripes, each a mutex around a
//! bounded ring. Writers pick a stripe from their worker id, so two
//! workers almost never contend on the same lock; when a ring is full the
//! oldest record in that stripe is dropped and a drop counter ticks, so a
//! long run can never grow memory without bound. Records are drained in
//! timestamp order and rendered one JSON object per line (the schema is
//! documented on [`TraceRecord`] and checked by
//! [`crate::parse::parse_trace_jsonl`]).

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::metrics::json_string;

/// Stripe count: worker ids spread across this many independent rings.
const STRIPES: usize = 8;

/// Default per-stripe capacity (records) when none is given.
pub const DEFAULT_STRIPE_CAPACITY: usize = 8192;

/// Whether a record measures a duration or marks an instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A timed region: `ts_ns` is the start, `dur_ns` the length.
    Span,
    /// An instantaneous marker: `dur_ns` is 0.
    Event,
}

impl TraceKind {
    /// The string used in the JSONL `kind` field.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceKind::Span => "span",
            TraceKind::Event => "event",
        }
    }
}

/// One trace record. The JSONL schema is one object per line with
/// exactly these keys, in this order:
///
/// ```json
/// {"ts_ns": 120, "dur_ns": 480, "kind": "span", "name": "scan",
///  "worker": 0, "device": "cpu-lanes8", "fields": {"tested": "4096"}}
/// ```
///
/// - `ts_ns` (integer): start time in nanoseconds on the run's clock.
/// - `dur_ns` (integer): span length; always 0 for events.
/// - `kind` (string): `"span"` or `"event"`.
/// - `name` (string): what was measured (`scan`, `round`, `steal`, ...).
/// - `worker` (integer or null): dispatcher worker id, when attributable.
/// - `device` (string or null): device/backend label, when attributable.
/// - `fields` (object, string values): free-form details.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Start time (spans) or occurrence time (events), in clock ns.
    pub ts_ns: u64,
    /// Span duration in ns; 0 for events.
    pub dur_ns: u64,
    /// Span or event.
    pub kind: TraceKind,
    /// Record name.
    pub name: String,
    /// Dispatcher worker id, when the record belongs to one worker.
    pub worker: Option<usize>,
    /// Device or backend label, when attributable.
    pub device: Option<String>,
    /// Extra key/value details (values kept as strings).
    pub fields: Vec<(String, String)>,
}

impl TraceRecord {
    /// Render this record as its JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        let worker = match self.worker {
            Some(w) => w.to_string(),
            None => "null".into(),
        };
        let device = match &self.device {
            Some(d) => json_string(d),
            None => "null".into(),
        };
        let fields = self
            .fields
            .iter()
            .map(|(k, v)| format!("{}: {}", json_string(k), json_string(v)))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"ts_ns\": {}, \"dur_ns\": {}, \"kind\": \"{}\", \"name\": {}, \"worker\": {worker}, \"device\": {device}, \"fields\": {{{fields}}}}}",
            self.ts_ns,
            self.dur_ns,
            self.kind.as_str(),
            json_string(&self.name),
        )
    }
}

struct Stripe {
    ring: Mutex<VecDeque<TraceRecord>>,
}

/// The bounded, lock-striped trace buffer.
pub struct TraceSink {
    stripes: Vec<Stripe>,
    capacity: usize,
    dropped: AtomicU64,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("stripes", &self.stripes.len())
            .field("capacity", &self.capacity)
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for TraceSink {
    fn default() -> Self {
        Self::new(DEFAULT_STRIPE_CAPACITY)
    }
}

impl TraceSink {
    /// A sink whose stripes each hold up to `capacity` records.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            stripes: (0..STRIPES).map(|_| Stripe { ring: Mutex::new(VecDeque::new()) }).collect(),
            capacity,
            dropped: AtomicU64::new(0),
        }
    }

    /// Append a record, evicting the oldest in its stripe when full.
    pub fn push(&self, record: TraceRecord) {
        let stripe = &self.stripes[record.worker.unwrap_or(STRIPES - 1) % STRIPES];
        let mut ring = stripe.ring.lock().expect("trace stripe");
        if ring.len() >= self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(record);
    }

    /// Records evicted because a stripe overflowed.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copy out every record, merged across stripes in timestamp order
    /// (stable for equal timestamps). The sink keeps its contents.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        let mut out: Vec<TraceRecord> = Vec::new();
        for stripe in &self.stripes {
            let ring = stripe.ring.lock().expect("trace stripe");
            out.extend(ring.iter().cloned());
        }
        out.sort_by_key(|r| r.ts_ns);
        out
    }

    /// Render the whole buffer as JSONL (one record per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for record in self.snapshot() {
            out.push_str(&record.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ts: u64, worker: Option<usize>, name: &str) -> TraceRecord {
        TraceRecord {
            ts_ns: ts,
            dur_ns: 0,
            kind: TraceKind::Event,
            name: name.into(),
            worker,
            device: None,
            fields: Vec::new(),
        }
    }

    #[test]
    fn snapshot_merges_stripes_in_time_order() {
        let sink = TraceSink::new(16);
        sink.push(rec(30, Some(1), "c"));
        sink.push(rec(10, Some(0), "a"));
        sink.push(rec(20, None, "b"));
        let names: Vec<_> = sink.snapshot().into_iter().map(|r| r.name).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let sink = TraceSink::new(2);
        // Same worker → same stripe, so the ring genuinely fills.
        sink.push(rec(1, Some(0), "one"));
        sink.push(rec(2, Some(0), "two"));
        sink.push(rec(3, Some(0), "three"));
        assert_eq!(sink.dropped(), 1);
        let names: Vec<_> = sink.snapshot().into_iter().map(|r| r.name).collect();
        assert_eq!(names, ["two", "three"]);
    }

    #[test]
    fn jsonl_line_shape() {
        let mut record = rec(5, Some(2), "steal");
        record.device = Some("cpu".into());
        record.fields.push(("from".into(), "0".into()));
        assert_eq!(
            record.to_json(),
            "{\"ts_ns\": 5, \"dur_ns\": 0, \"kind\": \"event\", \"name\": \"steal\", \"worker\": 2, \"device\": \"cpu\", \"fields\": {\"from\": \"0\"}}"
        );
        let anon = rec(7, None, "merge");
        assert!(anon.to_json().contains("\"worker\": null"));
        assert!(anon.to_json().contains("\"device\": null"));
    }
}
