//! The hand-rolled metrics registry: monotonic counters, gauges, and
//! fixed log₂-bucket histograms over `std::sync::atomic`.
//!
//! The workspace has no registry dependencies, so this is the whole
//! implementation: a lock-striped map from `(name, labels)` to an atomic
//! cell, plus two expositions — the Prometheus text format
//! ([`Registry::render_prometheus`]) and a JSON snapshot
//! ([`Registry::snapshot_json`]). Handles ([`Counter`], [`Gauge`],
//! [`Histogram`]) are registered once — a brief striped-lock hit — and
//! then updated with single relaxed atomic operations, so the hot path
//! never touches a lock. Every update site in the workspace is amortized
//! at *chunk* granularity (a scan, a batch flush, a round), never
//! per-key.

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Striping factor of the registration map: registration from many
/// worker threads (one per device at cluster start) shards by key hash.
const SHARDS: usize = 8;

/// Number of log₂ histogram buckets: bucket `i` counts observations in
/// `[2^(i-1), 2^i)` (bucket 0 counts zeros), bucket `BUCKETS - 1` is the
/// overflow. 40 buckets cover 1 ns .. ~9 minutes of latency exactly.
pub const BUCKETS: usize = 40;

/// A monotonic counter handle. Disabled handles (from a disabled
/// registry) compile to a null-check and nothing else.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A handle that drops every update (the disabled registry's).
    pub fn noop() -> Self {
        Self(None)
    }

    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 for a disabled handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A gauge handle: a settable `f64` (stored as bits in an `AtomicU64`).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// A handle that drops every update (the disabled registry's).
    pub fn noop() -> Self {
        Self(None)
    }

    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(g) = &self.0 {
            g.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 for a disabled handle).
    pub fn get(&self) -> f64 {
        self.0.as_ref().map_or(0.0, |g| f64::from_bits(g.load(Ordering::Relaxed)))
    }
}

/// Shared storage of one histogram.
#[derive(Debug)]
pub struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// The bucket index a value lands in: 0 for 0, else
    /// `min(bits(v), BUCKETS - 1)` so bucket `i` spans `[2^(i-1), 2^i)`.
    fn bucket_of(v: u64) -> usize {
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// A log₂-bucket histogram handle.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    /// A handle that drops every update (the disabled registry's).
    pub fn noop() -> Self {
        Self(None)
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.buckets[HistogramCore::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
            h.sum.fetch_add(v, Ordering::Relaxed);
            h.count.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Observations recorded so far (0 for a disabled handle).
    pub fn count(&self) -> u64 {
        self.0.as_ref().map_or(0, |h| h.count.load(Ordering::Relaxed))
    }

    /// Sum of all observations (0 for a disabled handle).
    pub fn sum(&self) -> u64 {
        self.0.as_ref().map_or(0, |h| h.sum.load(Ordering::Relaxed))
    }
}

/// Label pairs attached to a metric, e.g. `[("worker", "lanes8#0")]`.
pub type Labels = Vec<(String, String)>;

/// One sample's value in a typed [`Registry::samples`] snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// A monotonic counter's current total.
    Counter(u64),
    /// A gauge's last-set value.
    Gauge(f64),
    /// A histogram's raw (non-cumulative) log₂ buckets plus sum/count.
    Histogram {
        /// Per-bucket observation counts, `BUCKETS` long.
        buckets: Vec<u64>,
        /// Sum of all observed values.
        sum: u64,
        /// Number of observations.
        count: u64,
    },
}

/// One `(name, labels, value)` sample from [`Registry::samples`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Metric family name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Labels,
    /// The typed value.
    pub value: SampleValue,
}

impl MetricSample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct MetricKey {
    name: String,
    labels: Labels,
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCore>),
}

impl Metric {
    fn type_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// The metrics registry: a lock-striped map from `(name, labels)` to an
/// atomic cell. Registration is idempotent — asking for the same
/// `(name, labels)` twice returns handles to the same cell, so totals
/// from different layers reconcile into one sample.
#[derive(Debug)]
pub struct Registry {
    shards: Vec<Mutex<HashMap<MetricKey, Metric>>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self { shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect() }
    }

    fn shard_of(key: &MetricKey) -> usize {
        // FNV-1a over the name only: all samples of one metric family
        // land in one shard, which keeps exposition grouping trivial.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in key.name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        (h as usize) % SHARDS
    }

    fn register(&self, name: &str, labels: &[(&str, &str)], make: fn() -> Metric) -> Metric {
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        for (k, _) in labels {
            assert!(valid_label_name(k), "invalid label name {k:?}");
        }
        let mut labels: Labels =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        labels.sort();
        let key = MetricKey { name: name.to_string(), labels };
        let mut shard = self.shards[Self::shard_of(&key)].lock().expect("registry shard");
        let entry = shard.entry(key).or_insert_with(make);
        let fresh = make();
        assert_eq!(
            entry.type_name(),
            fresh.type_name(),
            "metric {name:?} re-registered as a different type"
        );
        entry.clone()
    }

    /// Register (or look up) a counter.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, labels, || Metric::Counter(Arc::new(AtomicU64::new(0)))) {
            Metric::Counter(c) => Counter(Some(c)),
            _ => unreachable!("type checked in register"),
        }
    }

    /// Register (or look up) a gauge.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, labels, || {
            Metric::Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
        }) {
            Metric::Gauge(g) => Gauge(Some(g)),
            _ => unreachable!("type checked in register"),
        }
    }

    /// Register (or look up) a log₂-bucket histogram.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.register(name, labels, || Metric::Histogram(Arc::new(HistogramCore::new()))) {
            Metric::Histogram(h) => Histogram(Some(h)),
            _ => unreachable!("type checked in register"),
        }
    }

    /// Every registered sample, sorted by `(name, labels)` for a
    /// deterministic exposition.
    fn sorted(&self) -> Vec<(MetricKey, Metric)> {
        let mut out: Vec<(MetricKey, Metric)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("registry shard");
            out.extend(shard.iter().map(|(k, m)| (k.clone(), m.clone())));
        }
        out.sort_by(|(a, _), (b, _)| a.name.cmp(&b.name).then_with(|| a.labels.cmp(&b.labels)));
        out
    }

    /// A typed snapshot of every registered sample, sorted by
    /// `(name, labels)`. This is the programmatic sibling of the two
    /// text expositions: the sliding-window layer diffs consecutive
    /// snapshots into per-window deltas, and the flight recorder embeds
    /// one in its crash dump.
    pub fn samples(&self) -> Vec<MetricSample> {
        self.sorted()
            .into_iter()
            .map(|(key, metric)| MetricSample {
                name: key.name,
                labels: key.labels,
                value: match metric {
                    Metric::Counter(c) => SampleValue::Counter(c.load(Ordering::Relaxed)),
                    Metric::Gauge(g) => {
                        SampleValue::Gauge(f64::from_bits(g.load(Ordering::Relaxed)))
                    }
                    Metric::Histogram(h) => SampleValue::Histogram {
                        buckets: h.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
                        sum: h.sum.load(Ordering::Relaxed),
                        count: h.count.load(Ordering::Relaxed),
                    },
                },
            })
            .collect()
    }

    /// Render the Prometheus text exposition format (version 0.0.4):
    /// one `# TYPE` line per metric family, histogram families expanded
    /// into cumulative `_bucket{le=...}`, `_sum` and `_count` samples.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut last_family = String::new();
        for (key, metric) in self.sorted() {
            if key.name != last_family {
                writeln!(out, "# TYPE {} {}", key.name, metric.type_name()).expect("write");
                last_family = key.name.clone();
            }
            match metric {
                Metric::Counter(c) => {
                    writeln!(
                        out,
                        "{}{} {}",
                        key.name,
                        render_labels(&key.labels, None),
                        c.load(Ordering::Relaxed)
                    )
                    .expect("write");
                }
                Metric::Gauge(g) => {
                    writeln!(
                        out,
                        "{}{} {}",
                        key.name,
                        render_labels(&key.labels, None),
                        fmt_f64(f64::from_bits(g.load(Ordering::Relaxed)))
                    )
                    .expect("write");
                }
                Metric::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (i, b) in h.buckets.iter().enumerate() {
                        cumulative += b.load(Ordering::Relaxed);
                        let le = if i == BUCKETS - 1 {
                            "+Inf".to_string()
                        } else {
                            // Bucket i spans [2^(i-1), 2^i): upper bound
                            // 2^i - 1 inclusive ⇒ le = 2^i - 1.
                            ((1u128 << i) - 1).to_string()
                        };
                        writeln!(
                            out,
                            "{}_bucket{} {}",
                            key.name,
                            render_labels(&key.labels, Some(&le)),
                            cumulative
                        )
                        .expect("write");
                    }
                    writeln!(
                        out,
                        "{}_sum{} {}",
                        key.name,
                        render_labels(&key.labels, None),
                        h.sum.load(Ordering::Relaxed)
                    )
                    .expect("write");
                    writeln!(
                        out,
                        "{}_count{} {}",
                        key.name,
                        render_labels(&key.labels, None),
                        h.count.load(Ordering::Relaxed)
                    )
                    .expect("write");
                }
            }
        }
        out
    }

    /// Render a JSON snapshot: an array of sample objects, sorted by
    /// `(name, labels)`.
    pub fn snapshot_json(&self) -> String {
        use std::fmt::Write as _;
        let mut body = String::new();
        for (key, metric) in self.sorted() {
            if !body.is_empty() {
                body.push_str(",\n");
            }
            let labels = key
                .labels
                .iter()
                .map(|(k, v)| format!("{}: {}", json_string(k), json_string(v)))
                .collect::<Vec<_>>()
                .join(", ");
            match metric {
                Metric::Counter(c) => {
                    write!(
                        body,
                        "  {{\"name\": {}, \"type\": \"counter\", \"labels\": {{{labels}}}, \"value\": {}}}",
                        json_string(&key.name),
                        c.load(Ordering::Relaxed)
                    )
                    .expect("write");
                }
                Metric::Gauge(g) => {
                    write!(
                        body,
                        "  {{\"name\": {}, \"type\": \"gauge\", \"labels\": {{{labels}}}, \"value\": {}}}",
                        json_string(&key.name),
                        fmt_f64(f64::from_bits(g.load(Ordering::Relaxed)))
                    )
                    .expect("write");
                }
                Metric::Histogram(h) => {
                    let buckets = h
                        .buckets
                        .iter()
                        .map(|b| b.load(Ordering::Relaxed).to_string())
                        .collect::<Vec<_>>()
                        .join(", ");
                    write!(
                        body,
                        "  {{\"name\": {}, \"type\": \"histogram\", \"labels\": {{{labels}}}, \"buckets\": [{buckets}], \"sum\": {}, \"count\": {}}}",
                        json_string(&key.name),
                        h.sum.load(Ordering::Relaxed),
                        h.count.load(Ordering::Relaxed)
                    )
                    .expect("write");
                }
            }
        }
        format!("[\n{body}\n]\n")
    }
}

/// `true` for a legal Prometheus metric name: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// `true` for a legal label name: `[a-zA-Z_][a-zA-Z0-9_]*`.
fn valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Escape a label value for the text exposition: `\`, `"` and newline.
fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn render_labels(labels: &Labels, le: Option<&str>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// JSON string literal with the escapes our values can need.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format a float so it round-trips through the expositions: finite
/// values print plainly, non-finite as Prometheus spells them.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf".into() } else { "-Inf".into() }
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_cells() {
        let r = Registry::new();
        let a = r.counter("eks_keys_tested_total", &[("worker", "w0")]);
        let b = r.counter("eks_keys_tested_total", &[("worker", "w0")]);
        a.add(5);
        b.add(7);
        assert_eq!(a.get(), 12, "same (name, labels) shares one cell");
        let other = r.counter("eks_keys_tested_total", &[("worker", "w1")]);
        other.inc();
        assert_eq!(other.get(), 1);
    }

    #[test]
    fn label_order_does_not_split_cells() {
        let r = Registry::new();
        let a = r.counter("m_total", &[("a", "1"), ("b", "2")]);
        let b = r.counter("m_total", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn gauges_hold_the_last_value() {
        let r = Registry::new();
        let g = r.gauge("eks_rate_mkeys", &[]);
        g.set(12.5);
        g.set(99.25);
        assert_eq!(g.get(), 99.25);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(HistogramCore::bucket_of(0), 0);
        assert_eq!(HistogramCore::bucket_of(1), 1);
        assert_eq!(HistogramCore::bucket_of(2), 2);
        assert_eq!(HistogramCore::bucket_of(3), 2);
        assert_eq!(HistogramCore::bucket_of(4), 3);
        assert_eq!(HistogramCore::bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn histogram_sum_and_count_track_observations() {
        let r = Registry::new();
        let h = r.histogram("eks_scan_ns", &[("worker", "w0")]);
        h.observe(3);
        h.observe(100);
        h.observe(0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 103);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let r = Registry::new();
        r.counter("eks_keys_tested_total", &[("worker", "a\"b")]).add(42);
        r.gauge("eks_efficiency", &[]).set(0.875);
        r.histogram("eks_scan_ns", &[]).observe(5);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE eks_keys_tested_total counter"), "{text}");
        assert!(text.contains("eks_keys_tested_total{worker=\"a\\\"b\"} 42"), "{text}");
        assert!(text.contains("# TYPE eks_efficiency gauge"), "{text}");
        assert!(text.contains("eks_efficiency 0.875"), "{text}");
        assert!(text.contains("eks_scan_ns_bucket{le=\"+Inf\"} 1"), "{text}");
        assert!(text.contains("eks_scan_ns_sum 5"), "{text}");
        assert!(text.contains("eks_scan_ns_count 1"), "{text}");
        // Buckets are cumulative: the le="7" bucket already holds the 5.
        assert!(text.contains("eks_scan_ns_bucket{le=\"7\"} 1"), "{text}");
    }

    #[test]
    fn json_snapshot_is_valid_enough_to_grep() {
        let r = Registry::new();
        r.counter("a_total", &[("k", "v")]).add(1);
        r.histogram("h_ns", &[]).observe(9);
        let json = r.snapshot_json();
        assert!(json.contains("\"name\": \"a_total\""), "{json}");
        assert!(json.contains("\"type\": \"histogram\""), "{json}");
        assert!(json.contains("\"sum\": 9"), "{json}");
    }

    #[test]
    fn typed_samples_mirror_the_expositions() {
        let r = Registry::new();
        r.counter("a_total", &[("worker", "w0")]).add(7);
        r.gauge("g", &[]).set(2.5);
        r.histogram("h_ns", &[]).observe(9);
        let samples = r.samples();
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[0].name, "a_total");
        assert_eq!(samples[0].label("worker"), Some("w0"));
        assert_eq!(samples[0].value, SampleValue::Counter(7));
        assert_eq!(samples[1].value, SampleValue::Gauge(2.5));
        match &samples[2].value {
            SampleValue::Histogram { buckets, sum, count } => {
                assert_eq!(buckets.len(), BUCKETS);
                assert_eq!(*sum, 9);
                assert_eq!(*count, 1);
                assert_eq!(buckets[HistogramCore::bucket_of(9)], 1);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn noop_handles_do_nothing() {
        let c = Counter::noop();
        c.add(5);
        assert_eq!(c.get(), 0);
        let g = Gauge::noop();
        g.set(1.0);
        assert_eq!(g.get(), 0.0);
        let h = Histogram::noop();
        h.observe(5);
        assert_eq!(h.count(), 0);
    }

    #[test]
    #[should_panic]
    fn type_conflicts_panic() {
        let r = Registry::new();
        r.counter("same_name", &[]);
        r.gauge("same_name", &[]);
    }

    #[test]
    #[should_panic]
    fn invalid_names_panic() {
        let r = Registry::new();
        r.counter("bad name with spaces", &[]);
    }
}
