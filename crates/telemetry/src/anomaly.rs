//! Live anomaly detection over sliding windows: stragglers, stalls,
//! and rate collapses, classified while the search is still running.
//!
//! The paper's §III efficiency model (85–90 % measured) assumes every
//! worker delivers its tuned rate; the operational reports in
//! PAPERS.md (HashKitty's agent dashboard, BitCracker's multi-GPU
//! degradation) show that long runs live or die on spotting the worker
//! that doesn't. The [`AnomalyDetector`] reads each flushed
//! [`Window`] and classifies:
//!
//! - **straggler** — a worker's live EWMA rate
//!   (`eks_worker_rate_est_mkeys`) has dropped more than
//!   [`AnomalyConfig::straggler_drift_pct`] below its tuned baseline.
//!   This is the §III scatter premise (`N_j = N_max · X_j / X_max`)
//!   failing live: the tuned `X_j` no longer describes the device.
//! - **stall** — a worker that tested keys in an earlier window tested
//!   zero in this one while the rest of the fleet progressed.
//! - **rate-collapse** — the whole fleet's window throughput fell below
//!   [`AnomalyConfig::collapse_pct`] of the previous window's, or the
//!   per-chunk scan-latency p99 shifted up by more than
//!   [`AnomalyConfig::p99_shift_factor`]×.
//!
//! Verdicts surface three ways: the `eks_anomaly_total{kind}` counter,
//! an `anomaly` trace event, and a flagged-worker set the engine's
//! rescatter plan consults to deprioritize the worker until it
//! recovers (a flag clears as soon as a window no longer exhibits the
//! condition). The [`LivePlane`] bundles the window ring and the
//! detector behind one handle that instrumented layers poke through
//! [`Telemetry::observe_plane`](crate::Telemetry::observe_plane).

use std::collections::HashSet;
use std::sync::Mutex;

use crate::metrics::SampleValue;
use crate::window::{Window, WindowBook};
use crate::{names, Telemetry};

/// What kind of live anomaly a window exhibited.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnomalyKind {
    /// A worker's live rate fell far below its tuned baseline.
    Straggler,
    /// A previously-active worker made no progress this window.
    Stall,
    /// The whole fleet's throughput (or scan latency p99) degraded.
    RateCollapse,
}

impl AnomalyKind {
    /// The stable label value used in `eks_anomaly_total{kind=...}`.
    pub fn as_str(self) -> &'static str {
        match self {
            AnomalyKind::Straggler => "straggler",
            AnomalyKind::Stall => "stall",
            AnomalyKind::RateCollapse => "rate-collapse",
        }
    }

    /// Parse the label value back (exactly [`AnomalyKind::as_str`]).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "straggler" => Some(AnomalyKind::Straggler),
            "stall" => Some(AnomalyKind::Stall),
            "rate-collapse" => Some(AnomalyKind::RateCollapse),
            _ => None,
        }
    }
}

impl std::fmt::Display for AnomalyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One verdict: which worker (or the whole fleet), in which window.
#[derive(Debug, Clone, PartialEq)]
pub struct Anomaly {
    /// The classification.
    pub kind: AnomalyKind,
    /// Worker label, or `"fleet"` for whole-run conditions.
    pub worker: String,
    /// The window index the condition was observed in.
    pub window: u64,
    /// Human-readable evidence (rates, deltas).
    pub detail: String,
}

/// Detector thresholds. The defaults map onto the paper's efficiency
/// band: a worker more than 40 % under its tuned rate costs the fleet
/// more imbalance than the 10–15 % slack the §III model leaves between
/// the measured 85–90 % and ideal scaling, so that is where the
/// straggler line sits (see DESIGN §4k).
#[derive(Debug, Clone, Copy)]
pub struct AnomalyConfig {
    /// Straggler when `est < tuned · (1 - straggler_drift_pct/100)`.
    pub straggler_drift_pct: f64,
    /// Rate collapse when this window's fleet throughput is below this
    /// percentage of the previous window's.
    pub collapse_pct: f64,
    /// Rate collapse when scan p99 grows by more than this factor
    /// window over window.
    pub p99_shift_factor: f64,
    /// Ignore collapse checks until the previous window tested at
    /// least this many keys (warm-up / tail noise floor).
    pub min_window_keys: u64,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        Self {
            straggler_drift_pct: 40.0,
            collapse_pct: 50.0,
            p99_shift_factor: 4.0,
            min_window_keys: 1_000,
        }
    }
}

/// Sliding-window anomaly classifier. Feed it windows in order with
/// [`AnomalyDetector::assess`]; it keeps the little cross-window state
/// the classifications need (who was active, last fleet delta, last
/// p99) and the currently-flagged worker set.
#[derive(Debug)]
pub struct AnomalyDetector {
    config: AnomalyConfig,
    /// Workers that have tested at least one key in some window.
    active: HashSet<String>,
    /// Previous window's fleet-wide keys-tested delta.
    prev_fleet_delta: Option<u64>,
    /// Previous window's scan-latency p99 (ns).
    prev_p99_ns: Option<f64>,
    /// Workers currently flagged (straggler or stall, latest window).
    flagged: HashSet<String>,
}

impl AnomalyDetector {
    /// A detector with the given thresholds.
    pub fn new(config: AnomalyConfig) -> Self {
        Self {
            config,
            active: HashSet::new(),
            prev_fleet_delta: None,
            prev_p99_ns: None,
            flagged: HashSet::new(),
        }
    }

    /// Classify one window. Returns every anomaly it exhibits and
    /// updates the flagged set (workers not re-flagged recover).
    pub fn assess(&mut self, window: &Window) -> Vec<Anomaly> {
        let mut out = Vec::new();
        let fleet_delta = window.counter_total(names::KEYS_TESTED);

        // Per-worker keys-tested deltas drive stall detection.
        let mut worker_deltas: Vec<(String, u64)> = Vec::new();
        for s in window.samples.iter().filter(|s| s.name == names::KEYS_TESTED) {
            if let (Some(worker), SampleValue::Counter(delta)) = (s.label("worker"), &s.value) {
                worker_deltas.push((worker.to_string(), *delta));
            }
        }
        let mut next_flagged = HashSet::new();
        for (worker, delta) in &worker_deltas {
            if *delta == 0 && fleet_delta > 0 && self.active.contains(worker) {
                out.push(Anomaly {
                    kind: AnomalyKind::Stall,
                    worker: worker.clone(),
                    window: window.index,
                    detail: format!(
                        "0 keys this window while the fleet tested {fleet_delta}"
                    ),
                });
                next_flagged.insert(worker.clone());
            }
            if *delta > 0 {
                self.active.insert(worker.clone());
            }
        }

        // Straggler: the live EWMA gauge against its tuned baseline.
        for s in window.samples.iter().filter(|s| s.name == names::WORKER_RATE_EST) {
            let (Some(worker), SampleValue::Gauge(est)) = (s.label("worker"), &s.value) else {
                continue;
            };
            let Some(tuned) = window.gauge(names::WORKER_RATE_TUNED, "worker", worker) else {
                continue;
            };
            if tuned <= 0.0 || !est.is_finite() {
                continue;
            }
            let floor = tuned * (1.0 - self.config.straggler_drift_pct / 100.0);
            if *est < floor {
                out.push(Anomaly {
                    kind: AnomalyKind::Straggler,
                    worker: worker.to_string(),
                    window: window.index,
                    detail: format!(
                        "live {est:.2} MK/s under tuned {tuned:.2} MK/s (-{:.0}%)",
                        (1.0 - est / tuned) * 100.0
                    ),
                });
                next_flagged.insert(worker.to_string());
            }
        }

        // Rate collapse: fleet throughput window over window...
        if let Some(prev) = self.prev_fleet_delta {
            if prev >= self.config.min_window_keys
                && (fleet_delta as f64) < prev as f64 * self.config.collapse_pct / 100.0
            {
                out.push(Anomaly {
                    kind: AnomalyKind::RateCollapse,
                    worker: "fleet".to_string(),
                    window: window.index,
                    detail: format!("fleet tested {fleet_delta} keys after {prev} last window"),
                });
            }
        }
        // ...or a scan-latency p99 shift.
        let p99 = window
            .histogram_buckets(names::SCAN_NS)
            .filter(|(_, count)| *count > 0)
            .map(|(buckets, _)| crate::report::quantile_from_log2_buckets(&buckets, 0.99));
        if let (Some(prev), Some(cur)) = (self.prev_p99_ns, p99) {
            if prev > 0.0 && cur > prev * self.config.p99_shift_factor {
                out.push(Anomaly {
                    kind: AnomalyKind::RateCollapse,
                    worker: "fleet".to_string(),
                    window: window.index,
                    detail: format!("scan p99 {cur:.0} ns after {prev:.0} ns last window"),
                });
            }
        }

        self.prev_fleet_delta = Some(fleet_delta);
        if p99.is_some() {
            self.prev_p99_ns = p99;
        }
        self.flagged = next_flagged;
        out
    }

    /// Workers currently flagged (straggler or stall in the latest
    /// window), sorted for determinism.
    pub fn flagged(&self) -> Vec<String> {
        let mut v: Vec<String> = self.flagged.iter().cloned().collect();
        v.sort();
        v
    }
}

/// How many windows the plane's ring and the flight recorder retain.
pub const DEFAULT_WINDOW_CAPACITY: usize = 64;
/// Default window width: one second of the run's clock.
pub const DEFAULT_WINDOW_NS: u64 = 1_000_000_000;
/// How many recent anomaly verdicts the plane keeps for dumps.
const RECENT_ANOMALIES: usize = 256;

/// The live observability plane: a window ring plus the anomaly
/// detector, attached to a [`Telemetry`] handle with
/// [`Telemetry::attach_plane`](crate::Telemetry::attach_plane) so
/// every instrumented layer (dispatcher chunks, cluster rounds, job
/// leases) can poke it with `telemetry.observe_plane()` without new
/// plumbing. The plane deliberately does *not* hold a `Telemetry` —
/// it always receives the handle as an argument, so attaching it to
/// the handle's inner state creates no reference cycle.
pub struct LivePlane {
    windows: WindowBook,
    detector: Mutex<AnomalyDetector>,
    /// Flagged-worker set mirrored out of the detector so the engine's
    /// rescatter path reads it without contending the assess lock.
    flagged: Mutex<HashSet<String>>,
    /// Recent verdicts, oldest first, bounded for the flight dump.
    recent: Mutex<Vec<Anomaly>>,
}

impl std::fmt::Debug for LivePlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LivePlane").field("windows", &self.windows).finish_non_exhaustive()
    }
}

impl LivePlane {
    /// A plane flushing `width_ns`-wide windows into a ring of
    /// `capacity`, classifying with `config`.
    pub fn new(width_ns: u64, capacity: usize, config: AnomalyConfig) -> Self {
        Self {
            windows: WindowBook::new(width_ns, capacity),
            detector: Mutex::new(AnomalyDetector::new(config)),
            flagged: Mutex::new(HashSet::new()),
            recent: Mutex::new(Vec::new()),
        }
    }

    /// A plane with the default width, capacity, and thresholds.
    pub fn with_defaults() -> Self {
        Self::new(DEFAULT_WINDOW_NS, DEFAULT_WINDOW_CAPACITY, AnomalyConfig::default())
    }

    /// The window ring.
    pub fn windows(&self) -> &WindowBook {
        &self.windows
    }

    /// Flush-if-due and classify. The cheap not-due path is one atomic
    /// load; on flush, verdicts are counted into
    /// `eks_anomaly_total{kind}`, pushed as `anomaly` trace events,
    /// mirrored into per-worker `eks_worker_flagged` gauges, and
    /// returned.
    pub fn observe(&self, telemetry: &Telemetry) -> Vec<Anomaly> {
        match self.windows.maybe_flush(telemetry) {
            Some(window) => self.classify(telemetry, &window),
            None => Vec::new(),
        }
    }

    /// Unconditionally flush one window and classify it (end-of-run,
    /// and deterministic tests).
    pub fn observe_now(&self, telemetry: &Telemetry) -> Vec<Anomaly> {
        let window = self.windows.flush(telemetry);
        self.classify(telemetry, &window)
    }

    fn classify(&self, telemetry: &Telemetry, window: &Window) -> Vec<Anomaly> {
        let (anomalies, flagged) = {
            let mut detector = self.detector.lock().expect("anomaly detector");
            let anomalies = detector.assess(window);
            (anomalies, detector.flagged())
        };
        for a in &anomalies {
            telemetry.counter(names::ANOMALIES, &[("kind", a.kind.as_str())]).inc();
            telemetry
                .event(names::EVENT_ANOMALY)
                .field("kind", a.kind)
                .field("worker", &a.worker)
                .field("window", a.window)
                .field("detail", &a.detail)
                .finish();
        }
        {
            let mut cur = self.flagged.lock().expect("flagged set");
            for worker in cur.iter() {
                if !flagged.contains(worker) {
                    telemetry.gauge(names::WORKER_FLAGGED, &[("worker", worker)]).set(0.0);
                }
            }
            for worker in &flagged {
                telemetry.gauge(names::WORKER_FLAGGED, &[("worker", worker)]).set(1.0);
            }
            *cur = flagged.into_iter().collect();
        }
        if !anomalies.is_empty() {
            let mut recent = self.recent.lock().expect("recent anomalies");
            recent.extend(anomalies.iter().cloned());
            let len = recent.len();
            if len > RECENT_ANOMALIES {
                recent.drain(..len - RECENT_ANOMALIES);
            }
        }
        anomalies
    }

    /// `true` while `worker` is flagged (the engine's rescatter plan
    /// halves a flagged worker's scatter weight).
    pub fn is_flagged(&self, worker: &str) -> bool {
        self.flagged.lock().expect("flagged set").contains(worker)
    }

    /// Currently-flagged workers, sorted.
    pub fn flagged(&self) -> Vec<String> {
        let mut v: Vec<String> =
            self.flagged.lock().expect("flagged set").iter().cloned().collect();
        v.sort();
        v
    }

    /// Recent verdicts, oldest first (bounded; feeds the flight dump).
    pub fn recent_anomalies(&self) -> Vec<Anomaly> {
        self.recent.lock().expect("recent anomalies").clone()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::{parse_prometheus, ManualClock};

    fn plane_fixture() -> (Arc<ManualClock>, Telemetry, LivePlane) {
        let clock = Arc::new(ManualClock::new());
        let t = Telemetry::with_clock(clock.clone());
        let plane = LivePlane::new(100, 8, AnomalyConfig::default());
        (clock, t, plane)
    }

    #[test]
    fn straggler_flags_and_recovers_with_the_gauges() {
        let (clock, t, plane) = plane_fixture();
        t.counter(names::KEYS_TESTED, &[("worker", "slow")]).add(10);
        t.gauge(names::WORKER_RATE_EST, &[("worker", "slow")]).set(1.0);
        t.gauge(names::WORKER_RATE_TUNED, &[("worker", "slow")]).set(4.0);
        clock.advance(100);
        let anomalies = plane.observe_now(&t);
        assert_eq!(anomalies.len(), 1);
        assert_eq!(anomalies[0].kind, AnomalyKind::Straggler);
        assert_eq!(anomalies[0].worker, "slow");
        assert!(plane.is_flagged("slow"));
        assert_eq!(t.gauge(names::WORKER_FLAGGED, &[("worker", "slow")]).get(), 1.0);
        // Counter + event surfaced.
        let text = t.render_prometheus();
        let samples = parse_prometheus(&text).unwrap();
        assert!(samples
            .iter()
            .any(|s| s.name == names::ANOMALIES
                && s.label("kind") == Some("straggler")
                && s.value == 1.0));
        assert!(t.trace_snapshot().iter().any(|r| r.name == names::EVENT_ANOMALY));
        // Recovery: the live rate comes back, the flag clears.
        t.gauge(names::WORKER_RATE_EST, &[("worker", "slow")]).set(3.9);
        t.counter(names::KEYS_TESTED, &[("worker", "slow")]).add(10);
        clock.advance(100);
        assert!(plane.observe_now(&t).is_empty());
        assert!(!plane.is_flagged("slow"));
        assert_eq!(t.gauge(names::WORKER_FLAGGED, &[("worker", "slow")]).get(), 0.0);
    }

    #[test]
    fn stall_requires_prior_activity_and_fleet_progress() {
        let (clock, t, plane) = plane_fixture();
        let fast = t.counter(names::KEYS_TESTED, &[("worker", "fast")]);
        let lazy = t.counter(names::KEYS_TESTED, &[("worker", "lazy")]);
        fast.add(100);
        lazy.add(100);
        clock.advance(100);
        assert!(plane.observe_now(&t).is_empty(), "both active: no anomaly");
        fast.add(100);
        clock.advance(100);
        let anomalies = plane.observe_now(&t);
        assert_eq!(anomalies.len(), 1);
        assert_eq!(anomalies[0].kind, AnomalyKind::Stall);
        assert_eq!(anomalies[0].worker, "lazy");
    }

    #[test]
    fn rate_collapse_fires_on_fleet_throughput_drop() {
        let (clock, t, plane) = plane_fixture();
        let c = t.counter(names::KEYS_TESTED, &[("worker", "w0")]);
        c.add(10_000);
        clock.advance(100);
        assert!(plane.observe_now(&t).is_empty(), "first window has no baseline");
        c.add(100);
        clock.advance(100);
        let anomalies = plane.observe_now(&t);
        assert!(anomalies.iter().any(|a| a.kind == AnomalyKind::RateCollapse), "{anomalies:?}");
    }

    #[test]
    fn small_windows_do_not_trip_the_collapse_floor() {
        let (clock, t, plane) = plane_fixture();
        let c = t.counter(names::KEYS_TESTED, &[("worker", "w0")]);
        c.add(50); // under min_window_keys
        clock.advance(100);
        plane.observe_now(&t);
        clock.advance(100);
        assert!(plane.observe_now(&t).is_empty(), "tail noise stays quiet");
    }

    #[test]
    fn kind_labels_round_trip() {
        for kind in [AnomalyKind::Straggler, AnomalyKind::Stall, AnomalyKind::RateCollapse] {
            assert_eq!(AnomalyKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(AnomalyKind::parse("nope"), None);
    }
}
