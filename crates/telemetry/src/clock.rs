//! The injectable time source every telemetry timestamp flows through.
//!
//! Production code uses [`RealClock`] (monotonic nanoseconds since the
//! clock was created); tests inject a [`ManualClock`] and advance it by
//! hand, so span durations, histogram buckets and trace orderings are
//! exactly reproducible — no `Instant` race can flake a telemetry
//! assertion.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond clock.
///
/// Implementations must be monotone (successive `now_ns` calls never go
/// backwards) but need not relate to wall time: the origin is whatever
/// the implementation anchored at construction.
pub trait Clock: Send + Sync {
    /// Nanoseconds elapsed since this clock's origin.
    fn now_ns(&self) -> u64;
}

/// The production clock: monotonic time since construction.
#[derive(Debug)]
pub struct RealClock {
    origin: Instant,
}

impl RealClock {
    /// A clock anchored at "now".
    pub fn new() -> Self {
        Self { origin: Instant::now() }
    }
}

impl Default for RealClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for RealClock {
    fn now_ns(&self) -> u64 {
        // Saturate far beyond any realistic process lifetime (~584 years).
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A hand-driven clock for deterministic tests: time only moves when the
/// test calls [`ManualClock::advance`] or [`ManualClock::set`].
#[derive(Debug, Default)]
pub struct ManualClock {
    ns: AtomicU64,
}

impl ManualClock {
    /// A clock frozen at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// A clock frozen at `ns`.
    pub fn at(ns: u64) -> Self {
        Self { ns: AtomicU64::new(ns) }
    }

    /// Move time forward by `ns` nanoseconds.
    pub fn advance(&self, ns: u64) {
        self.ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Jump to an absolute time. Panics when moving backwards — the
    /// `Clock` contract is monotone.
    pub fn set(&self, ns: u64) {
        let prev = self.ns.swap(ns, Ordering::Relaxed);
        assert!(ns >= prev, "ManualClock must stay monotone ({prev} -> {ns})");
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::Relaxed)
    }
}

/// A clock-routed rate limiter: [`Throttle::ready`] returns true at
/// most once per period of the telemetry clock. The `--progress`
/// output throttle goes through this instead of a raw `Instant`, so a
/// test with a [`ManualClock`] can step time and assert exactly which
/// progress callbacks print.
#[derive(Debug)]
pub struct Throttle {
    period_ns: u64,
    last_ns: AtomicU64,
}

impl Throttle {
    /// A throttle that next fires one `period_ns` after `now_ns`.
    pub fn new(now_ns: u64, period_ns: u64) -> Self {
        Self { period_ns, last_ns: AtomicU64::new(now_ns) }
    }

    /// True when a full period has elapsed since the last `true`
    /// (thread-safe: concurrent callers race on one CAS, exactly one
    /// wins each period).
    pub fn ready(&self, now_ns: u64) -> bool {
        let last = self.last_ns.load(Ordering::Relaxed);
        now_ns.saturating_sub(last) >= self.period_ns
            && self
                .last_ns
                .compare_exchange(last, now_ns, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_is_monotone() {
        let c = RealClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_only_moves_when_told() {
        let c = ManualClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance(10);
        c.advance(5);
        assert_eq!(c.now_ns(), 15);
        c.set(100);
        assert_eq!(c.now_ns(), 100);
    }

    #[test]
    #[should_panic]
    fn manual_clock_rejects_going_backwards() {
        let c = ManualClock::at(50);
        c.set(10);
    }

    #[test]
    fn throttle_fires_once_per_period_on_the_given_clock() {
        let t = Throttle::new(0, 100);
        assert!(!t.ready(0), "a fresh throttle waits a full period");
        assert!(!t.ready(99));
        assert!(t.ready(100));
        assert!(!t.ready(150), "the period restarts at the last fire");
        assert!(t.ready(250));
    }
}
