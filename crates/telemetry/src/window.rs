//! Sliding-window aggregation: a bounded ring of per-window metric
//! deltas diffed from consecutive [`Registry::samples`] snapshots.
//!
//! The registry's counters and histograms are cumulative — perfect for
//! end-of-run reconciliation, useless for asking "what happened in the
//! last second". A [`WindowBook`] closes that gap: every `width_ns` of
//! the run's [`Clock`](crate::Clock) it snapshots the registry, diffs
//! against the previous snapshot, and stores the delta as one
//! [`Window`]. Counters and histogram buckets become per-window deltas;
//! gauges keep their last-set value (they are levels, not flows). The
//! deltas telescope: summed over every window (plus one final flush)
//! they reproduce the registry totals exactly, which
//! `tests/telemetry_reconcile.rs` pins as a seeded property under
//! concurrent steal interleavings.
//!
//! The anomaly detector ([`crate::anomaly`]) consumes these windows;
//! the flight recorder ([`crate::flight`]) dumps the recent ring.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::metrics::{Labels, MetricSample, SampleValue};
use crate::Telemetry;

/// One flushed window: the registry's activity in `[start_ns, end_ns)`.
#[derive(Debug, Clone)]
pub struct Window {
    /// Flush sequence number, starting at 0.
    pub index: u64,
    /// Clock ns at the previous flush (run start for window 0).
    pub start_ns: u64,
    /// Clock ns at this flush.
    pub end_ns: u64,
    /// Per-metric deltas (counters, histograms) and levels (gauges),
    /// sorted by `(name, labels)` like the snapshot they diff.
    pub samples: Vec<MetricSample>,
}

impl Window {
    /// Sum of every counter delta named `name` (all label sets).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .filter_map(|s| match s.value {
                SampleValue::Counter(v) => Some(v),
                _ => None,
            })
            .sum()
    }

    /// The counter delta for one `(name, label==value)` cell.
    pub fn counter_delta(&self, name: &str, label: &str, value: &str) -> u64 {
        self.samples
            .iter()
            .filter(|s| s.name == name && s.label(label) == Some(value))
            .filter_map(|s| match s.value {
                SampleValue::Counter(v) => Some(v),
                _ => None,
            })
            .sum()
    }

    /// The last-set gauge value for one `(name, label==value)` cell.
    pub fn gauge(&self, name: &str, label: &str, value: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.label(label) == Some(value))
            .and_then(|s| match s.value {
                SampleValue::Gauge(v) => Some(v),
                _ => None,
            })
    }

    /// Merged (all label sets) histogram bucket deltas for `name`,
    /// with the window's observation count.
    pub fn histogram_buckets(&self, name: &str) -> Option<(Vec<u64>, u64)> {
        let mut merged: Option<Vec<u64>> = None;
        let mut total = 0u64;
        for s in self.samples.iter().filter(|s| s.name == name) {
            if let SampleValue::Histogram { buckets, count, .. } = &s.value {
                let acc = merged.get_or_insert_with(|| vec![0; buckets.len()]);
                for (a, b) in acc.iter_mut().zip(buckets) {
                    *a += b;
                }
                total += count;
            }
        }
        merged.map(|b| (b, total))
    }
}

#[derive(Default)]
struct Inner {
    /// Previous cumulative snapshot, keyed for the diff.
    prev: HashMap<(String, Labels), SampleValue>,
    /// The bounded ring of flushed windows, oldest first.
    windows: VecDeque<Window>,
    next_index: u64,
    last_flush_ns: u64,
}

/// The sliding-window ring. One per process; attach it to the
/// [`Telemetry`] handle through a [`crate::anomaly::LivePlane`].
pub struct WindowBook {
    width_ns: u64,
    capacity: usize,
    /// Fast-path copy of `Inner::last_flush_ns`: instrumented hot paths
    /// poll [`WindowBook::maybe_flush`] per chunk, and this atomic lets
    /// the not-due-yet case return after one load without the lock.
    last_flush_ns: AtomicU64,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for WindowBook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WindowBook").field("width_ns", &self.width_ns).finish_non_exhaustive()
    }
}

impl WindowBook {
    /// A ring of up to `capacity` windows, flushed every `width_ns` of
    /// the telemetry clock.
    ///
    /// # Panics
    /// Panics when `width_ns == 0` or `capacity == 0`.
    pub fn new(width_ns: u64, capacity: usize) -> Self {
        assert!(width_ns > 0, "window width must be positive");
        assert!(capacity > 0, "window ring needs capacity");
        Self {
            width_ns,
            capacity,
            last_flush_ns: AtomicU64::new(0),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The configured window width.
    pub fn width_ns(&self) -> u64 {
        self.width_ns
    }

    /// Flush a window if at least one width has elapsed on the
    /// telemetry clock since the last flush. The cheap path — called
    /// per chunk from the dispatcher — is a single atomic load.
    pub fn maybe_flush(&self, telemetry: &Telemetry) -> Option<Window> {
        let now = telemetry.now_ns();
        if now.saturating_sub(self.last_flush_ns.load(Ordering::Relaxed)) < self.width_ns {
            return None;
        }
        let mut inner = self.inner.lock().expect("window book");
        // Re-check under the lock: another thread may have just flushed.
        if now.saturating_sub(inner.last_flush_ns) < self.width_ns {
            return None;
        }
        Some(self.flush_locked(&mut inner, telemetry, now))
    }

    /// Unconditionally flush a window (the final end-of-run flush, and
    /// what tests drive directly).
    pub fn flush(&self, telemetry: &Telemetry) -> Window {
        let now = telemetry.now_ns();
        let mut inner = self.inner.lock().expect("window book");
        self.flush_locked(&mut inner, telemetry, now)
    }

    fn flush_locked(&self, inner: &mut Inner, telemetry: &Telemetry, now: u64) -> Window {
        let snapshot = telemetry.metrics_snapshot();
        let mut samples = Vec::with_capacity(snapshot.len());
        for cur in &snapshot {
            let key = (cur.name.clone(), cur.labels.clone());
            let delta = match (&cur.value, inner.prev.get(&key)) {
                (SampleValue::Counter(c), prev) => {
                    let base = match prev {
                        Some(SampleValue::Counter(p)) => *p,
                        _ => 0,
                    };
                    SampleValue::Counter(c.saturating_sub(base))
                }
                (SampleValue::Histogram { buckets, sum, count }, prev) => {
                    let (pb, ps, pc) = match prev {
                        Some(SampleValue::Histogram { buckets, sum, count }) => {
                            (Some(buckets), *sum, *count)
                        }
                        _ => (None, 0, 0),
                    };
                    SampleValue::Histogram {
                        buckets: buckets
                            .iter()
                            .enumerate()
                            .map(|(i, b)| {
                                b.saturating_sub(pb.and_then(|p| p.get(i)).copied().unwrap_or(0))
                            })
                            .collect(),
                        sum: sum.saturating_sub(ps),
                        count: count.saturating_sub(pc),
                    }
                }
                // Gauges are levels: the window carries the last value.
                (SampleValue::Gauge(g), _) => SampleValue::Gauge(*g),
            };
            samples.push(MetricSample { name: cur.name.clone(), labels: cur.labels.clone(), value: delta });
        }
        inner.prev =
            snapshot.into_iter().map(|s| ((s.name.clone(), s.labels.clone()), s.value)).collect();
        let window = Window {
            index: inner.next_index,
            start_ns: inner.last_flush_ns,
            end_ns: now,
            samples,
        };
        inner.next_index += 1;
        inner.last_flush_ns = now;
        self.last_flush_ns.store(now, Ordering::Relaxed);
        if inner.windows.len() == self.capacity {
            inner.windows.pop_front();
        }
        inner.windows.push_back(window.clone());
        window
    }

    /// The retained ring, oldest first.
    pub fn windows(&self) -> Vec<Window> {
        self.inner.lock().expect("window book").windows.iter().cloned().collect()
    }

    /// Windows flushed so far (including ones the ring has evicted).
    pub fn flushed(&self) -> u64 {
        self.inner.lock().expect("window book").next_index
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::{names, ManualClock};

    #[test]
    fn deltas_telescope_to_registry_totals() {
        let clock = Arc::new(ManualClock::new());
        let t = Telemetry::with_clock(clock.clone());
        let book = WindowBook::new(100, 8);
        let c = t.counter(names::KEYS_TESTED, &[("worker", "w0")]);
        let mut windows = Vec::new();
        for step in 1..=5u64 {
            c.add(step * 10);
            clock.advance(100);
            windows.push(book.flush(&t));
        }
        let summed: u64 = windows.iter().map(|w| w.counter_total(names::KEYS_TESTED)).sum();
        assert_eq!(summed, c.get(), "window deltas telescope to the cumulative total");
        assert_eq!(windows.last().unwrap().counter_total(names::KEYS_TESTED), 50);
    }

    #[test]
    fn maybe_flush_honors_width_and_ring_capacity() {
        let clock = Arc::new(ManualClock::new());
        let t = Telemetry::with_clock(clock.clone());
        let book = WindowBook::new(1_000, 2);
        assert!(book.maybe_flush(&t).is_none(), "no width elapsed yet");
        clock.advance(999);
        assert!(book.maybe_flush(&t).is_none());
        clock.advance(1);
        let w = book.maybe_flush(&t).expect("one width elapsed");
        assert_eq!((w.index, w.start_ns, w.end_ns), (0, 0, 1_000));
        for _ in 0..3 {
            clock.advance(1_000);
            assert!(book.maybe_flush(&t).is_some());
        }
        assert_eq!(book.flushed(), 4);
        assert_eq!(book.windows().len(), 2, "ring keeps only the newest windows");
        assert_eq!(book.windows()[1].index, 3);
    }

    #[test]
    fn histograms_diff_per_bucket_and_gauges_keep_levels() {
        let clock = Arc::new(ManualClock::new());
        let t = Telemetry::with_clock(clock.clone());
        let book = WindowBook::new(10, 4);
        let h = t.histogram(names::SCAN_NS, &[("worker", "w0")]);
        let g = t.gauge(names::WORKER_RATE_EST, &[("worker", "w0")]);
        h.observe(5);
        g.set(3.5);
        clock.advance(10);
        book.flush(&t);
        h.observe(900);
        g.set(1.25);
        clock.advance(10);
        let w = book.flush(&t);
        let (buckets, count) = w.histogram_buckets(names::SCAN_NS).expect("histogram present");
        assert_eq!(count, 1, "only the second observation is in this window");
        assert_eq!(buckets.iter().sum::<u64>(), 1);
        assert_eq!(w.gauge(names::WORKER_RATE_EST, "worker", "w0"), Some(1.25));
    }
}
