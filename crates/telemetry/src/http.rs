//! A minimal std-only HTTP/1.1 exposition endpoint: `/metrics`
//! (Prometheus text 0.0.4), `/healthz` (JSON liveness), and `/jobs`
//! (a JSON snapshot supplied by the embedding command).
//!
//! Built on the same blocking `TcpListener` pattern as the job
//! service's line protocol: one accept loop on a background thread,
//! one short-lived handler thread per connection, `Connection: close`
//! semantics. This is an operator scrape endpoint, not a web server —
//! it answers `GET`, closes, and rejects everything else with the
//! smallest correct status line.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::Telemetry;

/// Supplies the `/jobs` JSON body (the serve command closes over its
/// spool; crack/cluster runs have no jobs and use the default).
pub type JobsFn = Arc<dyn Fn() -> String + Send + Sync>;

/// A running exposition endpoint. Dropping the handle leaves the
/// server running for the rest of the process (scrape endpoints
/// usually live exactly as long as the run); call
/// [`MetricsServer::shutdown`] for an orderly stop in tests.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer").field("addr", &self.addr).finish_non_exhaustive()
    }
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// serve the given telemetry until shutdown. `jobs` supplies the
    /// `/jobs` body; `None` serves an empty job list.
    pub fn spawn(addr: &str, telemetry: Telemetry, jobs: Option<JobsFn>) -> Result<Self, String> {
        let listener =
            TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
        let local = listener.local_addr().map_err(|e| format!("no local addr: {e}"))?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = stop.clone();
        std::thread::Builder::new()
            .name("eks-metrics-http".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let telemetry = telemetry.clone();
                    let jobs = jobs.clone();
                    // One short-lived thread per scrape: scrapers are
                    // rare (a dashboard poll every second or two) and
                    // this keeps a stuck client from blocking accepts.
                    let _ = std::thread::Builder::new()
                        .name("eks-metrics-conn".into())
                        .spawn(move || handle_conn(stream, &telemetry, jobs.as_ref()));
                }
            })
            .map_err(|e| format!("cannot spawn accept loop: {e}"))?;
        Ok(Self { addr: local, stop })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting. A self-connection unblocks the accept loop.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = TcpStream::connect(self.addr);
    }
}

fn handle_conn(stream: TcpStream, telemetry: &Telemetry, jobs: Option<&JobsFn>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain the headers; the response does not depend on them.
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line == "\r\n" || line == "\n" => break,
            Ok(_) => continue,
            Err(_) => return,
        }
    }
    let mut stream = reader.into_inner();
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let response = if method != "GET" {
        respond(405, "text/plain; charset=utf-8", "method not allowed\n")
    } else {
        match path {
            "/metrics" => respond(
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                &telemetry.render_prometheus(),
            ),
            "/healthz" => respond(
                200,
                "application/json",
                &format!("{{\"ok\":true,\"uptime_ns\":{}}}\n", telemetry.now_ns()),
            ),
            "/jobs" => {
                let body =
                    jobs.map_or_else(|| "{\"ok\":true,\"jobs\":[]}\n".to_string(), |f| f());
                respond(200, "application/json", &body)
            }
            _ => respond(404, "text/plain; charset=utf-8", "not found\n"),
        }
    };
    let _ = stream.write_all(response.as_bytes());
}

fn respond(status: u16, content_type: &str, body: &str) -> String {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

/// A one-shot HTTP GET against `addr` (no scheme), returning the body
/// on any 200 response. This is the client side `eks top` and the CI
/// smoke gates scrape with, so the endpoint is exercised end to end
/// without any external tooling.
pub fn http_get(addr: &str, path: &str) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("cannot connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| format!("timeout setup: {e}"))?;
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes())
        .map_err(|e| format!("request write: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).map_err(|e| format!("status read: {e}"))?;
    if !status_line.contains(" 200 ") {
        return Err(format!("{path}: {}", status_line.trim()));
    }
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line == "\r\n" || line == "\n" => break,
            Ok(_) => continue,
            Err(e) => return Err(format!("header read: {e}")),
        }
    }
    let mut body = String::new();
    std::io::Read::read_to_string(&mut reader, &mut body).map_err(|e| format!("body read: {e}"))?;
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{names, parse_prometheus};

    #[test]
    fn serves_metrics_healthz_and_jobs() {
        let t = Telemetry::enabled();
        t.counter(names::KEYS_TESTED, &[("worker", "w0")]).add(7);
        let jobs: JobsFn = Arc::new(|| "{\"ok\":true,\"jobs\":[{\"id\":1}]}\n".to_string());
        let server = MetricsServer::spawn("127.0.0.1:0", t, Some(jobs)).expect("bind");
        let addr = server.local_addr().to_string();

        let metrics = http_get(&addr, "/metrics").expect("/metrics");
        let samples = parse_prometheus(&metrics).expect("scrape parses");
        assert!(samples.iter().any(|s| s.name == names::KEYS_TESTED && s.value == 7.0));

        let health = http_get(&addr, "/healthz").expect("/healthz");
        assert!(health.contains("\"ok\":true"), "{health}");

        let jobs_body = http_get(&addr, "/jobs").expect("/jobs");
        assert!(jobs_body.contains("\"id\":1"), "{jobs_body}");

        assert!(http_get(&addr, "/nope").is_err(), "unknown path is 404");
        server.shutdown();
    }

    #[test]
    fn default_jobs_body_is_an_empty_list() {
        let server = MetricsServer::spawn("127.0.0.1:0", Telemetry::disabled(), None).expect("bind");
        let addr = server.local_addr().to_string();
        let body = http_get(&addr, "/jobs").expect("/jobs");
        assert!(body.contains("\"jobs\":[]"), "{body}");
        server.shutdown();
    }
}
