//! Self-contained parsers for the two on-disk artifacts this crate
//! emits: the Prometheus text exposition and the trace JSONL.
//!
//! `eks report` reads saved runs back through these, the CI smoke step
//! uses them as format validators, and the crate's own tests round-trip
//! every exposition through them — so a rendering bug fails loudly
//! instead of producing a file no scraper would accept.

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use crate::trace::{TraceKind, TraceRecord};

/// One parsed sample line of a Prometheus text exposition.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Sample name as written (histogram samples keep their `_bucket`
    /// / `_sum` / `_count` suffix).
    pub name: String,
    /// Label pairs in file order (including `le` on bucket samples).
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl PromSample {
    /// The value of label `key`, when present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// Parse a Prometheus text exposition (format 0.0.4). Returns every
/// sample line; `# TYPE`/`# HELP` comments are validated for shape and
/// skipped. Errors carry the 1-based line number.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if comment.starts_with("TYPE") {
                let mut parts = comment.split_whitespace();
                parts.next();
                let name = parts.next().ok_or(format!("line {lineno}: # TYPE without name"))?;
                let kind = parts.next().ok_or(format!("line {lineno}: # TYPE without type"))?;
                if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                    return Err(format!("line {lineno}: unknown metric type {kind:?}"));
                }
                if !valid_name(name) {
                    return Err(format!("line {lineno}: invalid metric name {name:?}"));
                }
            }
            continue;
        }
        out.push(parse_sample_line(line).map_err(|e| format!("line {lineno}: {e}"))?);
    }
    Ok(out)
}

fn valid_name(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn parse_sample_line(line: &str) -> Result<PromSample, String> {
    let (name_part, rest) = match line.find('{') {
        Some(brace) => {
            let close = line.rfind('}').ok_or("unterminated label block")?;
            if close < brace {
                return Err("mismatched braces".into());
            }
            let labels = &line[brace + 1..close];
            (&line[..brace], Some((labels, &line[close + 1..])))
        }
        None => (line.split_whitespace().next().unwrap_or(""), None),
    };
    if !valid_name(name_part) {
        return Err(format!("invalid metric name {name_part:?}"));
    }
    let (labels, value_str) = match rest {
        Some((labels, tail)) => (parse_labels(labels)?, tail.trim()),
        None => (Vec::new(), line[name_part.len()..].trim()),
    };
    let value_str = value_str.split_whitespace().next().ok_or("missing value")?;
    let value = parse_value(value_str)?;
    Ok(PromSample { name: name_part.to_string(), labels, value })
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        while matches!(chars.peek(), Some(c) if c.is_whitespace() || *c == ',') {
            chars.next();
        }
        if chars.peek().is_none() {
            return Ok(out);
        }
        let mut key = String::new();
        while let Some(&c) = chars.peek() {
            if c == '=' {
                break;
            }
            key.push(c);
            chars.next();
        }
        let key = key.trim().to_string();
        if !valid_name(&key) {
            return Err(format!("invalid label name {key:?}"));
        }
        if chars.next() != Some('=') {
            return Err(format!("label {key:?} missing '='"));
        }
        if chars.next() != Some('"') {
            return Err(format!("label {key:?} value not quoted"));
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('"') => break,
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => return Err(format!("bad escape {other:?} in label {key:?}")),
                },
                Some(c) => value.push(c),
                None => return Err(format!("unterminated value for label {key:?}")),
            }
        }
        out.push((key, value));
    }
}

fn parse_value(s: &str) -> Result<f64, String> {
    match s {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        _ => s.parse::<f64>().map_err(|_| format!("bad sample value {s:?}")),
    }
}

// ---------------------------------------------------------------------
// Minimal JSON for the trace schema.
// ---------------------------------------------------------------------

/// A parsed JSON value — just enough JSON for the flat trace schema.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, when it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items.as_slice()),
            _ => None,
        }
    }
}

/// Parse one JSON document. Errors carry a byte offset.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = json_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn json_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match json_value(bytes, pos)? {
                    Json::Str(s) => s,
                    _ => return Err(format!("object key is not a string at byte {pos}")),
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                members.push((key, json_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(json_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut out = String::new();
            loop {
                match bytes.get(*pos) {
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(out));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match bytes.get(*pos) {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'u') => {
                                let hex = bytes
                                    .get(*pos + 1..*pos + 5)
                                    .ok_or(format!("truncated \\u escape at byte {pos}"))?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex)
                                        .map_err(|_| format!("bad \\u escape at byte {pos}"))?,
                                    16,
                                )
                                .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                                out.push(
                                    char::from_u32(code)
                                        .ok_or(format!("bad \\u escape at byte {pos}"))?,
                                );
                                *pos += 4;
                            }
                            other => return Err(format!("bad escape {other:?} at byte {pos}")),
                        }
                        *pos += 1;
                    }
                    Some(_) => {
                        // Collect the longest run of plain UTF-8 bytes.
                        let start = *pos;
                        while matches!(bytes.get(*pos), Some(c) if *c != b'"' && *c != b'\\') {
                            *pos += 1;
                        }
                        out.push_str(
                            std::str::from_utf8(&bytes[start..*pos])
                                .map_err(|_| format!("invalid UTF-8 at byte {start}"))?,
                        );
                    }
                    None => return Err("unterminated string".into()),
                }
            }
        }
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while matches!(bytes.get(*pos), Some(c) if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii slice");
            text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number at byte {start}"))
        }
        None => Err("unexpected end of input".into()),
    }
}

/// Parse trace JSONL, validating each line against the schema on
/// [`TraceRecord`]. Errors carry the 1-based line number.
pub fn parse_trace_jsonl(text: &str) -> Result<Vec<TraceRecord>, String> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let json = parse_json(line).map_err(|e| format!("line {lineno}: {e}"))?;
        out.push(trace_record_from_json(&json).map_err(|e| format!("line {lineno}: {e}"))?);
    }
    Ok(out)
}

pub(crate) fn trace_record_from_json(json: &Json) -> Result<TraceRecord, String> {
    let ts_ns = json
        .get("ts_ns")
        .and_then(Json::as_u64)
        .ok_or("missing or non-integer \"ts_ns\"")?;
    let dur_ns = json
        .get("dur_ns")
        .and_then(Json::as_u64)
        .ok_or("missing or non-integer \"dur_ns\"")?;
    let kind = match json.get("kind") {
        Some(Json::Str(s)) if s == "span" => TraceKind::Span,
        Some(Json::Str(s)) if s == "event" => TraceKind::Event,
        _ => return Err("\"kind\" must be \"span\" or \"event\"".into()),
    };
    if kind == TraceKind::Event && dur_ns != 0 {
        return Err("events must have dur_ns 0".into());
    }
    let name = match json.get("name") {
        Some(Json::Str(s)) if !s.is_empty() => s.clone(),
        _ => return Err("missing or empty \"name\"".into()),
    };
    let worker = match json.get("worker") {
        Some(Json::Null) | None => None,
        Some(v) => Some(v.as_u64().ok_or("\"worker\" must be an integer or null")? as usize),
    };
    let device = match json.get("device") {
        Some(Json::Null) | None => None,
        Some(Json::Str(s)) => Some(s.clone()),
        Some(_) => return Err("\"device\" must be a string or null".into()),
    };
    let fields = match json.get("fields") {
        Some(Json::Obj(members)) => members
            .iter()
            .map(|(k, v)| match v {
                Json::Str(s) => Ok((k.clone(), s.clone())),
                _ => Err(format!("field {k:?} must be a string")),
            })
            .collect::<Result<Vec<_>, _>>()?,
        None => Vec::new(),
        Some(_) => return Err("\"fields\" must be an object".into()),
    };
    Ok(TraceRecord { ts_ns, dur_ns, kind, name, worker, device, fields })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use crate::trace::TraceSink;

    #[test]
    fn prometheus_roundtrip_through_registry() {
        let r = Registry::new();
        r.counter("eks_keys_tested_total", &[("worker", "w\"0\\")]).add(42);
        r.gauge("eks_efficiency", &[]).set(0.875);
        r.histogram("eks_scan_ns", &[("device", "cpu")]).observe(1000);
        let samples = parse_prometheus(&r.render_prometheus()).expect("parses");
        let tested = samples
            .iter()
            .find(|s| s.name == "eks_keys_tested_total")
            .expect("counter present");
        assert_eq!(tested.value, 42.0);
        assert_eq!(tested.label("worker"), Some("w\"0\\"));
        let inf_bucket = samples
            .iter()
            .find(|s| s.name == "eks_scan_ns_bucket" && s.label("le") == Some("+Inf"))
            .expect("+Inf bucket present");
        assert_eq!(inf_bucket.value, 1.0);
        assert!(samples.iter().any(|s| s.name == "eks_efficiency" && s.value == 0.875));
    }

    #[test]
    fn prometheus_rejects_malformed_lines() {
        assert!(parse_prometheus("ok_metric 1\nbad metric 2\n").is_err());
        assert!(parse_prometheus("m{unclosed=\"v\" 3\n").is_err());
        assert!(parse_prometheus("m{l=\"v\"} not_a_number\n").is_err());
        assert!(parse_prometheus("# TYPE m sideways\nm 1\n").is_err());
    }

    #[test]
    fn trace_jsonl_roundtrip_through_sink() {
        let sink = TraceSink::new(64);
        sink.push(TraceRecord {
            ts_ns: 10,
            dur_ns: 90,
            kind: TraceKind::Span,
            name: "scan".into(),
            worker: Some(3),
            device: Some("simgpu:GTX 660".into()),
            fields: vec![("tested".into(), "4096".into())],
        });
        sink.push(TraceRecord {
            ts_ns: 200,
            dur_ns: 0,
            kind: TraceKind::Event,
            name: "steal".into(),
            worker: None,
            device: None,
            fields: Vec::new(),
        });
        let parsed = parse_trace_jsonl(&sink.to_jsonl()).expect("parses");
        assert_eq!(parsed, sink.snapshot());
    }

    #[test]
    fn trace_jsonl_rejects_schema_violations() {
        assert!(parse_trace_jsonl("{\"dur_ns\": 0}\n").is_err(), "missing ts_ns");
        assert!(
            parse_trace_jsonl(
                "{\"ts_ns\": 1, \"dur_ns\": 5, \"kind\": \"event\", \"name\": \"x\", \"worker\": null, \"device\": null, \"fields\": {}}\n"
            )
            .is_err(),
            "events must have zero duration"
        );
        assert!(
            parse_trace_jsonl(
                "{\"ts_ns\": 1, \"dur_ns\": 0, \"kind\": \"blip\", \"name\": \"x\", \"worker\": null, \"device\": null, \"fields\": {}}\n"
            )
            .is_err(),
            "unknown kind"
        );
        assert!(parse_trace_jsonl("not json at all\n").is_err());
    }

    #[test]
    fn json_parser_handles_nesting_and_escapes() {
        let v = parse_json("{\"a\": [1, 2.5, null, true], \"b\": {\"c\": \"x\\n\\u0041\"}}")
            .expect("parses");
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&Json::Str("x\nA".into())));
        match v.get("a") {
            Some(Json::Arr(items)) => assert_eq!(items.len(), 4),
            other => panic!("expected array, got {other:?}"),
        }
    }
}
