//! # eks-telemetry — std-only cluster telemetry
//!
//! The observability spine of the workspace: a sharded metrics registry
//! (monotonic counters, gauges, fixed log₂-bucket histograms) with
//! Prometheus-text and JSON exposition, structured trace spans/events
//! drained to JSONL, and an injectable [`Clock`] so every timestamp is
//! deterministic under test. Hand-rolled on `std::sync::atomic` +
//! `Instant` — the workspace has no registry dependencies.
//!
//! ## The handle pattern
//!
//! A [`Telemetry`] is a cheap clone-able handle that is either *enabled*
//! (an `Arc` around a registry + trace sink + clock) or *disabled*
//! (`None`). Every instrument handed out by a disabled handle is a
//! no-op whose update is a single null check, so instrumented code pays
//! effectively nothing when nobody is watching — the bench gate in
//! `ci.sh` holds the enabled batched-MD5 path to ≤ 5 % overhead too,
//! because all instrumentation is amortized at *chunk* granularity
//! (a scan, a batch flush, a round), never per-key.
//!
//! ## Artifacts
//!
//! - `--metrics-out file.prom` → [`Telemetry::render_prometheus`], the
//!   Prometheus text format 0.0.4, validated by
//!   [`parse::parse_prometheus`].
//! - `--trace-out file.jsonl` → [`Telemetry::trace_jsonl`], one JSON
//!   object per line in the schema documented on
//!   [`trace::TraceRecord`], validated by [`parse::parse_trace_jsonl`].
//! - `eks report` renders both back into a human-readable run report
//!   via [`report::render_report`].

pub mod anomaly;
pub mod clock;
pub mod flight;
pub mod http;
pub mod metrics;
pub mod parse;
pub mod report;
pub mod trace;
pub mod window;

pub use anomaly::{Anomaly, AnomalyConfig, AnomalyDetector, AnomalyKind, LivePlane};
pub use clock::{Clock, ManualClock, RealClock, Throttle};
pub use flight::{
    install_panic_hook, parse_flight, read_flight, render_flight, render_postmortem, FlightConfig,
    FlightDump,
};
pub use http::{http_get, JobsFn, MetricsServer};
pub use metrics::{Counter, Gauge, Histogram, MetricSample, Registry, SampleValue};
pub use parse::{parse_json, parse_prometheus, parse_trace_jsonl, Json, PromSample};
pub use trace::{TraceKind, TraceRecord, TraceSink};
pub use window::{Window, WindowBook};

use std::sync::{Arc, OnceLock};

/// Canonical metric and span names, shared by every instrumented layer
/// and by the report renderer so the two ends can never drift apart.
pub mod names {
    /// Counter `{worker}`: keys tested, flushed per chunk by the
    /// Dispatcher from its exact per-worker accounting.
    pub const KEYS_TESTED: &str = "eks_keys_tested_total";
    /// Counter: candidate hits found.
    pub const HITS: &str = "eks_hits_total";
    /// Counter `{worker}`: chunks scanned.
    pub const CHUNKS: &str = "eks_chunks_total";
    /// Histogram `{worker}`: wall ns per chunk scan (the paper's
    /// `K_search` term, measured).
    pub const SCAN_NS: &str = "eks_scan_ns";
    /// Histogram: ns from the stop flag being raised to a worker
    /// observing it (the paper's stop-condition `K_D` delay).
    pub const CANCEL_LATENCY_NS: &str = "eks_cancel_latency_ns";
    /// Counter `{worker}`: successful steals.
    pub const STEALS: &str = "eks_steals_total";
    /// Counter `{worker}`: guided-chunk splits.
    pub const SPLITS: &str = "eks_splits_total";
    /// Counter `{worker}`: ns spent busy scanning.
    pub const BUSY_NS: &str = "eks_busy_ns_total";
    /// Counter `{worker}`: ns spent idle (queue empty / steal misses).
    pub const IDLE_NS: &str = "eks_idle_ns_total";
    /// Histogram: ns filling a candidate `BlockBatch` (sampled).
    pub const BATCH_FILL_NS: &str = "eks_batch_fill_ns";
    /// Histogram: ns lane-hashing one filled batch (sampled).
    pub const BATCH_HASH_NS: &str = "eks_batch_hash_ns";
    /// Counter: `TargetSet` first-word prefilter accepts.
    pub const PREFILTER_HITS: &str = "eks_prefilter_hits_total";
    /// Counter: `TargetSet` first-word prefilter rejects.
    pub const PREFILTER_MISSES: &str = "eks_prefilter_misses_total";
    /// Gauge `{device}`: tuned throughput in MKeys/s from the §VI
    /// tuning step.
    pub const DEVICE_RATE_MKEYS: &str = "eks_device_tuned_rate_mkeys";
    /// Gauge `{backend, isa}`: 1 when the run selected that instruction
    /// set for that backend (the paper's §V per-architecture kernel
    /// specialization, resolved here by runtime CPU-feature detection).
    pub const BACKEND_ISA: &str = "eks_backend_isa";
    /// Gauge `{backend}`: a CPU backend's tuned single-thread
    /// throughput in MKeys/s on this host.
    pub const BACKEND_RATE_MKEYS: &str = "eks_backend_tuned_rate_mkeys";
    /// Gauge: whole-network parallel efficiency percent (the paper
    /// reports 85–90 %).
    pub const CLUSTER_EFFICIENCY_PCT: &str = "eks_cluster_efficiency_percent";
    /// Counter: cluster rounds completed.
    pub const ROUNDS: &str = "eks_rounds_total";
    /// Counter: dynamic-membership rebalances performed.
    pub const REBALANCES: &str = "eks_rebalances_total";
    /// Counter `{job}`: keys credited to one job by the job service —
    /// the per-tenant carve-out of [`KEYS_TESTED`]. Summed over jobs it
    /// reconciles exactly with the sum over workers, because both sides
    /// are flushed from the same `DispatchReport` accounting.
    pub const JOB_KEYS_TESTED: &str = "eks_job_keys_tested_total";
    /// Counter `{job}`: hits credited to one job.
    pub const JOB_HITS: &str = "eks_job_hits_total";
    /// Counter `{job}`: keyspace leases dispatched for one job.
    pub const JOB_LEASES: &str = "eks_job_leases_total";
    /// Gauge `{job}`: keys still pending for one job (drives the
    /// per-job ETA in `eks report`).
    pub const JOB_REMAINING_KEYS: &str = "eks_job_remaining_keys";
    /// Gauge `{worker}`: live EWMA throughput estimate in MKeys/s from
    /// the closed-loop retune controller (falls back to the tuned rate
    /// while the estimator warms up).
    pub const WORKER_RATE_EST: &str = "eks_worker_rate_est_mkeys";
    /// Gauge `{worker}`: the tuned-rate baseline the live estimate is
    /// compared against (the rate-drift column in `eks report` is
    /// `(est - tuned) / tuned`).
    pub const WORKER_RATE_TUNED: &str = "eks_worker_rate_tuned_mkeys";
    /// Counter: live re-scatters performed by the retune controller.
    pub const RESCATTERS: &str = "eks_rescatter_total";
    /// Gauge `{device}`: simulated-GPU profiler IPC.
    pub const SIM_IPC: &str = "eks_sim_ipc";
    /// Gauge `{device}`: simulated-GPU profiler efficiency (0..1).
    pub const SIM_EFFICIENCY: &str = "eks_sim_efficiency";
    /// Gauge `{device}`: simulated-GPU dual-issue rate (0..1).
    pub const SIM_DUAL_ISSUE: &str = "eks_sim_dual_issue_rate";

    /// Span: one chunk scan on one worker (`K_search`).
    pub const SPAN_SCAN: &str = "scan";
    /// Span: keyspace partitioning across devices (scatter).
    pub const SPAN_SCATTER: &str = "scatter";
    /// Span: collecting and merging worker reports (gather/merge).
    pub const SPAN_MERGE: &str = "merge";
    /// Span: one cluster round end to end.
    pub const SPAN_ROUND: &str = "round";
    /// Span: a whole parallel crack / cluster search.
    pub const SPAN_RUN: &str = "run";
    /// Event: a worker stole an interval.
    pub const EVENT_STEAL: &str = "steal";
    /// Event: a guided chunk was split.
    pub const EVENT_SPLIT: &str = "split";
    /// Event: a device joined mid-search.
    pub const EVENT_JOIN: &str = "join";
    /// Event: a device left mid-search.
    pub const EVENT_LEAVE: &str = "leave";
    /// Event: a key matched a target digest.
    pub const EVENT_HIT: &str = "hit";
    /// Event: the job service dispatched one keyspace lease.
    pub const EVENT_LEASE: &str = "lease";
    /// Event: a leveled log line routed through the sink.
    pub const EVENT_LOG: &str = "log";
    /// Counter `{kind}`: live anomaly verdicts (`straggler`, `stall`,
    /// `rate-collapse`) from the sliding-window detector.
    pub const ANOMALIES: &str = "eks_anomaly_total";
    /// Gauge `{worker}`: 1 while the anomaly detector flags the worker
    /// (the rescatter plan deprioritizes it), 0 once it recovers.
    pub const WORKER_FLAGGED: &str = "eks_worker_flagged";
    /// Event: the anomaly detector classified a window.
    pub const EVENT_ANOMALY: &str = "anomaly";
}

struct TelemetryInner {
    registry: Registry,
    trace: TraceSink,
    clock: Arc<dyn Clock>,
    /// The optional live observability plane (window ring + anomaly
    /// detector), attached once after construction. The plane never
    /// holds a `Telemetry` back — it always receives the handle as an
    /// argument — so this is not a reference cycle.
    plane: OnceLock<Arc<LivePlane>>,
}

impl std::fmt::Debug for TelemetryInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryInner").field("trace", &self.trace).finish_non_exhaustive()
    }
}

/// The telemetry handle threaded through engine, cracker, cluster and
/// CLI. Clone freely — clones share the same registry and trace sink.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<TelemetryInner>>,
}

impl Telemetry {
    /// The no-op handle: every instrument drops its updates.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled handle on the real clock with default trace capacity.
    pub fn enabled() -> Self {
        Self::with_clock(Arc::new(RealClock::new()))
    }

    /// An enabled handle on an injected clock (tests pass a shared
    /// [`ManualClock`] and advance it by hand).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Self {
            inner: Some(Arc::new(TelemetryInner {
                registry: Registry::new(),
                trace: TraceSink::default(),
                clock,
                plane: OnceLock::new(),
            })),
        }
    }

    /// `true` when updates are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Nanoseconds on the run's clock (0 when disabled).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.clock.now_ns())
    }

    /// Register (or look up) a counter; no-op handle when disabled.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        self.inner.as_ref().map_or_else(Counter::noop, |i| i.registry.counter(name, labels))
    }

    /// Register (or look up) a gauge; no-op handle when disabled.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        self.inner.as_ref().map_or_else(Gauge::noop, |i| i.registry.gauge(name, labels))
    }

    /// Register (or look up) a histogram; no-op handle when disabled.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        self.inner.as_ref().map_or_else(Histogram::noop, |i| i.registry.histogram(name, labels))
    }

    /// Start a span: the guard records `[start, drop)` into the trace
    /// buffer when dropped (or at an explicit [`SpanGuard::finish`]).
    pub fn span(&self, name: &str) -> SpanGuard {
        SpanGuard::new(self, name, TraceKind::Span)
    }

    /// Build an instantaneous event, recorded when the builder drops.
    pub fn event(&self, name: &str) -> SpanGuard {
        SpanGuard::new(self, name, TraceKind::Event)
    }

    /// Push a fully-formed record (used by replay/test helpers).
    pub fn push_record(&self, record: TraceRecord) {
        if let Some(inner) = &self.inner {
            inner.trace.push(record);
        }
    }

    /// A typed snapshot of every registered metric sample (empty when
    /// disabled). The sliding-window layer diffs consecutive snapshots.
    pub fn metrics_snapshot(&self) -> Vec<MetricSample> {
        self.inner.as_ref().map_or_else(Vec::new, |i| i.registry.samples())
    }

    /// Attach the live observability plane. At most one plane per
    /// handle; later calls are ignored (first attach wins), and a
    /// disabled handle ignores the plane entirely. Instrumented layers
    /// then drive it through [`Telemetry::observe_plane`].
    pub fn attach_plane(&self, plane: Arc<LivePlane>) {
        if let Some(inner) = &self.inner {
            let _ = inner.plane.set(plane);
        }
    }

    /// The attached plane, if any.
    pub fn plane(&self) -> Option<Arc<LivePlane>> {
        self.inner.as_ref().and_then(|i| i.plane.get().cloned())
    }

    /// Poke the attached plane: flush a window and classify it if one
    /// width of the clock has elapsed. The common nothing-due path is
    /// one atomic load, so dispatch hot paths call this per chunk.
    pub fn observe_plane(&self) {
        if let Some(inner) = &self.inner {
            if let Some(plane) = inner.plane.get() {
                let _anomalies = plane.observe(self);
            }
        }
    }

    /// Render the Prometheus text exposition (empty when disabled).
    pub fn render_prometheus(&self) -> String {
        self.inner.as_ref().map_or_else(String::new, |i| i.registry.render_prometheus())
    }

    /// Render the JSON metrics snapshot (`[]` when disabled).
    pub fn snapshot_json(&self) -> String {
        self.inner.as_ref().map_or_else(|| "[]\n".to_string(), |i| i.registry.snapshot_json())
    }

    /// Render the trace buffer as JSONL (empty when disabled).
    pub fn trace_jsonl(&self) -> String {
        self.inner.as_ref().map_or_else(String::new, |i| i.trace.to_jsonl())
    }

    /// Copy out the trace buffer in timestamp order.
    pub fn trace_snapshot(&self) -> Vec<TraceRecord> {
        self.inner.as_ref().map_or_else(Vec::new, |i| i.trace.snapshot())
    }

    /// Trace records evicted by ring overflow.
    pub fn trace_dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.trace.dropped())
    }
}

/// A span/event in flight. Dropping the guard records it; build it up
/// with the chained setters first:
///
/// ```
/// # let telemetry = eks_telemetry::Telemetry::enabled();
/// {
///     let _span = telemetry.span("scan").worker(0).device("cpu").field("chunk", 4096u64);
///     // ... timed work ...
/// } // recorded here
/// ```
#[must_use = "a span measures until it is dropped; binding it to _ drops immediately"]
pub struct SpanGuard {
    inner: Option<Arc<TelemetryInner>>,
    kind: TraceKind,
    name: String,
    start_ns: u64,
    worker: Option<usize>,
    device: Option<String>,
    fields: Vec<(String, String)>,
}

impl SpanGuard {
    fn new(telemetry: &Telemetry, name: &str, kind: TraceKind) -> Self {
        let inner = telemetry.inner.clone();
        let start_ns = inner.as_ref().map_or(0, |i| i.clock.now_ns());
        // A disabled guard never records, so skip even the name copy.
        let name = if inner.is_some() { name.to_string() } else { String::new() };
        Self {
            inner,
            kind,
            name,
            start_ns,
            worker: None,
            device: None,
            fields: Vec::new(),
        }
    }

    /// Attach the dispatcher worker id.
    pub fn worker(mut self, worker: usize) -> Self {
        self.worker = Some(worker);
        self
    }

    /// Attach a device/backend label.
    pub fn device(mut self, device: &str) -> Self {
        if self.inner.is_some() {
            self.device = Some(device.to_string());
        }
        self
    }

    /// Attach a free-form field (skipped entirely when disabled, so a
    /// formatted value costs nothing on the no-op path).
    pub fn field(mut self, key: &str, value: impl std::fmt::Display) -> Self {
        if self.inner.is_some() {
            self.fields.push((key.to_string(), value.to_string()));
        }
        self
    }

    /// Record now instead of at scope end.
    pub fn finish(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else { return };
        let dur_ns = match self.kind {
            TraceKind::Span => inner.clock.now_ns().saturating_sub(self.start_ns),
            TraceKind::Event => 0,
        };
        inner.trace.push(TraceRecord {
            ts_ns: self.start_ns,
            dur_ns,
            kind: self.kind,
            name: std::mem::take(&mut self.name),
            worker: self.worker,
            device: self.device.take(),
            fields: std::mem::take(&mut self.fields),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_drops_everything() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.counter(names::KEYS_TESTED, &[]).add(100);
        t.span(names::SPAN_SCAN).worker(0).field("x", 1).finish();
        t.event(names::EVENT_STEAL).finish();
        assert_eq!(t.render_prometheus(), "");
        assert_eq!(t.trace_jsonl(), "");
        assert_eq!(t.now_ns(), 0);
    }

    #[test]
    fn clones_share_state() {
        let t = Telemetry::with_clock(Arc::new(ManualClock::new()));
        let a = t.clone();
        a.counter(names::HITS, &[]).inc();
        assert_eq!(t.counter(names::HITS, &[]).get(), 1);
    }

    #[test]
    fn spans_measure_on_the_injected_clock() {
        let clock = Arc::new(ManualClock::new());
        let t = Telemetry::with_clock(clock.clone());
        clock.advance(100);
        {
            let _span = t.span(names::SPAN_SCAN).worker(2).device("cpu").field("chunk", 4096u64);
            clock.advance(250);
        }
        let trace = t.trace_snapshot();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].ts_ns, 100);
        assert_eq!(trace[0].dur_ns, 250);
        assert_eq!(trace[0].kind, TraceKind::Span);
        assert_eq!(trace[0].worker, Some(2));
        assert_eq!(trace[0].device.as_deref(), Some("cpu"));
        assert_eq!(trace[0].fields, vec![("chunk".to_string(), "4096".to_string())]);
    }

    #[test]
    fn events_are_instantaneous() {
        let clock = Arc::new(ManualClock::at(40));
        let t = Telemetry::with_clock(clock.clone());
        let ev = t.event(names::EVENT_STEAL).worker(1).field("from", 0);
        clock.advance(999);
        ev.finish();
        let trace = t.trace_snapshot();
        assert_eq!(trace[0].ts_ns, 40);
        assert_eq!(trace[0].dur_ns, 0);
    }

    #[test]
    fn attached_plane_flushes_through_observe() {
        let clock = Arc::new(ManualClock::new());
        let t = Telemetry::with_clock(clock.clone());
        t.attach_plane(Arc::new(LivePlane::new(100, 4, AnomalyConfig::default())));
        t.counter(names::KEYS_TESTED, &[("worker", "w0")]).add(5);
        t.observe_plane();
        assert_eq!(t.plane().unwrap().windows().flushed(), 0, "no width elapsed");
        clock.advance(100);
        t.observe_plane();
        let plane = t.plane().unwrap();
        assert_eq!(plane.windows().flushed(), 1);
        assert_eq!(plane.windows().windows()[0].counter_total(names::KEYS_TESTED), 5);
        // First attach wins; a disabled handle ignores planes.
        t.attach_plane(Arc::new(LivePlane::with_defaults()));
        assert_eq!(t.plane().unwrap().windows().flushed(), 1);
        let off = Telemetry::disabled();
        off.attach_plane(Arc::new(LivePlane::with_defaults()));
        assert!(off.plane().is_none());
        off.observe_plane();
    }

    #[test]
    fn exposition_roundtrips_through_own_parsers() {
        let t = Telemetry::with_clock(Arc::new(ManualClock::new()));
        t.counter(names::KEYS_TESTED, &[("worker", "w0")]).add(12);
        t.histogram(names::SCAN_NS, &[("worker", "w0")]).observe(512);
        t.span(names::SPAN_RUN).finish();
        assert!(parse_prometheus(&t.render_prometheus()).is_ok());
        assert_eq!(parse_trace_jsonl(&t.trace_jsonl()).unwrap().len(), 1);
    }
}
