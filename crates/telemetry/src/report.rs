//! The human-readable run report: parsed metrics + trace back into the
//! tables the paper reports (per-worker utilization, per-device rates,
//! measured §III cost-model terms, whole-network efficiency).
//!
//! Works entirely from the on-disk artifacts (a [`PromSample`] list and
//! a [`TraceRecord`] list), so `eks report` can render a run that
//! finished yesterday — nothing here touches live registries.

use crate::names;
use crate::parse::PromSample;
use crate::trace::{TraceKind, TraceRecord};

/// The paper's reported whole-network efficiency band (Section VII).
pub const PAPER_EFFICIENCY_RANGE: (f64, f64) = (85.0, 90.0);

/// One worker's row of the utilization table.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerRow {
    /// The `worker` label value.
    pub worker: String,
    /// Keys charged to this worker.
    pub tested: f64,
    /// Busy nanoseconds.
    pub busy_ns: f64,
    /// Idle nanoseconds.
    pub idle_ns: f64,
    /// Steals performed.
    pub steals: f64,
    /// Splits performed.
    pub splits: f64,
}

impl WorkerRow {
    /// Busy share of accounted time, in percent. 0 when nothing was
    /// accounted (a run so short neither clock ticked) — never NaN.
    pub fn utilization_pct(&self) -> f64 {
        let total = self.busy_ns + self.idle_ns;
        if total <= 0.0 {
            0.0
        } else {
            100.0 * self.busy_ns / total
        }
    }

    /// Keys per busy second. 0 for a zero-duration run — never NaN or
    /// infinite.
    pub fn keys_per_sec(&self) -> f64 {
        if self.busy_ns <= 0.0 {
            0.0
        } else {
            self.tested / (self.busy_ns / 1e9)
        }
    }
}

/// One worker's row of the rate-drift table: the final live (EWMA)
/// rate estimate a retuned run recorded next to the frozen tuned rate
/// it started from.
#[derive(Debug, Clone, PartialEq)]
pub struct RateRow {
    /// The `worker` label value.
    pub worker: String,
    /// Live estimated rate at the end of the run, MKeys/s.
    pub est_mkeys: f64,
    /// Tuned (one-shot calibration) rate, MKeys/s.
    pub tuned_mkeys: f64,
}

impl RateRow {
    /// How far the live estimate drifted from the tuned baseline, in
    /// signed percent (`+` means the worker ran faster than tuned).
    /// 0 when no tuned baseline was recorded — never NaN.
    pub fn drift_pct(&self) -> f64 {
        if self.tuned_mkeys <= 0.0 {
            0.0
        } else {
            100.0 * (self.est_mkeys - self.tuned_mkeys) / self.tuned_mkeys
        }
    }
}

/// One job's row of the multi-tenant table: the per-job carve-out of
/// the shared worker counters, plus what the job still owes.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRow {
    /// The `job` label value.
    pub job: String,
    /// Keys credited to this job.
    pub tested: f64,
    /// Hits credited to this job.
    pub hits: f64,
    /// Leases dispatched for this job.
    pub leases: f64,
    /// Keys still pending (from the remaining-keys gauge), when the
    /// run recorded it.
    pub remaining: Option<f64>,
}

impl JobRow {
    /// This job's share of all job-credited keys, in percent. 0 when
    /// nothing was credited anywhere — never NaN.
    pub fn share_pct(&self, all_jobs_tested: f64) -> f64 {
        if all_jobs_tested <= 0.0 {
            0.0
        } else {
            100.0 * self.tested / all_jobs_tested
        }
    }

    /// Keys per second carved out for this job, prorating the fleet
    /// rate by the job's share of tested keys over the run wall time.
    pub fn keys_per_sec(&self, run_secs: f64) -> f64 {
        if run_secs <= 0.0 {
            0.0
        } else {
            self.tested / run_secs
        }
    }

    /// Estimated seconds to finish this job at its achieved rate.
    /// `None` when the job recorded no remaining gauge or no rate.
    pub fn eta_secs(&self, run_secs: f64) -> Option<f64> {
        let remaining = self.remaining?;
        let rate = self.keys_per_sec(run_secs);
        if rate <= 0.0 {
            return None;
        }
        Some(remaining / rate)
    }
}

/// Everything the report derives before formatting, exposed so tests
/// and the example can assert on numbers instead of grepping prose.
#[derive(Debug, Clone, Default)]
pub struct ReportData {
    /// Total keys tested across workers.
    pub keys_tested: f64,
    /// Total hits.
    pub hits: f64,
    /// Total chunks scanned.
    pub chunks: f64,
    /// Per-worker rows, sorted by worker label.
    pub workers: Vec<WorkerRow>,
    /// Per-job rows, sorted by job label (empty for single-tenant runs).
    pub jobs: Vec<JobRow>,
    /// Per-worker live-vs-tuned rate rows, sorted by worker label
    /// (empty unless the run retuned).
    pub rates: Vec<RateRow>,
    /// Re-scatters the closed-loop controller performed.
    pub rescatters: f64,
    /// Total ns inside `run` spans (wall time the job rates prorate).
    pub run_span_ns: u64,
    /// `(device, tuned MKeys/s)` rows, sorted by device.
    pub device_rates: Vec<(String, f64)>,
    /// `(backend, isa)` selections the run recorded, sorted by backend
    /// (which kernel specialization each CPU backend actually ran).
    pub backend_isas: Vec<(String, String)>,
    /// `(backend, tuned MKeys/s)` rows for CPU backends, sorted by
    /// backend.
    pub backend_rates: Vec<(String, f64)>,
    /// Whole-network efficiency percent, when the run recorded it.
    pub efficiency_pct: Option<f64>,
    /// Total ns inside `scan` spans (the measured `K_search` term).
    pub scan_span_ns: u64,
    /// Per-chunk scan latency `(p50, p95, p99)` in ns, derived from
    /// the log₂-bucket `eks_scan_ns` histogram (bucket upper bounds,
    /// so each figure is exact to within its power-of-two bucket).
    pub scan_ns_quantiles: Option<(f64, f64, f64)>,
    /// Total ns inside `scatter` spans.
    pub scatter_span_ns: u64,
    /// Total ns inside `merge` spans (gather + merge).
    pub merge_span_ns: u64,
    /// Number of `round` spans.
    pub rounds: u64,
    /// Mean stop-condition latency in ns (`K_D`), when measured.
    pub cancel_latency_mean_ns: Option<f64>,
    /// Join/leave events, in time order: `(ts_ns, kind, device)`.
    pub membership: Vec<(u64, String, String)>,
}

/// The value at quantile `q` of a raw (non-cumulative) log₂ bucket
/// vector, reported as the matched bucket's inclusive upper bound
/// (`2^i - 1`; bucket 0 holds zeros). Returns 0 for an empty
/// histogram. Shared by the report's cost-model table and the anomaly
/// detector's p99-shift check so both quote the same figure.
pub fn quantile_from_log2_buckets(buckets: &[u64], q: f64) -> f64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
    let mut cum = 0u64;
    for (i, b) in buckets.iter().enumerate() {
        cum += b;
        if cum >= rank {
            return if i == 0 { 0.0 } else { ((1u128 << i) - 1) as f64 };
        }
    }
    ((1u128 << (buckets.len().saturating_sub(1))) - 1) as f64
}

/// `(p50, p95, p99)` of one histogram family in a parsed exposition,
/// merging every label set's cumulative `_bucket{le=...}` samples.
fn quantiles_from_prom_buckets(samples: &[PromSample], name: &str) -> Option<(f64, f64, f64)> {
    let bucket_name = format!("{name}_bucket");
    // Sum cumulative counts per `le` across label sets, then sort by
    // boundary; the merged series stays cumulative.
    let mut by_le: Vec<(f64, f64)> = Vec::new();
    for s in samples.iter().filter(|s| s.name == bucket_name) {
        let le = match s.label("le") {
            Some("+Inf") => f64::INFINITY,
            Some(v) => v.parse().ok()?,
            None => continue,
        };
        match by_le.iter_mut().find(|(b, _)| *b == le) {
            Some((_, cum)) => *cum += s.value,
            None => by_le.push((le, s.value)),
        }
    }
    by_le.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let total = by_le.last().map(|(_, cum)| *cum).filter(|t| *t > 0.0)?;
    let at = |q: f64| {
        let rank = (q * total).ceil().max(1.0);
        let mut best = 0.0;
        for (le, cum) in &by_le {
            best = if le.is_finite() { *le } else { best };
            if *cum >= rank {
                return best;
            }
        }
        best
    };
    Some((at(0.50), at(0.95), at(0.99)))
}

fn sum_by_name(samples: &[PromSample], name: &str) -> f64 {
    // `+ 0.0` normalizes the empty-sum identity (-0.0) to plain zero.
    samples.iter().filter(|s| s.name == name).map(|s| s.value).sum::<f64>() + 0.0
}

fn metric_for_worker<'a>(
    samples: &'a [PromSample],
    name: &str,
    worker: &str,
) -> impl Iterator<Item = &'a PromSample> + 'a {
    let worker = worker.to_string();
    let name = name.to_string();
    samples
        .iter()
        .filter(move |s| s.name == name && s.label("worker") == Some(worker.as_str()))
}

/// Derive [`ReportData`] from parsed artifacts.
pub fn analyze(samples: &[PromSample], trace: &[TraceRecord]) -> ReportData {
    let mut data = ReportData {
        keys_tested: sum_by_name(samples, names::KEYS_TESTED),
        hits: sum_by_name(samples, names::HITS),
        chunks: sum_by_name(samples, names::CHUNKS),
        ..ReportData::default()
    };

    let mut workers: Vec<String> = samples
        .iter()
        .filter(|s| s.name == names::KEYS_TESTED)
        .filter_map(|s| s.label("worker").map(str::to_string))
        .collect();
    workers.sort();
    workers.dedup();
    for worker in workers {
        let pick = |name: &str| {
            metric_for_worker(samples, name, &worker).map(|s| s.value).sum::<f64>() + 0.0
        };
        data.workers.push(WorkerRow {
            tested: pick(names::KEYS_TESTED),
            busy_ns: pick(names::BUSY_NS),
            idle_ns: pick(names::IDLE_NS),
            steals: pick(names::STEALS),
            splits: pick(names::SPLITS),
            worker,
        });
    }

    let mut jobs: Vec<String> = samples
        .iter()
        .filter(|s| s.name == names::JOB_KEYS_TESTED)
        .filter_map(|s| s.label("job").map(str::to_string))
        .collect();
    jobs.sort();
    jobs.dedup();
    for job in jobs {
        let pick = |name: &str| {
            samples
                .iter()
                .filter(|s| s.name == name && s.label("job") == Some(job.as_str()))
                .map(|s| s.value)
                .sum::<f64>()
                + 0.0
        };
        let remaining = samples
            .iter()
            .find(|s| s.name == names::JOB_REMAINING_KEYS && s.label("job") == Some(job.as_str()))
            .map(|s| s.value);
        data.jobs.push(JobRow {
            tested: pick(names::JOB_KEYS_TESTED),
            hits: pick(names::JOB_HITS),
            leases: pick(names::JOB_LEASES),
            remaining,
            job,
        });
    }

    let mut rated: Vec<String> = samples
        .iter()
        .filter(|s| s.name == names::WORKER_RATE_EST)
        .filter_map(|s| s.label("worker").map(str::to_string))
        .collect();
    rated.sort();
    rated.dedup();
    for worker in rated {
        let pick = |name: &str| {
            metric_for_worker(samples, name, &worker).map(|s| s.value).next().unwrap_or(0.0)
        };
        data.rates.push(RateRow {
            est_mkeys: pick(names::WORKER_RATE_EST),
            tuned_mkeys: pick(names::WORKER_RATE_TUNED),
            worker,
        });
    }
    data.rescatters = sum_by_name(samples, names::RESCATTERS);

    data.device_rates = samples
        .iter()
        .filter(|s| s.name == names::DEVICE_RATE_MKEYS)
        .filter_map(|s| s.label("device").map(|d| (d.to_string(), s.value)))
        .collect();
    data.device_rates.sort_by(|a, b| a.0.cmp(&b.0));

    data.backend_isas = samples
        .iter()
        .filter(|s| s.name == names::BACKEND_ISA && s.value != 0.0)
        .filter_map(|s| match (s.label("backend"), s.label("isa")) {
            (Some(b), Some(i)) => Some((b.to_string(), i.to_string())),
            _ => None,
        })
        .collect();
    data.backend_isas.sort();

    data.backend_rates = samples
        .iter()
        .filter(|s| s.name == names::BACKEND_RATE_MKEYS)
        .filter_map(|s| s.label("backend").map(|b| (b.to_string(), s.value)))
        .collect();
    data.backend_rates.sort_by(|a, b| a.0.cmp(&b.0));

    data.efficiency_pct = samples
        .iter()
        .find(|s| s.name == names::CLUSTER_EFFICIENCY_PCT)
        .map(|s| s.value);

    data.scan_ns_quantiles = quantiles_from_prom_buckets(samples, names::SCAN_NS);

    let cancel_sum =
        sum_by_name(samples, &format!("{}_sum", names::CANCEL_LATENCY_NS));
    let cancel_count =
        sum_by_name(samples, &format!("{}_count", names::CANCEL_LATENCY_NS));
    if cancel_count > 0.0 {
        data.cancel_latency_mean_ns = Some(cancel_sum / cancel_count);
    }

    for record in trace {
        match (&record.kind, record.name.as_str()) {
            (TraceKind::Span, names::SPAN_SCAN) => data.scan_span_ns += record.dur_ns,
            (TraceKind::Span, names::SPAN_SCATTER) => data.scatter_span_ns += record.dur_ns,
            (TraceKind::Span, names::SPAN_MERGE) => data.merge_span_ns += record.dur_ns,
            (TraceKind::Span, names::SPAN_ROUND) => data.rounds += 1,
            (TraceKind::Span, names::SPAN_RUN) => data.run_span_ns += record.dur_ns,
            (TraceKind::Event, names::EVENT_JOIN | names::EVENT_LEAVE) => {
                data.membership.push((
                    record.ts_ns,
                    record.name.clone(),
                    record.device.clone().unwrap_or_else(|| "?".into()),
                ));
            }
            _ => {}
        }
    }
    data
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Render the full report from parsed artifacts.
pub fn render_report(samples: &[PromSample], trace: &[TraceRecord]) -> String {
    use std::fmt::Write as _;
    let data = analyze(samples, trace);
    let mut out = String::new();

    writeln!(out, "run report").expect("write");
    writeln!(out, "==========").expect("write");
    writeln!(
        out,
        "keys tested: {:.0}   hits: {:.0}   chunks: {:.0}",
        data.keys_tested, data.hits, data.chunks
    )
    .expect("write");

    if !data.workers.is_empty() {
        writeln!(out, "\nper-worker utilization").expect("write");
        writeln!(
            out,
            "{:<24} {:>14} {:>10} {:>10} {:>7} {:>7} {:>7} {:>14}",
            "worker", "tested", "busy ms", "idle ms", "util%", "steals", "splits", "keys/s"
        )
        .expect("write");
        for row in &data.workers {
            writeln!(
                out,
                "{:<24} {:>14.0} {:>10.2} {:>10.2} {:>7.1} {:>7.0} {:>7.0} {:>14.0}",
                row.worker,
                row.tested,
                row.busy_ns / 1e6,
                row.idle_ns / 1e6,
                row.utilization_pct(),
                row.steals,
                row.splits,
                row.keys_per_sec()
            )
            .expect("write");
        }
    }

    if !data.jobs.is_empty() {
        let all_tested: f64 = data.jobs.iter().map(|j| j.tested).sum::<f64>() + 0.0;
        let run_secs = data.run_span_ns as f64 / 1e9;
        writeln!(out, "\nper-job carve-out").expect("write");
        writeln!(
            out,
            "{:<20} {:>14} {:>6} {:>8} {:>8} {:>12} {:>12}",
            "job", "tested", "hits", "leases", "share%", "keys/s", "eta s"
        )
        .expect("write");
        for row in &data.jobs {
            let eta = match row.eta_secs(run_secs) {
                Some(eta) => format!("{eta:>12.1}"),
                None => format!("{:>12}", "-"),
            };
            writeln!(
                out,
                "{:<20} {:>14.0} {:>6.0} {:>8.0} {:>8.1} {:>12.0} {eta}",
                row.job,
                row.tested,
                row.hits,
                row.leases,
                row.share_pct(all_tested),
                row.keys_per_sec(run_secs),
            )
            .expect("write");
        }
    }

    if !data.rates.is_empty() {
        writeln!(out, "\nrate drift (live estimate vs tuned)").expect("write");
        writeln!(
            out,
            "{:<24} {:>14} {:>14} {:>9}",
            "worker", "est MKeys/s", "tuned MKeys/s", "drift%"
        )
        .expect("write");
        for row in &data.rates {
            writeln!(
                out,
                "{:<24} {:>14.2} {:>14.2} {:>+9.1}",
                row.worker, row.est_mkeys, row.tuned_mkeys, row.drift_pct()
            )
            .expect("write");
        }
        writeln!(out, "re-scatters: {:.0}", data.rescatters).expect("write");
    }

    if !data.device_rates.is_empty() {
        writeln!(out, "\nper-device tuned rate").expect("write");
        for (device, rate) in &data.device_rates {
            writeln!(out, "  {device:<32} {rate:>10.2} MKeys/s").expect("write");
        }
    }

    writeln!(out, "\ncost model (paper SIII, measured)").expect("write");
    writeln!(out, "  K_search (scan spans):   {:>12.3} ms", ms(data.scan_span_ns)).expect("write");
    if let Some((p50, p95, p99)) = data.scan_ns_quantiles {
        writeln!(
            out,
            "  scan p50/p95/p99:        {:>12.3} / {:.3} / {:.3} ms per chunk",
            p50 / 1e6,
            p95 / 1e6,
            p99 / 1e6
        )
        .expect("write");
    }
    writeln!(out, "  scatter (partitioning):  {:>12.3} ms", ms(data.scatter_span_ns))
        .expect("write");
    writeln!(out, "  gather/merge:            {:>12.3} ms", ms(data.merge_span_ns))
        .expect("write");
    match data.cancel_latency_mean_ns {
        Some(mean) => {
            writeln!(out, "  K_D (mean stop latency): {:>12.3} ms", mean / 1e6).expect("write")
        }
        None => writeln!(out, "  K_D (mean stop latency):    not measured").expect("write"),
    }
    if data.rounds > 0 {
        writeln!(out, "  rounds:                  {:>12}", data.rounds).expect("write");
    }
    for (backend, isa) in &data.backend_isas {
        writeln!(out, "  selected ISA:            {:>12}  (backend {backend})", isa)
            .expect("write");
    }
    for (backend, rate) in &data.backend_rates {
        writeln!(out, "  tuned rate [{backend:<10}] {:>12.2} MKeys/s", rate).expect("write");
    }

    if let Some(pct) = data.efficiency_pct {
        let (lo, hi) = PAPER_EFFICIENCY_RANGE;
        let verdict = if pct >= lo {
            "within/above the paper's band"
        } else {
            "below the paper's band"
        };
        writeln!(
            out,
            "\nnetwork efficiency: {pct:.1}% (paper reports {lo:.0}-{hi:.0}%; {verdict})"
        )
        .expect("write");
    }

    if !data.membership.is_empty() {
        writeln!(out, "\nmembership events").expect("write");
        for (ts, kind, device) in &data.membership {
            writeln!(out, "  t={:>10.3} ms  {kind:<5} {device}", ms(*ts)).expect("write");
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::parse::{parse_prometheus, parse_trace_jsonl};
    use crate::Telemetry;
    use std::sync::Arc;

    fn sample_run() -> Telemetry {
        let clock = Arc::new(ManualClock::new());
        let t = Telemetry::with_clock(clock.clone());
        t.counter(names::KEYS_TESTED, &[("worker", "w0")]).add(600);
        t.counter(names::KEYS_TESTED, &[("worker", "w1")]).add(400);
        t.counter(names::HITS, &[]).inc();
        t.counter(names::BUSY_NS, &[("worker", "w0")]).add(3_000_000);
        t.counter(names::IDLE_NS, &[("worker", "w0")]).add(1_000_000);
        t.gauge(names::DEVICE_RATE_MKEYS, &[("device", "GTX 660")]).set(215.0);
        t.gauge(names::BACKEND_ISA, &[("backend", "auto"), ("isa", "avx512")]).set(1.0);
        t.gauge(names::BACKEND_RATE_MKEYS, &[("backend", "auto")]).set(40.5);
        t.gauge(names::CLUSTER_EFFICIENCY_PCT, &[]).set(87.5);
        t.histogram(names::CANCEL_LATENCY_NS, &[]).observe(2000);
        t.histogram(names::CANCEL_LATENCY_NS, &[]).observe(4000);
        {
            let span = t.span(names::SPAN_SCAN).worker(0);
            clock.advance(500_000);
            span.finish();
        }
        t.event(names::EVENT_JOIN).device("late-gpu").finish();
        t
    }

    #[test]
    fn analyze_reconstructs_run_numbers() {
        let t = sample_run();
        let samples = parse_prometheus(&t.render_prometheus()).unwrap();
        let trace = parse_trace_jsonl(&t.trace_jsonl()).unwrap();
        let data = analyze(&samples, &trace);
        assert_eq!(data.keys_tested, 1000.0);
        assert_eq!(data.hits, 1.0);
        assert_eq!(data.workers.len(), 2);
        let w0 = &data.workers[0];
        assert_eq!(w0.worker, "w0");
        assert!((w0.utilization_pct() - 75.0).abs() < 1e-9);
        assert_eq!(data.device_rates, vec![("GTX 660".to_string(), 215.0)]);
        assert_eq!(data.backend_isas, vec![("auto".to_string(), "avx512".to_string())]);
        assert_eq!(data.backend_rates, vec![("auto".to_string(), 40.5)]);
        assert_eq!(data.efficiency_pct, Some(87.5));
        assert_eq!(data.scan_span_ns, 500_000);
        assert_eq!(data.cancel_latency_mean_ns, Some(3000.0));
        assert_eq!(data.membership.len(), 1);
    }

    #[test]
    fn scan_quantiles_come_from_the_log2_buckets() {
        let t = Telemetry::enabled();
        // 100 fast chunks near 1 µs, 5 slow ones near 1 ms, split
        // across two workers so the per-le merge is exercised.
        for i in 0..100u64 {
            let worker = if i % 2 == 0 { "w0" } else { "w1" };
            t.histogram(names::SCAN_NS, &[("worker", worker)]).observe(1_000);
        }
        for _ in 0..5 {
            t.histogram(names::SCAN_NS, &[("worker", "w1")]).observe(1_000_000);
        }
        let samples = parse_prometheus(&t.render_prometheus()).unwrap();
        let data = analyze(&samples, &[]);
        let (p50, p95, p99) = data.scan_ns_quantiles.expect("quantiles derived");
        // 1000 lands in [512, 1024) ⇒ upper bound 1023; 1e6 lands in
        // [2^19, 2^20) ⇒ upper bound 2^20 - 1.
        assert_eq!(p50, 1023.0);
        assert_eq!(p95, 1023.0, "95th of 105 observations is still a fast chunk");
        assert_eq!(p99, (1u64 << 20) as f64 - 1.0);
        let report = render_report(&samples, &[]);
        assert!(report.contains("scan p50/p95/p99"), "{report}");
    }

    #[test]
    fn quantiles_of_raw_buckets_match_the_bucket_bounds() {
        let mut buckets = vec![0u64; 40];
        buckets[0] = 10; // zeros
        buckets[5] = 90; // [16, 32)
        assert_eq!(quantile_from_log2_buckets(&buckets, 0.05), 0.0);
        assert_eq!(quantile_from_log2_buckets(&buckets, 0.50), 31.0);
        assert_eq!(quantile_from_log2_buckets(&buckets, 0.99), 31.0);
        assert_eq!(quantile_from_log2_buckets(&[0; 40], 0.99), 0.0, "empty histogram");
    }

    #[test]
    fn per_job_rows_carve_the_shared_counters() {
        let clock = Arc::new(ManualClock::new());
        let t = Telemetry::with_clock(clock.clone());
        // Two workers share the fleet; two jobs split their output.
        t.counter(names::KEYS_TESTED, &[("worker", "w0")]).add(700);
        t.counter(names::KEYS_TESTED, &[("worker", "w1")]).add(300);
        t.counter(names::JOB_KEYS_TESTED, &[("job", "job-1")]).add(600);
        t.counter(names::JOB_KEYS_TESTED, &[("job", "job-2")]).add(400);
        t.counter(names::JOB_HITS, &[("job", "job-1")]).inc();
        t.counter(names::JOB_LEASES, &[("job", "job-1")]).add(3);
        t.counter(names::JOB_LEASES, &[("job", "job-2")]).add(2);
        t.gauge(names::JOB_REMAINING_KEYS, &[("job", "job-2")]).set(4000.0);
        {
            let span = t.span(names::SPAN_RUN);
            clock.advance(2_000_000_000);
            span.finish();
        }
        let samples = parse_prometheus(&t.render_prometheus()).unwrap();
        let trace = parse_trace_jsonl(&t.trace_jsonl()).unwrap();
        let data = analyze(&samples, &trace);
        assert_eq!(data.jobs.len(), 2);
        let j1 = &data.jobs[0];
        let j2 = &data.jobs[1];
        assert_eq!((j1.job.as_str(), j1.tested, j1.hits, j1.leases), ("job-1", 600.0, 1.0, 3.0));
        // Per-job totals reconcile exactly against the worker counters.
        let job_sum: f64 = data.jobs.iter().map(|j| j.tested).sum();
        assert_eq!(job_sum, data.keys_tested);
        assert!((j1.share_pct(job_sum) - 60.0).abs() < 1e-9);
        assert_eq!(data.run_span_ns, 2_000_000_000);
        // job-2: 400 keys over 2 s = 200 keys/s; 4000 remaining = 20 s ETA.
        assert_eq!(j2.keys_per_sec(2.0), 200.0);
        assert_eq!(j2.eta_secs(2.0), Some(20.0));
        assert_eq!(j1.eta_secs(2.0), None, "no remaining gauge, no ETA");

        let report = render_report(&samples, &trace);
        assert!(report.contains("per-job carve-out"), "{report}");
        assert!(!report.contains("NaN"), "{report}");
    }

    #[test]
    fn rate_drift_rows_render_with_signed_percentages() {
        let t = Telemetry::enabled();
        t.counter(names::KEYS_TESTED, &[("worker", "cpu#0")]).add(100);
        t.gauge(names::WORKER_RATE_EST, &[("worker", "cpu#0")]).set(30.0);
        t.gauge(names::WORKER_RATE_TUNED, &[("worker", "cpu#0")]).set(40.0);
        t.gauge(names::WORKER_RATE_EST, &[("worker", "gpu#0")]).set(220.0);
        t.gauge(names::WORKER_RATE_TUNED, &[("worker", "gpu#0")]).set(200.0);
        t.counter(names::RESCATTERS, &[]).add(3);
        let samples = parse_prometheus(&t.render_prometheus()).unwrap();
        let data = analyze(&samples, &[]);
        assert_eq!(data.rates.len(), 2);
        let cpu = &data.rates[0];
        assert_eq!(cpu.worker, "cpu#0");
        assert!((cpu.drift_pct() + 25.0).abs() < 1e-9, "{}", cpu.drift_pct());
        let gpu = &data.rates[1];
        assert!((gpu.drift_pct() - 10.0).abs() < 1e-9, "{}", gpu.drift_pct());
        assert_eq!(data.rescatters, 3.0);
        let report = render_report(&samples, &[]);
        assert!(report.contains("rate drift (live estimate vs tuned)"), "{report}");
        assert!(report.contains("-25.0"), "{report}");
        assert!(report.contains("+10.0"), "{report}");
        assert!(report.contains("re-scatters: 3"), "{report}");
        assert!(!report.contains("NaN"), "{report}");
        // A zero tuned baseline degrades to 0% drift, never NaN.
        let zero = RateRow { worker: "w".into(), est_mkeys: 5.0, tuned_mkeys: 0.0 };
        assert_eq!(zero.drift_pct(), 0.0);
    }

    #[test]
    fn retune_gauges_render_a_stable_prometheus_exposition() {
        // Golden test: the exact exposition text the retune gauges
        // produce, so the on-disk artifact schema can't drift silently.
        let t = Telemetry::enabled();
        t.gauge(names::WORKER_RATE_EST, &[("worker", "cpu#0")]).set(32.5);
        t.gauge(names::WORKER_RATE_TUNED, &[("worker", "cpu#0")]).set(40.0);
        t.counter(names::RESCATTERS, &[]).add(2);
        let text = t.render_prometheus();
        for line in [
            "# TYPE eks_rescatter_total counter",
            "eks_rescatter_total 2",
            "# TYPE eks_worker_rate_est_mkeys gauge",
            "eks_worker_rate_est_mkeys{worker=\"cpu#0\"} 32.5",
            "# TYPE eks_worker_rate_tuned_mkeys gauge",
            "eks_worker_rate_tuned_mkeys{worker=\"cpu#0\"} 40",
        ] {
            assert!(text.contains(line), "missing {line:?} in:\n{text}");
        }
        // And the exposition round-trips through the parser.
        let samples = parse_prometheus(&text).unwrap();
        assert!(samples.iter().any(|s| s.name == names::WORKER_RATE_EST && s.value == 32.5));
    }

    #[test]
    fn zero_duration_rows_never_produce_nan() {
        let row = WorkerRow {
            worker: "w0".into(),
            tested: 10.0,
            busy_ns: 0.0,
            idle_ns: 0.0,
            steals: 0.0,
            splits: 0.0,
        };
        assert_eq!(row.utilization_pct(), 0.0);
        assert_eq!(row.keys_per_sec(), 0.0);
    }

    #[test]
    fn report_renders_every_section() {
        let t = sample_run();
        let samples = parse_prometheus(&t.render_prometheus()).unwrap();
        let trace = parse_trace_jsonl(&t.trace_jsonl()).unwrap();
        let report = render_report(&samples, &trace);
        for needle in [
            "per-worker utilization",
            "per-device tuned rate",
            "cost model",
            "K_search",
            "K_D",
            "selected ISA:                  avx512  (backend auto)",
            "tuned rate [auto      ]        40.50 MKeys/s",
            "network efficiency: 87.5% (paper reports 85-90%",
            "membership events",
        ] {
            assert!(report.contains(needle), "missing {needle:?} in:\n{report}");
        }
        assert!(!report.contains("NaN"), "{report}");
    }

    #[test]
    fn empty_artifacts_render_without_panicking() {
        let report = render_report(&[], &[]);
        assert!(report.contains("keys tested: 0"));
    }
}
