//! The flight recorder: a black-box dump of the run's recent past,
//! written when the process panics (or on demand), replayed by
//! `eks postmortem`.
//!
//! The trace ring ([`crate::TraceSink`]) already *is* a bounded
//! black box — it keeps the most recent spans and events and evicts
//! the oldest. What a crash loses is everything in memory: this module
//! arranges for a panic to first serialize the recorder's view —
//! schema stamp, panic message and location, the last
//! [`FlightConfig::window_ns`] of trace records, the full Prometheus
//! exposition (so the dump reconciles with any mid-run scrape), and
//! the anomaly verdicts the [`LivePlane`] reached — into a
//! `flight.json` before the process dies. [`parse_flight`] validates
//! the stamp (future schemas are rejected, not misread) and
//! [`render_postmortem`] reconstructs the final seconds into a
//! human-readable timeline.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

use crate::anomaly::{Anomaly, AnomalyKind, LivePlane};
use crate::metrics::json_string;
use crate::parse::{parse_json, parse_prometheus, trace_record_from_json, Json, PromSample};
use crate::trace::TraceRecord;
use crate::{names, Telemetry};

/// Version stamp written into every `flight.json`. Bump when the dump
/// shape changes; [`parse_flight`] rejects dumps from the future.
pub const SCHEMA_VERSION: u64 = 1;

/// How the panic hook builds its dump.
#[derive(Debug, Clone)]
pub struct FlightConfig {
    /// Where `flight.json` is written.
    pub path: PathBuf,
    /// How far back the trace timeline reaches (clock ns).
    pub window_ns: u64,
}

impl FlightConfig {
    /// A config dumping to `path` with the default 10 s lookback.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self { path: path.into(), window_ns: 10_000_000_000 }
    }
}

struct HookState {
    telemetry: Telemetry,
    plane: Option<Arc<LivePlane>>,
    config: FlightConfig,
}

/// Process-wide hook state: panic hooks are global, so at most one
/// flight recorder arms per process (re-arming replaces the target).
static HOOK: OnceLock<Mutex<Option<HookState>>> = OnceLock::new();

fn hook_cell() -> &'static Mutex<Option<HookState>> {
    HOOK.get_or_init(|| Mutex::new(None))
}

/// Arm the flight recorder: on panic (any thread — the hook runs on
/// the panicking thread before unwinding reaches a scope join), the
/// current telemetry state is dumped to [`FlightConfig::path`]. The
/// *first* panic wins: a worker-thread panic cascades into a "scoped
/// thread panicked" re-panic at the join, and the dump must keep the
/// root cause, not the echo — so the hook disarms itself after
/// writing. The previous panic hook still runs afterwards, so the
/// usual backtrace is not swallowed. Calling this again re-points (and
/// re-arms) the recorder.
pub fn install_panic_hook(
    telemetry: Telemetry,
    plane: Option<Arc<LivePlane>>,
    config: FlightConfig,
) {
    let cell = hook_cell();
    let first_arm = {
        let mut state = cell.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let first = state.is_none();
        *state = Some(HookState { telemetry, plane, config });
        first
    };
    if !first_arm {
        return;
    }
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let mut state = hook_cell().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        // `take`, not `as_ref`: one dump per arming, from the panic
        // that started the cascade.
        if let Some(state) = state.take() {
            let reason = panic_message(info);
            let location = info
                .location()
                .map_or_else(|| "unknown".to_string(), |l| format!("{}:{}", l.file(), l.line()));
            let dump = render_flight(
                &state.telemetry,
                state.plane.as_deref(),
                state.config.window_ns,
                &reason,
                &location,
            );
            if let Err(e) = std::fs::write(&state.config.path, dump) {
                eprintln!("flight recorder: cannot write {:?}: {e}", state.config.path);
            } else {
                eprintln!("flight recorder: dumped {:?}", state.config.path);
            }
        }
        drop(state);
        prev(info);
    }));
}

fn panic_message(info: &std::panic::PanicHookInfo<'_>) -> String {
    if let Some(s) = info.payload().downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = info.payload().downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Serialize the black box: everything `eks postmortem` needs, as one
/// JSON document. Public so callers can dump without panicking (the
/// observability smoke example snapshots mid-run this way).
pub fn render_flight(
    telemetry: &Telemetry,
    plane: Option<&LivePlane>,
    window_ns: u64,
    reason: &str,
    location: &str,
) -> String {
    use std::fmt::Write as _;
    let now = telemetry.now_ns();
    let cutoff = now.saturating_sub(window_ns);
    let trace: Vec<String> = telemetry
        .trace_snapshot()
        .iter()
        .filter(|r| r.ts_ns >= cutoff)
        .map(TraceRecord::to_json)
        .collect();
    let anomalies: Vec<String> = plane
        .map(LivePlane::recent_anomalies)
        .unwrap_or_default()
        .iter()
        .map(|a| {
            format!(
                "{{\"kind\": {}, \"worker\": {}, \"window\": {}, \"detail\": {}}}",
                json_string(a.kind.as_str()),
                json_string(&a.worker),
                a.window,
                json_string(&a.detail)
            )
        })
        .collect();
    let mut out = String::new();
    writeln!(out, "{{").expect("write");
    writeln!(out, "  \"schema\": {SCHEMA_VERSION},").expect("write");
    writeln!(out, "  \"reason\": {},", json_string(reason)).expect("write");
    writeln!(out, "  \"location\": {},", json_string(location)).expect("write");
    writeln!(out, "  \"ts_ns\": {now},").expect("write");
    writeln!(out, "  \"window_ns\": {window_ns},").expect("write");
    writeln!(out, "  \"metrics_prom\": {},", json_string(&telemetry.render_prometheus()))
        .expect("write");
    writeln!(out, "  \"trace\": [{}],", trace.join(",\n    ")).expect("write");
    writeln!(out, "  \"anomalies\": [{}]", anomalies.join(",\n    ")).expect("write");
    writeln!(out, "}}").expect("write");
    out
}

/// A parsed, schema-checked `flight.json`.
#[derive(Debug, Clone)]
pub struct FlightDump {
    /// The dump's schema stamp (≤ [`SCHEMA_VERSION`]).
    pub schema: u64,
    /// Panic message, or the caller-supplied dump reason.
    pub reason: String,
    /// `file:line` of the panic site (or a caller label).
    pub location: String,
    /// Clock ns at dump time.
    pub ts_ns: u64,
    /// The lookback the trace was filtered to.
    pub window_ns: u64,
    /// Parsed metric samples from the embedded exposition.
    pub metrics: Vec<PromSample>,
    /// The recent trace records, timestamp order.
    pub trace: Vec<TraceRecord>,
    /// The anomaly verdicts the live plane reached before the crash.
    pub anomalies: Vec<Anomaly>,
}

/// Parse and validate a `flight.json`. Rejects dumps stamped with a
/// schema newer than this binary understands.
pub fn parse_flight(text: &str) -> Result<FlightDump, String> {
    let json = parse_json(text)?;
    let schema =
        json.get("schema").and_then(Json::as_u64).ok_or("missing or non-integer \"schema\"")?;
    if schema > SCHEMA_VERSION {
        return Err(format!(
            "flight.json schema {schema} is newer than this binary's {SCHEMA_VERSION}; \
             upgrade eks to replay it"
        ));
    }
    let field_str = |key: &str| -> Result<String, String> {
        json.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("missing or non-string {key:?}"))
    };
    let field_u64 = |key: &str| -> Result<u64, String> {
        json.get(key).and_then(Json::as_u64).ok_or_else(|| format!("missing or non-integer {key:?}"))
    };
    let metrics_text = field_str("metrics_prom")?;
    let metrics = parse_prometheus(&metrics_text)
        .map_err(|e| format!("embedded exposition does not parse: {e}"))?;
    let mut trace = Vec::new();
    for (i, record) in
        json.get("trace").and_then(Json::as_arr).ok_or("missing \"trace\" array")?.iter().enumerate()
    {
        trace.push(
            trace_record_from_json(record).map_err(|e| format!("trace record {i}: {e}"))?,
        );
    }
    let mut anomalies = Vec::new();
    for (i, a) in json
        .get("anomalies")
        .and_then(Json::as_arr)
        .ok_or("missing \"anomalies\" array")?
        .iter()
        .enumerate()
    {
        let kind_str = a
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("anomaly {i}: missing \"kind\""))?;
        anomalies.push(Anomaly {
            kind: AnomalyKind::parse(kind_str)
                .ok_or_else(|| format!("anomaly {i}: unknown kind {kind_str:?}"))?,
            worker: a
                .get("worker")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("anomaly {i}: missing \"worker\""))?
                .to_string(),
            window: a
                .get("window")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("anomaly {i}: missing \"window\""))?,
            detail: a.get("detail").and_then(Json::as_str).unwrap_or("").to_string(),
        });
    }
    Ok(FlightDump {
        schema,
        reason: field_str("reason")?,
        location: field_str("location")?,
        ts_ns: field_u64("ts_ns")?,
        window_ns: field_u64("window_ns")?,
        metrics,
        trace,
        anomalies,
    })
}

/// Read and parse a `flight.json` from disk with a path-carrying error.
pub fn read_flight(path: &Path) -> Result<FlightDump, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read flight dump {path:?}: {e}"))?;
    parse_flight(&text).map_err(|e| format!("invalid flight dump {path:?}: {e}"))
}

/// Reconstruct the dump into the postmortem text `eks postmortem`
/// prints: crash header, per-worker totals from the embedded
/// exposition, the anomaly verdicts, and the final-seconds timeline.
pub fn render_postmortem(dump: &FlightDump) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    writeln!(out, "flight postmortem (schema {})", dump.schema).expect("write");
    writeln!(out, "================================").expect("write");
    writeln!(out, "reason:   {}", dump.reason).expect("write");
    writeln!(out, "location: {}", dump.location).expect("write");
    writeln!(
        out,
        "crashed at t={:.3} ms; timeline covers the last {:.3} ms",
        dump.ts_ns as f64 / 1e6,
        dump.window_ns.min(dump.ts_ns) as f64 / 1e6
    )
    .expect("write");

    let mut workers: Vec<(&str, f64)> = dump
        .metrics
        .iter()
        .filter(|s| s.name == names::KEYS_TESTED)
        .filter_map(|s| s.label("worker").map(|w| (w, s.value)))
        .collect();
    workers.sort_by(|a, b| a.0.cmp(b.0));
    if !workers.is_empty() {
        writeln!(out, "\nper-worker keys tested at crash").expect("write");
        for (worker, tested) in workers {
            writeln!(out, "  {worker:<32} {tested:>14.0}").expect("write");
        }
    }

    if dump.anomalies.is_empty() {
        writeln!(out, "\nanomaly verdicts: none recorded").expect("write");
    } else {
        writeln!(out, "\nanomaly verdicts").expect("write");
        for a in &dump.anomalies {
            writeln!(
                out,
                "  window {:>3}  {:<13} {:<24} {}",
                a.window,
                a.kind.as_str(),
                a.worker,
                a.detail
            )
            .expect("write");
        }
    }

    writeln!(out, "\ntimeline ({} records)", dump.trace.len()).expect("write");
    for r in &dump.trace {
        let worker = r.worker.map_or_else(|| "-".to_string(), |w| format!("w{w}"));
        let device = r.device.as_deref().unwrap_or("");
        let fields = r
            .fields
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(" ");
        writeln!(
            out,
            "  t={:>12.3} ms  +{:>10.3} ms  {:<8} {:<5} {:<12} {}",
            r.ts_ns as f64 / 1e6,
            r.dur_ns as f64 / 1e6,
            r.name,
            worker,
            device,
            fields
        )
        .expect("write");
    }
    out
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::anomaly::AnomalyConfig;
    use crate::ManualClock;

    fn dump_fixture() -> (Telemetry, Arc<LivePlane>, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        let t = Telemetry::with_clock(clock.clone());
        let plane = Arc::new(LivePlane::new(100, 8, AnomalyConfig::default()));
        t.counter(names::KEYS_TESTED, &[("worker", "slow#1")]).add(250);
        t.gauge(names::WORKER_RATE_EST, &[("worker", "slow#1")]).set(1.0);
        t.gauge(names::WORKER_RATE_TUNED, &[("worker", "slow#1")]).set(4.0);
        clock.advance(100);
        plane.observe_now(&t);
        t.span(names::SPAN_SCAN).worker(1).device("cpu").field("tested", 250u64).finish();
        (t, plane, clock)
    }

    #[test]
    fn golden_flight_schema_round_trips() {
        let (t, plane, _clock) = dump_fixture();
        let text = render_flight(&t, Some(&plane), 10_000, "boom", "dispatch.rs:1");
        // The golden shape: schema stamp first, every top-level key
        // present exactly once.
        assert!(text.starts_with("{\n  \"schema\": 1,\n"), "{text}");
        // Trace records carry their own ts_ns/worker keys, so only the
        // keys unique to the top level are pinned to one occurrence.
        for key in ["\"reason\"", "\"location\"", "\"window_ns\"", "\"metrics_prom\"", "\"trace\"", "\"anomalies\""]
        {
            assert_eq!(text.matches(key).count(), 1, "{key} once in {text}");
        }
        let dump = parse_flight(&text).expect("round trip");
        assert_eq!(dump.schema, SCHEMA_VERSION);
        assert_eq!(dump.reason, "boom");
        assert_eq!(dump.location, "dispatch.rs:1");
        assert_eq!(dump.anomalies.len(), 1);
        assert_eq!(dump.anomalies[0].kind, AnomalyKind::Straggler);
        assert_eq!(dump.anomalies[0].worker, "slow#1");
        assert!(dump.trace.iter().any(|r| r.name == names::SPAN_SCAN));
        assert!(dump
            .metrics
            .iter()
            .any(|s| s.name == names::KEYS_TESTED && s.value == 250.0));
    }

    #[test]
    fn future_schema_is_rejected() {
        let (t, plane, _clock) = dump_fixture();
        let text = render_flight(&t, Some(&plane), 10_000, "boom", "x:1");
        let future = text.replace("\"schema\": 1,", "\"schema\": 99,");
        let err = parse_flight(&future).expect_err("future schema must not parse");
        assert!(err.contains("schema 99"), "{err}");
        assert!(err.contains("newer"), "{err}");
    }

    #[test]
    fn window_filter_drops_old_trace_records() {
        let clock = Arc::new(ManualClock::new());
        let t = Telemetry::with_clock(clock.clone());
        t.event("old").finish();
        clock.advance(1_000_000);
        t.event("recent").finish();
        clock.advance(10);
        let dump = parse_flight(&render_flight(&t, None, 500, "r", "l")).unwrap();
        assert_eq!(dump.trace.len(), 1);
        assert_eq!(dump.trace[0].name, "recent");
    }

    #[test]
    fn postmortem_names_the_flagged_worker() {
        let (t, plane, _clock) = dump_fixture();
        let dump = parse_flight(&render_flight(&t, Some(&plane), 10_000, "boom", "x:1")).unwrap();
        let text = render_postmortem(&dump);
        assert!(text.contains("slow#1"), "{text}");
        assert!(text.contains("straggler"), "{text}");
        assert!(text.contains("reason:   boom"), "{text}");
        assert!(text.contains("timeline"), "{text}");
    }

    #[test]
    fn corrupt_dumps_error_cleanly() {
        assert!(parse_flight("{").is_err());
        assert!(parse_flight("{\"schema\": 1}").is_err(), "missing fields");
    }
}
