//! Launch timelines: executing a multi-grid plan against the watchdog.
//!
//! [`crate::grid::plan_launches`] sizes the launches; this module plays a
//! plan out in (simulated) time, verifying the §IV-A claim end-to-end:
//! every launch stays under the OS watchdog limit while the sequence
//! covers the full interval, and the per-launch overhead decides how much
//! throughput the splitting costs.

use crate::device::Device;
use crate::grid::{plan_launches, LaunchConfig};

/// One executed launch in the timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaunchRecord {
    /// The launch configuration.
    pub config: LaunchConfig,
    /// Start time, seconds from the beginning of the plan.
    pub start_s: f64,
    /// Kernel execution time, seconds.
    pub duration_s: f64,
}

/// The executed plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    /// Per-launch records, in order.
    pub launches: Vec<LaunchRecord>,
    /// Keys covered (≥ the requested total — the last grid may overshoot).
    pub keys_covered: u128,
    /// Total wall-clock including per-launch overheads, seconds.
    pub total_s: f64,
    /// Longest single kernel execution, seconds (the watchdog-relevant
    /// number).
    pub max_launch_s: f64,
}

impl Timeline {
    /// Effective throughput in MKey/s over the whole plan.
    pub fn effective_mkeys(&self, requested_keys: u128) -> f64 {
        requested_keys as f64 / self.total_s / 1e6
    }

    /// Fraction of time spent computing (vs launch overhead).
    pub fn utilization(&self) -> f64 {
        let busy: f64 = self.launches.iter().map(|l| l.duration_s).sum();
        busy / self.total_s
    }
}

/// Execute a launch plan for `total_keys` at `device_mkeys`, charging
/// `overhead_s` per launch.
///
/// # Panics
/// Panics when rates or overheads are non-positive where they must not be.
pub fn execute_plan(
    total_keys: u128,
    device: &Device,
    device_mkeys: f64,
    watchdog_ms: f64,
    overhead_s: f64,
) -> Timeline {
    assert!(overhead_s >= 0.0);
    let plan = plan_launches(total_keys, device, device_mkeys, watchdog_ms);
    let mut launches = Vec::with_capacity(plan.len());
    let mut clock = 0.0f64;
    let mut covered: u128 = 0;
    let mut max_launch = 0.0f64;
    for config in plan {
        clock += overhead_s;
        let keys = config.keys_per_launch();
        let duration = keys as f64 / (device_mkeys * 1e6);
        launches.push(LaunchRecord { config, start_s: clock, duration_s: duration });
        clock += duration;
        covered += keys;
        max_launch = max_launch.max(duration);
    }
    Timeline { launches, keys_covered: covered, total_s: clock.max(1e-12), max_launch_s: max_launch }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> Device {
        Device::geforce_gtx_660()
    }

    #[test]
    fn every_launch_respects_the_watchdog() {
        let t = execute_plan(20_000_000_000, &dev(), 1841.0, 500.0, 0.001);
        assert!(t.launches.len() > 1, "watchdog must split");
        for l in &t.launches {
            assert!(
                l.duration_s <= 0.5 * 1.05,
                "launch of {:.3} s exceeds the 500 ms watchdog",
                l.duration_s
            );
        }
        assert!(t.max_launch_s <= 0.5 * 1.05);
    }

    #[test]
    fn plan_covers_the_interval() {
        let total = 12_345_678_901u128;
        let t = execute_plan(total, &dev(), 1841.0, 500.0, 0.001);
        assert!(t.keys_covered >= total);
    }

    #[test]
    fn launches_are_sequential() {
        let t = execute_plan(5_000_000_000, &dev(), 1841.0, 500.0, 0.001);
        for w in t.launches.windows(2) {
            assert!(w[1].start_s >= w[0].start_s + w[0].duration_s);
        }
    }

    #[test]
    fn overhead_lowers_utilization() {
        let cheap = execute_plan(10_000_000_000, &dev(), 1841.0, 500.0, 0.0001);
        let costly = execute_plan(10_000_000_000, &dev(), 1841.0, 500.0, 0.05);
        assert!(cheap.utilization() > costly.utilization());
        assert!(cheap.utilization() > 0.99);
        assert!(costly.effective_mkeys(10_000_000_000) < 1841.0);
    }

    #[test]
    fn tighter_watchdog_means_more_launches() {
        let strict = execute_plan(10_000_000_000, &dev(), 1841.0, 100.0, 0.001);
        let loose = execute_plan(10_000_000_000, &dev(), 1841.0, 2000.0, 0.001);
        assert!(strict.launches.len() > loose.launches.len());
        for l in &strict.launches {
            assert!(l.duration_s <= 0.1 * 1.05);
        }
    }

    #[test]
    fn zero_keys_zero_timeline() {
        let t = execute_plan(0, &dev(), 1841.0, 500.0, 0.001);
        assert!(t.launches.is_empty());
        assert_eq!(t.keys_covered, 0);
    }
}
