//! Occupancy: how many warps actually fit on a multiprocessor.
//!
//! The simulator defaults to the architecture's maximum resident warps,
//! justified by the kernels' small register footprints — this module
//! supplies the justification. Physical registers are estimated with a
//! linear-scan over the lowered stream (maximum simultaneously-live
//! virtual registers), and occupancy follows from the register file size.
//! The paper’s reference \[13\] (Volkov, "Better performance at lower
//! occupancy") is the classic treatment of why this matters: latency
//! hiding needs `latency / issue` warps, not necessarily the maximum.

use crate::arch::ComputeCapability;
use crate::codegen::CompiledKernel;
use crate::liveness;

/// Register file size (32-bit registers per multiprocessor).
pub fn register_file_size(cc: ComputeCapability) -> u32 {
    match cc {
        ComputeCapability::Sm1x => 8 * 1024,
        ComputeCapability::Sm20 | ComputeCapability::Sm21 => 32 * 1024,
        ComputeCapability::Sm30 | ComputeCapability::Sm35 => 64 * 1024,
    }
}

/// Estimate the physical registers one thread needs: the maximum number
/// of simultaneously-live virtual registers over the stream (a register
/// is live from its definition to its last use; parameters are live from
/// entry to their last use).
pub fn live_registers(kernel: &CompiledKernel) -> u32 {
    liveness::max_live(&kernel.instrs)
}

/// Resident warps given the kernel's register pressure: the architecture
/// maximum clamped by the register file (each warp holds 32 threads'
/// registers).
pub fn resident_warps(kernel: &CompiledKernel) -> u32 {
    let spec = kernel.cc.mp_spec();
    let per_thread = live_registers(kernel).max(1);
    let by_registers = register_file_size(kernel.cc) / (32 * per_thread);
    spec.max_warps.min(by_registers.max(1))
}

/// Occupancy as a fraction of the architecture maximum.
pub fn occupancy(kernel: &CompiledKernel) -> f64 {
    resident_warps(kernel) as f64 / kernel.cc.mp_spec().max_warps as f64
}

/// Minimum warps needed to hide pipeline latency at full issue rate
/// (Volkov's bound: `latency / issue interval` warps per scheduler).
pub fn latency_hiding_warps(cc: ComputeCapability) -> u32 {
    let spec = cc.mp_spec();
    spec.warp_schedulers * spec.result_latency.div_ceil(spec.issue_cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::{lower, LoweringOptions};
    use crate::isa::KernelBuilder;

    fn chain(n: u32) -> CompiledKernel {
        let mut b = KernelBuilder::new("chain");
        let mut x = b.param(0);
        for _ in 0..n {
            x = b.add(x, 1u32);
        }
        lower(&b.build(), LoweringOptions::plain(ComputeCapability::Sm30))
    }

    #[test]
    fn serial_chain_uses_two_registers() {
        // Only the current and next value are ever live together.
        let k = chain(32);
        assert!(live_registers(&k) <= 2, "got {}", live_registers(&k));
    }

    #[test]
    fn wide_fanin_raises_pressure() {
        let mut b = KernelBuilder::new("wide");
        let inputs: Vec<_> = (0..16).map(|i| b.param(i)).collect();
        // Keep everything live until the final reduction.
        let mut acc = inputs[0];
        for &x in &inputs[1..] {
            acc = b.xor(acc, x);
        }
        // Reuse every input once more so they stay live through the tree.
        let mut acc2 = acc;
        for &x in &inputs {
            acc2 = b.add(acc2, x);
        }
        let k = lower(&b.build(), LoweringOptions::plain(ComputeCapability::Sm30));
        assert!(live_registers(&k) >= 16, "got {}", live_registers(&k));
    }

    #[test]
    fn md5_kernel_runs_at_full_occupancy() {
        // The claim behind SimConfig's default: hash kernels use few
        // registers, so occupancy is register-unconstrained everywhere.
        use eks_hashes_free::build_md5_like;
        let k = build_md5_like();
        let regs = live_registers(&k);
        assert!(regs < 40, "MD5-class kernels are lean: {regs} registers");
        for cc in ComputeCapability::ALL {
            let mut kc = k.clone();
            kc.cc = cc;
            assert!(
                (occupancy(&kc) - 1.0).abs() < 1e-9,
                "{cc:?} occupancy {}",
                occupancy(&kc)
            );
        }
    }

    /// A standalone MD5-shaped kernel (state rotation + schedule reads)
    /// without depending on eks-kernels (which depends on us).
    mod eks_hashes_free {
        use super::*;

        pub fn build_md5_like() -> CompiledKernel {
            let mut b = KernelBuilder::new("md5-like");
            let w0 = b.param(0);
            let mut state = [b.constant(1), b.constant(2), b.constant(3), b.constant(4)];
            for i in 0..64u32 {
                let f = {
                    let bc = b.and(state[1], state[2]);
                    let nb = b.not(state[1]);
                    let nbd = b.and(nb, state[3]);
                    b.or(bc, nbd)
                };
                let sum1 = b.add(state[0], f);
                let sum2 = b.add(sum1, if i % 16 == 0 { w0 } else { sum1 });
                let rot = b.rotl(sum2, 1 + (i % 23));
                let nb = b.add(state[1], rot);
                state = [state[3], nb, state[1], state[2]];
            }
            lower(&b.build(), LoweringOptions::plain(ComputeCapability::Sm30))
        }
    }

    #[test]
    fn register_hog_limits_occupancy() {
        // 200 live registers: 64K / (32 × 200) = 10 warps on Kepler.
        let mut b = KernelBuilder::new("hog");
        let inputs: Vec<_> = (0..200).map(|i| b.param(i)).collect();
        let mut acc = inputs[0];
        for &x in &inputs[1..] {
            acc = b.xor(acc, x);
        }
        for &x in &inputs {
            acc = b.add(acc, x);
        }
        let k = lower(&b.build(), LoweringOptions::plain(ComputeCapability::Sm30));
        let w = resident_warps(&k);
        assert!(w < 16, "register pressure must cut occupancy: {w} warps");
        assert!(occupancy(&k) < 0.3);
    }

    #[test]
    fn latency_hiding_bound() {
        // Kepler: 4 schedulers × ceil(6/1) = 24 warps suffice; the MD5
        // kernel at full occupancy (64) is far above the bound.
        let need = latency_hiding_warps(ComputeCapability::Sm30);
        assert!(need <= ComputeCapability::Sm30.mp_spec().max_warps);
        let fermi = latency_hiding_warps(ComputeCapability::Sm21);
        assert!(fermi <= ComputeCapability::Sm21.mp_spec().max_warps);
    }

    #[test]
    fn register_file_sizes() {
        assert_eq!(register_file_size(ComputeCapability::Sm1x), 8192);
        assert_eq!(register_file_size(ComputeCapability::Sm21), 32768);
        assert_eq!(register_file_size(ComputeCapability::Sm30), 65536);
    }
}
