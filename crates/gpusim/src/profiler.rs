//! Profiler reports — the information the authors extracted with the
//! NVIDIA CUDA Profiler (Section V-B: "we found that the kernel does not
//! achieve any instruction level parallelism, since the number of
//! instructions dispatched in a dual-issue fashion is very low (less than
//! 10%)"), reconstructed from a simulation run.

use crate::arch::ComputeCapability;
use crate::codegen::CompiledKernel;
use crate::isa::MachineClass;
use crate::sched::SimResult;
use crate::throughput::mp_hashes_per_cycle;

/// What limits the kernel on this architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// The single shift/MAD-capable core group is saturated (Kepler).
    ShiftPort,
    /// Issue bandwidth: schedulers cannot feed the idle core groups
    /// without dual-issue (Fermi without ILP).
    IssueBandwidth,
    /// The single execution group serializes everything (cc 1.x).
    SerialCores,
    /// Dependency latency dominates (too few resident warps).
    Latency,
}

/// A structured profile of one simulated kernel execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfilerReport {
    /// Instructions per cycle across the multiprocessor.
    pub ipc: f64,
    /// Fraction of instructions issued as the second of a dual-issue pair.
    pub dual_issue_rate: f64,
    /// Fraction of scheduler slots with no ready warp.
    pub idle_no_ready: f64,
    /// Fraction of scheduler slots blocked on busy execution units.
    pub idle_unit_busy: f64,
    /// Per-unit utilization, `(label, busy fraction)`.
    pub unit_utilization: Vec<(String, f64)>,
    /// Achieved fraction of the theoretical throughput bound.
    pub efficiency: f64,
    /// Diagnosed limiter.
    pub bottleneck: Bottleneck,
}

impl ProfilerReport {
    /// Build a report from a kernel and its simulation result.
    pub fn new(kernel: &CompiledKernel, sim: &SimResult, warps: u32) -> Self {
        let cc = kernel.cc;
        let spec = cc.mp_spec();
        let ipc = sim.instructions_issued as f64 / sim.cycles as f64;
        let slots = (spec.warp_schedulers as u64 * sim.cycles) as f64;
        let theo = mp_hashes_per_cycle(cc, &kernel.counts) * kernel.keys_per_iteration as f64;
        let efficiency = (sim.keys_per_cycle() / theo).clamp(0.0, 1.0);

        let unit_utilization = sim
            .unit_busy
            .iter()
            .enumerate()
            .map(|(i, &busy)| (unit_label(cc, i), busy as f64 / sim.cycles as f64))
            .collect::<Vec<_>>();

        let shift_util = unit_utilization
            .iter()
            .find(|(l, _)| l.contains("shift"))
            .map(|(_, u)| *u)
            .unwrap_or(0.0);
        let idle_no_ready = sim.sched_idle_no_ready as f64 / slots;
        let idle_unit_busy = sim.sched_idle_unit_busy as f64 / slots;

        let bottleneck = match cc {
            ComputeCapability::Sm1x => {
                if idle_no_ready > 0.4 && warps < spec.max_warps {
                    Bottleneck::Latency
                } else {
                    Bottleneck::SerialCores
                }
            }
            _ if shift_util > 0.9 => Bottleneck::ShiftPort,
            _ if idle_no_ready > 0.4 && warps < spec.max_warps / 2 => Bottleneck::Latency,
            _ => Bottleneck::IssueBandwidth,
        };

        Self {
            ipc,
            dual_issue_rate: sim.dual_issue_rate(),
            idle_no_ready,
            idle_unit_busy,
            unit_utilization,
            efficiency,
            bottleneck,
        }
    }

    /// Publish the profile's headline numbers as gauges labelled with
    /// the device name: instructions per cycle, achieved fraction of the
    /// theoretical throughput bound, and the dual-issue rate the paper's
    /// Section V-B singles out ("less than 10%"). A disabled registry
    /// makes this a no-op.
    pub fn record_into(&self, telemetry: &eks_telemetry::Telemetry, device: &str) {
        if !telemetry.is_enabled() {
            return;
        }
        use eks_telemetry::names;
        let labels = [("device", device)];
        telemetry.gauge(names::SIM_IPC, &labels).set(self.ipc);
        telemetry.gauge(names::SIM_EFFICIENCY, &labels).set(self.efficiency);
        telemetry.gauge(names::SIM_DUAL_ISSUE, &labels).set(self.dual_issue_rate);
    }

    /// Render as a human-readable profile (one line per metric).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("ipc               : {:.2}\n", self.ipc));
        out.push_str(&format!(
            "dual-issue        : {:.1}%\n",
            self.dual_issue_rate * 100.0
        ));
        out.push_str(&format!(
            "sched idle        : {:.1}% no-ready, {:.1}% unit-busy\n",
            self.idle_no_ready * 100.0,
            self.idle_unit_busy * 100.0
        ));
        for (label, util) in &self.unit_utilization {
            out.push_str(&format!("{label:<18}: {:.1}%\n", util * 100.0));
        }
        out.push_str(&format!(
            "efficiency        : {:.1}% of theoretical\n",
            self.efficiency * 100.0
        ));
        out.push_str(&format!("bottleneck        : {:?}\n", self.bottleneck));
        out
    }
}

fn unit_label(cc: ComputeCapability, index: usize) -> String {
    match cc {
        ComputeCapability::Sm1x => {
            if index == 0 {
                "cores (all)".to_string()
            } else {
                "sfu (add)".to_string()
            }
        }
        ComputeCapability::Sm20 | ComputeCapability::Sm21 => {
            if index == 0 {
                "group0 (al+shift)".to_string()
            } else {
                format!("group{index} (al)")
            }
        }
        ComputeCapability::Sm30 | ComputeCapability::Sm35 => {
            if index == 0 {
                "group0 (shift)".to_string()
            } else {
                format!("group{index} (al)")
            }
        }
    }
}

/// Classes contending for the scarce port (exposed for report consumers).
pub fn shift_port_classes() -> [MachineClass; 4] {
    [MachineClass::Shift, MachineClass::Imad, MachineClass::Prmt, MachineClass::Funnel]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::{lower, LoweringOptions};
    use crate::isa::KernelBuilder;
    use crate::sched::{simulate, SimConfig};

    fn profile(cc: ComputeCapability, shift_heavy: bool, warps: u32) -> ProfilerReport {
        let mut b = KernelBuilder::new("p");
        let mut x = b.param(0);
        for i in 0..64 {
            x = if shift_heavy && i % 2 == 0 { b.shl(x, 1) } else { b.add(x, 1u32) };
        }
        let k = lower(&b.build(), LoweringOptions::plain(cc));
        let sim = simulate(&k, SimConfig { warps, iterations: 10, max_cycles: 50_000_000 });
        ProfilerReport::new(&k, &sim, warps)
    }

    #[test]
    fn kepler_shift_heavy_diagnoses_shift_port() {
        let r = profile(ComputeCapability::Sm30, true, 64);
        assert_eq!(r.bottleneck, Bottleneck::ShiftPort, "{}", r.render());
        let shift_util = r.unit_utilization[0].1;
        assert!(shift_util > 0.9, "shift port busy {shift_util}");
    }

    #[test]
    fn fermi_serial_chain_diagnoses_issue_bandwidth() {
        let r = profile(ComputeCapability::Sm21, false, 48);
        assert_eq!(r.bottleneck, Bottleneck::IssueBandwidth, "{}", r.render());
        assert!(r.dual_issue_rate < 0.10);
    }

    #[test]
    fn cc1x_diagnoses_serial_cores() {
        let r = profile(ComputeCapability::Sm1x, false, 24);
        assert_eq!(r.bottleneck, Bottleneck::SerialCores);
    }

    #[test]
    fn starved_mp_diagnoses_latency() {
        let r = profile(ComputeCapability::Sm21, false, 2);
        assert_eq!(r.bottleneck, Bottleneck::Latency, "{}", r.render());
        assert!(r.idle_no_ready > 0.4);
    }

    #[test]
    fn record_into_publishes_labelled_gauges() {
        let r = profile(ComputeCapability::Sm30, true, 64);
        let telemetry = eks_telemetry::Telemetry::enabled();
        r.record_into(&telemetry, "GeForce GTX 660");
        let text = telemetry.render_prometheus();
        assert!(text.contains("eks_sim_ipc{device=\"GeForce GTX 660\"}"), "{text}");
        assert!(text.contains("eks_sim_efficiency"), "{text}");
        assert!(text.contains("eks_sim_dual_issue_rate"), "{text}");
        // Disabled registries ignore the call.
        r.record_into(&eks_telemetry::Telemetry::disabled(), "x");
    }

    #[test]
    fn render_contains_key_metrics() {
        let r = profile(ComputeCapability::Sm30, true, 64);
        let text = r.render();
        assert!(text.contains("dual-issue"));
        assert!(text.contains("bottleneck"));
        assert!(text.contains("group0 (shift)"));
    }
}
