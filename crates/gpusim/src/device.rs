//! The GPU device catalog — Table VII of the paper, plus a cc 3.5 entry
//! for the funnel-shift extension the authors could not measure.

use crate::arch::ComputeCapability;

/// One GPU model.
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    /// Marketing name.
    pub name: &'static str,
    /// Multiprocessor count.
    pub mp_count: u32,
    /// Total CUDA cores (= mp_count × cores per MP).
    pub cores: u32,
    /// Shader clock in MHz (the clock compute throughput scales with).
    pub clock_mhz: f64,
    /// Compute capability.
    pub cc: ComputeCapability,
}

impl Device {
    /// Shader clock in Hz.
    pub fn clock_hz(&self) -> f64 {
        self.clock_mhz * 1e6
    }

    /// Table VII consistency: cores = MPs × cores-per-MP.
    pub fn is_consistent(&self) -> bool {
        self.cores == self.mp_count * self.cc.mp_spec().cores_per_mp
    }

    /// NVIDIA GeForce 8600M GT (node C).
    pub fn geforce_8600m_gt() -> Self {
        Device { name: "GeForce 8600M GT", mp_count: 4, cores: 32, clock_mhz: 950.0, cc: ComputeCapability::Sm1x }
    }

    /// NVIDIA GeForce 8800 GTS 512 (node D).
    pub fn geforce_8800_gts_512() -> Self {
        Device { name: "GeForce 8800 GTS 512", mp_count: 16, cores: 128, clock_mhz: 1625.0, cc: ComputeCapability::Sm1x }
    }

    /// NVIDIA GeForce GT 540M (node A).
    pub fn geforce_gt_540m() -> Self {
        Device { name: "GeForce GT 540M", mp_count: 2, cores: 96, clock_mhz: 1344.0, cc: ComputeCapability::Sm21 }
    }

    /// NVIDIA GeForce GTX 550 Ti (node B).
    pub fn geforce_gtx_550_ti() -> Self {
        Device { name: "GeForce GTX 550 Ti", mp_count: 4, cores: 192, clock_mhz: 1800.0, cc: ComputeCapability::Sm21 }
    }

    /// NVIDIA GeForce GTX 660 (node B).
    pub fn geforce_gtx_660() -> Self {
        Device { name: "GeForce GTX 660", mp_count: 5, cores: 960, clock_mhz: 1033.0, cc: ComputeCapability::Sm30 }
    }

    /// NVIDIA GeForce GTX 780 — a cc 3.5 part with funnel shift, standing
    /// in for the "compute capability 3.5" devices the authors could not
    /// access (Section V-A). Not part of Table VII.
    pub fn geforce_gtx_780() -> Self {
        Device { name: "GeForce GTX 780", mp_count: 12, cores: 2304, clock_mhz: 900.0, cc: ComputeCapability::Sm35 }
    }
}

/// The five paper devices in Table VII column order.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceCatalog;

impl DeviceCatalog {
    /// Table VII devices, in the paper's column order
    /// (8600M, 8800, 540M, 550Ti, 660).
    pub fn paper_devices() -> Vec<Device> {
        vec![
            Device::geforce_8600m_gt(),
            Device::geforce_8800_gts_512(),
            Device::geforce_gt_540m(),
            Device::geforce_gtx_550_ti(),
            Device::geforce_gtx_660(),
        ]
    }

    /// Look a device up by substring of its name; matching ignores case
    /// and spaces, so `"550Ti"`, `"550 ti"` and `"GTX 550"` all resolve.
    pub fn find(pattern: &str) -> Option<Device> {
        let norm = |s: &str| {
            s.chars()
                .filter(|c| !c.is_whitespace())
                .map(|c| c.to_ascii_lowercase())
                .collect::<String>()
        };
        let p = norm(pattern);
        Self::paper_devices()
            .into_iter()
            .chain(std::iter::once(Device::geforce_gtx_780()))
            .find(|d| norm(d.name).contains(&p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table7_values() {
        // Exact Table VII rows: MPs, cores, clock, compute capability.
        let rows = [
            ("8600M", 4u32, 32u32, 950.0, ComputeCapability::Sm1x),
            ("8800", 16, 128, 1625.0, ComputeCapability::Sm1x),
            ("540M", 2, 96, 1344.0, ComputeCapability::Sm21),
            ("550", 4, 192, 1800.0, ComputeCapability::Sm21),
            ("660", 5, 960, 1033.0, ComputeCapability::Sm30),
        ];
        for (pat, mps, cores, clock, cc) in rows {
            let d = DeviceCatalog::find(pat).unwrap_or_else(|| panic!("{pat} missing"));
            assert_eq!(d.mp_count, mps, "{pat} MPs");
            assert_eq!(d.cores, cores, "{pat} cores");
            assert_eq!(d.clock_mhz, clock, "{pat} clock");
            assert_eq!(d.cc, cc, "{pat} cc");
        }
    }

    #[test]
    fn all_catalog_devices_consistent() {
        for d in DeviceCatalog::paper_devices() {
            assert!(d.is_consistent(), "{}", d.name);
        }
        assert!(Device::geforce_gtx_780().is_consistent());
    }

    #[test]
    fn find_is_case_insensitive_and_total() {
        assert!(DeviceCatalog::find("gtx 660").is_some());
        assert!(DeviceCatalog::find("780").is_some());
        assert!(DeviceCatalog::find("titan").is_none());
    }
}
