//! Kernel IR: the abstract operations a kernel author emits, and the
//! machine instruction classes they lower to.
//!
//! The abstract level corresponds to CUDA C source after trivial
//! simplification (what Table III counts); the machine level corresponds
//! to the `cuobjdump -sass` output the authors inspected (Tables IV–VI).

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use std::fmt;

/// A virtual 32-bit register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u32);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Abstract (source-level) operations.
///
/// Field names are uniform across variants: `dst` is the destination
/// register, `a`/`b` the input operands, `n` a compile-time shift or
/// rotate distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // fields follow the uniform naming documented above
pub enum AbstractOp {
    /// `dst = a + b` (wrapping 32-bit).
    Add { dst: Reg, a: Operand, b: Operand },
    /// `dst = a AND/OR/XOR b`.
    And { dst: Reg, a: Operand, b: Operand },
    /// `dst = a | b`.
    Or { dst: Reg, a: Operand, b: Operand },
    /// `dst = a ^ b`.
    Xor { dst: Reg, a: Operand, b: Operand },
    /// `dst = !a` (bitwise complement).
    Not { dst: Reg, a: Operand },
    /// `dst = a << n`.
    Shl { dst: Reg, a: Operand, n: u32 },
    /// `dst = a >> n` (logical).
    Shr { dst: Reg, a: Operand, n: u32 },
    /// `dst = rotate_left(a, n)` — written in CUDA as
    /// `(x << n) + (x >> (32 - n))`, lowered per architecture.
    Rotl { dst: Reg, a: Operand, n: u32 },
    /// Load a compile-time constant (folds away; no machine instruction).
    Const { dst: Reg, value: u32 },
    /// Load a kernel parameter from constant memory (target hash words,
    /// common substring) — modeled as free after first use, per the
    /// paper's "it can be read very quickly".
    LoadParam { dst: Reg, index: u32 },
}

/// An operand: a register or an immediate constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// Register operand.
    R(Reg),
    /// Immediate constant (folds with other constants).
    Imm(u32),
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::R(r)
    }
}

impl From<u32> for Operand {
    fn from(v: u32) -> Self {
        Operand::Imm(v)
    }
}

impl Operand {
    /// The register this operand reads, if any.
    pub fn reg(self) -> Option<Reg> {
        match self {
            Operand::R(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }
}

impl AbstractOp {
    /// The register this operation defines.
    pub fn dst(&self) -> Reg {
        match *self {
            AbstractOp::Add { dst, .. }
            | AbstractOp::And { dst, .. }
            | AbstractOp::Or { dst, .. }
            | AbstractOp::Xor { dst, .. }
            | AbstractOp::Not { dst, .. }
            | AbstractOp::Shl { dst, .. }
            | AbstractOp::Shr { dst, .. }
            | AbstractOp::Rotl { dst, .. }
            | AbstractOp::Const { dst, .. }
            | AbstractOp::LoadParam { dst, .. } => dst,
        }
    }

    /// The operands this operation reads (0–2 of them).
    pub fn operands(&self) -> [Option<Operand>; 2] {
        match *self {
            AbstractOp::Add { a, b, .. }
            | AbstractOp::And { a, b, .. }
            | AbstractOp::Or { a, b, .. }
            | AbstractOp::Xor { a, b, .. } => [Some(a), Some(b)],
            AbstractOp::Not { a, .. }
            | AbstractOp::Shl { a, .. }
            | AbstractOp::Shr { a, .. }
            | AbstractOp::Rotl { a, .. } => [Some(a), None],
            AbstractOp::Const { .. } | AbstractOp::LoadParam { .. } => [None, None],
        }
    }

    /// The registers this operation reads (def-use hook for dataflow
    /// analyses; immediates impose no dependence).
    pub fn src_regs(&self) -> impl Iterator<Item = Reg> {
        self.operands().into_iter().flatten().filter_map(Operand::reg)
    }

    /// Whether the operation has an input-independent result (constant
    /// and parameter loads; everything else computes from its sources).
    pub fn is_load(&self) -> bool {
        matches!(self, AbstractOp::Const { .. } | AbstractOp::LoadParam { .. })
    }
}

/// Machine instruction classes, matching the paper's Tables IV–VI rows
/// plus the cc 3.5 funnel shift.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MachineClass {
    /// `IADD` — 32-bit integer addition.
    IAdd,
    /// `AND`/`OR`/`XOR` (`LOP`) — 32-bit bitwise logic.
    Lop,
    /// `SHR`/`SHL` — 32-bit shifts.
    Shift,
    /// `IMAD`/`ISCADD` — multiply-add / scaled add (shift-and-add
    /// emulation of the second half of a rotate on cc ≥ 2.0).
    Imad,
    /// `PRMT` — byte permute (`__byte_perm`), used for rotate-by-16.
    Prmt,
    /// `SHF` — funnel shift (cc 3.5+): a full rotate in one instruction.
    Funnel,
}

impl MachineClass {
    /// All classes, in display order.
    pub const ALL: [MachineClass; 6] = [
        MachineClass::IAdd,
        MachineClass::Lop,
        MachineClass::Shift,
        MachineClass::Imad,
        MachineClass::Prmt,
        MachineClass::Funnel,
    ];

    /// Short mnemonic used in table output.
    pub fn mnemonic(self) -> &'static str {
        match self {
            MachineClass::IAdd => "IADD",
            MachineClass::Lop => "AND/OR/XOR",
            MachineClass::Shift => "SHR/SHL",
            MachineClass::Imad => "IMAD/ISCADD",
            MachineClass::Prmt => "PRMT",
            MachineClass::Funnel => "SHF",
        }
    }
}

/// A lowered machine instruction with register dependences (sources that
/// are registers; immediates impose no dependence).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineInstr {
    /// Execution class (selects the execution port and throughput).
    pub class: MachineClass,
    /// Destination register.
    pub dst: Reg,
    /// Source registers (0–3 of them).
    pub srcs: Vec<Reg>,
    /// Compile-time immediate the instruction carries, when the class
    /// takes one: the shift distance for `Shift`, the rotate amount for
    /// `Prmt`/`Funnel`. `None` for plain ALU instructions. Peephole
    /// analyses use it to recognize rotate-emulation sequences.
    pub imm: Option<u32>,
}

impl MachineInstr {
    /// An instruction with no immediate operand.
    pub fn new(class: MachineClass, dst: Reg, srcs: Vec<Reg>) -> Self {
        Self { class, dst, srcs, imm: None }
    }

    /// Attach an immediate operand (shift or rotate amount).
    pub fn with_imm(mut self, imm: u32) -> Self {
        self.imm = Some(imm);
        self
    }
}

/// A kernel body in abstract form: the per-candidate loop body of a
/// cracking kernel. Candidate count per execution of the body is
/// `keys_per_iteration` (the ×2 interleaved variant hashes two).
#[derive(Debug, Clone, PartialEq)]
pub struct KernelIr {
    /// Human-readable kernel name (e.g. `md5/reversed`).
    pub name: String,
    /// Abstract operation stream for one loop iteration.
    pub ops: Vec<AbstractOp>,
    /// Candidates tested per loop iteration.
    pub keys_per_iteration: u32,
    /// Highest register id used + 1.
    pub reg_count: u32,
}

/// Builder for [`KernelIr`] with fresh-register allocation and source-level
/// operation counting.
#[derive(Debug, Clone)]
pub struct KernelBuilder {
    name: String,
    ops: Vec<AbstractOp>,
    next_reg: u32,
    keys_per_iteration: u32,
}

impl KernelBuilder {
    /// Start a kernel.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), ops: Vec::new(), next_reg: 0, keys_per_iteration: 1 }
    }

    /// Set how many candidates one loop iteration tests.
    pub fn keys_per_iteration(&mut self, n: u32) -> &mut Self {
        assert!(n > 0);
        self.keys_per_iteration = n;
        self
    }

    /// Allocate a fresh register.
    pub fn fresh(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Emit `dst = a + b` into a fresh register.
    pub fn add(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        let dst = self.fresh();
        self.ops.push(AbstractOp::Add { dst, a: a.into(), b: b.into() });
        dst
    }

    /// Emit `dst = a & b`.
    pub fn and(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        let dst = self.fresh();
        self.ops.push(AbstractOp::And { dst, a: a.into(), b: b.into() });
        dst
    }

    /// Emit `dst = a | b`.
    pub fn or(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        let dst = self.fresh();
        self.ops.push(AbstractOp::Or { dst, a: a.into(), b: b.into() });
        dst
    }

    /// Emit `dst = a ^ b`.
    pub fn xor(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        let dst = self.fresh();
        self.ops.push(AbstractOp::Xor { dst, a: a.into(), b: b.into() });
        dst
    }

    /// Emit `dst = !a`.
    pub fn not(&mut self, a: impl Into<Operand>) -> Reg {
        let dst = self.fresh();
        self.ops.push(AbstractOp::Not { dst, a: a.into() });
        dst
    }

    /// Emit `dst = a << n`.
    pub fn shl(&mut self, a: impl Into<Operand>, n: u32) -> Reg {
        let dst = self.fresh();
        self.ops.push(AbstractOp::Shl { dst, a: a.into(), n });
        dst
    }

    /// Emit `dst = a >> n`.
    pub fn shr(&mut self, a: impl Into<Operand>, n: u32) -> Reg {
        let dst = self.fresh();
        self.ops.push(AbstractOp::Shr { dst, a: a.into(), n });
        dst
    }

    /// Emit `dst = rotl(a, n)`.
    pub fn rotl(&mut self, a: impl Into<Operand>, n: u32) -> Reg {
        assert!(n > 0 && n < 32, "rotate amount must be in 1..=31");
        let dst = self.fresh();
        self.ops.push(AbstractOp::Rotl { dst, a: a.into(), n });
        dst
    }

    /// Materialize a compile-time constant.
    pub fn constant(&mut self, value: u32) -> Reg {
        let dst = self.fresh();
        self.ops.push(AbstractOp::Const { dst, value });
        dst
    }

    /// Load a kernel parameter (constant memory).
    pub fn param(&mut self, index: u32) -> Reg {
        let dst = self.fresh();
        self.ops.push(AbstractOp::LoadParam { dst, index });
        dst
    }

    /// Finish the kernel.
    pub fn build(self) -> KernelIr {
        KernelIr {
            name: self.name,
            ops: self.ops,
            keys_per_iteration: self.keys_per_iteration,
            reg_count: self.next_reg,
        }
    }
}

impl KernelIr {
    /// Functionally evaluate one iteration of the kernel body with the
    /// given parameter values, returning every register's final value.
    ///
    /// This makes the IR executable, so tests can verify that a kernel
    /// trace really computes MD5/SHA-1 (not just that it has plausible
    /// instruction counts).
    ///
    /// # Panics
    /// Panics on reads of never-written registers or out-of-range
    /// parameters.
    pub fn evaluate(&self, params: &[u32]) -> Vec<u32> {
        let mut regs: Vec<Option<u32>> = vec![None; self.reg_count as usize];
        let get = |regs: &[Option<u32>], op: Operand| -> u32 {
            match op {
                Operand::Imm(v) => v,
                Operand::R(r) => regs[r.0 as usize].expect("read of unwritten register"),
            }
        };
        for op in &self.ops {
            match *op {
                AbstractOp::Add { dst, a, b } => {
                    regs[dst.0 as usize] = Some(get(&regs, a).wrapping_add(get(&regs, b)))
                }
                AbstractOp::And { dst, a, b } => {
                    regs[dst.0 as usize] = Some(get(&regs, a) & get(&regs, b))
                }
                AbstractOp::Or { dst, a, b } => {
                    regs[dst.0 as usize] = Some(get(&regs, a) | get(&regs, b))
                }
                AbstractOp::Xor { dst, a, b } => {
                    regs[dst.0 as usize] = Some(get(&regs, a) ^ get(&regs, b))
                }
                AbstractOp::Not { dst, a } => regs[dst.0 as usize] = Some(!get(&regs, a)),
                AbstractOp::Shl { dst, a, n } => {
                    regs[dst.0 as usize] = Some(get(&regs, a) << n)
                }
                AbstractOp::Shr { dst, a, n } => {
                    regs[dst.0 as usize] = Some(get(&regs, a) >> n)
                }
                AbstractOp::Rotl { dst, a, n } => {
                    regs[dst.0 as usize] = Some(get(&regs, a).rotate_left(n))
                }
                AbstractOp::Const { dst, value } => regs[dst.0 as usize] = Some(value),
                AbstractOp::LoadParam { dst, index } => {
                    regs[dst.0 as usize] = Some(params[index as usize])
                }
            }
        }
        regs.into_iter().map(|r| r.unwrap_or(0)).collect()
    }
}

/// Source-level operation counts (the quantities of Table III: operations
/// "that cannot be evaluated at compile time in the CUDA source code").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceCounts {
    /// 32-bit integer additions (a source rotate contributes one, since it
    /// is written `(x << n) + (x >> (32 - n))`).
    pub add: u32,
    /// Bitwise AND/OR/XOR.
    pub logic: u32,
    /// Unary NOT.
    pub not: u32,
    /// Shifts (a source rotate contributes two).
    pub shift: u32,
}

impl KernelIr {
    /// Count source-level operations, expanding rotates into two shifts
    /// plus one addition as the CUDA source expresses them. Constant loads
    /// and parameter loads are free.
    pub fn source_counts(&self) -> SourceCounts {
        let mut c = SourceCounts::default();
        for op in &self.ops {
            match op {
                AbstractOp::Add { .. } => c.add += 1,
                AbstractOp::And { .. } | AbstractOp::Or { .. } | AbstractOp::Xor { .. } => {
                    c.logic += 1
                }
                AbstractOp::Not { .. } => c.not += 1,
                AbstractOp::Shl { .. } | AbstractOp::Shr { .. } => c.shift += 1,
                AbstractOp::Rotl { .. } => {
                    c.shift += 2;
                    c.add += 1;
                }
                AbstractOp::Const { .. } | AbstractOp::LoadParam { .. } => {}
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_allocates_fresh_registers() {
        let mut b = KernelBuilder::new("t");
        let r0 = b.constant(1);
        let r1 = b.constant(2);
        let r2 = b.add(r0, r1);
        assert_eq!((r0, r1, r2), (Reg(0), Reg(1), Reg(2)));
        let k = b.build();
        assert_eq!(k.reg_count, 3);
        assert_eq!(k.ops.len(), 3);
    }

    #[test]
    fn source_counts_expand_rotates() {
        let mut b = KernelBuilder::new("t");
        let x = b.param(0);
        let y = b.rotl(x, 7);
        let z = b.add(x, y);
        let _ = b.xor(z, x);
        let k = b.build();
        let c = k.source_counts();
        assert_eq!(c.add, 2, "rotate contributes one add");
        assert_eq!(c.shift, 2, "rotate contributes two shifts");
        assert_eq!(c.logic, 1);
        assert_eq!(c.not, 0);
    }

    #[test]
    #[should_panic]
    fn zero_rotate_rejected() {
        let mut b = KernelBuilder::new("t");
        let x = b.param(0);
        b.rotl(x, 0);
    }

    #[test]
    fn operand_conversions() {
        assert_eq!(Operand::from(Reg(3)), Operand::R(Reg(3)));
        assert_eq!(Operand::from(7u32), Operand::Imm(7));
    }

    #[test]
    fn mnemonics_are_table_rows() {
        assert_eq!(MachineClass::IAdd.mnemonic(), "IADD");
        assert_eq!(MachineClass::Imad.mnemonic(), "IMAD/ISCADD");
        assert_eq!(MachineClass::ALL.len(), 6);
    }
}
