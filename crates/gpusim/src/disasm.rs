//! A SASS-like disassembly listing for lowered kernels — the view the
//! authors worked from ("we verified how these instructions were actually
//! compiled into machine code ... by using the cuobjdump -sass tool").
//!
//! Purely textual: useful for debugging kernel builders, for diffing
//! lowering decisions across architectures, and for tests that assert on
//! the instruction mix in a human-auditable form.

use std::fmt::Write as _;

use crate::codegen::CompiledKernel;
use crate::isa::{MachineClass, MachineInstr};

/// Render one instruction in SASS-ish syntax.
pub fn disasm_instr(i: &MachineInstr) -> String {
    let mnemonic = match i.class {
        MachineClass::IAdd => "IADD",
        MachineClass::Lop => "LOP",
        MachineClass::Shift => "SHL",
        MachineClass::Imad => "IMAD.HI",
        MachineClass::Prmt => "PRMT",
        MachineClass::Funnel => "SHF.L",
    };
    let mut out = format!("{mnemonic} R{}", i.dst.0);
    for s in &i.srcs {
        write!(out, ", R{}", s.0).expect("write to string");
    }
    match i.imm {
        Some(v) => write!(out, ", {v:#x}").expect("write to string"),
        None if i.srcs.len() < 2 => out.push_str(", imm"),
        None => {}
    }
    out
}

/// Render a whole kernel with a header and per-class summary footer.
pub fn disasm(kernel: &CompiledKernel) -> String {
    let mut out = String::new();
    writeln!(out, "// kernel {} for cc {}", kernel.name, kernel.cc.label())
        .expect("write to string");
    writeln!(
        out,
        "// {} instructions, {} keys/iteration, {} virtual registers",
        kernel.instrs.len(),
        kernel.keys_per_iteration,
        kernel.reg_count
    )
    .expect("write to string");
    for (pc, i) in kernel.instrs.iter().enumerate() {
        writeln!(out, "/*{pc:04}*/  {}", disasm_instr(i)).expect("write to string");
    }
    writeln!(out, "// ---- summary ----").expect("write to string");
    for class in MachineClass::ALL {
        let n = kernel.counts.get(class);
        if n > 0 {
            writeln!(out, "// {:<12} {n}", class.mnemonic()).expect("write to string");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::ComputeCapability;
    use crate::codegen::{lower, LoweringOptions};
    use crate::isa::KernelBuilder;

    fn sample() -> CompiledKernel {
        let mut b = KernelBuilder::new("sample");
        let x = b.param(0);
        let y = b.rotl(x, 7);
        let _ = b.add(x, y);
        lower(&b.build(), LoweringOptions::plain(ComputeCapability::Sm30))
    }

    #[test]
    fn listing_contains_all_instructions() {
        let k = sample();
        let text = disasm(&k);
        assert_eq!(
            text.matches("/*").count(),
            k.instrs.len(),
            "one line per instruction"
        );
        assert!(text.contains("SHL"), "{text}");
        assert!(text.contains("IMAD.HI"), "{text}");
        assert!(text.contains("IADD"));
        assert!(text.contains("summary"));
    }

    #[test]
    fn instr_rendering() {
        let k = sample();
        let line = disasm_instr(&k.instrs[0]);
        assert!(line.starts_with("SHL R"), "{line}");
    }

    #[test]
    fn per_arch_listings_differ() {
        let mut b = KernelBuilder::new("rot");
        let x = b.param(0);
        let _ = b.rotl(x, 16);
        let ir = b.build();
        let sm1x = disasm(&lower(&ir, LoweringOptions::plain(ComputeCapability::Sm1x)));
        let sm30 = disasm(&lower(&ir, LoweringOptions::for_cc(ComputeCapability::Sm30)));
        let sm35 = disasm(&lower(&ir, LoweringOptions::for_cc(ComputeCapability::Sm35)));
        assert!(sm1x.contains("IADD"), "1.x rotates end in an add");
        assert!(sm30.contains("PRMT"), "3.0 uses byte_perm for rot16");
        assert!(sm35.contains("SHF.L"), "3.5 uses the funnel shift");
    }
}
