//! Theoretical throughput models of Section VI.
//!
//! Given the per-hash machine instruction counts (Tables IV–VI) and a
//! device, these formulas bound the achievable key-test rate:
//!
//! * **cc 1.x** — one single-issue scheduler serializes all classes:
//!   `T = N_ADD/X_ADD + N_LOP/X_LOP + N_SHM/X_SHM` cycles per hash, and
//!   `X = MP_count · clock / T`.
//! * **cc 2.0 / 2.1** — the shift-capable group also executes
//!   additions/logic, so the binding constraint is either total lanes or
//!   the shift port: `X_MP = min(X_AL / N_total, X_SHM / N_SHM)` hashes
//!   per cycle. With MD5's R ≈ 2.9 the first term binds (the paper's
//!   `X_2.1 = X_ADD/LOP · MP / (N_SHM + N_ADD + N_LOP)`); with SHA-1's
//!   R ≈ 1.5 the second binds (`X_2.1 = X_SHM · MP / N_SHM`).
//! * **cc 3.0** — adds/logic (5 groups) and shifts/MAD (1 group) execute
//!   on disjoint ports: `X_MP = min(X_AL / N_AL, X_SHM / N_SHM)`; for both
//!   hashes the shift port binds (`X_3.0 = X_SHM · MP / N_SHM`).
//! * **cc 3.5** — funnel shifts run at double rate, quadrupling rotate
//!   throughput relative to cc 3.0.

use crate::arch::ComputeCapability;
use crate::codegen::InstrCounts;
use crate::device::Device;
use crate::isa::MachineClass;

/// Hashes per clock cycle per multiprocessor under the theoretical model.
pub fn mp_hashes_per_cycle(cc: ComputeCapability, counts: &InstrCounts) -> f64 {
    let n_add = counts.iadd() as f64;
    let n_lop = counts.lop() as f64;
    let n_shm = counts.shift_mad() as f64;
    let n_al = n_add + n_lop;
    match cc {
        ComputeCapability::Sm1x => {
            let x_add = cc.class_throughput(MachineClass::IAdd) as f64;
            let x_lop = cc.class_throughput(MachineClass::Lop) as f64;
            let x_shm = cc.class_throughput(MachineClass::Shift) as f64;
            let t = n_add / x_add + n_lop / x_lop + n_shm / x_shm;
            if t == 0.0 {
                return f64::INFINITY;
            }
            1.0 / t
        }
        ComputeCapability::Sm20 | ComputeCapability::Sm21 => {
            let x_al = cc.class_throughput(MachineClass::IAdd) as f64;
            let x_shm = cc.class_throughput(MachineClass::Shift) as f64;
            let total_bound = if n_al + n_shm > 0.0 { x_al / (n_al + n_shm) } else { f64::INFINITY };
            let shift_bound = if n_shm > 0.0 { x_shm / n_shm } else { f64::INFINITY };
            total_bound.min(shift_bound)
        }
        ComputeCapability::Sm30 => {
            let x_al = cc.class_throughput(MachineClass::IAdd) as f64;
            let x_shm = cc.class_throughput(MachineClass::Shift) as f64;
            let al_bound = if n_al > 0.0 { x_al / n_al } else { f64::INFINITY };
            let shift_bound = if n_shm > 0.0 { x_shm / n_shm } else { f64::INFINITY };
            al_bound.min(shift_bound)
        }
        ComputeCapability::Sm35 => {
            // Plain shifts/MAD/PRMT at 32 lanes/cycle, funnel shifts at 64;
            // the port's time per hash is the sum of both occupancies.
            let x_al = cc.class_throughput(MachineClass::IAdd) as f64;
            let x_shift = cc.class_throughput(MachineClass::Shift) as f64;
            let x_funnel = cc.class_throughput(MachineClass::Funnel) as f64;
            let n_plain = (counts.shift() + counts.imad() + counts.prmt()) as f64;
            let n_funnel = counts.funnel() as f64;
            let port_time = n_plain / x_shift + n_funnel / x_funnel;
            let al_bound = if n_al > 0.0 { x_al / n_al } else { f64::INFINITY };
            let shift_bound = if port_time > 0.0 { 1.0 / port_time } else { f64::INFINITY };
            al_bound.min(shift_bound)
        }
    }
}

/// Theoretical device throughput in MKey/s for a kernel with the given
/// per-hash instruction counts.
pub fn theoretical_mkeys(device: &Device, counts: &InstrCounts) -> f64 {
    mp_hashes_per_cycle(device.cc, counts) * device.mp_count as f64 * device.clock_hz() / 1e6
}

/// The cc 1.x variant *without* SFU co-issue (additions at 8/cycle instead
/// of 10): the paper observes that the lack of ILP prevents the special
/// function units from executing additions, which is what the measured
/// devices actually deliver.
pub fn mp_hashes_per_cycle_sm1x_no_sfu(counts: &InstrCounts) -> f64 {
    let t = (counts.iadd() as f64 + counts.lop() as f64 + counts.shift_mad() as f64) / 8.0;
    if t == 0.0 {
        return f64::INFINITY;
    }
    1.0 / t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{MachineClass, MachineInstr, Reg};

    /// Build an InstrCounts with the given (iadd, lop, shift, imad, prmt)
    /// without constructing a kernel.
    fn counts(iadd: u32, lop: u32, shift: u32, imad: u32, prmt: u32) -> InstrCounts {
        let mut instrs = Vec::new();
        let mut push = |class: MachineClass, n: u32| {
            for _ in 0..n {
                instrs.push(MachineInstr::new(class, Reg(0), vec![]));
            }
        };
        push(MachineClass::IAdd, iadd);
        push(MachineClass::Lop, lop);
        push(MachineClass::Shift, shift);
        push(MachineClass::Imad, imad);
        push(MachineClass::Prmt, prmt);
        InstrCounts::of(&instrs)
    }

    /// Table VI MD5 counts for cc 2.x/3.0: IADD 150, LOP 120, SHR/SHL 43,
    /// IMAD 43, PRMT 3.
    fn md5_table6_2x() -> InstrCounts {
        counts(150, 120, 43, 43, 3)
    }

    /// Table VI MD5 counts for cc 1.x: IADD 197, LOP 118, SHR/SHL 90.
    fn md5_table6_1x() -> InstrCounts {
        counts(197, 118, 90, 0, 0)
    }

    #[test]
    fn table8_md5_theoretical_550ti() {
        // Paper: 962.7 MKey/s. 48 · 4 · 1800e6 / 359 = 962.67...
        let d = Device::geforce_gtx_550_ti();
        let x = theoretical_mkeys(&d, &md5_table6_2x());
        assert!((x - 962.7).abs() < 0.5, "got {x}");
    }

    #[test]
    fn table8_md5_theoretical_540m() {
        // Paper: 359.4 MKey/s.
        let d = Device::geforce_gt_540m();
        let x = theoretical_mkeys(&d, &md5_table6_2x());
        assert!((x - 359.4).abs() < 0.5, "got {x}");
    }

    #[test]
    fn table8_md5_theoretical_660() {
        // Paper: 1851 MKey/s; the shift port binds: 32·5·1033e6/89 = 1857.
        let d = Device::geforce_gtx_660();
        let x = theoretical_mkeys(&d, &md5_table6_2x());
        assert!((x - 1851.0).abs() < 10.0, "got {x}");
    }

    #[test]
    fn table8_md5_theoretical_8800() {
        // Paper: 568 MKey/s. T = 197/10 + 118/8 + 90/8 = 45.7 cycles;
        // 16 · 1625e6 / 45.7 = 568.9 MKey/s.
        let d = Device::geforce_8800_gts_512();
        let x = theoretical_mkeys(&d, &md5_table6_1x());
        assert!((x - 568.0).abs() < 2.0, "got {x}");
    }

    #[test]
    fn table8_md5_theoretical_8600m() {
        // Paper: 83 MKey/s.
        let d = Device::geforce_8600m_gt();
        let x = theoretical_mkeys(&d, &md5_table6_1x());
        assert!((x - 83.0).abs() < 0.5, "got {x}");
    }

    #[test]
    fn sm1x_without_sfu_is_slower() {
        let c = md5_table6_1x();
        let with = mp_hashes_per_cycle(ComputeCapability::Sm1x, &c);
        let without = mp_hashes_per_cycle_sm1x_no_sfu(&c);
        assert!(without < with);
        // 8/10 throughput on the ADD share.
        let t_with = 197.0 / 10.0 + 118.0 / 8.0 + 90.0 / 8.0;
        assert!((1.0 / with - t_with).abs() < 1e-9);
    }

    #[test]
    fn low_ratio_kernels_bind_on_shift_port_on_fermi() {
        // SHA-1-like ratio (~1.5): shift port binds on cc 2.1.
        let sha_like = counts(300, 160, 150, 150, 0);
        let x_al = 48.0f64;
        let x_shm = 16.0f64;
        let h = mp_hashes_per_cycle(ComputeCapability::Sm21, &sha_like);
        let expect = (x_shm / 300.0).min(x_al / 760.0);
        assert!((h - expect).abs() < 1e-12);
        assert!((h - x_shm / 300.0).abs() < 1e-12, "shift-bound");
    }

    #[test]
    fn kepler_is_always_shift_bound_for_hash_kernels() {
        let h = mp_hashes_per_cycle(ComputeCapability::Sm30, &md5_table6_2x());
        assert!((h - 32.0 / 89.0).abs() < 1e-12);
    }

    #[test]
    fn funnel_shift_quadruples_kepler_rotate_throughput() {
        // Optimized MD5 on 3.5: rotates become 46 funnel shifts
        // (43 + 3 that no longer need PRMT), no plain shifts remain from
        // rotations; keep 0 plain for the model check.
        let mut instrs = Vec::new();
        for _ in 0..150 {
            instrs.push(MachineInstr::new(MachineClass::IAdd, Reg(0), vec![]));
        }
        for _ in 0..120 {
            instrs.push(MachineInstr::new(MachineClass::Lop, Reg(0), vec![]));
        }
        for _ in 0..46 {
            instrs.push(MachineInstr::new(MachineClass::Funnel, Reg(0), vec![]));
        }
        let c = InstrCounts::of(&instrs);
        let h35 = mp_hashes_per_cycle(ComputeCapability::Sm35, &c);
        let h30 = mp_hashes_per_cycle(ComputeCapability::Sm30, &md5_table6_2x());
        // Per-MP: 3.5 is AL-bound at 160/270 = 0.593 vs 3.0's 0.360.
        assert!(h35 > h30 * 1.5, "h35={h35} h30={h30}");
        assert!((h35 - 160.0 / 270.0).abs() < 1e-12, "AL becomes the bottleneck");
    }

    #[test]
    fn empty_kernel_is_unbounded() {
        let c = counts(0, 0, 0, 0, 0);
        assert!(mp_hashes_per_cycle(ComputeCapability::Sm21, &c).is_infinite());
        assert!(mp_hashes_per_cycle(ComputeCapability::Sm1x, &c).is_infinite());
    }
}
