//! Cycle-level multiprocessor simulation.
//!
//! Executes a lowered kernel stream on one simulated multiprocessor with:
//!
//! * per-class execution ports (groups of cores) with occupancy,
//! * register scoreboarding (results ready `result_latency` cycles after
//!   issue),
//! * greedy-then-oldest warp scheduling with fair rotating arbitration
//!   across schedulers, one issue slot per scheduler per cadence,
//! * **dual-issue** of two consecutive independent instructions of the
//!   same warp on cc 2.1 / 3.x,
//! * the cc 1.x SFU co-issue of an independent addition.
//!
//! This is what turns the paper's *theoretical* throughput into an
//! *achieved* one: hash kernels are long dependency chains, so dual-issue
//! rarely fires (the authors measured < 10 % with the CUDA profiler), and
//! the idle third group on cc 2.1 (or the SFU adders on cc 1.x) explains
//! the measured gap in Table VIII.

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use crate::arch::ComputeCapability;
use crate::codegen::CompiledKernel;
use crate::device::Device;
use crate::isa::MachineClass;

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Resident warps on the multiprocessor (defaults to the architecture
    /// maximum — hash kernels use few registers, so occupancy is full).
    pub warps: u32,
    /// Kernel-body iterations each warp executes.
    pub iterations: u32,
    /// Safety limit on simulated cycles.
    pub max_cycles: u64,
}

impl SimConfig {
    /// Default configuration for an architecture: full occupancy and
    /// enough iterations to amortize pipeline fill.
    pub fn for_cc(cc: ComputeCapability) -> Self {
        Self { warps: cc.mp_spec().max_warps, iterations: 12, max_cycles: 200_000_000 }
    }
}

/// Simulation outcome and profiler counters.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Cycles until every warp finished its iterations.
    pub cycles: u64,
    /// Warp instructions issued.
    pub instructions_issued: u64,
    /// Instructions issued as the *second* of a dual-issue pair
    /// (the CUDA profiler's dual-issue metric).
    pub dual_issued: u64,
    /// Additions co-issued to the cc 1.x special function units.
    pub sfu_coissued: u64,
    /// Kernel-body iterations completed across all warps.
    pub iterations_completed: u64,
    /// Threads per warp × keys per iteration (for throughput math).
    pub keys_per_warp_iteration: u64,
    /// Busy cycles per execution unit (ports, then the SFU if present).
    pub unit_busy: Vec<u64>,
    /// Scheduler slots skipped because no owned warp had a ready
    /// instruction.
    pub sched_idle_no_ready: u64,
    /// Scheduler slots skipped because every ready warp's target unit was
    /// busy (structural hazard).
    pub sched_idle_unit_busy: u64,
}

impl SimResult {
    /// Keys tested during the simulation.
    pub fn keys_tested(&self) -> u64 {
        self.iterations_completed * self.keys_per_warp_iteration
    }

    /// Keys per cycle for the simulated multiprocessor.
    pub fn keys_per_cycle(&self) -> f64 {
        self.keys_tested() as f64 / self.cycles as f64
    }

    /// Fraction of issued instructions that were dual-issued.
    pub fn dual_issue_rate(&self) -> f64 {
        if self.instructions_issued == 0 {
            return 0.0;
        }
        self.dual_issued as f64 / self.instructions_issued as f64
    }

    /// Scale to a whole device: MKey/s assuming every multiprocessor runs
    /// an identical warp population (the paper's even-distribution
    /// assumption).
    pub fn device_mkeys(&self, device: &Device) -> f64 {
        self.keys_per_cycle() * device.clock_hz() * device.mp_count as f64 / 1e6
    }
}

/// An execution port: a group of cores (or the SFU bank).
struct Unit {
    /// Classes this unit can execute.
    classes: Vec<MachineClass>,
    /// The unit is busy through this cycle (exclusive).
    busy_until: u64,
    /// Cycles one warp instruction occupies the unit.
    issue_cycles: u64,
    /// Profiler: total busy cycles.
    busy_cycles: u64,
}

impl Unit {
    fn can_run(&self, class: MachineClass) -> bool {
        self.classes.contains(&class)
    }

    fn free_at(&self, cycle: u64) -> bool {
        self.busy_until <= cycle
    }

    fn occupy(&mut self, cycle: u64) {
        self.busy_until = cycle + self.issue_cycles;
        self.busy_cycles += self.issue_cycles;
    }
}

/// Per-warp execution state.
struct Warp {
    pc: usize,
    iterations: u32,
    /// Cycle at which each register's value becomes readable.
    reg_ready: Vec<u64>,
    done: bool,
    /// Warps start staggered through the body so per-class demand is
    /// steady (real resident warps are never phase-locked); the first,
    /// partial pass does not count as a completed iteration.
    first_wrap_partial: bool,
    /// Cycle of this warp's most recent issue (for oldest-first pick).
    last_issue: u64,
}

/// Build the execution ports for an architecture, mirroring the paper's
/// Section V-A findings. Returns `(units, sfu_index)`.
fn build_units(cc: ComputeCapability) -> (Vec<Unit>, Option<usize>) {
    use MachineClass::*;
    let spec = cc.mp_spec();
    let issue = spec.issue_cycles as u64;
    let mut units = Vec::new();
    let all = vec![IAdd, Lop, Shift, Imad, Prmt];
    match cc {
        ComputeCapability::Sm1x => {
            // One group of 8 executes everything; 2 SFU lanes add IADD
            // capacity reachable only by co-issue. A warp on 2 lanes takes
            // 16 cycles.
            units.push(Unit { classes: all, busy_until: 0, issue_cycles: issue, busy_cycles: 0 });
            units.push(Unit { classes: vec![IAdd], busy_until: 0, issue_cycles: 16, busy_cycles: 0 });
            let sfu = units.len() - 1;
            (units, Some(sfu))
        }
        ComputeCapability::Sm20 | ComputeCapability::Sm21 => {
            // Group 0 executes everything; the remaining groups execute
            // additions/logic only.
            units.push(Unit { classes: all, busy_until: 0, issue_cycles: issue, busy_cycles: 0 });
            for _ in 1..spec.core_groups {
                units.push(Unit {
                    classes: vec![IAdd, Lop],
                    busy_until: 0,
                    issue_cycles: issue,
                    busy_cycles: 0,
                });
            }
            (units, None)
        }
        ComputeCapability::Sm30 | ComputeCapability::Sm35 => {
            // One dedicated shift/MAD/PRMT group, five add/logic groups.
            // On cc 3.5 the funnel shift runs on the shift group and on
            // one extra group, doubling its throughput.
            let mut shift_classes = vec![Shift, Imad, Prmt];
            if cc == ComputeCapability::Sm35 {
                shift_classes.push(Funnel);
            }
            units.push(Unit { classes: shift_classes, busy_until: 0, issue_cycles: issue, busy_cycles: 0 });
            for g in 1..spec.core_groups {
                let mut classes = vec![IAdd, Lop];
                if cc == ComputeCapability::Sm35 && g == 1 {
                    classes.push(Funnel);
                }
                units.push(Unit { classes, busy_until: 0, issue_cycles: issue, busy_cycles: 0 });
            }
            (units, None)
        }
    }
}

/// Run the simulation of one multiprocessor executing `kernel`.
///
/// # Panics
/// Panics if the kernel stream is empty or the cycle limit is hit.
pub fn simulate(kernel: &CompiledKernel, config: SimConfig) -> SimResult {
    assert!(!kernel.instrs.is_empty(), "cannot simulate an empty kernel");
    assert!(config.warps > 0 && config.iterations > 0);
    let cc = kernel.cc;
    let spec = cc.mp_spec();
    let (mut units, sfu_index) = build_units(cc);
    let n_sched = spec.warp_schedulers as usize;
    let body_len = kernel.instrs.len();
    let mut warps: Vec<Warp> = (0..config.warps)
        .map(|i| {
            let pc = (i as usize * body_len / config.warps as usize) % body_len;
            Warp {
                pc,
                iterations: 0,
                reg_ready: vec![0; kernel.reg_count as usize],
                done: false,
                first_wrap_partial: pc != 0,
                last_issue: 0,
            }
        })
        .collect();
    // Schedulers issue one slot (1–2 instructions) every `issue_cycles`
    // hot clocks: every 4 on cc 1.x, every 2 on Fermi, every hot clock on
    // Kepler. This cadence — not the port count — is what caps
    // single-issue throughput at 32 of 48 lanes/cycle on cc 2.1.
    let mut sched_next_issue: Vec<u64> = vec![0; n_sched];
    let issue_cadence = spec.issue_cycles as u64;

    let latency = spec.result_latency as u64;
    let mut cycle: u64 = 0;
    let mut issued: u64 = 0;
    let mut dual: u64 = 0;
    let mut sfu_co: u64 = 0;
    let mut iterations_done: u64 = 0;
    let mut idle_no_ready: u64 = 0;
    let mut idle_unit_busy: u64 = 0;
    let mut remaining = warps.len();

    // Indices of warps owned by each scheduler.
    let sched_warps: Vec<Vec<usize>> = (0..n_sched)
        .map(|s| (s..warps.len()).step_by(n_sched).collect())
        .collect();

    while remaining > 0 {
        assert!(cycle < config.max_cycles, "cycle limit exceeded");
        // Rotate the polling order so no scheduler has standing priority
        // on the shared execution ports (hardware arbitration is fair; a
        // fixed order starves the last scheduler's shift-port traffic and
        // skews warp completion by ~30 %).
        for k in 0..n_sched {
            let s = (k + cycle as usize) % n_sched;
            let owned = &sched_warps[s];
            if owned.is_empty() || cycle < sched_next_issue[s] {
                continue;
            }
            // Find a ready warp in round-robin order. Two passes: first
            // prefer warps whose next instruction feeds the scarce
            // single-group port (shift/MAD) while that port is free —
            // starving it directly costs throughput on Kepler, where it is
            // the bottleneck (Section VI) — then take any ready warp.
            // Least-recently-issued selection among eligible warps, with
            // preference for the scarce single-group port when it is free
            // — the greedy-then-oldest policy real schedulers approximate.
            // Oldest-first keeps warp phases spread out; a round-robin
            // pointer lets service bursts phase-lock and idles the
            // schedulers ~25 % of slots.
            let mut chosen: Option<usize> = None;
            let mut best_key = (false, u64::MAX);
            let mut saw_ready = false;
            for &wi in owned {
                let w = &warps[wi];
                if w.done {
                    continue;
                }
                let instr = &kernel.instrs[w.pc];
                if !ready(w, instr, cycle) {
                    continue;
                }
                saw_ready = true;
                if find_unit(&units, instr.class, cycle).is_none() {
                    continue;
                }
                // Sort key: scarce-class first, then oldest last issue.
                let key = (is_scarce_class(instr.class), w.last_issue);
                let better = match chosen {
                    None => true,
                    Some(_) => {
                        (key.0 && !best_key.0) || (key.0 == best_key.0 && key.1 < best_key.1)
                    }
                };
                if better {
                    chosen = Some(wi);
                    best_key = key;
                }
            }
            let Some(wi) = chosen else {
                if saw_ready {
                    idle_unit_busy += 1;
                } else {
                    idle_no_ready += 1;
                }
                continue;
            };
            warps[wi].last_issue = cycle;
            sched_next_issue[s] = cycle + issue_cadence;
            // Issue the first instruction.
            let first_dst;
            {
                let instr = kernel.instrs[warps[wi].pc].clone();
                let ui = find_unit(&units, instr.class, cycle).expect("checked above");
                units[ui].occupy(cycle);
                first_dst = instr.dst;
                let w = &mut warps[wi];
                w.reg_ready[instr.dst.0 as usize] = cycle + latency;
                advance_pc(w, kernel, &mut iterations_done, &mut remaining, config.iterations, cycle);
                issued += 1;
            }
            // Attempt a second issue from the same warp.
            if !warps[wi].done {
                let w_pc = warps[wi].pc;
                // Only consecutive instructions pair up; a wrapped pc (new
                // iteration) still counts, matching hardware fetch of the
                // next instruction in the unrolled stream.
                let next = kernel.instrs[w_pc].clone();
                let independent = next.srcs.iter().all(|r| *r != first_dst)
                    && next.dst != first_dst
                    && ready(&warps[wi], &next, cycle);
                if independent {
                    if spec.dual_issue {
                        if let Some(ui) = find_unit(&units, next.class, cycle) {
                            units[ui].occupy(cycle);
                            let w = &mut warps[wi];
                            w.reg_ready[next.dst.0 as usize] = cycle + latency;
                            advance_pc(
                                w,
                                kernel,
                                &mut iterations_done,
                                &mut remaining,
                                config.iterations,
                                cycle,
                            );
                            issued += 1;
                            dual += 1;
                        }
                    } else if let (Some(sfu), MachineClass::IAdd) = (sfu_index, next.class) {
                        // cc 1.x: co-issue an independent ADD to the SFUs.
                        if units[sfu].free_at(cycle) {
                            units[sfu].occupy(cycle);
                            let w = &mut warps[wi];
                            w.reg_ready[next.dst.0 as usize] = cycle + latency;
                            advance_pc(
                                w,
                                kernel,
                                &mut iterations_done,
                                &mut remaining,
                                config.iterations,
                                cycle,
                            );
                            issued += 1;
                            sfu_co += 1;
                        }
                    }
                }
            }
        }
        cycle += 1;
    }

    SimResult {
        cycles: cycle,
        instructions_issued: issued,
        dual_issued: dual,
        sfu_coissued: sfu_co,
        iterations_completed: iterations_done,
        keys_per_warp_iteration: 32 * kernel.keys_per_iteration as u64,
        unit_busy: units.iter().map(|u| u.busy_cycles).collect(),
        sched_idle_no_ready: idle_no_ready,
        sched_idle_unit_busy: idle_unit_busy,
    }
}

fn ready(w: &Warp, instr: &crate::isa::MachineInstr, cycle: u64) -> bool {
    instr
        .srcs
        .iter()
        .all(|r| w.reg_ready[r.0 as usize] <= cycle)
}

fn find_unit(units: &[Unit], class: MachineClass, cycle: u64) -> Option<usize> {
    // Prefer the highest-index capable unit: add/logic traffic lands on
    // the plain core groups first, keeping the shared shift-capable group
    // free for the low-throughput classes — matching hardware dispatch
    // preferences.
    units
        .iter()
        .enumerate()
        .filter(|(i, u)| u.can_run(class) && u.free_at(cycle) && !is_sfu_only(units, *i))
        .map(|(i, _)| i)
        .next_back()
}

/// Classes that execute on a single core group (the scarce port).
fn is_scarce_class(class: MachineClass) -> bool {
    matches!(
        class,
        MachineClass::Shift | MachineClass::Imad | MachineClass::Prmt | MachineClass::Funnel
    )
}

/// The cc 1.x SFU bank is only reachable via co-issue, never as a primary
/// dispatch target.
fn is_sfu_only(units: &[Unit], i: usize) -> bool {
    units[i].classes.len() == 1 && units[i].classes[0] == MachineClass::IAdd && units.len() == 2
}

fn advance_pc(
    w: &mut Warp,
    kernel: &CompiledKernel,
    iterations_done: &mut u64,
    remaining: &mut usize,
    target_iterations: u32,
    _done_cycle: u64,
) {
    w.pc += 1;
    if w.pc == kernel.instrs.len() {
        w.pc = 0;
        if w.first_wrap_partial {
            // The staggered warm-up pass is not a full iteration.
            w.first_wrap_partial = false;
            return;
        }
        w.iterations += 1;
        *iterations_done += 1;
        if w.iterations >= target_iterations {
            w.done = true;
            *remaining -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::{lower, LoweringOptions};
    use crate::isa::KernelBuilder;

    /// A serial dependency chain of `n` additions.
    fn chain_kernel(n: u32) -> crate::isa::KernelIr {
        let mut b = KernelBuilder::new("chain");
        let mut acc = b.param(0);
        for _ in 0..n {
            acc = b.add(acc, 1u32);
        }
        b.build()
    }

    /// `lanes` fully independent addition streams interleaved.
    fn parallel_kernel(n: u32, lanes: u32) -> crate::isa::KernelIr {
        let mut b = KernelBuilder::new("par");
        let mut accs: Vec<_> = (0..lanes).map(|i| b.param(i)).collect();
        for _ in 0..n {
            for a in accs.iter_mut() {
                *a = b.add(*a, 1u32);
            }
        }
        b.build()
    }

    fn run(ir: &crate::isa::KernelIr, cc: ComputeCapability, warps: u32) -> SimResult {
        let k = lower(ir, LoweringOptions::plain(cc));
        simulate(&k, SimConfig { warps, iterations: 8, max_cycles: 50_000_000 })
    }

    #[test]
    fn dependent_chain_limits_dual_issue() {
        let r = run(&chain_kernel(64), ComputeCapability::Sm21, 48);
        assert!(
            r.dual_issue_rate() < 0.10,
            "serial chains cannot dual-issue (rate {})",
            r.dual_issue_rate()
        );
    }

    #[test]
    fn independent_streams_enable_dual_issue() {
        let r = run(&parallel_kernel(32, 4), ComputeCapability::Sm21, 48);
        assert!(
            r.dual_issue_rate() > 0.25,
            "independent streams should dual-issue (rate {})",
            r.dual_issue_rate()
        );
    }

    #[test]
    fn sm21_add_throughput_without_ilp_is_two_thirds() {
        // 2 schedulers × 16 lanes = 32 of 48 lanes without dual-issue.
        let r = run(&chain_kernel(128), ComputeCapability::Sm21, 48);
        let lanes_per_cycle = r.instructions_issued as f64 * 32.0 / r.cycles as f64;
        assert!(
            (lanes_per_cycle - 32.0).abs() < 3.0,
            "expected ≈32 lanes/cycle, got {lanes_per_cycle}"
        );
    }

    #[test]
    fn sm21_add_throughput_with_ilp_approaches_48() {
        let r = run(&parallel_kernel(64, 6), ComputeCapability::Sm21, 48);
        let lanes_per_cycle = r.instructions_issued as f64 * 32.0 / r.cycles as f64;
        assert!(
            lanes_per_cycle > 40.0,
            "expected ≈48 lanes/cycle with ILP, got {lanes_per_cycle}"
        );
    }

    #[test]
    fn sm30_shift_port_saturates() {
        // All-shift kernel: one group of 32 lanes is the ceiling.
        let mut b = KernelBuilder::new("shifts");
        let mut x = b.param(0);
        for _ in 0..64 {
            x = b.shl(x, 1);
        }
        let r = run(&b.build(), ComputeCapability::Sm30, 64);
        let lanes = r.instructions_issued as f64 * 32.0 / r.cycles as f64;
        assert!((lanes - 32.0).abs() < 3.0, "shift lanes/cycle {lanes}");
    }

    #[test]
    fn sm1x_serializes_everything() {
        // 8 lanes/cycle ceiling on the single group (chain prevents SFU).
        let r = run(&chain_kernel(64), ComputeCapability::Sm1x, 24);
        let lanes = r.instructions_issued as f64 * 32.0 / r.cycles as f64;
        assert!((lanes - 8.0).abs() < 1.0, "cc1.x lanes/cycle {lanes}");
        assert_eq!(r.dual_issued, 0, "cc 1.x never dual-issues");
    }

    #[test]
    fn sm1x_sfu_coissue_with_independent_adds() {
        let r = run(&parallel_kernel(64, 4), ComputeCapability::Sm1x, 24);
        assert!(r.sfu_coissued > 0, "independent adds should reach the SFU");
        let lanes = r.instructions_issued as f64 * 32.0 / r.cycles as f64;
        assert!(lanes > 8.5, "SFU should lift throughput above 8 ({lanes})");
    }

    #[test]
    fn keys_accounting() {
        let ir = chain_kernel(8);
        let k = lower(&ir, LoweringOptions::plain(ComputeCapability::Sm21));
        let r = simulate(&k, SimConfig { warps: 4, iterations: 3, max_cycles: 1_000_000 });
        assert_eq!(r.iterations_completed, 12);
        assert_eq!(r.keys_tested(), 12 * 32);
    }

    #[test]
    fn more_warps_do_not_reduce_throughput() {
        let ir = chain_kernel(64);
        let k = lower(&ir, LoweringOptions::plain(ComputeCapability::Sm21));
        let few = simulate(&k, SimConfig { warps: 4, iterations: 8, max_cycles: 50_000_000 });
        let many = simulate(&k, SimConfig { warps: 48, iterations: 8, max_cycles: 50_000_000 });
        assert!(many.keys_per_cycle() >= few.keys_per_cycle() * 0.95);
    }

    #[test]
    fn sm20_has_no_dual_issue_and_saturates_at_32_lanes() {
        // cc 2.0: 2 single-issue schedulers over 2 groups — 32 lanes is
        // both the theoretical and the achieved ceiling (Table II).
        let r = run(&parallel_kernel(64, 6), ComputeCapability::Sm20, 48);
        assert_eq!(r.dual_issued, 0, "cc 2.0 is single-issue");
        let lanes = r.instructions_issued as f64 * 32.0 / r.cycles as f64;
        assert!((lanes - 32.0).abs() < 2.0, "lanes/cycle {lanes}");
    }

    #[test]
    fn sm35_funnel_shift_doubles_rotate_throughput() {
        // All-rotate kernel: funnel shifts run on two groups (64 lanes),
        // plain SHL+IMAD on one (32 lanes).
        let mut b = KernelBuilder::new("rotates");
        let mut x = b.param(0);
        for _ in 0..64 {
            x = b.rotl(x, 7);
        }
        let ir = b.build();
        let plain = lower(&ir, crate::codegen::LoweringOptions::plain(ComputeCapability::Sm35));
        let funnel = lower(&ir, crate::codegen::LoweringOptions::for_cc(ComputeCapability::Sm35));
        let cfg = SimConfig { warps: 64, iterations: 8, max_cycles: 50_000_000 };
        let rp = simulate(&plain, cfg);
        let rf = simulate(&funnel, cfg);
        assert!(
            rf.keys_per_cycle() > rp.keys_per_cycle() * 1.7,
            "funnel {} vs plain {}",
            rf.keys_per_cycle(),
            rp.keys_per_cycle()
        );
    }

    #[test]
    fn issue_accounting_is_exact() {
        // Every simulated instruction is issued exactly iterations × body
        // times per warp (plus the counted partial warm-up wrap).
        let ir = chain_kernel(16);
        let k = lower(&ir, crate::codegen::LoweringOptions::plain(ComputeCapability::Sm30));
        let warps = 8u32;
        let iterations = 5u32;
        let r = simulate(&k, SimConfig { warps, iterations, max_cycles: 10_000_000 });
        let body = k.instrs.len() as u64;
        let full = warps as u64 * iterations as u64 * body;
        // Staggered warps issue up to one extra partial pass each.
        assert!(r.instructions_issued >= full, "{} >= {full}", r.instructions_issued);
        assert!(
            r.instructions_issued <= full + warps as u64 * body,
            "{} within one warm-up pass",
            r.instructions_issued
        );
        assert_eq!(r.iterations_completed, warps as u64 * iterations as u64);
    }

    #[test]
    #[should_panic]
    fn empty_kernel_rejected() {
        let ir = KernelBuilder::new("empty").build();
        let k = lower(&ir, LoweringOptions::plain(ComputeCapability::Sm21));
        simulate(&k, SimConfig::for_cc(ComputeCapability::Sm21));
    }
}
