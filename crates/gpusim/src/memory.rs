//! Constant-memory footprint model.
//!
//! The paper contrasts its approach with Vu et al. \[7\], which stores all
//! candidate combinations in GPU memory (gigabytes): "our approach
//! requires a minimal amount of memory (less than 1 Kbyte) and does not
//! require any initialization phase". The kernel only needs, in constant
//! memory: the target digest, the charset, the fixed message-word
//! template (common substring + padding), and the interval description.

/// Byte footprint of the kernel's constant-memory parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstantFootprint {
    /// Target digest bytes (16 for MD5, 20 for SHA-1).
    pub digest_len: usize,
    /// Charset symbols.
    pub charset_len: usize,
    /// Fixed message-word template (16 words).
    pub template_words: usize,
    /// Interval start identifier (u128) and length (u128).
    pub interval_bytes: usize,
    /// Misc scalars: key length, keys per thread, flags.
    pub scalar_bytes: usize,
}

impl ConstantFootprint {
    /// Footprint for an MD5 search over a charset of `charset_len`.
    pub fn md5(charset_len: usize) -> Self {
        Self {
            digest_len: 16,
            charset_len,
            template_words: 16,
            interval_bytes: 32,
            scalar_bytes: 16,
        }
    }

    /// Footprint for a SHA-1 search.
    pub fn sha1(charset_len: usize) -> Self {
        Self {
            digest_len: 20,
            charset_len,
            template_words: 16,
            interval_bytes: 32,
            scalar_bytes: 16,
        }
    }

    /// Total bytes.
    pub fn total_bytes(&self) -> usize {
        self.digest_len
            + self.charset_len
            + self.template_words * 4
            + self.interval_bytes
            + self.scalar_bytes
    }

    /// The paper's claim: the whole parameter block fits in under 1 KiB.
    pub fn fits_one_kilobyte(&self) -> bool {
        self.total_bytes() < 1024
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn md5_footprint_is_under_1kb_even_for_full_ascii() {
        let f = ConstantFootprint::md5(95);
        assert!(f.fits_one_kilobyte(), "{} bytes", f.total_bytes());
        // 16 + 95 + 64 + 32 + 16 = 223 bytes.
        assert_eq!(f.total_bytes(), 223);
    }

    #[test]
    fn sha1_footprint_is_under_1kb() {
        let f = ConstantFootprint::sha1(255);
        assert!(f.fits_one_kilobyte(), "{} bytes", f.total_bytes());
    }

    #[test]
    fn worst_case_charset_still_fits() {
        let f = ConstantFootprint {
            digest_len: 20,
            charset_len: 255,
            template_words: 16,
            interval_bytes: 32,
            scalar_bytes: 64,
        };
        assert!(f.fits_one_kilobyte());
    }
}
