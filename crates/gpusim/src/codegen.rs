//! Lowering abstract kernels to per-architecture machine instructions —
//! the model of what `nvcc` does, as the authors observed with
//! `cuobjdump -sass` (Section V-B):
//!
//! * compile-time **constant folding**: operations whose operands are all
//!   constants vanish (padding words of fixed-length keys, combined
//!   `K[i] + w[g]` constants);
//! * **rotate lowering**: `rotl(x, n)` becomes `SHL + SHR + ADD` on cc
//!   1.x, `SHL + IMAD.HI` on cc ≥ 2.0 (the IMAD performs the emulated
//!   right shift *and* the addition), a single `PRMT` for `n == 16` when
//!   `__byte_perm` is enabled (profitable on cc 3.0), and a single `SHF`
//!   funnel shift on cc 3.5;
//! * **NOT merging**: unary complements fold into the consuming logic
//!   instruction's operand modifiers and emit nothing.

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use std::collections::HashMap;

use crate::arch::ComputeCapability;
use crate::isa::{AbstractOp, KernelIr, MachineClass, MachineInstr, Operand, Reg};

/// Options controlling architecture-specific lowering choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoweringOptions {
    /// Target architecture.
    pub cc: ComputeCapability,
    /// Lower `rotl(x, 16)` to a single `PRMT` (`__byte_perm`). The paper
    /// enables this on cc 3.0 where the shift port is the bottleneck.
    pub use_prmt_rot16: bool,
    /// Lower every rotate to a single funnel shift (cc 3.5 only).
    pub use_funnel: bool,
}

impl LoweringOptions {
    /// The paper's default choices for an architecture.
    pub fn for_cc(cc: ComputeCapability) -> Self {
        Self {
            cc,
            use_prmt_rot16: cc.prefers_prmt_rot16(),
            use_funnel: cc.has_funnel_shift(),
        }
    }

    /// Disable the optional intrinsics (the "plain" compiler output of
    /// Tables IV and V).
    pub fn plain(cc: ComputeCapability) -> Self {
        Self { cc, use_prmt_rot16: false, use_funnel: false }
    }
}

/// Machine instruction counts per class — one column of Tables IV–VI.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstrCounts {
    counts: [u32; 6],
}

impl InstrCounts {
    /// Count the instructions of a lowered stream.
    pub fn of(instrs: &[MachineInstr]) -> Self {
        let mut c = Self::default();
        for i in instrs {
            c.counts[Self::slot(i.class)] += 1;
        }
        c
    }

    fn slot(class: MachineClass) -> usize {
        MachineClass::ALL
            .iter()
            .position(|&c| c == class)
            .expect("class in ALL")
    }

    /// Count for one class.
    pub fn get(&self, class: MachineClass) -> u32 {
        self.counts[Self::slot(class)]
    }

    /// `IADD` count.
    pub fn iadd(&self) -> u32 {
        self.get(MachineClass::IAdd)
    }

    /// `AND/OR/XOR` count.
    pub fn lop(&self) -> u32 {
        self.get(MachineClass::Lop)
    }

    /// `SHR/SHL` count.
    pub fn shift(&self) -> u32 {
        self.get(MachineClass::Shift)
    }

    /// `IMAD/ISCADD` count.
    pub fn imad(&self) -> u32 {
        self.get(MachineClass::Imad)
    }

    /// `PRMT` count.
    pub fn prmt(&self) -> u32 {
        self.get(MachineClass::Prmt)
    }

    /// `SHF` (funnel shift) count.
    pub fn funnel(&self) -> u32 {
        self.get(MachineClass::Funnel)
    }

    /// Total instructions.
    pub fn total(&self) -> u32 {
        self.counts.iter().sum()
    }

    /// Addition + logic instructions (the paper's "addition/logical"
    /// class when reasoning about ports).
    pub fn add_lop(&self) -> u32 {
        self.iadd() + self.lop()
    }

    /// Shift-port instructions: shifts, MAD/ISCADD, PRMT and funnel
    /// shifts all contend for the same low-throughput port.
    pub fn shift_mad(&self) -> u32 {
        self.shift() + self.imad() + self.prmt() + self.funnel()
    }

    /// The paper's `R` ratio: addition/logical over shift/MAD
    /// (R ≈ 2.93 for optimized MD5 on cc ≥ 2.0).
    pub fn ratio(&self) -> f64 {
        self.add_lop() as f64 / self.shift_mad() as f64
    }
}

/// A kernel lowered for one architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledKernel {
    /// Kernel name (from the IR).
    pub name: String,
    /// Target architecture.
    pub cc: ComputeCapability,
    /// Lowered instruction stream (one loop iteration).
    pub instrs: Vec<MachineInstr>,
    /// Candidates tested per iteration of the stream.
    pub keys_per_iteration: u32,
    /// Per-class instruction counts.
    pub counts: InstrCounts,
    /// Number of virtual registers (for the scheduler's scoreboard).
    pub reg_count: u32,
}

/// Lower a kernel IR for an architecture.
pub fn lower(ir: &KernelIr, options: LoweringOptions) -> CompiledKernel {
    let mut l = Lowerer {
        options,
        consts: HashMap::new(),
        not_alias: HashMap::new(),
        identity: HashMap::new(),
        instrs: Vec::with_capacity(ir.ops.len()),
        next_reg: ir.reg_count,
    };
    for op in &ir.ops {
        l.lower_op(*op);
    }
    let counts = InstrCounts::of(&l.instrs);
    CompiledKernel {
        name: ir.name.clone(),
        cc: options.cc,
        instrs: l.instrs,
        keys_per_iteration: ir.keys_per_iteration,
        counts,
        reg_count: l.next_reg,
    }
}

struct Lowerer {
    options: LoweringOptions,
    /// Registers holding compile-time constants.
    consts: HashMap<Reg, u32>,
    /// Registers that are a merged NOT of another register.
    not_alias: HashMap<Reg, Reg>,
    /// Registers that are an exact alias of another (double negation).
    identity: HashMap<Reg, Reg>,
    instrs: Vec<MachineInstr>,
    next_reg: u32,
}

/// A resolved operand: either a known constant or a runtime register.
enum Val {
    Const(u32),
    Runtime(Reg),
}

impl Lowerer {
    fn fresh(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Resolve an operand through the constant and NOT-alias maps.
    /// Returns the value plus whether a merged NOT applies to it.
    fn resolve(&self, op: Operand) -> (Val, bool) {
        match op {
            Operand::Imm(v) => (Val::Const(v), false),
            Operand::R(r) => {
                let r = *self.identity.get(&r).unwrap_or(&r);
                if let Some(&v) = self.consts.get(&r) {
                    return (Val::Const(v), false);
                }
                if let Some(&src) = self.not_alias.get(&r) {
                    // A NOT of a constant would have been folded, so the
                    // alias source is always runtime here.
                    return (Val::Runtime(src), true);
                }
                (Val::Runtime(r), false)
            }
        }
    }

    fn emit(&mut self, class: MachineClass, dst: Reg, srcs: Vec<Reg>) {
        self.instrs.push(MachineInstr::new(class, dst, srcs));
    }

    fn emit_imm(&mut self, class: MachineClass, dst: Reg, srcs: Vec<Reg>, imm: u32) {
        self.instrs.push(MachineInstr::new(class, dst, srcs).with_imm(imm));
    }

    /// Emit a binary ALU op after folding; `f` computes the constant case.
    fn binary(
        &mut self,
        class: MachineClass,
        dst: Reg,
        a: Operand,
        b: Operand,
        f: impl Fn(u32, u32) -> u32,
        nots_mergeable: bool,
    ) {
        let (va, na) = self.resolve(a);
        let (vb, nb) = self.resolve(b);
        // Merged NOTs on a non-logic consumer must be materialized first.
        let (va, na) = self.force_not(va, na, nots_mergeable);
        let (vb, nb) = self.force_not(vb, nb, nots_mergeable);
        match (va, vb) {
            (Val::Const(x), Val::Const(y)) => {
                let x = if na { !x } else { x };
                let y = if nb { !y } else { y };
                self.consts.insert(dst, f(x, y));
            }
            (Val::Runtime(r), Val::Const(c)) | (Val::Const(c), Val::Runtime(r)) => {
                // Record the folded constant as the instruction immediate
                // so downstream analyses see the real operand.
                self.emit_imm(class, dst, vec![r], c);
            }
            (Val::Runtime(r1), Val::Runtime(r2)) => {
                self.emit(class, dst, vec![r1, r2]);
            }
        }
    }

    /// Materialize a pending NOT when the consumer cannot merge it.
    fn force_not(&mut self, v: Val, negated: bool, mergeable: bool) -> (Val, bool) {
        if !negated || mergeable {
            return (v, negated);
        }
        match v {
            Val::Const(c) => (Val::Const(!c), false),
            Val::Runtime(r) => {
                // A materialized NOT is `LOP.XOR dst, r, -1`; the all-ones
                // immediate lets peephole analyses recognize it.
                let tmp = self.fresh();
                self.emit_imm(MachineClass::Lop, tmp, vec![r], u32::MAX);
                (Val::Runtime(tmp), false)
            }
        }
    }

    fn lower_op(&mut self, op: AbstractOp) {
        match op {
            AbstractOp::Const { dst, value } => {
                self.consts.insert(dst, value);
            }
            AbstractOp::LoadParam { dst, .. } => {
                // Constant-memory reads appear as instruction operands, not
                // separate loads; the register is simply live from entry.
                let _ = dst;
            }
            AbstractOp::Add { dst, a, b } => {
                self.binary(MachineClass::IAdd, dst, a, b, u32::wrapping_add, false)
            }
            AbstractOp::And { dst, a, b } => {
                self.binary(MachineClass::Lop, dst, a, b, |x, y| x & y, true)
            }
            AbstractOp::Or { dst, a, b } => {
                self.binary(MachineClass::Lop, dst, a, b, |x, y| x | y, true)
            }
            AbstractOp::Xor { dst, a, b } => {
                self.binary(MachineClass::Lop, dst, a, b, |x, y| x ^ y, true)
            }
            AbstractOp::Not { dst, a } => match self.resolve(a) {
                (Val::Const(v), negated) => {
                    let v = if negated { !v } else { v };
                    self.consts.insert(dst, !v);
                }
                (Val::Runtime(r), negated) => {
                    if negated {
                        // NOT of a merged NOT is the original register.
                        self.not_alias.remove(&dst);
                        self.consts.remove(&dst);
                        // Model as a plain alias by recording dst -> r via
                        // a zero-cost move: reuse not_alias double negation.
                        // Simplest faithful choice: emit nothing and alias.
                        self.alias_identity(dst, r);
                    } else {
                        self.not_alias.insert(dst, r);
                    }
                }
            },
            AbstractOp::Shl { dst, a, n } => self.shift(dst, a, n, |x| x << n),
            AbstractOp::Shr { dst, a, n } => self.shift(dst, a, n, |x| x >> n),
            AbstractOp::Rotl { dst, a, n } => self.rotate(dst, a, n),
        }
    }

    /// Record that `dst` is exactly `src` (double negation).
    fn alias_identity(&mut self, dst: Reg, src: Reg) {
        // Represent identity by a merged NOT of a merged NOT: we just map
        // dst to src through the alias table with no negation by storing
        // the mapping in `not_alias` twice — but that flips semantics.
        // Instead emit nothing and let later resolves find src directly.
        self.identity.insert(dst, src);
    }

    fn shift(&mut self, dst: Reg, a: Operand, n: u32, f: impl Fn(u32) -> u32) {
        let (v, negated) = self.resolve(a);
        let (v, _) = self.force_not(v, negated, false);
        match v {
            Val::Const(x) => {
                self.consts.insert(dst, f(x));
            }
            Val::Runtime(r) => self.emit_imm(MachineClass::Shift, dst, vec![r], n),
        }
    }

    fn rotate(&mut self, dst: Reg, a: Operand, n: u32) {
        let (v, negated) = self.resolve(a);
        let (v, _) = self.force_not(v, negated, false);
        let r = match v {
            Val::Const(x) => {
                self.consts.insert(dst, x.rotate_left(n));
                return;
            }
            Val::Runtime(r) => r,
        };
        if self.options.use_funnel && self.options.cc.has_funnel_shift() {
            // cc 3.5: one SHF instruction performs the whole rotate.
            self.emit_imm(MachineClass::Funnel, dst, vec![r], n);
        } else if self.options.use_prmt_rot16 && n == 16 {
            // __byte_perm: swap half-words in a single PRMT.
            self.emit_imm(MachineClass::Prmt, dst, vec![r], n);
        } else if self.options.cc >= ComputeCapability::Sm20 {
            // SHL tmp, r, n ; IMAD.HI dst, r, 2^(32-n), tmp — the IMAD
            // performs the emulated right shift and the addition.
            let tmp = self.fresh();
            self.emit_imm(MachineClass::Shift, tmp, vec![r], n);
            self.emit(MachineClass::Imad, dst, vec![r, tmp]);
        } else {
            // cc 1.x: SHL + SHR + ADD.
            let t1 = self.fresh();
            let t2 = self.fresh();
            self.emit_imm(MachineClass::Shift, t1, vec![r], n);
            self.emit_imm(MachineClass::Shift, t2, vec![r], 32 - n);
            self.emit(MachineClass::IAdd, dst, vec![t1, t2]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::KernelBuilder;

    fn rotate_kernel(n: u32) -> KernelIr {
        let mut b = KernelBuilder::new("rot");
        let x = b.param(0);
        let _ = b.rotl(x, n);
        b.build()
    }

    #[test]
    fn rotate_lowering_cc1x() {
        let k = lower(&rotate_kernel(7), LoweringOptions::plain(ComputeCapability::Sm1x));
        assert_eq!(k.counts.shift(), 2);
        assert_eq!(k.counts.iadd(), 1);
        assert_eq!(k.counts.imad(), 0);
        assert_eq!(k.counts.total(), 3);
    }

    #[test]
    fn rotate_lowering_cc2x() {
        for cc in [ComputeCapability::Sm20, ComputeCapability::Sm21, ComputeCapability::Sm30] {
            let k = lower(&rotate_kernel(7), LoweringOptions::plain(cc));
            assert_eq!(k.counts.shift(), 1, "{cc:?}");
            assert_eq!(k.counts.imad(), 1, "{cc:?}");
            assert_eq!(k.counts.iadd(), 0, "IMAD absorbs the add on {cc:?}");
        }
    }

    #[test]
    fn rotate16_uses_prmt_when_enabled() {
        let opts = LoweringOptions::for_cc(ComputeCapability::Sm30);
        assert!(opts.use_prmt_rot16);
        let k = lower(&rotate_kernel(16), opts);
        assert_eq!(k.counts.prmt(), 1);
        assert_eq!(k.counts.total(), 1);
        // Other amounts still use SHL+IMAD.
        let k7 = lower(&rotate_kernel(7), opts);
        assert_eq!(k7.counts.prmt(), 0);
        assert_eq!(k7.counts.total(), 2);
    }

    #[test]
    fn funnel_shift_on_sm35() {
        let opts = LoweringOptions::for_cc(ComputeCapability::Sm35);
        assert!(opts.use_funnel);
        let k = lower(&rotate_kernel(13), opts);
        assert_eq!(k.counts.funnel(), 1);
        assert_eq!(k.counts.total(), 1, "one SHF replaces SHL+IMAD");
    }

    #[test]
    fn constants_fold_away() {
        let mut b = KernelBuilder::new("c");
        let a = b.constant(5);
        let c = b.constant(7);
        let s = b.add(a, c); // compile-time
        let x = b.param(0);
        let _ = b.add(x, s); // one runtime add with immediate operand
        let k = lower(&b.build(), LoweringOptions::plain(ComputeCapability::Sm21));
        assert_eq!(k.counts.iadd(), 1);
        assert_eq!(k.counts.total(), 1);
        assert_eq!(k.instrs[0].srcs.len(), 1, "constant side is an immediate");
    }

    #[test]
    fn nots_merge_into_logic_consumers() {
        // F(b,c,d) = (b & c) | (~b & d): the NOT must emit nothing.
        let mut b = KernelBuilder::new("f");
        let x = b.param(0);
        let y = b.param(1);
        let z = b.param(2);
        let bc = b.and(x, y);
        let nb = b.not(x);
        let nbd = b.and(nb, z);
        let _ = b.or(bc, nbd);
        let k = lower(&b.build(), LoweringOptions::plain(ComputeCapability::Sm21));
        assert_eq!(k.counts.lop(), 3, "AND, AND, OR — NOT merged");
        assert_eq!(k.counts.total(), 3);
    }

    #[test]
    fn not_feeding_arithmetic_is_materialized() {
        let mut b = KernelBuilder::new("n");
        let x = b.param(0);
        let nx = b.not(x);
        let _ = b.add(nx, 1u32);
        let k = lower(&b.build(), LoweringOptions::plain(ComputeCapability::Sm21));
        assert_eq!(k.counts.lop(), 1, "NOT materialized as LOP");
        assert_eq!(k.counts.iadd(), 1);
    }

    #[test]
    fn double_negation_is_free() {
        let mut b = KernelBuilder::new("nn");
        let x = b.param(0);
        let nx = b.not(x);
        let nnx = b.not(nx);
        let _ = b.xor(nnx, x);
        let k = lower(&b.build(), LoweringOptions::plain(ComputeCapability::Sm21));
        assert_eq!(k.counts.total(), 1, "only the XOR remains");
    }

    #[test]
    fn rotate_of_constant_folds() {
        let mut b = KernelBuilder::new("rc");
        let c = b.constant(0x1234_5678);
        let r = b.rotl(c, 8);
        let x = b.param(0);
        let _ = b.xor(x, r);
        let k = lower(&b.build(), LoweringOptions::plain(ComputeCapability::Sm1x));
        assert_eq!(k.counts.total(), 1, "rotate of a constant is free");
    }

    #[test]
    fn ratio_helper() {
        let mut b = KernelBuilder::new("r");
        let x = b.param(0);
        let mut acc = x;
        for _ in 0..6 {
            acc = b.add(acc, 1u32);
        }
        let _ = b.shl(acc, 2);
        let _ = b.shl(acc, 3);
        let k = lower(&b.build(), LoweringOptions::plain(ComputeCapability::Sm30));
        assert!((k.counts.ratio() - 3.0).abs() < 1e-12);
        assert_eq!(k.counts.add_lop(), 6);
        assert_eq!(k.counts.shift_mad(), 2);
    }
}
