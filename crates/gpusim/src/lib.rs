//! # eks-gpusim — a cycle-level SIMT GPU simulator
//!
//! The paper evaluates its cracking kernels on five NVIDIA GPUs spanning
//! compute capabilities 1.1, 2.1 and 3.0. No CUDA hardware is assumed
//! here; instead this crate models exactly the quantities the paper's
//! analysis rests on (Sections V and VI):
//!
//! * the **multiprocessor architecture** per compute capability
//!   (Table I: cores per MP, groups of cores, group size, issue time,
//!   warp schedulers, single/dual issue) — [`arch`];
//! * the **instruction throughput** per class (Table II: 32-bit ADD,
//!   bitwise logic, shifts, MAD) and the execution-port findings the
//!   authors derived with ad-hoc kernels (which groups of cores execute
//!   which class) — [`arch`];
//! * the **compiler lowering** observed with `cuobjdump -sass`: rotate →
//!   `SHL+SHR+ADD` on cc 1.x, `SHL+IMAD.HI` (or `SHR+ISCADD`) on cc
//!   2.x/3.0, `PRMT` (`__byte_perm`) for rotate-by-16, the cc 3.5 funnel
//!   shift, NOT-merging and constant folding — [`codegen`];
//! * the **device catalog** (Table VII) — [`device`];
//! * the **theoretical throughput models** of Section VI — [`throughput`];
//! * a **cycle-level scoreboard scheduler** that executes a lowered kernel
//!   trace on a multiprocessor with register dependences, per-class
//!   execution ports and (dual-)issue rules, reproducing the achieved /
//!   theoretical gap the paper attributes to the lack of instruction-level
//!   parallelism — [`sched`];
//! * **launch configuration** helpers: occupancy, keys per thread, and the
//!   watchdog-driven splitting of long searches over multiple grids —
//!   [`grid`];
//! * the **constant memory** footprint model backing the paper's "less
//!   than 1 Kbyte" claim — [`memory`];
//! * the **grid-level kernel IR** — the launch-visible skeleton (symbolic
//!   grid dims, buffers, tail guards, barriers) that
//!   `eks-analyzer::grid`'s soundness passes prove memory-safe for all
//!   grid shapes — [`gridir`].
//!
//! ```
//! use eks_gpusim::arch::ComputeCapability;
//! use eks_gpusim::codegen::{lower, LoweringOptions};
//! use eks_gpusim::isa::KernelBuilder;
//!
//! // A rotate compiles to SHL+IMAD.HI on Fermi/Kepler, as the paper's
//! // SASS dumps show.
//! let mut b = KernelBuilder::new("demo");
//! let x = b.param(0);
//! let _ = b.rotl(x, 7);
//! let k = lower(&b.build(), LoweringOptions::plain(ComputeCapability::Sm30));
//! assert_eq!(k.counts.shift(), 1);
//! assert_eq!(k.counts.imad(), 1);
//! ```

#![warn(missing_docs)]

pub mod arch;
pub mod codegen;
pub mod device;
pub mod disasm;
pub mod grid;
pub mod gridir;
pub mod isa;
pub mod liveness;
pub mod memory;
pub mod occupancy;
pub mod profiler;
pub mod sched;
pub mod schedule;
pub mod throughput;
pub mod timeline;

pub use arch::{ComputeCapability, MpSpec};
pub use codegen::{lower, CompiledKernel, InstrCounts, LoweringOptions};
pub use device::{Device, DeviceCatalog};
pub use disasm::disasm;
pub use gridir::{search_wrapper, Extent, GReg, GridBuilder, GridKernel, GStmt, Pred, Sym};
pub use isa::{KernelBuilder, KernelIr, MachineClass, Reg};
pub use occupancy::{live_registers, occupancy, resident_warps};
pub use profiler::{Bottleneck, ProfilerReport};
pub use sched::{SimConfig, SimResult};
pub use schedule::{adjacent_independence, schedule_for_pairing};
pub use throughput::theoretical_mkeys;
pub use timeline::{execute_plan, Timeline};
