//! Live-range analysis over lowered instruction streams.
//!
//! The lowered kernels are straight-line code (the paper's kernels have
//! no data-dependent branches inside the hash rounds), so liveness is a
//! single linear scan: a register is live from its definition to its
//! last use, and a register read before any definition is a kernel
//! parameter, live from entry. [`occupancy`](crate::occupancy) uses the
//! resulting maximum to size the register file claim, and the analyzer
//! crate cross-checks its own estimates against these ranges.

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use crate::isa::{MachineInstr, Reg};

/// The live interval of one virtual register over a lowered stream.
///
/// Instruction indices are positions in the stream; `def <= last_use`
/// always holds. A parameter register (read before written) has
/// `def == 0` and `from_entry == true`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveRange {
    /// The register this range describes.
    pub reg: Reg,
    /// Index of the defining instruction (0 for parameters).
    pub def: usize,
    /// Index of the last instruction reading (or writing) the register.
    pub last_use: usize,
    /// True when the register is live from kernel entry (a parameter).
    pub from_entry: bool,
}

impl LiveRange {
    /// Whether the register is live at instruction index `i` (inclusive
    /// on both ends, matching the linear-scan convention).
    pub fn contains(&self, i: usize) -> bool {
        self.def <= i && i <= self.last_use
    }
}

/// Compute the live range of every register in a straight-line stream,
/// sorted by definition point (ties broken by register number).
pub fn live_ranges(instrs: &[MachineInstr]) -> Vec<LiveRange> {
    let mut last_use: HashMap<Reg, usize> = HashMap::new();
    let mut def_point: HashMap<Reg, usize> = HashMap::new();
    let mut from_entry: HashMap<Reg, bool> = HashMap::new();
    for (i, ins) in instrs.iter().enumerate() {
        if let Entry::Vacant(e) = def_point.entry(ins.dst) {
            e.insert(i);
            from_entry.insert(ins.dst, false);
        }
        last_use.insert(ins.dst, i);
        for s in &ins.srcs {
            last_use.insert(*s, i);
            // A register read before any definition is a parameter: live
            // from entry.
            if let Entry::Vacant(e) = def_point.entry(*s) {
                e.insert(0);
                from_entry.insert(*s, true);
            }
        }
    }
    let mut ranges: Vec<LiveRange> = def_point
        .iter()
        .map(|(&reg, &def)| LiveRange {
            reg,
            def,
            last_use: last_use.get(&reg).copied().unwrap_or(def),
            from_entry: from_entry.get(&reg).copied().unwrap_or(false),
        })
        .collect();
    ranges.sort_by_key(|r| (r.def, r.reg.0));
    ranges
}

/// Maximum number of simultaneously-live registers over the stream —
/// the per-thread physical register estimate occupancy rests on.
pub fn max_live(instrs: &[MachineInstr]) -> u32 {
    let n = instrs.len();
    if n == 0 {
        return 0;
    }
    // Sweep: +1 at definition, -1 after last use.
    let mut delta = vec![0i32; n + 1];
    for r in live_ranges(instrs) {
        delta[r.def] += 1;
        delta[r.last_use + 1] -= 1;
    }
    let mut live = 0i32;
    let mut max = 0i32;
    for d in delta {
        live += d;
        max = max.max(live);
    }
    max as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::MachineClass;

    fn add(dst: u32, srcs: &[u32]) -> MachineInstr {
        MachineInstr::new(MachineClass::IAdd, Reg(dst), srcs.iter().map(|&r| Reg(r)).collect())
    }

    #[test]
    fn parameter_is_live_from_entry() {
        // r0 is read before written: a parameter.
        let instrs = vec![add(1, &[0]), add(2, &[1])];
        let ranges = live_ranges(&instrs);
        let p = ranges.iter().find(|r| r.reg == Reg(0)).unwrap();
        assert!(p.from_entry);
        assert_eq!(p.def, 0);
        assert_eq!(p.last_use, 0);
    }

    #[test]
    fn chain_has_overlapping_pairs_only() {
        let instrs = vec![add(1, &[0]), add(2, &[1]), add(3, &[2]), add(4, &[3])];
        assert_eq!(max_live(&instrs), 2);
    }

    #[test]
    fn fanin_keeps_everything_live() {
        // At the first add all four inputs plus its result are live.
        let instrs = vec![add(4, &[0, 1]), add(5, &[4, 2]), add(6, &[5, 3])];
        assert_eq!(max_live(&instrs), 5);
        let ranges = live_ranges(&instrs);
        let r3 = ranges.iter().find(|r| r.reg == Reg(3)).unwrap();
        assert_eq!(r3.last_use, 2);
        assert!(r3.contains(1));
        assert!(!r3.contains(3));
    }

    #[test]
    fn empty_stream() {
        assert_eq!(max_live(&[]), 0);
        assert!(live_ranges(&[]).is_empty());
    }
}
