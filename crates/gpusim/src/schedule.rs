//! Post-lowering instruction scheduling — the compiler pass that reorders
//! independent instructions so the hardware's dual-issue can pair them.
//!
//! `nvcc` list-schedules the SASS stream; without it, a dependency chain
//! emits producer/consumer pairs back to back and the dual-issue slots of
//! cc ≥ 2.1 go unused. The pass here is a pairing-aware list scheduler:
//! a topological order (Kahn) that prefers, at every step, an instruction
//! *independent of the previously placed one*, tie-broken by
//! critical-path height. Semantics are untouched — it is a permutation of
//! the stream that respects every data dependence.

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use std::collections::HashMap;

use crate::isa::{MachineInstr, Reg};

/// Reorder a lowered stream to maximize adjacent-pair independence while
/// preserving all data dependences. Returns a permutation of `instrs`.
pub fn schedule_for_pairing(instrs: &[MachineInstr]) -> Vec<MachineInstr> {
    let n = instrs.len();
    if n <= 2 {
        return instrs.to_vec();
    }
    // SSA def map: register -> defining instruction index.
    let mut def: HashMap<Reg, usize> = HashMap::with_capacity(n);
    for (i, ins) in instrs.iter().enumerate() {
        def.insert(ins.dst, i);
    }
    // Predecessors (data deps) and successor lists. Registers without a
    // defining instruction are kernel parameters (always ready). A
    // redefined register (loop-carried webs) keeps the *latest* def
    // before the use, matching program order.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut last_def: HashMap<Reg, usize> = HashMap::with_capacity(n);
    for (i, ins) in instrs.iter().enumerate() {
        for src in &ins.srcs {
            if let Some(&j) = last_def.get(src) {
                preds[i].push(j);
                succs[j].push(i);
            }
        }
        // Anti/output dependence on redefinition: order the new def after
        // the previous one so register webs stay intact.
        if let Some(&j) = last_def.get(&ins.dst) {
            preds[i].push(j);
            succs[j].push(i);
        }
        last_def.insert(ins.dst, i);
    }
    // Critical-path heights.
    let mut height = vec![0u32; n];
    for i in (0..n).rev() {
        let h = succs[i].iter().map(|&s| height[s] + 1).max().unwrap_or(0);
        height[i] = h;
    }
    // Kahn with pairing preference.
    let mut indegree: Vec<usize> = preds.iter().map(Vec::len).collect();
    let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut out = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    let mut prev: Option<usize> = None;
    while let Some(&any) = ready.first() {
        // Candidates independent of the previously placed instruction.
        let independent_of_prev = |i: usize| match prev {
            None => true,
            Some(p) => !preds[i].contains(&p),
        };
        let pick = ready
            .iter()
            .copied()
            .filter(|&i| independent_of_prev(i))
            .max_by_key(|&i| height[i])
            .unwrap_or_else(|| {
                // Everything ready depends on prev: take the tallest.
                ready.iter().copied().max_by_key(|&i| height[i]).unwrap_or(any)
            });
        ready.retain(|&i| i != pick);
        placed[pick] = true;
        out.push(instrs[pick].clone());
        prev = Some(pick);
        for &s in &succs[pick] {
            indegree[s] -= 1;
            if indegree[s] == 0 && !placed[s] {
                ready.push(s);
            }
        }
    }
    debug_assert_eq!(out.len(), n, "scheduling must be a permutation");
    out
}

/// Fraction of adjacent pairs that are independent (the dual-issue upper
/// bound a stream offers).
pub fn adjacent_independence(instrs: &[MachineInstr]) -> f64 {
    if instrs.len() < 2 {
        return 1.0;
    }
    let mut independent = 0usize;
    for w in instrs.windows(2) {
        let dep = w[1].srcs.contains(&w[0].dst) || w[1].dst == w[0].dst;
        if !dep {
            independent += 1;
        }
    }
    independent as f64 / (instrs.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::ComputeCapability;
    use crate::codegen::{lower, InstrCounts, LoweringOptions};
    use crate::isa::KernelBuilder;

    /// Two independent chains, emitted sequentially (worst case for
    /// pairing).
    fn two_chains() -> Vec<MachineInstr> {
        let mut b = KernelBuilder::new("t");
        let mut a = b.param(0);
        for _ in 0..8 {
            a = b.add(a, 1u32);
        }
        let mut c = b.param(1);
        for _ in 0..8 {
            c = b.add(c, 1u32);
        }
        lower(&b.build(), LoweringOptions::plain(ComputeCapability::Sm21)).instrs
    }

    #[test]
    fn scheduling_interleaves_independent_chains() {
        let instrs = two_chains();
        let before = adjacent_independence(&instrs);
        let after = adjacent_independence(&schedule_for_pairing(&instrs));
        assert!(before < 0.2, "sequential chains pair poorly: {before}");
        assert!(after > 0.8, "scheduling should interleave: {after}");
    }

    #[test]
    fn scheduling_preserves_instruction_multiset() {
        let instrs = two_chains();
        let scheduled = schedule_for_pairing(&instrs);
        assert_eq!(scheduled.len(), instrs.len());
        assert_eq!(InstrCounts::of(&scheduled), InstrCounts::of(&instrs));
    }

    #[test]
    fn scheduling_respects_dependences() {
        let instrs = two_chains();
        let scheduled = schedule_for_pairing(&instrs);
        // Every source register must be defined before use (or be a
        // parameter never defined at all).
        let mut defined: Vec<Reg> = Vec::new();
        let all_defs: Vec<Reg> = scheduled.iter().map(|i| i.dst).collect();
        for ins in &scheduled {
            for s in &ins.srcs {
                if all_defs.contains(s) {
                    assert!(defined.contains(s), "use of {s} before def");
                }
            }
            defined.push(ins.dst);
        }
    }

    #[test]
    fn serial_chain_cannot_be_improved() {
        let mut b = KernelBuilder::new("serial");
        let mut a = b.param(0);
        for _ in 0..16 {
            a = b.add(a, 1u32);
        }
        let instrs = lower(&b.build(), LoweringOptions::plain(ComputeCapability::Sm21)).instrs;
        let after = adjacent_independence(&schedule_for_pairing(&instrs));
        assert!(after < 0.1, "a pure chain has no pairs to expose: {after}");
    }

    #[test]
    fn tiny_streams_pass_through() {
        let instrs = two_chains();
        assert_eq!(schedule_for_pairing(&instrs[..1]), instrs[..1].to_vec());
        assert_eq!(schedule_for_pairing(&[]), Vec::new());
    }
}
