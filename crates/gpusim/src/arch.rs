//! Multiprocessor architectures per compute capability: Table I
//! (structure), Table II (instruction throughput) and the execution-port
//! findings of Section V-A.

use crate::isa::MachineClass;

/// NVIDIA compute capability families the paper distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ComputeCapability {
    /// cc 1.x (Tesla: G8x/G9x/GT200).
    Sm1x,
    /// cc 2.0 (Fermi GF100/GF110).
    Sm20,
    /// cc 2.1 (Fermi GF104/GF108/...).
    Sm21,
    /// cc 3.0 (Kepler GK104/GK107).
    Sm30,
    /// cc 3.5 (Kepler GK110) — funnel shift; excluded from the paper's
    /// measurements but modeled here as the paper's "future work" case.
    Sm35,
}

impl ComputeCapability {
    /// All modeled capabilities in Table I order.
    pub const ALL: [ComputeCapability; 5] = [
        ComputeCapability::Sm1x,
        ComputeCapability::Sm20,
        ComputeCapability::Sm21,
        ComputeCapability::Sm30,
        ComputeCapability::Sm35,
    ];

    /// Display label ("1.*", "2.0", ...).
    pub fn label(self) -> &'static str {
        match self {
            ComputeCapability::Sm1x => "1.*",
            ComputeCapability::Sm20 => "2.0",
            ComputeCapability::Sm21 => "2.1",
            ComputeCapability::Sm30 => "3.0",
            ComputeCapability::Sm35 => "3.5",
        }
    }

    /// The multiprocessor specification (Table I).
    pub fn mp_spec(self) -> MpSpec {
        match self {
            ComputeCapability::Sm1x => MpSpec {
                cores_per_mp: 8,
                core_groups: 1,
                group_size: 8,
                issue_cycles: 4,
                warp_schedulers: 1,
                dual_issue: false,
                // The SFUs can co-execute integer additions (+2/cycle) when
                // an independent instruction is available (Section VI).
                sfu_add_lanes: 2,
                max_warps: 24,
                result_latency: 24,
            },
            ComputeCapability::Sm20 => MpSpec {
                cores_per_mp: 32,
                core_groups: 2,
                group_size: 16,
                issue_cycles: 2,
                warp_schedulers: 2,
                dual_issue: false,
                sfu_add_lanes: 0,
                max_warps: 48,
                result_latency: 18,
            },
            ComputeCapability::Sm21 => MpSpec {
                cores_per_mp: 48,
                core_groups: 3,
                group_size: 16,
                issue_cycles: 2,
                warp_schedulers: 2,
                dual_issue: true,
                sfu_add_lanes: 0,
                max_warps: 48,
                result_latency: 18,
            },
            ComputeCapability::Sm30 | ComputeCapability::Sm35 => MpSpec {
                cores_per_mp: 192,
                core_groups: 6,
                group_size: 32,
                issue_cycles: 1,
                warp_schedulers: 4,
                dual_issue: true,
                sfu_add_lanes: 0,
                max_warps: 64,
                result_latency: 6,
            },
        }
    }

    /// Peak per-multiprocessor throughput for an instruction class, in
    /// operations (thread-lanes) per clock cycle — Table II.
    pub fn class_throughput(self, class: MachineClass) -> u32 {
        use ComputeCapability::*;
        use MachineClass::*;
        match (self, class) {
            (Sm1x, IAdd) => 10, // 8 cores + 2 SFU lanes
            (Sm1x, Lop | Shift | Imad | Prmt) => 8,
            (Sm20, IAdd | Lop) => 32,
            (Sm20, Shift | Imad | Prmt) => 16,
            (Sm21, IAdd | Lop) => 48,
            (Sm21, Shift | Imad | Prmt) => 16,
            (Sm30, IAdd | Lop) => 160,
            (Sm30, Shift | Imad | Prmt) => 32,
            (Sm35, IAdd | Lop) => 160,
            (Sm35, Shift | Imad | Prmt) => 32,
            // Funnel shift exists only on cc 3.5 where it has "double
            // speed" relative to a plain shift (Section V-B); earlier
            // architectures never see this class emitted.
            (Sm35, Funnel) => 64,
            (_, Funnel) => 0,
        }
    }

    /// Which core groups can execute `class` (Section V-A findings):
    /// low-throughput instructions run on a single group; on cc 3.0
    /// adds/logic run on 5 of the 6 groups.
    pub fn groups_for(self, class: MachineClass) -> u32 {
        use ComputeCapability::*;
        use MachineClass::*;
        match (self, class) {
            (Sm1x, _) => 1,
            (Sm20 | Sm21, IAdd | Lop) => self.mp_spec().core_groups,
            (Sm20 | Sm21, Shift | Imad | Prmt | Funnel) => 1,
            (Sm30 | Sm35, IAdd | Lop) => 5,
            (Sm30, Shift | Imad | Prmt | Funnel) => 1,
            (Sm35, Shift | Imad | Prmt) => 1,
            (Sm35, Funnel) => 2,
        }
    }

    /// Whether the funnel-shift instruction is available.
    pub fn has_funnel_shift(self) -> bool {
        matches!(self, ComputeCapability::Sm35)
    }

    /// Whether `__byte_perm` rotate-by-16 is profitable (the paper applies
    /// it on cc 3.0, where shifts are the bottleneck port).
    pub fn prefers_prmt_rot16(self) -> bool {
        matches!(self, ComputeCapability::Sm30)
    }
}

/// Structure of one multiprocessor (Table I plus simulator parameters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MpSpec {
    /// CUDA cores per multiprocessor.
    pub cores_per_mp: u32,
    /// Number of groups of cores (execution ports).
    pub core_groups: u32,
    /// Cores per group.
    pub group_size: u32,
    /// Clock cycles a warp instruction occupies its group
    /// (32 threads / group_size, padded to the hardware issue time).
    pub issue_cycles: u32,
    /// Warp schedulers per multiprocessor.
    pub warp_schedulers: u32,
    /// Whether each scheduler can dual-issue two independent instructions
    /// of the same warp in one cycle.
    pub dual_issue: bool,
    /// Extra IADD lanes on the special function units (cc 1.x only),
    /// usable only when an independent addition can co-issue.
    pub sfu_add_lanes: u32,
    /// Maximum resident warps per multiprocessor.
    pub max_warps: u32,
    /// Cycles from issue until a result is readable (pipeline latency).
    pub result_latency: u32,
}

impl MpSpec {
    /// Sanity relation from Table I: cores = groups × group size.
    pub fn is_consistent(&self) -> bool {
        self.cores_per_mp == self.core_groups * self.group_size
            && self.issue_cycles * self.group_size == 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use MachineClass::*;

    #[test]
    fn table1_structure() {
        // Exact Table I rows.
        let rows: [(ComputeCapability, u32, u32, u32, u32, u32, bool); 4] = [
            (ComputeCapability::Sm1x, 8, 1, 8, 4, 1, false),
            (ComputeCapability::Sm20, 32, 2, 16, 2, 2, false),
            (ComputeCapability::Sm21, 48, 3, 16, 2, 2, true),
            (ComputeCapability::Sm30, 192, 6, 32, 1, 4, true),
        ];
        for (cc, cores, groups, gsize, issue, scheds, dual) in rows {
            let s = cc.mp_spec();
            assert_eq!(s.cores_per_mp, cores, "{cc:?} cores");
            assert_eq!(s.core_groups, groups, "{cc:?} groups");
            assert_eq!(s.group_size, gsize, "{cc:?} group size");
            assert_eq!(s.issue_cycles, issue, "{cc:?} issue time");
            assert_eq!(s.warp_schedulers, scheds, "{cc:?} schedulers");
            assert_eq!(s.dual_issue, dual, "{cc:?} dual issue");
        }
    }

    #[test]
    fn table2_throughput() {
        // Exact Table II rows.
        let rows = [
            (IAdd, [10u32, 32, 48, 160]),
            (Lop, [8, 32, 48, 160]),
            (Shift, [8, 16, 16, 32]),
            (Imad, [8, 16, 16, 32]),
        ];
        let ccs = [
            ComputeCapability::Sm1x,
            ComputeCapability::Sm20,
            ComputeCapability::Sm21,
            ComputeCapability::Sm30,
        ];
        for (class, values) in rows {
            for (cc, want) in ccs.iter().zip(values) {
                assert_eq!(cc.class_throughput(class), want, "{cc:?} {class:?}");
            }
        }
    }

    #[test]
    fn specs_are_internally_consistent() {
        for cc in ComputeCapability::ALL {
            assert!(cc.mp_spec().is_consistent(), "{cc:?}");
        }
    }

    #[test]
    fn port_findings_of_section_v() {
        // cc 2.x: "instructions with lower throughput are only executed on
        // a single group of 16 cores".
        assert_eq!(ComputeCapability::Sm21.groups_for(Shift), 1);
        assert_eq!(ComputeCapability::Sm21.groups_for(IAdd), 3);
        // cc 3.0: adds/logic on 5 of 6 groups, shifts/MAD on 1.
        assert_eq!(ComputeCapability::Sm30.groups_for(IAdd), 5);
        assert_eq!(ComputeCapability::Sm30.groups_for(Imad), 1);
    }

    #[test]
    fn group_throughput_matches_table2() {
        // groups_for × group_size / issue_cycles reproduces Table II for
        // the port-limited classes on cc ≥ 2.0.
        // Each group retires group_size lanes per cycle, so lanes/cycle =
        // groups_for × group_size.
        for cc in [ComputeCapability::Sm20, ComputeCapability::Sm21, ComputeCapability::Sm30] {
            let spec = cc.mp_spec();
            for class in [IAdd, Lop, Shift, Imad] {
                assert_eq!(
                    cc.groups_for(class) * spec.group_size,
                    cc.class_throughput(class),
                    "{cc:?} {class:?}"
                );
            }
        }
    }

    #[test]
    fn funnel_only_on_sm35() {
        assert!(ComputeCapability::Sm35.has_funnel_shift());
        assert!(!ComputeCapability::Sm30.has_funnel_shift());
        assert_eq!(ComputeCapability::Sm30.class_throughput(Funnel), 0);
        assert_eq!(ComputeCapability::Sm35.class_throughput(Funnel), 64);
    }

    #[test]
    fn sm1x_sfu_bonus() {
        // Table II footnote: ADD reaches 10/cycle only via the SFUs.
        let s = ComputeCapability::Sm1x.mp_spec();
        assert_eq!(s.sfu_add_lanes, 2);
        assert_eq!(ComputeCapability::Sm1x.class_throughput(IAdd), 10);
    }
}
