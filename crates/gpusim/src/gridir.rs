//! Grid-level kernel IR: the launch-visible skeleton of a search kernel.
//!
//! The straight-line [`crate::isa`] IR models the *arithmetic* of one
//! candidate test; it has no notion of threads, buffers or control
//! flow, so it cannot express the bug classes that live at the launch
//! boundary — an out-of-bounds store when `gridDim·blockDim` overshoots
//! the keyspace, a register read that is only defined on one side of
//! the tail guard, or a `__syncthreads()` sitting inside a divergent
//! branch. This module is a deliberately small IR for exactly that
//! skeleton:
//!
//! * symbolic launch quantities ([`Sym`]): `tid`, `bid`, `blockDim`,
//!   `gridDim` and the keyspace size `n_keys` — never concrete, so a
//!   proof over a [`GridKernel`] holds for *all* grid shapes;
//! * buffers with symbolic extents ([`Extent`]);
//! * structured control flow ([`GStmt::If`]) with `a < b` guards, block
//!   barriers, and an opaque [`GStmt::Body`] standing in for the hashed
//!   candidate test (which the scalar IR and its analyzer passes cover).
//!
//! `eks-analyzer::grid` runs three soundness passes over this IR:
//! value-range bounds proofs, must-defined register dataflow, and a
//! barrier-divergence lint. [`search_wrapper`] builds the canonical
//! guarded wrapper every shipped kernel variant launches with, and the
//! `mutant_*` constructors build known-broken wrappers the passes must
//! flag.

use std::fmt;

/// A virtual register holding a 64-bit launch-skeleton value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GReg(pub u32);

impl fmt::Display for GReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// A symbolic launch quantity. None of these ever take a concrete
/// value during analysis; the only facts the passes may use are the
/// CUDA execution-model ranges (`tid < blockDim`, `bid < gridDim`,
/// `blockDim ≥ 1`, `gridDim ≥ 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sym {
    /// `threadIdx.x` — varies per thread within a block.
    Tid,
    /// `blockIdx.x` — uniform within a block.
    Bid,
    /// `blockDim.x`.
    BlockDim,
    /// `gridDim.x`.
    GridDim,
    /// The number of keys this launch covers (kernel parameter).
    NKeys,
}

impl Sym {
    /// Source-level spelling.
    pub fn name(self) -> &'static str {
        match self {
            Sym::Tid => "tid",
            Sym::Bid => "bid",
            Sym::BlockDim => "blockDim",
            Sym::GridDim => "gridDim",
            Sym::NKeys => "nKeys",
        }
    }
}

/// A buffer identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufId(pub u32);

/// A buffer's symbolic length, in elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Extent {
    /// A fixed element count.
    Const(u64),
    /// One element per key in the launch (`n_keys`).
    NKeys,
    /// One element per thread in a block (`blockDim`): shared staging.
    BlockDim,
    /// One element per thread in the grid (`gridDim·blockDim`).
    Threads,
}

/// A named buffer the kernel may load from or store to.
#[derive(Debug, Clone)]
pub struct Buffer {
    /// Display name.
    pub name: String,
    /// Symbolic element count.
    pub extent: Extent,
}

/// A register-producing operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GOp {
    /// Read a symbolic launch quantity.
    ReadSym(Sym),
    /// A compile-time constant.
    Const(u64),
    /// Wrapping addition.
    Add(GReg, GReg),
    /// Wrapping multiplication.
    Mul(GReg, GReg),
    /// Load `buf[index]`.
    Load {
        /// Source buffer.
        buf: BufId,
        /// Element index register.
        index: GReg,
    },
}

/// A branch predicate. Only `<` exists: it is the shape of every tail
/// guard the generated wrappers emit, and keeping the language minimal
/// keeps the range-refinement rule in the analyzer exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pred {
    /// `a < b`, unsigned.
    Lt(GReg, GReg),
}

/// One statement of the launch skeleton.
#[derive(Debug, Clone)]
pub enum GStmt {
    /// `dst = op`.
    Op {
        /// Destination register.
        dst: GReg,
        /// Producing operation.
        op: GOp,
    },
    /// `buf[index] = value`.
    Store {
        /// Destination buffer.
        buf: BufId,
        /// Element index register.
        index: GReg,
        /// Stored register.
        value: GReg,
    },
    /// Structured two-way branch.
    If {
        /// The guard.
        pred: Pred,
        /// Statements executed when the guard holds.
        then_: Vec<GStmt>,
        /// Statements executed otherwise (often empty).
        else_: Vec<GStmt>,
    },
    /// A block-wide barrier (`__syncthreads()`): every thread of the
    /// block must reach it, so it may not sit inside a branch whose
    /// guard varies across the block's threads.
    Barrier,
    /// The opaque candidate-test body (the scalar-IR hash kernel):
    /// reads `reads`, defines `writes`. Its internals are analyzed by
    /// the scalar passes, not here.
    Body {
        /// Registers the body consumes.
        reads: Vec<GReg>,
        /// Registers the body defines.
        writes: Vec<GReg>,
    },
}

/// A grid-level kernel: buffers plus a statement list.
#[derive(Debug, Clone)]
pub struct GridKernel {
    /// Kernel name (`algo/variant` for the shipped wrappers).
    pub name: String,
    /// Number of virtual registers (all `GReg` indices are `< regs`).
    pub regs: u32,
    /// Declared buffers, indexed by [`BufId`].
    pub buffers: Vec<Buffer>,
    /// Top-level statement list.
    pub body: Vec<GStmt>,
}

impl GridKernel {
    /// The buffer behind `id`.
    ///
    /// # Panics
    /// Panics when `id` was not declared on this kernel.
    pub fn buffer(&self, id: BufId) -> &Buffer {
        self.buffers.get(id.0 as usize).expect("undeclared buffer id")
    }

    /// Total number of statements, counting nested branch arms — the
    /// span domain used by analyzer diagnostics.
    pub fn stmt_count(&self) -> usize {
        fn count(stmts: &[GStmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    GStmt::If { then_, else_, .. } => 1 + count(then_) + count(else_),
                    _ => 1,
                })
                .sum()
        }
        count(&self.body)
    }
}

/// Incremental [`GridKernel`] builder with structured-branch closures.
pub struct GridBuilder {
    name: String,
    next_reg: u32,
    buffers: Vec<Buffer>,
    frames: Vec<Vec<GStmt>>,
}

impl GridBuilder {
    /// Start a kernel called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        GridBuilder {
            name: name.into(),
            next_reg: 0,
            buffers: Vec::new(),
            frames: vec![Vec::new()],
        }
    }

    fn fresh(&mut self) -> GReg {
        let r = GReg(self.next_reg);
        self.next_reg += 1;
        r
    }

    fn push(&mut self, stmt: GStmt) {
        self.frames.last_mut().expect("builder frame").push(stmt);
    }

    /// Declare a buffer.
    pub fn buffer(&mut self, name: impl Into<String>, extent: Extent) -> BufId {
        let id = BufId(self.buffers.len() as u32);
        self.buffers.push(Buffer { name: name.into(), extent });
        id
    }

    /// `dst = <sym>`.
    pub fn sym(&mut self, s: Sym) -> GReg {
        let dst = self.fresh();
        self.push(GStmt::Op { dst, op: GOp::ReadSym(s) });
        dst
    }

    /// `dst = value`.
    pub fn constant(&mut self, value: u64) -> GReg {
        let dst = self.fresh();
        self.push(GStmt::Op { dst, op: GOp::Const(value) });
        dst
    }

    /// `dst = a + b`.
    pub fn add(&mut self, a: GReg, b: GReg) -> GReg {
        let dst = self.fresh();
        self.push(GStmt::Op { dst, op: GOp::Add(a, b) });
        dst
    }

    /// `dst = a * b`.
    pub fn mul(&mut self, a: GReg, b: GReg) -> GReg {
        let dst = self.fresh();
        self.push(GStmt::Op { dst, op: GOp::Mul(a, b) });
        dst
    }

    /// `dst = buf[index]`.
    pub fn load(&mut self, buf: BufId, index: GReg) -> GReg {
        let dst = self.fresh();
        self.push(GStmt::Op { dst, op: GOp::Load { buf, index } });
        dst
    }

    /// `buf[index] = value`.
    pub fn store(&mut self, buf: BufId, index: GReg, value: GReg) {
        self.push(GStmt::Store { buf, index, value });
    }

    /// A block barrier.
    pub fn barrier(&mut self) {
        self.push(GStmt::Barrier);
    }

    /// The opaque candidate-test body.
    pub fn body(&mut self, reads: &[GReg], writes: &[GReg]) {
        self.push(GStmt::Body { reads: reads.to_vec(), writes: writes.to_vec() });
    }

    /// A fresh register the body will define — lets mutants declare a
    /// register without any defining statement.
    pub fn undef(&mut self) -> GReg {
        self.fresh()
    }

    /// `if a < b { then_ } else { else_ }`.
    pub fn if_lt(
        &mut self,
        a: GReg,
        b: GReg,
        then_: impl FnOnce(&mut Self),
        else_: impl FnOnce(&mut Self),
    ) {
        self.frames.push(Vec::new());
        then_(self);
        let t = self.frames.pop().expect("then frame");
        self.frames.push(Vec::new());
        else_(self);
        let e = self.frames.pop().expect("else frame");
        self.push(GStmt::If { pred: Pred::Lt(a, b), then_: t, else_: e });
    }

    /// Finish the kernel.
    ///
    /// # Panics
    /// Panics when called with an unclosed branch frame (impossible via
    /// [`GridBuilder::if_lt`], which always closes its frames).
    pub fn finish(mut self) -> GridKernel {
        assert_eq!(self.frames.len(), 1, "unclosed branch frame");
        GridKernel {
            name: self.name,
            regs: self.next_reg,
            buffers: self.buffers,
            body: self.frames.pop().expect("root frame"),
        }
    }
}

/// The canonical launch wrapper every shipped search kernel uses
/// (§IV-A of the paper: one thread per candidate, tail-guarded):
///
/// ```text
/// stage[tid] = table[tid]          // uniform shared staging
/// __syncthreads()                  // top-level: uniform, legal
/// gid = bid * blockDim + tid
/// if gid < nKeys {                 // divergent tail guard, no barrier
///     hit = body(gid, stage...)    // scalar hash kernel
///     out[gid] = hit               // in bounds: gid < nKeys proven
/// }
/// ```
///
/// Every access is provably in bounds for *all* grid shapes, every read
/// is dominated by its definition, and the only barrier sits outside
/// the divergent guard — the clean baseline the soundness passes must
/// accept.
pub fn search_wrapper(name: &str) -> GridKernel {
    let mut b = GridBuilder::new(name);
    let table = b.buffer("table", Extent::BlockDim);
    let stage = b.buffer("stage", Extent::BlockDim);
    let out = b.buffer("out", Extent::NKeys);
    let tid = b.sym(Sym::Tid);
    let staged = b.load(table, tid);
    b.store(stage, tid, staged);
    b.barrier();
    let bid = b.sym(Sym::Bid);
    let bdim = b.sym(Sym::BlockDim);
    let base = b.mul(bid, bdim);
    let gid = b.add(base, tid);
    let nkeys = b.sym(Sym::NKeys);
    b.if_lt(
        gid,
        nkeys,
        |b| {
            let hit = b.undef();
            b.body(&[gid, staged], &[hit]);
            b.store(out, gid, hit);
        },
        |_| {},
    );
    b.finish()
}

/// Mutant: the tail guard is dropped, so `out[gid]` is written for
/// every thread in the grid even when `gridDim·blockDim > nKeys`. The
/// bounds pass must reject the store.
pub fn mutant_unguarded_store(name: &str) -> GridKernel {
    let mut b = GridBuilder::new(name);
    let out = b.buffer("out", Extent::NKeys);
    let tid = b.sym(Sym::Tid);
    let bid = b.sym(Sym::Bid);
    let bdim = b.sym(Sym::BlockDim);
    let base = b.mul(bid, bdim);
    let gid = b.add(base, tid);
    let hit = b.undef();
    b.body(&[gid], &[hit]);
    b.store(out, gid, hit);
    b.finish()
}

/// Mutant: `hit` is only defined inside the guard but read after the
/// join — the PR 1 dead-rotl bug class lifted to the launch skeleton.
/// The must-defined pass must reject the read.
pub fn mutant_uninit_read(name: &str) -> GridKernel {
    let mut b = GridBuilder::new(name);
    let out = b.buffer("out", Extent::NKeys);
    let tid = b.sym(Sym::Tid);
    let bid = b.sym(Sym::Bid);
    let bdim = b.sym(Sym::BlockDim);
    let base = b.mul(bid, bdim);
    let gid = b.add(base, tid);
    let nkeys = b.sym(Sym::NKeys);
    let hit = b.undef();
    b.if_lt(
        gid,
        nkeys,
        |b| {
            b.body(&[gid], &[hit]);
        },
        |_| {},
    );
    // `hit` is undefined on the else path.
    b.if_lt(
        gid,
        nkeys,
        |b| {
            b.store(out, gid, hit);
        },
        |_| {},
    );
    b.finish()
}

/// Mutant: the staging barrier moved inside the divergent tail guard —
/// threads past the tail never arrive and the block hangs. The
/// divergence lint must reject the barrier.
pub fn mutant_divergent_barrier(name: &str) -> GridKernel {
    let mut b = GridBuilder::new(name);
    let table = b.buffer("table", Extent::BlockDim);
    let stage = b.buffer("stage", Extent::BlockDim);
    let out = b.buffer("out", Extent::NKeys);
    let tid = b.sym(Sym::Tid);
    let bid = b.sym(Sym::Bid);
    let bdim = b.sym(Sym::BlockDim);
    let base = b.mul(bid, bdim);
    let gid = b.add(base, tid);
    let nkeys = b.sym(Sym::NKeys);
    b.if_lt(
        gid,
        nkeys,
        |b| {
            let staged = b.load(table, tid);
            b.store(stage, tid, staged);
            b.barrier();
            let hit = b.undef();
            b.body(&[gid, staged], &[hit]);
            b.store(out, gid, hit);
        },
        |_| {},
    );
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapper_declares_three_buffers_and_a_guard() {
        let k = search_wrapper("md5/optimized");
        assert_eq!(k.buffers.len(), 3);
        assert_eq!(k.buffer(BufId(2)).extent, Extent::NKeys);
        assert!(k.body.iter().any(|s| matches!(s, GStmt::If { .. })));
        assert!(k.body.iter().any(|s| matches!(s, GStmt::Barrier)));
        assert!(k.stmt_count() > k.body.len(), "branch arms count toward spans");
    }

    #[test]
    fn builder_numbers_registers_densely() {
        let k = search_wrapper("sha1/naive");
        let mut seen = vec![false; k.regs as usize];
        fn visit(stmts: &[GStmt], seen: &mut [bool]) {
            for s in stmts {
                match s {
                    GStmt::Op { dst, .. } => {
                        *seen.get_mut(dst.0 as usize).unwrap() = true
                    }
                    GStmt::Body { writes, .. } => {
                        for w in writes {
                            *seen.get_mut(w.0 as usize).unwrap() = true;
                        }
                    }
                    GStmt::If { then_, else_, .. } => {
                        visit(then_, seen);
                        visit(else_, seen);
                    }
                    _ => {}
                }
            }
        }
        visit(&k.body, &mut seen);
        assert!(seen.iter().filter(|s| **s).count() >= k.regs as usize - 1);
    }

    #[test]
    fn mutants_build_and_keep_their_names() {
        assert_eq!(mutant_unguarded_store("m").name, "m");
        assert_eq!(mutant_uninit_read("m").name, "m");
        assert_eq!(mutant_divergent_barrier("m").name, "m");
    }
}
