//! Kernel launch configuration: occupancy, keys per thread, and splitting
//! a long search across multiple grids to respect the OS watchdog
//! (Section IV-A: "The operating system may put a limit on the maximum
//! time that a driver of a graphic card should wait for the completion of
//! a running kernel; we can easily bypass this problem by adjusting the
//! amount of tests per call and spreading the computation over multiple
//! grids").

use crate::device::Device;

/// A planned grid launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Threads per block.
    pub threads_per_block: u32,
    /// Blocks in the grid.
    pub blocks: u32,
    /// Keys each thread tests via the `next` operator.
    pub keys_per_thread: u32,
}

impl LaunchConfig {
    /// Total keys one launch covers.
    pub fn keys_per_launch(&self) -> u128 {
        self.threads_per_block as u128 * self.blocks as u128 * self.keys_per_thread as u128
    }

    /// Total threads in the grid.
    pub fn total_threads(&self) -> u64 {
        self.threads_per_block as u64 * self.blocks as u64
    }

    /// Resident warps per multiprocessor if the grid is spread evenly, an
    /// occupancy indicator (clamped by the architecture's maximum).
    pub fn warps_per_mp(&self, device: &Device) -> u32 {
        let total_warps = (self.total_threads() / 32).max(1) as u32;
        let per_mp = total_warps / device.mp_count.max(1);
        per_mp.min(device.cc.mp_spec().max_warps)
    }
}

/// Plan the launches needed to cover `total_keys` on a device running at
/// `device_mkeys` (MKey/s), keeping each launch under `watchdog_ms`.
///
/// The plan fixes 256 threads/block and sizes the grid to fill the device
/// (at least 8 blocks per MP), then picks `keys_per_thread` so every warp
/// amortizes the conversion `f(id)` over many `next` steps, and finally
/// splits the interval into as many launches as the watchdog requires.
pub fn plan_launches(
    total_keys: u128,
    device: &Device,
    device_mkeys: f64,
    watchdog_ms: f64,
) -> Vec<LaunchConfig> {
    assert!(device_mkeys > 0.0 && watchdog_ms > 0.0);
    if total_keys == 0 {
        return Vec::new();
    }
    let threads_per_block = 256u32;
    let blocks = (device.mp_count * 8).max(1);
    let grid_threads = (threads_per_block as u128) * (blocks as u128);
    // Keys the device can test inside one watchdog window.
    let max_keys_per_launch = (device_mkeys * 1e3 * watchdog_ms) as u128;
    let max_keys_per_launch = max_keys_per_launch.max(grid_threads);
    let mut launches = Vec::new();
    let mut remaining = total_keys;
    while remaining > 0 {
        let this = remaining.min(max_keys_per_launch);
        let kpt = (this.div_ceil(grid_threads)).clamp(1, u32::MAX as u128) as u32;
        launches.push(LaunchConfig { threads_per_block, blocks, keys_per_thread: kpt });
        remaining = remaining.saturating_sub(this);
    }
    launches
}

/// Model of search efficiency versus interval size: a kernel launch has a
/// fixed overhead (driver + grid ramp-up), so small intervals waste a
/// fraction of the device. This is the curve the tuning step samples to
/// find the paper's `n_j` (minimum candidates for a target efficiency).
pub fn launch_efficiency(keys: u128, device_mkeys: f64, launch_overhead_ms: f64) -> f64 {
    if keys == 0 {
        return 0.0;
    }
    let work_ms = keys as f64 / (device_mkeys * 1e3);
    work_ms / (work_ms + launch_overhead_ms)
}

/// Invert [`launch_efficiency`]: the minimum interval size reaching
/// `target` efficiency (the tuning step's `n_j`).
pub fn min_keys_for_efficiency(
    target: f64,
    device_mkeys: f64,
    launch_overhead_ms: f64,
) -> u128 {
    assert!((0.0..1.0).contains(&target), "target must be in [0, 1)");
    // eff = w/(w+o) => w = o * eff / (1 - eff); keys = w * rate
    let work_ms = launch_overhead_ms * target / (1.0 - target);
    (work_ms * device_mkeys * 1e3).ceil() as u128
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> Device {
        Device::geforce_gtx_660()
    }

    #[test]
    fn launches_cover_all_keys() {
        let total = 10_000_000_000u128; // 10 G keys at ~1841 MKey/s ≈ 5.4 s
        let plan = plan_launches(total, &dev(), 1841.0, 500.0);
        assert!(plan.len() >= 10, "watchdog must split: {} launches", plan.len());
        let covered: u128 = plan.iter().map(|l| l.keys_per_launch()).sum();
        assert!(covered >= total, "covered {covered} < {total}");
    }

    #[test]
    fn single_small_launch() {
        let plan = plan_launches(1_000_000, &dev(), 1841.0, 500.0);
        assert_eq!(plan.len(), 1);
        assert!(plan[0].keys_per_launch() >= 1_000_000);
    }

    #[test]
    fn zero_keys_zero_launches() {
        assert!(plan_launches(0, &dev(), 1841.0, 500.0).is_empty());
    }

    #[test]
    fn occupancy_reaches_architecture_max() {
        let plan = plan_launches(1 << 30, &dev(), 1841.0, 500.0);
        let l = plan[0];
        assert_eq!(l.warps_per_mp(&dev()), dev().cc.mp_spec().max_warps);
    }

    #[test]
    fn efficiency_curve_monotone() {
        let rate = 1000.0;
        let e_small = launch_efficiency(1_000, rate, 0.1);
        let e_big = launch_efficiency(100_000_000, rate, 0.1);
        assert!(e_small < e_big);
        assert!(e_big > 0.99);
        assert_eq!(launch_efficiency(0, rate, 0.1), 0.0);
    }

    #[test]
    fn min_keys_inverts_efficiency() {
        let rate = 500.0;
        let overhead = 0.2;
        for target in [0.5, 0.9, 0.99] {
            let n = min_keys_for_efficiency(target, rate, overhead);
            let e = launch_efficiency(n, rate, overhead);
            assert!(e >= target - 1e-6, "target {target}: n={n} e={e}");
        }
    }

    #[test]
    fn higher_target_needs_more_keys() {
        let a = min_keys_for_efficiency(0.9, 1000.0, 0.1);
        let b = min_keys_for_efficiency(0.99, 1000.0, 0.1);
        assert!(b > a * 5, "a={a} b={b}");
    }
}
