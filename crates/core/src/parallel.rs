//! A generic parallel driver over any [`SolutionSpace`] — the fine-grain
//! half of the pattern without committing to keys or hashes. `eks-cracker`
//! specializes this shape for password targets; this driver is what other
//! exhaustive-search instantiations (the paper: "our solution pattern can
//! be applied to other exhaustive search strategies") build on.
//!
//! Threads pull fixed-size chunks from a shared cursor; each chunk is
//! scanned with one `generate` and `next` thereafter; a stop flag
//! implements first-hit termination.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::space::{CandidateTest, SolutionSpace};

/// Configuration for [`parallel_search`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelDriver {
    /// Worker thread count (≥ 1).
    pub threads: usize,
    /// Identifiers per chunk pulled from the shared cursor.
    pub chunk: u64,
    /// Stop all threads at the first accepted candidate.
    pub first_hit_only: bool,
}

impl Default for ParallelDriver {
    fn default() -> Self {
        Self { threads: 4, chunk: 1 << 12, first_hit_only: true }
    }
}

/// Result of a generic parallel search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelOutcome<E> {
    /// Accepted candidates, in identifier order.
    pub hits: Vec<(u128, E)>,
    /// Candidates evaluated across all threads.
    pub tested: u128,
}

/// Search `[start, start + len)` of `space` with `driver.threads` workers.
///
/// Generic over the space and the test; the only requirements are the
/// pattern's own (`Sync` access to both, identifiers that fit the chunked
/// cursor).
///
/// # Panics
/// Panics when `threads == 0`, `chunk == 0`, or the interval needs more
/// than `u64::MAX` chunks.
pub fn parallel_search<S, T>(
    space: &S,
    test: &T,
    start: u128,
    len: u128,
    driver: ParallelDriver,
) -> ParallelOutcome<T::Evidence>
where
    S: SolutionSpace + Sync,
    T: CandidateTest<S::Solution> + Sync,
    T::Evidence: Send,
{
    assert!(driver.threads >= 1 && driver.chunk >= 1);
    let total_chunks: u64 = len
        .div_ceil(driver.chunk as u128)
        .try_into()
        .expect("interval too large for chunked dispatch");
    let cursor = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let tested = AtomicU64::new(0);
    let hits: Mutex<Vec<(u128, T::Evidence)>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for _ in 0..driver.threads {
            scope.spawn(|| loop {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let n = cursor.fetch_add(1, Ordering::Relaxed);
                if n >= total_chunks {
                    break;
                }
                let lo = start + (n as u128) * (driver.chunk as u128);
                let chunk_len = (driver.chunk as u128).min(start + len - lo);
                let mut local_tested = 0u64;
                let mut id = lo;
                let mut candidate = space.generate(id);
                loop {
                    local_tested += 1;
                    if let Some(e) = test.test(id, &candidate) {
                        hits.lock().expect("hits lock").push((id, e));
                        if driver.first_hit_only {
                            stop.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                    if id + 1 == lo + chunk_len {
                        break;
                    }
                    space.advance(id, &mut candidate);
                    id += 1;
                }
                tested.fetch_add(local_tested, Ordering::Relaxed);
            });
        }
    });

    let mut all = hits.into_inner().expect("hits lock");
    all.sort_by_key(|(id, _)| *id);
    ParallelOutcome { hits: all, tested: tested.load(Ordering::Relaxed) as u128 }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A non-string instantiation of the pattern: search for integer
    /// solutions of x² ≡ a (mod m) — exactly the "arbitrary test
    /// function" case the abstract section allows.
    struct Naturals;

    impl SolutionSpace for Naturals {
        type Solution = u128;
        fn size(&self) -> Option<u128> {
            None
        }
        fn generate(&self, id: u128) -> u128 {
            id
        }
        fn advance(&self, _id: u128, s: &mut u128) {
            *s += 1;
        }
    }

    fn quadratic_residue_test(a: u128, m: u128) -> impl Fn(u128, &u128) -> Option<u128> + Sync {
        move |_id, x| ((x * x) % m == a).then_some(*x)
    }

    #[test]
    fn finds_all_square_roots_mod_m() {
        // x² ≡ 4 (mod 101): roots 2 and 99.
        let out = parallel_search(
            &Naturals,
            &quadratic_residue_test(4, 101),
            0,
            101,
            ParallelDriver { threads: 4, chunk: 8, first_hit_only: false },
        );
        let roots: Vec<u128> = out.hits.iter().map(|(_, x)| *x).collect();
        assert_eq!(roots, vec![2, 99]);
        assert_eq!(out.tested, 101, "full sweep");
    }

    #[test]
    fn first_hit_stops_early() {
        let out = parallel_search(
            &Naturals,
            &quadratic_residue_test(4, 101),
            0,
            1_000_000,
            ParallelDriver { threads: 4, chunk: 64, first_hit_only: true },
        );
        assert!(!out.hits.is_empty());
        assert!(out.tested < 1_000_000, "tested {}", out.tested);
    }

    #[test]
    fn offset_intervals_respected() {
        let out = parallel_search(
            &Naturals,
            &quadratic_residue_test(4, 101),
            3,
            50,
            ParallelDriver { threads: 2, chunk: 7, first_hit_only: false },
        );
        // Only root 2 is below 53... root 2 < 3, so nothing in [3, 53).
        assert!(out.hits.is_empty());
        assert_eq!(out.tested, 50);
    }

    #[test]
    fn single_thread_single_chunk_degenerate() {
        let out = parallel_search(
            &Naturals,
            &quadratic_residue_test(0, 7),
            0,
            7,
            ParallelDriver { threads: 1, chunk: 1_000, first_hit_only: false },
        );
        // x² ≡ 0 (mod 7) within 0..7: {0, 7? no — just 0}.
        assert_eq!(out.hits.len(), 1);
        assert_eq!(out.hits[0].0, 0);
    }

    #[test]
    fn zero_length_interval() {
        let out = parallel_search(
            &Naturals,
            &quadratic_residue_test(1, 5),
            10,
            0,
            ParallelDriver::default(),
        );
        assert!(out.hits.is_empty());
        assert_eq!(out.tested, 0);
    }
}
