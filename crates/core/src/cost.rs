//! The cost model of Section III-A.
//!
//! The paper parameterizes an exhaustive search by three per-candidate
//! costs: `K_f(i)` (generate a candidate from its identifier),
//! `K_next(i, f(i))` (generate a candidate from its predecessor) and
//! `K_C(f(i))` (evaluate a candidate). A single process scanning `n`
//! candidates starting at `i0` pays
//!
//! ```text
//! K_search = K_f(i0) + Σ K_next + Σ K_C          (enumeration via next)
//! K_search = Σ (K_f(i) + K_C(f(i)))              (regenerating every key)
//! ```
//!
//! and a master dispatching to `j` nodes pays `K_D` bounded by
//!
//! ```text
//! K_D ≥ max_j(K_scatter_j + K_search_j + K_gather_j) + K_C_M
//! K_D ≤ Σ K_scatter_j + max_j K_search_j + Σ K_gather_j + K_C_M
//! ```
//!
//! All quantities here are unitless "costs"; callers decide whether they
//! are seconds, cycles or instruction counts.

/// Per-candidate costs of one search process (the paper's `K_f`, `K_next`,
/// `K_C`). For password cracking these are effectively constants, which is
/// what makes throughput-proportional balancing sound (Section IV).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// `K_f`: cost of generating a candidate from an identifier.
    pub k_f: f64,
    /// `K_next`: cost of advancing a candidate to its successor.
    pub k_next: f64,
    /// `K_C`: cost of evaluating the test function on a candidate.
    pub k_c: f64,
}

impl CostModel {
    /// Create a cost model; all costs must be finite and non-negative.
    ///
    /// # Panics
    /// Panics if any cost is negative, NaN or infinite.
    pub fn new(k_f: f64, k_next: f64, k_c: f64) -> Self {
        for (name, v) in [("k_f", k_f), ("k_next", k_next), ("k_c", k_c)] {
            assert!(v.is_finite() && v >= 0.0, "{name} must be finite and >= 0, got {v}");
        }
        Self { k_f, k_next, k_c }
    }

    /// `K_search` for `n` candidates enumerated with one `f` and `n - 1`
    /// applications of `next` (first closed form in Section III-A).
    pub fn k_search_incremental(&self, n: u64) -> f64 {
        if n == 0 {
            return 0.0;
        }
        self.k_f + (n - 1) as f64 * self.k_next + n as f64 * self.k_c
    }

    /// `K_search` when every candidate is regenerated from its identifier
    /// (`next ≡ f(i+1)`, second closed form in Section III-A).
    pub fn k_search_regenerating(&self, n: u64) -> f64 {
        n as f64 * (self.k_f + self.k_c)
    }

    /// The paper's process efficiency: time spent testing a solution over
    /// the time spent generating **and** testing it, for an `n`-candidate
    /// incremental scan. Approaches `K_C / (K_next + K_C)` as `n` grows
    /// whenever `K_next < K_f`.
    pub fn efficiency(&self, n: u64) -> Efficiency {
        let total = self.k_search_incremental(n);
        let testing = n as f64 * self.k_c;
        Efficiency::from_ratio(testing, total)
    }

    /// Asymptotic efficiency `K_C / (K_next + K_C)` of the incremental scan.
    pub fn asymptotic_efficiency(&self) -> Efficiency {
        Efficiency::from_ratio(self.k_c, self.k_next + self.k_c)
    }

    /// Whether incremental enumeration beats regeneration for `n`
    /// candidates, i.e. `K_next < K_f` pays off.
    pub fn incremental_wins(&self, n: u64) -> bool {
        self.k_search_incremental(n) < self.k_search_regenerating(n)
    }
}

/// Fraction in `[0, 1]` with a few convenience accessors.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Efficiency(f64);

impl Efficiency {
    /// Build from a ratio, clamping to `[0, 1]`; `0/0` maps to 1 (an empty
    /// search wastes nothing).
    pub fn from_ratio(useful: f64, total: f64) -> Self {
        if total <= 0.0 {
            return Self(1.0);
        }
        Self((useful / total).clamp(0.0, 1.0))
    }

    /// The efficiency as a fraction in `[0, 1]`.
    pub fn fraction(self) -> f64 {
        self.0
    }

    /// The efficiency in percent.
    pub fn percent(self) -> f64 {
        self.0 * 100.0
    }
}

/// Measure a [`CostModel`] from a concrete space and test function by
/// timing the three primitives directly (the paper's quantities made
/// empirical): `K_f` over `samples` generations, `K_next` over `samples`
/// advances, `K_C` over `samples` evaluations. Costs are in nanoseconds
/// per operation.
pub fn measure_cost_model<S, T>(
    space: &S,
    test: &T,
    start_id: u128,
    samples: u32,
) -> CostModel
where
    S: crate::space::SolutionSpace,
    T: crate::space::CandidateTest<S::Solution>,
{
    assert!(samples > 0);
    let t0 = std::time::Instant::now();
    for i in 0..samples {
        std::hint::black_box(space.generate(start_id + i as u128));
    }
    let k_f = t0.elapsed().as_nanos() as f64 / samples as f64;

    let mut candidate = space.generate(start_id);
    let t0 = std::time::Instant::now();
    for i in 0..samples {
        space.advance(start_id + i as u128, &mut candidate);
        std::hint::black_box(&candidate);
    }
    let k_next = t0.elapsed().as_nanos() as f64 / samples as f64;

    let candidate = space.generate(start_id);
    let t0 = std::time::Instant::now();
    for i in 0..samples {
        std::hint::black_box(test.test(start_id + i as u128, &candidate));
    }
    let k_c = t0.elapsed().as_nanos() as f64 / samples as f64;

    CostModel::new(k_f, k_next, k_c)
}

/// Costs of one dispatch round from a master to its children
/// (`K_scatter_j`, `K_search_j`, `K_gather_j` per node plus the optional
/// merge cost `K_C_M`).
#[derive(Debug, Clone, PartialEq)]
pub struct DispatchCosts {
    /// Per-node `(K_scatter_j, K_search_j, K_gather_j)` triples.
    pub per_node: Vec<(f64, f64, f64)>,
    /// `K_C_M`: cost of the master's merge step.
    pub k_merge: f64,
}

impl DispatchCosts {
    /// Create dispatch costs for a set of nodes.
    ///
    /// # Panics
    /// Panics if any cost is negative or non-finite.
    pub fn new(per_node: Vec<(f64, f64, f64)>, k_merge: f64) -> Self {
        assert!(k_merge.is_finite() && k_merge >= 0.0);
        for &(s, w, g) in &per_node {
            assert!(s.is_finite() && s >= 0.0);
            assert!(w.is_finite() && w >= 0.0);
            assert!(g.is_finite() && g >= 0.0);
        }
        Self { per_node, k_merge }
    }

    /// Lower bound on `K_D`: the best case where scatters and gathers fully
    /// overlap with other nodes' searches.
    pub fn k_d_lower(&self) -> f64 {
        let max_chain = self
            .per_node
            .iter()
            .map(|&(s, w, g)| s + w + g)
            .fold(0.0f64, f64::max);
        max_chain + self.k_merge
    }

    /// Upper bound on `K_D`: fully serialized scatters and gathers.
    pub fn k_d_upper(&self) -> f64 {
        let scatter: f64 = self.per_node.iter().map(|&(s, _, _)| s).sum();
        let gather: f64 = self.per_node.iter().map(|&(_, _, g)| g).sum();
        let max_search = self
            .per_node
            .iter()
            .map(|&(_, w, _)| w)
            .fold(0.0f64, f64::max);
        scatter + max_search + gather + self.k_merge
    }

    /// For large intervals `K_D` is dominated by the slowest node's search
    /// (`max_j K_search_j`); this returns that dominant term.
    pub fn dominant_search(&self) -> f64 {
        self.per_node
            .iter()
            .map(|&(_, w, _)| w)
            .fold(0.0f64, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_search_cost_formula() {
        let m = CostModel::new(10.0, 1.0, 5.0);
        // K_f + (n-1)*K_next + n*K_C = 10 + 9 + 50
        assert_eq!(m.k_search_incremental(10), 69.0);
    }

    #[test]
    fn regenerating_search_cost_formula() {
        let m = CostModel::new(10.0, 1.0, 5.0);
        assert_eq!(m.k_search_regenerating(10), 150.0);
    }

    #[test]
    fn zero_candidates_cost_nothing() {
        let m = CostModel::new(10.0, 1.0, 5.0);
        assert_eq!(m.k_search_incremental(0), 0.0);
        assert_eq!(m.k_search_regenerating(0), 0.0);
    }

    #[test]
    fn efficiency_grows_with_n_when_next_is_cheap() {
        let m = CostModel::new(10.0, 1.0, 5.0);
        let e_small = m.efficiency(2).fraction();
        let e_large = m.efficiency(10_000).fraction();
        assert!(e_large > e_small);
        let asymptote = m.asymptotic_efficiency().fraction();
        assert!((e_large - asymptote).abs() < 1e-3);
        assert!((asymptote - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn incremental_wins_iff_next_cheaper_over_horizon() {
        let cheap_next = CostModel::new(10.0, 1.0, 5.0);
        assert!(cheap_next.incremental_wins(100));
        let expensive_next = CostModel::new(1.0, 50.0, 5.0);
        assert!(!expensive_next.incremental_wins(100));
    }

    #[test]
    fn dispatch_bounds_ordered() {
        let d = DispatchCosts::new(vec![(1.0, 100.0, 2.0), (3.0, 80.0, 1.0)], 4.0);
        assert!(d.k_d_lower() <= d.k_d_upper());
        assert_eq!(d.k_d_lower(), 103.0 + 4.0);
        assert_eq!(d.k_d_upper(), 4.0 + 100.0 + 3.0 + 4.0);
        assert_eq!(d.dominant_search(), 100.0);
    }

    #[test]
    fn efficiency_clamps() {
        assert_eq!(Efficiency::from_ratio(5.0, 2.0).fraction(), 1.0);
        assert_eq!(Efficiency::from_ratio(-1.0, 2.0).fraction(), 0.0);
        assert_eq!(Efficiency::from_ratio(0.0, 0.0).fraction(), 1.0);
        assert_eq!(Efficiency::from_ratio(1.0, 2.0).percent(), 50.0);
    }

    #[test]
    #[should_panic]
    fn negative_cost_rejected() {
        CostModel::new(-1.0, 0.0, 0.0);
    }
}
