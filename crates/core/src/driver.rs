//! Sequential search drivers over a [`SolutionSpace`].
//!
//! These implement the enumeration loop of Section III: build `f(i0)` once,
//! then walk the interval with the `next` operator, testing each candidate.
//! They are the reference semantics that every accelerated engine
//! (`eks-cracker` on CPU threads, the simulated GPU kernels in
//! `eks-kernels`) must agree with.

use crate::space::{CandidateTest, SolutionSpace};

/// Outcome of scanning one interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchOutcome<E> {
    /// A candidate satisfied the test; contains its identifier and evidence.
    Found { id: u128, evidence: E },
    /// The interval was exhausted without a hit; reports candidates tested.
    Exhausted { tested: u128 },
}

impl<E> SearchOutcome<E> {
    /// The identifier of the hit, if any.
    pub fn found_id(&self) -> Option<u128> {
        match self {
            SearchOutcome::Found { id, .. } => Some(*id),
            SearchOutcome::Exhausted { .. } => None,
        }
    }

    /// True when the search found a solution.
    pub fn is_found(&self) -> bool {
        matches!(self, SearchOutcome::Found { .. })
    }
}

/// Scan `[start, start + len)` with `f` once and `next` thereafter,
/// stopping at the first accepted candidate.
pub fn search_interval<S, T>(
    space: &S,
    test: &T,
    start: u128,
    len: u128,
) -> SearchOutcome<T::Evidence>
where
    S: SolutionSpace,
    T: CandidateTest<S::Solution>,
{
    search_interval_with(space, test, start, len, |_| true)
}

/// Like [`search_interval`] but polls `keep_going` between candidates so a
/// dispatcher can cancel in-flight work (the paper gathers periodically "to
/// eventually terminate the search if a stop condition is met"). The poll
/// receives the count of candidates tested so far.
pub fn search_interval_with<S, T, P>(
    space: &S,
    test: &T,
    start: u128,
    len: u128,
    mut keep_going: P,
) -> SearchOutcome<T::Evidence>
where
    S: SolutionSpace,
    T: CandidateTest<S::Solution>,
    P: FnMut(u128) -> bool,
{
    if len == 0 {
        return SearchOutcome::Exhausted { tested: 0 };
    }
    let mut candidate = space.generate(start);
    let mut tested: u128 = 0;
    let mut id = start;
    loop {
        if let Some(evidence) = test.test(id, &candidate) {
            return SearchOutcome::Found { id, evidence };
        }
        tested += 1;
        if tested == len {
            return SearchOutcome::Exhausted { tested };
        }
        if !keep_going(tested) {
            return SearchOutcome::Exhausted { tested };
        }
        space.advance(id, &mut candidate);
        id += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Naturals;

    impl SolutionSpace for Naturals {
        type Solution = u128;
        fn size(&self) -> Option<u128> {
            None
        }
        fn generate(&self, id: u128) -> u128 {
            id
        }
        fn advance(&self, _id: u128, s: &mut u128) {
            *s += 1;
        }
    }

    fn equals(target: u128) -> impl Fn(u128, &u128) -> Option<u128> {
        move |_id, c| (*c == target).then_some(*c)
    }

    #[test]
    fn finds_target_inside_interval() {
        let out = search_interval(&Naturals, &equals(57), 50, 20);
        assert_eq!(out.found_id(), Some(57));
        assert!(out.is_found());
    }

    #[test]
    fn misses_target_outside_interval() {
        let out = search_interval(&Naturals, &equals(100), 50, 20);
        assert_eq!(out, SearchOutcome::Exhausted { tested: 20 });
        assert!(!out.is_found());
    }

    #[test]
    fn finds_target_at_interval_edges() {
        assert_eq!(search_interval(&Naturals, &equals(50), 50, 20).found_id(), Some(50));
        assert_eq!(search_interval(&Naturals, &equals(69), 50, 20).found_id(), Some(69));
    }

    #[test]
    fn empty_interval_tests_nothing() {
        let out = search_interval(&Naturals, &equals(0), 0, 0);
        assert_eq!(out, SearchOutcome::Exhausted { tested: 0 });
    }

    #[test]
    fn cancellation_stops_early() {
        let out = search_interval_with(&Naturals, &equals(1_000_000), 0, 1_000_000, |tested| {
            tested < 10
        });
        assert_eq!(out, SearchOutcome::Exhausted { tested: 10 });
    }

    #[test]
    fn cancellation_does_not_skip_hit_on_last_polled_candidate() {
        // Target is the 10th candidate (id 9); the poll fires after it's
        // already been tested.
        let out = search_interval_with(&Naturals, &equals(9), 0, 100, |tested| tested < 10);
        assert_eq!(out.found_id(), Some(9));
    }
}
