//! # eks-core — the exhaustive-search parallelization pattern
//!
//! This crate implements the abstract pattern of Section III of
//! *"Exhaustive Key Search on Clusters of GPUs"* (Barbieri, Cardellini,
//! Filippone, IPPS 2014):
//!
//! * a [`SolutionSpace`]: a bijection `f : N -> S` from identifiers to
//!   candidate solutions together with a cheap incremental `next` operator
//!   such that `next(i, f(i)) = f(i + 1)`;
//! * a test function `C : S -> {0, 1}` ([`CandidateTest`]) plus an optional
//!   merge step executed by the master ([`Merge`]);
//! * a **cost model** ([`cost`]) with the paper's `K_f`, `K_next`, `K_C`
//!   quantities, the single-process search cost `K_search`, the dispatch
//!   cost bounds on `K_D`, and the efficiency definition;
//! * **partitioning and load balancing** ([`partition`]): the tuning-step
//!   driven, throughput-proportional interval assignment
//!   `N_j = N_max * X_j / X_max` with `N_max = max_j (n_j * X_max / X_j)`;
//! * generic **drivers** ([`driver`]) that run a search sequentially using
//!   `f` once and `next` thereafter, demonstrating the efficiency gain the
//!   paper derives when `K_next < K_f`.
//!
//! The concrete password-cracking instantiation lives in the sibling crates
//! `eks-keyspace` (the bijection over strings), `eks-hashes` /
//! `eks-kernels` (the test function) and `eks-cluster` (the hierarchical
//! dispatcher).

pub mod cost;
pub mod driver;
pub mod parallel;
pub mod partition;
pub mod pattern;
pub mod prop;
pub mod space;

pub use cost::{measure_cost_model, CostModel, DispatchCosts, Efficiency};
pub use driver::{search_interval, search_interval_with, SearchOutcome};
pub use parallel::{parallel_search, ParallelDriver, ParallelOutcome};
pub use partition::{balance_workloads, NodeRate, Partition, WorkAssignment};
pub use pattern::{Master, MergeOutcome, Worker, WorkerReport};
pub use space::{CandidateTest, Merge, SolutionSpace};
