//! Minimal deterministic property-testing support.
//!
//! The workspace builds in network-isolated environments, so it cannot
//! pull `proptest` or `rand` from a registry. This module is the
//! offline stand-in: a [SplitMix64] PRNG with the generator helpers the
//! test suites need, and a [`forall`] runner that reports the failing
//! case (seed and iteration) so a reproduction is one constant away.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c
//!
//! ```
//! use eks_core::prop::{forall, Rng};
//!
//! forall("addition commutes", 64, |rng| {
//!     let (a, b) = (rng.u32(), rng.u32());
//!     assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
//! });
//! ```

/// Deterministic SplitMix64 pseudo-random generator.
///
/// Not cryptographic — it exists to enumerate diverse test cases
/// reproducibly. Identical seeds yield identical sequences on every
/// platform.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32-bit value.
    pub fn u32(&mut self) -> u32 {
        (self.u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)`. `bound` must be positive.
    ///
    /// # Panics
    /// Panics when `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // The tiny modulo bias is irrelevant for test-case generation.
        self.u64() % bound
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    /// Panics when `lo > hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "inverted range");
        lo + self.below(hi - lo + 1)
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform `u128` in `[lo, hi]` (uses 64 bits of entropy, plenty for
    /// interval-sized test values).
    pub fn range_u128(&mut self, lo: u128, hi: u128) -> u128 {
        assert!(lo <= hi, "inverted range");
        let span = hi - lo + 1;
        if span <= u64::MAX as u128 {
            lo + self.below(span as u64) as u128
        } else {
            lo + ((self.u64() as u128) << 64 | self.u64() as u128) % span
        }
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }

    /// A vector of `len` values produced by `gen`.
    pub fn vec<T>(&mut self, len: usize, mut gen: impl FnMut(&mut Self) -> T) -> Vec<T> {
        (0..len).map(|_| gen(self)).collect()
    }
}

/// Run `body` for `cases` generated cases; panics with the case number
/// and seed on the first failure so the case can be replayed by seeding
/// [`Rng::new`] directly.
pub fn forall(name: &str, cases: u32, mut body: impl FnMut(&mut Rng)) {
    for case in 0..cases {
        let seed = 0xEC5_0000 + case as u64;
        let mut rng = Rng::new(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = outcome {
            eprintln!("property {name:?} failed at case {case} (Rng seed {seed:#x})");
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = Rng::new(7);
        for _ in 0..1000 {
            assert!(rng.below(13) < 13);
        }
    }

    #[test]
    fn range_is_inclusive_and_covers() {
        let mut rng = Rng::new(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v = rng.range(10, 13);
            assert!((10..=13).contains(&v));
            seen[(v - 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all four values reached");
    }

    #[test]
    fn f64_range_in_bounds() {
        let mut rng = Rng::new(3);
        for _ in 0..1000 {
            let v = rng.f64_range(1.0, 5000.0);
            assert!((1.0..5000.0).contains(&v));
        }
    }

    #[test]
    fn forall_reports_failures() {
        let caught = std::panic::catch_unwind(|| {
            forall("always fails", 3, |_| panic!("boom"));
        });
        assert!(caught.is_err());
    }

    #[test]
    fn range_u128_handles_wide_spans() {
        let mut rng = Rng::new(9);
        for _ in 0..100 {
            let v = rng.range_u128(1, 1_000_000);
            assert!((1..=1_000_000).contains(&v));
        }
    }
}
