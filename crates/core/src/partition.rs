//! Work partitioning and throughput-proportional load balancing
//! (Section III, "Maximizing performance ...").
//!
//! The paper's balancing procedure, assuming `K_C` and `K_next` constant:
//!
//! 1. a tuning step estimates for each node `j` the minimum candidate count
//!    `n_j` that reaches a target efficiency, and its peak throughput `X_j`;
//! 2. find `X_max = max_j X_j`;
//! 3. set `N_max = max_j (n_j * X_max / X_j)` so that every node's
//!    assignment meets its own minimum;
//! 4. assign node `j` the interval size `N_j = N_max * X_j / X_max`.
//!
//! With these sizes every node finishes in (approximately) the same time
//! `N_max / X_max`, so none idles waiting for the others.

/// Result of the tuning step for one node: its peak throughput and the
/// minimum work quantum at which it reaches the target efficiency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeRate {
    /// `X_j`: peak throughput in candidates per unit time. Must be > 0.
    pub throughput: f64,
    /// `n_j`: minimum number of candidates for the target efficiency.
    pub min_batch: u128,
}

impl NodeRate {
    /// Create a node rate.
    ///
    /// # Panics
    /// Panics unless `throughput` is finite and strictly positive.
    pub fn new(throughput: f64, min_batch: u128) -> Self {
        assert!(
            throughput.is_finite() && throughput > 0.0,
            "throughput must be positive, got {throughput}"
        );
        Self { throughput, min_batch }
    }
}

/// A per-round assignment of interval sizes, one per node, in input order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkAssignment {
    /// `N_j` for each node.
    pub sizes: Vec<u128>,
    /// `N_max`, the size handed to the fastest node.
    pub n_max: u128,
}

impl WorkAssignment {
    /// Total candidates dispatched in one round (`N_node = Σ N_j`), which
    /// is also the minimum batch a *parent* dispatcher should receive for
    /// this subtree to stay efficient.
    pub fn round_total(&self) -> u128 {
        self.sizes.iter().sum()
    }
}

/// Compute the paper's balanced workload sizes for a set of nodes.
///
/// Returns sizes such that `N_j / X_j` is (up to integer rounding) equal
/// across nodes and every `N_j >= n_j`. Every size is at least 1 so no node
/// is starved. An empty slice yields an empty assignment.
pub fn balance_workloads(rates: &[NodeRate]) -> WorkAssignment {
    if rates.is_empty() {
        return WorkAssignment { sizes: Vec::new(), n_max: 0 };
    }
    let x_max = rates
        .iter()
        .map(|r| r.throughput)
        .fold(f64::MIN, f64::max);
    // N_max = max_j (n_j * X_max / X_j), and at least 1.
    let mut n_max_f = 1.0f64;
    for r in rates {
        let need = r.min_batch as f64 * (x_max / r.throughput);
        n_max_f = n_max_f.max(need);
    }
    let n_max = n_max_f.ceil() as u128;
    let sizes = rates
        .iter()
        .map(|r| {
            let nj = (n_max as f64 * (r.throughput / x_max)).round() as u128;
            nj.max(r.min_batch).max(1)
        })
        .collect();
    WorkAssignment { sizes, n_max }
}

/// Scale a balanced assignment so that one dispatch round covers at least
/// `min_round` candidates; the paper notes `N_node` may be "arbitrarily
/// increased to minimize the overhead caused by the dispatch and merge
/// steps". Ratios between nodes are preserved.
pub fn scale_to_round_total(assignment: &WorkAssignment, min_round: u128) -> WorkAssignment {
    let total = assignment.round_total();
    if total == 0 || total >= min_round {
        return assignment.clone();
    }
    // Integer ceiling multiplier keeps proportions exact.
    let k = min_round.div_ceil(total);
    WorkAssignment {
        sizes: assignment.sizes.iter().map(|s| s * k).collect(),
        n_max: assignment.n_max * k,
    }
}

/// A contiguous split of the identifier range `[start, start + total)` into
/// per-node intervals with the given sizes, truncated to the available
/// candidates. Used by dispatchers to turn an assignment into concrete
/// sub-intervals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// `(start, len)` for each node, in input order. May contain zero-length
    /// intervals when `total` runs out.
    pub intervals: Vec<(u128, u128)>,
}

impl Partition {
    /// Carve `[start, start + total)` into consecutive intervals of the
    /// requested sizes. If the sizes exceed `total`, later intervals shrink
    /// (possibly to zero); if they fall short, the remainder is distributed
    /// proportionally by repeating the size pattern.
    pub fn carve(start: u128, total: u128, sizes: &[u128]) -> Self {
        let mut intervals = Vec::with_capacity(sizes.len());
        let mut cursor = start;
        let mut remaining = total;
        for &sz in sizes {
            let take = sz.min(remaining);
            intervals.push((cursor, take));
            cursor += take;
            remaining -= take;
        }
        // Any remainder goes to the last non-empty slot holder proportions
        // would favor — in practice dispatch loops re-carve, so just extend
        // the final interval to avoid dropping candidates in one-shot use.
        if remaining > 0 {
            if let Some(last) = intervals.last_mut() {
                last.1 += remaining;
            } else {
                intervals.push((start, total));
            }
        }
        Self { intervals }
    }

    /// Sum of interval lengths; always equals the carved `total`.
    pub fn covered(&self) -> u128 {
        self.intervals.iter().map(|&(_, len)| len).sum()
    }

    /// True if intervals are consecutive, non-overlapping and gap-free.
    pub fn is_contiguous(&self) -> bool {
        let mut cursor = match self.intervals.first() {
            Some(&(s, _)) => s,
            None => return true,
        };
        for &(start, len) in &self.intervals {
            if start != cursor {
                return false;
            }
            cursor += len;
        }
        true
    }
}

/// Predicted makespan (time for the slowest node to finish) of an
/// assignment under per-node throughputs; used to check balance quality.
pub fn makespan(sizes: &[u128], rates: &[NodeRate]) -> f64 {
    sizes
        .iter()
        .zip(rates)
        .map(|(&n, r)| n as f64 / r.throughput)
        .fold(0.0f64, f64::max)
}

/// Parallel efficiency of an assignment: ideal time (total work divided by
/// aggregate throughput) over the predicted makespan.
pub fn parallel_efficiency(sizes: &[u128], rates: &[NodeRate]) -> f64 {
    let total: u128 = sizes.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let agg: f64 = rates.iter().map(|r| r.throughput).sum();
    let ideal = total as f64 / agg;
    let actual = makespan(sizes, rates);
    (ideal / actual).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rates() -> Vec<NodeRate> {
        vec![
            NodeRate::new(1000.0, 100),
            NodeRate::new(250.0, 50),
            NodeRate::new(500.0, 400),
        ]
    }

    #[test]
    fn balanced_sizes_proportional_to_throughput() {
        let a = balance_workloads(&rates());
        // Node 2 forces N_max = 400 * (1000/500) = 800.
        assert_eq!(a.n_max, 800);
        assert_eq!(a.sizes, vec![800, 200, 400]);
    }

    #[test]
    fn every_node_meets_its_minimum_batch() {
        let a = balance_workloads(&rates());
        for (sz, r) in a.sizes.iter().zip(rates()) {
            assert!(*sz >= r.min_batch);
        }
    }

    #[test]
    fn balanced_assignment_has_unit_parallel_efficiency() {
        let a = balance_workloads(&rates());
        let eff = parallel_efficiency(&a.sizes, &rates());
        assert!(eff > 0.999, "efficiency {eff}");
    }

    #[test]
    fn empty_input_is_empty_assignment() {
        let a = balance_workloads(&[]);
        assert!(a.sizes.is_empty());
        assert_eq!(a.round_total(), 0);
    }

    #[test]
    fn single_node_gets_its_minimum() {
        let a = balance_workloads(&[NodeRate::new(10.0, 123)]);
        assert_eq!(a.sizes, vec![123]);
    }

    #[test]
    fn scaling_preserves_ratios() {
        let a = balance_workloads(&rates());
        let scaled = scale_to_round_total(&a, 10_000);
        assert!(scaled.round_total() >= 10_000);
        assert_eq!(
            scaled.sizes[0] * a.sizes[1],
            scaled.sizes[1] * a.sizes[0],
            "ratios preserved"
        );
    }

    #[test]
    fn scaling_noop_when_already_large() {
        let a = balance_workloads(&rates());
        let scaled = scale_to_round_total(&a, 10);
        assert_eq!(scaled, a);
    }

    #[test]
    fn carve_is_contiguous_and_covers_total() {
        let p = Partition::carve(1000, 950, &[500, 300, 400]);
        assert!(p.is_contiguous());
        assert_eq!(p.covered(), 950);
        assert_eq!(p.intervals, vec![(1000, 500), (1500, 300), (1800, 150)]);
    }

    #[test]
    fn carve_extends_last_interval_for_remainder() {
        let p = Partition::carve(0, 100, &[10, 10]);
        assert_eq!(p.intervals, vec![(0, 10), (10, 90)]);
        assert!(p.is_contiguous());
        assert_eq!(p.covered(), 100);
    }

    #[test]
    fn carve_empty_sizes() {
        let p = Partition::carve(5, 7, &[]);
        assert_eq!(p.intervals, vec![(5, 7)]);
    }

    #[test]
    fn makespan_of_balanced_is_nmax_over_xmax() {
        let a = balance_workloads(&rates());
        let ms = makespan(&a.sizes, &rates());
        assert!((ms - 0.8).abs() < 1e-9, "makespan {ms}");
    }

    #[test]
    #[should_panic]
    fn zero_throughput_rejected() {
        NodeRate::new(0.0, 1);
    }
}
