//! The master/worker dispatch pattern of Section III.
//!
//! A master task scatters minimal generation data (an identifier interval)
//! to each computing node, waits, gathers results and optionally merges
//! them. Workers may themselves be dispatchers for a subtree, in which case
//! the subtree behaves like a node whose throughput is the sum of its
//! children's and whose minimum efficient batch is `Σ N_j`.
//!
//! This module defines the transport-agnostic traits; `eks-cluster`
//! provides a discrete-event implementation and a threaded implementation.

/// What a worker sends back after scanning its interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerReport<E> {
    /// The interval that was assigned, as `(start, len)`.
    pub interval: (u128, u128),
    /// Candidates actually tested (may be < len if cancelled).
    pub tested: u128,
    /// Hits found inside the interval.
    pub hits: Vec<(u128, E)>,
}

impl<E> WorkerReport<E> {
    /// An exhausted-interval report with no hits.
    pub fn exhausted(interval: (u128, u128)) -> Self {
        Self { interval, tested: interval.1, hits: Vec::new() }
    }

    /// True when the full interval was scanned.
    pub fn complete(&self) -> bool {
        self.tested == self.interval.1
    }
}

/// A computing node (leaf or subtree root) the master can drive.
pub trait Worker {
    /// Evidence type for hits.
    type Evidence;

    /// Scan `[start, start + len)` and report.
    fn run(&mut self, start: u128, len: u128) -> WorkerReport<Self::Evidence>;

    /// Peak throughput in candidates per second, as estimated by tuning.
    fn throughput(&self) -> f64;

    /// Minimum batch size for the target efficiency, from tuning.
    fn min_batch(&self) -> u128;
}

/// Decision returned by the master's merge step after each gather.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeOutcome<E> {
    /// Keep dispatching further intervals.
    Continue,
    /// Stop: the search goal is met (e.g. first preimage found).
    Stop(Vec<(u128, E)>),
}

/// A master task driving a set of workers over a search space.
pub trait Master {
    /// Evidence type for hits.
    type Evidence;

    /// Run the search over `[start, start + total)`, dispatching balanced
    /// intervals until exhaustion or until the merge step stops it.
    fn dispatch(&mut self, start: u128, total: u128) -> Vec<(u128, Self::Evidence)>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhausted_report_is_complete() {
        let r: WorkerReport<()> = WorkerReport::exhausted((10, 5));
        assert!(r.complete());
        assert_eq!(r.tested, 5);
        assert!(r.hits.is_empty());
    }

    #[test]
    fn partial_report_is_incomplete() {
        let r = WorkerReport::<()> { interval: (0, 10), tested: 3, hits: vec![] };
        assert!(!r.complete());
    }
}
