//! The abstract problem definition of Section III-A.
//!
//! An exhaustive search requires a bijection `f` from natural numbers into
//! the (finite or countable) solution set `S`, and a test function
//! `C : S -> {0, 1}`. The `next` operator maps `(i, f(i))` to `f(i + 1)`
//! in place; it is usually much cheaper than recomputing `f(i + 1)` from
//! scratch, which is the whole point of enumerating with it.

/// A countable space of candidate solutions with a cheap successor operator.
///
/// Identifiers are `u128` so that realistic password keyspaces fit: the set
/// of strings of length ≤ 20 over a 95-symbol charset has ≈ `2^132` members,
/// but every interval a node ever receives fits comfortably in `u128`
/// (the paper caps lengths at 20 and practical searches at ≤ 10 symbols).
pub trait SolutionSpace {
    /// The candidate solution type.
    type Solution;

    /// Number of candidates in the space, or `None` when it exceeds `u128`.
    fn size(&self) -> Option<u128>;

    /// The bijection `f(id)`: build the candidate for `id` from scratch.
    fn generate(&self, id: u128) -> Self::Solution;

    /// The `next` operator: transform `f(id)` into `f(id + 1)` in place.
    ///
    /// `id` is the identifier of the *current* value stored in `solution`.
    /// Implementations must satisfy `next(i, f(i)) == f(i + 1)` for every
    /// `i` with `i + 1` inside the space.
    fn advance(&self, id: u128, solution: &mut Self::Solution);

    /// Inverse of `generate`, when available: recover `id` from a solution.
    ///
    /// The default returns `None`; bijective spaces should override it so
    /// round-trip properties can be tested.
    fn identify(&self, _solution: &Self::Solution) -> Option<u128> {
        None
    }
}

/// The test function `C : S -> {0, 1}` applied to each candidate.
///
/// `C` may be arbitrarily complex; for password cracking it hashes the
/// candidate and compares the digest with the target.
pub trait CandidateTest<S> {
    /// Evidence returned for an accepted candidate (e.g. the matched hash).
    type Evidence;

    /// Evaluate the candidate; `Some(evidence)` means `C(s) = 1`.
    fn test(&self, id: u128, candidate: &S) -> Option<Self::Evidence>;
}

impl<S, E, F> CandidateTest<S> for F
where
    F: Fn(u128, &S) -> Option<E>,
{
    type Evidence = E;

    fn test(&self, id: u128, candidate: &S) -> Option<E> {
        self(id, candidate)
    }
}

/// The optional merge step run by the master after gathering results.
///
/// It is mandatory for problems where `C` returning 1 is necessary but not
/// sufficient (the paper's example: each node returns its local minimum and
/// the master keeps the global one).
pub trait Merge<R> {
    /// Combined result type.
    type Merged;

    /// Fold the per-node results into the final answer.
    fn merge(&self, partials: Vec<R>) -> Self::Merged;
}

/// Merge policy that keeps the first (lowest identifier) hit, matching the
/// semantics of "find any preimage".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FirstHit;

impl<R> Merge<Option<(u128, R)>> for FirstHit {
    type Merged = Option<(u128, R)>;

    fn merge(&self, partials: Vec<Option<(u128, R)>>) -> Self::Merged {
        partials
            .into_iter()
            .flatten()
            .min_by_key(|(id, _)| *id)
    }
}

/// Merge policy that collects every hit, for multi-target audits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllHits;

impl<R> Merge<Vec<(u128, R)>> for AllHits {
    type Merged = Vec<(u128, R)>;

    fn merge(&self, partials: Vec<Vec<(u128, R)>>) -> Self::Merged {
        let mut all: Vec<(u128, R)> = partials.into_iter().flatten().collect();
        all.sort_by_key(|(id, _)| *id);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy space: the natural numbers themselves.
    struct Naturals;

    impl SolutionSpace for Naturals {
        type Solution = u128;

        fn size(&self) -> Option<u128> {
            None
        }

        fn generate(&self, id: u128) -> u128 {
            id
        }

        fn advance(&self, _id: u128, solution: &mut u128) {
            *solution += 1;
        }

        fn identify(&self, solution: &u128) -> Option<u128> {
            Some(*solution)
        }
    }

    #[test]
    fn next_matches_generate() {
        let space = Naturals;
        let mut s = space.generate(41);
        space.advance(41, &mut s);
        assert_eq!(s, space.generate(42));
    }

    #[test]
    fn closure_is_a_candidate_test() {
        let target = 7u128;
        let test = |_id: u128, c: &u128| (*c == target).then_some("found");
        assert_eq!(test.test(7, &7), Some("found"));
        assert_eq!(test.test(3, &3), None);
    }

    #[test]
    fn first_hit_keeps_lowest_id() {
        let merge = FirstHit;
        let merged = merge.merge(vec![None, Some((9u128, 'b')), Some((4, 'a'))]);
        assert_eq!(merged, Some((4, 'a')));
    }

    #[test]
    fn first_hit_empty_is_none() {
        let merge = FirstHit;
        let merged: Option<(u128, char)> = merge.merge(vec![None, None]);
        assert_eq!(merged, None);
    }

    #[test]
    fn all_hits_sorts_by_id() {
        let merge = AllHits;
        let merged = merge.merge(vec![vec![(5u128, 'x')], vec![(2, 'y'), (8, 'z')]]);
        assert_eq!(merged, vec![(2, 'y'), (5, 'x'), (8, 'z')]);
    }
}
