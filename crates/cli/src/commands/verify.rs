//! `eks verify` — the scheduler model checker and grid-IR soundness
//! passes, plus the seeded-bug mutants that prove the checks non-vacuous.

use crate::args::Args;

/// The `algo/variant` names of every shipped kernel whose launch
/// wrapper `eks verify` proves sound.
const SHIPPED_VARIANTS: [&str; 8] = [
    "md5/naive",
    "md5/reversed",
    "md5/optimized",
    "sha1/naive",
    "sha1/optimized",
    "ntlm/naive",
    "ntlm/reversed",
    "ntlm/optimized",
];

/// Render a scheduler-protocol check result as a JSON object sharing
/// the analyzer's schema-version stamp.
fn sched_check_json(
    name: &str,
    workers: usize,
    intervals: u128,
    out: &eks_verify::CheckOutcome,
) -> String {
    use eks_analyzer::diagnostic::json_str;
    use std::fmt::Write as _;
    let mut s = String::new();
    write!(
        s,
        "{{\"schema\":{},\"check\":{},\"workers\":{workers},\"intervals\":{intervals},\
         \"states\":{},\"transitions\":{},\"deepest\":{},\"truncated\":{},\"violations\":{}",
        eks_analyzer::SCHEMA_VERSION,
        json_str(name),
        out.states,
        out.transitions,
        out.deepest,
        out.truncated,
        usize::from(!out.clean()),
    )
    .expect("write to string");
    match &out.violation {
        None => s.push_str(",\"violation\":null}"),
        Some(v) => {
            write!(
                s,
                ",\"violation\":{{\"property\":{},\"message\":{},\"trace\":[",
                json_str(v.property.name()),
                json_str(&v.message)
            )
            .expect("write to string");
            for (i, step) in v.trace.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&json_str(&format!("{} {}", step.action, step.state)));
            }
            s.push_str("]}}");
        }
    }
    s
}

/// Run one seeded-bug model (`--mutate NAME`): the checker or IR passes
/// must flag it, the command exits non-zero, and the counterexample is
/// printed — a live demonstration that the verifier is not vacuous.
pub(super) fn cmd_verify_mutant(
    name: &str,
    workers: usize,
    intervals: u128,
    opts: eks_verify::CheckOptions,
    json: bool,
) -> Result<(), String> {
    use eks_analyzer::analyze_grid;
    use eks_gpusim::gridir::{
        mutant_divergent_barrier, mutant_unguarded_store, mutant_uninit_read,
    };
    use eks_verify::{check, ModelConfig, Mutation};

    let keys = intervals * 2;
    let sched = |cfg: ModelConfig, m: Mutation| -> Result<(), String> {
        let out = check(cfg.with_mutation(m), opts);
        if json {
            println!(
                "[{}]",
                sched_check_json(&format!("mutant/{name}"), workers, intervals, &out)
            );
        }
        match out.violation {
            Some(v) => {
                if !json {
                    print!("{}", v.render());
                }
                Err(format!("mutant {name:?} flagged: {} violated", v.property))
            }
            None => {
                if !json {
                    println!(
                        "mutant {name:?}: no violation found in {} states — the checker \
                         failed to flag a seeded bug",
                        out.states
                    );
                }
                Ok(())
            }
        }
    };
    let grid = |kernel: eks_gpusim::gridir::GridKernel| -> Result<(), String> {
        let report = analyze_grid(&kernel);
        if json {
            println!("[{}]", report.to_json());
        } else {
            print!("{}", report.render_text());
        }
        if report.denials() > 0 {
            Err(format!("mutant {name:?} flagged: {} error(s)", report.denials()))
        } else {
            Ok(())
        }
    };
    match name {
        "drop-lease" => sched(
            ModelConfig::steal_intervals(workers, intervals),
            Mutation::DropStolenLease,
        ),
        "double-count" => sched(
            ModelConfig::steal_intervals(workers, intervals),
            Mutation::DoubleCountSteal,
        ),
        "merge-highest" => {
            sched(ModelConfig::first_hit(workers, keys), Mutation::MergeHighestFirst)
        }
        "ignore-cancel" => {
            sched(ModelConfig::cancel_bound(workers, keys), Mutation::IgnoreCancelPoll)
        }
        "unguarded-store" => grid(mutant_unguarded_store("mutant/unguarded-store")),
        "uninit-read" => grid(mutant_uninit_read("mutant/uninit-read")),
        "divergent-barrier" => grid(mutant_divergent_barrier("mutant/divergent-barrier")),
        other => Err(format!(
            "unknown --mutate {other:?} (drop-lease, double-count, merge-highest, \
             ignore-cancel, unguarded-store, uninit-read, divergent-barrier)"
        )),
    }
}

pub(super) fn cmd_verify(args: &Args) -> Result<(), String> {
    use eks_analyzer::analyze_grid;
    use eks_gpusim::gridir::search_wrapper;
    use eks_verify::{check, standard_checks, CheckOptions};

    let workers: usize = args.get_parse_or("workers", 2usize)?;
    let intervals: u128 = args.get_parse_or("intervals", 8u128)?;
    let depth: usize = args.get_parse_or("depth", CheckOptions::default().max_depth)?;
    let json = args.has("json");
    // Violations and deny-level IR findings always fail the command;
    // `--deny violations` names that default for CI scripts, and
    // `--deny warnings` additionally escalates IR warnings.
    let deny_warnings = match args.get("deny") {
        None | Some("violations") => false,
        Some("warnings") => true,
        Some(other) => {
            return Err(format!("unsupported --deny {other:?} (violations or warnings)"))
        }
    };
    if !(1..=4).contains(&workers) {
        return Err(format!(
            "--workers {workers} out of range 1..=4: exhaustive interleaving \
             exploration grows factorially with workers"
        ));
    }
    if !(1..=12).contains(&intervals) {
        return Err(format!("--intervals {intervals} out of range 1..=12"));
    }
    let opts = CheckOptions { max_depth: depth, ..CheckOptions::default() };

    if let Some(m) = args.get("mutate") {
        return cmd_verify_mutant(m, workers, intervals, opts, json);
    }

    let mut json_parts: Vec<String> = Vec::new();
    let mut violations = 0usize;

    if !json {
        println!(
            "scheduler protocol (workers={workers}, intervals={intervals}, depth={depth}):"
        );
    }
    for c in standard_checks(workers, intervals) {
        let out = check(c.config.clone(), opts);
        if json {
            json_parts.push(sched_check_json(c.name, workers, intervals, &out));
        } else {
            let verdict = if let Some(v) = &out.violation {
                format!("VIOLATION: {}", v.property)
            } else if out.truncated {
                "ok (truncated: raise --depth for the full bound)".to_string()
            } else {
                "ok".to_string()
            };
            println!(
                "  {:<30} states={:<8} transitions={:<8} {verdict}",
                c.name, out.states, out.transitions
            );
            if let Some(v) = &out.violation {
                print!("{}", v.render());
            }
        }
        if !out.clean() {
            violations += 1;
        }
    }

    let mut errors = 0usize;
    if !json {
        println!("kernel launch skeletons (grid IR):");
    }
    for name in SHIPPED_VARIANTS {
        let mut report = analyze_grid(&search_wrapper(name));
        if deny_warnings {
            report.deny_warnings();
        }
        errors += report.denials();
        if json {
            json_parts.push(report.to_json());
        } else {
            let text = report.render_text();
            if text.is_empty() {
                println!("  {name:<30} clean (bounds, must-defined, divergence)");
            } else {
                print!("{text}");
            }
        }
    }

    if json {
        println!("[{}]", json_parts.join(","));
    } else {
        println!("verify: {violations} violation(s), {errors} error(s)");
    }
    if violations + errors > 0 {
        Err(format!("{violations} violation(s), {errors} deny-level diagnostic(s)"))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::sched_check_json;
    use crate::args::Args;
    use crate::commands::run;

    fn args(s: &[&str]) -> Args {
        Args::parse(s.iter().map(|x| x.to_string())).unwrap()
    }

    #[test]
    fn verify_default_suite_is_clean() {
        // Small worker/interval counts keep the exhaustive exploration
        // fast enough for a unit test; every shipped configuration and
        // kernel wrapper must come back clean.
        let a = args(&["verify", "--workers", "2", "--intervals", "4"]);
        assert!(run("verify", &a).is_ok());
        let a = args(&["verify", "--workers", "2", "--intervals", "4", "--json"]);
        assert!(run("verify", &a).is_ok());
        let a = args(&["verify", "--workers", "2", "--intervals", "4", "--deny", "violations"]);
        assert!(run("verify", &a).is_ok());
        let a = args(&["verify", "--workers", "2", "--intervals", "4", "--deny", "warnings"]);
        assert!(run("verify", &a).is_ok());
    }

    #[test]
    fn verify_flags_every_seeded_mutant() {
        // A verifier that cannot flag a seeded bug is vacuous: every
        // mutant must produce a non-zero exit.
        for m in [
            "drop-lease",
            "double-count",
            "merge-highest",
            "ignore-cancel",
            "unguarded-store",
            "uninit-read",
            "divergent-barrier",
        ] {
            let a = args(&["verify", "--workers", "2", "--intervals", "4", "--mutate", m]);
            assert!(run("verify", &a).is_err(), "--mutate {m} must fail");
        }
    }

    #[test]
    fn verify_scheduler_json_shape_is_pinned() {
        // `eks verify --json` shares the analyzer's schema stamp; the
        // field order of the scheduler-check objects is contract (see
        // tests/diagnostics_schema.rs for the kernel-report half).
        let out =
            eks_verify::check(eks_verify::ModelConfig::exhaustive(1, 2), Default::default());
        let j = sched_check_json("scheduler/demo", 1, 1, &out);
        assert!(
            j.starts_with(
                "{\"schema\":1,\"check\":\"scheduler/demo\",\"workers\":1,\"intervals\":1,"
            ),
            "{j}"
        );
        for key in ["\"states\":", "\"transitions\":", "\"deepest\":", "\"truncated\":false"] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        assert!(j.ends_with("\"violations\":0,\"violation\":null}"), "{j}");
    }

    #[test]
    fn verify_rejects_bad_flags() {
        assert!(run("verify", &args(&["verify", "--workers", "9"])).is_err());
        assert!(run("verify", &args(&["verify", "--intervals", "40"])).is_err());
        assert!(run("verify", &args(&["verify", "--deny", "everything"])).is_err());
        assert!(run("verify", &args(&["verify", "--mutate", "nonexistent"])).is_err());
        assert!(run("verify", &args(&["verify", "--depth", "banana"])).is_err());
    }
}
