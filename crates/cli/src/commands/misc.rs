//! The small informational and single-shot commands: `hash`, `mine`,
//! `devices`, `disasm`, `profile`, `audit`.

use crate::args::Args;
use eks_cracker::{mine, MiningJob};
use eks_gpusim::codegen::lower;
use eks_gpusim::device::DeviceCatalog;
use eks_gpusim::sched::{simulate, SimConfig};
use eks_hashes::{from_hex, to_hex};
use eks_kernels::{Tool, ToolKernel};
use eks_keyspace::{KeySpace, Order};

use super::{parse_algo, parse_charset, parse_threads};

pub(super) fn cmd_hash(args: &Args) -> Result<(), String> {
    let algo = parse_algo(args)?;
    let plaintext = args.positional(1).ok_or("hash requires a plaintext argument")?;
    println!("{}", to_hex(&algo.hash_long(plaintext.as_bytes())));
    Ok(())
}

pub(super) fn cmd_mine(args: &Args) -> Result<(), String> {
    let difficulty: u32 = args.get_parse_or("difficulty", 16)?;
    let threads = parse_threads(args, 8)?;
    let header = args.get_or("header", "eks-block-header").as_bytes().to_vec();
    let job = MiningJob { header, difficulty_bits: difficulty };
    println!("mining: {difficulty} leading zero bits, {threads} threads");
    let start = std::time::Instant::now();
    match mine(&job, 0..u32::MAX as u64, threads) {
        Some(r) => {
            println!(
                "nonce {} after {} tests in {:.3} s",
                r.nonce,
                r.tested,
                start.elapsed().as_secs_f64()
            );
            println!("hash  {}", to_hex(&r.digest));
            Ok(())
        }
        None => Err("nonce space exhausted".into()),
    }
}

pub(super) fn cmd_devices() -> Result<(), String> {
    println!("{:<24}{:>6}{:>8}{:>12}{:>6}", "device", "MPs", "cores", "clock MHz", "cc");
    for d in DeviceCatalog::paper_devices() {
        println!(
            "{:<24}{:>6}{:>8}{:>12}{:>6}",
            d.name, d.mp_count, d.cores, d.clock_mhz, d.cc.label()
        );
    }
    Ok(())
}

pub(super) fn cmd_disasm(args: &Args) -> Result<(), String> {
    let algo = parse_algo(args)?;
    use eks_gpusim::arch::ComputeCapability;
    let cc = match args.get_or("cc", "3.0") {
        "1.x" | "1.*" | "1.1" => ComputeCapability::Sm1x,
        "2.0" => ComputeCapability::Sm20,
        "2.1" => ComputeCapability::Sm21,
        "3.0" => ComputeCapability::Sm30,
        "3.5" => ComputeCapability::Sm35,
        other => return Err(format!("unknown --cc {other:?}")),
    };
    let tool = match args.get_or("tool", "ours") {
        "ours" => Tool::OurApproach,
        "barswf" => Tool::BarsWf,
        "cryptohaze" => Tool::Cryptohaze,
        other => return Err(format!("unknown --tool {other:?}")),
    };
    let tk = ToolKernel::build(tool, algo, cc);
    let k = lower(&tk.ir, tk.options);
    print!("{}", eks_gpusim::disasm(&k));
    Ok(())
}

pub(super) fn cmd_profile(args: &Args) -> Result<(), String> {
    let algo = parse_algo(args)?;
    let device = eks_gpusim::device::DeviceCatalog::find(args.get_or("device", "660"))
        .ok_or("unknown --device")?;
    let tk = ToolKernel::build(Tool::OurApproach, algo, device.cc);
    let k = lower(&tk.ir, tk.options);
    let cfg = SimConfig::for_cc(device.cc);
    let sim = simulate(&k, cfg);
    println!("{} on {} (simulated):", algo.name(), device.name);
    let report = eks_gpusim::ProfilerReport::new(&k, &sim, cfg.warps);
    print!("{}", report.render());
    println!("throughput        : {:.1} MKey/s", sim.device_mkeys(&device));
    Ok(())
}

pub(super) fn cmd_audit(args: &Args) -> Result<(), String> {
    let algo = parse_algo(args)?;
    let digests_arg = args.get("digests").ok_or("audit requires --digests h1,h2,...")?;
    let accounts: Vec<String> = match args.get("accounts") {
        Some(a) => a.split(',').map(|s| s.to_string()).collect(),
        None => (1..).map(|i| format!("account{i}")).take(digests_arg.split(',').count()).collect(),
    };
    let digests: Vec<Vec<u8>> = digests_arg
        .split(',')
        .map(|h| from_hex(h).ok_or(format!("bad hex digest {h:?}")))
        .collect::<Result<_, _>>()?;
    if accounts.len() != digests.len() {
        return Err("--accounts and --digests must have the same length".into());
    }
    let charset = parse_charset(args)?;
    let min: u32 = args.get_parse_or("min", 1)?;
    let max: u32 = args.get_parse_or("max", 4)?;
    let space = KeySpace::new(charset, min, max, Order::FirstCharFastest)
        .map_err(|e| e.to_string())?;
    let entries: Vec<eks_cracker::AuditEntry> = accounts
        .into_iter()
        .zip(digests)
        .map(|(account, digest)| eks_cracker::AuditEntry { account, digest })
        .collect();
    let mut session = eks_cracker::AuditSession::new(algo, entries, &space);
    println!("auditing over {} candidates:", space.size());
    let report = session.run(&space, |_| {});
    print!("{}", report.render());
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::args::Args;
    use crate::commands::run;
    use eks_hashes::{to_hex, HashAlgo};

    fn args(s: &[&str]) -> Args {
        Args::parse(s.iter().map(|x| x.to_string())).unwrap()
    }

    #[test]
    fn hash_command() {
        let a = args(&["hash", "abc", "--algo", "md5"]);
        assert!(run("hash", &a).is_ok());
        let a = args(&["hash"]);
        assert!(run("hash", &a).is_err());
    }

    #[test]
    fn mine_low_difficulty() {
        let a = args(&["mine", "--difficulty", "8", "--threads", "2"]);
        assert!(run("mine", &a).is_ok());
    }

    #[test]
    fn disasm_lists_kernels() {
        assert!(run("disasm", &args(&["disasm", "--cc", "3.0"])).is_ok());
        assert!(run("disasm", &args(&["disasm", "--cc", "9.9"])).is_err());
        assert!(run("disasm", &args(&["disasm", "--tool", "barswf", "--cc", "1.x"])).is_ok());
    }

    #[test]
    fn profile_and_audit_commands() {
        assert!(run("profile", &args(&["profile", "--device", "550"])).is_ok());
        assert!(run("profile", &args(&["profile", "--device", "voodoo2"])).is_err());
        let d1 = to_hex(&HashAlgo::Md5.hash(b"cab"));
        let d2 = to_hex(&HashAlgo::Md5.hash(b"zzzzzzzz")); // survivor
        let a = args(&[
            "audit", "--digests", &format!("{d1},{d2}"), "--accounts", "alice,bob", "--max", "3",
        ]);
        assert!(run("audit", &a).is_ok());
        let bad = args(&["audit", "--digests", "zz"]);
        assert!(run("audit", &bad).is_err());
    }
}
