//! `eks top` — a live terminal dashboard over a run's
//! `--listen-metrics` endpoint — and `eks postmortem`, the flight
//! recorder replay.
//!
//! `top` is a pure HTTP client: it polls `/metrics` and `/jobs`,
//! re-parses the exposition with the same self-contained checker the
//! artifact path uses, and renders one compact frame per interval —
//! per-worker live vs tuned rates, anomaly verdicts, per-job progress,
//! and the measured efficiency next to the paper's 85-90% band. With
//! `--once` it prints a single frame and exits, which is how the CI
//! smoke gate scrapes a run mid-flight without any external tooling.

use std::collections::BTreeMap;

use crate::args::Args;
use eks_telemetry::parse::Json;
use eks_telemetry::{
    http_get, names, parse_json, parse_prometheus, read_flight, render_postmortem,
};

/// One worker's row in the dashboard, accumulated across sample names.
#[derive(Default)]
struct WorkerRow {
    tested: f64,
    rate_est: Option<f64>,
    rate_tuned: Option<f64>,
    flagged: bool,
}

/// Render one dashboard frame from a `/metrics` body and a `/jobs`
/// body. Pure, so the frame shape is unit-testable without sockets.
fn render_frame(addr: &str, metrics: &str, jobs: &str) -> Result<String, String> {
    use std::fmt::Write as _;
    let samples =
        parse_prometheus(metrics).map_err(|e| format!("invalid /metrics exposition: {e}"))?;
    let total = |name: &str| -> f64 {
        samples.iter().filter(|s| s.name == name).map(|s| s.value).sum()
    };
    let mut out = String::new();
    let _ = writeln!(out, "eks top — {addr}");
    let _ = writeln!(
        out,
        "  keys tested: {:.0}   hits: {:.0}   chunks: {:.0}",
        total(names::KEYS_TESTED),
        total(names::HITS),
        total(names::CHUNKS),
    );
    if let Some(eff) = samples.iter().find(|s| s.name == names::CLUSTER_EFFICIENCY_PCT) {
        let _ = writeln!(
            out,
            "  efficiency : {:.1}% (the paper reports 85-90%)",
            eff.value
        );
    }

    let mut rows: BTreeMap<String, WorkerRow> = BTreeMap::new();
    for s in &samples {
        let Some(worker) = s.label("worker").map(str::to_string) else { continue };
        let row = rows.entry(worker).or_default();
        match s.name.as_str() {
            n if n == names::KEYS_TESTED => row.tested += s.value,
            n if n == names::WORKER_RATE_EST => row.rate_est = Some(s.value),
            n if n == names::WORKER_RATE_TUNED => row.rate_tuned = Some(s.value),
            n if n == names::WORKER_FLAGGED => row.flagged = s.value > 0.0,
            _ => {}
        }
    }
    if !rows.is_empty() {
        let _ = writeln!(
            out,
            "  {:<28}{:>12}{:>12}{:>14}  {}",
            "worker", "est MK/s", "tuned MK/s", "tested", "status"
        );
        for (worker, row) in &rows {
            let fmt_rate = |r: Option<f64>| match r {
                Some(v) => format!("{v:.2}"),
                None => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "  {:<28}{:>12}{:>12}{:>14.0}  {}",
                worker,
                fmt_rate(row.rate_est),
                fmt_rate(row.rate_tuned),
                row.tested,
                if row.flagged { "FLAGGED" } else { "ok" }
            );
        }
    }

    let anomalies: Vec<String> = samples
        .iter()
        .filter(|s| s.name == names::ANOMALIES)
        .filter_map(|s| s.label("kind").map(|k| format!("{k}={:.0}", s.value)))
        .collect();
    let _ = writeln!(
        out,
        "  anomalies  : {}",
        if anomalies.is_empty() { "none".to_string() } else { anomalies.join("  ") }
    );

    if let Ok(doc) = parse_json(jobs) {
        if let Some(list) = doc.get("jobs").and_then(Json::as_arr) {
            let _ = writeln!(out, "  jobs ({})", list.len());
            for job in list {
                let id = job.get("id").and_then(Json::as_u64).unwrap_or(0);
                let name = job.get("name").and_then(Json::as_str).unwrap_or("?");
                let state = job.get("state").and_then(Json::as_str).unwrap_or("?");
                let tested = job.get("tested").and_then(Json::as_u64).unwrap_or(0);
                let _ = writeln!(
                    out,
                    "    job-{id}  {name:<16} {state:<11} tested {tested}"
                );
            }
        }
    }
    Ok(out)
}

/// `eks top --addr HOST:PORT [--interval MS] [--once]`.
pub(super) fn cmd_top(args: &Args) -> Result<(), String> {
    let addr = args.get("addr").ok_or(
        "top requires --addr <host:port> (the --listen-metrics address a run printed)",
    )?;
    let interval_ms: u64 = args.get_parse_or("interval", 1000u64)?;
    let once = args.has("once");
    loop {
        // /healthz first: a friendly liveness error beats a parse error
        // when the run has already exited.
        http_get(addr, "/healthz").map_err(|e| format!("endpoint {addr} is not healthy: {e}"))?;
        let metrics = http_get(addr, "/metrics")?;
        let jobs = http_get(addr, "/jobs").unwrap_or_else(|_| "{\"jobs\":[]}".to_string());
        let frame = render_frame(addr, &metrics, &jobs)?;
        if once {
            print!("{frame}");
            return Ok(());
        }
        // ANSI clear + home keeps the frame in place like top(1).
        print!("\x1b[2J\x1b[H{frame}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(100)));
    }
}

/// `eks postmortem <flight.json>`: validate the schema stamp and
/// reconstruct the final seconds into a human-readable timeline.
pub(super) fn cmd_postmortem(args: &Args) -> Result<(), String> {
    let path = args
        .positional(1)
        .ok_or("postmortem requires a flight dump path (the --flight file a run wrote)")?;
    let dump = read_flight(std::path::Path::new(path))?;
    print!("{}", render_postmortem(&dump));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::run;
    use eks_telemetry::{render_flight, MetricsServer, Telemetry};

    fn args(s: &[&str]) -> Args {
        Args::parse(s.iter().map(|x| x.to_string())).unwrap()
    }

    fn observed_telemetry() -> Telemetry {
        let t = Telemetry::enabled();
        t.counter(names::KEYS_TESTED, &[("worker", "cpu#0")]).add(1200);
        t.counter(names::KEYS_TESTED, &[("worker", "cpu#1")]).add(400);
        t.gauge(names::WORKER_RATE_EST, &[("worker", "cpu#0")]).set(1.5);
        t.gauge(names::WORKER_RATE_TUNED, &[("worker", "cpu#0")]).set(1.4);
        t.gauge(names::WORKER_FLAGGED, &[("worker", "cpu#1")]).set(1.0);
        t.counter(names::ANOMALIES, &[("kind", "straggler")]).add(2);
        t
    }

    #[test]
    fn frame_shows_workers_flags_and_anomalies() {
        let t = observed_telemetry();
        let jobs = "{\"ok\":true,\"jobs\":[{\"id\":1,\"name\":\"tiny\",\
                    \"state\":\"running\",\"tested\":77}]}";
        let frame = render_frame("127.0.0.1:9", &t.render_prometheus(), jobs).unwrap();
        assert!(frame.contains("keys tested: 1600"), "{frame}");
        assert!(frame.contains("cpu#0"), "{frame}");
        assert!(frame.contains("FLAGGED"), "{frame}");
        assert!(frame.contains("straggler=2"), "{frame}");
        assert!(frame.contains("job-1"), "{frame}");
        assert!(frame.contains("tested 77"), "{frame}");
    }

    #[test]
    fn frame_rejects_garbage_metrics() {
        assert!(render_frame("x", "eks_x{ 1\n", "{}").is_err());
    }

    #[test]
    fn top_once_scrapes_a_live_endpoint() {
        let t = observed_telemetry();
        let server = MetricsServer::spawn("127.0.0.1:0", t, None).expect("bind");
        let addr = server.local_addr().to_string();
        let a = args(&["top", "--addr", &addr, "--once"]);
        assert!(run("top", &a).is_ok());
        server.shutdown();
        let dead = args(&["top", "--addr", "127.0.0.1:1", "--once"]);
        assert!(run("top", &dead).is_err(), "unreachable endpoint is an error");
        assert!(run("top", &args(&["top", "--once"])).is_err(), "needs --addr");
    }

    #[test]
    fn postmortem_replays_a_flight_dump() {
        let t = observed_telemetry();
        let dump = render_flight(&t, None, u64::MAX, "forced panic", "somewhere.rs:1");
        let dir = std::env::temp_dir();
        let path = dir.join(format!("eks-cli-flight-{}.json", std::process::id()));
        std::fs::write(&path, dump).unwrap();
        let a = args(&["postmortem", path.to_str().unwrap()]);
        assert!(run("postmortem", &a).is_ok());
        std::fs::remove_file(&path).ok();

        assert!(run("postmortem", &args(&["postmortem"])).is_err(), "needs a path");
        let missing = args(&["postmortem", "/nonexistent/flight.json"]);
        let err = run("postmortem", &missing).expect_err("missing dump");
        assert!(err.contains("flight.json"), "error names the path: {err}");
    }
}
