//! `eks crack` — the flagship search command — and its flag grammar.

use crate::args::Args;
use eks_cluster::SimKernelBackend;
use eks_cracker::{
    cpu_backend, crack_parallel_backend_observed, crack_parallel_observed, render_worker_stats,
    AutoBackend, HashTarget, Lanes, ParallelConfig, SimdBackend, TargetSet,
};
use eks_engine::{Backend, BackendKind, ProgressEvent, SchedPolicy};
use eks_gpusim::device::DeviceCatalog;
use eks_hashes::{from_hex, SimdIsa};
use eks_telemetry::{names, Telemetry};
use eks_keyspace::{KeySpace, Order};

use super::{
    arm_flight_recorder, parse_algo, parse_charset, parse_chunk, parse_retune, parse_sched,
    parse_telemetry, parse_threads, spawn_metrics_server, write_artifacts,
};

/// `--batch` opts into the lane-batched path explicitly (it is already the
/// default); `--lanes scalar|8|16` picks the width. The combination
/// `--batch --lanes scalar` is contradictory and rejected.
fn parse_lanes(args: &Args) -> Result<Lanes, String> {
    let lanes = match args.get("lanes") {
        Some(s) => {
            Lanes::parse(s).ok_or(format!("unsupported --lanes {s:?} (scalar, 8 or 16)"))?
        }
        None => Lanes::default(),
    };
    if args.has("batch") && lanes == Lanes::Scalar {
        return Err("--batch contradicts --lanes scalar".into());
    }
    Ok(lanes)
}

/// `--backend scalar|lanes8|lanes16|simd|auto|simgpu` names an engine
/// backend explicitly. It subsumes the older `--lanes`/`--batch` pair,
/// so combining them is contradictory and rejected; `simgpu` drives the
/// kernel of the device picked by `--device` (default: the GTX 660);
/// `simd` runs the explicit AVX2/AVX-512/NEON kernels (widest detected
/// ISA, or the one forced by `--isa`); `auto` tunes every CPU
/// implementation per algorithm and runs the winner. An unavailable
/// forced ISA is a CLI error naming what the CPU actually supports.
fn parse_backend(args: &Args, telemetry: &Telemetry) -> Result<Option<Box<dyn Backend>>, String> {
    let Some(s) = args.get("backend") else {
        if args.has("isa") {
            return Err("--isa applies only to --backend simd".into());
        }
        return Ok(None);
    };
    if args.has("lanes") || args.has("batch") {
        return Err("--backend conflicts with --lanes/--batch".into());
    }
    let kind = BackendKind::parse(s).ok_or(format!(
        "unsupported --backend {s:?} (scalar, lanes8, lanes16, simd, auto or simgpu)"
    ))?;
    if args.has("isa") && kind != BackendKind::Simd {
        return Err("--isa applies only to --backend simd".into());
    }
    Ok(Some(match kind {
        BackendKind::Scalar => cpu_backend(Lanes::Scalar),
        BackendKind::Lanes8 => cpu_backend(Lanes::L8),
        BackendKind::Lanes16 => cpu_backend(Lanes::L16),
        BackendKind::Simd => {
            let backend = match args.get("isa") {
                Some(name) => {
                    let isa = SimdIsa::parse(name)
                        .ok_or(format!("unsupported --isa {name:?} (avx2, avx512 or neon)"))?;
                    SimdBackend::new(isa)?
                }
                None => SimdBackend::best().ok_or_else(|| {
                    "no explicit-SIMD ISA detected on this CPU; \
                     use --backend auto for the autovectorized fallback"
                        .to_string()
                })?,
            };
            Box::new(backend.with_telemetry(telemetry.clone()))
        }
        BackendKind::Auto => Box::new(AutoBackend::new(telemetry.clone())),
        BackendKind::SimGpu => {
            let device =
                DeviceCatalog::find(args.get_or("device", "660")).ok_or("unknown --device")?;
            Box::new(SimKernelBackend::new(device))
        }
    }))
}

/// How often the periodic progress line refreshes (telemetry-clock ns).
const PROGRESS_EVERY_NS: u64 = 500_000_000;

/// Format one progress line from a merged-scan observation: percent of
/// the keyspace, aggregate rate, and the ETA at that rate. All three
/// derive from the guarded [`ProgressEvent`] helpers, so a
/// zero-duration run prints zeros instead of NaN.
fn progress_line(e: &ProgressEvent, total: u128, elapsed_secs: f64) -> String {
    let eta = match e.eta_secs(total, elapsed_secs) {
        Some(s) => format!("{s:.0} s"),
        None => "unknown".into(),
    };
    format!(
        "progress: {:.1}% of keyspace, {:.2} MKey/s, eta {eta}",
        e.percent_of(total),
        e.keys_per_sec(elapsed_secs) / 1e6,
    )
}

pub(super) fn cmd_crack(args: &Args) -> Result<(), String> {
    let algo = parse_algo(args)?;
    let digest_hex = args
        .get("digest")
        .ok_or("crack requires --digest <hex>")?;
    let digest = from_hex(digest_hex).ok_or("digest is not valid hex")?;
    if digest.len() != algo.digest_len() {
        return Err(format!(
            "digest length {} does not match {} ({} bytes)",
            digest.len(),
            algo.name(),
            algo.digest_len()
        ));
    }
    let threads = parse_threads(args, 8)?;
    let lanes = parse_lanes(args)?;
    let (telemetry, log) = parse_telemetry(args)?;
    let _metrics_server = spawn_metrics_server(args, &telemetry, None)?;
    arm_flight_recorder(args, &telemetry);
    let backend = parse_backend(args, &telemetry)?;
    let chunk = parse_chunk(args)?;
    let sched = parse_sched(args, SchedPolicy::Steal)?;
    let retune = parse_retune(args)?;
    let structured = args.get("mask").is_some()
        || args.get("words").is_some()
        || args.get("salt-prefix").is_some()
        || args.get("salt-suffix").is_some();
    if backend.is_some() && structured {
        return Err("--backend applies only to plain charset searches".into());
    }
    if args.get("sched").is_some() && structured {
        return Err("--sched applies only to plain charset searches".into());
    }
    if retune.is_some() && structured {
        return Err("--retune applies only to plain charset searches".into());
    }

    // Mask attack: --mask "?u?l?l?d?d".
    if let Some(mask) = args.get("mask") {
        let space = eks_keyspace::MaskSpace::parse(mask).map_err(|e| e.to_string())?;
        log.info(format!("mask {mask}: {} candidates, {threads} threads", space.size()));
        let targets = TargetSet::new(algo, &[digest]);
        let config = ParallelConfig {
            threads,
            chunk: chunk.unwrap_or(1 << 12),
            first_hit_only: !args.has("all"),
            ..ParallelConfig::default()
        };
        let report = eks_cracker::crack_space_parallel(&space, &targets, config);
        write_artifacts(args, &telemetry, &log)?;
        return finish_report(report);
    }

    // Hybrid attack: --words w1,w2,... [--suffix-digits N].
    if let Some(words) = args.get("words") {
        let list: Vec<&[u8]> = words.split(',').map(|w| w.as_bytes()).collect();
        let digits: u32 = args.get_parse_or("suffix-digits", 2)?;
        let space = eks_keyspace::HybridSpace::with_digit_suffixes(&list, digits)
            .map_err(|e| format!("{e:?}"))?;
        log.info(format!(
            "hybrid: {} words x digit suffixes 0..={digits} = {} candidates",
            space.word_count(),
            space.size()
        ));
        let targets = TargetSet::new(algo, &[digest]);
        let config = ParallelConfig {
            threads,
            chunk: chunk.unwrap_or(256),
            first_hit_only: !args.has("all"),
            ..ParallelConfig::default()
        };
        let report = eks_cracker::crack_space_parallel(&space, &targets, config);
        write_artifacts(args, &telemetry, &log)?;
        return finish_report(report);
    }

    let charset = parse_charset(args)?;
    let min: u32 = args.get_parse_or("min", 1)?;
    let max: u32 = args.get_parse_or("max", 5)?;
    let space = KeySpace::new(charset, min, max, Order::FirstCharFastest)
        .map_err(|e| e.to_string())?;
    log.info(format!(
        "searching {} candidates ({} lengths {min}..={max}) with {threads} threads",
        space.size(),
        algo.name()
    ));

    let salted = args.get("salt-prefix").is_some() || args.get("salt-suffix").is_some();
    if salted {
        // Salted targets go through the streaming path, one at a time.
        let prefix = args.get_or("salt-prefix", "").as_bytes().to_vec();
        let suffix = args.get_or("salt-suffix", "").as_bytes().to_vec();
        let target = HashTarget::salted(algo, &digest, &prefix, &suffix);
        let mut found = None;
        space.iter(space.interval()).for_each_key(|id, key| {
            if target.matches(key) {
                found = Some((id, key.clone()));
                false
            } else {
                true
            }
        });
        return match found {
            Some((id, key)) => {
                println!("FOUND: \"{key}\" (identifier {id})");
                Ok(())
            }
            None => Err("not found in this keyspace".into()),
        };
    }

    let targets = TargetSet::new(algo, &[digest]);
    let mut config = ParallelConfig {
        first_hit_only: !args.has("all"),
        lanes,
        sched,
        retune,
        ..ParallelConfig::for_threads(threads)
    };
    if let Some(c) = chunk {
        config.chunk = c;
    }
    // Periodic progress line: throttled to one refresh per
    // PROGRESS_EVERY_NS on the telemetry clock (an injected ManualClock
    // therefore controls exactly which refreshes print), derived from
    // the merged-scan observations the dispatcher already emits (no
    // extra hot-path work).
    let total = space.size();
    let start_ns = telemetry.now_ns();
    let throttle = eks_telemetry::Throttle::new(start_ns, PROGRESS_EVERY_NS);
    let want_progress = args.has("progress");
    // Hidden test hook for the CI flight-recorder gate: panic after the
    // N-th merged chunk, mid-search, so the armed --flight hook dumps a
    // black box that `eks postmortem` must replay.
    let panic_after: Option<u64> = match args.get("panic-after-chunks") {
        Some(s) => Some(s.parse().map_err(|_| format!("invalid --panic-after-chunks {s:?}"))?),
        None => None,
    };
    let chunks_seen = std::sync::atomic::AtomicU64::new(0);
    let progress = |e: &ProgressEvent| {
        if let Some(n) = panic_after {
            let seen = chunks_seen.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
            assert!(seen < n, "forced panic after {n} chunks (--panic-after-chunks)");
        }
        if !want_progress {
            return;
        }
        let now_ns = telemetry.now_ns();
        if !throttle.ready(now_ns) {
            return;
        }
        log.progress(progress_line(e, total, now_ns.saturating_sub(start_ns) as f64 / 1e9));
    };
    // Record which kernel specialization the backend selected (the §V
    // per-architecture choice) and its tuned rate, so `eks report` can
    // show them next to the cost-model terms. Guarded on the enabled
    // handle because the tuned rate runs a short timed sweep.
    if let Some(b) = backend.as_deref() {
        if telemetry.is_enabled() {
            let name = b.name();
            if let Some(isa) = b.isa(algo) {
                telemetry
                    .gauge(names::BACKEND_ISA, &[("backend", &name), ("isa", &isa)])
                    .set(1.0);
            }
            telemetry
                .gauge(names::BACKEND_RATE_MKEYS, &[("backend", &name)])
                .set(b.tuned_rate(algo));
        }
    }
    let report = match backend {
        Some(b) => crack_parallel_backend_observed(
            &space,
            &targets,
            space.interval(),
            b.as_ref(),
            config,
            &telemetry,
            progress,
        ),
        None => {
            crack_parallel_observed(&space, &targets, space.interval(), config, &telemetry, progress)
        }
    };
    if args.has("stats") {
        print!("{}", render_worker_stats(&report.stats));
    }
    write_artifacts(args, &telemetry, &log)?;
    finish_report(report)
}

fn finish_report(report: eks_cracker::ParallelReport) -> Result<(), String> {
    if report.hits.is_empty() {
        return Err(format!(
            "not found; tested {} keys at {:.2} MKey/s",
            report.tested, report.mkeys_per_s
        ));
    }
    for (id, key, _) in &report.hits {
        println!("FOUND: \"{key}\" (identifier {id})");
    }
    println!(
        "tested {} keys in {:.3} s ({:.2} MKey/s)",
        report.tested, report.elapsed_s, report.mkeys_per_s
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::args::Args;
    use crate::commands::run;
    use eks_engine::BackendKind;
    use eks_hashes::{to_hex, HashAlgo, SimdIsa};
    use eks_telemetry::{names, parse_prometheus};

    fn args(s: &[&str]) -> Args {
        Args::parse(s.iter().map(|x| x.to_string())).unwrap()
    }

    #[test]
    fn crack_round_trip() {
        let digest = to_hex(&HashAlgo::Md5.hash(b"cab"));
        let a = args(&["crack", "--algo", "md5", "--digest", &digest, "--max", "3", "--threads", "2"]);
        assert!(run("crack", &a).is_ok());
    }

    #[test]
    fn crack_lanes_flags() {
        let digest = to_hex(&HashAlgo::Md5.hash(b"cab"));
        for lanes in ["scalar", "8", "16"] {
            let a = args(&[
                "crack", "--digest", &digest, "--max", "3", "--threads", "2", "--lanes", lanes,
            ]);
            assert!(run("crack", &a).is_ok(), "--lanes {lanes}");
        }
        let a = args(&["crack", "--digest", &digest, "--max", "3", "--batch"]);
        assert!(run("crack", &a).is_ok(), "--batch is the default made explicit");
        let bad = args(&["crack", "--digest", &digest, "--lanes", "32"]);
        assert!(run("crack", &bad).is_err(), "unsupported width");
        let contradiction =
            args(&["crack", "--digest", &digest, "--batch", "--lanes", "scalar"]);
        assert!(run("crack", &contradiction).is_err());
    }

    #[test]
    fn crack_backend_flag() {
        let digest = to_hex(&HashAlgo::Md5.hash(b"cab"));
        let mut backends = vec!["scalar", "lanes8", "lanes16", "auto", "simgpu"];
        if BackendKind::Simd.is_available() {
            backends.push("simd");
        }
        for backend in backends {
            let a = args(&[
                "crack", "--digest", &digest, "--max", "3", "--threads", "2", "--backend", backend,
            ]);
            assert!(run("crack", &a).is_ok(), "--backend {backend}");
        }
        let bad = args(&["crack", "--digest", &digest, "--backend", "cuda"]);
        assert!(run("crack", &bad).is_err(), "unknown backend");
        let bad_isa = args(&[
            "crack", "--digest", &digest, "--backend", "simd", "--isa", "mmx",
        ]);
        assert!(run("crack", &bad_isa).is_err(), "unknown --isa");
        let stray_isa = args(&["crack", "--digest", &digest, "--isa", "avx2"]);
        assert!(run("crack", &stray_isa).is_err(), "--isa without --backend simd");
        // Forcing an ISA the CPU lacks must be a friendly error, not a
        // panic; at most one of the ISAs can be the detected one.
        for isa in ["avx2", "avx512", "neon"] {
            if SimdIsa::parse(isa).is_some_and(|i| i.is_available()) {
                continue;
            }
            let forced = args(&[
                "crack", "--digest", &digest, "--max", "3", "--backend", "simd", "--isa", isa,
            ]);
            assert!(run("crack", &forced).is_err(), "unavailable --isa {isa}");
        }
        let conflict =
            args(&["crack", "--digest", &digest, "--backend", "scalar", "--lanes", "8"]);
        assert!(run("crack", &conflict).is_err(), "--backend conflicts with --lanes");
        let masked = args(&[
            "crack", "--digest", &digest, "--backend", "scalar", "--mask", "?l?l?l",
        ]);
        assert!(run("crack", &masked).is_err(), "--backend is plain-search only");
        let nodev =
            args(&["crack", "--digest", &digest, "--backend", "simgpu", "--device", "voodoo2"]);
        assert!(run("crack", &nodev).is_err(), "unknown simgpu device");
    }

    #[test]
    fn crack_sched_and_chunk_flags() {
        let digest = to_hex(&HashAlgo::Md5.hash(b"cab"));
        for sched in ["static", "queue", "steal"] {
            let a = args(&[
                "crack", "--digest", &digest, "--max", "3", "--threads", "2", "--sched", sched,
            ]);
            assert!(run("crack", &a).is_ok(), "--sched {sched}");
        }
        let a = args(&["crack", "--digest", &digest, "--max", "3", "--chunk", "1024", "--stats"]);
        assert!(run("crack", &a).is_ok(), "--chunk override with stats table");
        let bad = args(&["crack", "--digest", &digest, "--sched", "fifo"]);
        assert!(run("crack", &bad).is_err(), "unknown policy");
        let masked =
            args(&["crack", "--digest", &digest, "--sched", "steal", "--mask", "?l?l?l"]);
        assert!(run("crack", &masked).is_err(), "--sched is plain-search only");
    }

    #[test]
    fn crack_retune_flags() {
        let digest = to_hex(&HashAlgo::Md5.hash(b"cab"));
        let a = args(&[
            "crack", "--digest", &digest, "--max", "3", "--threads", "2", "--all", "--retune",
        ]);
        assert!(run("crack", &a).is_ok(), "--retune");
        // --retune-interval implies --retune.
        let a = args(&[
            "crack", "--digest", &digest, "--max", "3", "--threads", "2",
            "--retune-interval", "4",
        ]);
        assert!(run("crack", &a).is_ok(), "--retune-interval alone");
        let bad = args(&["crack", "--digest", &digest, "--retune-interval", "0"]);
        let err = run("crack", &bad).expect_err("interval 0 must be rejected");
        assert!(err.contains("--retune-interval"), "{err}");
        let bad = args(&["crack", "--digest", &digest, "--retune-interval", "soon"]);
        assert!(run("crack", &bad).is_err(), "non-numeric interval");
        let masked =
            args(&["crack", "--digest", &digest, "--retune", "--mask", "?l?l?l"]);
        assert!(run("crack", &masked).is_err(), "--retune is plain-search only");
    }

    #[test]
    fn crack_chunk_zero_is_a_usage_error_not_a_panic() {
        let digest = to_hex(&HashAlgo::Md5.hash(b"cab"));
        let a = args(&["crack", "--digest", &digest, "--max", "3", "--chunk", "0"]);
        let err = run("crack", &a).expect_err("chunk 0 must be rejected");
        assert!(err.contains("--chunk"), "{err}");
        let a = args(&["crack", "--digest", &digest, "--chunk", "lots"]);
        assert!(run("crack", &a).is_err(), "non-numeric chunk");
        let a = args(&["crack", "--digest", &digest, "--threads", "0"]);
        let err = run("crack", &a).expect_err("threads 0 must be rejected");
        assert!(err.contains("--threads"), "{err}");
    }

    #[test]
    fn crack_with_auto_backend_records_isa_and_tuned_rate_gauges() {
        let dir = std::env::temp_dir();
        let metrics = dir.join(format!("eks-cli-isa-{}.prom", std::process::id()));
        let digest = to_hex(&HashAlgo::Md5.hash(b"zzz"));
        let a = args(&[
            "crack", "--digest", &digest, "--max", "3", "--threads", "2", "--all",
            "--backend", "auto", "--metrics-out", metrics.to_str().unwrap(),
        ]);
        assert!(run("crack", &a).is_ok());
        let samples = parse_prometheus(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
        assert!(
            samples.iter().any(|s| s.name == names::BACKEND_ISA
                && s.label("backend") == Some("auto")
                && s.value == 1.0),
            "{samples:?}"
        );
        assert!(
            samples
                .iter()
                .any(|s| s.name == names::BACKEND_RATE_MKEYS && s.value > 0.0),
            "{samples:?}"
        );
        std::fs::remove_file(&metrics).ok();
    }

    #[test]
    fn quiet_and_verbose_conflict_is_a_usage_error() {
        let digest = to_hex(&HashAlgo::Md5.hash(b"cab"));
        let a = args(&["crack", "--digest", &digest, "--max", "3", "--quiet", "--verbose"]);
        let err = run("crack", &a).expect_err("contradictory levels");
        assert!(err.contains("--quiet"), "{err}");
        // Each alone is fine, as is the progress flag.
        let q = args(&["crack", "--digest", &digest, "--max", "3", "--quiet"]);
        assert!(run("crack", &q).is_ok());
        let p = args(&["crack", "--digest", &digest, "--max", "3", "--progress", "--verbose"]);
        assert!(run("crack", &p).is_ok());
    }

    #[test]
    fn crack_salted_round_trip() {
        let digest = to_hex(&HashAlgo::Sha1.hash_long(b"s-ab"));
        let a = args(&[
            "crack", "--algo", "sha1", "--digest", &digest, "--max", "2", "--salt-prefix", "s-",
        ]);
        assert!(run("crack", &a).is_ok());
    }

    #[test]
    fn crack_rejects_bad_digest() {
        let a = args(&["crack", "--digest", "zz"]);
        assert!(run("crack", &a).is_err());
        let a = args(&["crack", "--digest", "aabb"]);
        assert!(run("crack", &a).is_err(), "wrong length");
    }

    #[test]
    fn crack_reports_not_found() {
        // An impossible digest over a tiny space.
        let a = args(&["crack", "--digest", &"00".repeat(16), "--max", "2", "--threads", "1"]);
        assert!(run("crack", &a).is_err());
    }

    #[test]
    fn mask_attack_via_cli() {
        let digest = to_hex(&HashAlgo::Md5.hash(b"Ab1"));
        let a = args(&["crack", "--digest", &digest, "--mask", "?u?l?d", "--threads", "2"]);
        assert!(run("crack", &a).is_ok());
        let bad = args(&["crack", "--digest", &digest, "--mask", "?z"]);
        assert!(run("crack", &bad).is_err());
    }

    #[test]
    fn hybrid_attack_via_cli() {
        let digest = to_hex(&HashAlgo::Md5.hash(b"cat7"));
        let a = args(&["crack", "--digest", &digest, "--words", "dog,cat", "--suffix-digits", "1"]);
        assert!(run("crack", &a).is_ok());
    }

    #[test]
    fn ntlm_crack_via_cli() {
        let digest = to_hex(&HashAlgo::Ntlm.hash(b"cab"));
        let a = args(&["crack", "--algo", "ntlm", "--digest", &digest, "--max", "3", "--threads", "2"]);
        assert!(run("crack", &a).is_ok());
    }

    #[test]
    fn custom_charset() {
        let digest = to_hex(&HashAlgo::Md5.hash(b"cb"));
        let a = args(&["crack", "--digest", &digest, "--charset", "abc", "--max", "2"]);
        assert!(run("crack", &a).is_ok());
    }
}
