//! `eks bench` — the host-tuning report over every CPU backend.

use crate::args::Args;
use eks_cracker::{cpu_backend, AutoBackend, Lanes, SimdBackend};
use eks_engine::{Backend, BackendKind};
use eks_hashes::{HashAlgo, SimdIsa};
use eks_telemetry::Telemetry;

/// `eks bench [--json FILE]`: the host-tuning report. Runs the tuning
/// sweep for every CPU backend and algorithm on this machine, prints
/// the single-thread rate table plus the detected CPU features and the
/// selected ISA, and with `--json` writes the schema-3 machine-readable
/// report (cpu_features, simd_isa, per-(backend, algo) rates, and the
/// implementation `auto` tuned in per algorithm).
pub(super) fn cmd_bench(args: &Args) -> Result<(), String> {
    use std::fmt::Write as _;
    const ALGOS: [HashAlgo; 3] = [HashAlgo::Md5, HashAlgo::Sha1, HashAlgo::Ntlm];
    // Lowercase algorithm keys, matching the CLI's `--algo` vocabulary
    // and the committed bench artifact.
    fn algo_key(algo: HashAlgo) -> &'static str {
        match algo {
            HashAlgo::Md5 => "md5",
            HashAlgo::Sha1 => "sha1",
            HashAlgo::Ntlm => "ntlm",
            // The tuning table covers the base primitives; the iterated
            // KDF's rate is derived (base / cost_factor), not swept.
            HashAlgo::Md5Iter { .. } => unreachable!("bench sweeps base algorithms only"),
        }
    }

    let features = eks_hashes::cpu_features();
    let isa = SimdIsa::detect();
    println!(
        "cpu features: {}",
        features
            .iter()
            .map(|(name, on)| format!("{name}={}", if *on { "yes" } else { "no" }))
            .collect::<Vec<_>>()
            .join("  ")
    );
    match isa {
        Some(isa) => println!("selected isa: {isa}"),
        None => println!("selected isa: none (autovectorized fallback)"),
    }

    // Every CPU backend the host can run; the simulated GPUs have their
    // own `tune` table and stay out of the host-tuning report.
    let kinds: Vec<BackendKind> = BackendKind::ALL
        .into_iter()
        .filter(|k| *k != BackendKind::SimGpu && k.is_available())
        .collect();
    let auto = AutoBackend::new(Telemetry::disabled());
    let backend_of = |kind: BackendKind| -> Box<dyn Backend> {
        match kind {
            BackendKind::Scalar => cpu_backend(Lanes::Scalar),
            BackendKind::Lanes8 => cpu_backend(Lanes::L8),
            BackendKind::Lanes16 => cpu_backend(Lanes::L16),
            BackendKind::Simd => {
                Box::new(SimdBackend::best().expect("filtered to available kinds"))
            }
            BackendKind::Auto => Box::new(AutoBackend::new(Telemetry::disabled())),
            BackendKind::SimGpu => unreachable!("simgpu is filtered out above"),
        }
    };

    println!(
        "{:<10} {:>10} {:>10} {:>10}   (tuned MKey/s, single thread)",
        "backend", "md5", "sha1", "ntlm"
    );
    let mut rates: Vec<(BackendKind, HashAlgo, f64)> = Vec::new();
    for &kind in &kinds {
        let backend = backend_of(kind);
        let mut line = format!("{:<10}", kind.name());
        for algo in ALGOS {
            let rate = backend.tuned_rate(algo);
            let _ = write!(line, " {rate:>10.3}");
            rates.push((kind, algo, rate));
        }
        println!("{line}");
    }
    let choices: Vec<(HashAlgo, String)> =
        ALGOS.into_iter().map(|algo| (algo, auto.choice_name(algo))).collect();
    println!(
        "auto tuned in: {}",
        choices
            .iter()
            .map(|(algo, choice)| format!("{}={choice}", algo_key(*algo)))
            .collect::<Vec<_>>()
            .join("  ")
    );

    if let Some(path) = args.get("json") {
        let features_body = features
            .iter()
            .map(|(name, on)| format!("\"{name}\": {on}"))
            .collect::<Vec<_>>()
            .join(", ");
        let isa_body = match isa {
            Some(isa) => format!("\"{isa}\""),
            None => "null".to_string(),
        };
        let mut rates_body = String::new();
        for (kind, algo, rate) in &rates {
            let _ = write!(
                rates_body,
                "{}    {{\"backend\": \"{}\", \"algo\": \"{}\", \"mkeys_per_s\": {rate:.3}}}",
                if rates_body.is_empty() { "" } else { ",\n" },
                kind.name(),
                algo_key(*algo)
            );
        }
        let choices_body = choices
            .iter()
            .map(|(algo, choice)| format!("\"{}\": \"{choice}\"", algo_key(*algo)))
            .collect::<Vec<_>>()
            .join(", ");
        let json = format!(
            "{{\n  \"schema\": 3,\n  \"kind\": \"host-tuning\",\n  \
             \"cpu_features\": {{{features_body}}},\n  \"simd_isa\": {isa_body},\n  \
             \"rates\": [\n{rates_body}\n  ],\n  \"auto_choices\": {{{choices_body}}}\n}}\n"
        );
        std::fs::write(path, json).map_err(|e| format!("cannot write --json {path:?}: {e}"))?;
        println!("wrote host-tuning report to {path}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::args::Args;
    use crate::commands::run;

    fn args(s: &[&str]) -> Args {
        Args::parse(s.iter().map(|x| x.to_string())).unwrap()
    }

    #[test]
    fn bench_writes_the_schema3_host_tuning_report() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("eks-cli-bench-{}.json", std::process::id()));
        let a = args(&["bench", "--json", path.to_str().unwrap()]);
        assert!(run("bench", &a).is_ok());
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"schema\": 3"), "{body}");
        assert!(body.contains("\"cpu_features\""), "{body}");
        assert!(body.contains("\"avx2\""), "{body}");
        assert!(body.contains("\"simd_isa\""), "{body}");
        assert!(body.contains("\"auto_choices\""), "{body}");
        assert!(body.contains("\"backend\": \"auto\""), "{body}");
        std::fs::remove_file(&path).ok();
    }
}
