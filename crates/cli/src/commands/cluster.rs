//! Cluster-facing commands: `cluster`, `simulate`, `tune`, `strength`.

use crate::args::Args;
use eks_cluster::{
    paper_network, run_cluster_search_retuned, simulate_search, tune_device, AchievedModel,
    SimParams,
};
use eks_cracker::{render_worker_stats, TargetSet};
use eks_engine::SchedPolicy;
use eks_gpusim::device::DeviceCatalog;
use eks_hashes::{from_hex, HashAlgo};
use eks_kernels::Tool;
use eks_keyspace::{Charset, KeySpace, Order};

use super::{
    arm_flight_recorder, parse_algo, parse_charset, parse_retune, parse_sched, parse_telemetry,
    spawn_metrics_server, write_artifacts,
};

/// Really crack a digest across a heterogeneous cluster: every simulated
/// GPU becomes a [`SimKernelBackend`], every `cpu:N` worker a lane
/// backend, and the whole tree runs through the one dispatch core.
pub(super) fn cmd_cluster(args: &Args) -> Result<(), String> {
    let algo = parse_algo(args)?;
    let digest_hex = args.get("digest").ok_or("cluster requires --digest <hex>")?;
    let digest = from_hex(digest_hex).ok_or("digest is not valid hex")?;
    if digest.len() != algo.digest_len() {
        return Err(format!(
            "digest length {} does not match {} ({} bytes)",
            digest.len(),
            algo.name(),
            algo.digest_len()
        ));
    }
    let charset = parse_charset(args)?;
    let min: u32 = args.get_parse_or("min", 1)?;
    let max: u32 = args.get_parse_or("max", 4)?;
    let space =
        KeySpace::new(charset, min, max, Order::FirstCharFastest).map_err(|e| e.to_string())?;
    let (net, label) = match args.get("topology") {
        Some(t) => (eks_cluster::parse_topology(t, 0.0)?, t.to_string()),
        None => (
            paper_network(0.0).with_cpu("host-cpu", 2),
            "paper network + host cpu:2".to_string(),
        ),
    };
    let sched = parse_sched(args, SchedPolicy::Static)?;
    let retune = parse_retune(args)?;
    let (telemetry, log) = parse_telemetry(args)?;
    let _metrics_server = spawn_metrics_server(args, &telemetry, None)?;
    arm_flight_recorder(args, &telemetry);
    let targets = TargetSet::new(algo, &[digest]);
    log.info(format!(
        "cluster [{label}]: searching {} {} candidates ({sched} schedule{})",
        space.size(),
        algo.name(),
        if retune.is_some() { ", closed-loop retune" } else { "" }
    ));
    let r = run_cluster_search_retuned(
        &net,
        &space,
        &targets,
        space.interval(),
        !args.has("all"),
        sched,
        retune,
        &telemetry,
    );
    print!("{}", render_worker_stats(&r.stats));
    log.info(format!(
        "parallel efficiency: {:.1}% (the paper reports 85-90%)",
        r.parallel_efficiency()
    ));
    write_artifacts(args, &telemetry, &log)?;
    if r.hits.is_empty() {
        return Err(format!("not found; tested {} keys", r.tested));
    }
    for (id, key, _) in &r.hits {
        println!("FOUND: \"{key}\" (identifier {id})");
    }
    println!("tested {} keys across {} workers", r.tested, r.per_device.len());
    Ok(())
}

pub(super) fn cmd_simulate(args: &Args) -> Result<(), String> {
    let algo = parse_algo(args)?;
    let keys: f64 = args.get_parse_or("keys", 5e11)?;
    if keys <= 0.0 || !keys.is_finite() {
        return Err("--keys must be positive".into());
    }
    let (net, label) = match args.get("topology") {
        Some(t) => (eks_cluster::parse_topology(t, 2e-3)?, t.to_string()),
        None => (
            paper_network(2e-3),
            "A(540M) -> B(660, 550Ti), A -> C(8600M) -> D(8800)".to_string(),
        ),
    };
    let r = simulate_search(&net, Tool::OurApproach, algo, keys, SimParams::default());
    println!("network: {label}");
    println!("keys            : {keys:.3e}");
    println!("makespan        : {:.1} s (simulated)", r.makespan_s);
    println!("throughput      : {:.1} MKey/s", r.achieved_mkeys);
    println!("sum theoretical : {:.1} MKey/s", r.sum_theoretical_mkeys);
    println!("efficiency      : {:.3}", r.table9_efficiency());
    Ok(())
}

pub(super) fn cmd_tune(args: &Args) -> Result<(), String> {
    let threads: usize = args.get_parse_or("threads", 4)?;
    println!("{:<24}{:>14}{:>14}{:>14}", "worker", "theoretical", "achieved", "n_j (99%)");
    for d in DeviceCatalog::paper_devices() {
        let t = tune_device(&d, Tool::OurApproach, HashAlgo::Md5, AchievedModel::Analytic);
        println!(
            "{:<24}{:>9.1} MK/s{:>9.1} MK/s{:>14}",
            d.name, t.theoretical_mkeys, t.achieved_mkeys, t.min_batch
        );
    }
    let cpu = eks_cluster::tuning::measure_cpu_mkeys(threads, HashAlgo::Md5);
    println!("{:<24}{:>14}{:>9.1} MK/s  (measured on this host)", format!("local CPU x{threads}"), "", cpu);
    Ok(())
}

pub(super) fn cmd_strength(args: &Args) -> Result<(), String> {
    let algo = parse_algo(args)?;
    let password = args.positional(1).ok_or("strength requires a password argument")?;
    let charset = match args.get("charset") {
        Some(_) => parse_charset(args)?,
        None => Charset::alphanumeric(),
    };
    let min: u32 = args.get_parse_or("min", 1)?;
    let max: u32 = args.get_parse_or("max", 8)?;
    let space = KeySpace::new(charset, min, max, Order::FirstCharFastest)
        .map_err(|e| e.to_string())?;
    let key = eks_keyspace::Key::from_bytes(password.as_bytes());
    println!(
        "password {password:?} vs the {} keyspace ({} candidates):",
        algo.name(),
        space.size()
    );
    let net = paper_network(2e-3);
    println!("{:<24}{:>14}{:>16}{:>16}", "attacker", "MKey/s", "time to reach", "full sweep");
    for dev in eks_gpusim::device::DeviceCatalog::paper_devices() {
        match eks_cluster::estimate_against_device(&key, &space, algo, &dev) {
            Some(e) => println!(
                "{:<24}{:>14.0}{:>16}{:>16}",
                dev.name,
                e.attacker_mkeys,
                eks_cluster::StrengthEstimate::render_duration(e.time_to_reach_s),
                eks_cluster::StrengthEstimate::render_duration(e.full_sweep_s)
            ),
            None => {
                println!("password is outside this keyspace — it survives this sweep outright");
                return Ok(());
            }
        }
    }
    if let Some(e) = eks_cluster::estimate_against_cluster(&key, &space, algo, &net) {
        println!(
            "{:<24}{:>14.0}{:>16}{:>16}",
            "whole paper network",
            e.attacker_mkeys,
            eks_cluster::StrengthEstimate::render_duration(e.time_to_reach_s),
            eks_cluster::StrengthEstimate::render_duration(e.full_sweep_s)
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::args::Args;
    use crate::commands::run;
    use eks_hashes::{to_hex, HashAlgo};
    use eks_telemetry::parse_prometheus;

    fn args(s: &[&str]) -> Args {
        Args::parse(s.iter().map(|x| x.to_string())).unwrap()
    }

    #[test]
    fn cluster_command_cracks_heterogeneously() {
        let digest = to_hex(&HashAlgo::Md5.hash(b"cab"));
        let a = args(&[
            "cluster", "--digest", &digest, "--max", "3",
            "--topology", "box(660, cpu:2)",
        ]);
        assert!(run("cluster", &a).is_ok());
        let not_found = args(&[
            "cluster", "--digest", &"00".repeat(16), "--max", "2",
            "--topology", "box(660, cpu:2)",
        ]);
        assert!(run("cluster", &not_found).is_err());
        let no_digest = args(&["cluster"]);
        assert!(run("cluster", &no_digest).is_err());
    }

    #[test]
    fn cluster_sched_flag() {
        let digest = to_hex(&HashAlgo::Md5.hash(b"cab"));
        let a = args(&[
            "cluster", "--digest", &digest, "--max", "3",
            "--topology", "box(660, cpu:2)", "--sched", "steal",
        ]);
        assert!(run("cluster", &a).is_ok());
        let bad = args(&[
            "cluster", "--digest", &digest, "--max", "3",
            "--topology", "box(660)", "--sched", "lifo",
        ]);
        assert!(run("cluster", &bad).is_err());
    }

    #[test]
    fn cluster_retune_flag_publishes_live_rate_gauges() {
        let dir = std::env::temp_dir();
        let metrics = dir.join(format!("eks-cli-cluster-retune-{}.prom", std::process::id()));
        let digest = to_hex(&HashAlgo::Md5.hash(b"cab"));
        let a = args(&[
            "cluster", "--digest", &digest, "--max", "3", "--all",
            "--topology", "box(660, cpu:2)", "--sched", "steal", "--retune",
            "--retune-interval", "2", "--metrics-out", metrics.to_str().unwrap(),
        ]);
        assert!(run("cluster", &a).is_ok());
        let samples = parse_prometheus(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
        assert!(samples.iter().any(|s| s.name == "eks_worker_rate_est_mkeys"), "{samples:?}");
        assert!(samples.iter().any(|s| s.name == "eks_worker_rate_tuned_mkeys"), "{samples:?}");
        assert!(samples.iter().any(|s| s.name == "eks_rescatter_total"), "{samples:?}");
        std::fs::remove_file(&metrics).ok();
    }

    #[test]
    fn cluster_writes_artifacts_too() {
        let dir = std::env::temp_dir();
        let metrics = dir.join(format!("eks-cli-cluster-{}.prom", std::process::id()));
        let digest = to_hex(&HashAlgo::Md5.hash(b"cab"));
        let a = args(&[
            "cluster",
            "--digest",
            &digest,
            "--max",
            "3",
            "--topology",
            "box(660, cpu:2)",
            "--metrics-out",
            metrics.to_str().unwrap(),
        ]);
        assert!(run("cluster", &a).is_ok());
        let samples = parse_prometheus(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
        assert!(samples.iter().any(|s| s.name == "eks_device_tuned_rate_mkeys"), "{samples:?}");
        assert!(samples.iter().any(|s| s.name == "eks_cluster_efficiency_percent"), "{samples:?}");
        std::fs::remove_file(&metrics).ok();
    }

    #[test]
    fn simulate_custom_topology() {
        let a = args(&["simulate", "--keys", "1e9", "--topology", "A(660) -> B(550Ti)"]);
        assert!(run("simulate", &a).is_ok());
        let bad = args(&["simulate", "--topology", "A(madeup)"]);
        assert!(run("simulate", &bad).is_err());
    }

    #[test]
    fn strength_command() {
        assert!(run("strength", &args(&["strength", "Cat42"])).is_ok());
        assert!(run("strength", &args(&["strength", "p@ss!"])).is_ok(), "out of space is informative");
        assert!(run("strength", &args(&["strength"])).is_err(), "needs a password");
    }
}
