//! `eks analyze` — static analysis over the kernel IR.

use crate::args::Args;
use eks_gpusim::codegen::lower;
use eks_gpusim::device::DeviceCatalog;
use eks_gpusim::sched::{simulate, SimConfig};
use eks_gpusim::throughput::theoretical_mkeys;
use eks_hashes::HashAlgo;
use eks_kernels::{Tool, ToolKernel};

use super::parse_algo;

pub(super) fn cmd_analyze(args: &Args) -> Result<(), String> {
    use eks_analyzer::{analyze_compiled, analyze_ir, md5_budget_report, DEFAULT_TOLERANCE};
    use eks_gpusim::arch::ComputeCapability;
    use eks_gpusim::codegen::LoweringOptions;
    use eks_kernels::md4::{build_md4, ntlm_words_for_key_len, Md4Variant};
    use eks_kernels::md5::{build_md5, Md5Variant};
    use eks_kernels::sha1::{build_sha1, sha1_words_for_key_len, Sha1Variant};
    use eks_kernels::words_for_key_len;

    let algo = parse_algo(args)?;
    let variant = args.get_or("variant", "optimized");
    let json = args.has("json");
    let tolerance: f64 = args.get_parse_or("tolerance", DEFAULT_TOLERANCE)?;
    if !(0.0..=1.0).contains(&tolerance) {
        return Err(format!("--tolerance {tolerance} must be a fraction in 0..=1"));
    }
    let deny_warnings = match args.get("deny") {
        None => false,
        Some("warnings") => true,
        Some(other) => return Err(format!("unsupported --deny {other:?} (only: warnings)")),
    };

    // Build the requested kernel: its IR, the dead-store roots (comparison
    // outputs plus loop-carried registers) and whether it should lower
    // with the per-architecture optimizations. An iterated KDF analyzes
    // its base kernel — the round loop is driver code, not device IR.
    let (ir, roots, optimized) = match algo.base() {
        HashAlgo::Md5 => {
            let v = match variant {
                "naive" => Md5Variant::Naive,
                "reversed" => Md5Variant::Reversed,
                "optimized" => Md5Variant::Optimized,
                other => return Err(format!("unknown --variant {other:?}")),
            };
            let b = build_md5(v, &words_for_key_len(4));
            (b.ir, [b.outputs, b.carried].concat(), v == Md5Variant::Optimized)
        }
        HashAlgo::Sha1 => {
            let v = match variant {
                "naive" => Sha1Variant::Naive,
                "optimized" => Sha1Variant::Optimized,
                other => return Err(format!("unknown sha1 --variant {other:?} (naive, optimized)")),
            };
            let b = build_sha1(v, &sha1_words_for_key_len(4));
            (b.ir, [b.outputs, b.carried].concat(), v == Sha1Variant::Optimized)
        }
        HashAlgo::Ntlm => {
            let v = match variant {
                "naive" => Md4Variant::Naive,
                "reversed" => Md4Variant::Reversed,
                "optimized" => Md4Variant::Optimized,
                other => return Err(format!("unknown --variant {other:?}")),
            };
            let b = build_md4(v, &ntlm_words_for_key_len(4));
            (b.ir, [b.outputs, b.carried].concat(), v == Md4Variant::Optimized)
        }
        HashAlgo::Md5Iter { .. } => unreachable!("base() strips iteration"),
    };

    // Run the whole pipeline: IR dataflow, per-architecture peephole and
    // pressure lints, and (for MD5) the Table III-VI budget gate.
    let mut reports = vec![analyze_ir(&ir, Some(&roots))];
    for cc in ComputeCapability::ALL {
        let opts =
            if optimized { LoweringOptions::for_cc(cc) } else { LoweringOptions::plain(cc) };
        reports.push(analyze_compiled(&lower(&ir, opts)));
    }
    if algo == HashAlgo::Md5 {
        reports.push(md5_budget_report(tolerance));
    }
    if deny_warnings {
        for r in &mut reports {
            r.deny_warnings();
        }
    }
    let warnings: usize = reports.iter().map(|r| r.warnings()).sum();
    let denials: usize = reports.iter().map(|r| r.denials()).sum();

    if json {
        let body: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
        println!("[{}]", body.join(","));
    } else {
        print_analyze_tables(algo);
        println!();
        println!("lints ({} {variant}, tolerance {:.0}%):", algo.name(), tolerance * 100.0);
        let mut any = false;
        for r in &reports {
            let text = r.render_text();
            if !text.is_empty() {
                print!("{text}");
                any = true;
            }
        }
        if !any {
            println!("  clean: no findings");
        }
        println!("analyze: {warnings} warning(s), {denials} error(s)");
    }

    if denials > 0 {
        Err(format!("{denials} deny-level diagnostic(s)"))
    } else {
        Ok(())
    }
}

/// The original instruction-count and throughput tables (text mode only).
fn print_analyze_tables(algo: HashAlgo) {
    use eks_gpusim::arch::ComputeCapability;
    println!("{} kernel, per architecture:", algo.name());
    println!(
        "{:<6}{:>8}{:>8}{:>10}{:>8}{:>8}{:>10}",
        "cc", "IADD", "LOP", "SHR/SHL", "IMAD", "PRMT", "R"
    );
    for cc in [ComputeCapability::Sm1x, ComputeCapability::Sm21, ComputeCapability::Sm30] {
        let tk = ToolKernel::build(Tool::OurApproach, algo, cc);
        let k = lower(&tk.ir, tk.options);
        println!(
            "{:<6}{:>8}{:>8}{:>10}{:>8}{:>8}{:>10.2}",
            cc.label(),
            k.counts.iadd(),
            k.counts.lop(),
            k.counts.shift(),
            k.counts.imad(),
            k.counts.prmt(),
            k.counts.ratio()
        );
    }
    println!();
    println!("{:<24}{:>14}{:>14}{:>8}", "device", "theoretical", "simulated", "eff");
    for dev in DeviceCatalog::paper_devices() {
        let tk = ToolKernel::build(Tool::OurApproach, algo, dev.cc);
        let k = lower(&tk.ir, tk.options);
        let theo = theoretical_mkeys(&dev, &k.counts) * k.keys_per_iteration as f64;
        let sim = simulate(&k, SimConfig::for_cc(dev.cc)).device_mkeys(&dev);
        println!(
            "{:<24}{:>9.1} MK/s{:>9.1} MK/s{:>7.1}%",
            dev.name,
            theo,
            sim,
            sim / theo * 100.0
        );
    }
}

#[cfg(test)]
mod tests {
    use crate::args::Args;
    use crate::commands::run;

    fn args(s: &[&str]) -> Args {
        Args::parse(s.iter().map(|x| x.to_string())).unwrap()
    }

    #[test]
    fn analyze_default_is_clean_even_denying_warnings() {
        // The optimized MD5 kernel must produce zero findings, so the CI
        // gate (`eks analyze --deny warnings`) passes.
        assert!(run("analyze", &args(&["analyze"])).is_ok());
        assert!(run("analyze", &args(&["analyze", "--deny", "warnings"])).is_ok());
        assert!(run("analyze", &args(&["analyze", "--json"])).is_ok());
    }

    #[test]
    fn analyze_naive_variant_fails_the_warning_gate() {
        // Warnings (missed PRMT / funnel lowerings) are tolerated by
        // default but fatal under --deny warnings.
        let a = args(&["analyze", "--variant", "naive"]);
        assert!(run("analyze", &a).is_ok());
        let a = args(&["analyze", "--variant", "naive", "--deny", "warnings"]);
        assert!(run("analyze", &a).is_err());
    }

    #[test]
    fn analyze_zero_tolerance_trips_the_budget_gate() {
        // Our compiled mixes track the paper's tables within a few
        // percent, not exactly: tightening the tolerance to zero must
        // produce deny-level budget drift and a non-zero exit.
        let a = args(&["analyze", "--tolerance", "0.0"]);
        assert!(run("analyze", &a).is_err());
    }

    #[test]
    fn analyze_rejects_bad_flags() {
        assert!(run("analyze", &args(&["analyze", "--variant", "turbo"])).is_err());
        assert!(run("analyze", &args(&["analyze", "--deny", "everything"])).is_err());
        assert!(run("analyze", &args(&["analyze", "--tolerance", "7"])).is_err());
        // SHA-1 has no reversed-only variant.
        let a = args(&["analyze", "--algo", "sha1", "--variant", "reversed"]);
        assert!(run("analyze", &a).is_err());
    }

    #[test]
    fn analyze_other_algos() {
        assert!(run("analyze", &args(&["analyze", "--algo", "sha1"])).is_ok());
        assert!(run("analyze", &args(&["analyze", "--algo", "ntlm"])).is_ok());
        // NTLM naive on cc 3.5 leaves funnel shifts on the table.
        let a = args(&["analyze", "--algo", "ntlm", "--variant", "naive", "--deny", "warnings"]);
        assert!(run("analyze", &a).is_err());
    }
}
