//! Subcommand implementations, one module per command family, plus the
//! flag-grammar helpers they share. The dispatch table below is the
//! whole public surface: `main` hands every invocation to [`run`].

mod analyze;
mod bench;
mod cluster;
mod crack;
mod job;
mod misc;
mod observe;
mod report;
mod verify;

use std::sync::Arc;

use crate::args::Args;
use crate::log::{Level, Logger};
use eks_engine::{Retune, SchedPolicy};
use eks_hashes::HashAlgo;
use eks_keyspace::Charset;
use eks_telemetry::{JobsFn, LivePlane, MetricsServer, Telemetry};

/// Dispatch a subcommand.
pub fn run(command: &str, args: &Args) -> Result<(), String> {
    match command {
        "crack" => crack::cmd_crack(args),
        "hash" => misc::cmd_hash(args),
        "mine" => misc::cmd_mine(args),
        "analyze" => analyze::cmd_analyze(args),
        "verify" => verify::cmd_verify(args),
        "devices" => misc::cmd_devices(),
        "disasm" => misc::cmd_disasm(args),
        "profile" => misc::cmd_profile(args),
        "audit" => misc::cmd_audit(args),
        "strength" => cluster::cmd_strength(args),
        "simulate" => cluster::cmd_simulate(args),
        "cluster" => cluster::cmd_cluster(args),
        "report" => report::cmd_report(args),
        "tune" => cluster::cmd_tune(args),
        "bench" => bench::cmd_bench(args),
        "job" => job::cmd_job(args),
        "serve" => job::cmd_serve(args),
        "top" => observe::cmd_top(args),
        "postmortem" => observe::cmd_postmortem(args),
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

fn print_help() {
    println!("eks — exhaustive key search on (simulated) clusters of GPUs");
    println!();
    println!("commands:");
    println!("  crack    --algo md5|sha1|ntlm --digest HEX [--charset lower|upper|digits|alpha|alnum|print]");
    println!("           [--min N] [--max N] [--threads N] [--all] [--salt-prefix S] [--salt-suffix S]");
    println!("           [--mask \"?u?l?l?d?d\"] [--words w1,w2,... [--suffix-digits N]]");
    println!("           [--batch] [--lanes scalar|8|16]   lane-batched hashing (default: 8 lanes;");
    println!("           mask/hybrid/salted searches always use the scalar path)");
    println!("           [--backend scalar|lanes8|lanes16|simd|auto|simgpu [--device 660]]");
    println!("           pick the engine backend explicitly: simd runs the explicit");
    println!("           AVX2/AVX-512/NEON kernels on the widest ISA the CPU reports");
    println!("           ([--isa avx2|avx512|neon] forces one; unavailable ISAs are a");
    println!("           friendly error), auto tunes every CPU implementation per");
    println!("           algorithm and runs the winner, simgpu drives a simulated");
    println!("           device's kernel");
    println!("           [--sched static|queue|steal]   worker scheduling (default: steal —");
    println!("           per-worker interval deques with steal-half rebalancing)");
    println!("           [--chunk N]   chunk size: the fixed pop in queue mode, the guided");
    println!("           floor otherwise (default: derived from --threads; must be >= 1)");
    println!("           [--retune [--retune-interval N]]   closed-loop adaptive rebalancing:");
    println!("           live EWMA rate estimates per worker, a drift check every N fleet");
    println!("           chunks (default 8), and a deque re-scatter when the estimated");
    println!("           time-to-drain divergence exceeds 25%; off by default — without it");
    println!("           the static tuned-rate accounting is reproduced byte-for-byte");
    println!("           [--stats]   print the per-worker scheduler table (tested, steals,");
    println!("           splits, busy/idle ms, util%, keys/s) after the search");
    println!("           [--metrics-out F.prom] [--trace-out F.jsonl]   write telemetry");
    println!("           artifacts; [--progress] periodic keys/s + ETA + %-keyspace line;");
    println!("           [--listen-metrics HOST:PORT]   live HTTP exposition for the run:");
    println!("           /metrics (Prometheus text), /healthz, /jobs — scrape mid-run or");
    println!("           point `eks top` at it (port 0 picks an ephemeral port, printed)");
    println!("           [--flight F.json]   arm the flight recorder: a panic dumps the");
    println!("           recent telemetry for `eks postmortem` to replay");
    println!("           [--quiet|--verbose]   logging level");
    println!("  hash     --algo md5|sha1 PLAINTEXT       compute a digest");
    println!("  mine     [--difficulty BITS] [--header STR] [--threads N]");
    println!("  analyze  [--algo md5|sha1|ntlm] [--variant optimized|naive|reversed]");
    println!("           [--json] [--deny warnings] [--tolerance 0.12]");
    println!("           static analysis: dataflow + peephole lints, register pressure,");
    println!("           Table III-VI budget gate; non-zero exit on deny-level findings");
    println!("  verify   [--workers N] [--intervals N] [--depth N] [--json]");
    println!("           [--deny violations|warnings] [--mutate NAME]");
    println!("           bounded exhaustive model checking of the work-stealing scheduler");
    println!("           protocol (exactly-once, no-lost-lease, lowest-id merge, the");
    println!("           cancellation bound) plus grid-IR soundness passes (bounds,");
    println!("           must-defined, barrier divergence) over every shipped kernel");
    println!("           wrapper; prints per-check state/transition counts and a");
    println!("           counterexample trace on violation (non-zero exit). --mutate runs");
    println!("           a seeded-bug model instead: drop-lease, double-count,");
    println!("           merge-highest, ignore-cancel, unguarded-store, uninit-read,");
    println!("           divergent-barrier");
    println!("  devices                                  the paper's GPU catalog (Table VII)");
    println!("  disasm   [--algo md5|sha1] [--cc 3.0] [--tool ours|barswf|cryptohaze]");
    println!("  profile  [--algo md5|sha1|ntlm] [--device 660]   simulated profiler report");
    println!("  audit    --digests h1,h2,... [--accounts a,b,...] [--charset ...] [--max N]");
    println!("  strength PASSWORD [--algo md5] [--charset alnum] [--max N]   time-to-crack");
    println!("  simulate [--keys N] [--algo md5|sha1]    whole-network DES (Table IX)");
    println!("           [--topology \"A(660) -> B(550Ti, cpu:4)\"]   custom cluster");
    println!("  cluster  --digest HEX [--algo md5|sha1|ntlm] [--charset ...] [--min N] [--max N]");
    println!("           [--topology \"A(660, cpu:2)\"] [--all]   really crack across a");
    println!("           heterogeneous cluster of CPU + simulated-GPU backends");
    println!("           [--sched static|queue|steal]   leaf scheduling (default: static —");
    println!("           rate-proportional shares; steal lets drained leaves rebalance)");
    println!("           [--retune [--retune-interval N]]   feed live per-leaf rates back");
    println!("           into the schedule and re-scatter on drift (see crack --retune)");
    println!("           [--metrics-out F.prom] [--trace-out F.jsonl] [--listen-metrics");
    println!("           HOST:PORT] [--quiet|--verbose]");
    println!("  report   --metrics F.prom [--trace F.jsonl]   render a run report from");
    println!("           telemetry artifacts: per-worker utilization, tuned rates, scan");
    println!("           p50/p95/p99, the paper's SIII cost-model phases, and network");
    println!("           efficiency vs 85-90%");
    println!("  tune     [--threads N]                   tune devices and this host's CPU");
    println!("  bench    [--json FILE]                   tune every CPU backend on this host");
    println!("           and print the per-(backend, algo) rates, the detected CPU");
    println!("           features, and the selected ISA; --json writes the schema-3");
    println!("           host-tuning report (cpu_features, rates, per-algo auto choice)");
    println!("  job      --spool DIR submit|list|status|cancel|pause|resume|run");
    println!("           submit --algo md5|sha1|ntlm --digest HEX [--name S] [--charset ...]");
    println!("           [--min N] [--max N] [--priority N] [--first-hit]   enqueue a job");
    println!("           list                                    one line per spooled job");
    println!("           status <id>                             full record of one job");
    println!("           cancel|pause|resume <id>                lifecycle transitions");
    println!("           run [--threads N] [--topology ...] [--round-keys N] [--retune]");
    println!("           drive the fair-share scheduler until every runnable job completes;");
    println!("           --retune tracks live fleet throughput, re-splitting leases and");
    println!("           scaling the round budget to real rates; safe to");
    println!("           kill at any instant — completed leases are checkpointed and a");
    println!("           restart resumes with no rescanned and no skipped keys");
    println!("           [--metrics-out F.prom] [--trace-out F.jsonl]   per-job telemetry");
    println!("  serve    --spool DIR [--addr HOST:PORT] [--threads N] [--round-keys N]");
    println!("           [--no-run]   the job service as a JSON-lines TCP protocol:");
    println!("           one request object per line ({{\"cmd\":\"submit\"|\"list\"|\"status\"|");
    println!("           \"cancel\"|\"pause\"|\"resume\"|\"shutdown\"}}), one response per");
    println!("           line; a scheduler thread drives the spool unless --no-run;");
    println!("           [--listen-metrics HOST:PORT]   HTTP exposition alongside the");
    println!("           line protocol: /metrics, /healthz and a /jobs spool snapshot");
    println!("  top      --addr HOST:PORT [--interval MS] [--once]   live terminal");
    println!("           dashboard over a run's --listen-metrics endpoint: per-worker");
    println!("           rates vs tuned, per-job progress, efficiency vs the 85-90%");
    println!("           band, and active anomaly verdicts; --once prints one frame");
    println!("  postmortem <flight.json>   replay a flight-recorder dump: panic reason");
    println!("           and location, final per-worker accounting, anomaly verdicts,");
    println!("           and the last seconds of the trace as a timeline");
}

fn parse_algo(args: &Args) -> Result<HashAlgo, String> {
    let spec = args.get_or("algo", "md5");
    eks_jobs::parse_algo_key(spec).ok_or_else(|| {
        format!("unsupported --algo {spec:?} (md5, sha1, ntlm or md5xN for iterated MD5)")
    })
}

fn parse_charset(args: &Args) -> Result<Charset, String> {
    Ok(match args.get_or("charset", "lower") {
        "lower" => Charset::lowercase(),
        "upper" => Charset::uppercase(),
        "digits" => Charset::digits(),
        "alpha" => Charset::alpha(),
        "alnum" => Charset::alphanumeric(),
        "print" => Charset::printable_ascii(),
        custom => Charset::from_bytes(custom.as_bytes())
            .map_err(|e| format!("invalid custom charset: {e}"))?,
    })
}

/// `--sched static|queue|steal` picks the worker scheduling policy;
/// `default` is the subcommand's policy when the flag is absent.
fn parse_sched(args: &Args, default: SchedPolicy) -> Result<SchedPolicy, String> {
    match args.get("sched") {
        None => Ok(default),
        Some(s) => SchedPolicy::parse(s)
            .ok_or(format!("unsupported --sched {s:?} (static, queue or steal)")),
    }
}

/// `--chunk N` overrides the scheduler's chunk size (the fixed pop in
/// queue mode, the guided floor otherwise). Zero is rejected here so it
/// surfaces as a usage error instead of an engine panic.
fn parse_chunk(args: &Args) -> Result<Option<u64>, String> {
    let Some(s) = args.get("chunk") else { return Ok(None) };
    let chunk: u64 = s.parse().map_err(|_| format!("invalid --chunk {s:?}"))?;
    if chunk == 0 {
        return Err("--chunk must be at least 1".into());
    }
    Ok(Some(chunk))
}

/// `--retune` switches on closed-loop adaptive rebalancing (live EWMA
/// rate estimates feeding drift checks and re-scatters);
/// `--retune-interval N` sets the fleet-wide chunk count between drift
/// checks and implies `--retune`. Absent both, `None` keeps the
/// deterministic static (tuned-rate) accounting byte-for-byte.
fn parse_retune(args: &Args) -> Result<Option<Retune>, String> {
    let interval = match args.get("retune-interval") {
        None => None,
        Some(s) => {
            let n: u64 = s.parse().map_err(|_| format!("invalid --retune-interval {s:?}"))?;
            if n == 0 {
                return Err("--retune-interval must be at least 1".into());
            }
            Some(n)
        }
    };
    if !args.has("retune") && interval.is_none() {
        return Ok(None);
    }
    let mut retune = Retune::default();
    if let Some(every) = interval {
        retune.every_chunks = every;
    }
    Ok(Some(retune))
}

/// Resolve the observability options shared by `crack`, `cluster` and
/// the job commands: the registry is enabled whenever any telemetry
/// flag asks for output (`--metrics-out`, `--trace-out`, `--progress`,
/// `--listen-metrics`, `--flight`), otherwise the disabled handle keeps
/// the hot path untouched. An enabled handle also gets a [`LivePlane`]
/// attached — sliding-window aggregation plus the anomaly detector —
/// driven from the dispatch/round/lease hot paths via
/// `Telemetry::observe_plane`. The logger level comes from
/// `--quiet`/`--verbose`.
fn parse_telemetry(args: &Args) -> Result<(Telemetry, Logger), String> {
    let wants = args.has("metrics-out")
        || args.has("trace-out")
        || args.has("progress")
        || args.has("listen-metrics")
        || args.has("flight");
    let telemetry = if wants { Telemetry::enabled() } else { Telemetry::disabled() };
    telemetry.attach_plane(Arc::new(LivePlane::with_defaults()));
    let level = Level::from_flags(args.has("quiet"), args.has("verbose"))?;
    Ok((telemetry.clone(), Logger::new(level, telemetry)))
}

/// `--listen-metrics HOST:PORT` (port 0 for ephemeral) serves the live
/// exposition endpoint — `/metrics`, `/healthz`, `/jobs` — for the rest
/// of the run. The bound address is printed so scripts scraping an
/// ephemeral port can discover it. Returns the server handle; keep it
/// alive for the duration of the run.
fn spawn_metrics_server(
    args: &Args,
    telemetry: &Telemetry,
    jobs: Option<JobsFn>,
) -> Result<Option<MetricsServer>, String> {
    let Some(addr) = args.get("listen-metrics") else { return Ok(None) };
    let server = MetricsServer::spawn(addr, telemetry.clone(), jobs)
        .map_err(|e| format!("--listen-metrics: {e}"))?;
    println!("metrics listening on http://{}", server.local_addr());
    Ok(Some(server))
}

/// `--flight PATH` arms the flight recorder: a panic anywhere in the
/// run dumps the recent telemetry (schema-stamped `flight.json`) to
/// PATH for `eks postmortem` to replay.
fn arm_flight_recorder(args: &Args, telemetry: &Telemetry) {
    if let Some(path) = args.get("flight") {
        eks_telemetry::install_panic_hook(
            telemetry.clone(),
            telemetry.plane(),
            eks_telemetry::FlightConfig::new(path),
        );
    }
}

/// Write the `--metrics-out` (Prometheus text exposition) and
/// `--trace-out` (JSONL trace) artifacts after a run.
fn write_artifacts(args: &Args, telemetry: &Telemetry, log: &Logger) -> Result<(), String> {
    if let Some(path) = args.get("metrics-out") {
        std::fs::write(path, telemetry.render_prometheus())
            .map_err(|e| format!("cannot write --metrics-out {path:?}: {e}"))?;
        log.verbose(format!("wrote metrics exposition to {path}"));
    }
    if let Some(path) = args.get("trace-out") {
        std::fs::write(path, telemetry.trace_jsonl())
            .map_err(|e| format!("cannot write --trace-out {path:?}: {e}"))?;
        log.verbose(format!("wrote trace JSONL to {path}"));
    }
    Ok(())
}

/// `--threads N` with `N >= 1`.
fn parse_threads(args: &Args, default: usize) -> Result<usize, String> {
    let threads: usize = args.get_parse_or("threads", default)?;
    if threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    Ok(threads)
}

#[cfg(test)]
mod tests {
    use super::run;
    use crate::args::Args;

    fn args(s: &[&str]) -> Args {
        Args::parse(s.iter().map(|x| x.to_string())).unwrap()
    }

    #[test]
    fn informational_commands() {
        assert!(run("devices", &args(&["devices"])).is_ok());
        assert!(run("help", &args(&["help"])).is_ok());
        let a = args(&["simulate", "--keys", "1e9"]);
        assert!(run("simulate", &a).is_ok());
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run("frobnicate", &args(&["frobnicate"])).is_err());
    }
}
