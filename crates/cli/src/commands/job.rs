//! `eks job` — the multi-tenant job service spool — and `eks serve`,
//! the same service as a JSON-lines TCP protocol.
//!
//! Every subcommand operates on one `--spool` directory. `submit`
//! enqueues a schema-stamped record, `run` drives the fair-share
//! scheduler until the spool drains (safe to SIGKILL: completed leases
//! are checkpointed atomically, a restart resumes with no rescanned and
//! no skipped keys), and `serve` exposes submit/status/list/cancel over
//! a `std::net::TcpListener` — one request object per line, one
//! response per line — with a scheduler thread draining the spool in
//! the background.

use std::io::{BufRead, BufReader, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use crate::args::Args;
use eks_cracker::{cpu_backend, Lanes};
use eks_engine::checkpoint::escape_json;
use eks_hashes::{from_hex, HashAlgo};
use eks_jobs::{
    Fleet, FleetMember, JobId, JobRecord, JobService, JobSpec, JobState, JobStore, ServiceConfig,
};
use eks_keyspace::Order;
use eks_telemetry::parse::{parse_json, Json};
use eks_telemetry::{names, Telemetry};

use super::{
    parse_algo, parse_charset, parse_telemetry, parse_threads, spawn_metrics_server,
    write_artifacts,
};

/// Dispatch `eks job <subcommand>`.
pub(super) fn cmd_job(args: &Args) -> Result<(), String> {
    let sub = args.positional(1).ok_or(
        "job requires a subcommand: submit, list, status, cancel, pause, resume or run",
    )?;
    let spool = args.get("spool").ok_or("job requires --spool <dir>")?;
    let store = JobStore::open(spool).map_err(|e| e.to_string())?;
    match sub {
        "submit" => job_submit(&store, args),
        "list" => job_list(&store),
        "status" => job_status(&store, args),
        "cancel" => job_transition(&store, args, JobState::Cancelled),
        "pause" => job_transition(&store, args, JobState::Paused),
        "resume" => job_transition(&store, args, JobState::Running),
        "run" => job_run(store, args),
        other => Err(format!(
            "unknown job subcommand {other:?} (submit, list, status, cancel, pause, resume, run)"
        )),
    }
}

/// The job id positional of `status`/`cancel`/`pause`/`resume`.
fn job_id_arg(args: &Args) -> Result<JobId, String> {
    let raw = args.positional(2).ok_or("expected a job id (e.g. job-1 or 1)")?;
    JobId::parse(raw).ok_or(format!("invalid job id {raw:?} (expected job-<n> or <n>)"))
}

fn job_submit(store: &JobStore, args: &Args) -> Result<(), String> {
    let algo = parse_algo(args)?;
    let digest_hex = args.get("digest").ok_or("job submit requires --digest <hex>")?;
    let digest = from_hex(digest_hex).ok_or("digest is not valid hex")?;
    let charset = parse_charset(args)?;
    let spec = JobSpec {
        name: args.get_or("name", "job").to_string(),
        algo,
        digest,
        charset: charset.symbols().to_vec(),
        min_len: args.get_parse_or("min", 1)?,
        max_len: args.get_parse_or("max", 4)?,
        order: Order::FirstCharFastest,
        priority: args.get_parse_or("priority", 1u32)?,
        first_hit_only: args.has("first-hit"),
    };
    let rec = store.submit(spec).map_err(|e| e.to_string())?;
    println!(
        "submitted {} ({:?}: {} {} keys, priority {})",
        rec.id,
        rec.spec.name,
        rec.frontier.full.len,
        rec.spec.algo.name(),
        rec.spec.priority
    );
    Ok(())
}

/// Percent of the job's keyspace whose coverage is already durable.
fn progress_pct(rec: &JobRecord) -> f64 {
    if rec.frontier.full.len == 0 {
        100.0
    } else {
        100.0 * rec.frontier.consumed() as f64 / rec.frontier.full.len as f64
    }
}

fn job_list(store: &JobStore) -> Result<(), String> {
    let records = store.list().map_err(|e| e.to_string())?;
    println!(
        "{:<8}{:<16}{:<11}{:>9}{:>16}{:>6}{:>10}",
        "id", "name", "state", "priority", "tested", "hits", "progress"
    );
    for rec in records {
        println!(
            "{:<8}{:<16}{:<11}{:>9}{:>16}{:>6}{:>9.1}%",
            rec.id.to_string(),
            rec.spec.name,
            rec.state.name(),
            rec.spec.priority,
            rec.tested,
            rec.hits.len(),
            progress_pct(&rec)
        );
    }
    Ok(())
}

fn job_status(store: &JobStore, args: &Args) -> Result<(), String> {
    let id = job_id_arg(args)?;
    // A missing or corrupt record surfaces the friendly `JobError`
    // message (with the offending file path) as a non-zero exit.
    let rec = store.load(id).map_err(|e| e.to_string())?;
    println!("{}  {:?}", rec.id, rec.spec.name);
    println!("  state     : {}", rec.state.name());
    println!(
        "  spec      : {} over {:?} lengths {}..={}, priority {}{}",
        rec.spec.algo.name(),
        String::from_utf8_lossy(&rec.spec.charset),
        rec.spec.min_len,
        rec.spec.max_len,
        rec.spec.priority,
        if rec.spec.first_hit_only { ", first hit only" } else { "" }
    );
    println!(
        "  progress  : {:.1}% ({} of {} keys durable, {} pending interval(s))",
        progress_pct(&rec),
        rec.frontier.consumed(),
        rec.frontier.full.len,
        rec.frontier.pending.len()
    );
    println!("  tested    : {}", rec.tested);
    for h in &rec.hits {
        println!("  hit       : \"{}\" (identifier {})", String::from_utf8_lossy(&h.key), h.id);
    }
    Ok(())
}

fn job_transition(store: &JobStore, args: &Args, to: JobState) -> Result<(), String> {
    let id = job_id_arg(args)?;
    let rec = store.set_state(id, to).map_err(|e| e.to_string())?;
    println!("{} is now {}", rec.id, rec.state.name());
    Ok(())
}

/// The spool snapshot both `/jobs` (HTTP exposition) and the line
/// protocol's `list` answer with, so `eks top` and protocol clients
/// read one schema.
fn jobs_list_json(store: &JobStore) -> Result<String, String> {
    let records = store.list().map_err(|e| e.to_string())?;
    let body: Vec<String> = records.iter().map(JobRecord::to_json).collect();
    Ok(format!("{{\"ok\":true,\"jobs\":[{}]}}", body.join(",")))
}

/// A `/jobs` supplier closing over its own clone of the spool handle;
/// a corrupt spool answers with an error document, not a hung scrape.
fn jobs_fn(store: &JobStore) -> eks_telemetry::JobsFn {
    let store = store.clone();
    Arc::new(move || {
        jobs_list_json(&store)
            .unwrap_or_else(|e| format!("{{\"ok\":false,\"error\":\"{}\"}}", escape_json(&e)))
    })
}

/// The default fleet for `job run`/`serve`: `threads` lane-batched CPU
/// workers with equal scatter weights.
fn host_fleet(threads: usize) -> Fleet {
    let members = (0..threads)
        .map(|i| FleetMember {
            label: format!("host/cpu{i} [lanes8]"),
            weight: 1.0,
            backend: cpu_backend(Lanes::L8),
        })
        .collect();
    Fleet::new(members)
}

/// `--round-keys N`: the fair-share round budget, also the checkpoint
/// granularity. Zero is a usage error, not an engine panic.
fn parse_round_keys(args: &Args) -> Result<u128, String> {
    let round_keys: u128 = args.get_parse_or("round-keys", 1u128 << 16)?;
    if round_keys == 0 {
        return Err("--round-keys must be at least 1".into());
    }
    Ok(round_keys)
}

fn job_run(store: JobStore, args: &Args) -> Result<(), String> {
    let threads = parse_threads(args, 4)?;
    let round_keys = parse_round_keys(args)?;
    let retune = super::parse_retune(args)?.is_some();
    let (telemetry, log) = parse_telemetry(args)?;
    let _metrics_server = spawn_metrics_server(args, &telemetry, Some(jobs_fn(&store)))?;
    let fleet = match args.get("topology") {
        Some(t) => eks_cluster::plan_job_fleet(
            &eks_cluster::parse_topology(t, 0.0)?,
            HashAlgo::Md5,
            &telemetry,
        ),
        None => host_fleet(threads),
    };
    let service = JobService::new(
        store,
        ServiceConfig { round_keys, retune, ..ServiceConfig::default() },
    )
    .with_telemetry(telemetry.clone());
    let run_span = telemetry.span(names::SPAN_RUN);
    let rounds = service.run_until_idle(&fleet).map_err(|e| e.to_string())?;
    run_span.finish();
    log.info(format!("{rounds} scheduling round(s) over {} fleet member(s)", fleet.len()));
    for rec in service.store().list().map_err(|e| e.to_string())? {
        println!(
            "{}  {:<16} {:<10} tested {} ({:.1}%), {} hit(s)",
            rec.id,
            rec.spec.name,
            rec.state.name(),
            rec.tested,
            progress_pct(&rec),
            rec.hits.len()
        );
        for h in &rec.hits {
            println!(
                "  FOUND: \"{}\" (identifier {})",
                String::from_utf8_lossy(&h.key),
                h.id
            );
        }
    }
    write_artifacts(args, &telemetry, &log)?;
    Ok(())
}

/// State shared between the accept loop and the scheduler thread. The
/// gate serializes spool mutations (requests) against scheduler rounds,
/// so a cancel never races a round's post-lease save.
struct Shared {
    store: JobStore,
    gate: Mutex<()>,
    stop: AtomicBool,
}

pub(super) fn cmd_serve(args: &Args) -> Result<(), String> {
    let spool = args.get("spool").ok_or("serve requires --spool <dir>")?;
    let addr = args.get_or("addr", "127.0.0.1:4650");
    let threads = parse_threads(args, 2)?;
    let round_keys = parse_round_keys(args)?;
    let store = JobStore::open(spool).map_err(|e| e.to_string())?;
    let (telemetry, _log) = parse_telemetry(args)?;
    let _metrics_server = spawn_metrics_server(args, &telemetry, Some(jobs_fn(&store)))?;
    let listener = TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;
    println!("serving jobs on {local} (spool {})", store.spool().display());
    serve(listener, store, threads, round_keys, !args.has("no-run"), telemetry)
}

/// The accept loop: connections are handled one at a time (the protocol
/// is line-oriented and short-lived), a scheduler thread drains the
/// spool concurrently, and a `shutdown` request stops both.
fn serve(
    listener: TcpListener,
    store: JobStore,
    threads: usize,
    round_keys: u128,
    run_jobs: bool,
    telemetry: Telemetry,
) -> Result<(), String> {
    let shared = Arc::new(Shared { store, gate: Mutex::new(()), stop: AtomicBool::new(false) });
    let runner = run_jobs.then(|| {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            let fleet = host_fleet(threads);
            let service = JobService::new(
                shared.store.clone(),
                ServiceConfig { round_keys, ..ServiceConfig::default() },
            )
            .with_telemetry(telemetry);
            while !shared.stop.load(Ordering::Relaxed) {
                let idle = {
                    let _g = shared.gate.lock().expect("serve gate");
                    // A corrupt record idles the scheduler; requests
                    // (status naming the bad file) keep being served.
                    service.round(&fleet).map(|r| r.is_idle()).unwrap_or(true)
                };
                if idle {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
            }
        })
    });
    for conn in listener.incoming() {
        let Ok(mut conn) = conn else { continue };
        handle_conn(&mut conn, &shared);
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
    }
    if let Some(handle) = runner {
        let _ = handle.join();
    }
    Ok(())
}

fn handle_conn(conn: &mut TcpStream, shared: &Shared) {
    let Ok(peer) = conn.try_clone() else { return };
    let reader = BufReader::new(peer);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = match respond(shared, &line) {
            Ok(body) => body,
            Err(e) => format!("{{\"error\":\"{}\"}}", escape_json(&e)),
        };
        if writeln!(conn, "{response}").is_err() {
            break;
        }
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
    }
}

/// A request's `"id"` member: a number or a `"job-<n>"` string.
fn req_id(req: &Json) -> Result<JobId, String> {
    match req.get("id") {
        Some(Json::Num(n)) if *n >= 1.0 && n.fract() == 0.0 => Ok(JobId(*n as u64)),
        Some(Json::Str(s)) => JobId::parse(s).ok_or(format!("invalid job id {s:?}")),
        _ => Err("request needs an \"id\" (number or \"job-<n>\")".into()),
    }
}

fn str_member<'a>(req: &'a Json, key: &str) -> Option<&'a str> {
    match req.get(key) {
        Some(Json::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn num_member(req: &Json, key: &str, default: u64) -> Result<u64, String> {
    match req.get(key) {
        None => Ok(default),
        Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as u64),
        Some(_) => Err(format!("\"{key}\" must be a non-negative integer")),
    }
}

/// Build a [`JobSpec`] from a `submit` request object. Validation
/// proper (digest length, charset, lengths) happens in
/// [`JobRecord::new`], so the errors match the CLI path exactly.
fn spec_from_json(req: &Json) -> Result<JobSpec, String> {
    let algo = match str_member(req, "algo").unwrap_or("md5") {
        "md5" => HashAlgo::Md5,
        "sha1" => HashAlgo::Sha1,
        "ntlm" => HashAlgo::Ntlm,
        other => return Err(format!("unsupported algo {other:?} (md5, sha1 or ntlm)")),
    };
    let digest_hex = str_member(req, "digest").ok_or("submit needs a \"digest\" hex string")?;
    let digest = from_hex(digest_hex).ok_or("digest is not valid hex")?;
    let order = match str_member(req, "order").unwrap_or("first") {
        "first" => Order::FirstCharFastest,
        "last" => Order::LastCharFastest,
        other => return Err(format!("unsupported order {other:?} (first or last)")),
    };
    Ok(JobSpec {
        name: str_member(req, "name").unwrap_or("job").to_string(),
        algo,
        digest,
        charset: str_member(req, "charset")
            .unwrap_or("abcdefghijklmnopqrstuvwxyz")
            .as_bytes()
            .to_vec(),
        min_len: u32::try_from(num_member(req, "min_len", 1)?).map_err(|_| "min_len too large")?,
        max_len: u32::try_from(num_member(req, "max_len", 4)?).map_err(|_| "max_len too large")?,
        order,
        priority: u32::try_from(num_member(req, "priority", 1)?)
            .map_err(|_| "priority too large")?,
        first_hit_only: matches!(req.get("first_hit"), Some(Json::Bool(true))),
    })
}

/// Handle one request line; the response is one JSON object. Successful
/// job operations answer with the job record document itself (the same
/// schema the spool stores), `list` wraps every record in an array.
fn respond(shared: &Shared, line: &str) -> Result<String, String> {
    let req = parse_json(line).map_err(|e| format!("bad request: {e}"))?;
    let cmd = str_member(&req, "cmd").ok_or("request needs a \"cmd\" string")?;
    let _gate = shared.gate.lock().expect("serve gate");
    match cmd {
        "submit" => {
            let rec = shared.store.submit(spec_from_json(&req)?).map_err(|e| e.to_string())?;
            Ok(rec.to_json())
        }
        "list" => jobs_list_json(&shared.store),
        "status" => {
            Ok(shared.store.load(req_id(&req)?).map_err(|e| e.to_string())?.to_json())
        }
        "cancel" | "pause" | "resume" => {
            let to = match cmd {
                "cancel" => JobState::Cancelled,
                "pause" => JobState::Paused,
                _ => JobState::Running,
            };
            let rec =
                shared.store.set_state(req_id(&req)?, to).map_err(|e| e.to_string())?;
            Ok(rec.to_json())
        }
        "shutdown" => {
            shared.stop.store(true, Ordering::Relaxed);
            Ok("{\"ok\":true,\"shutdown\":true}".to_string())
        }
        other => Err(format!(
            "unknown cmd {other:?} (submit, list, status, cancel, pause, resume, shutdown)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::run;
    use eks_hashes::to_hex;
    use eks_telemetry::parse_prometheus;
    use std::path::PathBuf;

    fn args(s: &[&str]) -> Args {
        Args::parse(s.iter().map(|x| x.to_string())).unwrap()
    }

    fn tmp_spool(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("eks-cli-job-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn submit_list_status_cancel_round_trip() {
        let dir = tmp_spool("lifecycle");
        let spool = dir.to_str().unwrap();
        let digest = to_hex(&HashAlgo::Md5.hash(b"cab"));
        let a = args(&[
            "job", "submit", "--spool", spool, "--digest", &digest, "--max", "3", "--name",
            "first",
        ]);
        assert!(run("job", &a).is_ok());
        assert!(run("job", &args(&["job", "list", "--spool", spool])).is_ok());
        assert!(run("job", &args(&["job", "status", "job-1", "--spool", spool])).is_ok());
        assert!(run("job", &args(&["job", "pause", "1", "--spool", spool])).is_ok());
        assert!(run("job", &args(&["job", "resume", "1", "--spool", spool])).is_ok());
        assert!(run("job", &args(&["job", "cancel", "job-1", "--spool", spool])).is_ok());
        // Terminal: pausing a cancelled job is a friendly error.
        assert!(run("job", &args(&["job", "pause", "1", "--spool", spool])).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn status_of_missing_or_corrupt_jobs_is_a_friendly_error() {
        let dir = tmp_spool("corrupt");
        let spool = dir.to_str().unwrap();
        std::fs::create_dir_all(&dir).unwrap();
        let missing = run("job", &args(&["job", "status", "9", "--spool", spool]))
            .expect_err("missing job");
        assert!(missing.contains("job-9"), "{missing}");
        std::fs::write(dir.join("job-3.json"), "{truncated").unwrap();
        let corrupt = run("job", &args(&["job", "status", "3", "--spool", spool]))
            .expect_err("corrupt record");
        assert!(corrupt.contains("job-3.json"), "error names the file: {corrupt}");
        let bad_id = run("job", &args(&["job", "status", "banana", "--spool", spool]))
            .expect_err("bad id");
        assert!(bad_id.contains("banana"), "{bad_id}");
        assert!(run("job", &args(&["job", "frobnicate", "--spool", spool])).is_err());
        assert!(run("job", &args(&["job", "submit", "--spool", spool])).is_err(), "no digest");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn job_run_drains_the_spool_and_reconciles_per_job_telemetry() {
        let dir = tmp_spool("run");
        let spool = dir.to_str().unwrap();
        let metrics = dir.join("m.prom");
        let d1 = to_hex(&HashAlgo::Md5.hash(b"cab"));
        let d2 = to_hex(&HashAlgo::Md5.hash(b"zzz"));
        for (digest, name) in [(&d1, "alpha"), (&d2, "beta")] {
            let a = args(&[
                "job", "submit", "--spool", spool, "--digest", digest, "--max", "3", "--name",
                name,
            ]);
            assert!(run("job", &a).is_ok());
        }
        let a = args(&[
            "job", "run", "--spool", spool, "--threads", "2", "--round-keys", "8192",
            "--metrics-out", metrics.to_str().unwrap(),
        ]);
        assert!(run("job", &a).is_ok());

        let store = JobStore::open(spool).unwrap();
        let size: u128 = 26 + 26 * 26 + 26 * 26 * 26;
        for rec in store.list().unwrap() {
            assert_eq!(rec.state, JobState::Completed);
            assert_eq!(rec.tested, size, "exactly-once coverage for {}", rec.id);
            assert_eq!(rec.hits.len(), 1);
        }

        // The per-job carve-out must reconcile exactly against the
        // shared per-worker counters: both are flushed from the same
        // dispatch reports.
        let samples = parse_prometheus(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
        let sum_of = |name: &str| -> f64 {
            samples.iter().filter(|s| s.name == name).map(|s| s.value).sum()
        };
        let per_job = sum_of("eks_job_keys_tested_total");
        let per_worker = sum_of("eks_keys_tested_total");
        assert_eq!(per_job, per_worker, "job totals reconcile with worker totals");
        assert_eq!(per_job, (2 * size) as f64);
        let jobs_seen: Vec<_> = samples
            .iter()
            .filter(|s| s.name == "eks_job_keys_tested_total")
            .filter_map(|s| s.label("job").map(str::to_string))
            .collect();
        assert!(jobs_seen.contains(&"job-1".to_string()), "{jobs_seen:?}");
        assert!(jobs_seen.contains(&"job-2".to_string()), "{jobs_seen:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn job_run_rejects_zero_round_keys() {
        let dir = tmp_spool("zero");
        let spool = dir.to_str().unwrap();
        let a = args(&["job", "run", "--spool", spool, "--round-keys", "0"]);
        let err = run("job", &a).expect_err("zero budget");
        assert!(err.contains("--round-keys"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_speaks_the_json_lines_protocol_end_to_end() {
        use std::io::{BufRead, BufReader, Write};
        let dir = tmp_spool("serve");
        let store = JobStore::open(&dir).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server =
            std::thread::spawn(move || serve(listener, store, 2, 4096, true, Telemetry::disabled()));

        let mut conn = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut ask = |req: &str| -> String {
            writeln!(conn, "{req}").unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            line
        };

        let digest = to_hex(&HashAlgo::Md5.hash(b"bc"));
        let resp = ask(&format!(
            "{{\"cmd\":\"submit\",\"digest\":\"{digest}\",\"charset\":\"abcd\",\
             \"max_len\":2,\"name\":\"tiny\"}}"
        ));
        assert!(resp.contains("\"id\":1"), "{resp}");
        assert!(resp.contains("\"name\":\"tiny\""), "{resp}");

        // The scheduler thread drains the 20-key job; poll until done.
        let mut completed = false;
        for _ in 0..500 {
            let s = ask("{\"cmd\":\"status\",\"id\":1}");
            if s.contains("\"state\":\"completed\"") {
                completed = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert!(completed, "job should complete under the serve runner");

        let listing = ask("{\"cmd\":\"list\"}");
        assert!(listing.starts_with("{\"ok\":true,\"jobs\":["), "{listing}");
        let err = ask("{\"cmd\":\"status\",\"id\":7}");
        assert!(err.contains("\"error\""), "{err}");
        let garbage = ask("not json");
        assert!(garbage.contains("bad request"), "{garbage}");

        let bye = ask("{\"cmd\":\"shutdown\"}");
        assert!(bye.contains("\"shutdown\":true"), "{bye}");
        drop(conn);
        server.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
