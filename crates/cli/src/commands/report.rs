//! `eks report` — render a run report from saved telemetry artifacts.

use crate::args::Args;
use eks_telemetry::{parse_prometheus, parse_trace_jsonl, report::render_report};

/// `eks report --metrics <file.prom> [--trace <file.jsonl>]`: parse the
/// artifacts a `crack`/`cluster` run wrote and render the run report —
/// per-worker utilization, per-device tuned rates, the paper's SIII
/// cost-model phases, and the measured network efficiency next to the
/// 85-90% band the paper reports.
pub(super) fn cmd_report(args: &Args) -> Result<(), String> {
    let metrics_path = args.get("metrics").ok_or("report requires --metrics <file.prom>")?;
    let text = std::fs::read_to_string(metrics_path)
        .map_err(|e| format!("cannot read --metrics {metrics_path:?}: {e}"))?;
    // Parse failures carry the offending path: a truncated or corrupt
    // artifact (a run killed mid-write, say) must exit non-zero with an
    // error naming the file, never render a half-report.
    let samples = parse_prometheus(&text)
        .map_err(|e| format!("invalid Prometheus exposition in {metrics_path:?}: {e}"))?;
    let records = match args.get("trace") {
        Some(path) => {
            let jsonl = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read --trace {path:?}: {e}"))?;
            parse_trace_jsonl(&jsonl).map_err(|e| format!("invalid trace JSONL in {path:?}: {e}"))?
        }
        None => Vec::new(),
    };
    print!("{}", render_report(&samples, &records));
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::args::Args;
    use crate::commands::run;
    use eks_hashes::{to_hex, HashAlgo};
    use eks_telemetry::{parse_prometheus, parse_trace_jsonl};

    fn args(s: &[&str]) -> Args {
        Args::parse(s.iter().map(|x| x.to_string())).unwrap()
    }

    #[test]
    fn crack_writes_parseable_telemetry_artifacts_and_report_renders_them() {
        let dir = std::env::temp_dir().join(format!("eks-cli-telemetry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let metrics = dir.join("m.prom");
        let trace = dir.join("t.jsonl");
        let digest = to_hex(&HashAlgo::Md5.hash(b"zzz"));
        let a = args(&[
            "crack",
            "--digest",
            &digest,
            "--max",
            "3",
            "--threads",
            "2",
            "--all",
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
        ]);
        assert!(run("crack", &a).is_ok());

        // Both artifacts must parse with the self-contained checkers.
        let samples = parse_prometheus(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
        assert!(samples.iter().any(|s| s.name == "eks_keys_tested_total"), "{samples:?}");
        let records = parse_trace_jsonl(&std::fs::read_to_string(&trace).unwrap()).unwrap();
        assert!(records.iter().any(|r| r.name == "scan"), "scan spans recorded");

        // And `eks report` renders them.
        let r = args(&[
            "report",
            "--metrics",
            metrics.to_str().unwrap(),
            "--trace",
            trace.to_str().unwrap(),
        ]);
        assert!(run("report", &r).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn report_requires_metrics_and_rejects_garbage() {
        assert!(run("report", &args(&["report"])).is_err(), "needs --metrics");
        let missing = args(&["report", "--metrics", "/nonexistent/m.prom"]);
        assert!(run("report", &missing).is_err());
        let dir = std::env::temp_dir();
        let bad = dir.join(format!("eks-cli-bad-{}.prom", std::process::id()));
        std::fs::write(&bad, "eks_x{ 1\n").unwrap();
        let a = args(&["report", "--metrics", bad.to_str().unwrap()]);
        let err = run("report", &a).expect_err("malformed exposition");
        assert!(err.contains("invalid Prometheus"), "{err}");
        assert!(
            err.contains(bad.file_name().unwrap().to_str().unwrap()),
            "error names the file: {err}"
        );
        std::fs::remove_file(&bad).ok();
    }

    #[test]
    fn mid_line_truncated_trace_is_a_friendly_error_naming_the_path() {
        // A run killed mid-write leaves the last JSONL line cut off in
        // the middle of an object; the report must refuse with a
        // non-zero exit and an error carrying the file path.
        let dir = std::env::temp_dir();
        let tag = std::process::id();
        let metrics = dir.join(format!("eks-cli-trunc-{tag}.prom"));
        let trace = dir.join(format!("eks-cli-trunc-{tag}.jsonl"));
        std::fs::write(&metrics, "eks_keys_tested_total 10\n").unwrap();
        let whole = "{\"ts_ns\":1,\"dur_ns\":2,\"kind\":\"span\",\"name\":\"scan\"}";
        let truncated: String = whole.chars().take(whole.len() - 12).collect();
        std::fs::write(&trace, format!("{whole}\n{truncated}")).unwrap();
        let a = args(&[
            "report", "--metrics", metrics.to_str().unwrap(), "--trace", trace.to_str().unwrap(),
        ]);
        let err = run("report", &a).expect_err("truncated trace must not render");
        assert!(err.contains("invalid trace JSONL"), "{err}");
        assert!(
            err.contains(trace.file_name().unwrap().to_str().unwrap()),
            "error names the file: {err}"
        );
        std::fs::remove_file(&metrics).ok();
        std::fs::remove_file(&trace).ok();
    }
}
