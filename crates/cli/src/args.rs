//! A small dependency-free argument parser: `--key value` flags and
//! positional words.

use std::collections::HashMap;

/// Parsed command-line arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    positional: Vec<String>,
    flags: HashMap<String, String>,
}

impl Args {
    /// Parse from an iterator of arguments (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = Args::default();
        let mut it = args.into_iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if name.is_empty() {
                    return Err("bare '--' is not a flag".into());
                }
                // `--flag=value` or `--flag value`; a flag followed by
                // another flag (or nothing) is boolean.
                if let Some((k, v)) = name.split_once('=') {
                    out.flags.insert(k.to_string(), v.to_string());
                } else {
                    match it.peek() {
                        Some(next) if !next.starts_with("--") => {
                            let v = it.next().expect("peeked");
                            out.flags.insert(name.to_string(), v);
                        }
                        _ => {
                            out.flags.insert(name.to_string(), "true".to_string());
                        }
                    }
                }
            } else {
                out.positional.push(a);
            }
        }
        Ok(out)
    }

    /// Positional argument at `i`.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positional.get(i).map(String::as_str)
    }

    /// Raw string flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// String flag with a default.
    pub fn get_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.get(name).unwrap_or(default)
    }

    /// Parsed numeric flag with a default.
    pub fn get_parse_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{name}: {v:?}")),
        }
    }

    /// Boolean flag presence.
    pub fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// Flags that were provided but are not in the allowed set.
    /// (Available for stricter front-ends; the built-in commands accept
    /// and ignore extras.)
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn unknown_flags(&self, allowed: &[&str]) -> Vec<String> {
        self.flags
            .keys()
            .filter(|k| !allowed.contains(&k.as_str()))
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Args {
        Args::parse(s.iter().map(|x| x.to_string())).unwrap()
    }

    #[test]
    fn positionals_and_flags() {
        let a = parse(&["crack", "--algo", "md5", "--threads=8", "--verbose"]);
        assert_eq!(a.positional(0), Some("crack"));
        assert_eq!(a.get("algo"), Some("md5"));
        assert_eq!(a.get_parse_or::<usize>("threads", 1).unwrap(), 8);
        assert!(a.has("verbose"));
        assert_eq!(a.get("missing"), None);
    }

    #[test]
    fn defaults_apply() {
        let a = parse(&["x"]);
        assert_eq!(a.get_or("algo", "md5"), "md5");
        assert_eq!(a.get_parse_or::<u32>("min", 1).unwrap(), 1);
    }

    #[test]
    fn invalid_numbers_error() {
        let a = parse(&["--threads", "lots"]);
        assert!(a.get_parse_or::<usize>("threads", 1).is_err());
    }

    #[test]
    fn unknown_flags_detected() {
        let a = parse(&["--algo", "md5", "--tpyo", "x"]);
        assert_eq!(a.unknown_flags(&["algo"]), vec!["tpyo".to_string()]);
    }

    #[test]
    fn boolean_flag_before_another_flag() {
        let a = parse(&["--all", "--algo", "sha1"]);
        assert!(a.has("all"));
        assert_eq!(a.get("algo"), Some("sha1"));
    }
}
