//! Leveled CLI logging routed through the telemetry event sink.
//!
//! Replaces the previous ad-hoc `eprintln!` scatter: every message goes
//! through one [`Logger`] that (a) honours the `--quiet`/`--verbose`
//! level and (b) mirrors each line into the structured trace as a
//! [`eks_telemetry::names::EVENT_LOG`] event, so `--trace-out` captures
//! the exact narrative the user saw.

use eks_telemetry::{names, Telemetry};

/// How chatty the CLI is. Ordered: `Quiet < Normal < Verbose`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Only results and errors.
    Quiet,
    /// The default narration.
    Normal,
    /// Extra diagnostics (per-phase detail).
    Verbose,
}

impl Level {
    /// Resolve the level from the `--quiet` / `--verbose` flag pair.
    pub fn from_flags(quiet: bool, verbose: bool) -> Result<Self, String> {
        match (quiet, verbose) {
            (true, true) => Err("--quiet contradicts --verbose".into()),
            (true, false) => Ok(Level::Quiet),
            (false, true) => Ok(Level::Verbose),
            (false, false) => Ok(Level::Normal),
        }
    }
}

/// A leveled logger bound to a telemetry handle. Cloning shares the
/// underlying trace sink.
#[derive(Debug, Clone)]
pub struct Logger {
    level: Level,
    telemetry: Telemetry,
}

impl Logger {
    /// A logger at `level`, mirroring into `telemetry`'s trace sink.
    pub fn new(level: Level, telemetry: Telemetry) -> Self {
        Self { level, telemetry }
    }

    /// Normal-level narration: printed unless `--quiet`.
    pub fn info(&self, msg: impl AsRef<str>) {
        let msg = msg.as_ref();
        if self.level >= Level::Normal {
            println!("{msg}");
        }
        self.record("info", msg);
    }

    /// Verbose-level diagnostics: printed only under `--verbose`.
    pub fn verbose(&self, msg: impl AsRef<str>) {
        let msg = msg.as_ref();
        if self.level >= Level::Verbose {
            println!("{msg}");
        }
        self.record("verbose", msg);
    }

    /// Progress lines go to stderr so piped stdout stays clean; printed
    /// unless `--quiet`.
    pub fn progress(&self, msg: impl AsRef<str>) {
        let msg = msg.as_ref();
        if self.level >= Level::Normal {
            eprintln!("{msg}");
        }
        self.record("progress", msg);
    }

    /// Errors always print to stderr, at every level.
    pub fn error(&self, msg: impl AsRef<str>) {
        let msg = msg.as_ref();
        eprintln!("{msg}");
        self.record("error", msg);
    }

    fn record(&self, level: &str, msg: &str) {
        if self.telemetry.is_enabled() {
            self.telemetry.event(names::EVENT_LOG).field("level", level).field("msg", msg).finish();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_resolution() {
        assert_eq!(Level::from_flags(false, false).unwrap(), Level::Normal);
        assert_eq!(Level::from_flags(true, false).unwrap(), Level::Quiet);
        assert_eq!(Level::from_flags(false, true).unwrap(), Level::Verbose);
        assert!(Level::from_flags(true, true).is_err());
    }

    #[test]
    fn messages_land_in_the_trace_sink() {
        let telemetry = Telemetry::enabled();
        let log = Logger::new(Level::Quiet, telemetry.clone());
        log.info("starting");
        log.verbose("details");
        log.error("boom");
        let jsonl = telemetry.trace_jsonl();
        assert_eq!(jsonl.lines().count(), 3, "{jsonl}");
        assert!(jsonl.contains("\"starting\""), "{jsonl}");
        assert!(jsonl.contains("\"error\""), "{jsonl}");
    }

    #[test]
    fn disabled_telemetry_records_nothing() {
        let telemetry = Telemetry::disabled();
        let log = Logger::new(Level::Quiet, telemetry.clone());
        log.info("starting");
        assert!(telemetry.trace_jsonl().is_empty());
    }
}
