//! `eks` — the exhaustive-key-search command line.
//!
//! ```text
//! eks crack    --algo md5 --digest <hex> [--charset lower] [--min 1] [--max 5]
//!              [--threads 8] [--salt-prefix S] [--salt-suffix S]
//! eks hash     --algo md5 <plaintext>
//! eks mine     [--difficulty 16] [--header STR] [--threads 8]
//! eks analyze  [--algo md5] [--variant optimized] [--json] [--deny warnings]
//!              [--tolerance 0.12]
//! eks devices
//! eks simulate [--keys 5e11] [--algo md5]
//! eks tune     [--threads 4]
//! ```

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match args::Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let command = parsed.positional(0).unwrap_or("help").to_string();
    match commands::run(&command, &parsed) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `eks help` for usage");
            ExitCode::FAILURE
        }
    }
}
