//! `eks` — the exhaustive-key-search command line.
//!
//! ```text
//! eks crack    --algo md5 --digest <hex> [--charset lower] [--min 1] [--max 5]
//!              [--threads 8] [--salt-prefix S] [--salt-suffix S]
//! eks hash     --algo md5 <plaintext>
//! eks mine     [--difficulty 16] [--header STR] [--threads 8]
//! eks analyze  [--algo md5] [--variant optimized] [--json] [--deny warnings]
//!              [--tolerance 0.12]
//! eks devices
//! eks simulate [--keys 5e11] [--algo md5]
//! eks tune     [--threads 4]
//! ```

mod args;
mod commands;
mod log;

use std::process::ExitCode;

use crate::log::{Level, Logger};

fn main() -> ExitCode {
    // Top-level errors go through the same leveled logger the commands
    // use (errors print at every level, so the level here is moot).
    let log = Logger::new(Level::Normal, eks_telemetry::Telemetry::disabled());
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match args::Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            log.error(format!("error: {e}"));
            return ExitCode::FAILURE;
        }
    };
    let command = parsed.positional(0).unwrap_or("help").to_string();
    match commands::run(&command, &parsed) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            log.error(format!("error: {e}"));
            log.error("run `eks help` for usage");
            ExitCode::FAILURE
        }
    }
}
