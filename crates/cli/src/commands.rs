//! Subcommand implementations.

use crate::args::Args;
use crate::log::{Level, Logger};
use eks_cluster::{
    paper_network, run_cluster_search_observed, simulate_search, tune_device, AchievedModel,
    SimKernelBackend, SimParams,
};
use eks_cracker::{
    cpu_backend, crack_parallel_backend_observed, crack_parallel_observed, mine,
    render_worker_stats, AutoBackend, HashTarget, Lanes, MiningJob, ParallelConfig, SimdBackend,
    TargetSet,
};
use eks_engine::{Backend, BackendKind, ProgressEvent, SchedPolicy};
use eks_hashes::SimdIsa;
use eks_telemetry::{names, parse_prometheus, parse_trace_jsonl, report::render_report, Telemetry};
use eks_gpusim::codegen::lower;
use eks_gpusim::device::DeviceCatalog;
use eks_gpusim::sched::{simulate, SimConfig};
use eks_gpusim::throughput::theoretical_mkeys;
use eks_hashes::{from_hex, to_hex, HashAlgo};
use eks_kernels::{Tool, ToolKernel};
use eks_keyspace::{Charset, KeySpace, Order};

/// Dispatch a subcommand.
pub fn run(command: &str, args: &Args) -> Result<(), String> {
    match command {
        "crack" => cmd_crack(args),
        "hash" => cmd_hash(args),
        "mine" => cmd_mine(args),
        "analyze" => cmd_analyze(args),
        "verify" => cmd_verify(args),
        "devices" => cmd_devices(),
        "disasm" => cmd_disasm(args),
        "profile" => cmd_profile(args),
        "audit" => cmd_audit(args),
        "strength" => cmd_strength(args),
        "simulate" => cmd_simulate(args),
        "cluster" => cmd_cluster(args),
        "report" => cmd_report(args),
        "tune" => cmd_tune(args),
        "bench" => cmd_bench(args),
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

fn print_help() {
    println!("eks — exhaustive key search on (simulated) clusters of GPUs");
    println!();
    println!("commands:");
    println!("  crack    --algo md5|sha1|ntlm --digest HEX [--charset lower|upper|digits|alpha|alnum|print]");
    println!("           [--min N] [--max N] [--threads N] [--all] [--salt-prefix S] [--salt-suffix S]");
    println!("           [--mask \"?u?l?l?d?d\"] [--words w1,w2,... [--suffix-digits N]]");
    println!("           [--batch] [--lanes scalar|8|16]   lane-batched hashing (default: 8 lanes;");
    println!("           mask/hybrid/salted searches always use the scalar path)");
    println!("           [--backend scalar|lanes8|lanes16|simd|auto|simgpu [--device 660]]");
    println!("           pick the engine backend explicitly: simd runs the explicit");
    println!("           AVX2/AVX-512/NEON kernels on the widest ISA the CPU reports");
    println!("           ([--isa avx2|avx512|neon] forces one; unavailable ISAs are a");
    println!("           friendly error), auto tunes every CPU implementation per");
    println!("           algorithm and runs the winner, simgpu drives a simulated");
    println!("           device's kernel");
    println!("           [--sched static|queue|steal]   worker scheduling (default: steal —");
    println!("           per-worker interval deques with steal-half rebalancing)");
    println!("           [--chunk N]   chunk size: the fixed pop in queue mode, the guided");
    println!("           floor otherwise (default: derived from --threads; must be >= 1)");
    println!("           [--stats]   print the per-worker scheduler table (tested, steals,");
    println!("           splits, busy/idle ms, util%, keys/s) after the search");
    println!("           [--metrics-out F.prom] [--trace-out F.jsonl]   write telemetry");
    println!("           artifacts; [--progress] periodic keys/s + ETA + %-keyspace line;");
    println!("           [--quiet|--verbose]   logging level");
    println!("  hash     --algo md5|sha1 PLAINTEXT       compute a digest");
    println!("  mine     [--difficulty BITS] [--header STR] [--threads N]");
    println!("  analyze  [--algo md5|sha1|ntlm] [--variant optimized|naive|reversed]");
    println!("           [--json] [--deny warnings] [--tolerance 0.12]");
    println!("           static analysis: dataflow + peephole lints, register pressure,");
    println!("           Table III-VI budget gate; non-zero exit on deny-level findings");
    println!("  verify   [--workers N] [--intervals N] [--depth N] [--json]");
    println!("           [--deny violations|warnings] [--mutate NAME]");
    println!("           bounded exhaustive model checking of the work-stealing scheduler");
    println!("           protocol (exactly-once, no-lost-lease, lowest-id merge, the");
    println!("           cancellation bound) plus grid-IR soundness passes (bounds,");
    println!("           must-defined, barrier divergence) over every shipped kernel");
    println!("           wrapper; prints per-check state/transition counts and a");
    println!("           counterexample trace on violation (non-zero exit). --mutate runs");
    println!("           a seeded-bug model instead: drop-lease, double-count,");
    println!("           merge-highest, ignore-cancel, unguarded-store, uninit-read,");
    println!("           divergent-barrier");
    println!("  devices                                  the paper's GPU catalog (Table VII)");
    println!("  disasm   [--algo md5|sha1] [--cc 3.0] [--tool ours|barswf|cryptohaze]");
    println!("  profile  [--algo md5|sha1|ntlm] [--device 660]   simulated profiler report");
    println!("  audit    --digests h1,h2,... [--accounts a,b,...] [--charset ...] [--max N]");
    println!("  strength PASSWORD [--algo md5] [--charset alnum] [--max N]   time-to-crack");
    println!("  simulate [--keys N] [--algo md5|sha1]    whole-network DES (Table IX)");
    println!("           [--topology \"A(660) -> B(550Ti, cpu:4)\"]   custom cluster");
    println!("  cluster  --digest HEX [--algo md5|sha1|ntlm] [--charset ...] [--min N] [--max N]");
    println!("           [--topology \"A(660, cpu:2)\"] [--all]   really crack across a");
    println!("           heterogeneous cluster of CPU + simulated-GPU backends");
    println!("           [--sched static|queue|steal]   leaf scheduling (default: static —");
    println!("           rate-proportional shares; steal lets drained leaves rebalance)");
    println!("           [--metrics-out F.prom] [--trace-out F.jsonl] [--quiet|--verbose]");
    println!("  report   --metrics F.prom [--trace F.jsonl]   render a run report from");
    println!("           telemetry artifacts: per-worker utilization, tuned rates, the");
    println!("           paper's SIII cost-model phases, and network efficiency vs 85-90%");
    println!("  tune     [--threads N]                   tune devices and this host's CPU");
    println!("  bench    [--json FILE]                   tune every CPU backend on this host");
    println!("           and print the per-(backend, algo) rates, the detected CPU");
    println!("           features, and the selected ISA; --json writes the schema-3");
    println!("           host-tuning report (cpu_features, rates, per-algo auto choice)");
}

fn parse_algo(args: &Args) -> Result<HashAlgo, String> {
    match args.get_or("algo", "md5") {
        "md5" => Ok(HashAlgo::Md5),
        "sha1" => Ok(HashAlgo::Sha1),
        "ntlm" => Ok(HashAlgo::Ntlm),
        other => Err(format!("unsupported --algo {other:?} (md5, sha1 or ntlm)")),
    }
}

fn parse_charset(args: &Args) -> Result<Charset, String> {
    Ok(match args.get_or("charset", "lower") {
        "lower" => Charset::lowercase(),
        "upper" => Charset::uppercase(),
        "digits" => Charset::digits(),
        "alpha" => Charset::alpha(),
        "alnum" => Charset::alphanumeric(),
        "print" => Charset::printable_ascii(),
        custom => Charset::from_bytes(custom.as_bytes())
            .map_err(|e| format!("invalid custom charset: {e}"))?,
    })
}

/// `--batch` opts into the lane-batched path explicitly (it is already the
/// default); `--lanes scalar|8|16` picks the width. The combination
/// `--batch --lanes scalar` is contradictory and rejected.
fn parse_lanes(args: &Args) -> Result<Lanes, String> {
    let lanes = match args.get("lanes") {
        Some(s) => {
            Lanes::parse(s).ok_or(format!("unsupported --lanes {s:?} (scalar, 8 or 16)"))?
        }
        None => Lanes::default(),
    };
    if args.has("batch") && lanes == Lanes::Scalar {
        return Err("--batch contradicts --lanes scalar".into());
    }
    Ok(lanes)
}

/// `--backend scalar|lanes8|lanes16|simd|auto|simgpu` names an engine
/// backend explicitly. It subsumes the older `--lanes`/`--batch` pair,
/// so combining them is contradictory and rejected; `simgpu` drives the
/// kernel of the device picked by `--device` (default: the GTX 660);
/// `simd` runs the explicit AVX2/AVX-512/NEON kernels (widest detected
/// ISA, or the one forced by `--isa`); `auto` tunes every CPU
/// implementation per algorithm and runs the winner. An unavailable
/// forced ISA is a CLI error naming what the CPU actually supports.
fn parse_backend(args: &Args, telemetry: &Telemetry) -> Result<Option<Box<dyn Backend>>, String> {
    let Some(s) = args.get("backend") else {
        if args.has("isa") {
            return Err("--isa applies only to --backend simd".into());
        }
        return Ok(None);
    };
    if args.has("lanes") || args.has("batch") {
        return Err("--backend conflicts with --lanes/--batch".into());
    }
    let kind = BackendKind::parse(s).ok_or(format!(
        "unsupported --backend {s:?} (scalar, lanes8, lanes16, simd, auto or simgpu)"
    ))?;
    if args.has("isa") && kind != BackendKind::Simd {
        return Err("--isa applies only to --backend simd".into());
    }
    Ok(Some(match kind {
        BackendKind::Scalar => cpu_backend(Lanes::Scalar),
        BackendKind::Lanes8 => cpu_backend(Lanes::L8),
        BackendKind::Lanes16 => cpu_backend(Lanes::L16),
        BackendKind::Simd => {
            let backend = match args.get("isa") {
                Some(name) => {
                    let isa = SimdIsa::parse(name)
                        .ok_or(format!("unsupported --isa {name:?} (avx2, avx512 or neon)"))?;
                    SimdBackend::new(isa)?
                }
                None => SimdBackend::best().ok_or_else(|| {
                    "no explicit-SIMD ISA detected on this CPU; \
                     use --backend auto for the autovectorized fallback"
                        .to_string()
                })?,
            };
            Box::new(backend.with_telemetry(telemetry.clone()))
        }
        BackendKind::Auto => Box::new(AutoBackend::new(telemetry.clone())),
        BackendKind::SimGpu => {
            let device =
                DeviceCatalog::find(args.get_or("device", "660")).ok_or("unknown --device")?;
            Box::new(SimKernelBackend::new(device))
        }
    }))
}

/// `--sched static|queue|steal` picks the worker scheduling policy;
/// `default` is the subcommand's policy when the flag is absent.
fn parse_sched(args: &Args, default: SchedPolicy) -> Result<SchedPolicy, String> {
    match args.get("sched") {
        None => Ok(default),
        Some(s) => SchedPolicy::parse(s)
            .ok_or(format!("unsupported --sched {s:?} (static, queue or steal)")),
    }
}

/// `--chunk N` overrides the scheduler's chunk size (the fixed pop in
/// queue mode, the guided floor otherwise). Zero is rejected here so it
/// surfaces as a usage error instead of an engine panic.
fn parse_chunk(args: &Args) -> Result<Option<u64>, String> {
    let Some(s) = args.get("chunk") else { return Ok(None) };
    let chunk: u64 = s.parse().map_err(|_| format!("invalid --chunk {s:?}"))?;
    if chunk == 0 {
        return Err("--chunk must be at least 1".into());
    }
    Ok(Some(chunk))
}

/// Resolve the observability options shared by `crack` and `cluster`:
/// the registry is enabled whenever any telemetry flag asks for output
/// (`--metrics-out`, `--trace-out`, `--progress`), otherwise the
/// disabled handle keeps the hot path untouched; the logger level comes
/// from `--quiet`/`--verbose`.
fn parse_telemetry(args: &Args) -> Result<(Telemetry, Logger), String> {
    let wants = args.has("metrics-out") || args.has("trace-out") || args.has("progress");
    let telemetry = if wants { Telemetry::enabled() } else { Telemetry::disabled() };
    let level = Level::from_flags(args.has("quiet"), args.has("verbose"))?;
    Ok((telemetry.clone(), Logger::new(level, telemetry)))
}

/// Write the `--metrics-out` (Prometheus text exposition) and
/// `--trace-out` (JSONL trace) artifacts after a run.
fn write_artifacts(args: &Args, telemetry: &Telemetry, log: &Logger) -> Result<(), String> {
    if let Some(path) = args.get("metrics-out") {
        std::fs::write(path, telemetry.render_prometheus())
            .map_err(|e| format!("cannot write --metrics-out {path:?}: {e}"))?;
        log.verbose(format!("wrote metrics exposition to {path}"));
    }
    if let Some(path) = args.get("trace-out") {
        std::fs::write(path, telemetry.trace_jsonl())
            .map_err(|e| format!("cannot write --trace-out {path:?}: {e}"))?;
        log.verbose(format!("wrote trace JSONL to {path}"));
    }
    Ok(())
}

/// How often the periodic progress line refreshes.
const PROGRESS_EVERY: std::time::Duration = std::time::Duration::from_millis(500);

/// Format one progress line from a merged-scan observation: percent of
/// the keyspace, aggregate rate, and the ETA at that rate. All three
/// derive from the guarded [`ProgressEvent`] helpers, so a
/// zero-duration run prints zeros instead of NaN.
fn progress_line(e: &ProgressEvent, total: u128, elapsed_secs: f64) -> String {
    let eta = match e.eta_secs(total, elapsed_secs) {
        Some(s) => format!("{s:.0} s"),
        None => "unknown".into(),
    };
    format!(
        "progress: {:.1}% of keyspace, {:.2} MKey/s, eta {eta}",
        e.percent_of(total),
        e.keys_per_sec(elapsed_secs) / 1e6,
    )
}

/// `--threads N` with `N >= 1`.
fn parse_threads(args: &Args, default: usize) -> Result<usize, String> {
    let threads: usize = args.get_parse_or("threads", default)?;
    if threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    Ok(threads)
}

fn cmd_crack(args: &Args) -> Result<(), String> {
    let algo = parse_algo(args)?;
    let digest_hex = args
        .get("digest")
        .ok_or("crack requires --digest <hex>")?;
    let digest = from_hex(digest_hex).ok_or("digest is not valid hex")?;
    if digest.len() != algo.digest_len() {
        return Err(format!(
            "digest length {} does not match {} ({} bytes)",
            digest.len(),
            algo.name(),
            algo.digest_len()
        ));
    }
    let threads = parse_threads(args, 8)?;
    let lanes = parse_lanes(args)?;
    let (telemetry, log) = parse_telemetry(args)?;
    let backend = parse_backend(args, &telemetry)?;
    let chunk = parse_chunk(args)?;
    let sched = parse_sched(args, SchedPolicy::Steal)?;
    let structured = args.get("mask").is_some()
        || args.get("words").is_some()
        || args.get("salt-prefix").is_some()
        || args.get("salt-suffix").is_some();
    if backend.is_some() && structured {
        return Err("--backend applies only to plain charset searches".into());
    }
    if args.get("sched").is_some() && structured {
        return Err("--sched applies only to plain charset searches".into());
    }

    // Mask attack: --mask "?u?l?l?d?d".
    if let Some(mask) = args.get("mask") {
        let space = eks_keyspace::MaskSpace::parse(mask).map_err(|e| e.to_string())?;
        log.info(format!("mask {mask}: {} candidates, {threads} threads", space.size()));
        let targets = TargetSet::new(algo, &[digest]);
        let config = ParallelConfig {
            threads,
            chunk: chunk.unwrap_or(1 << 12),
            first_hit_only: !args.has("all"),
            ..ParallelConfig::default()
        };
        let report = eks_cracker::crack_space_parallel(&space, &targets, config);
        write_artifacts(args, &telemetry, &log)?;
        return finish_report(report);
    }

    // Hybrid attack: --words w1,w2,... [--suffix-digits N].
    if let Some(words) = args.get("words") {
        let list: Vec<&[u8]> = words.split(',').map(|w| w.as_bytes()).collect();
        let digits: u32 = args.get_parse_or("suffix-digits", 2)?;
        let space = eks_keyspace::HybridSpace::with_digit_suffixes(&list, digits)
            .map_err(|e| format!("{e:?}"))?;
        log.info(format!(
            "hybrid: {} words x digit suffixes 0..={digits} = {} candidates",
            space.word_count(),
            space.size()
        ));
        let targets = TargetSet::new(algo, &[digest]);
        let config = ParallelConfig {
            threads,
            chunk: chunk.unwrap_or(256),
            first_hit_only: !args.has("all"),
            ..ParallelConfig::default()
        };
        let report = eks_cracker::crack_space_parallel(&space, &targets, config);
        write_artifacts(args, &telemetry, &log)?;
        return finish_report(report);
    }

    let charset = parse_charset(args)?;
    let min: u32 = args.get_parse_or("min", 1)?;
    let max: u32 = args.get_parse_or("max", 5)?;
    let space = KeySpace::new(charset, min, max, Order::FirstCharFastest)
        .map_err(|e| e.to_string())?;
    log.info(format!(
        "searching {} candidates ({} lengths {min}..={max}) with {threads} threads",
        space.size(),
        algo.name()
    ));

    let salted = args.get("salt-prefix").is_some() || args.get("salt-suffix").is_some();
    if salted {
        // Salted targets go through the streaming path, one at a time.
        let prefix = args.get_or("salt-prefix", "").as_bytes().to_vec();
        let suffix = args.get_or("salt-suffix", "").as_bytes().to_vec();
        let target = HashTarget::salted(algo, &digest, &prefix, &suffix);
        let mut found = None;
        space.iter(space.interval()).for_each_key(|id, key| {
            if target.matches(key) {
                found = Some((id, key.clone()));
                false
            } else {
                true
            }
        });
        return match found {
            Some((id, key)) => {
                println!("FOUND: \"{key}\" (identifier {id})");
                Ok(())
            }
            None => Err("not found in this keyspace".into()),
        };
    }

    let targets = TargetSet::new(algo, &[digest]);
    let mut config = ParallelConfig {
        first_hit_only: !args.has("all"),
        lanes,
        sched,
        ..ParallelConfig::for_threads(threads)
    };
    if let Some(c) = chunk {
        config.chunk = c;
    }
    // Periodic progress line: throttled to one refresh per
    // PROGRESS_EVERY, derived from the merged-scan observations the
    // dispatcher already emits (no extra hot-path work).
    let total = space.size();
    let start = std::time::Instant::now();
    let last_line = std::sync::Mutex::new(start);
    let want_progress = args.has("progress");
    let progress = |e: &ProgressEvent| {
        if !want_progress {
            return;
        }
        let mut last = last_line.lock().expect("progress throttle");
        if last.elapsed() < PROGRESS_EVERY {
            return;
        }
        *last = std::time::Instant::now();
        log.progress(progress_line(e, total, start.elapsed().as_secs_f64()));
    };
    // Record which kernel specialization the backend selected (the §V
    // per-architecture choice) and its tuned rate, so `eks report` can
    // show them next to the cost-model terms. Guarded on the enabled
    // handle because the tuned rate runs a short timed sweep.
    if let Some(b) = backend.as_deref() {
        if telemetry.is_enabled() {
            let name = b.name();
            if let Some(isa) = b.isa(algo) {
                telemetry
                    .gauge(names::BACKEND_ISA, &[("backend", &name), ("isa", &isa)])
                    .set(1.0);
            }
            telemetry
                .gauge(names::BACKEND_RATE_MKEYS, &[("backend", &name)])
                .set(b.tuned_rate(algo));
        }
    }
    let report = match backend {
        Some(b) => crack_parallel_backend_observed(
            &space,
            &targets,
            space.interval(),
            b.as_ref(),
            config,
            &telemetry,
            progress,
        ),
        None => {
            crack_parallel_observed(&space, &targets, space.interval(), config, &telemetry, progress)
        }
    };
    if args.has("stats") {
        print!("{}", render_worker_stats(&report.stats));
    }
    write_artifacts(args, &telemetry, &log)?;
    finish_report(report)
}

/// `eks report --metrics <file.prom> [--trace <file.jsonl>]`: parse the
/// artifacts a `crack`/`cluster` run wrote and render the run report —
/// per-worker utilization, per-device tuned rates, the paper's SIII
/// cost-model phases, and the measured network efficiency next to the
/// 85-90% band the paper reports.
fn cmd_report(args: &Args) -> Result<(), String> {
    let metrics_path = args.get("metrics").ok_or("report requires --metrics <file.prom>")?;
    let text = std::fs::read_to_string(metrics_path)
        .map_err(|e| format!("cannot read --metrics {metrics_path:?}: {e}"))?;
    let samples =
        parse_prometheus(&text).map_err(|e| format!("invalid Prometheus exposition: {e}"))?;
    let records = match args.get("trace") {
        Some(path) => {
            let jsonl = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read --trace {path:?}: {e}"))?;
            parse_trace_jsonl(&jsonl).map_err(|e| format!("invalid trace JSONL: {e}"))?
        }
        None => Vec::new(),
    };
    print!("{}", render_report(&samples, &records));
    Ok(())
}

fn finish_report(report: eks_cracker::ParallelReport) -> Result<(), String> {
    if report.hits.is_empty() {
        return Err(format!(
            "not found; tested {} keys at {:.2} MKey/s",
            report.tested, report.mkeys_per_s
        ));
    }
    for (id, key, _) in &report.hits {
        println!("FOUND: \"{key}\" (identifier {id})");
    }
    println!(
        "tested {} keys in {:.3} s ({:.2} MKey/s)",
        report.tested, report.elapsed_s, report.mkeys_per_s
    );
    Ok(())
}

fn cmd_hash(args: &Args) -> Result<(), String> {
    let algo = parse_algo(args)?;
    let plaintext = args.positional(1).ok_or("hash requires a plaintext argument")?;
    println!("{}", to_hex(&algo.hash_long(plaintext.as_bytes())));
    Ok(())
}

fn cmd_mine(args: &Args) -> Result<(), String> {
    let difficulty: u32 = args.get_parse_or("difficulty", 16)?;
    let threads = parse_threads(args, 8)?;
    let header = args.get_or("header", "eks-block-header").as_bytes().to_vec();
    let job = MiningJob { header, difficulty_bits: difficulty };
    println!("mining: {difficulty} leading zero bits, {threads} threads");
    let start = std::time::Instant::now();
    match mine(&job, 0..u32::MAX as u64, threads) {
        Some(r) => {
            println!(
                "nonce {} after {} tests in {:.3} s",
                r.nonce,
                r.tested,
                start.elapsed().as_secs_f64()
            );
            println!("hash  {}", to_hex(&r.digest));
            Ok(())
        }
        None => Err("nonce space exhausted".into()),
    }
}

fn cmd_analyze(args: &Args) -> Result<(), String> {
    use eks_analyzer::{analyze_compiled, analyze_ir, md5_budget_report, DEFAULT_TOLERANCE};
    use eks_gpusim::arch::ComputeCapability;
    use eks_gpusim::codegen::LoweringOptions;
    use eks_kernels::md4::{build_md4, ntlm_words_for_key_len, Md4Variant};
    use eks_kernels::md5::{build_md5, Md5Variant};
    use eks_kernels::sha1::{build_sha1, sha1_words_for_key_len, Sha1Variant};
    use eks_kernels::words_for_key_len;

    let algo = parse_algo(args)?;
    let variant = args.get_or("variant", "optimized");
    let json = args.has("json");
    let tolerance: f64 = args.get_parse_or("tolerance", DEFAULT_TOLERANCE)?;
    if !(0.0..=1.0).contains(&tolerance) {
        return Err(format!("--tolerance {tolerance} must be a fraction in 0..=1"));
    }
    let deny_warnings = match args.get("deny") {
        None => false,
        Some("warnings") => true,
        Some(other) => return Err(format!("unsupported --deny {other:?} (only: warnings)")),
    };

    // Build the requested kernel: its IR, the dead-store roots (comparison
    // outputs plus loop-carried registers) and whether it should lower
    // with the per-architecture optimizations.
    let (ir, roots, optimized) = match algo {
        HashAlgo::Md5 => {
            let v = match variant {
                "naive" => Md5Variant::Naive,
                "reversed" => Md5Variant::Reversed,
                "optimized" => Md5Variant::Optimized,
                other => return Err(format!("unknown --variant {other:?}")),
            };
            let b = build_md5(v, &words_for_key_len(4));
            (b.ir, [b.outputs, b.carried].concat(), v == Md5Variant::Optimized)
        }
        HashAlgo::Sha1 => {
            let v = match variant {
                "naive" => Sha1Variant::Naive,
                "optimized" => Sha1Variant::Optimized,
                other => return Err(format!("unknown sha1 --variant {other:?} (naive, optimized)")),
            };
            let b = build_sha1(v, &sha1_words_for_key_len(4));
            (b.ir, [b.outputs, b.carried].concat(), v == Sha1Variant::Optimized)
        }
        HashAlgo::Ntlm => {
            let v = match variant {
                "naive" => Md4Variant::Naive,
                "reversed" => Md4Variant::Reversed,
                "optimized" => Md4Variant::Optimized,
                other => return Err(format!("unknown --variant {other:?}")),
            };
            let b = build_md4(v, &ntlm_words_for_key_len(4));
            (b.ir, [b.outputs, b.carried].concat(), v == Md4Variant::Optimized)
        }
    };

    // Run the whole pipeline: IR dataflow, per-architecture peephole and
    // pressure lints, and (for MD5) the Table III-VI budget gate.
    let mut reports = vec![analyze_ir(&ir, Some(&roots))];
    for cc in ComputeCapability::ALL {
        let opts =
            if optimized { LoweringOptions::for_cc(cc) } else { LoweringOptions::plain(cc) };
        reports.push(analyze_compiled(&lower(&ir, opts)));
    }
    if algo == HashAlgo::Md5 {
        reports.push(md5_budget_report(tolerance));
    }
    if deny_warnings {
        for r in &mut reports {
            r.deny_warnings();
        }
    }
    let warnings: usize = reports.iter().map(|r| r.warnings()).sum();
    let denials: usize = reports.iter().map(|r| r.denials()).sum();

    if json {
        let body: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
        println!("[{}]", body.join(","));
    } else {
        print_analyze_tables(algo);
        println!();
        println!("lints ({} {variant}, tolerance {:.0}%):", algo.name(), tolerance * 100.0);
        let mut any = false;
        for r in &reports {
            let text = r.render_text();
            if !text.is_empty() {
                print!("{text}");
                any = true;
            }
        }
        if !any {
            println!("  clean: no findings");
        }
        println!("analyze: {warnings} warning(s), {denials} error(s)");
    }

    if denials > 0 {
        Err(format!("{denials} deny-level diagnostic(s)"))
    } else {
        Ok(())
    }
}

/// The original instruction-count and throughput tables (text mode only).
fn print_analyze_tables(algo: HashAlgo) {
    use eks_gpusim::arch::ComputeCapability;
    println!("{} kernel, per architecture:", algo.name());
    println!(
        "{:<6}{:>8}{:>8}{:>10}{:>8}{:>8}{:>10}",
        "cc", "IADD", "LOP", "SHR/SHL", "IMAD", "PRMT", "R"
    );
    for cc in [ComputeCapability::Sm1x, ComputeCapability::Sm21, ComputeCapability::Sm30] {
        let tk = ToolKernel::build(Tool::OurApproach, algo, cc);
        let k = lower(&tk.ir, tk.options);
        println!(
            "{:<6}{:>8}{:>8}{:>10}{:>8}{:>8}{:>10.2}",
            cc.label(),
            k.counts.iadd(),
            k.counts.lop(),
            k.counts.shift(),
            k.counts.imad(),
            k.counts.prmt(),
            k.counts.ratio()
        );
    }
    println!();
    println!("{:<24}{:>14}{:>14}{:>8}", "device", "theoretical", "simulated", "eff");
    for dev in DeviceCatalog::paper_devices() {
        let tk = ToolKernel::build(Tool::OurApproach, algo, dev.cc);
        let k = lower(&tk.ir, tk.options);
        let theo = theoretical_mkeys(&dev, &k.counts) * k.keys_per_iteration as f64;
        let sim = simulate(&k, SimConfig::for_cc(dev.cc)).device_mkeys(&dev);
        println!(
            "{:<24}{:>9.1} MK/s{:>9.1} MK/s{:>7.1}%",
            dev.name,
            theo,
            sim,
            sim / theo * 100.0
        );
    }
}

/// The `algo/variant` names of every shipped kernel whose launch
/// wrapper `eks verify` proves sound.
const SHIPPED_VARIANTS: [&str; 8] = [
    "md5/naive",
    "md5/reversed",
    "md5/optimized",
    "sha1/naive",
    "sha1/optimized",
    "ntlm/naive",
    "ntlm/reversed",
    "ntlm/optimized",
];

/// Render a scheduler-protocol check result as a JSON object sharing
/// the analyzer's schema-version stamp.
fn sched_check_json(
    name: &str,
    workers: usize,
    intervals: u128,
    out: &eks_verify::CheckOutcome,
) -> String {
    use eks_analyzer::diagnostic::json_str;
    use std::fmt::Write as _;
    let mut s = String::new();
    write!(
        s,
        "{{\"schema\":{},\"check\":{},\"workers\":{workers},\"intervals\":{intervals},\
         \"states\":{},\"transitions\":{},\"deepest\":{},\"truncated\":{},\"violations\":{}",
        eks_analyzer::SCHEMA_VERSION,
        json_str(name),
        out.states,
        out.transitions,
        out.deepest,
        out.truncated,
        usize::from(!out.clean()),
    )
    .expect("write to string");
    match &out.violation {
        None => s.push_str(",\"violation\":null}"),
        Some(v) => {
            write!(
                s,
                ",\"violation\":{{\"property\":{},\"message\":{},\"trace\":[",
                json_str(v.property.name()),
                json_str(&v.message)
            )
            .expect("write to string");
            for (i, step) in v.trace.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&json_str(&format!("{} {}", step.action, step.state)));
            }
            s.push_str("]}}");
        }
    }
    s
}

/// Run one seeded-bug model (`--mutate NAME`): the checker or IR passes
/// must flag it, the command exits non-zero, and the counterexample is
/// printed — a live demonstration that the verifier is not vacuous.
fn cmd_verify_mutant(
    name: &str,
    workers: usize,
    intervals: u128,
    opts: eks_verify::CheckOptions,
    json: bool,
) -> Result<(), String> {
    use eks_analyzer::analyze_grid;
    use eks_gpusim::gridir::{
        mutant_divergent_barrier, mutant_unguarded_store, mutant_uninit_read,
    };
    use eks_verify::{check, ModelConfig, Mutation};

    let keys = intervals * 2;
    let sched = |cfg: ModelConfig, m: Mutation| -> Result<(), String> {
        let out = check(cfg.with_mutation(m), opts);
        if json {
            println!(
                "[{}]",
                sched_check_json(&format!("mutant/{name}"), workers, intervals, &out)
            );
        }
        match out.violation {
            Some(v) => {
                if !json {
                    print!("{}", v.render());
                }
                Err(format!("mutant {name:?} flagged: {} violated", v.property))
            }
            None => {
                if !json {
                    println!(
                        "mutant {name:?}: no violation found in {} states — the checker \
                         failed to flag a seeded bug",
                        out.states
                    );
                }
                Ok(())
            }
        }
    };
    let grid = |kernel: eks_gpusim::gridir::GridKernel| -> Result<(), String> {
        let report = analyze_grid(&kernel);
        if json {
            println!("[{}]", report.to_json());
        } else {
            print!("{}", report.render_text());
        }
        if report.denials() > 0 {
            Err(format!("mutant {name:?} flagged: {} error(s)", report.denials()))
        } else {
            Ok(())
        }
    };
    match name {
        "drop-lease" => sched(
            ModelConfig::steal_intervals(workers, intervals),
            Mutation::DropStolenLease,
        ),
        "double-count" => sched(
            ModelConfig::steal_intervals(workers, intervals),
            Mutation::DoubleCountSteal,
        ),
        "merge-highest" => {
            sched(ModelConfig::first_hit(workers, keys), Mutation::MergeHighestFirst)
        }
        "ignore-cancel" => {
            sched(ModelConfig::cancel_bound(workers, keys), Mutation::IgnoreCancelPoll)
        }
        "unguarded-store" => grid(mutant_unguarded_store("mutant/unguarded-store")),
        "uninit-read" => grid(mutant_uninit_read("mutant/uninit-read")),
        "divergent-barrier" => grid(mutant_divergent_barrier("mutant/divergent-barrier")),
        other => Err(format!(
            "unknown --mutate {other:?} (drop-lease, double-count, merge-highest, \
             ignore-cancel, unguarded-store, uninit-read, divergent-barrier)"
        )),
    }
}

fn cmd_verify(args: &Args) -> Result<(), String> {
    use eks_analyzer::analyze_grid;
    use eks_gpusim::gridir::search_wrapper;
    use eks_verify::{check, standard_checks, CheckOptions};

    let workers: usize = args.get_parse_or("workers", 2usize)?;
    let intervals: u128 = args.get_parse_or("intervals", 8u128)?;
    let depth: usize = args.get_parse_or("depth", CheckOptions::default().max_depth)?;
    let json = args.has("json");
    // Violations and deny-level IR findings always fail the command;
    // `--deny violations` names that default for CI scripts, and
    // `--deny warnings` additionally escalates IR warnings.
    let deny_warnings = match args.get("deny") {
        None | Some("violations") => false,
        Some("warnings") => true,
        Some(other) => {
            return Err(format!("unsupported --deny {other:?} (violations or warnings)"))
        }
    };
    if !(1..=4).contains(&workers) {
        return Err(format!(
            "--workers {workers} out of range 1..=4: exhaustive interleaving \
             exploration grows factorially with workers"
        ));
    }
    if !(1..=12).contains(&intervals) {
        return Err(format!("--intervals {intervals} out of range 1..=12"));
    }
    let opts = CheckOptions { max_depth: depth, ..CheckOptions::default() };

    if let Some(m) = args.get("mutate") {
        return cmd_verify_mutant(m, workers, intervals, opts, json);
    }

    let mut json_parts: Vec<String> = Vec::new();
    let mut violations = 0usize;

    if !json {
        println!(
            "scheduler protocol (workers={workers}, intervals={intervals}, depth={depth}):"
        );
    }
    for c in standard_checks(workers, intervals) {
        let out = check(c.config.clone(), opts);
        if json {
            json_parts.push(sched_check_json(c.name, workers, intervals, &out));
        } else {
            let verdict = if let Some(v) = &out.violation {
                format!("VIOLATION: {}", v.property)
            } else if out.truncated {
                "ok (truncated: raise --depth for the full bound)".to_string()
            } else {
                "ok".to_string()
            };
            println!(
                "  {:<30} states={:<8} transitions={:<8} {verdict}",
                c.name, out.states, out.transitions
            );
            if let Some(v) = &out.violation {
                print!("{}", v.render());
            }
        }
        if !out.clean() {
            violations += 1;
        }
    }

    let mut errors = 0usize;
    if !json {
        println!("kernel launch skeletons (grid IR):");
    }
    for name in SHIPPED_VARIANTS {
        let mut report = analyze_grid(&search_wrapper(name));
        if deny_warnings {
            report.deny_warnings();
        }
        errors += report.denials();
        if json {
            json_parts.push(report.to_json());
        } else {
            let text = report.render_text();
            if text.is_empty() {
                println!("  {name:<30} clean (bounds, must-defined, divergence)");
            } else {
                print!("{text}");
            }
        }
    }

    if json {
        println!("[{}]", json_parts.join(","));
    } else {
        println!("verify: {violations} violation(s), {errors} error(s)");
    }
    if violations + errors > 0 {
        Err(format!("{violations} violation(s), {errors} deny-level diagnostic(s)"))
    } else {
        Ok(())
    }
}

fn cmd_disasm(args: &Args) -> Result<(), String> {
    let algo = parse_algo(args)?;
    use eks_gpusim::arch::ComputeCapability;
    let cc = match args.get_or("cc", "3.0") {
        "1.x" | "1.*" | "1.1" => ComputeCapability::Sm1x,
        "2.0" => ComputeCapability::Sm20,
        "2.1" => ComputeCapability::Sm21,
        "3.0" => ComputeCapability::Sm30,
        "3.5" => ComputeCapability::Sm35,
        other => return Err(format!("unknown --cc {other:?}")),
    };
    let tool = match args.get_or("tool", "ours") {
        "ours" => Tool::OurApproach,
        "barswf" => Tool::BarsWf,
        "cryptohaze" => Tool::Cryptohaze,
        other => return Err(format!("unknown --tool {other:?}")),
    };
    let tk = ToolKernel::build(tool, algo, cc);
    let k = lower(&tk.ir, tk.options);
    print!("{}", eks_gpusim::disasm(&k));
    Ok(())
}

fn cmd_profile(args: &Args) -> Result<(), String> {
    let algo = parse_algo(args)?;
    let device = eks_gpusim::device::DeviceCatalog::find(args.get_or("device", "660"))
        .ok_or("unknown --device")?;
    let tk = ToolKernel::build(Tool::OurApproach, algo, device.cc);
    let k = lower(&tk.ir, tk.options);
    let cfg = SimConfig::for_cc(device.cc);
    let sim = simulate(&k, cfg);
    println!("{} on {} (simulated):", algo.name(), device.name);
    let report = eks_gpusim::ProfilerReport::new(&k, &sim, cfg.warps);
    print!("{}", report.render());
    println!("throughput        : {:.1} MKey/s", sim.device_mkeys(&device));
    Ok(())
}

fn cmd_audit(args: &Args) -> Result<(), String> {
    let algo = parse_algo(args)?;
    let digests_arg = args.get("digests").ok_or("audit requires --digests h1,h2,...")?;
    let accounts: Vec<String> = match args.get("accounts") {
        Some(a) => a.split(',').map(|s| s.to_string()).collect(),
        None => (1..).map(|i| format!("account{i}")).take(digests_arg.split(',').count()).collect(),
    };
    let digests: Vec<Vec<u8>> = digests_arg
        .split(',')
        .map(|h| from_hex(h).ok_or(format!("bad hex digest {h:?}")))
        .collect::<Result<_, _>>()?;
    if accounts.len() != digests.len() {
        return Err("--accounts and --digests must have the same length".into());
    }
    let charset = parse_charset(args)?;
    let min: u32 = args.get_parse_or("min", 1)?;
    let max: u32 = args.get_parse_or("max", 4)?;
    let space = KeySpace::new(charset, min, max, Order::FirstCharFastest)
        .map_err(|e| e.to_string())?;
    let entries: Vec<eks_cracker::AuditEntry> = accounts
        .into_iter()
        .zip(digests)
        .map(|(account, digest)| eks_cracker::AuditEntry { account, digest })
        .collect();
    let mut session = eks_cracker::AuditSession::new(algo, entries, &space);
    println!("auditing over {} candidates:", space.size());
    let report = session.run(&space, |_| {});
    print!("{}", report.render());
    Ok(())
}

fn cmd_strength(args: &Args) -> Result<(), String> {
    let algo = parse_algo(args)?;
    let password = args.positional(1).ok_or("strength requires a password argument")?;
    let charset = match args.get("charset") {
        Some(_) => parse_charset(args)?,
        None => Charset::alphanumeric(),
    };
    let min: u32 = args.get_parse_or("min", 1)?;
    let max: u32 = args.get_parse_or("max", 8)?;
    let space = KeySpace::new(charset, min, max, Order::FirstCharFastest)
        .map_err(|e| e.to_string())?;
    let key = eks_keyspace::Key::from_bytes(password.as_bytes());
    println!(
        "password {password:?} vs the {} keyspace ({} candidates):",
        algo.name(),
        space.size()
    );
    let net = paper_network(2e-3);
    println!("{:<24}{:>14}{:>16}{:>16}", "attacker", "MKey/s", "time to reach", "full sweep");
    for dev in eks_gpusim::device::DeviceCatalog::paper_devices() {
        match eks_cluster::estimate_against_device(&key, &space, algo, &dev) {
            Some(e) => println!(
                "{:<24}{:>14.0}{:>16}{:>16}",
                dev.name,
                e.attacker_mkeys,
                eks_cluster::StrengthEstimate::render_duration(e.time_to_reach_s),
                eks_cluster::StrengthEstimate::render_duration(e.full_sweep_s)
            ),
            None => {
                println!("password is outside this keyspace — it survives this sweep outright");
                return Ok(());
            }
        }
    }
    if let Some(e) = eks_cluster::estimate_against_cluster(&key, &space, algo, &net) {
        println!(
            "{:<24}{:>14.0}{:>16}{:>16}",
            "whole paper network",
            e.attacker_mkeys,
            eks_cluster::StrengthEstimate::render_duration(e.time_to_reach_s),
            eks_cluster::StrengthEstimate::render_duration(e.full_sweep_s)
        );
    }
    Ok(())
}

fn cmd_devices() -> Result<(), String> {
    println!("{:<24}{:>6}{:>8}{:>12}{:>6}", "device", "MPs", "cores", "clock MHz", "cc");
    for d in DeviceCatalog::paper_devices() {
        println!(
            "{:<24}{:>6}{:>8}{:>12}{:>6}",
            d.name, d.mp_count, d.cores, d.clock_mhz, d.cc.label()
        );
    }
    Ok(())
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let algo = parse_algo(args)?;
    let keys: f64 = args.get_parse_or("keys", 5e11)?;
    if keys <= 0.0 || !keys.is_finite() {
        return Err("--keys must be positive".into());
    }
    let (net, label) = match args.get("topology") {
        Some(t) => (eks_cluster::parse_topology(t, 2e-3)?, t.to_string()),
        None => (
            paper_network(2e-3),
            "A(540M) -> B(660, 550Ti), A -> C(8600M) -> D(8800)".to_string(),
        ),
    };
    let r = simulate_search(&net, Tool::OurApproach, algo, keys, SimParams::default());
    println!("network: {label}");
    println!("keys            : {keys:.3e}");
    println!("makespan        : {:.1} s (simulated)", r.makespan_s);
    println!("throughput      : {:.1} MKey/s", r.achieved_mkeys);
    println!("sum theoretical : {:.1} MKey/s", r.sum_theoretical_mkeys);
    println!("efficiency      : {:.3}", r.table9_efficiency());
    Ok(())
}

/// Really crack a digest across a heterogeneous cluster: every simulated
/// GPU becomes a [`SimKernelBackend`], every `cpu:N` worker a lane
/// backend, and the whole tree runs through the one dispatch core.
fn cmd_cluster(args: &Args) -> Result<(), String> {
    let algo = parse_algo(args)?;
    let digest_hex = args.get("digest").ok_or("cluster requires --digest <hex>")?;
    let digest = from_hex(digest_hex).ok_or("digest is not valid hex")?;
    if digest.len() != algo.digest_len() {
        return Err(format!(
            "digest length {} does not match {} ({} bytes)",
            digest.len(),
            algo.name(),
            algo.digest_len()
        ));
    }
    let charset = parse_charset(args)?;
    let min: u32 = args.get_parse_or("min", 1)?;
    let max: u32 = args.get_parse_or("max", 4)?;
    let space =
        KeySpace::new(charset, min, max, Order::FirstCharFastest).map_err(|e| e.to_string())?;
    let (net, label) = match args.get("topology") {
        Some(t) => (eks_cluster::parse_topology(t, 0.0)?, t.to_string()),
        None => (
            paper_network(0.0).with_cpu("host-cpu", 2),
            "paper network + host cpu:2".to_string(),
        ),
    };
    let sched = parse_sched(args, SchedPolicy::Static)?;
    let (telemetry, log) = parse_telemetry(args)?;
    let targets = TargetSet::new(algo, &[digest]);
    log.info(format!(
        "cluster [{label}]: searching {} {} candidates ({sched} schedule)",
        space.size(),
        algo.name()
    ));
    let r = run_cluster_search_observed(
        &net,
        &space,
        &targets,
        space.interval(),
        !args.has("all"),
        sched,
        &telemetry,
    );
    print!("{}", render_worker_stats(&r.stats));
    log.info(format!(
        "parallel efficiency: {:.1}% (the paper reports 85-90%)",
        r.parallel_efficiency()
    ));
    write_artifacts(args, &telemetry, &log)?;
    if r.hits.is_empty() {
        return Err(format!("not found; tested {} keys", r.tested));
    }
    for (id, key, _) in &r.hits {
        println!("FOUND: \"{key}\" (identifier {id})");
    }
    println!("tested {} keys across {} workers", r.tested, r.per_device.len());
    Ok(())
}

fn cmd_tune(args: &Args) -> Result<(), String> {
    let threads: usize = args.get_parse_or("threads", 4)?;
    println!("{:<24}{:>14}{:>14}{:>14}", "worker", "theoretical", "achieved", "n_j (99%)");
    for d in DeviceCatalog::paper_devices() {
        let t = tune_device(&d, Tool::OurApproach, HashAlgo::Md5, AchievedModel::Analytic);
        println!(
            "{:<24}{:>9.1} MK/s{:>9.1} MK/s{:>14}",
            d.name, t.theoretical_mkeys, t.achieved_mkeys, t.min_batch
        );
    }
    let cpu = eks_cluster::tuning::measure_cpu_mkeys(threads, HashAlgo::Md5);
    println!("{:<24}{:>14}{:>9.1} MK/s  (measured on this host)", format!("local CPU x{threads}"), "", cpu);
    Ok(())
}

/// `eks bench [--json FILE]`: the host-tuning report. Runs the tuning
/// sweep for every CPU backend and algorithm on this machine, prints
/// the single-thread rate table plus the detected CPU features and the
/// selected ISA, and with `--json` writes the schema-3 machine-readable
/// report (cpu_features, simd_isa, per-(backend, algo) rates, and the
/// implementation `auto` tuned in per algorithm).
fn cmd_bench(args: &Args) -> Result<(), String> {
    use std::fmt::Write as _;
    const ALGOS: [HashAlgo; 3] = [HashAlgo::Md5, HashAlgo::Sha1, HashAlgo::Ntlm];
    // Lowercase algorithm keys, matching the CLI's `--algo` vocabulary
    // and the committed bench artifact.
    fn algo_key(algo: HashAlgo) -> &'static str {
        match algo {
            HashAlgo::Md5 => "md5",
            HashAlgo::Sha1 => "sha1",
            HashAlgo::Ntlm => "ntlm",
        }
    }

    let features = eks_hashes::cpu_features();
    let isa = SimdIsa::detect();
    println!(
        "cpu features: {}",
        features
            .iter()
            .map(|(name, on)| format!("{name}={}", if *on { "yes" } else { "no" }))
            .collect::<Vec<_>>()
            .join("  ")
    );
    match isa {
        Some(isa) => println!("selected isa: {isa}"),
        None => println!("selected isa: none (autovectorized fallback)"),
    }

    // Every CPU backend the host can run; the simulated GPUs have their
    // own `tune` table and stay out of the host-tuning report.
    let kinds: Vec<BackendKind> = BackendKind::ALL
        .into_iter()
        .filter(|k| *k != BackendKind::SimGpu && k.is_available())
        .collect();
    let auto = AutoBackend::new(Telemetry::disabled());
    let backend_of = |kind: BackendKind| -> Box<dyn Backend> {
        match kind {
            BackendKind::Scalar => cpu_backend(Lanes::Scalar),
            BackendKind::Lanes8 => cpu_backend(Lanes::L8),
            BackendKind::Lanes16 => cpu_backend(Lanes::L16),
            BackendKind::Simd => {
                Box::new(SimdBackend::best().expect("filtered to available kinds"))
            }
            BackendKind::Auto => Box::new(AutoBackend::new(Telemetry::disabled())),
            BackendKind::SimGpu => unreachable!("simgpu is filtered out above"),
        }
    };

    println!(
        "{:<10} {:>10} {:>10} {:>10}   (tuned MKey/s, single thread)",
        "backend", "md5", "sha1", "ntlm"
    );
    let mut rates: Vec<(BackendKind, HashAlgo, f64)> = Vec::new();
    for &kind in &kinds {
        let backend = backend_of(kind);
        let mut line = format!("{:<10}", kind.name());
        for algo in ALGOS {
            let rate = backend.tuned_rate(algo);
            let _ = write!(line, " {rate:>10.3}");
            rates.push((kind, algo, rate));
        }
        println!("{line}");
    }
    let choices: Vec<(HashAlgo, String)> =
        ALGOS.into_iter().map(|algo| (algo, auto.choice_name(algo))).collect();
    println!(
        "auto tuned in: {}",
        choices
            .iter()
            .map(|(algo, choice)| format!("{}={choice}", algo_key(*algo)))
            .collect::<Vec<_>>()
            .join("  ")
    );

    if let Some(path) = args.get("json") {
        let features_body = features
            .iter()
            .map(|(name, on)| format!("\"{name}\": {on}"))
            .collect::<Vec<_>>()
            .join(", ");
        let isa_body = match isa {
            Some(isa) => format!("\"{isa}\""),
            None => "null".to_string(),
        };
        let mut rates_body = String::new();
        for (kind, algo, rate) in &rates {
            let _ = write!(
                rates_body,
                "{}    {{\"backend\": \"{}\", \"algo\": \"{}\", \"mkeys_per_s\": {rate:.3}}}",
                if rates_body.is_empty() { "" } else { ",\n" },
                kind.name(),
                algo_key(*algo)
            );
        }
        let choices_body = choices
            .iter()
            .map(|(algo, choice)| format!("\"{}\": \"{choice}\"", algo_key(*algo)))
            .collect::<Vec<_>>()
            .join(", ");
        let json = format!(
            "{{\n  \"schema\": 3,\n  \"kind\": \"host-tuning\",\n  \
             \"cpu_features\": {{{features_body}}},\n  \"simd_isa\": {isa_body},\n  \
             \"rates\": [\n{rates_body}\n  ],\n  \"auto_choices\": {{{choices_body}}}\n}}\n"
        );
        std::fs::write(path, json).map_err(|e| format!("cannot write --json {path:?}: {e}"))?;
        println!("wrote host-tuning report to {path}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::parse(s.iter().map(|x| x.to_string())).unwrap()
    }

    #[test]
    fn crack_round_trip() {
        let digest = to_hex(&HashAlgo::Md5.hash(b"cab"));
        let a = args(&["crack", "--algo", "md5", "--digest", &digest, "--max", "3", "--threads", "2"]);
        assert!(run("crack", &a).is_ok());
    }

    #[test]
    fn crack_lanes_flags() {
        let digest = to_hex(&HashAlgo::Md5.hash(b"cab"));
        for lanes in ["scalar", "8", "16"] {
            let a = args(&[
                "crack", "--digest", &digest, "--max", "3", "--threads", "2", "--lanes", lanes,
            ]);
            assert!(run("crack", &a).is_ok(), "--lanes {lanes}");
        }
        let a = args(&["crack", "--digest", &digest, "--max", "3", "--batch"]);
        assert!(run("crack", &a).is_ok(), "--batch is the default made explicit");
        let bad = args(&["crack", "--digest", &digest, "--lanes", "32"]);
        assert!(run("crack", &bad).is_err(), "unsupported width");
        let contradiction =
            args(&["crack", "--digest", &digest, "--batch", "--lanes", "scalar"]);
        assert!(run("crack", &contradiction).is_err());
    }

    #[test]
    fn crack_backend_flag() {
        let digest = to_hex(&HashAlgo::Md5.hash(b"cab"));
        let mut backends = vec!["scalar", "lanes8", "lanes16", "auto", "simgpu"];
        if BackendKind::Simd.is_available() {
            backends.push("simd");
        }
        for backend in backends {
            let a = args(&[
                "crack", "--digest", &digest, "--max", "3", "--threads", "2", "--backend", backend,
            ]);
            assert!(run("crack", &a).is_ok(), "--backend {backend}");
        }
        let bad = args(&["crack", "--digest", &digest, "--backend", "cuda"]);
        assert!(run("crack", &bad).is_err(), "unknown backend");
        let bad_isa = args(&[
            "crack", "--digest", &digest, "--backend", "simd", "--isa", "mmx",
        ]);
        assert!(run("crack", &bad_isa).is_err(), "unknown --isa");
        let stray_isa = args(&["crack", "--digest", &digest, "--isa", "avx2"]);
        assert!(run("crack", &stray_isa).is_err(), "--isa without --backend simd");
        // Forcing an ISA the CPU lacks must be a friendly error, not a
        // panic; at most one of the ISAs can be the detected one.
        for isa in ["avx2", "avx512", "neon"] {
            if SimdIsa::parse(isa).is_some_and(|i| i.is_available()) {
                continue;
            }
            let forced = args(&[
                "crack", "--digest", &digest, "--max", "3", "--backend", "simd", "--isa", isa,
            ]);
            assert!(run("crack", &forced).is_err(), "unavailable --isa {isa}");
        }
        let conflict =
            args(&["crack", "--digest", &digest, "--backend", "scalar", "--lanes", "8"]);
        assert!(run("crack", &conflict).is_err(), "--backend conflicts with --lanes");
        let masked = args(&[
            "crack", "--digest", &digest, "--backend", "scalar", "--mask", "?l?l?l",
        ]);
        assert!(run("crack", &masked).is_err(), "--backend is plain-search only");
        let nodev =
            args(&["crack", "--digest", &digest, "--backend", "simgpu", "--device", "voodoo2"]);
        assert!(run("crack", &nodev).is_err(), "unknown simgpu device");
    }

    #[test]
    fn cluster_command_cracks_heterogeneously() {
        let digest = to_hex(&HashAlgo::Md5.hash(b"cab"));
        let a = args(&[
            "cluster", "--digest", &digest, "--max", "3",
            "--topology", "box(660, cpu:2)",
        ]);
        assert!(run("cluster", &a).is_ok());
        let not_found = args(&[
            "cluster", "--digest", &"00".repeat(16), "--max", "2",
            "--topology", "box(660, cpu:2)",
        ]);
        assert!(run("cluster", &not_found).is_err());
        let no_digest = args(&["cluster"]);
        assert!(run("cluster", &no_digest).is_err());
    }

    #[test]
    fn crack_sched_and_chunk_flags() {
        let digest = to_hex(&HashAlgo::Md5.hash(b"cab"));
        for sched in ["static", "queue", "steal"] {
            let a = args(&[
                "crack", "--digest", &digest, "--max", "3", "--threads", "2", "--sched", sched,
            ]);
            assert!(run("crack", &a).is_ok(), "--sched {sched}");
        }
        let a = args(&["crack", "--digest", &digest, "--max", "3", "--chunk", "1024", "--stats"]);
        assert!(run("crack", &a).is_ok(), "--chunk override with stats table");
        let bad = args(&["crack", "--digest", &digest, "--sched", "fifo"]);
        assert!(run("crack", &bad).is_err(), "unknown policy");
        let masked =
            args(&["crack", "--digest", &digest, "--sched", "steal", "--mask", "?l?l?l"]);
        assert!(run("crack", &masked).is_err(), "--sched is plain-search only");
    }

    #[test]
    fn crack_chunk_zero_is_a_usage_error_not_a_panic() {
        let digest = to_hex(&HashAlgo::Md5.hash(b"cab"));
        let a = args(&["crack", "--digest", &digest, "--max", "3", "--chunk", "0"]);
        let err = run("crack", &a).expect_err("chunk 0 must be rejected");
        assert!(err.contains("--chunk"), "{err}");
        let a = args(&["crack", "--digest", &digest, "--chunk", "lots"]);
        assert!(run("crack", &a).is_err(), "non-numeric chunk");
        let a = args(&["crack", "--digest", &digest, "--threads", "0"]);
        let err = run("crack", &a).expect_err("threads 0 must be rejected");
        assert!(err.contains("--threads"), "{err}");
    }

    #[test]
    fn cluster_sched_flag() {
        let digest = to_hex(&HashAlgo::Md5.hash(b"cab"));
        let a = args(&[
            "cluster", "--digest", &digest, "--max", "3",
            "--topology", "box(660, cpu:2)", "--sched", "steal",
        ]);
        assert!(run("cluster", &a).is_ok());
        let bad = args(&[
            "cluster", "--digest", &digest, "--max", "3",
            "--topology", "box(660)", "--sched", "lifo",
        ]);
        assert!(run("cluster", &bad).is_err());
    }

    #[test]
    fn crack_writes_parseable_telemetry_artifacts_and_report_renders_them() {
        let dir = std::env::temp_dir().join(format!("eks-cli-telemetry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let metrics = dir.join("m.prom");
        let trace = dir.join("t.jsonl");
        let digest = to_hex(&HashAlgo::Md5.hash(b"zzz"));
        let a = args(&[
            "crack",
            "--digest",
            &digest,
            "--max",
            "3",
            "--threads",
            "2",
            "--all",
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
        ]);
        assert!(run("crack", &a).is_ok());

        // Both artifacts must parse with the self-contained checkers.
        let samples = parse_prometheus(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
        assert!(samples.iter().any(|s| s.name == "eks_keys_tested_total"), "{samples:?}");
        let records = parse_trace_jsonl(&std::fs::read_to_string(&trace).unwrap()).unwrap();
        assert!(records.iter().any(|r| r.name == "scan"), "scan spans recorded");

        // And `eks report` renders them.
        let r = args(&[
            "report",
            "--metrics",
            metrics.to_str().unwrap(),
            "--trace",
            trace.to_str().unwrap(),
        ]);
        assert!(run("report", &r).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bench_writes_the_schema3_host_tuning_report() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("eks-cli-bench-{}.json", std::process::id()));
        let a = args(&["bench", "--json", path.to_str().unwrap()]);
        assert!(run("bench", &a).is_ok());
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"schema\": 3"), "{body}");
        assert!(body.contains("\"cpu_features\""), "{body}");
        assert!(body.contains("\"avx2\""), "{body}");
        assert!(body.contains("\"simd_isa\""), "{body}");
        assert!(body.contains("\"auto_choices\""), "{body}");
        assert!(body.contains("\"backend\": \"auto\""), "{body}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crack_with_auto_backend_records_isa_and_tuned_rate_gauges() {
        let dir = std::env::temp_dir();
        let metrics = dir.join(format!("eks-cli-isa-{}.prom", std::process::id()));
        let digest = to_hex(&HashAlgo::Md5.hash(b"zzz"));
        let a = args(&[
            "crack", "--digest", &digest, "--max", "3", "--threads", "2", "--all",
            "--backend", "auto", "--metrics-out", metrics.to_str().unwrap(),
        ]);
        assert!(run("crack", &a).is_ok());
        let samples = parse_prometheus(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
        assert!(
            samples.iter().any(|s| s.name == names::BACKEND_ISA
                && s.label("backend") == Some("auto")
                && s.value == 1.0),
            "{samples:?}"
        );
        assert!(
            samples
                .iter()
                .any(|s| s.name == names::BACKEND_RATE_MKEYS && s.value > 0.0),
            "{samples:?}"
        );
        std::fs::remove_file(&metrics).ok();
    }

    #[test]
    fn report_requires_metrics_and_rejects_garbage() {
        assert!(run("report", &args(&["report"])).is_err(), "needs --metrics");
        let missing = args(&["report", "--metrics", "/nonexistent/m.prom"]);
        assert!(run("report", &missing).is_err());
        let dir = std::env::temp_dir();
        let bad = dir.join(format!("eks-cli-bad-{}.prom", std::process::id()));
        std::fs::write(&bad, "eks_x{ 1\n").unwrap();
        let a = args(&["report", "--metrics", bad.to_str().unwrap()]);
        let err = run("report", &a).expect_err("malformed exposition");
        assert!(err.contains("invalid Prometheus"), "{err}");
        std::fs::remove_file(&bad).ok();
    }

    #[test]
    fn cluster_writes_artifacts_too() {
        let dir = std::env::temp_dir();
        let metrics = dir.join(format!("eks-cli-cluster-{}.prom", std::process::id()));
        let digest = to_hex(&HashAlgo::Md5.hash(b"cab"));
        let a = args(&[
            "cluster",
            "--digest",
            &digest,
            "--max",
            "3",
            "--topology",
            "box(660, cpu:2)",
            "--metrics-out",
            metrics.to_str().unwrap(),
        ]);
        assert!(run("cluster", &a).is_ok());
        let samples = parse_prometheus(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
        assert!(samples.iter().any(|s| s.name == "eks_device_tuned_rate_mkeys"), "{samples:?}");
        assert!(samples.iter().any(|s| s.name == "eks_cluster_efficiency_percent"), "{samples:?}");
        std::fs::remove_file(&metrics).ok();
    }

    #[test]
    fn quiet_and_verbose_conflict_is_a_usage_error() {
        let digest = to_hex(&HashAlgo::Md5.hash(b"cab"));
        let a = args(&["crack", "--digest", &digest, "--max", "3", "--quiet", "--verbose"]);
        let err = run("crack", &a).expect_err("contradictory levels");
        assert!(err.contains("--quiet"), "{err}");
        // Each alone is fine, as is the progress flag.
        let q = args(&["crack", "--digest", &digest, "--max", "3", "--quiet"]);
        assert!(run("crack", &q).is_ok());
        let p = args(&["crack", "--digest", &digest, "--max", "3", "--progress", "--verbose"]);
        assert!(run("crack", &p).is_ok());
    }

    #[test]
    fn crack_salted_round_trip() {
        let digest = to_hex(&HashAlgo::Sha1.hash_long(b"s-ab"));
        let a = args(&[
            "crack", "--algo", "sha1", "--digest", &digest, "--max", "2", "--salt-prefix", "s-",
        ]);
        assert!(run("crack", &a).is_ok());
    }

    #[test]
    fn crack_rejects_bad_digest() {
        let a = args(&["crack", "--digest", "zz"]);
        assert!(run("crack", &a).is_err());
        let a = args(&["crack", "--digest", "aabb"]);
        assert!(run("crack", &a).is_err(), "wrong length");
    }

    #[test]
    fn crack_reports_not_found() {
        // An impossible digest over a tiny space.
        let a = args(&["crack", "--digest", &"00".repeat(16), "--max", "2", "--threads", "1"]);
        assert!(run("crack", &a).is_err());
    }

    #[test]
    fn hash_command() {
        let a = args(&["hash", "abc", "--algo", "md5"]);
        assert!(run("hash", &a).is_ok());
        let a = args(&["hash"]);
        assert!(run("hash", &a).is_err());
    }

    #[test]
    fn mine_low_difficulty() {
        let a = args(&["mine", "--difficulty", "8", "--threads", "2"]);
        assert!(run("mine", &a).is_ok());
    }

    #[test]
    fn informational_commands() {
        assert!(run("devices", &args(&["devices"])).is_ok());
        assert!(run("help", &args(&["help"])).is_ok());
        let a = args(&["simulate", "--keys", "1e9"]);
        assert!(run("simulate", &a).is_ok());
    }

    #[test]
    fn simulate_custom_topology() {
        let a = args(&["simulate", "--keys", "1e9", "--topology", "A(660) -> B(550Ti)"]);
        assert!(run("simulate", &a).is_ok());
        let bad = args(&["simulate", "--topology", "A(madeup)"]);
        assert!(run("simulate", &bad).is_err());
    }

    #[test]
    fn disasm_lists_kernels() {
        assert!(run("disasm", &args(&["disasm", "--cc", "3.0"])).is_ok());
        assert!(run("disasm", &args(&["disasm", "--cc", "9.9"])).is_err());
        assert!(run("disasm", &args(&["disasm", "--tool", "barswf", "--cc", "1.x"])).is_ok());
    }

    #[test]
    fn profile_and_audit_commands() {
        assert!(run("profile", &args(&["profile", "--device", "550"])).is_ok());
        assert!(run("profile", &args(&["profile", "--device", "voodoo2"])).is_err());
        let d1 = to_hex(&HashAlgo::Md5.hash(b"cab"));
        let d2 = to_hex(&HashAlgo::Md5.hash(b"zzzzzzzz")); // survivor
        let a = args(&[
            "audit", "--digests", &format!("{d1},{d2}"), "--accounts", "alice,bob", "--max", "3",
        ]);
        assert!(run("audit", &a).is_ok());
        let bad = args(&["audit", "--digests", "zz"]);
        assert!(run("audit", &bad).is_err());
    }

    #[test]
    fn strength_command() {
        assert!(run("strength", &args(&["strength", "Cat42"])).is_ok());
        assert!(run("strength", &args(&["strength", "p@ss!"])).is_ok(), "out of space is informative");
        assert!(run("strength", &args(&["strength"])).is_err(), "needs a password");
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run("frobnicate", &args(&["frobnicate"])).is_err());
    }

    #[test]
    fn analyze_default_is_clean_even_denying_warnings() {
        // The optimized MD5 kernel must produce zero findings, so the CI
        // gate (`eks analyze --deny warnings`) passes.
        assert!(run("analyze", &args(&["analyze"])).is_ok());
        assert!(run("analyze", &args(&["analyze", "--deny", "warnings"])).is_ok());
        assert!(run("analyze", &args(&["analyze", "--json"])).is_ok());
    }

    #[test]
    fn analyze_naive_variant_fails_the_warning_gate() {
        // Warnings (missed PRMT / funnel lowerings) are tolerated by
        // default but fatal under --deny warnings.
        let a = args(&["analyze", "--variant", "naive"]);
        assert!(run("analyze", &a).is_ok());
        let a = args(&["analyze", "--variant", "naive", "--deny", "warnings"]);
        assert!(run("analyze", &a).is_err());
    }

    #[test]
    fn analyze_zero_tolerance_trips_the_budget_gate() {
        // Our compiled mixes track the paper's tables within a few
        // percent, not exactly: tightening the tolerance to zero must
        // produce deny-level budget drift and a non-zero exit.
        let a = args(&["analyze", "--tolerance", "0.0"]);
        assert!(run("analyze", &a).is_err());
    }

    #[test]
    fn analyze_rejects_bad_flags() {
        assert!(run("analyze", &args(&["analyze", "--variant", "turbo"])).is_err());
        assert!(run("analyze", &args(&["analyze", "--deny", "everything"])).is_err());
        assert!(run("analyze", &args(&["analyze", "--tolerance", "7"])).is_err());
        // SHA-1 has no reversed-only variant.
        let a = args(&["analyze", "--algo", "sha1", "--variant", "reversed"]);
        assert!(run("analyze", &a).is_err());
    }

    #[test]
    fn analyze_other_algos() {
        assert!(run("analyze", &args(&["analyze", "--algo", "sha1"])).is_ok());
        assert!(run("analyze", &args(&["analyze", "--algo", "ntlm"])).is_ok());
        // NTLM naive on cc 3.5 leaves funnel shifts on the table.
        let a = args(&["analyze", "--algo", "ntlm", "--variant", "naive", "--deny", "warnings"]);
        assert!(run("analyze", &a).is_err());
    }

    #[test]
    fn verify_default_suite_is_clean() {
        // Small worker/interval counts keep the exhaustive exploration
        // fast enough for a unit test; every shipped configuration and
        // kernel wrapper must come back clean.
        let a = args(&["verify", "--workers", "2", "--intervals", "4"]);
        assert!(run("verify", &a).is_ok());
        let a = args(&["verify", "--workers", "2", "--intervals", "4", "--json"]);
        assert!(run("verify", &a).is_ok());
        let a = args(&["verify", "--workers", "2", "--intervals", "4", "--deny", "violations"]);
        assert!(run("verify", &a).is_ok());
        let a = args(&["verify", "--workers", "2", "--intervals", "4", "--deny", "warnings"]);
        assert!(run("verify", &a).is_ok());
    }

    #[test]
    fn verify_flags_every_seeded_mutant() {
        // A verifier that cannot flag a seeded bug is vacuous: every
        // mutant must produce a non-zero exit.
        for m in [
            "drop-lease",
            "double-count",
            "merge-highest",
            "ignore-cancel",
            "unguarded-store",
            "uninit-read",
            "divergent-barrier",
        ] {
            let a = args(&["verify", "--workers", "2", "--intervals", "4", "--mutate", m]);
            assert!(run("verify", &a).is_err(), "--mutate {m} must fail");
        }
    }

    #[test]
    fn verify_scheduler_json_shape_is_pinned() {
        // `eks verify --json` shares the analyzer's schema stamp; the
        // field order of the scheduler-check objects is contract (see
        // tests/diagnostics_schema.rs for the kernel-report half).
        let out =
            eks_verify::check(eks_verify::ModelConfig::exhaustive(1, 2), Default::default());
        let j = sched_check_json("scheduler/demo", 1, 1, &out);
        assert!(
            j.starts_with(
                "{\"schema\":1,\"check\":\"scheduler/demo\",\"workers\":1,\"intervals\":1,"
            ),
            "{j}"
        );
        for key in ["\"states\":", "\"transitions\":", "\"deepest\":", "\"truncated\":false"] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        assert!(j.ends_with("\"violations\":0,\"violation\":null}"), "{j}");
    }

    #[test]
    fn verify_rejects_bad_flags() {
        assert!(run("verify", &args(&["verify", "--workers", "9"])).is_err());
        assert!(run("verify", &args(&["verify", "--intervals", "40"])).is_err());
        assert!(run("verify", &args(&["verify", "--deny", "everything"])).is_err());
        assert!(run("verify", &args(&["verify", "--mutate", "nonexistent"])).is_err());
        assert!(run("verify", &args(&["verify", "--depth", "banana"])).is_err());
    }

    #[test]
    fn mask_attack_via_cli() {
        let digest = to_hex(&HashAlgo::Md5.hash(b"Ab1"));
        let a = args(&["crack", "--digest", &digest, "--mask", "?u?l?d", "--threads", "2"]);
        assert!(run("crack", &a).is_ok());
        let bad = args(&["crack", "--digest", &digest, "--mask", "?z"]);
        assert!(run("crack", &bad).is_err());
    }

    #[test]
    fn hybrid_attack_via_cli() {
        let digest = to_hex(&HashAlgo::Md5.hash(b"cat7"));
        let a = args(&["crack", "--digest", &digest, "--words", "dog,cat", "--suffix-digits", "1"]);
        assert!(run("crack", &a).is_ok());
    }

    #[test]
    fn ntlm_crack_via_cli() {
        let digest = to_hex(&HashAlgo::Ntlm.hash(b"cab"));
        let a = args(&["crack", "--algo", "ntlm", "--digest", &digest, "--max", "3", "--threads", "2"]);
        assert!(run("crack", &a).is_ok());
    }

    #[test]
    fn custom_charset() {
        let digest = to_hex(&HashAlgo::Md5.hash(b"cb"));
        let a = args(&["crack", "--digest", &digest, "--charset", "abc", "--max", "2"]);
        assert!(run("crack", &a).is_ok());
    }
}
