//! Property-based tests for the enumeration invariants the paper's
//! correctness rests on: bijectivity of `f`, the `next(i, f(i)) = f(i+1)`
//! contract, and ordering.

use eks_core::prop::{forall, Rng};
use eks_keyspace::{decode, encode, Charset, Interval, Key, KeySpace, Order};

fn arb_charset(rng: &mut Rng) -> Charset {
    // Draw a charset size and build from a fixed distinct symbol pool.
    let n = rng.range(2, 62) as usize;
    let pool: Vec<u8> = (b'a'..=b'z')
        .chain(b'A'..=b'Z')
        .chain(b'0'..=b'9')
        .collect();
    Charset::from_bytes(&pool[..n]).expect("distinct pool")
}

fn arb_order(rng: &mut Rng) -> Order {
    if rng.below(2) == 0 {
        Order::LastCharFastest
    } else {
        Order::FirstCharFastest
    }
}

/// Clamp a drawn identifier seed so that both `id` and `id + 1` encode
/// within [`eks_keyspace::MAX_KEY_LEN`] characters for this charset.
fn clamp_id(cs: &Charset, seed: u128) -> u128 {
    let capacity =
        eks_keyspace::strings_with_lengths(cs.len() as u128, 0, eks_keyspace::MAX_KEY_LEN as u32)
            .unwrap_or(u128::MAX);
    seed % (capacity - 1)
}

/// decode(encode(id)) == id for both orders and arbitrary charsets.
#[test]
fn encode_decode_roundtrip() {
    forall("encode_decode_roundtrip", 256, |rng| {
        let cs = arb_charset(rng);
        let order = arb_order(rng);
        let id = clamp_id(&cs, rng.range_u128(0, 999_999_999));
        let k = encode(id, &cs, order);
        assert_eq!(decode(&k, &cs, order), Some(id));
    });
}

/// The bijection is injective: different ids give different keys.
#[test]
fn encode_injective() {
    forall("encode_injective", 256, |rng| {
        let cs = arb_charset(rng);
        let order = arb_order(rng);
        let a = clamp_id(&cs, rng.range_u128(0, 999_999));
        let b = clamp_id(&cs, rng.range_u128(0, 999_999));
        if a != b {
            assert_ne!(encode(a, &cs, order), encode(b, &cs, order));
        }
    });
}

/// next(f(i)) == f(i + 1): the Fig. 2 contract.
#[test]
fn advance_is_successor() {
    forall("advance_is_successor", 256, |rng| {
        let cs = arb_charset(rng);
        let order = arb_order(rng);
        let id = clamp_id(&cs, rng.range_u128(0, 999_999_999));
        let mut k = encode(id, &cs, order);
        eks_keyspace::encode::advance(&mut k, &cs, order);
        assert_eq!(k, encode(id + 1, &cs, order));
    });
}

/// Lengths are monotone in the identifier (enumeration by length).
#[test]
fn length_monotone() {
    forall("length_monotone", 256, |rng| {
        let cs = arb_charset(rng);
        let order = arb_order(rng);
        let id = clamp_id(&cs, rng.range_u128(0, 999_999));
        let a = encode(id, &cs, order);
        let b = encode(id + 1, &cs, order);
        assert!(b.len() >= a.len());
        assert!(b.len() - a.len() <= 1);
    });
}

/// In LastCharFastest order, same-length keys are lexicographic.
#[test]
fn last_char_fastest_is_lexicographic() {
    forall("last_char_fastest_is_lexicographic", 256, |rng| {
        let cs = arb_charset(rng);
        let id = clamp_id(&cs, rng.range_u128(0, 999_999));
        let a = encode(id, &cs, Order::LastCharFastest);
        let b = encode(id + 1, &cs, Order::LastCharFastest);
        if a.len() == b.len() {
            // Compare by digit indices, which is what "lexicographic in the
            // charset's order" means.
            let da: Vec<usize> = a.as_bytes().iter().map(|&x| cs.index_of(x).unwrap()).collect();
            let db: Vec<usize> = b.as_bytes().iter().map(|&x| cs.index_of(x).unwrap()).collect();
            assert!(da < db);
        }
    });
}

/// KeySpace-local ids survive the min_len offset round trip.
#[test]
fn keyspace_roundtrip() {
    forall("keyspace_roundtrip", 256, |rng| {
        let order = arb_order(rng);
        let min_len = rng.range(0, 3) as u32;
        let extra = rng.range(0, 2) as u32;
        let cs = Charset::from_bytes(b"abcde").unwrap();
        let space = KeySpace::new(cs, min_len, min_len + extra, order).unwrap();
        let id = rng.range_u128(0, 99_999) % space.size();
        let k = space.key_at(id);
        assert_eq!(space.id_of(&k), Some(id));
        assert!(k.len() as u32 >= min_len);
        assert!(k.len() as u32 <= min_len + extra);
    });
}

/// Splitting an interval by weights never loses or duplicates ids.
#[test]
fn split_weighted_partitions() {
    forall("split_weighted_partitions", 256, |rng| {
        let start = rng.range_u128(0, 999_999);
        let len = rng.range_u128(0, 99_999);
        let n_weights = rng.range(1, 5) as usize;
        let w = rng.vec(n_weights, |r| r.f64_range(0.0, 10.0));
        let iv = Interval::new(start, len);
        let parts = iv.split_weighted(&w);
        assert_eq!(parts.iter().map(|p| p.len).sum::<u128>(), len);
        let mut cursor = start;
        for p in parts {
            assert_eq!(p.start, cursor);
            cursor += p.len;
        }
    });
}

/// Iterator agrees with direct indexing on arbitrary sub-intervals.
#[test]
fn iter_matches_indexing() {
    forall("iter_matches_indexing", 64, |rng| {
        let start = rng.range_u128(0, 199);
        let len = rng.range_u128(0, 199);
        let cs = Charset::from_bytes(b"abc").unwrap();
        let space = KeySpace::new(cs, 1, 5, Order::LastCharFastest).unwrap();
        let clamped_len = len.min(space.size().saturating_sub(start));
        let collected: Vec<Key> = space.iter(Interval::new(start, len)).map(|(_, k)| k).collect();
        assert_eq!(collected.len() as u128, clamped_len);
        for (i, k) in collected.iter().enumerate() {
            assert_eq!(k, &space.key_at(start + i as u128));
        }
    });
}

mod mask_and_hybrid {
    use eks_core::prop::{forall, Rng};
    use eks_keyspace::{HybridSpace, Key, MaskSpace};

    fn arb_mask(rng: &mut Rng) -> MaskSpace {
        // 1-5 positions drawn from the class alphabet plus literals.
        let parts = ["?l", "?u", "?d", "x", "-"];
        let n = rng.range(1, 5) as usize;
        let mask: String = (0..n).map(|_| parts[rng.index(parts.len())]).collect();
        MaskSpace::parse(&mask).expect("valid mask")
    }

    /// key_at/id_of round-trip for arbitrary masks.
    #[test]
    fn mask_roundtrip() {
        forall("mask_roundtrip", 256, |rng| {
            let mask = arb_mask(rng);
            let id = rng.range_u128(0, 999_999) % mask.size();
            let k = mask.key_at(id);
            assert_eq!(mask.id_of(&k), Some(id));
            assert_eq!(k.len(), mask.len());
        });
    }

    /// advance_key is the successor for arbitrary masks.
    #[test]
    fn mask_advance_is_successor() {
        forall("mask_advance_is_successor", 256, |rng| {
            let mask = arb_mask(rng);
            if mask.size() <= 1 {
                return;
            }
            let id = rng.range_u128(0, 999_999) % (mask.size() - 1);
            let mut k = mask.key_at(id);
            mask.advance_key(&mut k);
            assert_eq!(k, mask.key_at(id + 1));
        });
    }

    /// Mask enumeration is injective over a window.
    #[test]
    fn mask_injective_window() {
        forall("mask_injective_window", 128, |rng| {
            let mask = arb_mask(rng);
            let start = rng.range_u128(0, 999_999) % mask.size();
            let n = 50u128.min(mask.size() - start);
            let keys: Vec<Key> = (start..start + n).map(|i| mask.key_at(i)).collect();
            let mut dedup = keys.clone();
            dedup.dedup();
            assert_eq!(dedup.len(), keys.len());
        });
    }

    /// Hybrid spaces round-trip and enumerate suffix-fastest.
    #[test]
    fn hybrid_roundtrip() {
        forall("hybrid_roundtrip", 128, |rng| {
            let digits = rng.range(0, 2) as u32;
            let words: Vec<&[u8]> = vec![b"alpha", b"bravo", b"ch4rl1e"];
            let s = HybridSpace::with_digit_suffixes(&words, digits).unwrap();
            let id = rng.range_u128(0, 99_999) % s.size();
            let k = s.key_at(id);
            assert_eq!(s.id_of(&k), Some(id));
            // advance agrees with key_at
            if id + 1 < s.size() {
                let mut kk = k.clone();
                s.advance_key_at(id, &mut kk);
                assert_eq!(kk, s.key_at(id + 1));
            }
        });
    }
}
