//! Property-based tests for the enumeration invariants the paper's
//! correctness rests on: bijectivity of `f`, the `next(i, f(i)) = f(i+1)`
//! contract, and ordering.

use eks_keyspace::{decode, encode, Charset, Interval, Key, KeySpace, Order};
use proptest::prelude::*;

fn arb_charset() -> impl Strategy<Value = Charset> {
    // Draw a charset size and build from a fixed distinct symbol pool.
    (2usize..=62).prop_map(|n| {
        let pool: Vec<u8> = (b'a'..=b'z')
            .chain(b'A'..=b'Z')
            .chain(b'0'..=b'9')
            .collect();
        Charset::from_bytes(&pool[..n]).expect("distinct pool")
    })
}

fn arb_order() -> impl Strategy<Value = Order> {
    prop_oneof![Just(Order::LastCharFastest), Just(Order::FirstCharFastest)]
}

/// Clamp a drawn identifier seed so that both `id` and `id + 1` encode
/// within [`eks_keyspace::MAX_KEY_LEN`] characters for this charset.
fn clamp_id(cs: &Charset, seed: u128) -> u128 {
    let capacity =
        eks_keyspace::strings_with_lengths(cs.len() as u128, 0, eks_keyspace::MAX_KEY_LEN as u32)
            .unwrap_or(u128::MAX);
    seed % (capacity - 1)
}

proptest! {
    /// decode(encode(id)) == id for both orders and arbitrary charsets.
    #[test]
    fn encode_decode_roundtrip(cs in arb_charset(), order in arb_order(), seed in 0u128..1_000_000_000) {
        let id = clamp_id(&cs, seed);
        let k = encode(id, &cs, order);
        prop_assert_eq!(decode(&k, &cs, order), Some(id));
    }

    /// The bijection is injective: different ids give different keys.
    #[test]
    fn encode_injective(cs in arb_charset(), order in arb_order(), sa in 0u128..1_000_000, sb in 0u128..1_000_000) {
        let (a, b) = (clamp_id(&cs, sa), clamp_id(&cs, sb));
        prop_assume!(a != b);
        prop_assert_ne!(encode(a, &cs, order), encode(b, &cs, order));
    }

    /// next(f(i)) == f(i + 1): the Fig. 2 contract.
    #[test]
    fn advance_is_successor(cs in arb_charset(), order in arb_order(), seed in 0u128..1_000_000_000) {
        let id = clamp_id(&cs, seed);
        let mut k = encode(id, &cs, order);
        eks_keyspace::encode::advance(&mut k, &cs, order);
        prop_assert_eq!(k, encode(id + 1, &cs, order));
    }

    /// Lengths are monotone in the identifier (enumeration by length).
    #[test]
    fn length_monotone(cs in arb_charset(), order in arb_order(), seed in 0u128..1_000_000) {
        let id = clamp_id(&cs, seed);
        let a = encode(id, &cs, order);
        let b = encode(id + 1, &cs, order);
        prop_assert!(b.len() >= a.len());
        prop_assert!(b.len() - a.len() <= 1);
    }

    /// In LastCharFastest order, same-length keys are lexicographic.
    #[test]
    fn last_char_fastest_is_lexicographic(cs in arb_charset(), seed in 0u128..1_000_000) {
        let id = clamp_id(&cs, seed);
        let a = encode(id, &cs, Order::LastCharFastest);
        let b = encode(id + 1, &cs, Order::LastCharFastest);
        if a.len() == b.len() {
            // Compare by digit indices, which is what "lexicographic in the
            // charset's order" means.
            let da: Vec<usize> = a.as_bytes().iter().map(|&x| cs.index_of(x).unwrap()).collect();
            let db: Vec<usize> = b.as_bytes().iter().map(|&x| cs.index_of(x).unwrap()).collect();
            prop_assert!(da < db);
        }
    }

    /// KeySpace-local ids survive the min_len offset round trip.
    #[test]
    fn keyspace_roundtrip(
        order in arb_order(),
        min_len in 0u32..4,
        extra in 0u32..3,
        id_seed in 0u128..100_000,
    ) {
        let cs = Charset::from_bytes(b"abcde").unwrap();
        let space = KeySpace::new(cs, min_len, min_len + extra, order).unwrap();
        let id = id_seed % space.size();
        let k = space.key_at(id);
        prop_assert_eq!(space.id_of(&k), Some(id));
        prop_assert!(k.len() as u32 >= min_len);
        prop_assert!(k.len() as u32 <= min_len + extra);
    }

    /// Splitting an interval by weights never loses or duplicates ids.
    #[test]
    fn split_weighted_partitions(start in 0u128..1_000_000, len in 0u128..100_000, w in proptest::collection::vec(0.0f64..10.0, 1..6)) {
        let iv = Interval::new(start, len);
        let parts = iv.split_weighted(&w);
        prop_assert_eq!(parts.iter().map(|p| p.len).sum::<u128>(), len);
        let mut cursor = start;
        for p in parts {
            prop_assert_eq!(p.start, cursor);
            cursor += p.len;
        }
    }

    /// Iterator agrees with direct indexing on arbitrary sub-intervals.
    #[test]
    fn iter_matches_indexing(start in 0u128..200, len in 0u128..200) {
        let cs = Charset::from_bytes(b"abc").unwrap();
        let space = KeySpace::new(cs, 1, 5, Order::LastCharFastest).unwrap();
        let clamped_len = len.min(space.size().saturating_sub(start));
        let collected: Vec<Key> = space.iter(Interval::new(start, len)).map(|(_, k)| k).collect();
        prop_assert_eq!(collected.len() as u128, clamped_len);
        for (i, k) in collected.iter().enumerate() {
            prop_assert_eq!(k, &space.key_at(start + i as u128));
        }
    }
}

mod mask_and_hybrid {
    use eks_keyspace::{HybridSpace, Key, MaskSpace};
    use proptest::prelude::*;

    fn arb_mask() -> impl Strategy<Value = MaskSpace> {
        // 1-6 positions drawn from the class alphabet plus literals.
        proptest::collection::vec(
            prop_oneof![
                Just("?l".to_string()),
                Just("?u".to_string()),
                Just("?d".to_string()),
                Just("x".to_string()),
                Just("-".to_string()),
            ],
            1..6,
        )
        .prop_map(|parts| MaskSpace::parse(&parts.concat()).expect("valid mask"))
    }

    proptest! {
        /// key_at/id_of round-trip for arbitrary masks.
        #[test]
        fn mask_roundtrip(mask in arb_mask(), seed in 0u128..1_000_000) {
            let id = seed % mask.size();
            let k = mask.key_at(id);
            prop_assert_eq!(mask.id_of(&k), Some(id));
            prop_assert_eq!(k.len(), mask.len());
        }

        /// advance_key is the successor for arbitrary masks.
        #[test]
        fn mask_advance_is_successor(mask in arb_mask(), seed in 0u128..1_000_000) {
            prop_assume!(mask.size() > 1);
            let id = seed % (mask.size() - 1);
            let mut k = mask.key_at(id);
            mask.advance_key(&mut k);
            prop_assert_eq!(k, mask.key_at(id + 1));
        }

        /// Mask enumeration is injective over a window.
        #[test]
        fn mask_injective_window(mask in arb_mask(), seed in 0u128..1_000_000) {
            let start = seed % mask.size();
            let n = 50u128.min(mask.size() - start);
            let keys: Vec<Key> = (start..start + n).map(|i| mask.key_at(i)).collect();
            let mut dedup = keys.clone();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), keys.len());
        }

        /// Hybrid spaces round-trip and enumerate suffix-fastest.
        #[test]
        fn hybrid_roundtrip(digits in 0u32..3, seed in 0u128..100_000) {
            let words: Vec<&[u8]> = vec![b"alpha", b"bravo", b"ch4rl1e"];
            let s = HybridSpace::with_digit_suffixes(&words, digits).unwrap();
            let id = seed % s.size();
            let k = s.key_at(id);
            prop_assert_eq!(s.id_of(&k), Some(id));
            // advance agrees with key_at
            if id + 1 < s.size() {
                let mut kk = k.clone();
                s.advance_key_at(id, &mut kk);
                prop_assert_eq!(kk, s.key_at(id + 1));
            }
        }
    }
}
