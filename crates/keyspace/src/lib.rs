//! # eks-keyspace — bijective string enumeration over charsets
//!
//! Implements Section IV of *"Exhaustive Key Search on Clusters of GPUs"*:
//! the `f(id)` bijection between natural numbers and strings over a charset
//! (Fig. 1 / mapping (1)), the suffix-first variant required by the MD5
//! reversal optimization (mapping (4)), the in-place `next` operator
//! (Fig. 2), the keyspace-size closed forms (Eqs. 2–3), identifier
//! intervals, and fast iterators.
//!
//! Strings are treated as numbers in *bijective base-N* numeration: with a
//! charset `{a, b, c}` the enumeration runs
//! `ε, a, b, c, aa, ab, ac, ba, …` — every string of every length appears
//! exactly once, ordered by length and then lexicographically (in
//! [`Order::LastCharFastest`]) or with the first character cycling fastest
//! (in [`Order::FirstCharFastest`], mapping (4) of the paper).
//!
//! ```
//! use eks_keyspace::{Charset, KeySpace, Order};
//!
//! let cs = Charset::from_bytes(b"abc").unwrap();
//! let space = KeySpace::new(cs, 1, 3, Order::LastCharFastest).unwrap();
//! assert_eq!(space.size(), 3 + 9 + 27);
//! assert_eq!(space.key_at(3).to_string(), "aa");
//! let mut k = space.key_at(3);
//! space.advance_key(&mut k);
//! assert_eq!(k.to_string(), "ab");
//! ```

pub mod batch;
pub mod charset;
pub mod dictionary;
pub mod encode;
pub mod interval;
pub mod iter;
pub mod key;
pub mod mask;
pub mod space;

pub use batch::{BatchInfo, BlockBatch, BlockLayout};
pub use charset::Charset;
pub use dictionary::{HybridError, HybridSpace};
pub use encode::{advance_tracked, decode, encode, encode_into, AdvanceDelta, Order};
pub use interval::Interval;
pub use iter::KeyIter;
pub use key::{Key, MAX_KEY_LEN};
pub use mask::{MaskError, MaskSlot, MaskSpace};
pub use space::{KeySpace, KeySpaceError};

/// Number of strings over an `n`-symbol charset with lengths in
/// `[k0, k]` — Equations (2) and (3) of the paper. Returns `None` on
/// `u128` overflow or when `k0 > k`.
///
/// ```
/// // |{a,b,c}|^1 + ... + |{a,b,c}|^3 = 3 + 9 + 27
/// assert_eq!(eks_keyspace::strings_with_lengths(3, 1, 3), Some(39));
/// // N = 1 degenerates to K - K0 + 1 (Eq. 3)
/// assert_eq!(eks_keyspace::strings_with_lengths(1, 2, 5), Some(4));
/// ```
pub fn strings_with_lengths(n: u128, k0: u32, k: u32) -> Option<u128> {
    if k0 > k {
        return None;
    }
    match n {
        0 => Some(if k0 == 0 { 1 } else { 0 }), // only the empty string exists
        1 => Some((k - k0 + 1) as u128),        // Eq. (3)
        _ => {
            // Eq. (2): (N^(K+1) - N^K0) / (N - 1), evaluated with checked
            // arithmetic. We sum instead of using the closed form to avoid
            // overflow in the numerator for sizes that still fit in u128.
            let mut total: u128 = 0;
            let mut pow = n.checked_pow(k0)?;
            for i in k0..=k {
                total = total.checked_add(pow)?;
                if i < k {
                    pow = pow.checked_mul(n)?;
                }
            }
            Some(total)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq2_matches_closed_form_when_it_fits() {
        // Cross-check the summed evaluation against the paper's closed
        // form (N^(K+1) - N^K0) / (N - 1).
        for n in [2u128, 3, 26, 62] {
            for k0 in 0..4u32 {
                for k in k0..6u32 {
                    let closed = (n.pow(k + 1) - n.pow(k0)) / (n - 1);
                    assert_eq!(strings_with_lengths(n, k0, k), Some(closed), "n={n} k0={k0} k={k}");
                }
            }
        }
    }

    #[test]
    fn paper_intro_examples() {
        // "strings containing at most 8 alphabetic characters (both lower
        // and upper case) ≈ 54,508 billions" — lengths 1..=8 over 52
        // symbols.
        let count = strings_with_lengths(52, 1, 8).unwrap();
        assert_eq!(count, 54_507_958_502_660);
        // "...with 10 characters it becomes ≈ 147,389,520 billions"
        let count10 = strings_with_lengths(52, 1, 10).unwrap();
        assert_eq!(count10, 147_389_519_791_195_396);
    }

    #[test]
    fn eq3_unary_charset() {
        assert_eq!(strings_with_lengths(1, 0, 0), Some(1));
        assert_eq!(strings_with_lengths(1, 3, 3), Some(1));
        assert_eq!(strings_with_lengths(1, 0, 9), Some(10));
    }

    #[test]
    fn invalid_ranges() {
        assert_eq!(strings_with_lengths(3, 5, 4), None);
    }

    #[test]
    fn overflow_is_none() {
        assert_eq!(strings_with_lengths(95, 0, 20), None, "95^20 exceeds u128");
        assert!(strings_with_lengths(95, 0, 19).is_some());
    }

    #[test]
    fn zero_symbol_charset_has_only_empty_string() {
        assert_eq!(strings_with_lengths(0, 0, 5), Some(1));
        assert_eq!(strings_with_lengths(0, 1, 5), Some(0));
    }
}
