//! Dictionary and hybrid spaces (paper Section I): "The number of
//! attempts can be drastically reduced if a dictionary of recurring words
//! is involved in the string set production. A hybrid technique that uses
//! a dictionary along with a list of common password patterns provides a
//! good way to guess longer passwords."
//!
//! A [`HybridSpace`] enumerates `word ⊕ suffix` for every dictionary word
//! and every candidate of a suffix [`KeySpace`] (digits, years, symbols —
//! whatever the pattern list says). With an empty-suffix space it
//! degenerates to a plain dictionary attack. Like every space here it is
//! a bijection from `0..size`, so the same dispatch pattern applies.

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use eks_core::SolutionSpace;

use crate::charset::Charset;
use crate::encode::Order;
use crate::key::{Key, MAX_KEY_LEN};
use crate::space::{KeySpace, KeySpaceError};

/// Error building a hybrid space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HybridError {
    /// No dictionary words.
    EmptyDictionary,
    /// A word alone (or with the longest suffix) exceeds [`MAX_KEY_LEN`].
    WordTooLong(Vec<u8>),
    /// A word contains no bytes.
    EmptyWord,
    /// Total size overflows `u128`.
    TooLarge,
    /// The suffix space construction failed.
    Suffix(KeySpaceError),
}

/// `word ⊕ suffix` for every (word, suffix) pair; suffix varies fastest.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridSpace {
    words: Vec<Vec<u8>>,
    suffix: KeySpace,
    size: u128,
}

impl HybridSpace {
    /// Build from dictionary words and a suffix space.
    pub fn new(words: &[&[u8]], suffix: KeySpace) -> Result<Self, HybridError> {
        if words.is_empty() {
            return Err(HybridError::EmptyDictionary);
        }
        let max_suffix = suffix.max_len() as usize;
        for w in words {
            if w.is_empty() {
                return Err(HybridError::EmptyWord);
            }
            if w.len() + max_suffix > MAX_KEY_LEN {
                return Err(HybridError::WordTooLong(w.to_vec()));
            }
        }
        let size = (words.len() as u128)
            .checked_mul(suffix.size())
            .ok_or(HybridError::TooLarge)?;
        Ok(Self { words: words.iter().map(|w| w.to_vec()).collect(), suffix, size })
    }

    /// A plain dictionary attack: each word once, no suffix.
    pub fn dictionary_only(words: &[&[u8]]) -> Result<Self, HybridError> {
        // A zero-length suffix space has exactly one member: ε.
        let suffix = KeySpace::new(Charset::digits(), 0, 0, Order::LastCharFastest)
            .map_err(HybridError::Suffix)?;
        Self::new(words, suffix)
    }

    /// The classic "word + up to `digits` digits" pattern.
    pub fn with_digit_suffixes(words: &[&[u8]], digits: u32) -> Result<Self, HybridError> {
        let suffix = KeySpace::new(Charset::digits(), 0, digits, Order::LastCharFastest)
            .map_err(HybridError::Suffix)?;
        Self::new(words, suffix)
    }

    /// Candidate count.
    pub fn size(&self) -> u128 {
        self.size
    }

    /// Number of dictionary words.
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// The candidate at `id`: suffix-fastest enumeration.
    ///
    /// # Panics
    /// Panics when `id >= size()`.
    pub fn key_at(&self, id: u128) -> Key {
        assert!(id < self.size, "id {id} out of range");
        let per_word = self.suffix.size();
        let word = &self.words[(id / per_word) as usize];
        let suffix = self.suffix.key_at(id % per_word);
        let mut key = Key::from_bytes(word);
        for &b in suffix.as_bytes() {
            key.push(b);
        }
        key
    }

    /// Inverse of [`HybridSpace::key_at`]: finds the *first* matching
    /// (word, suffix) decomposition in enumeration order.
    pub fn id_of(&self, key: &Key) -> Option<u128> {
        let bytes = key.as_bytes();
        let per_word = self.suffix.size();
        for (wi, word) in self.words.iter().enumerate() {
            if bytes.len() < word.len() || &bytes[..word.len()] != word.as_slice() {
                continue;
            }
            let suffix = Key::from_bytes(&bytes[word.len()..]);
            if let Some(sid) = self.suffix.id_of(&suffix) {
                return Some(wi as u128 * per_word + sid);
            }
        }
        None
    }

    /// In-place successor.
    ///
    /// The current word is identified by prefix match; the suffix is
    /// advanced (wrapping to the next word when exhausted).
    pub fn advance_key_at(&self, id: u128, key: &mut Key) {
        let per_word = self.suffix.size();
        let next = id + 1;
        if next.is_multiple_of(per_word) {
            // Next word, first suffix.
            *key = self.key_at(next % self.size);
        } else {
            // Same word: advance the suffix portion in place.
            let word_len = self.words[(id / per_word) as usize].len();
            let mut suffix = Key::from_bytes(&key.as_bytes()[word_len..]);
            self.suffix.advance_key(&mut suffix);
            key.set_len(word_len + suffix.len());
            for (i, &b) in suffix.as_bytes().iter().enumerate() {
                key.set_byte(word_len + i, b);
            }
        }
    }
}

impl SolutionSpace for HybridSpace {
    type Solution = Key;

    fn size(&self) -> Option<u128> {
        Some(self.size)
    }

    fn generate(&self, id: u128) -> Key {
        self.key_at(id)
    }

    fn advance(&self, id: u128, solution: &mut Key) {
        self.advance_key_at(id, solution);
    }

    fn identify(&self, solution: &Key) -> Option<u128> {
        self.id_of(solution)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words() -> Vec<&'static [u8]> {
        vec![b"winter", b"dragon", b"admin"]
    }

    #[test]
    fn dictionary_only_enumerates_each_word_once() {
        let s = HybridSpace::dictionary_only(&words()).unwrap();
        assert_eq!(s.size(), 3);
        assert_eq!(s.key_at(0).as_bytes(), b"winter");
        assert_eq!(s.key_at(1).as_bytes(), b"dragon");
        assert_eq!(s.key_at(2).as_bytes(), b"admin");
    }

    #[test]
    fn digit_suffixes_cover_the_pattern() {
        let s = HybridSpace::with_digit_suffixes(&words(), 2).unwrap();
        // per word: ε + 10 + 100 = 111 suffixes.
        assert_eq!(s.size(), 3 * 111);
        assert_eq!(s.key_at(0).as_bytes(), b"winter");
        assert_eq!(s.key_at(1).as_bytes(), b"winter0");
        assert_eq!(s.key_at(11).as_bytes(), b"winter00");
        assert_eq!(s.key_at(111).as_bytes(), b"dragon");
        assert_eq!(s.key_at(s.size() - 1).as_bytes(), b"admin99");
    }

    #[test]
    fn id_round_trip() {
        let s = HybridSpace::with_digit_suffixes(&words(), 2).unwrap();
        for id in 0..s.size() {
            assert_eq!(s.id_of(&s.key_at(id)), Some(id), "id {id}");
        }
    }

    #[test]
    fn advance_matches_key_at() {
        let s = HybridSpace::with_digit_suffixes(&words(), 1).unwrap();
        let mut k = s.key_at(0);
        for id in 0..s.size() - 1 {
            s.advance_key_at(id, &mut k);
            assert_eq!(k, s.key_at(id + 1), "id {id}");
        }
    }

    #[test]
    fn id_of_rejects_non_members() {
        let s = HybridSpace::with_digit_suffixes(&words(), 1).unwrap();
        assert_eq!(s.id_of(&Key::from_bytes(b"hunter2")), None);
        assert_eq!(s.id_of(&Key::from_bytes(b"winterx")), None, "bad suffix");
    }

    #[test]
    fn construction_errors() {
        assert_eq!(
            HybridSpace::dictionary_only(&[]),
            Err(HybridError::EmptyDictionary)
        );
        assert_eq!(
            HybridSpace::dictionary_only(&[b""]),
            Err(HybridError::EmptyWord)
        );
        let long = [b'x'; 19];
        assert!(matches!(
            HybridSpace::with_digit_suffixes(&[&long], 3),
            Err(HybridError::WordTooLong(_))
        ));
    }

    #[test]
    fn solution_space_impl() {
        let s = HybridSpace::with_digit_suffixes(&words(), 1).unwrap();
        let mut k = s.generate(5);
        s.advance(5, &mut k);
        assert_eq!(k, s.generate(6));
        assert_eq!(s.identify(&k), Some(6));
    }
}
