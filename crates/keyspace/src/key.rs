//! Fixed-capacity key buffers.
//!
//! The paper limits candidate keys to 20 characters (Section IV-A), which
//! lets every key live in a small inline buffer — no heap traffic on the
//! hot enumeration path.

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use std::fmt;

/// Maximum key length supported, matching the paper's 20-character cap.
pub const MAX_KEY_LEN: usize = 20;

/// A candidate key: up to [`MAX_KEY_LEN`] bytes stored inline.
///
/// `Key` is `Copy`-sized but deliberately not `Copy` so accidental implicit
/// copies on hot paths stay visible; it is cheap to `Clone`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Key {
    bytes: [u8; MAX_KEY_LEN],
    len: u8,
}

impl Key {
    /// The empty key (`ε`, identifier 0 of the full enumeration).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Build a key from a byte slice.
    ///
    /// # Panics
    /// Panics when `bytes.len() > MAX_KEY_LEN`.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        assert!(
            bytes.len() <= MAX_KEY_LEN,
            "key length {} exceeds MAX_KEY_LEN {MAX_KEY_LEN}",
            bytes.len()
        );
        let mut k = Self::default();
        k.bytes[..bytes.len()].copy_from_slice(bytes);
        k.len = bytes.len() as u8;
        k
    }

    /// The key's bytes.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes[..self.len as usize]
    }

    /// Mutable access to the key's bytes (length unchanged).
    #[inline]
    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes[..self.len as usize]
    }

    /// Current length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True for the empty key.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set the length, zero-filling any newly exposed bytes.
    ///
    /// # Panics
    /// Panics when `len > MAX_KEY_LEN`.
    pub fn set_len(&mut self, len: usize) {
        assert!(len <= MAX_KEY_LEN);
        if len > self.len as usize {
            for b in &mut self.bytes[self.len as usize..len] {
                *b = 0;
            }
        }
        self.len = len as u8;
    }

    /// Overwrite the byte at `pos`.
    ///
    /// # Panics
    /// Panics when `pos >= len()`.
    #[inline]
    pub fn set_byte(&mut self, pos: usize, byte: u8) {
        assert!(pos < self.len as usize);
        self.bytes[pos] = byte;
    }

    /// Grow by one byte at the end.
    ///
    /// # Panics
    /// Panics when already at capacity.
    #[inline]
    pub fn push(&mut self, byte: u8) {
        assert!((self.len as usize) < MAX_KEY_LEN, "key at capacity");
        self.bytes[self.len as usize] = byte;
        self.len += 1;
    }

    /// The raw inline buffer including bytes past `len` (zero-padded after
    /// construction); useful for word-packed hashing.
    #[inline]
    pub fn raw(&self) -> &[u8; MAX_KEY_LEN] {
        &self.bytes
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", String::from_utf8_lossy(self.as_bytes()))
    }
}

impl From<&str> for Key {
    fn from(s: &str) -> Self {
        Key::from_bytes(s.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_bytes_round_trips() {
        let k = Key::from_bytes(b"hello");
        assert_eq!(k.as_bytes(), b"hello");
        assert_eq!(k.len(), 5);
        assert_eq!(k.to_string(), "hello");
    }

    #[test]
    fn empty_key() {
        let k = Key::empty();
        assert!(k.is_empty());
        assert_eq!(k.as_bytes(), b"");
    }

    #[test]
    fn push_and_set_byte() {
        let mut k = Key::from_bytes(b"ab");
        k.push(b'c');
        assert_eq!(k.as_bytes(), b"abc");
        k.set_byte(0, b'z');
        assert_eq!(k.as_bytes(), b"zbc");
    }

    #[test]
    fn set_len_zero_fills_growth() {
        let mut k = Key::from_bytes(b"ab");
        k.set_byte(1, b'x');
        k.set_len(1);
        k.set_len(3);
        assert_eq!(k.as_bytes(), &[b'a', 0, 0]);
    }

    #[test]
    #[should_panic]
    fn oversize_panics() {
        Key::from_bytes(&[0u8; MAX_KEY_LEN + 1]);
    }

    #[test]
    #[should_panic]
    fn push_past_capacity_panics() {
        let mut k = Key::from_bytes(&[b'a'; MAX_KEY_LEN]);
        k.push(b'x');
    }
}
