//! Identifier intervals: the unit of work the dispatcher scatters.
//!
//! An interval is the "minimum data needed to generate the candidate
//! solutions" that the master sends each node (Section III) — under 1 KB,
//! as the paper requires: two `u128`s plus the charset description.

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

/// A half-open identifier range `[start, start + len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    /// First identifier.
    pub start: u128,
    /// Number of identifiers.
    pub len: u128,
}

impl Interval {
    /// Create an interval.
    ///
    /// # Panics
    /// Panics when `start + len` overflows `u128`.
    pub fn new(start: u128, len: u128) -> Self {
        assert!(start.checked_add(len).is_some(), "interval end overflows u128");
        Self { start, len }
    }

    /// One identifier past the end.
    pub fn end(&self) -> u128 {
        self.start + self.len
    }

    /// True when `len == 0`.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `id` falls inside the interval.
    pub fn contains(&self, id: u128) -> bool {
        id >= self.start && id < self.end()
    }

    /// Intersect with another interval.
    pub fn intersect(&self, other: &Interval) -> Interval {
        let start = self.start.max(other.start);
        let end = self.end().min(other.end());
        Interval { start, len: end.saturating_sub(start) }
    }

    /// Remove a prefix of up to `n` identifiers, returning it. The
    /// remainder stays in `self`. This is the dispatcher's "pop the next
    /// chunk" primitive.
    pub fn take_front(&mut self, n: u128) -> Interval {
        let take = n.min(self.len);
        let front = Interval { start: self.start, len: take };
        self.start += take;
        self.len -= take;
        front
    }

    /// Split into `parts` near-equal consecutive chunks (earlier chunks get
    /// the remainder). Zero-length chunks appear when `parts > len`.
    pub fn split_even(&self, parts: usize) -> Vec<Interval> {
        assert!(parts > 0, "cannot split into zero parts");
        let p = parts as u128;
        let base = self.len / p;
        let extra = self.len % p;
        let mut out = Vec::with_capacity(parts);
        let mut cursor = self.start;
        for i in 0..p {
            let len = base + u128::from(i < extra);
            out.push(Interval { start: cursor, len });
            cursor += len;
        }
        out
    }

    /// Split proportionally to `weights` (the balancing step's `N_j`
    /// ratios). The full interval is always covered; rounding residue goes
    /// to the heaviest weight. All-zero weights fall back to an even split.
    pub fn split_weighted(&self, weights: &[f64]) -> Vec<Interval> {
        assert!(!weights.is_empty(), "cannot split by zero weights");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return self.split_even(weights.len());
        }
        let mut sizes: Vec<u128> = weights
            .iter()
            .map(|w| ((self.len as f64) * (w / total)).floor() as u128)
            .collect();
        // `len as f64` is only exact up to 2^53, so the floors can both
        // under- and over-assign for astronomically large intervals.
        // Cap cumulatively (no underflow), then hand the residue to the
        // heaviest nodes in bulk — never one identifier at a time, which
        // for a u128-sized interval would loop ~2^67 times.
        let mut assigned: u128 = 0;
        for s in &mut sizes {
            *s = (*s).min(self.len - assigned);
            assigned += *s;
        }
        let residue = self.len - assigned;
        let mut order: Vec<usize> = (0..weights.len()).collect();
        order.sort_by(|&a, &b| weights[b].partial_cmp(&weights[a]).expect("finite weights"));
        let parts = order.len() as u128;
        let (per, extra) = (residue / parts, (residue % parts) as usize);
        for (rank, &idx) in order.iter().enumerate() {
            sizes[idx] += per + u128::from(rank < extra);
        }
        let mut out = Vec::with_capacity(weights.len());
        let mut cursor = self.start;
        for len in sizes {
            out.push(Interval { start: cursor, len });
            cursor += len;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let iv = Interval::new(10, 5);
        assert_eq!(iv.end(), 15);
        assert!(iv.contains(10) && iv.contains(14));
        assert!(!iv.contains(15) && !iv.contains(9));
        assert!(!iv.is_empty());
        assert!(Interval::new(3, 0).is_empty());
    }

    #[test]
    fn intersect() {
        let a = Interval::new(0, 10);
        let b = Interval::new(5, 10);
        assert_eq!(a.intersect(&b), Interval::new(5, 5));
        let c = Interval::new(20, 5);
        assert!(a.intersect(&c).is_empty());
    }

    #[test]
    fn take_front_consumes() {
        let mut iv = Interval::new(0, 10);
        assert_eq!(iv.take_front(4), Interval::new(0, 4));
        assert_eq!(iv, Interval::new(4, 6));
        assert_eq!(iv.take_front(100), Interval::new(4, 6));
        assert!(iv.is_empty());
    }

    #[test]
    fn split_even_covers_everything() {
        let iv = Interval::new(7, 10);
        let parts = iv.split_even(3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts.iter().map(|p| p.len).sum::<u128>(), 10);
        assert_eq!(parts[0], Interval::new(7, 4));
        assert_eq!(parts[1], Interval::new(11, 3));
        assert_eq!(parts[2], Interval::new(14, 3));
    }

    #[test]
    fn split_weighted_is_proportional_and_complete() {
        let iv = Interval::new(0, 1000);
        let parts = iv.split_weighted(&[3.0, 1.0]);
        assert_eq!(parts[0].len, 750);
        assert_eq!(parts[1].len, 250);
        assert_eq!(parts[0].end(), parts[1].start);
    }

    #[test]
    fn split_weighted_residue_goes_to_heaviest() {
        let iv = Interval::new(0, 10);
        let parts = iv.split_weighted(&[1.0, 1.0, 1.0]);
        assert_eq!(parts.iter().map(|p| p.len).sum::<u128>(), 10);
        // 10/3: the heaviest (ties: first listed) absorb the residue.
        assert_eq!(parts.iter().map(|p| p.len).max(), Some(4));
    }

    #[test]
    fn split_weighted_zero_weights_falls_back_even() {
        let iv = Interval::new(0, 9);
        let parts = iv.split_weighted(&[0.0, 0.0, 0.0]);
        assert_eq!(parts.iter().map(|p| p.len).sum::<u128>(), 9);
        assert_eq!(parts[0].len, 3);
    }

    #[test]
    #[should_panic]
    fn overflowing_interval_rejected() {
        Interval::new(u128::MAX, 2);
    }
}
