//! A bounded keyspace: all strings over a charset with lengths in
//! `[min_len, max_len]`, exposed as an [`eks_core::SolutionSpace`].

use std::fmt;

use eks_core::SolutionSpace;

use crate::charset::Charset;
use crate::encode::{advance, decode, encode_into, Order};
use crate::interval::Interval;
use crate::iter::KeyIter;
use crate::key::{Key, MAX_KEY_LEN};
use crate::strings_with_lengths;

/// Error constructing a [`KeySpace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeySpaceError {
    /// `min_len > max_len`.
    EmptyRange,
    /// `max_len` exceeds [`MAX_KEY_LEN`].
    TooLong,
    /// The keyspace size does not fit in `u128`.
    TooLarge,
}

impl fmt::Display for KeySpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeySpaceError::EmptyRange => write!(f, "min_len exceeds max_len"),
            KeySpaceError::TooLong => write!(f, "max_len exceeds MAX_KEY_LEN ({MAX_KEY_LEN})"),
            KeySpaceError::TooLarge => write!(f, "keyspace size overflows u128"),
        }
    }
}

impl std::error::Error for KeySpaceError {}

/// All strings over `charset` with lengths in `[min_len, max_len]`,
/// enumerated in the given [`Order`].
///
/// Identifiers are local to the space: id 0 is the first string of length
/// `min_len`. Internally they are offset by the count of shorter strings so
/// the global bijection of Fig. 1 applies unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeySpace {
    charset: Charset,
    min_len: u32,
    max_len: u32,
    order: Order,
    /// Number of strings strictly shorter than `min_len` (the ε-inclusive
    /// prefix of the global enumeration that this space skips).
    offset: u128,
    size: u128,
}

impl KeySpace {
    /// Create a keyspace.
    pub fn new(
        charset: Charset,
        min_len: u32,
        max_len: u32,
        order: Order,
    ) -> Result<Self, KeySpaceError> {
        if min_len > max_len {
            return Err(KeySpaceError::EmptyRange);
        }
        if max_len as usize > MAX_KEY_LEN {
            return Err(KeySpaceError::TooLong);
        }
        let n = charset.len() as u128;
        let offset = if min_len == 0 {
            0
        } else {
            strings_with_lengths(n, 0, min_len - 1).ok_or(KeySpaceError::TooLarge)?
        };
        let size = strings_with_lengths(n, min_len, max_len).ok_or(KeySpaceError::TooLarge)?;
        offset.checked_add(size).ok_or(KeySpaceError::TooLarge)?;
        Ok(Self { charset, min_len, max_len, order, offset, size })
    }

    /// The paper's evaluation space: "passwords containing up to 8
    /// alphanumeric characters, both lower and upper cases" (Section VI-B).
    pub fn paper_evaluation_space(order: Order) -> Self {
        Self::new(Charset::alphanumeric(), 1, 8, order).expect("static space fits")
    }

    /// Number of keys in the space.
    pub fn size(&self) -> u128 {
        self.size
    }

    /// The whole space as an identifier interval.
    pub fn interval(&self) -> Interval {
        Interval::new(0, self.size)
    }

    /// The charset.
    pub fn charset(&self) -> &Charset {
        &self.charset
    }

    /// Minimum key length.
    pub fn min_len(&self) -> u32 {
        self.min_len
    }

    /// Maximum key length.
    pub fn max_len(&self) -> u32 {
        self.max_len
    }

    /// Enumeration order.
    pub fn order(&self) -> Order {
        self.order
    }

    /// The key for a space-local identifier.
    ///
    /// # Panics
    /// Panics when `id >= size()`.
    pub fn key_at(&self, id: u128) -> Key {
        let mut key = Key::empty();
        self.key_at_into(id, &mut key);
        key
    }

    /// Like [`KeySpace::key_at`] but reuses a buffer.
    pub fn key_at_into(&self, id: u128, key: &mut Key) {
        assert!(id < self.size, "id {id} out of range (size {})", self.size);
        encode_into(id + self.offset, &self.charset, self.order, key);
    }

    /// The space-local identifier of a key, or `None` when the key is not
    /// in the space (wrong length or foreign bytes).
    pub fn id_of(&self, key: &Key) -> Option<u128> {
        let len = key.len() as u32;
        if len < self.min_len || len > self.max_len {
            return None;
        }
        let global = decode(key, &self.charset, self.order)?;
        Some(global - self.offset)
    }

    /// Advance a key to its successor in place (Fig. 2).
    ///
    /// Valid for any key whose successor is still within `max_len`; the
    /// caller owns the bound check (drivers never advance past `size - 1`).
    pub fn advance_key(&self, key: &mut Key) {
        advance(key, &self.charset, self.order);
    }

    /// Iterate over `interval` (clamped to the space).
    pub fn iter(&self, interval: Interval) -> KeyIter<'_> {
        KeyIter::new(self, interval)
    }
}

impl SolutionSpace for KeySpace {
    type Solution = Key;

    fn size(&self) -> Option<u128> {
        Some(self.size)
    }

    fn generate(&self, id: u128) -> Key {
        self.key_at(id)
    }

    fn advance(&self, _id: u128, solution: &mut Key) {
        self.advance_key(solution);
    }

    fn identify(&self, solution: &Key) -> Option<u128> {
        self.id_of(solution)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc_1_3() -> KeySpace {
        KeySpace::new(Charset::from_bytes(b"abc").unwrap(), 1, 3, Order::LastCharFastest).unwrap()
    }

    #[test]
    fn size_and_bounds() {
        let s = abc_1_3();
        assert_eq!(s.size(), 39);
        assert_eq!(s.key_at(0).to_string(), "a");
        assert_eq!(s.key_at(38).to_string(), "ccc");
    }

    #[test]
    #[should_panic]
    fn key_at_out_of_range_panics() {
        abc_1_3().key_at(39);
    }

    #[test]
    fn min_len_offset_is_applied() {
        let s = KeySpace::new(
            Charset::from_bytes(b"abc").unwrap(),
            2,
            3,
            Order::LastCharFastest,
        )
        .unwrap();
        assert_eq!(s.size(), 9 + 27);
        assert_eq!(s.key_at(0).to_string(), "aa");
        assert_eq!(s.id_of(&Key::from_bytes(b"aa")), Some(0));
    }

    #[test]
    fn id_of_rejects_out_of_space_keys() {
        let s = abc_1_3();
        assert_eq!(s.id_of(&Key::from_bytes(b"")), None, "too short");
        assert_eq!(s.id_of(&Key::from_bytes(b"aaaa")), None, "too long");
        assert_eq!(s.id_of(&Key::from_bytes(b"ad")), None, "foreign byte");
    }

    #[test]
    fn id_of_inverts_key_at() {
        let s = abc_1_3();
        for id in 0..s.size() {
            assert_eq!(s.id_of(&s.key_at(id)), Some(id));
        }
    }

    #[test]
    fn solution_space_trait_agrees() {
        let s = abc_1_3();
        assert_eq!(SolutionSpace::size(&s), Some(39));
        let mut k = s.generate(3);
        SolutionSpace::advance(&s, 3, &mut k);
        assert_eq!(k, s.generate(4));
        assert_eq!(s.identify(&k), Some(4));
    }

    #[test]
    fn construction_errors() {
        let cs = Charset::from_bytes(b"abc").unwrap();
        assert_eq!(
            KeySpace::new(cs.clone(), 3, 2, Order::LastCharFastest),
            Err(KeySpaceError::EmptyRange)
        );
        assert_eq!(
            KeySpace::new(cs, 0, 21, Order::LastCharFastest),
            Err(KeySpaceError::TooLong)
        );
        let big = Charset::printable_ascii();
        assert_eq!(
            KeySpace::new(big, 0, 20, Order::LastCharFastest),
            Err(KeySpaceError::TooLarge)
        );
    }

    #[test]
    fn paper_evaluation_space_size() {
        let s = KeySpace::paper_evaluation_space(Order::LastCharFastest);
        // Σ_{i=1}^{8} 62^i = 221_919_451_578_090
        assert_eq!(s.size(), 221_919_451_578_090);
        assert_eq!(s.charset().len(), 62);
    }

    #[test]
    fn first_char_fastest_space() {
        let s = KeySpace::new(
            Charset::from_bytes(b"abc").unwrap(),
            1,
            2,
            Order::FirstCharFastest,
        )
        .unwrap();
        // [a, b, c, aa, ba, ca, ab, bb, cb, ac, bc, cc]
        assert_eq!(s.key_at(3).to_string(), "aa");
        assert_eq!(s.key_at(4).to_string(), "ba");
        assert_eq!(s.key_at(11).to_string(), "cc");
    }
}
