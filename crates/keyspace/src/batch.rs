//! Zero-allocation candidate generation into pre-padded message blocks.
//!
//! A cracking kernel never re-pads a candidate from scratch: the padded
//! 64-byte block of `f(id+1)` differs from that of `f(id)` in exactly the
//! bytes the `next` operator changed — usually one (Section IV: "in most
//! cases it modifies just a single character") — plus, rarely, the
//! terminator and length words when the key grows. [`BlockBatch`] exploits
//! this: it keeps the current key's fully padded 16-word block as a
//! template, advances the key in place, mirrors the byte delta into the
//! template, and hands out batches of `L` block copies for the
//! lane-parallel compression cores. Steady state writes ~1–2 bytes per
//! candidate and performs **no heap allocation** — the key buffer is
//! inline, the template and the batch output live on the caller's stack.
//!
//! The writer also tracks a *suffix epoch*: a counter bumped whenever any
//! block word other than `w[0]` changes. Batches whose epoch is stable
//! satisfy the precondition of the reversed-MD5 search (all candidates
//! share words 1..16), so the consumer can run the 49-step path and only
//! rebuild the reversed reference when the epoch moves.

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use crate::encode::{advance_tracked, Order};
use crate::interval::Interval;
use crate::key::Key;
use crate::space::KeySpace;

/// How key bytes map into the padded single-block message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockLayout {
    /// Little-endian word packing, bit length in `w[14]` (MD5/MD4
    /// convention).
    Md5Le,
    /// Big-endian word packing, bit length in `w[15]` (SHA-1/SHA-256
    /// convention).
    ShaBe,
    /// NTLM: the key is expanded to UTF-16LE (a zero byte after every
    /// ASCII byte) before little-endian packing — key byte `p` lands at
    /// block byte `2p`.
    NtlmUtf16Le,
}

impl BlockLayout {
    /// Message length in block bytes for a key of `key_len` bytes.
    #[inline]
    pub fn msg_len(self, key_len: usize) -> usize {
        match self {
            BlockLayout::Md5Le | BlockLayout::ShaBe => key_len,
            BlockLayout::NtlmUtf16Le => key_len * 2,
        }
    }

    /// `(word, shift)` of the block byte at `byte_pos`.
    #[inline]
    fn word_shift(self, byte_pos: usize) -> (usize, u32) {
        match self {
            BlockLayout::Md5Le | BlockLayout::NtlmUtf16Le => {
                (byte_pos >> 2, ((byte_pos & 3) * 8) as u32)
            }
            BlockLayout::ShaBe => (byte_pos >> 2, ((3 - (byte_pos & 3)) * 8) as u32),
        }
    }

    /// `(word, shift)` of the block byte holding key byte `pos`.
    #[inline]
    fn key_byte_slot(self, pos: usize) -> (usize, u32) {
        match self {
            BlockLayout::NtlmUtf16Le => self.word_shift(pos * 2),
            _ => self.word_shift(pos),
        }
    }
}

/// Metadata for one batch handed out by [`BlockBatch::fill`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchInfo {
    /// Space-local identifier of the batch's first candidate; lane `l`
    /// holds `start_id + l`.
    pub start_id: u128,
    /// The suffix epoch the batch was generated under.
    pub epoch: u64,
    /// True when every candidate in the batch shares all block words
    /// except `w[0]` — the precondition of the reversed-MD5 lane path.
    pub uniform_suffix: bool,
}

/// In-place batch writer: walks an interval of a [`KeySpace`] and formats
/// each candidate into a pre-padded 16-word block, maintained
/// incrementally from the `next` operator's byte deltas.
#[derive(Debug, Clone)]
pub struct BlockBatch<'a> {
    space: &'a KeySpace,
    layout: BlockLayout,
    key: Key,
    template: [u32; 16],
    next_id: u128,
    remaining: u128,
    epoch: u64,
}

impl<'a> BlockBatch<'a> {
    /// Create a writer over `interval` (clamped to the space bounds).
    pub fn new(space: &'a KeySpace, layout: BlockLayout, interval: Interval) -> Self {
        let clamped = interval.intersect(&space.interval());
        let mut b = Self {
            space,
            layout,
            key: Key::empty(),
            template: [0u32; 16],
            next_id: clamped.start,
            remaining: clamped.len,
            epoch: 0,
        };
        if b.remaining > 0 {
            space.key_at_into(b.next_id, &mut b.key);
            b.format_full();
        }
        b
    }

    /// Candidates left in the interval.
    #[inline]
    pub fn remaining(&self) -> u128 {
        self.remaining
    }

    /// Identifier of the next candidate to be handed out.
    #[inline]
    pub fn next_id(&self) -> u128 {
        self.next_id
    }

    /// The current suffix epoch.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The current key (the candidate `next_id` maps to).
    #[inline]
    pub fn key(&self) -> &Key {
        &self.key
    }

    /// The current padded block.
    #[inline]
    pub fn template(&self) -> &[u32; 16] {
        &self.template
    }

    /// Write the next `L` candidates' padded blocks into `out` and
    /// advance. Lane `l` receives the block of identifier
    /// `start_id + l`.
    ///
    /// # Panics
    /// Panics when fewer than `L` candidates remain — the caller owns the
    /// tail (scalar path).
    #[inline]
    pub fn fill<const L: usize>(&mut self, out: &mut [[u32; 16]; L]) -> BatchInfo {
        assert!(
            self.remaining >= L as u128,
            "fill of {L} lanes with only {} candidates remaining",
            self.remaining
        );
        let start_id = self.next_id;
        let epoch0 = self.epoch;
        for (l, block) in out.iter_mut().enumerate() {
            *block = self.template;
            if l + 1 < L {
                self.advance_template();
            }
        }
        // Uniformity covers the L-1 advances *between* the batch's lanes;
        // the advance positioning the writer for the next batch may bump
        // the epoch without invalidating this batch.
        let uniform_suffix = self.epoch == epoch0;
        self.next_id += L as u128;
        self.remaining -= L as u128;
        if self.remaining > 0 {
            self.advance_template();
        }
        BatchInfo { start_id, epoch: epoch0, uniform_suffix }
    }

    /// Write the next `L` candidates' **first block words** into `out`
    /// and advance, returning the batch metadata and the padded block of
    /// the batch's first candidate (its words 1..16 are shared by every
    /// lane whenever `uniform_suffix` holds).
    ///
    /// This is the reversed-MD5 fast path: when a search varies only the
    /// leading 4 key bytes, the kernel needs one word per candidate —
    /// 1/16th of [`BlockBatch::fill`]'s stores. When the returned info
    /// says the suffix moved mid-batch (rare: once per `w[0]` rollover),
    /// the caller must reconstruct full blocks for these identifiers and
    /// take the forward path instead.
    ///
    /// # Panics
    /// Panics when fewer than `L` candidates remain — the caller owns the
    /// tail (scalar path).
    #[inline]
    pub fn fill_w0s<const L: usize>(&mut self, out: &mut [u32; L]) -> (BatchInfo, [u32; 16]) {
        assert!(
            self.remaining >= L as u128,
            "fill_w0s of {L} lanes with only {} candidates remaining",
            self.remaining
        );
        let start_id = self.next_id;
        let epoch0 = self.epoch;
        let template0 = self.template;
        for (l, w0) in out.iter_mut().enumerate() {
            *w0 = self.template[0];
            if l + 1 < L {
                self.advance_template();
            }
        }
        // Same convention as `fill`: uniformity covers the L-1 advances
        // between lanes; the positioning advance below may bump the epoch
        // without invalidating this batch.
        let uniform_suffix = self.epoch == epoch0;
        self.next_id += L as u128;
        self.remaining -= L as u128;
        if self.remaining > 0 {
            self.advance_template();
        }
        (BatchInfo { start_id, epoch: epoch0, uniform_suffix }, template0)
    }

    /// Advance the key once and mirror the byte delta into the template.
    fn advance_template(&mut self) {
        let delta = advance_tracked(&mut self.key, self.space.charset(), self.space.order());
        if delta.grew {
            // Length changed: terminator and length words move. Rare
            // (once per charset^len candidates) — reformat from scratch.
            self.format_full();
            self.epoch += 1;
            return;
        }
        let len = self.key.len();
        let range = match self.space.order() {
            Order::FirstCharFastest => 0..delta.changed,
            Order::LastCharFastest => len - delta.changed..len,
        };
        let mut touched_suffix = false;
        for pos in range {
            let byte = self.key.as_bytes()[pos];
            touched_suffix |= self.write_key_byte(pos, byte);
        }
        if touched_suffix {
            self.epoch += 1;
        }
    }

    /// Overwrite the block byte(s) of key byte `pos`; returns true when a
    /// word other than `w[0]` was touched.
    #[inline]
    fn write_key_byte(&mut self, pos: usize, byte: u8) -> bool {
        let (word, shift) = self.layout.key_byte_slot(pos);
        self.template[word] = (self.template[word] & !(0xff << shift)) | ((byte as u32) << shift);
        word != 0
    }

    /// Format the current key into the template from scratch: key bytes,
    /// `0x80` terminator, zero fill, length words.
    fn format_full(&mut self) {
        self.template = [0u32; 16];
        let len = self.key.len();
        let raw = *self.key.raw();
        for (pos, &byte) in raw[..len].iter().enumerate() {
            self.write_key_byte(pos, byte);
        }
        let msg_len = self.layout.msg_len(len);
        debug_assert!(msg_len <= 55, "key does not fit a single block");
        let (word, shift) = self.layout.word_shift(msg_len);
        self.template[word] |= 0x80 << shift;
        let bitlen = (msg_len as u64) * 8;
        match self.layout {
            BlockLayout::Md5Le | BlockLayout::NtlmUtf16Le => {
                self.template[14] = bitlen as u32;
                self.template[15] = (bitlen >> 32) as u32;
            }
            BlockLayout::ShaBe => {
                self.template[14] = (bitlen >> 32) as u32;
                self.template[15] = bitlen as u32;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charset::Charset;

    fn fresh_block(space: &KeySpace, layout: BlockLayout, id: u128) -> [u32; 16] {
        *BlockBatch::new(space, layout, Interval::new(id, 1)).template()
    }

    #[test]
    fn incremental_template_equals_full_reformat() {
        for order in [Order::FirstCharFastest, Order::LastCharFastest] {
            for layout in [BlockLayout::Md5Le, BlockLayout::ShaBe, BlockLayout::NtlmUtf16Le] {
                let s =
                    KeySpace::new(Charset::from_bytes(b"abc").unwrap(), 1, 4, order).unwrap();
                let mut bb = BlockBatch::new(&s, layout, s.interval());
                let mut blocks = [[0u32; 16]; 4];
                let mut id = 0u128;
                while bb.remaining() >= 4 {
                    let info = bb.fill(&mut blocks);
                    assert_eq!(info.start_id, id);
                    for (l, b) in blocks.iter().enumerate() {
                        let want = fresh_block(&s, layout, id + l as u128);
                        assert_eq!(*b, want, "id {} {order:?} {layout:?}", id + l as u128);
                    }
                    id += 4;
                }
            }
        }
    }

    #[test]
    fn md5_layout_matches_hand_padding() {
        let s = KeySpace::new(Charset::lowercase(), 3, 3, Order::FirstCharFastest).unwrap();
        let bb = BlockBatch::new(&s, BlockLayout::Md5Le, s.interval());
        // First key is "aaa": bytes a,a,a,0x80 little-endian in w[0].
        let t = bb.template();
        assert_eq!(t[0], u32::from_le_bytes([b'a', b'a', b'a', 0x80]));
        assert_eq!(t[14], 24, "bit length low word");
        assert_eq!(t[15], 0);
        for w in &t[1..14] {
            assert_eq!(*w, 0);
        }
    }

    #[test]
    fn sha_layout_matches_hand_padding() {
        let s = KeySpace::new(Charset::lowercase(), 3, 3, Order::FirstCharFastest).unwrap();
        let bb = BlockBatch::new(&s, BlockLayout::ShaBe, s.interval());
        let t = bb.template();
        assert_eq!(t[0], u32::from_be_bytes([b'a', b'a', b'a', 0x80]));
        assert_eq!(t[15], 24, "bit length lives in w[15] big-endian");
        assert_eq!(t[14], 0);
    }

    #[test]
    fn ntlm_layout_interleaves_zero_bytes() {
        let s = KeySpace::new(Charset::lowercase(), 2, 2, Order::FirstCharFastest).unwrap();
        let bb = BlockBatch::new(&s, BlockLayout::NtlmUtf16Le, s.interval());
        // "aa" -> UTF-16LE "a\0a\0" + 0x80: one word of text, terminator
        // at byte 4.
        let t = bb.template();
        assert_eq!(t[0], u32::from_le_bytes([b'a', 0, b'a', 0]));
        assert_eq!(t[1], 0x80);
        assert_eq!(t[14], 32, "4 message bytes = 32 bits");
    }

    #[test]
    fn uniform_suffix_tracks_w0_only_batches() {
        // 26 symbols, first-char-fastest, fixed length 4: the first 26
        // candidates differ only in byte 0 (inside w[0]); byte 1 changes
        // every 26 candidates and still lives in w[0]; byte 4 would be
        // w[1] but length is 4 so suffix words never change except at
        // format boundaries.
        let s = KeySpace::new(Charset::lowercase(), 4, 4, Order::FirstCharFastest).unwrap();
        let mut bb = BlockBatch::new(&s, BlockLayout::Md5Le, s.interval());
        let mut blocks = [[0u32; 16]; 8];
        let mut uniform_batches = 0u32;
        for _ in 0..64 {
            let info = bb.fill(&mut blocks);
            if info.uniform_suffix {
                uniform_batches += 1;
            }
        }
        // All four varying characters live in w[0]: every batch uniform.
        assert_eq!(uniform_batches, 64);
    }

    #[test]
    fn epoch_bumps_when_suffix_words_change() {
        // Length 5: byte 4 lives in w[1], so every 26^4-th candidate...
        // use a tiny charset so suffix changes happen quickly: abc, len 2
        // last-char-fastest — byte 1 changes every step but byte 1 is in
        // w[0]; use len 5 so the last byte is in w[1].
        let s = KeySpace::new(Charset::from_bytes(b"abc").unwrap(), 5, 5, Order::LastCharFastest)
            .unwrap();
        let mut bb = BlockBatch::new(&s, BlockLayout::Md5Le, s.interval());
        let e0 = bb.epoch();
        let mut blocks = [[0u32; 16]; 2];
        bb.fill(&mut blocks); // advances at least once: byte 4 changes
        assert!(bb.epoch() > e0, "last byte of a 5-byte key lives in w[1]");
    }

    #[test]
    fn growth_reformats_and_bumps_epoch() {
        let s = KeySpace::new(Charset::from_bytes(b"ab").unwrap(), 1, 3, Order::FirstCharFastest)
            .unwrap();
        let mut bb = BlockBatch::new(&s, BlockLayout::Md5Le, s.interval());
        let mut blocks = [[0u32; 16]; 2];
        // ids 0.."b" then growth "aa" at id 2.
        let i1 = bb.fill(&mut blocks); // a, b
        assert_eq!(i1.start_id, 0);
        let i2 = bb.fill(&mut blocks); // aa, ba
        assert_eq!(blocks[0][14], 16, "grown key has 2-byte length");
        assert!(i2.epoch > i1.epoch);
    }

    #[test]
    fn fill_w0s_agrees_with_full_fill() {
        let s = KeySpace::new(Charset::lowercase(), 4, 4, Order::FirstCharFastest).unwrap();
        let mut full = BlockBatch::new(&s, BlockLayout::Md5Le, s.interval());
        let mut fast = full.clone();
        let mut blocks = [[0u32; 16]; 8];
        let mut w0s = [0u32; 8];
        for _ in 0..64 {
            let info_full = full.fill(&mut blocks);
            let (info_fast, template0) = fast.fill_w0s(&mut w0s);
            assert_eq!(info_fast, info_full);
            assert_eq!(template0, blocks[0], "first lane's whole block");
            for (l, b) in blocks.iter().enumerate() {
                assert_eq!(w0s[l], b[0], "lane {l} first word");
                if info_fast.uniform_suffix {
                    assert_eq!(b[1..], template0[1..], "lane {l} shared suffix");
                }
            }
        }
        assert_eq!(fast.next_id(), full.next_id());
        assert_eq!(fast.remaining(), full.remaining());
    }

    #[test]
    #[should_panic]
    fn fill_past_end_panics() {
        let s = KeySpace::new(Charset::from_bytes(b"ab").unwrap(), 1, 1, Order::FirstCharFastest)
            .unwrap();
        let mut bb = BlockBatch::new(&s, BlockLayout::Md5Le, s.interval());
        let mut blocks = [[0u32; 16]; 4];
        bb.fill(&mut blocks); // only 2 candidates exist
    }

    #[test]
    fn interval_is_clamped_and_offset() {
        let s = KeySpace::new(Charset::lowercase(), 1, 3, Order::FirstCharFastest).unwrap();
        let mut bb = BlockBatch::new(&s, BlockLayout::Md5Le, Interval::new(100, 1 << 40));
        assert_eq!(bb.next_id(), 100);
        assert_eq!(bb.remaining(), s.size() - 100);
        let mut blocks = [[0u32; 16]; 2];
        let info = bb.fill(&mut blocks);
        assert_eq!(info.start_id, 100);
        assert_eq!(blocks[0], fresh_block(&s, BlockLayout::Md5Le, 100));
        assert_eq!(blocks[1], fresh_block(&s, BlockLayout::Md5Le, 101));
    }
}
