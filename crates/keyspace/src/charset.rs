//! Character sets: ordered pools of distinct byte symbols.

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use std::fmt;

/// An ordered set of distinct byte symbols over which keys are enumerated.
///
/// Symbol order defines the enumeration order: the symbol at index 0 is the
/// "zero digit" of the bijective numeral system (the first key of every
/// length is `charset[0]` repeated).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Charset {
    symbols: Vec<u8>,
    /// Reverse map: byte -> index + 1 (0 means absent). Makes `index_of`
    /// O(1), which `decode` needs on every character.
    reverse: Box<[u8; 256]>,
}

/// Error building a charset from bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CharsetError {
    /// The input was empty.
    Empty,
    /// The input held more than 255 symbols (index must fit in a byte + 1).
    TooLarge,
    /// The byte appears more than once.
    Duplicate(u8),
}

impl fmt::Display for CharsetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CharsetError::Empty => write!(f, "charset must not be empty"),
            CharsetError::TooLarge => write!(f, "charset holds more than 255 symbols"),
            CharsetError::Duplicate(b) => write!(f, "duplicate symbol {b:#04x} in charset"),
        }
    }
}

impl std::error::Error for CharsetError {}

impl Charset {
    /// Build a charset from a byte slice. Order is preserved; duplicates
    /// are rejected.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CharsetError> {
        if bytes.is_empty() {
            return Err(CharsetError::Empty);
        }
        if bytes.len() > 255 {
            return Err(CharsetError::TooLarge);
        }
        let mut reverse = Box::new([0u8; 256]);
        for (i, &b) in bytes.iter().enumerate() {
            if reverse[b as usize] != 0 {
                return Err(CharsetError::Duplicate(b));
            }
            reverse[b as usize] = (i + 1) as u8;
        }
        Ok(Self { symbols: bytes.to_vec(), reverse })
    }

    /// `a..=z` (26 symbols).
    pub fn lowercase() -> Self {
        Self::from_bytes(&(b'a'..=b'z').collect::<Vec<_>>()).expect("static charset")
    }

    /// `A..=Z` (26 symbols).
    pub fn uppercase() -> Self {
        Self::from_bytes(&(b'A'..=b'Z').collect::<Vec<_>>()).expect("static charset")
    }

    /// `0..=9` (10 symbols).
    pub fn digits() -> Self {
        Self::from_bytes(&(b'0'..=b'9').collect::<Vec<_>>()).expect("static charset")
    }

    /// Lower- and upper-case letters (52 symbols) — the charset of the
    /// paper's introduction example.
    pub fn alpha() -> Self {
        let mut v: Vec<u8> = (b'a'..=b'z').collect();
        v.extend(b'A'..=b'Z');
        Self::from_bytes(&v).expect("static charset")
    }

    /// Letters and digits (62 symbols) — the search space of the paper's
    /// evaluation ("up to 8 alphanumeric characters, both lower and upper
    /// cases").
    pub fn alphanumeric() -> Self {
        let mut v: Vec<u8> = (b'a'..=b'z').collect();
        v.extend(b'A'..=b'Z');
        v.extend(b'0'..=b'9');
        Self::from_bytes(&v).expect("static charset")
    }

    /// All printable ASCII (95 symbols, space through `~`).
    pub fn printable_ascii() -> Self {
        Self::from_bytes(&(b' '..=b'~').collect::<Vec<_>>()).expect("static charset")
    }

    /// Number of symbols (the base `N` of the numeral system).
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// True when the charset is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// The symbol at digit index `i`.
    ///
    /// # Panics
    /// Panics when `i >= len()`.
    #[inline]
    pub fn symbol(&self, i: usize) -> u8 {
        self.symbols[i]
    }

    /// Digit index of `byte`, or `None` when it is not in the charset.
    #[inline]
    pub fn index_of(&self, byte: u8) -> Option<usize> {
        match self.reverse[byte as usize] {
            0 => None,
            i => Some(i as usize - 1),
        }
    }

    /// The first symbol (digit 0).
    #[inline]
    pub fn first(&self) -> u8 {
        self.symbols[0]
    }

    /// The last symbol (digit N-1).
    #[inline]
    pub fn last(&self) -> u8 {
        *self.symbols.last().expect("charset is non-empty")
    }

    /// All symbols in digit order.
    pub fn symbols(&self) -> &[u8] {
        &self.symbols
    }
}

impl fmt::Display for Charset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", String::from_utf8_lossy(&self.symbols))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_have_expected_sizes() {
        assert_eq!(Charset::lowercase().len(), 26);
        assert_eq!(Charset::uppercase().len(), 26);
        assert_eq!(Charset::digits().len(), 10);
        assert_eq!(Charset::alpha().len(), 52);
        assert_eq!(Charset::alphanumeric().len(), 62);
        assert_eq!(Charset::printable_ascii().len(), 95);
    }

    #[test]
    fn index_of_round_trips() {
        let cs = Charset::alphanumeric();
        for i in 0..cs.len() {
            assert_eq!(cs.index_of(cs.symbol(i)), Some(i));
        }
        assert_eq!(cs.index_of(b'!'), None);
    }

    #[test]
    fn rejects_empty_and_duplicates() {
        assert_eq!(Charset::from_bytes(b""), Err(CharsetError::Empty));
        assert_eq!(Charset::from_bytes(b"aba"), Err(CharsetError::Duplicate(b'a')));
    }

    #[test]
    fn rejects_oversized() {
        let all: Vec<u8> = (0..=255u8).collect();
        assert_eq!(Charset::from_bytes(&all), Err(CharsetError::TooLarge));
        let most: Vec<u8> = (0..255u8).collect();
        assert!(Charset::from_bytes(&most).is_ok());
    }

    #[test]
    fn first_and_last() {
        let cs = Charset::from_bytes(b"xyz").unwrap();
        assert_eq!(cs.first(), b'x');
        assert_eq!(cs.last(), b'z');
        assert_eq!(cs.to_string(), "xyz");
    }

    #[test]
    fn order_is_preserved() {
        let cs = Charset::from_bytes(b"zya").unwrap();
        assert_eq!(cs.symbol(0), b'z');
        assert_eq!(cs.symbol(2), b'a');
    }
}
