//! Iteration over keyspace intervals with the amortized-O(1) `next`
//! operator: one call to `f(id)` at the interval start, then pure
//! increments (Section IV: "the next(f(i)) function can be obtained with a
//! much smaller effort ... in most cases it modifies just a single
//! character").

use crate::interval::Interval;
use crate::key::Key;
use crate::space::KeySpace;

/// Iterator yielding `(id, Key)` pairs over an interval of a [`KeySpace`].
///
/// Clones the key on each `next()`; use [`KeyIter::for_each_key`] to visit
/// keys by reference without per-item clones on hot paths.
#[derive(Debug, Clone)]
pub struct KeyIter<'a> {
    space: &'a KeySpace,
    current: Key,
    next_id: u128,
    remaining: u128,
    primed: bool,
}

impl<'a> KeyIter<'a> {
    /// Create an iterator over `interval` clamped to the space bounds.
    pub fn new(space: &'a KeySpace, interval: Interval) -> Self {
        let clamped = interval.intersect(&space.interval());
        Self {
            space,
            current: Key::empty(),
            next_id: clamped.start,
            remaining: clamped.len,
            primed: false,
        }
    }

    /// Visit every remaining key by reference. Returns the number visited,
    /// stopping early when `f` returns `false`.
    pub fn for_each_key<F>(mut self, mut f: F) -> u128
    where
        F: FnMut(u128, &Key) -> bool,
    {
        let mut visited = 0u128;
        while self.remaining > 0 {
            self.prime();
            if !f(self.next_id, &self.current) {
                return visited + 1;
            }
            visited += 1;
            self.step();
        }
        visited
    }

    fn prime(&mut self) {
        if !self.primed {
            self.space.key_at_into(self.next_id, &mut self.current);
            self.primed = true;
        }
    }

    fn step(&mut self) {
        self.remaining -= 1;
        if self.remaining > 0 {
            self.space.advance_key(&mut self.current);
        }
        self.next_id += 1;
    }
}

impl Iterator for KeyIter<'_> {
    type Item = (u128, Key);

    fn next(&mut self) -> Option<(u128, Key)> {
        if self.remaining == 0 {
            return None;
        }
        self.prime();
        let item = (self.next_id, self.current.clone());
        self.step();
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = usize::try_from(self.remaining).ok();
        (n.unwrap_or(usize::MAX), n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charset::Charset;
    use crate::encode::Order;

    fn space() -> KeySpace {
        KeySpace::new(Charset::from_bytes(b"abc").unwrap(), 1, 3, Order::LastCharFastest).unwrap()
    }

    #[test]
    fn yields_whole_space_in_order() {
        let s = space();
        let keys: Vec<String> = s
            .iter(s.interval())
            .map(|(_, k)| k.to_string())
            .collect();
        assert_eq!(keys.len(), 39);
        assert_eq!(keys[0], "a");
        assert_eq!(keys[3], "aa");
        assert_eq!(keys[38], "ccc");
        // Agreement with direct indexing everywhere.
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(*k, s.key_at(i as u128).to_string());
        }
    }

    #[test]
    fn ids_match_positions() {
        let s = space();
        for (id, key) in s.iter(Interval::new(5, 10)) {
            assert_eq!(s.id_of(&key), Some(id));
        }
    }

    #[test]
    fn interval_is_clamped() {
        let s = space();
        let got: Vec<_> = s.iter(Interval::new(35, 100)).collect();
        assert_eq!(got.len(), 4); // ids 35..39
    }

    #[test]
    fn empty_interval_yields_nothing() {
        let s = space();
        assert_eq!(s.iter(Interval::new(10, 0)).count(), 0);
    }

    #[test]
    fn for_each_key_visits_all() {
        let s = space();
        let mut seen = Vec::new();
        let visited = s.iter(Interval::new(0, 6)).for_each_key(|id, k| {
            seen.push((id, k.to_string()));
            true
        });
        assert_eq!(visited, 6);
        assert_eq!(seen[4], (4, "ab".to_string()));
    }

    #[test]
    fn for_each_key_early_stop() {
        let s = space();
        let visited = s
            .iter(s.interval())
            .for_each_key(|_, k| k.to_string() != "ab");
        assert_eq!(visited, 5); // a, b, c, aa, then ab (id 4) stops the scan
    }

    #[test]
    fn size_hint_is_exact() {
        let s = space();
        let it = s.iter(Interval::new(0, 7));
        assert_eq!(it.size_hint(), (7, Some(7)));
    }
}
