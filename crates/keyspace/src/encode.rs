//! The bijection `f(id)` (Fig. 1), its inverse, and the in-place `next`
//! operator (Fig. 2), in both enumeration orders.
//!
//! Strings over an `N`-symbol charset are *bijective base-N numerals*:
//! decrement-divide digit extraction maps each natural number to exactly
//! one string, with `0 -> ε`.
//!
//! * [`Order::LastCharFastest`] is the paper's mapping (1): consecutive
//!   identifiers differ in the **last** character
//!   (`ε, a, b, c, aa, ab, ac, ba, …`). This is the natural order produced
//!   by Fig. 1 (digits are prepended).
//! * [`Order::FirstCharFastest`] is mapping (4): consecutive identifiers
//!   differ in the **first** character
//!   (`ε, a, b, c, aa, ba, ca, ab, …`). The MD5 reversal optimization
//!   requires it, because a GPU thread iterating with `next` must only
//!   touch the first 4-byte block of the key.

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use crate::charset::Charset;
use crate::key::{Key, MAX_KEY_LEN};

/// Which end of the string the low-order digit lives at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Order {
    /// Mapping (1): last character varies fastest (Fig. 1 as printed).
    LastCharFastest,
    /// Mapping (4): first character varies fastest (Fig. 1 with the
    /// concatenation flipped to `str ⊕ currentChar`).
    FirstCharFastest,
}

/// The bijection `f(id)`: build the key for `id` from scratch (Fig. 1).
///
/// # Panics
/// Panics if the resulting key would exceed [`MAX_KEY_LEN`] characters.
pub fn encode(id: u128, charset: &Charset, order: Order) -> Key {
    let mut key = Key::empty();
    encode_into(id, charset, order, &mut key);
    key
}

/// Like [`encode`] but reuses an existing key buffer.
pub fn encode_into(id: u128, charset: &Charset, order: Order, key: &mut Key) {
    let n = charset.len() as u128;
    // Extract digits low-order first, exactly as Fig. 1: decrement, take
    // the remainder, divide.
    let mut digits = [0u8; MAX_KEY_LEN];
    let mut count = 0usize;
    let mut id = id;
    while id > 0 {
        assert!(count < MAX_KEY_LEN, "identifier {id} encodes past MAX_KEY_LEN");
        id -= 1;
        digits[count] = (id % n) as u8;
        count += 1;
        id /= n;
    }
    key.set_len(count);
    match order {
        // Fig. 1 prepends each extracted digit, so the low-order digit ends
        // up last: write digits back-to-front.
        Order::LastCharFastest => {
            for (i, &d) in digits[..count].iter().enumerate() {
                key.set_byte(count - 1 - i, charset.symbol(d as usize));
            }
        }
        // Mapping (4) appends instead: low-order digit first.
        Order::FirstCharFastest => {
            for (i, &d) in digits[..count].iter().enumerate() {
                key.set_byte(i, charset.symbol(d as usize));
            }
        }
    }
}

/// Inverse of [`encode`]: recover the identifier of a key.
///
/// Returns `None` when the key contains bytes outside the charset or when
/// the identifier would overflow `u128`.
pub fn decode(key: &Key, charset: &Charset, order: Order) -> Option<u128> {
    let n = charset.len() as u128;
    let mut id: u128 = 0;
    // Horner evaluation over digits high-order first: id = id*N + (d+1).
    let fold = |id: u128, byte: u8| -> Option<u128> {
        let d = charset.index_of(byte)? as u128;
        id.checked_mul(n)?.checked_add(d + 1)
    };
    match order {
        Order::LastCharFastest => {
            for &b in key.as_bytes() {
                id = fold(id, b)?;
            }
        }
        Order::FirstCharFastest => {
            for &b in key.as_bytes().iter().rev() {
                id = fold(id, b)?;
            }
        }
    }
    Some(id)
}

/// The `next` operator (Fig. 2): transform `f(id)` into `f(id + 1)` in
/// place. Amortized O(1): in `(N-1)/N` of the calls only one character
/// changes.
///
/// # Panics
/// Panics when the key contains bytes outside the charset, or when the
/// successor would exceed [`MAX_KEY_LEN`].
pub fn advance(key: &mut Key, charset: &Charset, order: Order) {
    advance_tracked(key, charset, order);
}

/// What [`advance_tracked`] changed: which bytes of the key were
/// rewritten, so a block writer can mirror the delta into a pre-padded
/// message buffer instead of reformatting from scratch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdvanceDelta {
    /// Number of key positions rewritten. In
    /// [`Order::FirstCharFastest`] the changed positions are the prefix
    /// `0..changed`; in [`Order::LastCharFastest`] the suffix
    /// `len-changed..len`. When the key grew, every position changed and
    /// `changed == len` (the new length).
    pub changed: usize,
    /// True when the key grew by one symbol (all carries rippled out).
    pub grew: bool,
}

/// Like [`advance`], but reports which positions changed. Most steps
/// return `changed == 1` — the amortized-O(1) fact the paper's `next`
/// operator (and our zero-allocation batch writer) relies on.
///
/// # Panics
/// Same as [`advance`].
pub fn advance_tracked(key: &mut Key, charset: &Charset, order: Order) -> AdvanceDelta {
    // Bump the digit at `pos`; true when done, false when it carried.
    fn bump(key: &mut Key, charset: &Charset, pos: usize) -> bool {
        let byte = key.as_bytes()[pos];
        let d = charset
            .index_of(byte)
            .unwrap_or_else(|| panic!("byte {byte:#04x} not in charset"));
        if d + 1 < charset.len() {
            key.set_byte(pos, charset.symbol(d + 1));
            true
        } else {
            // Carry: this digit wraps to the zero symbol.
            key.set_byte(pos, charset.first());
            false
        }
    }

    let len = key.len();
    let mut changed = 0usize;
    let mut done = false;
    match order {
        Order::LastCharFastest => {
            for pos in (0..len).rev() {
                changed += 1;
                if bump(key, charset, pos) {
                    done = true;
                    break;
                }
            }
        }
        Order::FirstCharFastest => {
            for pos in 0..len {
                changed += 1;
                if bump(key, charset, pos) {
                    done = true;
                    break;
                }
            }
        }
    }
    if done {
        AdvanceDelta { changed, grew: false }
    } else {
        // Every position carried (or the key was empty): the string grows
        // by one zero symbol. "cc" -> "aaa" in both orders.
        key.push(charset.first());
        AdvanceDelta { changed: key.len(), grew: true }
    }
}

/// Number of trailing (or leading, depending on order) positions that
/// changed going from `f(id)` to `f(id+1)`; 1 for most steps. Exposed for
/// the GPU-kernel cost model, which charges the `next` operator by carries.
pub fn carries_for(id: u128, charset: &Charset) -> u32 {
    // The number of digits that change from id to id+1 equals one plus the
    // number of trailing maximal digits in the bijective representation.
    let n = charset.len() as u128;
    let mut id = id;
    let mut carries = 1u32;
    loop {
        if id == 0 {
            return carries; // growth step: ε -> a, etc.
        }
        id -= 1;
        if id % n != n - 1 {
            return carries;
        }
        id /= n;
        carries += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Charset {
        Charset::from_bytes(b"abc").unwrap()
    }

    #[test]
    fn mapping_1_first_entries() {
        // [0..8] -> [ε, a, b, c, aa, ab, ac, ba, bb] (paper Eq. (1))
        let expect = ["", "a", "b", "c", "aa", "ab", "ac", "ba", "bb"];
        for (id, want) in expect.iter().enumerate() {
            let k = encode(id as u128, &abc(), Order::LastCharFastest);
            assert_eq!(&k.to_string(), want, "id={id}");
        }
    }

    #[test]
    fn mapping_4_first_entries() {
        // [0..8] -> [ε, a, b, c, aa, ba, ca, ab, bb] (paper Eq. (4))
        let expect = ["", "a", "b", "c", "aa", "ba", "ca", "ab", "bb"];
        for (id, want) in expect.iter().enumerate() {
            let k = encode(id as u128, &abc(), Order::FirstCharFastest);
            assert_eq!(&k.to_string(), want, "id={id}");
        }
    }

    #[test]
    fn decode_inverts_encode_both_orders() {
        for order in [Order::LastCharFastest, Order::FirstCharFastest] {
            for id in 0..2_000u128 {
                let k = encode(id, &abc(), order);
                assert_eq!(decode(&k, &abc(), order), Some(id), "id={id} {order:?}");
            }
        }
    }

    #[test]
    fn advance_matches_encode_both_orders() {
        for order in [Order::LastCharFastest, Order::FirstCharFastest] {
            let mut k = encode(0, &abc(), order);
            for id in 0..2_000u128 {
                assert_eq!(k, encode(id, &abc(), order), "id={id} {order:?}");
                advance(&mut k, &abc(), order);
            }
        }
    }

    #[test]
    fn advance_grows_at_length_boundaries() {
        let cs = abc();
        let mut k = Key::from_bytes(b"cc");
        advance(&mut k, &cs, Order::LastCharFastest);
        assert_eq!(k.as_bytes(), b"aaa");
        let mut k = Key::from_bytes(b"cc");
        advance(&mut k, &cs, Order::FirstCharFastest);
        assert_eq!(k.as_bytes(), b"aaa");
    }

    #[test]
    fn advance_from_empty() {
        let cs = abc();
        let mut k = Key::empty();
        advance(&mut k, &cs, Order::LastCharFastest);
        assert_eq!(k.as_bytes(), b"a");
    }

    #[test]
    fn single_symbol_charset_is_unary() {
        let cs = Charset::from_bytes(b"x").unwrap();
        assert_eq!(encode(0, &cs, Order::LastCharFastest).to_string(), "");
        assert_eq!(encode(3, &cs, Order::LastCharFastest).to_string(), "xxx");
        assert_eq!(
            decode(&Key::from_bytes(b"xxxx"), &cs, Order::LastCharFastest),
            Some(4)
        );
    }

    #[test]
    fn decode_rejects_foreign_bytes() {
        assert_eq!(decode(&Key::from_bytes(b"ad"), &abc(), Order::LastCharFastest), None);
    }

    #[test]
    fn carries_counter_matches_digit_changes() {
        let cs = abc();
        for id in 0..500u128 {
            let a = encode(id, &cs, Order::LastCharFastest);
            let b = encode(id + 1, &cs, Order::LastCharFastest);
            let changed = if a.len() != b.len() {
                b.len() as u32
            } else {
                let (ab, bb) = (a.as_bytes(), b.as_bytes());
                (0..a.len()).filter(|&i| ab[i] != bb[i]).count() as u32
            };
            assert_eq!(carries_for(id, &cs), changed, "id={id}");
        }
    }

    #[test]
    fn most_steps_are_single_carry() {
        let cs = Charset::alphanumeric();
        let single = (0..10_000u128)
            .filter(|&id| carries_for(id, &cs) == 1)
            .count();
        // (N-1)/N of steps change one character; with N=62 that is > 98 %.
        assert!(single > 9_800, "single-carry steps: {single}");
    }

    #[test]
    fn encode_into_reuses_buffer() {
        let cs = abc();
        let mut k = Key::from_bytes(b"leftover");
        encode_into(4, &cs, Order::LastCharFastest, &mut k);
        assert_eq!(k.as_bytes(), b"aa");
    }
}
