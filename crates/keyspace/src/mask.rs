//! Mask spaces: per-position charsets, hashcat-style.
//!
//! The paper's introduction lists the attack families exhaustive search
//! competes with; masks are the standard way practitioners narrow a
//! brute-force run ("a list of common password patterns"). A mask such as
//! `?u?l?l?l?d?d` enumerates Capitalized-word-plus-two-digits candidates
//! only — a mixed-radix space that plugs into the same dispatch pattern,
//! because it, too, is a bijection from `0..size` onto its candidates.
//!
//! Mask syntax: `?l` lowercase, `?u` uppercase, `?d` digits, `?s` ASCII
//! symbols, `?a` all printable ASCII, `??` a literal `?`, any other byte
//! a literal.

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use std::fmt;

use eks_core::SolutionSpace;

use crate::charset::Charset;
use crate::key::{Key, MAX_KEY_LEN};

/// One position of a mask: a charset or a fixed literal byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MaskSlot {
    /// Any symbol of the charset.
    Set(Charset),
    /// Exactly this byte.
    Literal(u8),
}

impl MaskSlot {
    /// Number of choices at this position.
    pub fn cardinality(&self) -> u128 {
        match self {
            MaskSlot::Set(cs) => cs.len() as u128,
            MaskSlot::Literal(_) => 1,
        }
    }

    fn byte_at(&self, digit: u128) -> u8 {
        match self {
            MaskSlot::Set(cs) => cs.symbol(digit as usize),
            MaskSlot::Literal(b) => {
                debug_assert_eq!(digit, 0);
                *b
            }
        }
    }

    fn digit_of(&self, byte: u8) -> Option<u128> {
        match self {
            MaskSlot::Set(cs) => cs.index_of(byte).map(|i| i as u128),
            MaskSlot::Literal(b) => (byte == *b).then_some(0),
        }
    }
}

/// Error parsing or building a mask.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MaskError {
    /// The mask expands to zero positions.
    Empty,
    /// More than [`MAX_KEY_LEN`] positions.
    TooLong,
    /// A `?x` escape with an unknown class letter.
    UnknownClass(char),
    /// A trailing `?` with no class letter.
    DanglingEscape,
    /// The total candidate count overflows `u128`.
    TooLarge,
}

impl fmt::Display for MaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaskError::Empty => write!(f, "mask has no positions"),
            MaskError::TooLong => write!(f, "mask exceeds {MAX_KEY_LEN} positions"),
            MaskError::UnknownClass(c) => write!(f, "unknown mask class ?{c}"),
            MaskError::DanglingEscape => write!(f, "mask ends with a bare '?'"),
            MaskError::TooLarge => write!(f, "mask size overflows u128"),
        }
    }
}

impl std::error::Error for MaskError {}

/// A fixed-length candidate space with an independent choice per position.
///
/// Enumeration is last-position-fastest (mixed radix, most significant
/// position first), so same-mask candidates are ordered lexicographically
/// by digit index.
#[derive(Debug, Clone, PartialEq)]
pub struct MaskSpace {
    slots: Vec<MaskSlot>,
    size: u128,
}

impl MaskSpace {
    /// Build from explicit slots.
    pub fn from_slots(slots: Vec<MaskSlot>) -> Result<Self, MaskError> {
        if slots.is_empty() {
            return Err(MaskError::Empty);
        }
        if slots.len() > MAX_KEY_LEN {
            return Err(MaskError::TooLong);
        }
        let mut size: u128 = 1;
        for s in &slots {
            size = size.checked_mul(s.cardinality()).ok_or(MaskError::TooLarge)?;
        }
        Ok(Self { slots, size })
    }

    /// Parse hashcat-style syntax (`?l?u?d?s?a`, `??` literal `?`,
    /// other bytes literal).
    pub fn parse(mask: &str) -> Result<Self, MaskError> {
        let mut slots = Vec::new();
        let mut chars = mask.chars();
        while let Some(c) = chars.next() {
            if c == '?' {
                let class = chars.next().ok_or(MaskError::DanglingEscape)?;
                let slot = match class {
                    'l' => MaskSlot::Set(Charset::lowercase()),
                    'u' => MaskSlot::Set(Charset::uppercase()),
                    'd' => MaskSlot::Set(Charset::digits()),
                    's' => MaskSlot::Set(
                        Charset::from_bytes(b" !\"#$%&'()*+,-./:;<=>?@[\\]^_`{|}~")
                            .expect("distinct symbols"),
                    ),
                    'a' => MaskSlot::Set(Charset::printable_ascii()),
                    '?' => MaskSlot::Literal(b'?'),
                    other => return Err(MaskError::UnknownClass(other)),
                };
                slots.push(slot);
            } else {
                slots.push(MaskSlot::Literal(c as u8));
            }
        }
        Self::from_slots(slots)
    }

    /// Candidate count.
    pub fn size(&self) -> u128 {
        self.size
    }

    /// Mask length in characters.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the mask has no positions (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The candidate at `id` (mixed-radix decode, last position fastest).
    ///
    /// # Panics
    /// Panics when `id >= size()`.
    pub fn key_at(&self, id: u128) -> Key {
        assert!(id < self.size, "id {id} out of range");
        let mut key = Key::empty();
        key.set_len(self.slots.len());
        let mut rest = id;
        for (pos, slot) in self.slots.iter().enumerate().rev() {
            let card = slot.cardinality();
            key.set_byte(pos, slot.byte_at(rest % card));
            rest /= card;
        }
        key
    }

    /// Inverse of [`MaskSpace::key_at`].
    pub fn id_of(&self, key: &Key) -> Option<u128> {
        if key.len() != self.slots.len() {
            return None;
        }
        let mut id: u128 = 0;
        for (slot, &byte) in self.slots.iter().zip(key.as_bytes()) {
            id = id * slot.cardinality() + slot.digit_of(byte)?;
        }
        Some(id)
    }

    /// In-place successor (the mask space's `next` operator): increments
    /// the last position, carrying leftward.
    ///
    /// # Panics
    /// Panics when the key is not a member of the space.
    pub fn advance_key(&self, key: &mut Key) {
        for (pos, slot) in self.slots.iter().enumerate().rev() {
            let byte = key.as_bytes()[pos];
            let d = slot
                .digit_of(byte)
                .unwrap_or_else(|| panic!("byte {byte:#04x} not valid at position {pos}"));
            if d + 1 < slot.cardinality() {
                key.set_byte(pos, slot.byte_at(d + 1));
                return;
            }
            key.set_byte(pos, slot.byte_at(0));
        }
        // Wrapped past the last candidate: stays at the first (callers
        // bound iteration by size()).
    }
}

impl SolutionSpace for MaskSpace {
    type Solution = Key;

    fn size(&self) -> Option<u128> {
        Some(self.size)
    }

    fn generate(&self, id: u128) -> Key {
        self.key_at(id)
    }

    fn advance(&self, _id: u128, solution: &mut Key) {
        self.advance_key(solution);
    }

    fn identify(&self, solution: &Key) -> Option<u128> {
        self.id_of(solution)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_size() {
        let m = MaskSpace::parse("?u?l?d").unwrap();
        assert_eq!(m.len(), 3);
        assert_eq!(m.size(), 26 * 26 * 10);
    }

    #[test]
    fn literals_and_escapes() {
        let m = MaskSpace::parse("a??b?d").unwrap();
        // 'a', literal '?', 'b', digit
        assert_eq!(m.len(), 4);
        assert_eq!(m.size(), 10);
        assert_eq!(m.key_at(0).as_bytes(), b"a?b0");
        assert_eq!(m.key_at(9).as_bytes(), b"a?b9");
    }

    #[test]
    fn first_and_last_candidates() {
        let m = MaskSpace::parse("?u?d").unwrap();
        assert_eq!(m.key_at(0).as_bytes(), b"A0");
        assert_eq!(m.key_at(m.size() - 1).as_bytes(), b"Z9");
        // Last position fastest.
        assert_eq!(m.key_at(1).as_bytes(), b"A1");
        assert_eq!(m.key_at(10).as_bytes(), b"B0");
    }

    #[test]
    fn id_round_trip() {
        let m = MaskSpace::parse("?l?d?l").unwrap();
        for id in (0..m.size()).step_by(97) {
            assert_eq!(m.id_of(&m.key_at(id)), Some(id));
        }
    }

    #[test]
    fn advance_matches_key_at() {
        let m = MaskSpace::parse("x?d?l").unwrap();
        let mut k = m.key_at(0);
        for id in 0..m.size() - 1 {
            m.advance_key(&mut k);
            assert_eq!(k, m.key_at(id + 1), "id {id}");
        }
    }

    #[test]
    fn id_of_rejects_foreign_keys() {
        let m = MaskSpace::parse("?l?d").unwrap();
        assert_eq!(m.id_of(&Key::from_bytes(b"a")), None, "wrong length");
        assert_eq!(m.id_of(&Key::from_bytes(b"aa")), None, "digit expected");
        assert_eq!(m.id_of(&Key::from_bytes(b"A0")), None, "lower expected");
    }

    #[test]
    fn parse_errors() {
        assert_eq!(MaskSpace::parse(""), Err(MaskError::Empty));
        assert_eq!(MaskSpace::parse("?z"), Err(MaskError::UnknownClass('z')));
        assert_eq!(MaskSpace::parse("?l?"), Err(MaskError::DanglingEscape));
        let long = "?l".repeat(MAX_KEY_LEN + 1);
        assert_eq!(MaskSpace::parse(&long), Err(MaskError::TooLong));
    }

    #[test]
    fn solution_space_impl() {
        let m = MaskSpace::parse("?d?d").unwrap();
        assert_eq!(SolutionSpace::size(&m), Some(100));
        let mut k = m.generate(41);
        m.advance(41, &mut k);
        assert_eq!(k, m.generate(42));
        assert_eq!(m.identify(&k), Some(42));
    }
}
