//! Job identity, specification, lifecycle, and the schema-stamped JSON
//! record the spool directory persists.
//!
//! A job is one tenant's exhaustive search: a hash target over a bounded
//! keyspace, plus scheduling attributes (priority, first-hit). The
//! persisted [`JobRecord`] bundles the immutable [`JobSpec`] with the
//! mutable progress state — lifecycle, the completed-work frontier
//! ([`Checkpoint`]), the credited key count and any hits — so a killed
//! process resumes from exactly the coverage it had durably recorded.

use std::fmt;
use std::fmt::Write as _;

use eks_engine::checkpoint::{
    self, escape_json, push_interval, str_field, u64_field, u128_field, Checkpoint,
    CheckpointError,
};
use eks_engine::{ScanMode, TargetSet};
use eks_hashes::{from_hex, to_hex, HashAlgo};
use eks_keyspace::{Charset, Interval, KeySpace, Order};
use eks_telemetry::parse::{parse_json, Json};

/// Version stamp of the job-record JSON document. Any layout change must
/// bump this and update the goldens in `tests/jobs_schema.rs` in the
/// same commit.
pub const JOB_SCHEMA_VERSION: u64 = 1;

/// Why a job operation failed. Rendered to users by `eks job`, so every
/// variant reads as a sentence, not a debug dump.
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// Filesystem trouble in the spool directory.
    Io(String),
    /// A spool file is not a readable job record.
    Corrupt { path: String, reason: String },
    /// A record is stamped with an unknown future schema version.
    Schema(u64),
    /// No such job in the spool.
    NotFound(JobId),
    /// The specification cannot build a search.
    InvalidSpec(String),
    /// The requested lifecycle transition is not allowed.
    BadTransition { from: JobState, to: JobState },
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Io(e) => write!(f, "spool I/O error: {e}"),
            JobError::Corrupt { path, reason } => {
                write!(f, "job record {path} is corrupt: {reason}")
            }
            JobError::Schema(v) => write!(
                f,
                "job record schema version {v} is not supported (this build reads {JOB_SCHEMA_VERSION})"
            ),
            JobError::NotFound(id) => write!(f, "no such job: {id}"),
            JobError::InvalidSpec(e) => write!(f, "invalid job specification: {e}"),
            JobError::BadTransition { from, to } => {
                write!(f, "cannot move a {} job to {}", from.name(), to.name())
            }
        }
    }
}

impl std::error::Error for JobError {}

impl From<CheckpointError> for JobError {
    fn from(e: CheckpointError) -> Self {
        match e {
            CheckpointError::Schema(v) => JobError::Schema(v),
            other => JobError::Corrupt { path: String::new(), reason: other.to_string() },
        }
    }
}

/// A job's identity: dense small integers, rendered as `job-<n>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

impl JobId {
    /// Parse `job-<n>` or a bare integer.
    pub fn parse(s: &str) -> Option<Self> {
        let digits = s.strip_prefix("job-").unwrap_or(s);
        digits.parse().ok().map(JobId)
    }
}

/// Lifecycle of a job.
///
/// `Running` is persisted too: a record found `Running` on startup is a
/// crash marker — the process died mid-search — and is treated as
/// runnable, resuming from its durable frontier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Submitted, not yet scheduled.
    Pending,
    /// Held at least one lease; not finished.
    Running,
    /// Explicitly paused; the scheduler skips it until resumed.
    Paused,
    /// All keys covered, or the first hit found.
    Completed,
    /// Explicitly cancelled; never scheduled again.
    Cancelled,
}

impl JobState {
    /// The serialized (and displayed) name.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Pending => "pending",
            JobState::Running => "running",
            JobState::Paused => "paused",
            JobState::Completed => "completed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Parse a serialized name.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "pending" => JobState::Pending,
            "running" => JobState::Running,
            "paused" => JobState::Paused,
            "completed" => JobState::Completed,
            "cancelled" => JobState::Cancelled,
            _ => return None,
        })
    }

    /// True when the scheduler may lease work for this state.
    pub fn is_runnable(self) -> bool {
        matches!(self, JobState::Pending | JobState::Running)
    }

    /// True when the state is final: no transition leaves it.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Completed | JobState::Cancelled)
    }

    /// Whether a user/scheduler transition `self -> to` is legal.
    /// Terminal states accept nothing; everything else may pause,
    /// resume, cancel, run, or complete.
    pub fn can_transition(self, to: JobState) -> bool {
        !self.is_terminal() && to != JobState::Pending || (self == to)
    }
}

/// The immutable description of one search job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Human-readable name (free text; JSON-escaped on disk).
    pub name: String,
    /// Hash algorithm of the target digest.
    pub algo: HashAlgo,
    /// The target digest (length must match `algo`).
    pub digest: Vec<u8>,
    /// Charset symbols, in enumeration order. ASCII only — the spool
    /// record stores them as a plain JSON string.
    pub charset: Vec<u8>,
    /// Minimum key length.
    pub min_len: u32,
    /// Maximum key length.
    pub max_len: u32,
    /// Enumeration order.
    pub order: Order,
    /// Fair-share weight: a priority-2 job receives twice the keys per
    /// round of a priority-1 job (the inter-job scatter proportion).
    pub priority: u32,
    /// Stop at the lowest-identifier hit instead of sweeping everything.
    pub first_hit_only: bool,
}

impl JobSpec {
    /// Validate and build the keyspace this job enumerates.
    pub fn space(&self) -> Result<KeySpace, JobError> {
        if self.digest.len() != self.algo.digest_len() {
            return Err(JobError::InvalidSpec(format!(
                "digest is {} bytes but {} digests are {} bytes",
                self.digest.len(),
                self.algo.name(),
                self.algo.digest_len()
            )));
        }
        if self.priority == 0 {
            return Err(JobError::InvalidSpec("priority must be at least 1".into()));
        }
        if !self.charset.is_ascii() {
            return Err(JobError::InvalidSpec("charset must be ASCII".into()));
        }
        let charset = Charset::from_bytes(&self.charset)
            .map_err(|e| JobError::InvalidSpec(e.to_string()))?;
        KeySpace::new(charset, self.min_len, self.max_len, self.order)
            .map_err(|e| JobError::InvalidSpec(e.to_string()))
    }

    /// The test function: a single-digest target set.
    pub fn targets(&self) -> TargetSet {
        TargetSet::new(self.algo, std::slice::from_ref(&self.digest))
    }

    /// The dispatcher mode this job runs in.
    pub fn mode(&self) -> ScanMode {
        ScanMode::from_first_hit(self.first_hit_only)
    }
}

/// One found key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobHit {
    /// The key's identifier in the job's keyspace.
    pub id: u128,
    /// The key bytes.
    pub key: Vec<u8>,
}

/// The persisted unit: spec + progress. See the module docs for the
/// crash-safety argument.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Identity within one spool directory.
    pub id: JobId,
    /// The immutable search description.
    pub spec: JobSpec,
    /// Lifecycle state.
    pub state: JobState,
    /// Completed-vs-pending coverage over the job's identifier interval.
    pub frontier: Checkpoint,
    /// Keys credited to this job. For exhaustive jobs this is always
    /// `frontier.consumed()` — derived, never independently counted, so
    /// restart cannot double-credit. First-hit jobs may stop early with
    /// `tested < consumed`-equivalent coverage; the scan's exact count
    /// is recorded here.
    pub tested: u128,
    /// Hits found so far, lowest identifier first.
    pub hits: Vec<JobHit>,
}

impl JobRecord {
    /// A fresh record for a validated spec: everything pending.
    pub fn new(id: JobId, spec: JobSpec) -> Result<Self, JobError> {
        let space = spec.space()?;
        Ok(Self {
            id,
            spec,
            state: JobState::Pending,
            frontier: Checkpoint::new(space.interval()),
            tested: 0,
            hits: Vec::new(),
        })
    }

    /// Keys still owed to this job.
    pub fn remaining(&self) -> u128 {
        if self.state.is_terminal() {
            0
        } else {
            self.frontier.remaining()
        }
    }

    /// Render the schema-stamped JSON record (one line, no trailing
    /// newline — the store appends one).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema\":{JOB_SCHEMA_VERSION},\"id\":{},\"name\":\"{}\",\"state\":\"{}\",\
             \"algo\":\"{}\",\"digest\":\"{}\",\"charset\":\"{}\",\"min_len\":{},\"max_len\":{},\
             \"order\":\"{}\",\"priority\":{},\"first_hit\":{},",
            self.id.0,
            escape_json(&self.spec.name),
            self.state.name(),
            algo_key(self.spec.algo),
            to_hex(&self.spec.digest),
            escape_json(&String::from_utf8_lossy(&self.spec.charset)),
            self.spec.min_len,
            self.spec.max_len,
            match self.spec.order {
                Order::LastCharFastest => "last",
                Order::FirstCharFastest => "first",
            },
            self.spec.priority,
            self.spec.first_hit_only,
        );
        out.push_str("\"full\":");
        push_interval(&mut out, &self.frontier.full);
        out.push_str(",\"pending\":[");
        for (i, iv) in self.frontier.pending.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_interval(&mut out, iv);
        }
        let _ = write!(out, "],\"tested\":\"{}\",\"hits\":[", self.tested);
        for (i, hit) in self.hits.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"id\":\"{}\",\"key\":\"{}\"}}", hit.id, to_hex(&hit.key));
        }
        out.push_str("]}");
        out
    }

    /// Parse a schema-stamped JSON record, rejecting unknown schema
    /// versions and structurally invalid progress rather than resuming a
    /// job that would rescan or skip keys.
    pub fn from_json(text: &str) -> Result<Self, JobError> {
        let doc = parse_json(text)
            .map_err(|e| JobError::Corrupt { path: String::new(), reason: e })?;
        let invalid = |reason: String| JobError::Corrupt { path: String::new(), reason };
        let schema = u64_field(&doc, "schema")?;
        if schema != JOB_SCHEMA_VERSION {
            return Err(JobError::Schema(schema));
        }
        let id = JobId(u64_field(&doc, "id")?);
        let state = JobState::parse(str_field(&doc, "state")?)
            .ok_or_else(|| invalid(format!("unknown state {:?}", str_field(&doc, "state"))))?;
        let algo = parse_algo_key(str_field(&doc, "algo")?)
            .ok_or_else(|| invalid(format!("unknown algo {:?}", str_field(&doc, "algo"))))?;
        let digest = from_hex(str_field(&doc, "digest")?)
            .ok_or_else(|| invalid("digest is not hex".into()))?;
        let order = match str_field(&doc, "order")? {
            "last" => Order::LastCharFastest,
            "first" => Order::FirstCharFastest,
            other => return Err(invalid(format!("unknown order {other:?}"))),
        };
        let first_hit_only = match doc.get("first_hit") {
            Some(Json::Bool(b)) => *b,
            _ => return Err(invalid("missing or non-boolean first_hit".into())),
        };
        let spec = JobSpec {
            name: str_field(&doc, "name")?.to_string(),
            algo,
            digest,
            charset: str_field(&doc, "charset")?.as_bytes().to_vec(),
            min_len: u64_field(&doc, "min_len")? as u32,
            max_len: u64_field(&doc, "max_len")? as u32,
            order,
            priority: u64_field(&doc, "priority")? as u32,
            first_hit_only,
        };
        let space = spec.space()?;

        let full = checkpoint::interval_field(&doc, "full")?;
        if full != space.interval() {
            return Err(invalid(format!(
                "recorded interval [{}, +{}) does not match the spec's keyspace of {} keys",
                full.start,
                full.len,
                space.size()
            )));
        }
        let mut pending = checkpoint::interval_array(&doc, "pending")?;
        pending.sort_by_key(|iv| iv.start);
        for w in pending.windows(2) {
            if let [a, b] = w {
                if a.end() > b.start {
                    return Err(invalid("pending intervals overlap".into()));
                }
            }
        }
        for iv in &pending {
            if iv.intersect(&full) != *iv {
                return Err(invalid("pending interval escapes the job's keyspace".into()));
            }
        }
        let tested = u128_field(&doc, "tested")?;
        let hits = match doc.get("hits") {
            Some(Json::Arr(items)) => {
                let mut hs = Vec::with_capacity(items.len());
                for item in items {
                    let key = from_hex(str_field(item, "key")?)
                        .ok_or_else(|| invalid("hit key is not hex".into()))?;
                    hs.push(JobHit { id: u128_field(item, "id")?, key });
                }
                hs
            }
            _ => return Err(invalid("missing hits array".into())),
        };
        Ok(Self { id, spec, state, frontier: Checkpoint { full, pending }, tested, hits })
    }

    /// The lease interval for one scheduling quantum of up to `n` keys,
    /// or `None` when nothing is pending.
    pub fn take_lease(&mut self, n: u128) -> Option<Interval> {
        self.frontier.take_work(n)
    }
}

/// The stable on-disk spelling of an algorithm: `md5`/`sha1`/`ntlm`,
/// plus `md5x{iters}` for the iterated KDF (so `md5x32` round-trips the
/// iteration bound).
pub fn algo_key(algo: HashAlgo) -> String {
    match algo {
        HashAlgo::Md5 => "md5".to_string(),
        HashAlgo::Sha1 => "sha1".to_string(),
        HashAlgo::Ntlm => "ntlm".to_string(),
        HashAlgo::Md5Iter { iters } => format!("md5x{iters}"),
    }
}

/// Inverse of [`algo_key`]; `None` on an unknown spelling (including a
/// zero or unparsable iteration count).
pub fn parse_algo_key(s: &str) -> Option<HashAlgo> {
    match s {
        "md5" => Some(HashAlgo::Md5),
        "sha1" => Some(HashAlgo::Sha1),
        "ntlm" => Some(HashAlgo::Ntlm),
        _ => {
            let iters = s.strip_prefix("md5x")?.parse::<u16>().ok()?;
            (iters > 0).then_some(HashAlgo::Md5Iter { iters })
        }
    }
}

#[cfg(test)]
#[allow(clippy::indexing_slicing)]
mod tests {
    use super::*;

    pub(crate) fn sample_spec() -> JobSpec {
        JobSpec {
            name: "audit \"alpha\"".into(),
            algo: HashAlgo::Md5,
            digest: HashAlgo::Md5.hash(b"dog"),
            charset: (b'a'..=b'z').collect(),
            min_len: 1,
            max_len: 3,
            order: Order::FirstCharFastest,
            priority: 2,
            first_hit_only: true,
        }
    }

    #[test]
    fn record_json_round_trips_exactly() {
        let mut rec = JobRecord::new(JobId(7), sample_spec()).unwrap();
        rec.state = JobState::Running;
        let lease = rec.take_lease(1000).unwrap();
        rec.frontier.complete(lease);
        rec.tested = rec.frontier.consumed();
        rec.hits.push(JobHit { id: 42, key: b"dog".to_vec() });
        let back = JobRecord::from_json(&rec.to_json()).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn unknown_schema_is_rejected() {
        let rec = JobRecord::new(JobId(1), sample_spec()).unwrap();
        let bumped = rec.to_json().replacen("\"schema\":1", "\"schema\":42", 1);
        assert_eq!(JobRecord::from_json(&bumped), Err(JobError::Schema(42)));
    }

    #[test]
    fn mismatched_keyspace_is_rejected() {
        // Someone edited min/max after submission: the recorded interval
        // no longer matches the spec, so resuming would mis-map ids.
        let rec = JobRecord::new(JobId(1), sample_spec()).unwrap();
        let tampered = rec.to_json().replacen("\"max_len\":3", "\"max_len\":4", 1);
        assert!(matches!(JobRecord::from_json(&tampered), Err(JobError::Corrupt { .. })));
    }

    #[test]
    fn invalid_specs_are_refused_at_submission() {
        let mut spec = sample_spec();
        spec.digest = vec![0; 3];
        assert!(matches!(JobRecord::new(JobId(1), spec), Err(JobError::InvalidSpec(_))));
        let mut spec = sample_spec();
        spec.priority = 0;
        assert!(matches!(JobRecord::new(JobId(1), spec), Err(JobError::InvalidSpec(_))));
        let mut spec = sample_spec();
        spec.charset = vec![0xFF, 0x80];
        assert!(matches!(JobRecord::new(JobId(1), spec), Err(JobError::InvalidSpec(_))));
    }

    #[test]
    fn lifecycle_rules() {
        assert!(JobState::Pending.is_runnable());
        assert!(JobState::Running.is_runnable());
        assert!(!JobState::Paused.is_runnable());
        assert!(JobState::Completed.is_terminal());
        assert!(JobState::Running.can_transition(JobState::Paused));
        assert!(JobState::Paused.can_transition(JobState::Running));
        assert!(!JobState::Completed.can_transition(JobState::Running));
        assert!(!JobState::Cancelled.can_transition(JobState::Paused));
    }

    #[test]
    fn job_id_parses_both_spellings() {
        assert_eq!(JobId::parse("job-12"), Some(JobId(12)));
        assert_eq!(JobId::parse("12"), Some(JobId(12)));
        assert_eq!(JobId::parse("job-"), None);
        assert_eq!(JobId::parse("batch-1"), None);
    }
}
