//! Inter-job fair share: the paper's scatter proportions, one level up.
//!
//! The paper's §III scatter step sizes each device's sub-interval by
//! tuned throughput (`N_j = N_max · X_j / X_max`). The job scheduler
//! reuses exactly that arithmetic — [`Interval::split_weighted`], the
//! same function `IntervalDeques::scatter` is built on — but with
//! *priorities* as the weights and a round's key budget as the interval:
//! a priority-2 job receives twice the keys per round of a priority-1
//! job. Within each job's share, the second scatter level (per-worker,
//! by tuned rate) is unchanged.

use eks_keyspace::Interval;

/// Split a round's key budget across jobs proportionally to their
/// priorities, clipped to what each job still owes. Shares lost to
/// clipping are *not* redistributed within the round — the next round's
/// weights only cover still-runnable jobs, so the budget shifts to them
/// automatically and no job is ever over-leased.
///
/// Returns one lease budget per job, aligned with the input slice.
pub fn carve_budget(budget: u128, jobs: &[(u32, u128)]) -> Vec<u128> {
    if jobs.is_empty() || budget == 0 {
        return vec![0; jobs.len()];
    }
    let weights: Vec<f64> = jobs.iter().map(|&(priority, _)| priority.max(1) as f64).collect();
    // The scatter proportion function itself: split a synthetic
    // [0, budget) interval and keep only the part lengths.
    Interval::new(0, budget)
        .split_weighted(&weights)
        .into_iter()
        .zip(jobs)
        .map(|(part, &(_, remaining))| part.len.min(remaining))
        .collect()
}

#[cfg(test)]
#[allow(clippy::indexing_slicing)]
mod tests {
    use super::*;

    #[test]
    fn equal_priorities_split_evenly() {
        let shares = carve_budget(1000, &[(1, u128::MAX), (1, u128::MAX)]);
        assert_eq!(shares, vec![500, 500]);
    }

    #[test]
    fn priority_weights_the_share() {
        let shares = carve_budget(900, &[(2, u128::MAX), (1, u128::MAX)]);
        assert_eq!(shares, vec![600, 300]);
    }

    #[test]
    fn shares_are_clipped_to_remaining_work() {
        let shares = carve_budget(1000, &[(1, 100), (1, u128::MAX)]);
        assert_eq!(shares, vec![100, 500]);
    }

    #[test]
    fn whole_budget_is_assigned_when_work_abounds() {
        for jobs in [1usize, 2, 3, 7] {
            let spec: Vec<(u32, u128)> = (0..jobs).map(|i| (i as u32 + 1, u128::MAX)).collect();
            let shares = carve_budget(999_983, &spec);
            assert_eq!(shares.iter().sum::<u128>(), 999_983, "{jobs} jobs");
        }
    }

    #[test]
    fn degenerate_inputs_are_safe() {
        assert!(carve_budget(1000, &[]).is_empty());
        assert_eq!(carve_budget(0, &[(1, 10)]), vec![0]);
        // Priority 0 is treated as 1 rather than dividing by zero.
        assert_eq!(carve_budget(100, &[(0, u128::MAX), (1, u128::MAX)]), vec![50, 50]);
    }
}
