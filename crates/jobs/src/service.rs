//! The job service: fair-share rounds of checkpointed leases over one
//! dispatcher fleet.
//!
//! Each scheduling **round** carves a key budget across the runnable
//! jobs by priority ([`crate::sched::carve_budget`] — the paper's
//! scatter proportions at the inter-job level), then dispatches each
//! job's **lease** over the whole fleet with the usual per-worker
//! scatter + steal machinery. After every lease the job's record is
//! persisted atomically, *then* the next lease starts — so a SIGKILL at
//! any instant loses at most the in-flight lease's scan time and never
//! its coverage accounting: the frontier only ever advances together
//! with the credit derived from it (exactly-once crediting; at-most-one
//! lease of rescan).
//!
//! Telemetry gains the `job` label dimension here: per-lease the service
//! flushes `eks_job_keys_tested_total{job=...}` from the same
//! `DispatchReport` whose per-worker totals the dispatcher flushed, so
//! the per-job carve-out always reconciles exactly against the shared
//! worker counters.

use std::sync::Mutex;

use eks_engine::{
    Backend, DequeLeaf, Dispatcher, IntervalDeques, RateEstimator, Retune, SchedOptions,
    SchedPolicy, WorkerStats,
};
use eks_keyspace::Interval;
use eks_telemetry::{names, Telemetry};

use crate::job::{JobError, JobHit, JobId, JobRecord, JobState};
use crate::sched::carve_budget;
use crate::store::JobStore;

/// One worker of the shared fleet: a label (stable across leases and
/// jobs, so worker counters accumulate coherently), a scatter weight
/// (tuned throughput, as in the paper's §VI tuning step), and the
/// backend that scans.
pub struct FleetMember {
    /// Telemetry/worker label.
    pub label: String,
    /// Relative tuned rate for the per-worker scatter.
    pub weight: f64,
    /// The leaf executor.
    pub backend: Box<dyn Backend>,
}

/// The device fleet every job's leases are dispatched onto.
pub struct Fleet {
    members: Vec<FleetMember>,
}

impl Fleet {
    /// A fleet over the given members.
    ///
    /// # Panics
    /// Panics when `members` is empty — a fleet must be able to scan.
    pub fn new(members: Vec<FleetMember>) -> Self {
        assert!(!members.is_empty(), "a fleet needs at least one member");
        Self { members }
    }

    /// Member count.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Never true: construction rejects empty fleets.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Member labels, in slot order.
    pub fn labels(&self) -> Vec<&str> {
        self.members.iter().map(|m| m.label.as_str()).collect()
    }

    /// Scatter weights, in slot order.
    pub fn weights(&self) -> Vec<f64> {
        self.members.iter().map(|m| m.weight).collect()
    }

    /// A device joins the fleet (cluster dynamic membership). Takes
    /// effect at the next lease — in-flight leases keep their partition.
    pub fn join(&mut self, member: FleetMember) {
        self.members.push(member);
    }

    /// A device leaves the fleet. Returns false when no member carries
    /// the label. Leases already dispatched are unaffected; the member
    /// simply receives no further work.
    pub fn leave(&mut self, label: &str) -> bool {
        let before = self.members.len();
        if before == 1 && self.members.iter().any(|m| m.label == label) {
            // Refuse to shrink to an empty fleet; the caller decides
            // whether to stop the service instead.
            return false;
        }
        self.members.retain(|m| m.label != label);
        self.members.len() != before
    }
}

/// Scheduler knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Keys leased per round across all jobs (the checkpoint
    /// granularity: smaller rounds persist more often).
    pub round_keys: u128,
    /// Intra-lease scheduling policy.
    pub sched: SchedPolicy,
    /// Chunk size for the policy (fixed size or guided floor).
    pub chunk: u128,
    /// Closed-loop adaptation: scatter every lease by the fleet's live
    /// (warm-up-gated) rate estimates instead of the frozen tuned
    /// weights, enable chunk-level re-scatter inside each lease, and
    /// scale the round budget by the fleet's live-to-tuned throughput
    /// ratio. Off, scheduling is byte-identical to the static
    /// accounting.
    pub retune: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self { round_keys: 1 << 16, sched: SchedPolicy::Steal, chunk: 4096, retune: false }
    }
}

/// What one scheduling round did.
#[derive(Debug, Default)]
pub struct RoundReport {
    /// Leases dispatched, in dispatch order.
    pub leases: Vec<(JobId, Interval)>,
    /// Keys scanned this round (sum of dispatch reports).
    pub scanned: u128,
    /// Jobs that reached `Completed` this round.
    pub completed: Vec<JobId>,
}

impl RoundReport {
    /// True when no runnable job had work: the service may sleep.
    pub fn is_idle(&self) -> bool {
        self.leases.is_empty()
    }
}

/// The multi-tenant scheduler over one spool and one fleet.
pub struct JobService {
    store: JobStore,
    config: ServiceConfig,
    telemetry: Telemetry,
    /// The live rate ledger: one estimator per fleet slot, positionally
    /// aligned with the member list and keyed by label so membership
    /// churn restarts the affected slot cold on its tuned weight.
    /// Persists across rounds (it outlives each lease's dispatcher);
    /// only consulted when [`ServiceConfig::retune`] is on.
    rates: Mutex<Vec<(String, RateEstimator)>>,
}

impl JobService {
    /// A service over an open store.
    pub fn new(store: JobStore, config: ServiceConfig) -> Self {
        Self { store, config, telemetry: Telemetry::disabled(), rates: Mutex::new(Vec::new()) }
    }

    /// Attach telemetry (per-job counters + lease events).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The underlying store.
    pub fn store(&self) -> &JobStore {
        &self.store
    }

    /// The telemetry handle leases flush through (disabled by default).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Run one fair-share round: carve the budget across runnable jobs,
    /// dispatch one lease per job, checkpoint after each.
    pub fn round(&self, fleet: &Fleet) -> Result<RoundReport, JobError> {
        let mut report = RoundReport::default();
        let mut jobs: Vec<JobRecord> = self
            .store
            .list()?
            .into_iter()
            .filter(|r| r.state.is_runnable() && !r.frontier.is_complete())
            .collect();
        if jobs.is_empty() {
            return Ok(report);
        }
        let shares = carve_budget(
            self.round_budget(fleet),
            &jobs.iter().map(|j| (j.spec.priority, j.remaining())).collect::<Vec<_>>(),
        );
        for (job, share) in jobs.iter_mut().zip(shares) {
            if share == 0 {
                continue;
            }
            self.run_leases(job, share, fleet, &mut report)?;
            if job.state == JobState::Completed {
                report.completed.push(job.id);
            }
        }
        Ok(report)
    }

    /// Drive rounds until no runnable job has work left. Returns the
    /// number of non-idle rounds.
    pub fn run_until_idle(&self, fleet: &Fleet) -> Result<u64, JobError> {
        let mut rounds = 0;
        loop {
            let report = self.round(fleet)?;
            if report.is_idle() {
                return Ok(rounds);
            }
            rounds += 1;
        }
    }

    /// Dispatch up to `share` keys of one job as leases over the fleet,
    /// persisting the record after every lease (the checkpoint barrier).
    fn run_leases(
        &self,
        job: &mut JobRecord,
        share: u128,
        fleet: &Fleet,
        report: &mut RoundReport,
    ) -> Result<(), JobError> {
        let space = job.spec.space()?;
        let targets = job.spec.targets();
        let mode = job.spec.mode();
        let job_label = job.id.to_string();
        let mut left = share;
        while left > 0 {
            // One lease per contiguous pending run: a fragmented
            // frontier (paused mid-gap) simply yields several leases.
            let Some(lease) = job.frontier.take_work(left) else { break };
            left -= lease.len;

            let dispatcher = Dispatcher::new(&space, &targets, mode)
                .with_telemetry(self.telemetry.clone());
            let leaves: Vec<DequeLeaf<'_>> = fleet
                .members
                .iter()
                .map(|m| DequeLeaf {
                    worker: dispatcher.register(m.label.clone()),
                    backend: m.backend.as_ref(),
                })
                .collect();
            // Each lease scatters by the freshest available weights:
            // the live ledger under retune, the frozen tuned rates
            // otherwise. Retune also turns on the engine's chunk-level
            // drift check inside the lease.
            let weights = if self.config.retune {
                self.lease_weights(fleet)
            } else {
                fleet.weights()
            };
            let mut opts = SchedOptions::for_policy(self.config.sched, self.config.chunk);
            if self.config.retune {
                opts = opts.with_retune(Retune::default());
            }
            let deques = IntervalDeques::scatter(lease, &weights);
            dispatcher.run_deques(&leaves, &deques, opts);
            let out = dispatcher.finish();
            if self.config.retune {
                self.observe_lease(&out.stats);
            }

            let new_hits = out.hits.len() as u64;
            for (id, key, _target) in &out.hits {
                job.hits.push(JobHit { id: *id, key: key.as_bytes().to_vec() });
            }
            if mode.first_hit_only() && !out.hits.is_empty() {
                // The job ends at its lowest-identifier hit: leases are
                // taken front-to-back, so this lease's merged hit is the
                // global first. Credit the exact scanned count; the
                // uncovered tail of the lease is moot.
                job.tested = job.tested.saturating_add(out.tested);
                job.state = JobState::Completed;
            } else {
                // Exhaustive (or hitless) lease: the whole interval was
                // scanned. Coverage advances first; the credit is
                // *derived* from it, so a crash can never double-count.
                job.frontier.complete(lease);
                job.tested = job.frontier.consumed();
                job.state = if job.frontier.is_complete() {
                    JobState::Completed
                } else {
                    JobState::Running
                };
            }

            if self.telemetry.is_enabled() {
                let labels = [("job", job_label.as_str())];
                let tested64 = u64::try_from(out.tested).unwrap_or(u64::MAX);
                self.telemetry.counter(names::JOB_KEYS_TESTED, &labels).add(tested64);
                self.telemetry.counter(names::JOB_LEASES, &labels).inc();
                self.telemetry.counter(names::JOB_HITS, &labels).add(new_hits);
                self.telemetry
                    .gauge(names::JOB_REMAINING_KEYS, &labels)
                    .set(job.remaining() as f64);
                self.telemetry
                    .event(names::EVENT_LEASE)
                    .device(&job_label)
                    .field("start", lease.start)
                    .field("keys", lease.len)
                    .finish();
            }

            // The durability barrier: coverage + credit + hits land
            // atomically before the next lease is taken.
            self.store.save(job)?;
            // Lease boundary: let an attached live plane close a window
            // and run its anomaly pass over this lease's deltas.
            self.telemetry.observe_plane();
            report.leases.push((job.id, lease));
            report.scanned += out.tested;
            if job.state.is_terminal() {
                break;
            }
        }
        Ok(())
    }

    /// The round's key budget. Under retune the configured budget is
    /// scaled by the fleet's live-to-tuned throughput ratio (clamped to
    /// `[1/4, 4]`): a fleet really running faster than its tuning
    /// figures leases proportionally more keys per round, so the
    /// checkpoint cadence stays roughly constant in wall time rather
    /// than in keys; a fleet bogged down by an expensive KDF checkpoints
    /// more often, bounding the rescan a crash can cost.
    fn round_budget(&self, fleet: &Fleet) -> u128 {
        if !self.config.retune {
            return self.config.round_keys;
        }
        let tuned: f64 = fleet.weights().iter().sum();
        let live: f64 = self.lease_weights(fleet).iter().sum();
        if tuned <= 0.0 || !live.is_finite() || live <= 0.0 {
            return self.config.round_keys;
        }
        let ratio = (live / tuned).clamp(0.25, 4.0);
        ((self.config.round_keys as f64 * ratio) as u128).max(1)
    }

    /// The per-lease scatter weights under retune: each slot's
    /// warm-up-gated live estimate. Slots whose label changed since the
    /// last lease (membership churn) restart cold on the member's tuned
    /// weight — a re-joined label is a new executor, whatever the old
    /// one measured.
    fn lease_weights(&self, fleet: &Fleet) -> Vec<f64> {
        let mut book = self.rates.lock().expect("rate ledger");
        book.truncate(fleet.members.len());
        for (slot, m) in fleet.members.iter().enumerate() {
            let fresh = book.get(slot).is_some_and(|(label, _)| *label == m.label);
            if !fresh {
                let entry = (m.label.clone(), RateEstimator::new(m.weight));
                if let Some(cell) = book.get_mut(slot) {
                    *cell = entry;
                } else {
                    book.push(entry);
                }
            }
        }
        book.iter().map(|(_, est)| est.mkeys()).collect()
    }

    /// Feed one finished lease's per-worker stats into the ledger. Each
    /// lease runs a fresh dispatcher, so the stats *are* the lease's
    /// deltas — no baseline diffing needed.
    fn observe_lease(&self, stats: &[WorkerStats]) {
        let mut book = self.rates.lock().expect("rate ledger");
        for (slot, st) in stats.iter().enumerate() {
            if let Some((label, est)) = book.get_mut(slot) {
                est.observe(st.tested, st.busy_ns);
                if self.telemetry.is_enabled() {
                    let labels = [("worker", label.as_str())];
                    self.telemetry.gauge(names::WORKER_RATE_EST, &labels).set(est.mkeys());
                    self.telemetry
                        .gauge(names::WORKER_RATE_TUNED, &labels)
                        .set(est.tuned_mkeys());
                }
            }
        }
    }
}
