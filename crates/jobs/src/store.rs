//! The spool directory: one JSON file per job, written atomically.
//!
//! Durability contract: every mutation is persisted with a
//! write-to-temp-then-rename, so a record on disk is always a complete,
//! parseable document — a SIGKILL can lose the *latest* lease's
//! progress (it is rescanned, never double-credited, because the
//! frontier only advances when the write lands) but can never corrupt a
//! record or skip keys. File names are `job-<n>.json`; ids are allocated
//! densely by scanning the directory, so a spool is fully
//! self-describing and relocatable.

use std::fs;
use std::path::{Path, PathBuf};

use crate::job::{JobError, JobId, JobRecord, JobSpec, JobState};

/// A handle on one spool directory.
#[derive(Debug, Clone)]
pub struct JobStore {
    spool: PathBuf,
}

impl JobStore {
    /// Open (creating if needed) a spool directory.
    pub fn open(spool: impl Into<PathBuf>) -> Result<Self, JobError> {
        let spool = spool.into();
        fs::create_dir_all(&spool)
            .map_err(|e| JobError::Io(format!("create {}: {e}", spool.display())))?;
        Ok(Self { spool })
    }

    /// The spool directory path.
    pub fn spool(&self) -> &Path {
        &self.spool
    }

    fn record_path(&self, id: JobId) -> PathBuf {
        self.spool.join(format!("{id}.json"))
    }

    /// Validate a spec, allocate the next id, and persist a fresh
    /// pending record.
    pub fn submit(&self, spec: JobSpec) -> Result<JobRecord, JobError> {
        let next = self.ids()?.last().map_or(1, |id| id.0 + 1);
        let record = JobRecord::new(JobId(next), spec)?;
        self.save(&record)?;
        Ok(record)
    }

    /// Persist a record atomically (temp file + rename).
    pub fn save(&self, record: &JobRecord) -> Result<(), JobError> {
        let path = self.record_path(record.id);
        let tmp = path.with_extension("json.tmp");
        let mut doc = record.to_json();
        doc.push('\n');
        fs::write(&tmp, doc).map_err(|e| JobError::Io(format!("write {}: {e}", tmp.display())))?;
        fs::rename(&tmp, &path)
            .map_err(|e| JobError::Io(format!("rename {} -> {}: {e}", tmp.display(), path.display())))
    }

    /// Load one record, with the file path attached to any corruption
    /// error so `eks job status` can point at the offending file.
    pub fn load(&self, id: JobId) -> Result<JobRecord, JobError> {
        let path = self.record_path(id);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(JobError::NotFound(id))
            }
            Err(e) => return Err(JobError::Io(format!("read {}: {e}", path.display()))),
        };
        let record = JobRecord::from_json(&text).map_err(|e| match e {
            JobError::Corrupt { reason, .. } => {
                JobError::Corrupt { path: path.display().to_string(), reason }
            }
            other => other,
        })?;
        if record.id != id {
            return Err(JobError::Corrupt {
                path: path.display().to_string(),
                reason: format!("file name says {id} but the record says {}", record.id),
            });
        }
        Ok(record)
    }

    /// Every job id present in the spool, ascending.
    pub fn ids(&self) -> Result<Vec<JobId>, JobError> {
        let entries = fs::read_dir(&self.spool)
            .map_err(|e| JobError::Io(format!("read {}: {e}", self.spool.display())))?;
        let mut ids = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| JobError::Io(e.to_string()))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(stem) = name.strip_suffix(".json") else { continue };
            if let Some(id) = JobId::parse(stem) {
                ids.push(id);
            }
        }
        ids.sort();
        Ok(ids)
    }

    /// Every record in the spool, ascending by id.
    pub fn list(&self) -> Result<Vec<JobRecord>, JobError> {
        self.ids()?.into_iter().map(|id| self.load(id)).collect()
    }

    /// Apply a lifecycle transition, enforcing the state machine, and
    /// persist the result.
    pub fn set_state(&self, id: JobId, to: JobState) -> Result<JobRecord, JobError> {
        let mut record = self.load(id)?;
        if !record.state.can_transition(to) {
            return Err(JobError::BadTransition { from: record.state, to });
        }
        record.state = to;
        self.save(&record)?;
        Ok(record)
    }

    /// Pause a runnable job.
    pub fn pause(&self, id: JobId) -> Result<JobRecord, JobError> {
        self.set_state(id, JobState::Paused)
    }

    /// Resume a paused job (back to the runnable pool).
    pub fn resume(&self, id: JobId) -> Result<JobRecord, JobError> {
        self.set_state(id, JobState::Running)
    }

    /// Cancel a job (terminal).
    pub fn cancel(&self, id: JobId) -> Result<JobRecord, JobError> {
        self.set_state(id, JobState::Cancelled)
    }
}

#[cfg(test)]
#[allow(clippy::indexing_slicing)]
mod tests {
    use super::*;
    use eks_hashes::HashAlgo;
    use eks_keyspace::Order;

    fn spec(name: &str) -> JobSpec {
        JobSpec {
            name: name.into(),
            algo: HashAlgo::Md5,
            digest: HashAlgo::Md5.hash(b"cab"),
            charset: (b'a'..=b'z').collect(),
            min_len: 1,
            max_len: 3,
            order: Order::FirstCharFastest,
            priority: 1,
            first_hit_only: false,
        }
    }

    fn tmp_spool(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("eks-jobs-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn submit_allocates_dense_ids_and_round_trips() {
        let dir = tmp_spool("submit");
        let store = JobStore::open(&dir).unwrap();
        let a = store.submit(spec("a")).unwrap();
        let b = store.submit(spec("b")).unwrap();
        assert_eq!((a.id, b.id), (JobId(1), JobId(2)));
        let listed = store.list().unwrap();
        assert_eq!(listed.len(), 2);
        assert_eq!(listed[0], a);
        assert_eq!(listed[1], b);
        // A second handle on the same directory sees the same jobs and
        // continues the id sequence.
        let reopened = JobStore::open(&dir).unwrap();
        let c = reopened.submit(spec("c")).unwrap();
        assert_eq!(c.id, JobId(3));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lifecycle_transitions_are_enforced() {
        let dir = tmp_spool("lifecycle");
        let store = JobStore::open(&dir).unwrap();
        let job = store.submit(spec("a")).unwrap();
        store.pause(job.id).unwrap();
        assert_eq!(store.load(job.id).unwrap().state, JobState::Paused);
        store.resume(job.id).unwrap();
        store.cancel(job.id).unwrap();
        // Terminal: neither pause nor resume may leave it.
        assert!(matches!(store.pause(job.id), Err(JobError::BadTransition { .. })));
        assert!(matches!(store.resume(job.id), Err(JobError::BadTransition { .. })));
        // Cancelling again is idempotent.
        store.cancel(job.id).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_and_corrupt_records_are_friendly_errors() {
        let dir = tmp_spool("corrupt");
        let store = JobStore::open(&dir).unwrap();
        assert_eq!(store.load(JobId(9)), Err(JobError::NotFound(JobId(9))));
        fs::write(dir.join("job-5.json"), "{truncated").unwrap();
        match store.load(JobId(5)) {
            Err(JobError::Corrupt { path, .. }) => assert!(path.contains("job-5.json")),
            other => panic!("expected corrupt error, got {other:?}"),
        }
        // The broken file must not prevent listing errors from naming it.
        assert!(store.list().is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_is_atomic_no_partial_files_linger() {
        let dir = tmp_spool("atomic");
        let store = JobStore::open(&dir).unwrap();
        let job = store.submit(spec("a")).unwrap();
        store.save(&job).unwrap();
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files must be renamed away");
        let _ = fs::remove_dir_all(&dir);
    }
}
