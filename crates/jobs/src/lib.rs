//! # eks-jobs — the multi-tenant job service
//!
//! The paper's dispatcher assumes one search owning the whole fleet.
//! This crate breaks that assumption: many concurrent crack **jobs** are
//! multiplexed onto the same scatter/gather machinery with exactly-once
//! coverage preserved across process kills.
//!
//! * [`job`] — job identity, spec, lifecycle
//!   (`pending → running ⇄ paused → completed/cancelled`), and the
//!   schema-stamped JSON record;
//! * [`store`] — the spool directory: one atomically-written file per
//!   job, self-describing and relocatable;
//! * [`sched`] — inter-job fair share: the paper's §III scatter
//!   proportions applied one level up, with priorities as weights;
//! * [`service`] — the round loop: carve a key budget across runnable
//!   jobs, dispatch each job's lease over the shared [`Fleet`]
//!   (second-level scatter by tuned rate, stealing on), checkpoint
//!   after every lease.
//!
//! The crash-safety contract, end to end: a record on disk is always a
//! complete document (temp-file + rename); the frontier of completed
//! intervals only advances in the same write that carries the credit
//! derived from it; so a SIGKILL at any instant costs at most one
//! in-flight lease of *rescanning*, never a double-credit and never a
//! skipped key.

pub mod job;
pub mod sched;
pub mod service;
pub mod store;

pub use job::{
    algo_key, parse_algo_key, JobError, JobHit, JobId, JobRecord, JobSpec, JobState,
    JOB_SCHEMA_VERSION,
};
pub use sched::carve_budget;
pub use service::{Fleet, FleetMember, JobService, RoundReport, ServiceConfig};
pub use store::JobStore;
