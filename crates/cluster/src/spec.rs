//! Cluster description: a tree of nodes holding GPU devices.

use eks_gpusim::device::Device;

/// One GPU installed in a node.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSlot {
    /// The device model.
    pub device: Device,
}

/// A multicore-CPU worker on a node — the paper's stated future work
/// ("we plan to apply the proposed parallelization pattern to other
/// architectures, including multicore CPUs"). Unlike the simulated GPUs,
/// a CPU worker's throughput is *measured* on the host by the tuning
/// step, and its searches run for real.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuWorker {
    /// Display name.
    pub name: String,
    /// Worker threads this CPU contributes.
    pub threads: usize,
}

/// A node in the dispatch tree. A node may hold devices (computing node),
/// children (dispatcher), or both — the paper's node C both dispatches to
/// D and computes on its own 8600M GT.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterNode {
    /// Node name ("A", "B", ...).
    pub name: String,
    /// Devices hosted on this node.
    pub devices: Vec<GpuSlot>,
    /// CPU workers hosted on this node.
    pub cpus: Vec<CpuWorker>,
    /// Child subtrees this node dispatches to.
    pub children: Vec<ClusterNode>,
    /// One-way message latency to this node from its parent, seconds.
    pub link_latency_s: f64,
}

impl ClusterNode {
    /// A leaf computing node.
    pub fn device_node(name: &str, devices: Vec<Device>, link_latency_s: f64) -> Self {
        Self {
            name: name.to_string(),
            devices: devices.into_iter().map(|device| GpuSlot { device }).collect(),
            cpus: Vec::new(),
            children: Vec::new(),
            link_latency_s,
        }
    }

    /// Attach a child subtree.
    pub fn with_child(mut self, child: ClusterNode) -> Self {
        self.children.push(child);
        self
    }

    /// Attach a CPU worker to this node.
    pub fn with_cpu(mut self, name: &str, threads: usize) -> Self {
        assert!(threads >= 1);
        self.cpus.push(CpuWorker { name: name.to_string(), threads });
        self
    }

    /// All CPU workers in this subtree, depth-first.
    pub fn all_cpus(&self) -> Vec<&CpuWorker> {
        let mut out: Vec<&CpuWorker> = self.cpus.iter().collect();
        for c in &self.children {
            out.extend(c.all_cpus());
        }
        out
    }

    /// All devices in this subtree, depth-first.
    pub fn all_devices(&self) -> Vec<&Device> {
        let mut out: Vec<&Device> = self.devices.iter().map(|s| &s.device).collect();
        for c in &self.children {
            out.extend(c.all_devices());
        }
        out
    }

    /// Number of nodes in the subtree (including this one).
    pub fn node_count(&self) -> usize {
        1 + self.children.iter().map(|c| c.node_count()).sum::<usize>()
    }

    /// Depth of the subtree (a single node has depth 1).
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(|c| c.depth()).max().unwrap_or(0)
    }

    /// Find a node by name.
    pub fn find(&self, name: &str) -> Option<&ClusterNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Remove the named subtree; returns whether anything was removed.
    /// (Used by the fault model: a dead dispatcher takes its subtree with
    /// it — the weakness the paper points out.)
    pub fn remove_subtree(&mut self, name: &str) -> bool {
        let before = self.children.len();
        self.children.retain(|c| c.name != name);
        if self.children.len() != before {
            return true;
        }
        self.children.iter_mut().any(|c| c.remove_subtree(name))
    }
}

/// The paper's evaluation network (Section VI-A):
///
/// * node A (GT 540M) dispatches to B and C;
/// * node B holds a GTX 660 and a GTX 550 Ti;
/// * node C (8600M GT) dispatches to D;
/// * node D holds an 8800 GTS 512.
///
/// `link_latency_s` applies to every edge (the paper's LAN).
pub fn paper_network(link_latency_s: f64) -> ClusterNode {
    ClusterNode::device_node("A", vec![Device::geforce_gt_540m()], 0.0)
        .with_child(ClusterNode::device_node(
            "B",
            vec![Device::geforce_gtx_660(), Device::geforce_gtx_550_ti()],
            link_latency_s,
        ))
        .with_child(
            ClusterNode::device_node("C", vec![Device::geforce_8600m_gt()], link_latency_s)
                .with_child(ClusterNode::device_node(
                    "D",
                    vec![Device::geforce_8800_gts_512()],
                    link_latency_s,
                )),
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_network_shape() {
        let net = paper_network(1e-3);
        assert_eq!(net.node_count(), 4);
        assert_eq!(net.depth(), 3, "A -> C -> D");
        assert_eq!(net.all_devices().len(), 5, "five GPUs");
        assert_eq!(net.find("B").unwrap().devices.len(), 2);
        assert_eq!(net.find("D").unwrap().devices.len(), 1);
        assert!(net.find("E").is_none());
    }

    #[test]
    fn device_placement_matches_section_vi() {
        let net = paper_network(1e-3);
        assert_eq!(net.devices[0].device.name, "GeForce GT 540M");
        let b = net.find("B").unwrap();
        assert_eq!(b.devices[0].device.name, "GeForce GTX 660");
        assert_eq!(b.devices[1].device.name, "GeForce GTX 550 Ti");
        let c = net.find("C").unwrap();
        assert_eq!(c.devices[0].device.name, "GeForce 8600M GT");
        assert_eq!(c.children[0].devices[0].device.name, "GeForce 8800 GTS 512");
    }

    #[test]
    fn remove_subtree_drops_descendants() {
        let mut net = paper_network(1e-3);
        assert!(net.remove_subtree("C"));
        assert_eq!(net.node_count(), 2, "C takes D with it");
        assert_eq!(net.all_devices().len(), 3);
        assert!(!net.remove_subtree("C"), "already gone");
    }

    #[test]
    fn remove_leaf_keeps_parent() {
        let mut net = paper_network(1e-3);
        assert!(net.remove_subtree("D"));
        assert_eq!(net.node_count(), 3);
        assert!(net.find("C").is_some());
    }
}
