//! A real multi-threaded cluster runtime.
//!
//! The DES predicts *performance*; this module executes the same
//! hierarchical dispatch for *real*: the thread tree mirrors the node
//! tree, every device gets a worker thread, intervals are split by the
//! tuned throughput ratios (`N_j = N_max · X_j / X_max`), and each worker
//! genuinely cracks its interval on the CPU via `eks-cracker`. A shared
//! stop flag implements the paper's periodic stop-condition check.

use std::sync::atomic::{AtomicBool, Ordering};

use eks_hashes::HashAlgo;
use eks_keyspace::{Interval, Key, KeySpace};
use eks_kernels::Tool;

use eks_cracker::batch::{crack_interval_batched, Lanes};
use eks_cracker::target::TargetSet;

use crate::spec::ClusterNode;
use crate::tuning::{tune_device, AchievedModel};

/// Result of a real cluster search.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSearchResult {
    /// All hits, in identifier order: `(id, key, target index)`.
    pub hits: Vec<(u128, Key, usize)>,
    /// Candidates actually tested across the whole tree.
    pub tested: u128,
    /// Per-device `(node/device, tested)` accounting, tree order.
    pub per_device: Vec<(String, u128)>,
}

/// Execute a search over the cluster: every node becomes a thread scope,
/// every device a worker thread; `first_hit_only` stops the whole tree at
/// the first match.
pub fn run_cluster_search(
    root: &ClusterNode,
    space: &KeySpace,
    targets: &TargetSet,
    interval: Interval,
    first_hit_only: bool,
) -> ClusterSearchResult {
    let stop = AtomicBool::new(false);
    let mut result = search_node(root, space, targets, interval, &stop, first_hit_only);
    result.hits.sort_by_key(|(id, _, _)| *id);
    if first_hit_only {
        // Several workers can race to a hit before observing the stop
        // flag; keep the canonical (lowest-identifier) one — the merge
        // step of the pattern.
        result.hits.truncate(1);
    }
    result
}

/// Dispatch weight of a subtree: the sum of its devices' and CPU
/// workers' tuned rates.
fn subtree_rate(node: &ClusterNode, algo: HashAlgo) -> f64 {
    let gpus: f64 = node
        .devices
        .iter()
        .map(|s| tune_device(&s.device, Tool::OurApproach, algo, AchievedModel::Analytic).achieved_mkeys)
        .sum();
    let cpus: f64 = node
        .cpus
        .iter()
        .map(|c| crate::tuning::tune_cpu(c, algo).achieved_mkeys)
        .sum();
    gpus + cpus + node.children.iter().map(|c| subtree_rate(c, algo)).sum::<f64>()
}

fn search_node(
    node: &ClusterNode,
    space: &KeySpace,
    targets: &TargetSet,
    interval: Interval,
    stop: &AtomicBool,
    first_hit_only: bool,
) -> ClusterSearchResult {
    let algo = targets.algo();
    // Weights: one per local device, one per child subtree.
    let mut weights: Vec<f64> = node
        .devices
        .iter()
        .map(|s| {
            tune_device(&s.device, Tool::OurApproach, algo, AchievedModel::Analytic).achieved_mkeys
        })
        .collect();
    weights.extend(node.cpus.iter().map(|c| crate::tuning::tune_cpu(c, algo).achieved_mkeys));
    weights.extend(node.children.iter().map(|c| subtree_rate(c, algo)));
    if weights.is_empty() {
        return ClusterSearchResult { hits: Vec::new(), tested: 0, per_device: Vec::new() };
    }
    let parts = interval.split_weighted(&weights);
    let n_devices = node.devices.len();
    let n_cpus = node.cpus.len();

    let mut results: Vec<Option<ClusterSearchResult>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, part) in parts.iter().enumerate() {
            let part = *part;
            if i < n_devices {
                let label = format!("{}/{}", node.name, node.devices[i].device.name);
                handles.push(scope.spawn(move || {
                    // Device workers run on host threads too: the batched
                    // lane path is the CPU stand-in for the warp kernel.
                    let out = crack_interval_batched(
                        space,
                        targets,
                        part,
                        stop,
                        first_hit_only,
                        Lanes::default(),
                    );
                    if first_hit_only && !out.hits.is_empty() {
                        stop.store(true, Ordering::Relaxed);
                    }
                    ClusterSearchResult {
                        tested: out.tested,
                        per_device: vec![(label, out.tested)],
                        hits: out.hits,
                    }
                }));
            } else if i < n_devices + n_cpus {
                // A CPU worker fans its share out over its own threads.
                let cpu = &node.cpus[i - n_devices];
                let label = format!("{}/{}", node.name, cpu.name);
                let threads = cpu.threads;
                handles.push(scope.spawn(move || {
                    let sub = part.split_even(threads);
                    let mut merged =
                        ClusterSearchResult { hits: Vec::new(), tested: 0, per_device: Vec::new() };
                    std::thread::scope(|inner| {
                        let hs: Vec<_> = sub
                            .iter()
                            .map(|p| {
                                let p = *p;
                                inner.spawn(move || {
                                    let out = crack_interval_batched(
                                        space,
                                        targets,
                                        p,
                                        stop,
                                        first_hit_only,
                                        Lanes::default(),
                                    );
                                    if first_hit_only && !out.hits.is_empty() {
                                        stop.store(true, Ordering::Relaxed);
                                    }
                                    out
                                })
                            })
                            .collect();
                        for h in hs {
                            let out = h.join().expect("cpu worker panicked");
                            merged.tested += out.tested;
                            merged.hits.extend(out.hits);
                        }
                    });
                    merged.per_device = vec![(label, merged.tested)];
                    merged
                }));
            } else {
                let child = &node.children[i - n_devices - n_cpus];
                handles.push(scope.spawn(move || {
                    search_node(child, space, targets, part, stop, first_hit_only)
                }));
            }
        }
        results = handles.into_iter().map(|h| Some(h.join().expect("worker panicked"))).collect();
    });

    let mut merged = ClusterSearchResult { hits: Vec::new(), tested: 0, per_device: Vec::new() };
    for r in results.into_iter().flatten() {
        merged.hits.extend(r.hits);
        merged.tested += r.tested;
        merged.per_device.extend(r.per_device);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::paper_network;
    use eks_keyspace::{Charset, Order};

    fn space() -> KeySpace {
        KeySpace::new(Charset::lowercase(), 1, 4, Order::FirstCharFastest).unwrap()
    }

    fn targets(words: &[&[u8]]) -> TargetSet {
        let ds: Vec<Vec<u8>> = words.iter().map(|w| HashAlgo::Md5.hash_long(w)).collect();
        TargetSet::new(HashAlgo::Md5, &ds)
    }

    #[test]
    fn cluster_cracks_a_real_password() {
        let net = paper_network(1e-3);
        let s = space();
        let t = targets(&[b"gpus"]);
        let r = run_cluster_search(&net, &s, &t, s.interval(), true);
        assert_eq!(r.hits.len(), 1);
        assert_eq!(r.hits[0].1.as_bytes(), b"gpus");
    }

    #[test]
    fn full_sweep_covers_every_key_exactly_once() {
        let net = paper_network(1e-3);
        let s = space();
        let t = targets(&[b"zzzz"]); // last key: forces a full sweep
        let r = run_cluster_search(&net, &s, &t, s.interval(), false);
        assert_eq!(r.tested, s.size(), "every key tested exactly once");
        assert_eq!(r.hits.len(), 1);
        assert_eq!(r.per_device.len(), 5, "five devices participated");
    }

    #[test]
    fn multiple_targets_all_found() {
        let net = paper_network(1e-3);
        let s = space();
        let t = targets(&[b"cat", b"dog", b"bird"]);
        let r = run_cluster_search(&net, &s, &t, s.interval(), false);
        let keys: Vec<&[u8]> = r.hits.iter().map(|(_, k, _)| k.as_bytes()).collect();
        assert_eq!(keys.len(), 3);
        for w in [&b"cat"[..], b"dog", b"bird"] {
            assert!(keys.contains(&w));
        }
    }

    #[test]
    fn work_split_follows_throughput_ratios() {
        let net = paper_network(1e-3);
        let s = space();
        let t = targets(&[b"zzzz"]);
        let r = run_cluster_search(&net, &s, &t, s.interval(), false);
        // The GTX 660 (fastest) must receive the largest share; the
        // 8600M GT (slowest) the smallest.
        let share = |pat: &str| {
            r.per_device
                .iter()
                .find(|(n, _)| n.contains(pat))
                .map(|(_, c)| *c)
                .unwrap_or_else(|| panic!("{pat} missing"))
        };
        let gtx660 = share("660");
        let m8600 = share("8600M");
        assert!(gtx660 > 10 * m8600, "660 {gtx660} vs 8600M {m8600}");
    }

    #[test]
    fn pruned_network_still_finds_the_key() {
        let mut net = paper_network(1e-3);
        assert!(net.remove_subtree("C"));
        let s = space();
        let t = targets(&[b"mice"]);
        let r = run_cluster_search(&net, &s, &t, s.interval(), true);
        assert_eq!(r.hits.len(), 1);
        assert_eq!(r.hits[0].1.as_bytes(), b"mice");
    }

    #[test]
    fn single_node_degenerate_cluster_works() {
        let net = crate::spec::ClusterNode::device_node(
            "solo",
            vec![eks_gpusim::device::Device::geforce_gtx_660()],
            0.0,
        );
        let s = space();
        let t = targets(&[b"owl"]);
        let r = run_cluster_search(&net, &s, &t, s.interval(), true);
        assert_eq!(r.hits[0].1.as_bytes(), b"owl");
    }

    #[test]
    fn hybrid_cpu_gpu_node_cracks() {
        // Paper future work: "apply the proposed parallelization pattern
        // to other architectures, including multicore CPUs".
        let net = crate::spec::ClusterNode::device_node(
            "hybrid",
            vec![eks_gpusim::device::Device::geforce_gtx_660()],
            0.0,
        )
        .with_cpu("host-cpu", 2);
        let s = space();
        let t = targets(&[b"fox"]);
        let r = run_cluster_search(&net, &s, &t, s.interval(), true);
        assert_eq!(r.hits[0].1.as_bytes(), b"fox");
    }

    #[test]
    fn cpu_only_cluster_full_sweep() {
        let net = crate::spec::ClusterNode::device_node("cpu-box", vec![], 0.0)
            .with_cpu("cpu0", 2)
            .with_cpu("cpu1", 2);
        let s = space();
        let t = targets(&[b"zzzz"]);
        let r = run_cluster_search(&net, &s, &t, s.interval(), false);
        assert_eq!(r.tested, s.size(), "cpu workers cover the space exactly");
        assert_eq!(r.hits.len(), 1);
        assert_eq!(r.per_device.len(), 2);
    }

    #[test]
    fn empty_interval_is_fine() {
        let net = paper_network(1e-3);
        let s = space();
        let t = targets(&[b"cat"]);
        let r = run_cluster_search(&net, &s, &t, Interval::new(0, 0), true);
        assert!(r.hits.is_empty());
        assert_eq!(r.tested, 0);
    }
}
