//! A real multi-threaded cluster runtime.
//!
//! The DES predicts *performance*; this module executes the same
//! hierarchical dispatch for *real*. Planning walks the node tree
//! exactly as the paper's scatter step does — every interval is split by
//! the tuned throughput ratios (`N_j = N_max · X_j / X_max`) at every
//! level — and yields one [`eks_engine::Backend`] leaf per device thread:
//! a [`SimKernelBackend`] per simulated GPU, an [`AutoBackend`] per CPU
//! worker thread (the tuned winner among autovectorized lanes and the
//! explicit-SIMD kernels). Execution then runs every leaf through one
//! [`Dispatcher`], which owns the shared stop flag (the paper's periodic
//! stop-condition check), the hit merge, and the per-device accounting.

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use eks_hashes::HashAlgo;
use eks_keyspace::{Interval, Key, KeySpace};

use eks_cracker::target::TargetSet;
use eks_cracker::AutoBackend;
use eks_engine::{
    Backend, DequeLeaf, Dispatcher, IntervalDeques, Retune, ScanMode, SchedOptions, SchedPolicy,
    WorkerId, WorkerStats,
};
use eks_telemetry::{names, Telemetry};

use crate::simgpu::SimKernelBackend;
use crate::spec::ClusterNode;
use crate::tuning::tune_cpu;

/// Guided chunk floor for cluster leaves: one poll quantum, so the
/// smallest pop still amortizes a stop-flag check.
const CLUSTER_CHUNK: u128 = eks_engine::POLL_CHUNK;

/// Result of a real cluster search.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSearchResult {
    /// All hits, in identifier order: `(id, key, target index)`.
    pub hits: Vec<(u128, Key, usize)>,
    /// Candidates actually tested across the whole tree.
    pub tested: u128,
    /// Per-device `(node/device [backend], tested)` accounting, tree order.
    pub per_device: Vec<(String, u128)>,
    /// Full per-device scheduler stats, same order as `per_device`.
    pub stats: Vec<WorkerStats>,
}

impl ClusterSearchResult {
    /// Whole-network parallel efficiency in percent: the busy fraction of
    /// the total worker time, `Σ busy / (Σ busy + Σ idle) · 100`. This is
    /// the measured counterpart of the paper's 85–90% whole-network
    /// efficiency (Tables VII–IX). A run where no clock ticked (for
    /// example an empty interval) reports `0` rather than NaN.
    pub fn parallel_efficiency(&self) -> f64 {
        cluster_efficiency_pct(&self.stats)
    }
}

/// Busy fraction of total worker time across a set of worker stats, in
/// percent; `0` when no time was recorded.
pub(crate) fn cluster_efficiency_pct(stats: &[WorkerStats]) -> f64 {
    let busy: u64 = stats.iter().map(|w| w.busy_ns).sum();
    let idle: u64 = stats.iter().map(|w| w.idle_ns).sum();
    let total = busy.saturating_add(idle);
    if total == 0 {
        0.0
    } else {
        100.0 * busy as f64 / total as f64
    }
}

/// One planned unit of execution: a pre-assigned slice of the keyspace,
/// the backend that scans it, and the worker it is credited to. A CPU
/// worker's threads share one `worker` id, so accounting stays
/// per-device rather than per-thread.
struct Leaf {
    worker: WorkerId,
    backend: Box<dyn Backend>,
    interval: Interval,
}

/// Execute a search over the cluster with the static (purely
/// rate-proportional) schedule: every leaf scans exactly its planned
/// share, so per-device accounting reproduces the paper's
/// `N_j = N_max · X_j / X_max` split. See [`run_cluster_search_sched`]
/// to let drained leaves rebalance by stealing.
pub fn run_cluster_search(
    root: &ClusterNode,
    space: &KeySpace,
    targets: &TargetSet,
    interval: Interval,
    first_hit_only: bool,
) -> ClusterSearchResult {
    run_cluster_search_sched(root, space, targets, interval, first_hit_only, SchedPolicy::Static)
}

/// Execute a search over the cluster: planning mirrors the dispatch
/// tree (rate-proportional scatter), execution runs every leaf as an
/// interval-deque owner under one [`Dispatcher`] with the chosen
/// scheduling policy — [`SchedPolicy::Static`] keeps each leaf on its
/// planned share, the stealing policies let drained leaves take the
/// back half of the largest remaining deque. `first_hit_only` stops the
/// whole tree at the first match.
pub fn run_cluster_search_sched(
    root: &ClusterNode,
    space: &KeySpace,
    targets: &TargetSet,
    interval: Interval,
    first_hit_only: bool,
    sched: SchedPolicy,
) -> ClusterSearchResult {
    run_cluster_search_observed(
        root,
        space,
        targets,
        interval,
        first_hit_only,
        sched,
        &Telemetry::disabled(),
    )
}

/// [`run_cluster_search_sched`] with telemetry attached: the scatter
/// (planning) and gather/merge steps run under spans, every device
/// publishes its tuned rate as a gauge, CPU leaves use the observed
/// batch path, and the whole-network efficiency
/// ([`ClusterSearchResult::parallel_efficiency`]) lands in the
/// [`names::CLUSTER_EFFICIENCY_PCT`] gauge — the measured number the
/// paper reports as 85–90%.
pub fn run_cluster_search_observed(
    root: &ClusterNode,
    space: &KeySpace,
    targets: &TargetSet,
    interval: Interval,
    first_hit_only: bool,
    sched: SchedPolicy,
    telemetry: &Telemetry,
) -> ClusterSearchResult {
    run_cluster_search_retuned(
        root,
        space,
        targets,
        interval,
        first_hit_only,
        sched,
        None,
        telemetry,
    )
}

/// [`run_cluster_search_observed`] with an optional closed-loop
/// [`Retune`]: when set, every leaf feeds its chunk timings into a
/// shared rate book and the deques are re-scattered whenever the live
/// estimated-time-to-drain divergence exceeds the drift threshold.
/// `None` reproduces [`run_cluster_search_observed`] exactly.
#[allow(clippy::too_many_arguments)]
pub fn run_cluster_search_retuned(
    root: &ClusterNode,
    space: &KeySpace,
    targets: &TargetSet,
    interval: Interval,
    first_hit_only: bool,
    sched: SchedPolicy,
    retune: Option<Retune>,
    telemetry: &Telemetry,
) -> ClusterSearchResult {
    let dispatcher = Dispatcher::new(space, targets, ScanMode::from_first_hit(first_hit_only))
        .with_telemetry(telemetry.clone());
    let mut leaves = Vec::new();
    {
        let scatter = telemetry.span(names::SPAN_SCATTER);
        plan_node(root, targets.algo(), interval, &dispatcher, telemetry, &mut leaves);
        scatter.field("leaves", leaves.len()).finish();
    }
    if !leaves.is_empty() {
        let deques = IntervalDeques::assign(leaves.iter().map(|l| l.interval).collect());
        let deque_leaves: Vec<DequeLeaf<'_>> = leaves
            .iter()
            .map(|l| DequeLeaf { worker: l.worker, backend: l.backend.as_ref() })
            .collect();
        let mut opts = SchedOptions::for_policy(sched, CLUSTER_CHUNK);
        if let Some(r) = retune {
            opts = opts.with_retune(r);
        }
        dispatcher.run_deques(&deque_leaves, &deques, opts);
    }
    let merge = telemetry.span(names::SPAN_MERGE);
    let report = dispatcher.finish();
    merge.field("hits", report.hits.len()).finish();
    let result = ClusterSearchResult {
        hits: report.hits,
        tested: report.tested,
        per_device: report.per_worker,
        stats: report.stats,
    };
    if telemetry.is_enabled() {
        telemetry
            .gauge(names::CLUSTER_EFFICIENCY_PCT, &[])
            .set(result.parallel_efficiency());
    }
    result
}

/// Dispatch weight of a subtree: the sum of its devices' and CPU
/// workers' tuned rates.
fn subtree_rate(node: &ClusterNode, algo: HashAlgo) -> f64 {
    let gpus: f64 = node
        .devices
        .iter()
        .map(|s| SimKernelBackend::new(s.device.clone()).tuned_rate(algo))
        .sum();
    let cpus: f64 = node.cpus.iter().map(|c| tune_cpu(c, algo).achieved_mkeys).sum();
    gpus + cpus + node.children.iter().map(|c| subtree_rate(c, algo)).sum::<f64>()
}

/// The scatter step: split `interval` over this node's devices, CPUs and
/// children by tuned rate, register one worker per device/CPU (in tree
/// order), and emit the execution leaves.
fn plan_node(
    node: &ClusterNode,
    algo: HashAlgo,
    interval: Interval,
    dispatcher: &Dispatcher<'_>,
    telemetry: &Telemetry,
    leaves: &mut Vec<Leaf>,
) {
    let backends: Vec<SimKernelBackend> =
        node.devices.iter().map(|s| SimKernelBackend::new(s.device.clone())).collect();
    let mut weights: Vec<f64> = backends.iter().map(|b| b.tuned_rate(algo)).collect();
    weights.extend(node.cpus.iter().map(|c| tune_cpu(c, algo).achieved_mkeys));
    weights.extend(node.children.iter().map(|c| subtree_rate(c, algo)));
    if weights.is_empty() {
        return;
    }
    let parts = interval.split_weighted(&weights);
    let n_devices = node.devices.len();
    let n_cpus = node.cpus.len();
    for (i, part) in parts.iter().enumerate() {
        if i < n_devices {
            let backend = backends[i].clone();
            let label =
                format!("{}/{} [{}]", node.name, node.devices[i].device.name, backend.name());
            if telemetry.is_enabled() {
                telemetry.gauge(names::DEVICE_RATE_MKEYS, &[("device", &label)]).set(weights[i]);
            }
            let worker = dispatcher.register(label);
            leaves.push(Leaf { worker, backend: Box::new(backend), interval: *part });
        } else if i < n_devices + n_cpus {
            // A CPU worker fans its share out over its own threads; all
            // of them are credited to the one device-level worker. Each
            // thread runs the auto-tuned backend, so the leaf picks the
            // fastest implementation (autovectorized lanes or an
            // explicit-SIMD kernel) per algorithm — the paper's §V
            // per-architecture specialization applied at scatter time.
            let cpu = &node.cpus[i - n_devices];
            let backend = AutoBackend::new(telemetry.clone());
            let choice = backend.choice_name(algo);
            let label = format!("{}/{} [auto:{}]", node.name, cpu.name, choice);
            if telemetry.is_enabled() {
                telemetry.gauge(names::DEVICE_RATE_MKEYS, &[("device", &label)]).set(weights[i]);
                if let Some(isa) = backend.isa(algo) {
                    telemetry
                        .gauge(names::BACKEND_ISA, &[("backend", "auto"), ("isa", &isa)])
                        .set(1.0);
                }
            }
            let worker = dispatcher.register(label);
            let mut subs = part.split_even(cpu.threads).into_iter();
            // Reuse the tuned backend for the first thread; clones of the
            // telemetry handle share the registry, and the per-process
            // tuning cache makes the extra constructions free.
            if let Some(sub) = subs.next() {
                leaves.push(Leaf { worker, backend: Box::new(backend), interval: sub });
            }
            for sub in subs {
                let b = AutoBackend::new(telemetry.clone());
                leaves.push(Leaf { worker, backend: Box::new(b), interval: sub });
            }
        } else {
            plan_node(
                &node.children[i - n_devices - n_cpus],
                algo,
                *part,
                dispatcher,
                telemetry,
                leaves,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::paper_network;
    use eks_keyspace::{Charset, Order};

    fn space() -> KeySpace {
        KeySpace::new(Charset::lowercase(), 1, 4, Order::FirstCharFastest).unwrap()
    }

    fn targets(words: &[&[u8]]) -> TargetSet {
        let ds: Vec<Vec<u8>> = words.iter().map(|w| HashAlgo::Md5.hash_long(w)).collect();
        TargetSet::new(HashAlgo::Md5, &ds)
    }

    #[test]
    fn cluster_cracks_a_real_password() {
        let net = paper_network(1e-3);
        let s = space();
        let t = targets(&[b"gpus"]);
        let r = run_cluster_search(&net, &s, &t, s.interval(), true);
        assert_eq!(r.hits.len(), 1);
        assert_eq!(r.hits[0].1.as_bytes(), b"gpus");
    }

    #[test]
    fn full_sweep_covers_every_key_exactly_once() {
        let net = paper_network(1e-3);
        let s = space();
        let t = targets(&[b"zzzz"]); // last key: forces a full sweep
        let r = run_cluster_search(&net, &s, &t, s.interval(), false);
        assert_eq!(r.tested, s.size(), "every key tested exactly once");
        assert_eq!(r.hits.len(), 1);
        assert_eq!(r.per_device.len(), 5, "five devices participated");
    }

    #[test]
    fn multiple_targets_all_found() {
        let net = paper_network(1e-3);
        let s = space();
        let t = targets(&[b"cat", b"dog", b"bird"]);
        let r = run_cluster_search(&net, &s, &t, s.interval(), false);
        let keys: Vec<&[u8]> = r.hits.iter().map(|(_, k, _)| k.as_bytes()).collect();
        assert_eq!(keys.len(), 3);
        for w in [&b"cat"[..], b"dog", b"bird"] {
            assert!(keys.contains(&w));
        }
    }

    #[test]
    fn work_split_follows_throughput_ratios() {
        let net = paper_network(1e-3);
        let s = space();
        let t = targets(&[b"zzzz"]);
        let r = run_cluster_search(&net, &s, &t, s.interval(), false);
        // The GTX 660 (fastest) must receive the largest share; the
        // 8600M GT (slowest) the smallest.
        let share = |pat: &str| {
            r.per_device
                .iter()
                .find(|(n, _)| n.contains(pat))
                .map(|(_, c)| *c)
                .unwrap_or_else(|| panic!("{pat} missing"))
        };
        let gtx660 = share("660");
        let m8600 = share("8600M");
        assert!(gtx660 > 10 * m8600, "660 {gtx660} vs 8600M {m8600}");
    }

    #[test]
    fn device_workers_are_labelled_with_the_simgpu_backend() {
        let net = paper_network(1e-3);
        let s = space();
        let t = targets(&[b"zzzz"]);
        let r = run_cluster_search(&net, &s, &t, s.interval(), false);
        assert!(r.per_device.iter().all(|(n, _)| n.contains("[simgpu]")), "{:?}", r.per_device);
    }

    #[test]
    fn pruned_network_still_finds_the_key() {
        let mut net = paper_network(1e-3);
        assert!(net.remove_subtree("C"));
        let s = space();
        let t = targets(&[b"mice"]);
        let r = run_cluster_search(&net, &s, &t, s.interval(), true);
        assert_eq!(r.hits.len(), 1);
        assert_eq!(r.hits[0].1.as_bytes(), b"mice");
    }

    #[test]
    fn single_node_degenerate_cluster_works() {
        let net = crate::spec::ClusterNode::device_node(
            "solo",
            vec![eks_gpusim::device::Device::geforce_gtx_660()],
            0.0,
        );
        let s = space();
        let t = targets(&[b"owl"]);
        let r = run_cluster_search(&net, &s, &t, s.interval(), true);
        assert_eq!(r.hits[0].1.as_bytes(), b"owl");
    }

    #[test]
    fn hybrid_cpu_gpu_node_cracks() {
        // Paper future work: "apply the proposed parallelization pattern
        // to other architectures, including multicore CPUs".
        let net = crate::spec::ClusterNode::device_node(
            "hybrid",
            vec![eks_gpusim::device::Device::geforce_gtx_660()],
            0.0,
        )
        .with_cpu("host-cpu", 2);
        let s = space();
        let t = targets(&[b"fox"]);
        let r = run_cluster_search(&net, &s, &t, s.interval(), true);
        assert_eq!(r.hits[0].1.as_bytes(), b"fox");
    }

    #[test]
    fn heterogeneous_cluster_accounts_both_backend_kinds() {
        // The acceptance scenario: a spec mixing CPU workers and a
        // simulated GPU runs end-to-end through the Backend trait, finds
        // the planted key, and the per-device table shows both kinds.
        let net = crate::spec::ClusterNode::device_node(
            "hetero",
            vec![eks_gpusim::device::Device::geforce_gtx_660()],
            0.0,
        )
        .with_cpu("host-cpu", 2);
        let s = space();
        let t = targets(&[b"zzzz"]); // full sweep: every worker tests
        let r = run_cluster_search(&net, &s, &t, s.interval(), false);
        assert_eq!(r.hits.len(), 1);
        assert_eq!(r.tested, s.size());
        let gpu = r.per_device.iter().find(|(n, _)| n.contains("[simgpu]")).expect("gpu worker");
        let cpu = r.per_device.iter().find(|(n, _)| n.contains("[auto:")).expect("cpu worker");
        assert!(gpu.1 > 0, "gpu tested its share");
        assert!(cpu.1 > 0, "cpu tested its share");
        assert_eq!(gpu.1 + cpu.1, r.tested);
    }

    #[test]
    fn cpu_only_cluster_full_sweep() {
        let net = crate::spec::ClusterNode::device_node("cpu-box", vec![], 0.0)
            .with_cpu("cpu0", 2)
            .with_cpu("cpu1", 2);
        let s = space();
        let t = targets(&[b"zzzz"]);
        let r = run_cluster_search(&net, &s, &t, s.interval(), false);
        assert_eq!(r.tested, s.size(), "cpu workers cover the space exactly");
        assert_eq!(r.hits.len(), 1);
        assert_eq!(r.per_device.len(), 2);
    }

    #[test]
    fn empty_interval_is_fine() {
        let net = paper_network(1e-3);
        let s = space();
        let t = targets(&[b"cat"]);
        let r = run_cluster_search(&net, &s, &t, Interval::new(0, 0), true);
        assert!(r.hits.is_empty());
        assert_eq!(r.tested, 0);
    }

    #[test]
    fn steal_schedule_still_covers_exactly_once() {
        let net = paper_network(1e-3);
        let s = space();
        let t = targets(&[b"zzzz"]);
        let r = run_cluster_search_sched(
            &net,
            &s,
            &t,
            s.interval(),
            false,
            SchedPolicy::Steal,
        );
        assert_eq!(r.tested, s.size(), "stealing neither drops nor doubles keys");
        assert_eq!(r.hits.len(), 1);
        assert_eq!(r.stats.len(), r.per_device.len());
        let steals: u64 = r.stats.iter().map(|w| w.steals).sum();
        let splits: u64 = r.stats.iter().map(|w| w.splits).sum();
        assert_eq!(steals, splits, "every steal splits exactly one victim");
    }

    #[test]
    fn observed_search_fills_registry_and_trace() {
        let telemetry = Telemetry::enabled();
        let net = paper_network(1e-3).with_cpu("host-cpu", 2);
        let s = space();
        let t = targets(&[b"zzzz"]);
        let r = run_cluster_search_observed(
            &net,
            &s,
            &t,
            s.interval(),
            false,
            SchedPolicy::Static,
            &telemetry,
        );
        assert_eq!(r.tested, s.size());
        let eff = r.parallel_efficiency();
        assert!(eff > 0.0 && eff <= 100.0, "{eff}");
        let text = telemetry.render_prometheus();
        assert!(text.contains(names::KEYS_TESTED), "{text}");
        assert!(text.contains(names::DEVICE_RATE_MKEYS), "{text}");
        assert!(text.contains(names::CLUSTER_EFFICIENCY_PCT), "{text}");
        let jsonl = telemetry.trace_jsonl();
        assert!(jsonl.contains("\"scatter\""), "{jsonl}");
        assert!(jsonl.contains("\"merge\""), "{jsonl}");
        assert!(jsonl.contains("\"scan\""), "{jsonl}");
    }

    #[test]
    fn efficiency_of_an_empty_run_is_zero_not_nan() {
        let r = ClusterSearchResult {
            hits: vec![],
            tested: 0,
            per_device: vec![],
            stats: vec![],
        };
        assert_eq!(r.parallel_efficiency(), 0.0);
    }

    #[test]
    fn static_schedule_reports_no_steals() {
        let net = paper_network(1e-3);
        let s = space();
        let t = targets(&[b"zzzz"]);
        let r = run_cluster_search(&net, &s, &t, s.interval(), false);
        assert!(r.stats.iter().all(|w| w.steals == 0 && w.splits == 0), "{:?}", r.stats);
    }
}
