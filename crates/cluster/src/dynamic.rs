//! Dynamic reconfiguration (Section III): "The proposed pattern can be
//! extended to a dynamic network that can be configured at runtime, by
//! executing the above mentioned steps each time the number of depending
//! nodes or their actual performance metrics vary."
//!
//! A round-driven master: each dispatch round it takes the next slice of
//! the identifier interval, splits it proportionally to the *current*
//! member rates, and advances virtual time by the slowest member's chain.
//! Between rounds it applies membership events — joins, leaves, re-tuned
//! rates — and recomputes the balanced assignment. Interval accounting is
//! exact (`u128`), so tests can assert that every identifier is assigned
//! exactly once regardless of the membership churn.
//!
//! Two masters live here: [`run_dynamic`] advances *virtual* time from
//! declared rates (the planning model), while [`run_dynamic_search`]
//! actually cracks keys — its members are [`eks_engine::Backend`] leaves
//! (CPU lanes or simulated GPUs) whose rates come from their own tuning
//! step, and every scan runs through one [`Dispatcher`].

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use eks_cracker::target::TargetSet;
use eks_engine::{
    Backend, DequeLeaf, Dispatcher, IntervalDeques, RateEstimator, ScanMode, SchedOptions,
    SchedPolicy, WorkerId, WorkerStats,
};
use eks_keyspace::{Interval, Key, KeySpace};
use eks_telemetry::{names, Telemetry};

use crate::runtime::cluster_efficiency_pct;

/// Guided chunk floor inside a dynamic round: one poll quantum.
const DYNAMIC_CHUNK: u128 = eks_engine::POLL_CHUNK;

/// A membership change the master observes between rounds.
#[derive(Debug, Clone, PartialEq)]
pub enum MembershipEvent {
    /// A node joins with a tuned throughput (MKey/s).
    Join {
        /// Node name.
        name: String,
        /// Tuned throughput, MKey/s.
        mkeys: f64,
    },
    /// A node leaves (gracefully or detected dead at the gather).
    Leave {
        /// Node name.
        name: String,
    },
    /// The periodic re-tuning observed a new rate for a node.
    Retune {
        /// Node name.
        name: String,
        /// New throughput, MKey/s.
        mkeys: f64,
    },
}

/// An event scheduled before a given round.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledEvent {
    /// The event fires before this round index (0-based).
    pub before_round: u32,
    /// What happens.
    pub event: MembershipEvent,
}

/// Configuration of the dynamic master.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicConfig {
    /// Keys dispatched per round.
    pub round_keys: u128,
    /// Fixed per-round overhead, seconds (scatter + gather + launches).
    pub round_overhead_s: f64,
}

/// Result of a dynamic run.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicReport {
    /// Rounds executed.
    pub rounds: u32,
    /// Times the assignment was recomputed due to membership changes.
    pub rebalances: u32,
    /// Virtual completion time, seconds.
    pub makespan_s: f64,
    /// Keys assigned per member, by name (members that ever participated).
    pub per_member: Vec<(String, u128)>,
    /// Total keys assigned (must equal the interval length).
    pub covered: u128,
}

struct Member {
    name: String,
    mkeys: f64,
    assigned: u128,
    active: bool,
}

/// Run a search over `interval` with a dynamic membership.
///
/// # Panics
/// Panics when the initial membership is empty, when an event references
/// an unknown node (except `Join`), when a join duplicates a live name,
/// or when at some round no member remains active.
pub fn run_dynamic(
    initial: &[(&str, f64)],
    interval: Interval,
    config: DynamicConfig,
    events: &[ScheduledEvent],
) -> DynamicReport {
    assert!(!initial.is_empty(), "need at least one initial member");
    assert!(config.round_keys > 0);
    let mut members: Vec<Member> = initial
        .iter()
        .map(|(name, mkeys)| {
            assert!(*mkeys > 0.0);
            Member { name: name.to_string(), mkeys: *mkeys, assigned: 0, active: true }
        })
        .collect();

    let mut remaining = interval;
    let mut round: u32 = 0;
    let mut rebalances: u32 = 0;
    let mut makespan = 0.0f64;

    while !remaining.is_empty() {
        // Apply events scheduled before this round.
        let mut changed = false;
        for ev in events.iter().filter(|e| e.before_round == round) {
            apply(&mut members, &ev.event);
            changed = true;
        }
        if changed {
            rebalances += 1;
        }
        let active: Vec<usize> = members
            .iter()
            .enumerate()
            .filter(|(_, m)| m.active)
            .map(|(i, _)| i)
            .collect();
        assert!(!active.is_empty(), "no active members at round {round}");

        // Take this round's slice and split it by current rates.
        let slice = remaining.take_front(config.round_keys);
        let weights: Vec<f64> = active.iter().map(|&i| members[i].mkeys).collect();
        let parts = slice.split_weighted(&weights);
        let mut round_time = 0.0f64;
        for (&i, part) in active.iter().zip(&parts) {
            members[i].assigned += part.len;
            let t = part.len as f64 / (members[i].mkeys * 1e6);
            round_time = round_time.max(t);
        }
        makespan += round_time + config.round_overhead_s;
        round += 1;
    }

    let covered: u128 = members.iter().map(|m| m.assigned).sum();
    DynamicReport {
        rounds: round,
        rebalances,
        makespan_s: makespan,
        per_member: members.into_iter().map(|m| (m.name, m.assigned)).collect(),
        covered,
    }
}

fn apply(members: &mut Vec<Member>, event: &MembershipEvent) {
    match event {
        MembershipEvent::Join { name, mkeys } => {
            assert!(*mkeys > 0.0, "joined node needs a positive rate");
            assert!(
                !members.iter().any(|m| m.active && m.name == *name),
                "duplicate live member {name}"
            );
            // Re-joining a previously-left name resumes its accounting.
            if let Some(m) = members.iter_mut().find(|m| m.name == *name) {
                m.active = true;
                m.mkeys = *mkeys;
            } else {
                members.push(Member { name: name.clone(), mkeys: *mkeys, assigned: 0, active: true });
            }
        }
        MembershipEvent::Leave { name } => {
            let m = members
                .iter_mut()
                .find(|m| m.active && m.name == *name)
                .unwrap_or_else(|| panic!("unknown or inactive member {name}"));
            m.active = false;
        }
        MembershipEvent::Retune { name, mkeys } => {
            assert!(*mkeys > 0.0);
            let m = members
                .iter_mut()
                .find(|m| m.active && m.name == *name)
                .unwrap_or_else(|| panic!("unknown or inactive member {name}"));
            m.mkeys = *mkeys;
        }
    }
}

/// A membership change during a real dynamic search. Unlike
/// [`MembershipEvent`], a join carries the node's executor — its rate is
/// whatever the backend's own tuning step reports, not a declared number.
pub enum SearchEvent {
    /// A node joins with its backend.
    Join {
        /// Node name.
        name: String,
        /// The executor the node contributes.
        backend: Box<dyn Backend>,
    },
    /// A node leaves (gracefully or detected dead at the gather).
    Leave {
        /// Node name.
        name: String,
    },
}

/// A [`SearchEvent`] scheduled before a given round.
pub struct ScheduledSearchEvent {
    /// The event fires before this round index (0-based).
    pub before_round: u32,
    /// What happens.
    pub event: SearchEvent,
}

/// Configuration of the real dynamic master.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynamicSearchConfig {
    /// Keys dispatched per round.
    pub round_keys: u128,
    /// Stop the search at the first hit.
    pub first_hit_only: bool,
    /// How members are scheduled within a round:
    /// [`SchedPolicy::Static`] keeps every member on exactly its
    /// rate-proportional share, the stealing policies let drained
    /// members rebalance the round's tail.
    pub sched: SchedPolicy,
    /// Feed each round's observed per-member throughput back into the
    /// next round's split (closed-loop balancing; a re-joining member
    /// restarts cold on its tuned rate). Off, every round splits by
    /// `Backend::tuned_rate` — byte-identical to the frozen behavior.
    pub retune: bool,
}

/// Result of a real dynamic search.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicSearchReport {
    /// Hits in identifier order.
    pub hits: Vec<(u128, Key, usize)>,
    /// Candidates tested.
    pub tested: u128,
    /// Rounds executed.
    pub rounds: u32,
    /// Times the assignment was recomputed due to membership changes.
    pub rebalances: u32,
    /// Per-member `(name [backend], tested)`, join order.
    pub per_member: Vec<(String, u128)>,
    /// Full per-member scheduler stats, same order as `per_member`.
    pub stats: Vec<WorkerStats>,
}

struct SearchMember {
    name: String,
    backend: Box<dyn Backend>,
    worker: WorkerId,
    active: bool,
    /// Live throughput estimate, seeded with the backend's tuned rate;
    /// only consulted when [`DynamicSearchConfig::retune`] is on.
    rate: RateEstimator,
}

/// Run a real search over `interval` with a dynamic membership: each
/// round re-splits the next slice by the *current* members' tuned rates,
/// so a join immediately takes its proportional share and a leave stops
/// receiving work; hits, cancellation and accounting all flow through
/// the one dispatch core.
///
/// # Panics
/// Panics when the initial membership is empty, when a leave references
/// an unknown node, when a join duplicates a live name, or when at some
/// round no member remains active.
pub fn run_dynamic_search(
    initial: Vec<(String, Box<dyn Backend>)>,
    space: &KeySpace,
    targets: &TargetSet,
    interval: Interval,
    config: DynamicSearchConfig,
    events: Vec<ScheduledSearchEvent>,
) -> DynamicSearchReport {
    run_dynamic_search_observed(
        initial,
        space,
        targets,
        interval,
        config,
        events,
        &Telemetry::disabled(),
    )
}

/// [`run_dynamic_search`] with telemetry attached: joins and leaves
/// become [`names::EVENT_JOIN`] / [`names::EVENT_LEAVE`] trace events,
/// every rebalance bumps [`names::REBALANCES`], rounds run under
/// [`names::SPAN_ROUND`] spans, and the final whole-network efficiency
/// lands in the [`names::CLUSTER_EFFICIENCY_PCT`] gauge.
///
/// # Panics
/// Same contract as [`run_dynamic_search`].
pub fn run_dynamic_search_observed(
    initial: Vec<(String, Box<dyn Backend>)>,
    space: &KeySpace,
    targets: &TargetSet,
    interval: Interval,
    config: DynamicSearchConfig,
    events: Vec<ScheduledSearchEvent>,
    telemetry: &Telemetry,
) -> DynamicSearchReport {
    assert!(!initial.is_empty(), "need at least one initial member");
    assert!(config.round_keys > 0);
    let algo = targets.algo();
    let rounds_counter = telemetry.counter(names::ROUNDS, &[]);
    let rebalance_counter = telemetry.counter(names::REBALANCES, &[]);
    let dispatcher = Dispatcher::new(space, targets, ScanMode::from_first_hit(config.first_hit_only))
        .with_telemetry(telemetry.clone());
    let mut members: Vec<SearchMember> = initial
        .into_iter()
        .map(|(name, backend)| {
            let worker = dispatcher.register(format!("{name} [{}]", backend.name()));
            let rate = RateEstimator::new(backend.tuned_rate(algo));
            SearchMember { name, backend, worker, active: true, rate }
        })
        .collect();
    let mut events: Vec<ScheduledSearchEvent> = events.into_iter().collect();

    let mut remaining = interval.intersect(&space.interval());
    let mut round: u32 = 0;
    let mut rebalances: u32 = 0;
    // Baseline for diffing the dispatcher's cumulative per-worker stats
    // into per-round rate observations, indexed by worker id.
    let mut seen: Vec<(u128, u64)> = Vec::new();

    while !remaining.is_empty() {
        // Apply events scheduled before this round.
        let mut changed = false;
        let mut due = Vec::new();
        events.retain_mut(|e| {
            if e.before_round == round {
                due.push(std::mem::replace(
                    &mut e.event,
                    SearchEvent::Leave { name: String::new() },
                ));
                false
            } else {
                true
            }
        });
        for event in due {
            apply_search(&mut members, event, algo, &dispatcher, telemetry);
            changed = true;
        }
        if changed {
            rebalances += 1;
            rebalance_counter.inc();
        }
        let active: Vec<usize> =
            members.iter().enumerate().filter(|(_, m)| m.active).map(|(i, _)| i).collect();
        assert!(!active.is_empty(), "no active members at round {round}");

        // Take this round's slice and split it by the current rates:
        // the live, warm-up-gated estimates under retune, the frozen
        // tuned figures otherwise.
        let slice = remaining.take_front(config.round_keys);
        let weights: Vec<f64> = if config.retune {
            active.iter().map(|&i| members[i].rate.mkeys()).collect()
        } else {
            active.iter().map(|&i| members[i].backend.tuned_rate(algo)).collect()
        };
        if telemetry.is_enabled() && (changed || round == 0) {
            for (&i, &w) in active.iter().zip(&weights) {
                let m = &members[i];
                telemetry.gauge(names::DEVICE_RATE_MKEYS, &[("device", &m.name)]).set(w);
            }
        }
        rounds_counter.inc();
        // Dropped at the end of this iteration, covering scatter, scan
        // and the stop check.
        let _round_span = telemetry
            .span(names::SPAN_ROUND)
            .field("round", round)
            .field("members", active.len())
            .field("keys", slice.len);
        let parts = slice.split_weighted(&weights);
        // Every member owns a deque holding its proportional share; under
        // the static policy this is exactly one scan per member, under
        // the stealing policies drained members take the back half of the
        // largest remaining share.
        let deques = IntervalDeques::assign(parts);
        let leaves: Vec<DequeLeaf<'_>> = active
            .iter()
            .map(|&i| DequeLeaf { worker: members[i].worker, backend: members[i].backend.as_ref() })
            .collect();
        dispatcher.run_deques(&leaves, &deques, SchedOptions::for_policy(config.sched, DYNAMIC_CHUNK));
        if config.retune {
            // Gather this round's (tested, busy) delta per member and
            // feed it into the estimator; publish the live/tuned pair.
            let stats = dispatcher.worker_stats();
            seen.resize(stats.len(), (0, 0));
            for &i in &active {
                let m = &mut members[i];
                let w = m.worker.index();
                let (Some(st), Some(prev)) = (stats.get(w), seen.get_mut(w)) else { continue };
                m.rate
                    .observe(st.tested.saturating_sub(prev.0), st.busy_ns.saturating_sub(prev.1));
                *prev = (st.tested, st.busy_ns);
                if telemetry.is_enabled() {
                    let labels = [("worker", m.name.as_str())];
                    telemetry.gauge(names::WORKER_RATE_EST, &labels).set(m.rate.mkeys());
                    telemetry
                        .gauge(names::WORKER_RATE_TUNED, &labels)
                        .set(m.rate.tuned_mkeys());
                }
            }
        }
        round += 1;

        if config.first_hit_only && dispatcher.any_hits() {
            break;
        }
    }

    let merge = telemetry.span(names::SPAN_MERGE);
    let report = dispatcher.finish();
    merge.field("hits", report.hits.len()).finish();
    if telemetry.is_enabled() {
        telemetry
            .gauge(names::CLUSTER_EFFICIENCY_PCT, &[])
            .set(cluster_efficiency_pct(&report.stats));
    }
    DynamicSearchReport {
        hits: report.hits,
        tested: report.tested,
        rounds: round,
        rebalances,
        per_member: report.per_worker,
        stats: report.stats,
    }
}

fn apply_search(
    members: &mut Vec<SearchMember>,
    event: SearchEvent,
    algo: eks_hashes::HashAlgo,
    dispatcher: &Dispatcher<'_>,
    telemetry: &Telemetry,
) {
    match event {
        SearchEvent::Join { name, backend } => {
            assert!(
                !members.iter().any(|m| m.active && m.name == name),
                "duplicate live member {name}"
            );
            telemetry.event(names::EVENT_JOIN).field("member", &name).finish();
            // Re-joining a previously-left name resumes its accounting
            // but restarts its estimator: the new executor's observed
            // history starts empty, whatever the old one measured.
            if let Some(m) = members.iter_mut().find(|m| m.name == name) {
                m.active = true;
                m.rate = RateEstimator::new(backend.tuned_rate(algo));
                m.backend = backend;
            } else {
                let worker = dispatcher.register(format!("{name} [{}]", backend.name()));
                let rate = RateEstimator::new(backend.tuned_rate(algo));
                members.push(SearchMember { name, backend, worker, active: true, rate });
            }
        }
        SearchEvent::Leave { name } => {
            let m = members
                .iter_mut()
                .find(|m| m.active && m.name == name)
                .unwrap_or_else(|| panic!("unknown or inactive member {name}"));
            m.active = false;
            telemetry.event(names::EVENT_LEAVE).field("member", &name).finish();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> DynamicConfig {
        DynamicConfig { round_keys: 1_000_000, round_overhead_s: 0.001 }
    }

    #[test]
    fn static_membership_covers_exactly() {
        let iv = Interval::new(0, 10_500_000);
        let r = run_dynamic(&[("a", 100.0), ("b", 300.0)], iv, config(), &[]);
        assert_eq!(r.covered, 10_500_000);
        assert_eq!(r.rounds, 11, "10 full rounds + 1 partial");
        assert_eq!(r.rebalances, 0);
        // Work split ≈ 1:3.
        let a = r.per_member[0].1 as f64;
        let b = r.per_member[1].1 as f64;
        assert!((b / a - 3.0).abs() < 0.01, "split {a} vs {b}");
    }

    #[test]
    fn join_speeds_up_completion() {
        let iv = Interval::new(0, 50_000_000);
        let alone = run_dynamic(&[("a", 100.0)], iv, config(), &[]);
        let helped = run_dynamic(
            &[("a", 100.0)],
            iv,
            config(),
            &[ScheduledEvent {
                before_round: 10,
                event: MembershipEvent::Join { name: "b".into(), mkeys: 400.0 },
            }],
        );
        assert!(helped.makespan_s < alone.makespan_s * 0.5);
        assert_eq!(helped.covered, 50_000_000);
        assert_eq!(helped.rebalances, 1);
    }

    #[test]
    fn leave_slows_but_still_covers() {
        let iv = Interval::new(0, 50_000_000);
        let full = run_dynamic(&[("a", 100.0), ("b", 400.0)], iv, config(), &[]);
        let crippled = run_dynamic(
            &[("a", 100.0), ("b", 400.0)],
            iv,
            config(),
            &[ScheduledEvent { before_round: 5, event: MembershipEvent::Leave { name: "b".into() } }],
        );
        assert!(crippled.makespan_s > full.makespan_s);
        assert_eq!(crippled.covered, 50_000_000, "nothing lost");
        // b only worked 5 rounds.
        let b_share = crippled.per_member.iter().find(|(n, _)| n == "b").unwrap().1;
        assert_eq!(b_share, 5 * 800_000, "4/5 of five rounds");
    }

    #[test]
    fn retune_shifts_the_split() {
        let iv = Interval::new(0, 20_000_000);
        let r = run_dynamic(
            &[("a", 100.0), ("b", 100.0)],
            iv,
            config(),
            &[ScheduledEvent {
                before_round: 10,
                event: MembershipEvent::Retune { name: "b".into(), mkeys: 300.0 },
            }],
        );
        assert_eq!(r.covered, 20_000_000);
        let a = r.per_member[0].1;
        let b = r.per_member[1].1;
        // First 10 rounds 50/50, last 10 rounds 25/75.
        assert_eq!(a, 10 * 500_000 + 10 * 250_000);
        assert_eq!(b, 10 * 500_000 + 10 * 750_000);
    }

    #[test]
    fn rejoin_resumes_accounting() {
        let iv = Interval::new(0, 4_000_000);
        let r = run_dynamic(
            &[("a", 100.0), ("b", 100.0)],
            iv,
            config(),
            &[
                ScheduledEvent { before_round: 1, event: MembershipEvent::Leave { name: "b".into() } },
                ScheduledEvent {
                    before_round: 3,
                    event: MembershipEvent::Join { name: "b".into(), mkeys: 100.0 },
                },
            ],
        );
        assert_eq!(r.covered, 4_000_000);
        assert_eq!(r.per_member.len(), 2, "b is one member, not two");
        assert_eq!(r.rebalances, 2);
    }

    #[test]
    #[should_panic]
    fn leaving_unknown_member_panics() {
        run_dynamic(
            &[("a", 100.0)],
            Interval::new(0, 10),
            config(),
            &[ScheduledEvent { before_round: 0, event: MembershipEvent::Leave { name: "zz".into() } }],
        );
    }

    #[test]
    #[should_panic]
    fn all_members_leaving_panics() {
        run_dynamic(
            &[("a", 100.0)],
            Interval::new(0, 10_000_000),
            config(),
            &[ScheduledEvent { before_round: 1, event: MembershipEvent::Leave { name: "a".into() } }],
        );
    }

    mod search {
        use super::*;
        use crate::simgpu::SimKernelBackend;
        use eks_cracker::LaneBackend;
        use eks_gpusim::device::Device;
        use eks_hashes::HashAlgo;
        use eks_keyspace::{Charset, KeySpace, Order};

        fn space() -> KeySpace {
            KeySpace::new(Charset::lowercase(), 1, 4, Order::FirstCharFastest).unwrap()
        }

        fn targets(words: &[&[u8]]) -> TargetSet {
            let ds: Vec<Vec<u8>> = words.iter().map(|w| HashAlgo::Md5.hash_long(w)).collect();
            TargetSet::new(HashAlgo::Md5, &ds)
        }

        fn cpu(name: &str) -> (String, Box<dyn Backend>) {
            (name.to_string(), Box::new(LaneBackend::default()))
        }

        fn gpu(name: &str) -> (String, Box<dyn Backend>) {
            (name.to_string(), Box::new(SimKernelBackend::new(Device::geforce_gtx_660())))
        }

        #[test]
        fn heterogeneous_join_mid_search_takes_a_share() {
            let s = space();
            let t = targets(&[b"zzzz"]);
            let r = run_dynamic_search(
                vec![cpu("host-cpu")],
                &s,
                &t,
                s.interval(),
                DynamicSearchConfig { round_keys: 60_000, first_hit_only: false, sched: SchedPolicy::Static, retune: false },
                vec![ScheduledSearchEvent {
                    before_round: 2,
                    event: SearchEvent::Join { name: "gpu-box".into(), backend: gpu("x").1 },
                }],
            );
            assert_eq!(r.tested, s.size(), "every key tested exactly once");
            assert_eq!(r.hits.len(), 1);
            assert_eq!(r.rebalances, 1);
            let cpu_row =
                r.per_member.iter().find(|(n, _)| n.contains("[lanes")).expect("cpu member");
            let gpu_row =
                r.per_member.iter().find(|(n, _)| n.contains("[simgpu]")).expect("gpu member");
            assert!(cpu_row.1 > 0 && gpu_row.1 > 0, "both backend kinds tested");
            // The tuned GPU rate dwarfs the CPU's, so once joined it
            // takes nearly everything that is left.
            assert!(gpu_row.1 > cpu_row.1, "{:?}", r.per_member);
        }

        #[test]
        fn leave_mid_search_still_covers_everything() {
            let s = space();
            let t = targets(&[b"zzzz"]);
            let r = run_dynamic_search(
                vec![cpu("a"), cpu("b")],
                &s,
                &t,
                s.interval(),
                DynamicSearchConfig { round_keys: 60_000, first_hit_only: false, sched: SchedPolicy::Static, retune: false },
                vec![ScheduledSearchEvent {
                    before_round: 2,
                    event: SearchEvent::Leave { name: "b".into() },
                }],
            );
            assert_eq!(r.tested, s.size(), "nothing lost on a graceful leave");
            assert_eq!(r.hits.len(), 1);
            // b only worked two rounds: roughly two half-rounds of keys.
            let b = r.per_member.iter().find(|(n, _)| n.starts_with("b ")).unwrap().1;
            assert_eq!(b, 60_000, "two 30k half-rounds before leaving");
        }

        #[test]
        fn first_hit_stops_the_dynamic_search_early() {
            let s = space();
            let t = targets(&[b"bcd"]);
            let r = run_dynamic_search(
                vec![cpu("a"), cpu("b")],
                &s,
                &t,
                s.interval(),
                DynamicSearchConfig { round_keys: 50_000, first_hit_only: true, sched: SchedPolicy::Static, retune: false },
                vec![],
            );
            assert_eq!(r.hits.len(), 1);
            assert_eq!(r.hits[0].1.as_bytes(), b"bcd");
            assert!(r.tested < s.size(), "stopped before sweeping everything");
        }

        #[test]
        fn observed_dynamic_search_traces_membership() {
            let telemetry = Telemetry::enabled();
            let s = space();
            let t = targets(&[b"zzzz"]);
            let r = run_dynamic_search_observed(
                vec![cpu("a"), cpu("b")],
                &s,
                &t,
                s.interval(),
                DynamicSearchConfig {
                    round_keys: 60_000,
                    first_hit_only: false,
                    sched: SchedPolicy::Static,
                    retune: false,
                },
                vec![
                    ScheduledSearchEvent {
                        before_round: 1,
                        event: SearchEvent::Leave { name: "b".into() },
                    },
                    ScheduledSearchEvent {
                        before_round: 3,
                        event: SearchEvent::Join { name: "gpu-box".into(), backend: gpu("x").1 },
                    },
                ],
                &telemetry,
            );
            assert_eq!(r.tested, s.size());
            assert_eq!(r.rebalances, 2);
            let jsonl = telemetry.trace_jsonl();
            assert!(jsonl.contains(&format!("\"{}\"", names::EVENT_JOIN)), "{jsonl}");
            assert!(jsonl.contains(&format!("\"{}\"", names::EVENT_LEAVE)), "{jsonl}");
            let text = telemetry.render_prometheus();
            assert!(text.contains(names::REBALANCES), "{text}");
            let line = text
                .lines()
                .find(|l| l.starts_with(names::REBALANCES) && !l.starts_with('#'))
                .expect("rebalance sample");
            let value: f64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert_eq!(value as u32, r.rebalances, "counter reconciles with the report");
        }

        #[test]
        fn retuned_dynamic_search_covers_and_publishes_live_rates() {
            let telemetry = Telemetry::enabled();
            let s = space();
            let t = targets(&[b"zzzz"]);
            let r = run_dynamic_search_observed(
                vec![cpu("a"), cpu("b")],
                &s,
                &t,
                s.interval(),
                DynamicSearchConfig {
                    round_keys: 60_000,
                    first_hit_only: false,
                    sched: SchedPolicy::Static,
                    retune: true,
                },
                vec![ScheduledSearchEvent {
                    before_round: 2,
                    event: SearchEvent::Join { name: "gpu-box".into(), backend: gpu("x").1 },
                }],
                &telemetry,
            );
            assert_eq!(r.tested, s.size(), "live weights never drop or double keys");
            assert_eq!(r.hits.len(), 1);
            let text = telemetry.render_prometheus();
            assert!(text.contains(names::WORKER_RATE_EST), "{text}");
            assert!(text.contains(names::WORKER_RATE_TUNED), "{text}");
        }

        #[test]
        fn stealing_rounds_cover_exactly_once() {
            let s = space();
            let t = targets(&[b"zzzz"]);
            let r = run_dynamic_search(
                vec![cpu("a"), cpu("b")],
                &s,
                &t,
                s.interval(),
                DynamicSearchConfig {
                    round_keys: 60_000,
                    first_hit_only: false,
                    sched: SchedPolicy::Steal,
                    retune: false,
                },
                vec![],
            );
            assert_eq!(r.tested, s.size(), "stealing neither drops nor doubles keys");
            assert_eq!(r.hits.len(), 1);
            assert_eq!(r.stats.len(), r.per_member.len());
            let steals: u64 = r.stats.iter().map(|w| w.steals).sum();
            let splits: u64 = r.stats.iter().map(|w| w.splits).sum();
            assert_eq!(steals, splits, "every steal splits exactly one victim");
        }
    }
}
