//! Password-strength estimation: how long a given password survives a
//! brute-force sweep on a given device or cluster — the number an audit
//! report translates the paper's MKey/s tables into.
//!
//! Two horizons are reported: the *exact* time until the enumeration
//! reaches the password (its identifier over the throughput — meaningful
//! because the enumeration order is public), and the *expected* time for
//! an attacker sweeping the whole space (half the space on average,
//! worst-case all of it).

use eks_gpusim::device::Device;
use eks_hashes::HashAlgo;
use eks_keyspace::{Key, KeySpace};
use eks_kernels::Tool;

use crate::spec::ClusterNode;
use crate::tuning::{tune_device, AchievedModel};

/// Strength verdict for one password against one attacker throughput.
#[derive(Debug, Clone, PartialEq)]
pub struct StrengthEstimate {
    /// The attacking throughput, MKey/s.
    pub attacker_mkeys: f64,
    /// Seconds until the sweep reaches this exact password.
    pub time_to_reach_s: f64,
    /// Seconds to sweep the whole space (the survivor guarantee).
    pub full_sweep_s: f64,
    /// Candidates in the space.
    pub space_size: u128,
}

impl StrengthEstimate {
    /// Human-scale rendering of a duration.
    pub fn render_duration(seconds: f64) -> String {
        const MINUTE: f64 = 60.0;
        const HOUR: f64 = 3_600.0;
        const DAY: f64 = 86_400.0;
        const YEAR: f64 = 365.25 * DAY;
        if seconds < 1.0 {
            format!("{:.0} ms", seconds * 1e3)
        } else if seconds < MINUTE {
            format!("{seconds:.1} s")
        } else if seconds < HOUR {
            format!("{:.1} min", seconds / MINUTE)
        } else if seconds < DAY {
            format!("{:.1} h", seconds / HOUR)
        } else if seconds < YEAR {
            format!("{:.1} days", seconds / DAY)
        } else {
            format!("{:.1} years", seconds / YEAR)
        }
    }
}

/// Estimate how `password` fares against one device.
///
/// Returns `None` when the password is not inside `space` (different
/// charset or length) — such a password survives this particular sweep
/// outright.
pub fn estimate_against_device(
    password: &Key,
    space: &KeySpace,
    algo: HashAlgo,
    device: &Device,
) -> Option<StrengthEstimate> {
    let t = tune_device(device, Tool::OurApproach, algo, AchievedModel::Analytic);
    estimate_at_rate(password, space, t.achieved_mkeys)
}

/// Estimate against a whole cluster (sum of tuned device rates).
pub fn estimate_against_cluster(
    password: &Key,
    space: &KeySpace,
    algo: HashAlgo,
    cluster: &ClusterNode,
) -> Option<StrengthEstimate> {
    let rate: f64 = cluster
        .all_devices()
        .iter()
        .map(|d| tune_device(d, Tool::OurApproach, algo, AchievedModel::Analytic).achieved_mkeys)
        .sum::<f64>()
        + cluster
            .all_cpus()
            .iter()
            .map(|c| crate::tuning::tune_cpu(c, algo).achieved_mkeys)
            .sum::<f64>();
    estimate_at_rate(password, space, rate)
}

/// Estimate at an explicit throughput (MKey/s).
pub fn estimate_at_rate(
    password: &Key,
    space: &KeySpace,
    mkeys: f64,
) -> Option<StrengthEstimate> {
    assert!(mkeys > 0.0);
    let id = space.id_of(password)?;
    let keys_per_s = mkeys * 1e6;
    Some(StrengthEstimate {
        attacker_mkeys: mkeys,
        time_to_reach_s: (id + 1) as f64 / keys_per_s,
        full_sweep_s: space.size() as f64 / keys_per_s,
        space_size: space.size(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::paper_network;
    use eks_keyspace::{Charset, Order};

    fn space() -> KeySpace {
        KeySpace::new(Charset::alphanumeric(), 1, 8, Order::FirstCharFastest).unwrap()
    }

    #[test]
    fn longer_passwords_survive_longer() {
        let s = space();
        let d = Device::geforce_gtx_660();
        let short = estimate_against_device(&Key::from_bytes(b"zz"), &s, HashAlgo::Md5, &d)
            .expect("member");
        let long = estimate_against_device(&Key::from_bytes(b"zzzzzzzz"), &s, HashAlgo::Md5, &d)
            .expect("member");
        assert!(long.time_to_reach_s > short.time_to_reach_s * 1e6);
    }

    #[test]
    fn full_sweep_of_the_paper_space_on_the_660_takes_about_33_hours() {
        // 2.22e14 candidates at ~1847 MKey/s ≈ 1.2e5 s ≈ 33 h — the
        // headline practical consequence of Table VIII.
        let s = space();
        let d = Device::geforce_gtx_660();
        let e = estimate_against_device(&Key::from_bytes(b"a"), &s, HashAlgo::Md5, &d).unwrap();
        let hours = e.full_sweep_s / 3600.0;
        assert!((25.0..45.0).contains(&hours), "{hours} h");
    }

    #[test]
    fn cluster_beats_single_device() {
        let s = space();
        let net = paper_network(2e-3);
        let k = Key::from_bytes(b"Zz9Zz9");
        let single =
            estimate_against_device(&k, &s, HashAlgo::Md5, &Device::geforce_gtx_660()).unwrap();
        let cluster = estimate_against_cluster(&k, &s, HashAlgo::Md5, &net).unwrap();
        assert!(cluster.attacker_mkeys > single.attacker_mkeys * 1.5);
        assert!(cluster.full_sweep_s < single.full_sweep_s);
    }

    #[test]
    fn out_of_space_passwords_survive() {
        let s = space();
        let d = Device::geforce_gtx_660();
        // '!' is not alphanumeric: this sweep can never reach it.
        assert!(estimate_against_device(&Key::from_bytes(b"p@ss"), &s, HashAlgo::Md5, &d).is_none());
        // Too long for the space.
        assert!(
            estimate_against_device(&Key::from_bytes(b"zzzzzzzzz"), &s, HashAlgo::Md5, &d)
                .is_none()
        );
    }

    #[test]
    fn duration_rendering() {
        assert_eq!(StrengthEstimate::render_duration(0.5), "500 ms");
        assert_eq!(StrengthEstimate::render_duration(30.0), "30.0 s");
        assert_eq!(StrengthEstimate::render_duration(120.0), "2.0 min");
        assert_eq!(StrengthEstimate::render_duration(7200.0), "2.0 h");
        assert_eq!(StrengthEstimate::render_duration(2.0 * 86_400.0), "2.0 days");
        assert!(StrengthEstimate::render_duration(1e9).contains("years"));
    }

    #[test]
    fn ntlm_falls_faster_than_md5() {
        let s = space();
        let d = Device::geforce_gtx_660();
        let k = Key::from_bytes(b"Zz9Zz9");
        let md5 = estimate_against_device(&k, &s, HashAlgo::Md5, &d).unwrap();
        let ntlm = estimate_against_device(&k, &s, HashAlgo::Ntlm, &d).unwrap();
        assert!(ntlm.full_sweep_s < md5.full_sweep_s);
    }
}
