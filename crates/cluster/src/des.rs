//! Deterministic discrete-event simulation of a whole-network search.
//!
//! Models what Table IX measures: the aggregate throughput of the
//! hierarchical dispatch over a large interval, including
//!
//! * throughput-proportional splitting from tuned estimates (`N_j =
//!   N_max · X_j / X_max`), where the *estimates* may deviate from the
//!   true rates (tuning error) — the dominant real-world efficiency loss;
//! * round-based scatter/gather with per-hop link latency (the paper
//!   gathers periodically to check the stop condition);
//! * per-round kernel-launch overhead on every device;
//! * the straggler effect of the final round.
//!
//! Efficiency is reported exactly as the paper defines it: achieved
//! aggregate throughput over the sum of the devices' individual
//! throughputs.

// Indexing/slicing below is over fixed-size state arrays or lengths
// established by construction; the workspace `clippy::indexing_slicing`
// escalation guards new code, not these proven accesses.
#![allow(clippy::indexing_slicing)]

use crate::spec::ClusterNode;
use crate::tuning::{tune_device, AchievedModel, Tuning};
use eks_hashes::HashAlgo;
use eks_kernels::Tool;

/// DES parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimParams {
    /// One-way message latency per tree hop, seconds.
    pub link_latency_s: f64,
    /// Fixed overhead per work round on a device (kernel launches,
    /// host-side bookkeeping), seconds.
    pub round_overhead_s: f64,
    /// Number of dispatch rounds the search is divided into (periodic
    /// gathering for the stop condition).
    pub rounds: u32,
    /// Relative error of the tuned throughput estimates (± applied
    /// deterministically, alternating by device index).
    pub tuning_error: f64,
    /// Which achieved-throughput model feeds the tuning step.
    pub model: AchievedModel,
}

impl Default for SimParams {
    fn default() -> Self {
        Self {
            link_latency_s: 2e-3,
            round_overhead_s: 5e-3,
            rounds: 20,
            tuning_error: 0.05,
            model: AchievedModel::Analytic,
        }
    }
}

/// Report of one simulated search.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkReport {
    /// Keys searched.
    pub total_keys: f64,
    /// Simulated wall-clock seconds until the master has every result.
    pub makespan_s: f64,
    /// Aggregate achieved throughput, MKey/s.
    pub achieved_mkeys: f64,
    /// Sum of the devices' standalone throughputs, MKey/s (the paper's
    /// "theoretical" column of Table IX uses the theoretical single-GPU
    /// rates; [`NetworkReport::sum_theoretical_mkeys`] carries those).
    pub sum_achieved_mkeys: f64,
    /// Sum of single-GPU theoretical rates, MKey/s.
    pub sum_theoretical_mkeys: f64,
    /// Per-device `(name, busy_s)` accounting.
    pub device_busy: Vec<(String, f64)>,
}

impl NetworkReport {
    /// Efficiency against the sum of achieved single-GPU rates —
    /// the parallelism quality of the dispatch itself.
    pub fn parallel_efficiency(&self) -> f64 {
        self.achieved_mkeys / self.sum_achieved_mkeys
    }

    /// Efficiency as Table IX defines it: achieved network throughput
    /// over the sum of *theoretical* single-GPU throughputs.
    pub fn table9_efficiency(&self) -> f64 {
        self.achieved_mkeys / self.sum_theoretical_mkeys
    }
}

/// A flattened device with its true and estimated rates (keys/s) and its
/// hop distance from the master.
struct FlatDevice {
    name: String,
    true_rate: f64,
    est_rate: f64,
    hops: u32,
}

fn flatten(
    node: &ClusterNode,
    hops: u32,
    tool: Tool,
    algo: HashAlgo,
    params: &SimParams,
    out: &mut Vec<FlatDevice>,
) {
    let push = |name: String, tuning: Tuning, out: &mut Vec<FlatDevice>| {
        let idx = out.len();
        // Deterministic alternating tuning error: overestimate every even
        // device, underestimate every odd one.
        let sign = if idx.is_multiple_of(2) { 1.0 } else { -1.0 };
        let est = tuning.achieved_mkeys * (1.0 + sign * params.tuning_error);
        out.push(FlatDevice {
            name,
            true_rate: tuning.achieved_mkeys * 1e6,
            est_rate: est * 1e6,
            hops,
        });
    };
    for slot in &node.devices {
        let t: Tuning = tune_device(&slot.device, tool, algo, params.model);
        push(format!("{}/{}", node.name, slot.device.name), t, out);
    }
    for cpu in &node.cpus {
        let t = crate::tuning::tune_cpu(cpu, algo);
        push(format!("{}/{}", node.name, cpu.name), t, out);
    }
    for c in &node.children {
        flatten(c, hops + 1, tool, algo, params, out);
    }
}

/// Simulate a search of `total_keys` over the cluster.
///
/// # Panics
/// Panics when the cluster has no devices or `total_keys <= 0`.
pub fn simulate_search(
    root: &ClusterNode,
    tool: Tool,
    algo: HashAlgo,
    total_keys: f64,
    params: SimParams,
) -> NetworkReport {
    assert!(total_keys > 0.0);
    let mut devices = Vec::new();
    flatten(root, 0, tool, algo, &params, &mut devices);
    assert!(!devices.is_empty(), "cluster has no devices");

    let est_total: f64 = devices.iter().map(|d| d.est_rate).sum();
    let keys_per_round = total_keys / params.rounds as f64;

    // Every round: the master scatters down the tree (latency per hop),
    // each device runs its share at its *true* rate after the launch
    // overhead, results travel back up. Rounds are pipelined only at the
    // boundaries (the next scatter overlaps the gather), so the critical
    // path per round is the slowest device chain.
    let mut device_busy = vec![0.0f64; devices.len()];
    let mut makespan = 0.0f64;
    for _round in 0..params.rounds {
        let mut round_time = 0.0f64;
        for (i, d) in devices.iter().enumerate() {
            // Proportional split using the *estimated* rates.
            let share = keys_per_round * (d.est_rate / est_total);
            let work_s = share / d.true_rate + params.round_overhead_s;
            device_busy[i] += share / d.true_rate;
            let chain = 2.0 * d.hops as f64 * params.link_latency_s + work_s;
            round_time = round_time.max(chain);
        }
        makespan += round_time;
    }

    let sum_achieved: f64 = devices.iter().map(|d| d.true_rate).sum::<f64>() / 1e6;
    let sum_theoretical: f64 = {
        let mut s = 0.0;
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            for slot in &n.devices {
                s += tune_device(&slot.device, tool, algo, params.model).theoretical_mkeys;
            }
            for cpu in &n.cpus {
                s += crate::tuning::tune_cpu(cpu, algo).theoretical_mkeys;
            }
            stack.extend(n.children.iter());
        }
        s
    };

    NetworkReport {
        total_keys,
        makespan_s: makespan,
        achieved_mkeys: total_keys / makespan / 1e6,
        sum_achieved_mkeys: sum_achieved,
        sum_theoretical_mkeys: sum_theoretical,
        device_busy: devices
            .iter()
            .zip(&device_busy)
            .map(|(d, b)| (d.name.clone(), *b))
            .collect(),
    }
}

/// Time until the master *stops* a search whose key sits at
/// `hit_fraction` of the interval — why dispatch happens in rounds at all.
///
/// Workers only report at gather points, so the master cannot cancel
/// in-flight work: with `R` rounds, a hit inside round `k` still costs the
/// full round, plus one gather hop. More rounds mean earlier cancellation
/// but more per-round overhead — the trade-off the paper's "collect
/// periodically ... to eventually terminate the search" implies.
pub fn time_to_first_hit(
    root: &ClusterNode,
    tool: Tool,
    algo: HashAlgo,
    total_keys: f64,
    params: SimParams,
    hit_fraction: f64,
) -> f64 {
    assert!((0.0..=1.0).contains(&hit_fraction));
    let full = simulate_search(root, tool, algo, total_keys, params);
    let per_round = full.makespan_s / params.rounds as f64;
    // The hit is found inside round ceil(hit_fraction x R); the master
    // learns about it at that round's gather.
    let hit_round = (hit_fraction * params.rounds as f64).ceil().max(1.0);
    hit_round * per_round + params.link_latency_s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::paper_network;

    fn run(total_keys: f64, params: SimParams) -> NetworkReport {
        let net = paper_network(params.link_latency_s);
        simulate_search(&net, Tool::OurApproach, HashAlgo::Md5, total_keys, params)
    }

    #[test]
    fn efficiency_in_table9_band() {
        // Table IX: MD5 efficiency 0.852 over the same network. Our DES
        // with default parameters must land in the 0.80–0.95 band.
        let r = run(5e11, SimParams::default());
        let eff = r.table9_efficiency();
        assert!(eff > 0.80 && eff < 0.95, "efficiency {eff}");
    }

    #[test]
    fn throughput_is_roughly_the_sum_of_devices() {
        // "an actual overall throughput that is roughly equal to the sum
        // of the throughputs of the single devices".
        let r = run(5e11, SimParams::default());
        assert!(r.parallel_efficiency() > 0.90, "{}", r.parallel_efficiency());
        assert!(r.achieved_mkeys < r.sum_achieved_mkeys);
    }

    #[test]
    fn perfect_tuning_and_free_network_approach_unity() {
        let params = SimParams {
            link_latency_s: 0.0,
            round_overhead_s: 0.0,
            rounds: 1,
            tuning_error: 0.0,
            ..SimParams::default()
        };
        let r = run(1e12, params);
        assert!(r.parallel_efficiency() > 0.999, "{}", r.parallel_efficiency());
    }

    #[test]
    fn tuning_error_costs_efficiency() {
        let base = SimParams { tuning_error: 0.0, ..SimParams::default() };
        let noisy = SimParams { tuning_error: 0.10, ..SimParams::default() };
        let r0 = run(1e12, base);
        let r1 = run(1e12, noisy);
        assert!(r1.parallel_efficiency() < r0.parallel_efficiency());
    }

    #[test]
    fn more_rounds_cost_more_overhead() {
        let few = SimParams { rounds: 2, ..SimParams::default() };
        let many = SimParams { rounds: 200, ..SimParams::default() };
        let r_few = run(1e11, few);
        let r_many = run(1e11, many);
        assert!(r_many.makespan_s > r_few.makespan_s);
    }

    #[test]
    fn small_searches_are_overhead_dominated() {
        let r_small = run(1e6, SimParams::default());
        let r_big = run(1e12, SimParams::default());
        assert!(r_small.parallel_efficiency() < r_big.parallel_efficiency() * 0.5);
    }

    #[test]
    fn busy_time_is_balanced_across_devices() {
        let r = run(1e12, SimParams { tuning_error: 0.0, ..SimParams::default() });
        let max = r.device_busy.iter().map(|(_, b)| *b).fold(0.0f64, f64::max);
        let min = r.device_busy.iter().map(|(_, b)| *b).fold(f64::MAX, f64::min);
        assert!(max / min < 1.02, "balanced busy times: {min}..{max}");
    }

    #[test]
    fn device_count_matches_network() {
        let r = run(1e9, SimParams::default());
        assert_eq!(r.device_busy.len(), 5);
    }

    #[test]
    fn more_rounds_find_early_keys_sooner() {
        let net = paper_network(2e-3);
        let few = SimParams { rounds: 2, ..SimParams::default() };
        let many = SimParams { rounds: 50, ..SimParams::default() };
        let t_few = time_to_first_hit(&net, Tool::OurApproach, HashAlgo::Md5, 1e12, few, 0.1);
        let t_many = time_to_first_hit(&net, Tool::OurApproach, HashAlgo::Md5, 1e12, many, 0.1);
        assert!(
            t_many < t_few * 0.5,
            "50 rounds should stop much earlier: {t_many} vs {t_few}"
        );
    }

    #[test]
    fn late_hits_cost_the_whole_search() {
        let net = paper_network(2e-3);
        let p = SimParams::default();
        let full = simulate_search(&net, Tool::OurApproach, HashAlgo::Md5, 1e12, p).makespan_s;
        let t = time_to_first_hit(&net, Tool::OurApproach, HashAlgo::Md5, 1e12, p, 1.0);
        assert!((t - full).abs() / full < 0.01, "hit at the end = full sweep");
    }

    #[test]
    fn hit_time_monotone_in_position() {
        let net = paper_network(2e-3);
        let p = SimParams::default();
        let mut prev = 0.0;
        for f in [0.05, 0.25, 0.5, 0.75, 1.0] {
            let t = time_to_first_hit(&net, Tool::OurApproach, HashAlgo::Md5, 1e12, p, f);
            assert!(t >= prev, "fraction {f}");
            prev = t;
        }
    }

    #[test]
    fn cpu_workers_add_throughput_in_the_des() {
        let plain = paper_network(2e-3);
        let hybrid = paper_network(2e-3).with_cpu("host-cpu", 2);
        let p = SimParams::default();
        let r0 = simulate_search(&plain, Tool::OurApproach, HashAlgo::Md5, 1e11, p);
        let r1 = simulate_search(&hybrid, Tool::OurApproach, HashAlgo::Md5, 1e11, p);
        assert_eq!(r1.device_busy.len(), 6, "the CPU participates");
        assert!(r1.sum_achieved_mkeys > r0.sum_achieved_mkeys);
        assert!(r1.makespan_s < r0.makespan_s * 1.001, "extra worker never hurts");
    }
}
