//! The minimum fault-tolerance model sketched in Section III / VII:
//! "monitor the activity of nodes and recalculate the partitioning of the
//! search space each time a set of nodes becomes temporarily inactive",
//! with the caveat the paper flags — "the inactivity of a dispatching
//! node would block the contribution of all the nodes in the dispatching
//! sub tree".
//!
//! Built on the DES: the search runs on the full network until the
//! failure instant, the dead subtree's outstanding work is requeued after
//! a detection timeout, and the remainder is repartitioned over the
//! survivors.

use crate::des::{simulate_search, NetworkReport, SimParams};
use crate::spec::ClusterNode;
use eks_hashes::HashAlgo;
use eks_kernels::Tool;

/// A node failure during a search.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureEvent {
    /// Name of the node that dies (its whole subtree goes with it).
    pub node: String,
    /// Fraction of the search completed when the failure hits (0..1).
    pub at_fraction: f64,
    /// Seconds of heartbeat silence before the master declares the node
    /// dead and repartitions.
    pub detection_timeout_s: f64,
}

/// Report of a search that survived a failure.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureReport {
    /// Total completion time including detection and repartitioning.
    pub makespan_s: f64,
    /// What the same search would have taken without the failure.
    pub baseline_makespan_s: f64,
    /// `makespan / baseline`.
    pub slowdown: f64,
    /// Devices lost with the subtree.
    pub lost_devices: usize,
    /// Devices that finished the search.
    pub surviving_devices: usize,
    /// Keys requeued from the dead subtree's outstanding assignment.
    pub requeued_keys: f64,
    /// Phase reports (before, after).
    pub phase_before: NetworkReport,
    pub phase_after: NetworkReport,
}

/// Simulate a search of `total_keys` interrupted by `failure`.
///
/// # Panics
/// Panics when the failed node does not exist, is the root, or when no
/// devices survive.
pub fn simulate_search_with_failure(
    root: &ClusterNode,
    tool: Tool,
    algo: HashAlgo,
    total_keys: f64,
    params: SimParams,
    failure: &FailureEvent,
) -> FailureReport {
    assert!(
        (0.0..1.0).contains(&failure.at_fraction),
        "failure fraction must be in [0, 1)"
    );
    assert!(root.find(&failure.node).is_some(), "unknown node {}", failure.node);
    assert_ne!(root.name, failure.node, "root failure kills the search");

    let baseline = simulate_search(root, tool, algo, total_keys, params);

    // Phase 1: the whole network works until the failure instant.
    let keys_before = total_keys * failure.at_fraction;
    let phase_before = if keys_before > 0.0 {
        simulate_search(root, tool, algo, keys_before, params)
    } else {
        NetworkReport {
            total_keys: 0.0,
            makespan_s: 0.0,
            achieved_mkeys: 0.0,
            sum_achieved_mkeys: baseline.sum_achieved_mkeys,
            sum_theoretical_mkeys: baseline.sum_theoretical_mkeys,
            device_busy: Vec::new(),
        }
    };

    // The dead subtree's outstanding assignment (one dispatch round's
    // share) is lost in flight and must be requeued. Approximate the
    // subtree's share by its fraction of the aggregate throughput.
    let dead = root.find(&failure.node).expect("checked above");
    let lost_devices = dead.all_devices().len() + dead.all_cpus().len();
    let dead_fraction = {
        let mut survivor = root.clone();
        survivor.remove_subtree(&failure.node);
        let all = simulate_search(root, tool, algo, 1.0, params).sum_achieved_mkeys;
        let alive = simulate_search(&survivor, tool, algo, 1.0, params).sum_achieved_mkeys;
        (all - alive) / all
    };
    let round_keys = total_keys / params.rounds as f64;
    let requeued = round_keys * dead_fraction;

    // Phase 2: the survivors take the remaining keys plus the requeue.
    let mut survivor = root.clone();
    assert!(survivor.remove_subtree(&failure.node));
    let surviving_devices = survivor.all_devices().len() + survivor.all_cpus().len();
    assert!(surviving_devices > 0, "no devices survive the failure");
    let keys_after = total_keys - keys_before + requeued;
    let phase_after = simulate_search(&survivor, tool, algo, keys_after, params);

    let makespan =
        phase_before.makespan_s + failure.detection_timeout_s + phase_after.makespan_s;
    FailureReport {
        makespan_s: makespan,
        baseline_makespan_s: baseline.makespan_s,
        slowdown: makespan / baseline.makespan_s,
        lost_devices,
        surviving_devices,
        requeued_keys: requeued,
        phase_before,
        phase_after,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::paper_network;

    fn failure(node: &str, at: f64) -> FailureEvent {
        FailureEvent { node: node.to_string(), at_fraction: at, detection_timeout_s: 1.0 }
    }

    fn run(node: &str, at: f64) -> FailureReport {
        let net = paper_network(2e-3);
        simulate_search_with_failure(
            &net,
            Tool::OurApproach,
            HashAlgo::Md5,
            5e11,
            SimParams::default(),
            &failure(node, at),
        )
    }

    #[test]
    fn leaf_failure_slows_but_completes() {
        let r = run("D", 0.5);
        assert!(r.slowdown > 1.0, "slowdown {}", r.slowdown);
        assert_eq!(r.lost_devices, 1);
        assert_eq!(r.surviving_devices, 4);
        assert!(r.requeued_keys > 0.0);
    }

    #[test]
    fn dispatcher_failure_takes_its_subtree() {
        // The paper's caveat: losing C also loses D.
        let r = run("C", 0.5);
        assert_eq!(r.lost_devices, 2);
        assert_eq!(r.surviving_devices, 3);
        let leaf = run("D", 0.5);
        assert!(r.slowdown > leaf.slowdown, "losing C+D hurts more than D");
    }

    #[test]
    fn earlier_failures_hurt_more() {
        let early = run("B", 0.1);
        let late = run("B", 0.9);
        assert!(early.makespan_s > late.makespan_s);
    }

    #[test]
    fn losing_the_fastest_node_hurts_most() {
        // B holds the GTX 660 + 550 Ti (most of the network throughput).
        let b = run("B", 0.5);
        let d = run("D", 0.5);
        assert!(b.slowdown > d.slowdown);
    }

    #[test]
    fn all_keys_are_still_covered() {
        let r = run("C", 0.3);
        let covered = r.phase_before.total_keys + r.phase_after.total_keys - r.requeued_keys;
        assert!((covered - 5e11).abs() < 1.0, "covered {covered}");
    }

    #[test]
    #[should_panic]
    fn unknown_node_rejected() {
        run("Z", 0.5);
    }

    #[test]
    #[should_panic]
    fn root_failure_rejected() {
        run("A", 0.5);
    }
}
